let version_prefix = ".v"

type layer = {
  l_name : string;
  l_domain : Sp_obj.Sdomain.t;
  mutable l_lower : Sp_core.Stackable.t option;
  l_wrapped : (string, Sp_core.File.t) Hashtbl.t;
}

let instances : (string, layer) Hashtbl.t = Hashtbl.create 4

let layer_of (sfs : Sp_core.Stackable.t) =
  match Hashtbl.find_opt instances sfs.Sp_core.Stackable.sfs_name with
  | Some l -> l
  | None -> invalid_arg (sfs.Sp_core.Stackable.sfs_name ^ ": not a versionfs layer")

let lower_of l =
  match l.l_lower with
  | Some fs -> fs
  | None -> raise (Sp_core.Stackable.Stack_error (l.l_name ^ ": not stacked yet"))

(* ".v<digits>.<rest>" *)
let is_version_name name =
  String.length name > 3
  && String.sub name 0 2 = version_prefix
  &&
  let rec digits i =
    if i >= String.length name then false
    else
      match name.[i] with
      | '0' .. '9' -> digits (i + 1)
      | '.' -> i > 2
      | _ -> false
  in
  digits 2

let split_path path =
  match List.rev (Sp_naming.Sname.components path) with
  | [] -> invalid_arg "Versionfs: empty path"
  | last :: rev_dirs -> (List.rev rev_dirs, last)

let version_path path n =
  let dirs, last = split_path path in
  Sp_naming.Sname.of_components (dirs @ [ Printf.sprintf "%s%d.%s" version_prefix n last ])

(* Version numbers present for [path], by scanning the lower directory. *)
let versions_of l path =
  let lower = lower_of l in
  let dirs, last = split_path path in
  let suffix = "." ^ last in
  let version_of name =
    if not (is_version_name name) then None
    else
      let body = String.sub name 2 (String.length name - 2) in
      match String.index_opt body '.' with
      | Some dot when String.sub body dot (String.length body - dot) = suffix ->
          int_of_string_opt (String.sub body 0 dot)
      | _ -> None
  in
  (* Stream the lower directory rather than materialise it: the version
     sidecars are a sparse subset of a possibly huge listing. *)
  Sp_core.Stackable.fold_dir lower
    (Sp_naming.Sname.of_components dirs)
    (fun acc name ->
      match version_of name with Some n -> n :: acc | None -> acc)
    []
  |> List.sort Int.compare

let snapshot sfs path =
  let l = layer_of sfs in
  let lower = lower_of l in
  let current = Sp_core.Stackable.open_file lower path in
  let n = match List.rev (versions_of l path) with [] -> 1 | hd :: _ -> hd + 1 in
  let vfile = Sp_core.Stackable.create lower (version_path path n) in
  let data = Sp_core.File.read_all current in
  if Bytes.length data > 0 then ignore (Sp_core.File.write vfile ~pos:0 data);
  Sp_core.File.sync vfile;
  n

let versions sfs path = versions_of (layer_of sfs) path

let open_version sfs path n =
  let l = layer_of sfs in
  let lower = lower_of l in
  let vfile = Sp_core.Stackable.open_file lower (version_path path n) in
  (* Versions are immutable history: serve them through a read-only
     interposer (the §5 machinery). *)
  Sp_core.Interpose.interpose_file ~domain:l.l_domain
    (Sp_core.Interpose.read_only_hooks ())
    vfile

let restore sfs path n =
  let l = layer_of sfs in
  let lower = lower_of l in
  let vfile = Sp_core.Stackable.open_file lower (version_path path n) in
  let current = Sp_core.Stackable.open_file lower path in
  let data = Sp_core.File.read_all vfile in
  Sp_core.File.truncate current 0;
  if Bytes.length data > 0 then ignore (Sp_core.File.write current ~pos:0 data);
  Sp_core.File.sync current

let drop_version sfs path n =
  let l = layer_of sfs in
  Sp_core.Stackable.remove (lower_of l) (version_path path n)

(* The exported file forwards everything (data path untouched). *)
let wrap_file l path (lower : Sp_core.File.t) =
  let key =
    Printf.sprintf "versionfs:%s:%s" l.l_name (Sp_naming.Sname.to_string path)
  in
  match Hashtbl.find_opt l.l_wrapped key with
  | Some f -> f
  | None ->
      let f = { lower with Sp_core.File.f_id = key } in
      Hashtbl.replace l.l_wrapped key f;
      f

let rec make_ctx l ~path =
  let label =
    if Sp_naming.Sname.is_empty path then l.l_name
    else l.l_name ^ "/" ^ Sp_naming.Sname.to_string path
  in
  let resolve1 component =
    if is_version_name component then
      raise (Sp_naming.Context.Unbound (label ^ "/" ^ component));
    let lower = lower_of l in
    let sub = Sp_naming.Sname.append path component in
    match Sp_naming.Context.resolve lower.Sp_core.Stackable.sfs_ctx sub with
    | Sp_core.File.File f ->
        Sp_sim.Simclock.advance (Sp_sim.Cost_model.current ()).open_state_ns;
        Sp_core.File.File (wrap_file l sub f)
    | Sp_naming.Context.Context _ -> Sp_naming.Context.Context (make_ctx l ~path:sub)
    | other -> other
  in
  (* Stream the lower directory and drop version sidecars per batch:
     filtered batches may come back short, so consumers follow the
     cookie. *)
  let readdir1 ~cookie ~limit =
    Sp_dir.Cursor.filter
      (fun n -> not (is_version_name n))
      (fun ~cookie ~limit ->
        Sp_core.Stackable.readdir (lower_of l) path ~cookie ~limit)
      ~cookie ~limit
  in
  let list () =
    List.sort String.compare
      (Sp_dir.Cursor.drain (fun ~cookie ~limit -> readdir1 ~cookie ~limit))
  in
  {
    Sp_naming.Context.ctx_domain = l.l_domain;
    ctx_label = label;
    ctx_acl = (fun () -> Sp_naming.Acl.open_acl);
    ctx_set_acl = (fun _ -> ());
    ctx_resolve1 = resolve1;
    ctx_bind1 =
      (fun c o ->
        Sp_naming.Context.bind (lower_of l).Sp_core.Stackable.sfs_ctx
          (Sp_naming.Sname.append path c) o);
    ctx_rebind1 =
      (fun c o ->
        Sp_naming.Context.rebind (lower_of l).Sp_core.Stackable.sfs_ctx
          (Sp_naming.Sname.append path c) o);
    ctx_unbind1 =
      (fun c ->
        Sp_naming.Context.unbind (lower_of l).Sp_core.Stackable.sfs_ctx
          (Sp_naming.Sname.append path c));
    ctx_list = list;
    ctx_readdir1 = readdir1;
  }

let make ?(node = "local") ?domain ~name () =
  let domain =
    match domain with Some d -> d | None -> Sp_obj.Sdomain.create ~node name
  in
  let l =
    { l_name = name; l_domain = domain; l_lower = None; l_wrapped = Hashtbl.create 16 }
  in
  Hashtbl.replace instances name l;
  {
    Sp_core.Stackable.sfs_name = name;
    sfs_type = "versionfs";
    sfs_domain = domain;
    sfs_ctx = make_ctx l ~path:(Sp_naming.Sname.of_components []);
    sfs_stack_on =
      (fun under ->
        match l.l_lower with
        | Some _ ->
            raise
              (Sp_core.Stackable.Stack_error
                 (name ^ ": versionfs stacks on exactly one file system"))
        | None -> l.l_lower <- Some under);
    sfs_unders = (fun () -> Option.to_list l.l_lower);
    sfs_create =
      (fun path -> wrap_file l path (Sp_core.Stackable.create (lower_of l) path));
    sfs_mkdir = (fun path -> Sp_core.Stackable.mkdir (lower_of l) path);
    sfs_remove =
      (fun path ->
        let l' = l in
        (* Removing the current file keeps its history; versions are
           dropped explicitly. *)
        Hashtbl.remove l'.l_wrapped
          (Printf.sprintf "versionfs:%s:%s" l.l_name (Sp_naming.Sname.to_string path));
        Sp_core.Stackable.remove (lower_of l) path);
    sfs_sync = (fun () -> Sp_core.Stackable.sync (lower_of l));
    sfs_drop_caches = (fun () -> Sp_core.Stackable.drop_caches (lower_of l));
  }

let creator ?(node = "local") () =
  {
    Sp_core.Stackable.cr_type = "versionfs";
    cr_create = (fun ~name -> make ~node ~name ());
  }
