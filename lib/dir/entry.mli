(** Fixed-size 64-byte directory entry codec, shared by the flat
    directory format, the hash index ({!Index}) and the offline
    checkers. *)

val entry_size : int

(** Longest representable name (58 bytes). *)
val max_name : int

type t = { ino : int; is_dir : bool; name : string }

(** Raises [Invalid_argument] on names that cannot be stored: empty,
    longer than {!max_name}, or containing ['/'] or NUL. *)
val check_name : string -> unit

val encode : t -> bytes

(** [decode b off] reads the entry at byte offset [off]; [None] for a
    free slot (name length byte = 0). *)
val decode : bytes -> int -> t option

(** An all-zero slot (what removal writes). *)
val free_slot : bytes
