(** On-disk hash index for large directories (ext2-htree / UFS dirhash
    analog) over 64-byte {!Entry} slots.

    All block numbers are file-relative; the caller supplies block I/O,
    so the disk layer can route through its journalled device while
    fsck reads the raw disk with the same code.  File block 0 is the
    index root; its magic + flag bytes cannot occur in a flat directory
    block, so {!is_index_root} on block 0 is the format test.  Leaf
    blocks carry a trailer that a flat decoder reads as a free slot.

    Mutations write data blocks before the root; {!build} shadow-writes
    a whole new index beyond the current extent and flips the root
    last, so a prefix of the writes (one torn batch) leaves the old
    index intact. *)

(** Entries per leaf block (63). *)
val entries_per_leaf : int

(** Hard ceiling on bucket count (66 491). *)
val max_buckets : int

(** A flat directory upgrades to indexed past this many entries (128). *)
val upgrade_threshold : int

(** Bucket count of a fresh upgrade (16). *)
val initial_buckets : int

(** Average bucket population that triggers a rebuild (64). *)
val grow_load : int

(** Block I/O the index runs on.  [read n] returns file block [n]
    (callers must treat the result as read-only); [write n b] stores a
    full block, growing the file as needed. *)
type io = { read : int -> bytes; write : int -> bytes -> unit }

type header = {
  buckets : int;
  entries : int;  (** live entries *)
  nblocks : int;  (** index extent in file blocks; bounds every scan *)
}

(** Format test on a directory's block 0. *)
val is_index_root : bytes -> bool

(** [true] iff the block carries a leaf trailer. *)
val is_leaf : bytes -> bool

val read_header : io -> header

val lookup : io -> string -> Entry.t option

(** [add io e] inserts an entry the caller has checked is absent;
    splits the bucket's head leaf when full. *)
val add : io -> Entry.t -> unit

(** [remove io name] is [true] if the entry was present. *)
val remove : io -> string -> bool

(** One bounded batch in file-block order; the cookie encodes the
    resume position ([None] = exhausted).  Raises [Invalid_argument]
    when [limit <= 0]. *)
val fold_page : io -> cookie:int -> limit:int -> Entry.t list * int option

val iter : io -> (Entry.t -> unit) -> unit

(** Materialise every entry (tests and rebuilds only). *)
val entries : io -> Entry.t list

(** Bucket count a rebuild should target for [entries] entries. *)
val target_buckets : ?cap:int -> entries:int -> unit -> int

(** [true] when the index has outgrown its buckets (and is below
    [cap]). *)
val grow_due : ?cap:int -> header -> bool

(** [build io ~entries ~buckets ~start] writes a complete index,
    placing every block except the root at file blocks >= [start];
    returns the new extent.  Pass the old extent as [start] for a
    shadow rebuild. *)
val build : io -> entries:Entry.t list -> buckets:int -> start:int -> int

(** Offline index verification (fsck's dirindex category). *)
type check_report = {
  ck_dangling : int;
  ck_mismatch : int;
  ck_unreachable : int;
  ck_badcount : bool;
}

val clean_report : check_report

val check : io -> check_report
