(* On-disk hash index for large directories — the ext2-htree / UFS
   dirhash analog, over the same 64-byte entries as the flat format.

   The index lives in the directory's own data blocks and is read and
   written through whatever block I/O the caller provides ([io]), so the
   disk layer routes it through its journalled device (index updates
   commit atomically with the entries they cover) while fsck walks the
   raw device with the same code.  Block numbers everywhere below are
   *file-relative* block indices.

   Layout (block size [bs] = 4096):

   - File block 0 is the root.  Its first five bytes — magic "SPH1" then
     an 0xFF flag — cannot occur in a flat directory block (byte 4 of a
     live entry is 0 or 1, and free slots are all-zero), so format
     detection needs only block 0.  Header: buckets, live entry count,
     and [nblocks], the index extent in file blocks.  [nblocks] — not
     the inode length — bounds every scan, which is what lets a rebuild
     switch extents atomically (see below).  After the header: 64
     continuation-block pointers, then 955 root bucket slots.
   - A bucket slot holds the file block of the bucket's head leaf
     (0 = empty bucket).  Buckets beyond the root's 955 live in
     continuation blocks of 1024 slots each, up to 64 blocks: 66 491
     buckets max, far past the 65 536 the growth policy caps at.
   - A leaf block holds 63 entry slots plus a 64-byte trailer: magic
     "SPL1", the same 0xFF flag, a zero byte where an entry would keep
     its name length (a flat decoder sees a free slot), the next leaf in
     the bucket chain, and the owning bucket.  Chains are head-linked:
     a split writes the new leaf then points the bucket slot at it.

   Mutations write data blocks before the root, so a torn sequence
   leaves at worst a stale counter, never a dangling reference.  Full
   rebuilds ([build]) are shadow writes: the new continuations and
   leaves go beyond the current extent, and the root — rewritten last —
   flips lookups and scans to the new extent in one block write.  The
   caller then frees the old blocks. *)

let bs = 4096
let es = Entry.entry_size
let entries_per_leaf = bs / es - 1 (* 63: the last slot is the trailer *)
let trailer_off = entries_per_leaf * es (* 4032 *)
let root_slots = (bs - 276) / 4 (* 955 *)
let cont_slots = bs / 4 (* 1024 *)
let max_conts = 64
let max_buckets = root_slots + (max_conts * cont_slots)
let magic_root = "SPH1"
let magic_leaf = "SPL1"

(* Growth policy.  A flat directory upgrades once it crosses
   [upgrade_threshold] entries; an index is rebuilt with
   [target_buckets] once average bucket population passes
   [grow_load] (leaf chains stay ~1-2 blocks). *)
let upgrade_threshold = 128
let initial_buckets = 16
let grow_load = 64

type io = { read : int -> bytes; write : int -> bytes -> unit }

type header = { buckets : int; entries : int; nblocks : int }

let is_index_root b =
  Bytes.length b >= 8
  && Bytes.sub_string b 0 4 = magic_root
  && Bytes.get_uint8 b 4 = 0xff

let is_leaf b =
  Bytes.length b = bs
  && Bytes.sub_string b trailer_off 4 = magic_leaf
  && Bytes.get_uint8 b (trailer_off + 4) = 0xff

let decode_header root =
  if not (is_index_root root) then invalid_arg "Sp_dir.Index: not an index root";
  let get off = Int32.to_int (Bytes.get_int32_le root off) in
  { buckets = get 8; entries = get 12; nblocks = get 16 }

let set_header root h =
  Bytes.blit_string magic_root 0 root 0 4;
  Bytes.set_uint8 root 4 0xff;
  Bytes.set_uint8 root 5 1 (* version *);
  Bytes.set_int32_le root 8 (Int32.of_int h.buckets);
  Bytes.set_int32_le root 12 (Int32.of_int h.entries);
  Bytes.set_int32_le root 16 (Int32.of_int h.nblocks)

let read_header io = decode_header (io.read 0)

let cont_ptr root j = Int32.to_int (Bytes.get_int32_le root (20 + (j * 4)))
let set_cont_ptr root j v = Bytes.set_int32_le root (20 + (j * 4)) (Int32.of_int v)

(* Bucket slot addressing: slot [b] lives in the root when [b] is below
   [root_slots], else in continuation block [(b - root_slots) / cont_slots]. *)

let slot_get io root b =
  if b < root_slots then Int32.to_int (Bytes.get_int32_le root (276 + (b * 4)))
  else
    let j = (b - root_slots) / cont_slots in
    let cb = cont_ptr root j in
    if cb = 0 then 0
    else
      Int32.to_int
        (Bytes.get_int32_le (io.read cb) ((b - root_slots) mod cont_slots * 4))

(* Point slot [b] at leaf [v].  Root-resident slots are patched into
   [root] (the caller writes the root last); continuation slots are
   written through immediately — a continuation block is a data block,
   so it still precedes the root on the device. *)
let slot_set io root b v =
  if b < root_slots then Bytes.set_int32_le root (276 + (b * 4)) (Int32.of_int v)
  else begin
    let j = (b - root_slots) / cont_slots in
    let cb = cont_ptr root j in
    if cb = 0 then invalid_arg "Sp_dir.Index: missing continuation block";
    let cont = Bytes.copy (io.read cb) in
    Bytes.set_int32_le cont ((b - root_slots) mod cont_slots * 4) (Int32.of_int v);
    io.write cb cont
  end

(* Leaf trailer accessors. *)
let leaf_next leaf = Int32.to_int (Bytes.get_int32_le leaf (trailer_off + 8))
let leaf_bucket leaf = Int32.to_int (Bytes.get_int32_le leaf (trailer_off + 12))

let set_trailer leaf ~next ~bucket =
  Bytes.blit_string magic_leaf 0 leaf trailer_off 4;
  Bytes.set_uint8 leaf (trailer_off + 4) 0xff;
  Bytes.set_int32_le leaf (trailer_off + 8) (Int32.of_int next);
  Bytes.set_int32_le leaf (trailer_off + 12) (Int32.of_int bucket)

let fresh_leaf ~next ~bucket =
  let leaf = Bytes.make bs '\000' in
  set_trailer leaf ~next ~bucket;
  leaf

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let lookup io name =
  let root = io.read 0 in
  let h = decode_header root in
  let b = Hash.bucket name ~buckets:h.buckets in
  let rec walk fb steps =
    if fb = 0 || steps > h.nblocks then None
    else
      let leaf = io.read fb in
      if not (is_leaf leaf) then None
      else
        let rec scan s =
          if s >= entries_per_leaf then walk (leaf_next leaf) (steps + 1)
          else
            match Entry.decode leaf (s * es) with
            | Some e when String.equal e.Entry.name name -> Some e
            | _ -> scan (s + 1)
        in
        scan 0
  in
  walk (slot_get io root b) 0

(* Entries in file-block order; the cookie is [fblock * 64 + slot].
   Non-leaf blocks inside the extent (the root, continuation blocks,
   holes left by rebuilds) are skipped by their trailer. *)
let fold_page io ~cookie ~limit =
  if limit <= 0 then invalid_arg "Sp_dir.Index.fold_page: limit must be positive";
  let h = read_header io in
  let acc = ref [] in
  let count = ref 0 in
  let resume = ref None in
  let fb0 = max 1 (cookie / 64) in
  (try
     let fb = ref fb0 in
     let s0 = ref (if cookie / 64 = 0 then 0 else cookie mod 64) in
     while !fb < h.nblocks do
       let leaf = io.read !fb in
       if is_leaf leaf then begin
         let s = ref !s0 in
         while !s < entries_per_leaf do
           (match Entry.decode leaf (!s * es) with
           | Some e ->
               if !count >= limit then begin
                 resume := Some ((!fb * 64) + !s);
                 raise Exit
               end;
               acc := e :: !acc;
               incr count
           | None -> ());
           incr s
         done
       end;
       s0 := 0;
       incr fb
     done
   with Exit -> ());
  (List.rev !acc, !resume)

let iter io f =
  let rec go cookie =
    let page, next = fold_page io ~cookie ~limit:256 in
    List.iter f page;
    match next with None -> () | Some c -> go c
  in
  go 0

let entries io = fst (fold_page io ~cookie:0 ~limit:max_int)

(* ------------------------------------------------------------------ *)
(* Mutation                                                            *)
(* ------------------------------------------------------------------ *)

(* Insert [e]; the caller has established the name is absent.  Fills a
   free slot in the bucket's head leaf, else splits: a new head leaf
   beyond the extent, chained to the old head. *)
let add io e =
  let root = Bytes.copy (io.read 0) in
  let h = decode_header root in
  let b = Hash.bucket e.Entry.name ~buckets:h.buckets in
  let head = slot_get io root b in
  let free_in leaf =
    let rec go s =
      if s >= entries_per_leaf then None
      else match Entry.decode leaf (s * es) with None -> Some s | Some _ -> go (s + 1)
    in
    go 0
  in
  let nblocks =
    match if head = 0 then None else free_in (io.read head) with
    | Some s ->
        let leaf = Bytes.copy (io.read head) in
        Bytes.blit (Entry.encode e) 0 leaf (s * es) es;
        io.write head leaf;
        h.nblocks
    | None ->
        let fb = h.nblocks in
        let leaf = fresh_leaf ~next:head ~bucket:b in
        Bytes.blit (Entry.encode e) 0 leaf 0 es;
        io.write fb leaf;
        slot_set io root b fb;
        fb + 1
  in
  set_header root { h with entries = h.entries + 1; nblocks };
  io.write 0 root

(* Remove [name]; [true] if it was present. *)
let remove io name =
  let root = Bytes.copy (io.read 0) in
  let h = decode_header root in
  let b = Hash.bucket name ~buckets:h.buckets in
  let rec walk fb steps =
    if fb = 0 || steps > h.nblocks then false
    else
      let leaf = io.read fb in
      if not (is_leaf leaf) then false
      else
        let rec scan s =
          if s >= entries_per_leaf then walk (leaf_next leaf) (steps + 1)
          else
            match Entry.decode leaf (s * es) with
            | Some e when String.equal e.Entry.name name ->
                let leaf = Bytes.copy leaf in
                Bytes.blit Entry.free_slot 0 leaf (s * es) es;
                io.write fb leaf;
                true
            | _ -> scan (s + 1)
        in
        scan 0
  in
  if walk (slot_get io root b) 0 then begin
    set_header root { h with entries = h.entries - 1 };
    io.write 0 root;
    true
  end
  else false

(* ------------------------------------------------------------------ *)
(* Build / rebuild                                                     *)
(* ------------------------------------------------------------------ *)

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

(* Post-rebuild target: ~32 entries per bucket, so chains sit at one
   leaf with headroom to [grow_load] before the next rebuild. *)
let target_buckets ?(cap = 65536) ~entries () =
  let cap = min cap max_buckets in
  min cap (pow2_at_least (max initial_buckets (entries / 32)) 16)

let grow_due ?(cap = 65536) (h : header) =
  h.entries > h.buckets * grow_load && h.buckets < min cap max_buckets

(* Write a complete index for [entries] with [buckets] buckets, placing
   every new block at file blocks >= [start] except the root (always
   block 0, written last).  Returns the new extent [nblocks].  When
   [start] > 1 this is a shadow rebuild: nothing the old index
   references is touched until the root flips. *)
let build io ~entries:ents ~buckets ~start =
  if buckets < 1 || buckets > max_buckets then
    invalid_arg "Sp_dir.Index.build: bucket count out of range";
  let nconts = if buckets <= root_slots then 0 else (buckets - root_slots + cont_slots - 1) / cont_slots in
  let by_bucket = Array.make buckets [] in
  let count = ref 0 in
  List.iter
    (fun e ->
      let b = Hash.bucket e.Entry.name ~buckets in
      by_bucket.(b) <- e :: by_bucket.(b);
      incr count)
    ents;
  let conts = Array.init nconts (fun _ -> Bytes.make bs '\000') in
  let root = Bytes.make bs '\000' in
  let next_fb = ref (start + nconts) in
  let set_slot b v =
    if b < root_slots then Bytes.set_int32_le root (276 + (b * 4)) (Int32.of_int v)
    else
      Bytes.set_int32_le
        conts.((b - root_slots) / cont_slots)
        ((b - root_slots) mod cont_slots * 4)
        (Int32.of_int v)
  in
  Array.iteri
    (fun b ents ->
      (* Pack the bucket's entries 63 per leaf; each leaf chains to the
         previously written one, so the last written is the head. *)
      let rec write_leaves prev = function
        | [] -> prev
        | ents ->
            let rec take n l acc =
              if n = 0 then (List.rev acc, l)
              else match l with [] -> (List.rev acc, []) | x :: tl -> take (n - 1) tl (x :: acc)
            in
            let page, rest = take entries_per_leaf ents [] in
            let leaf = fresh_leaf ~next:prev ~bucket:b in
            List.iteri (fun i e -> Bytes.blit (Entry.encode e) 0 leaf (i * es) es) page;
            let fb = !next_fb in
            incr next_fb;
            io.write fb leaf;
            write_leaves fb rest
      in
      let head = write_leaves 0 ents in
      if head <> 0 then set_slot b head)
    by_bucket;
  Array.iteri (fun j cont -> io.write (start + j) cont) conts;
  Array.iteri (fun j _ -> set_cont_ptr root j (start + j)) conts;
  set_header root { buckets; entries = !count; nblocks = !next_fb };
  io.write 0 root;
  !next_fb

(* ------------------------------------------------------------------ *)
(* Offline verification (fsck)                                         *)
(* ------------------------------------------------------------------ *)

type check_report = {
  ck_dangling : int;  (* slots/chains pointing at non-leaf or out-of-extent blocks *)
  ck_mismatch : int;  (* entries (or leaves) filed under the wrong bucket *)
  ck_unreachable : int;  (* live entries in leaves no bucket chain reaches *)
  ck_badcount : bool;  (* header entry count disagrees with the chains *)
}

let clean_report = { ck_dangling = 0; ck_mismatch = 0; ck_unreachable = 0; ck_badcount = false }

let leaf_live leaf =
  let n = ref 0 in
  for s = 0 to entries_per_leaf - 1 do
    match Entry.decode leaf (s * es) with Some _ -> incr n | None -> ()
  done;
  !n

let check io =
  let root = io.read 0 in
  let h = decode_header root in
  let dangling = ref 0 in
  let mismatch = ref 0 in
  let reached = Hashtbl.create 64 in
  let counted = ref 0 in
  for b = 0 to h.buckets - 1 do
    let rec walk fb =
      if fb <> 0 then
        if fb <= 0 || fb >= h.nblocks || Hashtbl.mem reached fb then incr dangling
        else
          let leaf = io.read fb in
          if not (is_leaf leaf) then incr dangling
          else begin
            Hashtbl.replace reached fb ();
            if leaf_bucket leaf <> b then incr mismatch;
            for s = 0 to entries_per_leaf - 1 do
              match Entry.decode leaf (s * es) with
              | Some e ->
                  incr counted;
                  if Hash.bucket e.Entry.name ~buckets:h.buckets <> b then incr mismatch
              | None -> ()
            done;
            walk (leaf_next leaf)
          end
    in
    walk (slot_get io root b)
  done;
  let unreachable = ref 0 in
  for fb = 1 to h.nblocks - 1 do
    if not (Hashtbl.mem reached fb) then begin
      let b = io.read fb in
      if is_leaf b then unreachable := !unreachable + leaf_live b
    end
  done;
  {
    ck_dangling = !dangling;
    ck_mismatch = !mismatch;
    ck_unreachable = !unreachable;
    ck_badcount = !counted <> h.entries;
  }
