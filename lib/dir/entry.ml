(* Fixed-size 64-byte directory entry — the on-disk unit both flat and
   indexed directories store.  Layout: ino (int32le, bytes 0-3), is_dir
   flag (byte 4, 0 or 1), name length (byte 5, 0 marks a free slot),
   name bytes (6..).  The codec lives here, below the disk layer, so the
   index (Sp_dir.Index) and the offline checkers can share it. *)

let entry_size = 64
let max_name = entry_size - 6

type t = { ino : int; is_dir : bool; name : string }

let check_name name =
  if String.length name = 0 then invalid_arg "Dirent: empty name";
  if String.length name > max_name then
    invalid_arg (Printf.sprintf "Dirent: name longer than %d bytes" max_name);
  String.iter
    (function
      | '/' | '\000' -> invalid_arg "Dirent: name contains '/' or NUL"
      | _ -> ())
    name

let encode e =
  check_name e.name;
  let b = Bytes.make entry_size '\000' in
  Bytes.set_int32_le b 0 (Int32.of_int e.ino);
  Bytes.set_uint8 b 4 (if e.is_dir then 1 else 0);
  Bytes.set_uint8 b 5 (String.length e.name);
  Bytes.blit_string e.name 0 b 6 (String.length e.name);
  b

let decode b off =
  let name_len = Bytes.get_uint8 b (off + 5) in
  if name_len = 0 then None
  else
    Some
      {
        ino = Int32.to_int (Bytes.get_int32_le b off);
        is_dir = Bytes.get_uint8 b (off + 4) = 1;
        name = Bytes.sub_string b (off + 6) name_len;
      }

let free_slot = Bytes.make entry_size '\000'
