(** Name hashing for indexed directories. *)

(** 32-bit FNV-1a of the name. *)
val fnv1a : string -> int

(** [bucket name ~buckets] maps a name to its bucket in [0, buckets). *)
val bucket : string -> buckets:int -> int
