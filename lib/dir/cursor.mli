(** Streaming directory reads: bounded batches behind an integer cookie.

    Cookie 0 starts a scan; a batch returns the names read plus the
    cookie to resume from, or [None] when the directory is exhausted.
    Cursors are weakly consistent (POSIX readdir semantics): entries
    created or removed between batches may or may not be observed. *)

type batch = string list * int option

(** One readdir implementation. *)
type source = cookie:int -> limit:int -> batch

(** Default batch size used by {!drain}, {!fold} and {!iter} (256). *)
val default_batch : int

(** Cursor view over a materialised listing; the cookie indexes the
    list.  Raises [Invalid_argument] when [limit <= 0]. *)
val of_list : string list -> cookie:int -> limit:int -> batch

(** Filtering view over a source.  Filtered batches may be shorter than
    the limit (even empty) while more remain: consumers must key
    termination on the cookie, not batch size. *)
val filter : (string -> bool) -> source -> source

(** Drain a cursor to a full listing (the [listdir] compatibility
    path). *)
val drain : ?batch:int -> source -> string list

(** Fold over all names in bounded batches. *)
val fold : ?batch:int -> source -> ('a -> string -> 'a) -> 'a -> 'a

val iter : ?batch:int -> source -> (string -> unit) -> unit
