(* FNV-1a folded to 32 bits — the same cheap non-cryptographic hash the
   journal and checksum region use.  The index stores nothing derived
   from OCaml's polymorphic hash, so images are stable across compiler
   versions. *)

let fnv1a name =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xffffffff)
    name;
  !h

(* Fold to 30 bits so the bucket computation stays on positive ints. *)
let bucket name ~buckets = fnv1a name land 0x3fffffff mod buckets
