(* Streaming directory reads.  A readdir implementation is a function
   from an integer cookie and a batch limit to one bounded batch of
   names plus the cookie to resume from ([None] when exhausted).
   Cookies are opaque positions: 0 starts a scan, and a cursor is only
   weakly consistent — entries added or removed between batches may or
   may not appear, like POSIX readdir. *)

type batch = string list * int option

type source = cookie:int -> limit:int -> batch

let default_batch = 256

(* Serve a cursor view over an already-materialised listing: the cookie
   is an index into the (re-derived) list.  For in-memory contexts whose
   listing is cheap; disk-backed directories implement real cursors. *)
let of_list names ~cookie ~limit =
  if limit <= 0 then invalid_arg "Cursor.of_list: limit must be positive";
  let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: tl -> drop (n - 1) tl in
  let rec take n l acc =
    if n = 0 then (List.rev acc, true)
    else match l with [] -> (List.rev acc, false) | x :: tl -> take (n - 1) tl (x :: acc)
  in
  let rest = drop cookie names in
  let page, more = take limit rest [] in
  (page, if more && drop limit rest <> [] then Some (cookie + limit) else None)

(* Filtering view over a source.  Batches may come back shorter than
   [limit] (even empty, with a non-[None] resume cookie): consumers must
   key termination on the cookie, not the batch size — which is why
   [drain]/[fold]/[iter] below do. *)
let filter pred (src : source) : source =
 fun ~cookie ~limit ->
  let names, next = src ~cookie ~limit in
  (List.filter pred names, next)

(* Drain a cursor to a full listing — the compatibility path under
   [listdir]. *)
let drain ?(batch = default_batch) (read : source) =
  let rec go cookie acc =
    let names, next = read ~cookie ~limit:batch in
    let acc = List.rev_append names acc in
    match next with None -> List.rev acc | Some c -> go c acc
  in
  go 0 []

(* Fold over every name in bounded batches without materialising the
   directory: the streaming consumers (fsck, scrubber, [springfs ls])
   use this. *)
let fold ?(batch = default_batch) (read : source) f init =
  let rec go cookie acc =
    let names, next = read ~cookie ~limit:batch in
    let acc = List.fold_left f acc names in
    match next with None -> acc | Some c -> go c acc
  in
  go 0 init

let iter ?batch read f = fold ?batch read (fun () name -> f name) ()
