(* Deterministic discrete-event scheduler over [Sp_sim.Simclock].

   Simulated clients run as cooperatively interleaved tasks (OCaml effect
   fibers).  A task never runs in parallel with another — the simulation
   stays single-threaded and deterministic — but whenever a task charges
   virtual time ([Simclock.advance], which every cost in the system goes
   through), it suspends and other ready tasks run until the clock
   reaches its wake time.  Service therefore overlaps by default;
   *serialization* is introduced only where a queueing resource ([Station],
   [Rwlock], the disk queue in [Sp_blockdev.Disk]) models contention.

   Determinism rules:
   - the ready queue is strict FIFO; the seed only shuffles the initial
     task order (and is folded into the schedule digest);
   - timers firing at the same instant wake in creation order;
   - tasks must not use wall-clock or OS randomness (nothing in the repo
     does).
   Same seed + same task bodies => identical schedule, metrics, clock. *)

module ED = Effect.Deep

exception Deadlock of string

(* Raised into blocked tasks when the run aborts (first task exception
   wins, e.g. [Sp_fault.Crash]: the machine stops).  Task code should
   never catch it. *)
exception Aborted

exception Deadline_exceeded of string

(* Task-local slots.  Globals that model *per-activity* state — the
   current domain in [Sp_obj.Door], the bulk-transfer scope depth in
   [Sp_obj.Bulk] — are only correct per task: two interleaved clients
   are each in their own domain, and their save/restore pairs do not
   nest across a suspension.  A library registers a [save] hook (capture
   the value, return a restoring closure); the scheduler snapshots every
   slot when a task suspends and reinstalls it when the task resumes.
   New tasks start from the values at [run] entry, and the run restores
   those same values on exit — normal or aborted. *)
let tls_hooks : (unit -> unit -> unit) list ref = ref []
let register_tls save = tls_hooks := save :: !tls_hooks
let tls_snapshot () = List.map (fun save -> save ()) !tls_hooks
let tls_restore snap = List.iter (fun restore -> restore ()) snap

(* ------------------------------------------------------------------ *)
(* Per-op deadlines                                                    *)
(* ------------------------------------------------------------------ *)

(* The ambient deadline is an absolute virtual instant, task-local like
   the current domain: each task (or the main context) carries its own.
   Enforcement is cooperative — [check_deadline] at op boundaries (the
   door checks on every call) plus a cancellation timer on [Station]
   queue waits, so a call blocked behind a saturated or dead domain is
   released instead of waiting forever.  The no-deadline path is one ref
   read. *)
let cur_deadline : int option ref = ref None

let () =
  register_tls (fun () ->
      let d = !cur_deadline in
      fun () -> cur_deadline := d)

let deadline () = !cur_deadline

let check_deadline ~on =
  match !cur_deadline with
  | Some d when Sp_sim.Simclock.now () > d -> raise (Deadline_exceeded on)
  | _ -> ()

let with_deadline ~ns f =
  if ns < 0 then invalid_arg "Sp_sched.with_deadline: negative duration";
  let d = Sp_sim.Simclock.now () + ns in
  let d = match !cur_deadline with Some d0 -> min d0 d | None -> d in
  let saved = !cur_deadline in
  cur_deadline := Some d;
  Fun.protect ~finally:(fun () -> cur_deadline := saved) f

type task = {
  t_id : int;  (* globally unique, for trace contexts *)
  t_seq : int;  (* run-local ordinal, folded into the schedule digest *)
  t_name : string;
  mutable t_done : bool;
  mutable t_kont : (unit, unit) ED.continuation option;
  mutable t_blocked_on : string;
  mutable t_joiners : (unit -> unit) list;
  mutable t_ctx : (unit -> unit) list;  (* TLS snapshot while suspended *)
}

type _ Effect.t +=
  | Wait : int -> unit Effect.t  (* service time: charged as busy *)
  | Sleep : int -> unit Effect.t  (* idle wait: time passes, no busy charge *)
  | Yield : unit Effect.t
  | Suspend : (string * ((unit -> unit) -> unit)) -> unit Effect.t

(* ------------------------------------------------------------------ *)
(* Timer heap: binary min-heap on (wake time, insertion seq)           *)
(* ------------------------------------------------------------------ *)

module Heap = struct
  (* Entries fire a closure, not a task: task wake-ups are one client
     ([h_fire = make_ready]), deadline cancellations another.  A stale
     entry (its purpose already served) must guard itself and no-op. *)
  type entry = { h_time : int; h_seq : int; h_fire : unit -> unit }
  type t = { mutable a : entry array; mutable n : int }

  let dummy = { h_time = 0; h_seq = 0; h_fire = ignore }

  let create () = { a = Array.make 64 dummy; n = 0 }
  let is_empty t = t.n = 0
  let lt x y = x.h_time < y.h_time || (x.h_time = y.h_time && x.h_seq < y.h_seq)

  let push t e =
    if t.n = Array.length t.a then begin
      let a' = Array.make (2 * t.n) dummy in
      Array.blit t.a 0 a' 0 t.n;
      t.a <- a'
    end;
    t.a.(t.n) <- e;
    t.n <- t.n + 1;
    let i = ref (t.n - 1) in
    while !i > 0 && lt t.a.(!i) t.a.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let tmp = t.a.(p) in
      t.a.(p) <- t.a.(!i);
      t.a.(!i) <- tmp;
      i := p
    done

  let min t = t.a.(0)

  let pop t =
    let top = t.a.(0) in
    t.n <- t.n - 1;
    t.a.(0) <- t.a.(t.n);
    t.a.(t.n) <- dummy;
    let i = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let s = ref !i in
      if l < t.n && lt t.a.(l) t.a.(!s) then s := l;
      if r < t.n && lt t.a.(r) t.a.(!s) then s := r;
      if !s = !i then continue_ := false
      else begin
        let tmp = t.a.(!s) in
        t.a.(!s) <- t.a.(!i);
        t.a.(!i) <- tmp;
        i := !s
      end
    done;
    top

  let clear t = t.n <- 0
end

(* ------------------------------------------------------------------ *)
(* Scheduler state                                                     *)
(* ------------------------------------------------------------------ *)

type runnable = Start of task * (unit -> unit) | Resume of task

type sched = {
  ready : runnable Queue.t;
  timers : Heap.t;
  mutable live : int;  (* spawned, not yet finished *)
  mutable timer_seq : int;
  mutable switches : int;
  mutable digest : int;
  mutable aborting : bool;
  mutable abort_exn : (exn * Printexc.raw_backtrace) option;
  tasks : (int, task) Hashtbl.t;
  baseline : (unit -> unit) list;  (* TLS values at [run] entry *)
}

let cur : sched option ref = ref None
let active () = !cur <> None
let in_task () = active () && Sp_sim.Sched_hook.in_task ()

let current () =
  if in_task () then Some (Sp_sim.Sched_hook.current ()) else None

let sched () =
  match !cur with
  | Some s -> s
  | None -> invalid_arg "Sp_sched: no scheduler active"

(* Task ids are globally monotonic (never reset): trace contexts from
   successive runs inside one [with_tracing] must not collide. *)
let global_ids = ref 0

(* Bumped at every [run].  Long-lived queueing resources (door stations,
   the disk queue, Mrsw locks) compare it to lazily drop state an aborted
   previous run left behind (a crashed task never runs its release). *)
let run_epoch = ref 0
let epoch () = !run_epoch

let fold_digest s id = s.digest <- ((s.digest * 1_000_003) + id + 1) land max_int

let make_ready s task =
  if (not s.aborting) && not task.t_done then begin
    task.t_blocked_on <- "";
    Queue.push (Resume task) s.ready
  end

let finish s task res =
  task.t_done <- true;
  task.t_kont <- None;
  s.live <- s.live - 1;
  List.iter (fun wake -> wake ()) task.t_joiners;
  task.t_joiners <- [];
  match res with
  | None -> ()
  | Some (e, bt) -> (
      match e with
      | Aborted -> ()
      | _ -> if s.abort_exn = None then s.abort_exn <- Some (e, bt))

let handler s task =
  {
    ED.retc = (fun () -> finish s task None);
    exnc = (fun e -> finish s task (Some (e, Printexc.get_raw_backtrace ())));
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Wait ns ->
            Some
              (fun (k : (a, unit) ED.continuation) ->
                if s.aborting then ED.continue k ()
                else begin
                  (* The wait is this task's own service time: charge busy
                     now, wake when the wall clock has passed it. *)
                  Sp_sim.Sched_hook.note_busy ns;
                  Sp_trace.on_task_suspend ();
                  task.t_ctx <- tls_snapshot ();
                  task.t_kont <- Some k;
                  task.t_blocked_on <- "timer";
                  s.timer_seq <- s.timer_seq + 1;
                  Heap.push s.timers
                    {
                      Heap.h_time = Sp_sim.Simclock.now () + ns;
                      h_seq = s.timer_seq;
                      h_fire = (fun () -> make_ready s task);
                    }
                end)
        | Sleep ns ->
            Some
              (fun (k : (a, unit) ED.continuation) ->
                if s.aborting then ED.continue k ()
                else begin
                  (* Idle wait (a backoff, a pause between arrivals): time
                     passes but the task was not doing work, so no busy
                     charge — it must not count as service time. *)
                  Sp_trace.on_task_suspend ();
                  task.t_ctx <- tls_snapshot ();
                  task.t_kont <- Some k;
                  task.t_blocked_on <- "sleep";
                  s.timer_seq <- s.timer_seq + 1;
                  Heap.push s.timers
                    {
                      Heap.h_time = Sp_sim.Simclock.now () + ns;
                      h_seq = s.timer_seq;
                      h_fire = (fun () -> make_ready s task);
                    }
                end)
        | Yield ->
            Some
              (fun (k : (a, unit) ED.continuation) ->
                if s.aborting then ED.continue k ()
                else begin
                  Sp_trace.on_task_suspend ();
                  task.t_ctx <- tls_snapshot ();
                  task.t_kont <- Some k;
                  Queue.push (Resume task) s.ready
                end)
        | Suspend (what, register) ->
            Some
              (fun (k : (a, unit) ED.continuation) ->
                if s.aborting then ED.discontinue k Aborted
                else begin
                  Sp_trace.on_task_suspend ();
                  task.t_ctx <- tls_snapshot ();
                  task.t_kont <- Some k;
                  task.t_blocked_on <- what;
                  register (fun () -> make_ready s task)
                end)
        | _ -> None);
  }

let new_task s ?name fn =
  incr global_ids;
  let id = !global_ids in
  let task =
    {
      t_id = id;
      (* Run-local ordinal: the digest must depend only on this run's
         schedule, not on how many tasks earlier runs created. *)
      t_seq = Hashtbl.length s.tasks;
      t_name = (match name with Some n -> n | None -> Printf.sprintf "t%d" id);
      t_done = false;
      t_kont = None;
      t_blocked_on = "";
      t_joiners = [];
      t_ctx = [];
    }
  in
  Hashtbl.replace s.tasks id task;
  s.live <- s.live + 1;
  Queue.push (Start (task, fn)) s.ready;
  task

let spawn ?name fn = (new_task (sched ()) ?name fn).t_id

let dispatch s r =
  (* [ctx] is the TLS image to run the task under: its own snapshot on
     resume, the run-entry baseline on first start.  After the task
     yields control back (suspended or finished), the baseline comes
     back so the scheduler loop — and the next task's start — see clean
     globals. *)
  let run_in task ctx f =
    s.switches <- s.switches + 1;
    fold_digest s task.t_seq;
    Sp_sim.Sched_hook.set_current task.t_id;
    tls_restore ctx;
    f ();
    tls_restore s.baseline;
    Sp_sim.Sched_hook.set_current Sp_sim.Sched_hook.main_ctx
  in
  match r with
  | Start (task, fn) ->
      run_in task s.baseline (fun () ->
          ED.match_with
            (fun () ->
              Sp_trace.span ~op:("task:" ^ task.t_name) ~src:"sched"
                ~dst:("task:" ^ task.t_name) fn)
            () (handler s task))
  | Resume task -> (
      match task.t_kont with
      | None -> ()  (* finished or aborted since it was enqueued *)
      | Some k ->
          task.t_kont <- None;
          run_in task task.t_ctx (fun () ->
              Sp_trace.on_task_resume ();
              ED.continue k ()))

(* Discontinue every still-blocked task so their [Fun.protect] finalizers
   run (releasing locks, closing trace frames) — the run's failure must
   not leak global state into the next run in the same process.  Each
   task unwinds under its own TLS snapshot; [run]'s finally puts the
   baseline back afterwards. *)
let abort_all s =
  s.aborting <- true;
  Queue.clear s.ready;
  Heap.clear s.timers;
  Hashtbl.iter
    (fun _ task ->
      match task.t_kont with
      | Some k when not task.t_done ->
          task.t_kont <- None;
          Sp_sim.Sched_hook.set_current task.t_id;
          tls_restore task.t_ctx;
          (try ED.discontinue k Aborted with _ -> ());
          Sp_sim.Sched_hook.set_current Sp_sim.Sched_hook.main_ctx
      | _ -> ())
    s.tasks

let blocked_names s =
  Hashtbl.fold
    (fun _ t acc ->
      if t.t_done then acc
      else
        Printf.sprintf "%s(%s)" t.t_name
          (if t.t_blocked_on = "" then "?" else t.t_blocked_on)
        :: acc)
    s.tasks []
  |> List.sort String.compare

let rec loop s =
  match s.abort_exn with
  | Some (e, bt) ->
      abort_all s;
      Printexc.raise_with_backtrace e bt
  | None ->
      if not (Queue.is_empty s.ready) then begin
        dispatch s (Queue.pop s.ready);
        loop s
      end
      else if not (Heap.is_empty s.timers) then begin
        let t = (Heap.min s.timers).Heap.h_time in
        let dt = t - Sp_sim.Simclock.now () in
        if dt > 0 then Sp_sim.Simclock.advance_raw dt;
        while (not (Heap.is_empty s.timers)) && (Heap.min s.timers).Heap.h_time = t do
          let e = Heap.pop s.timers in
          e.Heap.h_fire ()
        done;
        loop s
      end
      else if s.live > 0 then begin
        let names = String.concat ", " (blocked_names s) in
        abort_all s;
        raise (Deadlock ("all tasks blocked, no timers pending: " ^ names))
      end

type stats = { st_tasks : int; st_switches : int; st_digest : int }

(* Tiny xorshift for the seeded initial shuffle — [Sp_fault]'s generator
   lives above this library in the dependency order. *)
let shuffle seed arr =
  let state = ref (if seed = 0 then 0x9e3779b9 else seed land max_int) in
  let next bound =
    let x = !state in
    let x = x lxor (x lsl 13) land max_int in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) land max_int in
    state := x;
    x mod bound
  in
  for i = Array.length arr - 1 downto 1 do
    let j = next (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let run ?(seed = 0) fns =
  if active () then invalid_arg "Sp_sched.run: scheduler already active";
  let s =
    {
      ready = Queue.create ();
      timers = Heap.create ();
      live = 0;
      timer_seq = 0;
      switches = 0;
      digest = (seed * 31) + 17;
      aborting = false;
      abort_exn = None;
      tasks = Hashtbl.create 64;
      baseline = tls_snapshot ();
    }
  in
  incr run_epoch;
  let arr = Array.of_list fns in
  shuffle seed arr;
  Array.iteri (fun i fn -> ignore (new_task s ~name:(Printf.sprintf "t%d" i) fn)) arr;
  cur := Some s;
  Sp_sim.Sched_hook.advance_hook := Some (fun ns -> Effect.perform (Wait ns));
  Fun.protect
    ~finally:(fun () ->
      cur := None;
      Sp_sim.Sched_hook.advance_hook := None;
      Sp_sim.Sched_hook.set_current Sp_sim.Sched_hook.main_ctx;
      tls_restore s.baseline)
    (fun () -> loop s);
  { st_tasks = Hashtbl.length s.tasks; st_switches = s.switches; st_digest = s.digest }

(* ------------------------------------------------------------------ *)
(* Task-facing primitives                                              *)
(* ------------------------------------------------------------------ *)

let sleep ns =
  if ns < 0 then invalid_arg "Sp_sched.sleep: negative duration";
  if in_task () then (if ns > 0 then Effect.perform (Sleep ns))
  else Sp_sim.Simclock.advance ns

let yield () = if in_task () then Effect.perform Yield

let suspend ~on register =
  if not (in_task ()) then
    invalid_arg "Sp_sched.suspend: not inside a scheduler task";
  Effect.perform (Suspend (on, register))

(* Schedule [fire] at absolute virtual instant [time] on the current
   run's timer heap (clamped to now if already past).  No-op outside a
   run: without a scheduler nothing ever suspends, so there is no
   pending wait to cancel.  The closure must guard itself — it may fire
   after its purpose is already served. *)
let at_time time fire =
  match !cur with
  | None -> ()
  | Some s ->
      s.timer_seq <- s.timer_seq + 1;
      Heap.push s.timers
        {
          Heap.h_time = max time (Sp_sim.Simclock.now ());
          h_seq = s.timer_seq;
          h_fire = fire;
        }

(* Record [dt] of queue waiting: global metric + current trace span. *)
let note_queue dt =
  if dt > 0 then begin
    Sp_sim.Metrics.add_queue_ns dt;
    Sp_trace.note_queue dt
  end

let join id =
  match !cur with
  | None -> ()
  | Some s -> (
      match Hashtbl.find_opt s.tasks id with
      | None -> ()
      | Some task ->
          if not task.t_done then
            suspend ~on:("join:" ^ task.t_name) (fun wake ->
                task.t_joiners <- wake :: task.t_joiners))

(* ------------------------------------------------------------------ *)
(* Ivar: write-once cell                                               *)
(* ------------------------------------------------------------------ *)

module Ivar = struct
  type 'a t = { mutable v : 'a option; mutable waiters : (unit -> unit) list }

  let create () = { v = None; waiters = [] }

  let fill t x =
    match t.v with
    | Some _ -> invalid_arg "Sp_sched.Ivar.fill: already filled"
    | None ->
        t.v <- Some x;
        let ws = List.rev t.waiters in
        t.waiters <- [];
        List.iter (fun w -> w ()) ws

  let read t =
    match t.v with
    | Some x -> x
    | None -> (
        suspend ~on:"ivar" (fun wake -> t.waiters <- wake :: t.waiters);
        match t.v with Some x -> x | None -> raise Aborted)
end

(* ------------------------------------------------------------------ *)
(* Station: an s-server FIFO queueing station                          *)
(* ------------------------------------------------------------------ *)

module Station = struct
  (* A queued caller with an ambient deadline arms a cancellation timer:
     if the timer fires while the entry is still [`Waiting] it flips to
     [`Expired] and wakes the task, which raises [Deadline_exceeded]
     *without ever owning a server slot*.  [release] skips expired
     entries when handing the slot on, so an abandoned wait can never
     strand a server. *)
  type waiter = {
    mutable w_state : [ `Waiting | `Granted | `Expired ];
    mutable w_wake : unit -> unit;
  }

  type t = {
    s_name : string;
    s_servers : int;
    mutable s_busy : int;
    s_q : waiter Queue.t;
    mutable s_served : int;
    mutable s_queued : int;
    mutable s_epoch : int;
  }

  let create ?(servers = 1) name =
    if servers < 1 then invalid_arg "Sp_sched.Station.create: servers < 1";
    { s_name = name; s_servers = servers; s_busy = 0; s_q = Queue.create ();
      s_served = 0; s_queued = 0; s_epoch = 0 }

  (* Drop slot/queue state a previous, aborted run left behind. *)
  let check_epoch st =
    if st.s_epoch <> epoch () then begin
      st.s_epoch <- epoch ();
      st.s_busy <- 0;
      Queue.clear st.s_q
    end

  let rec release st =
    if Queue.is_empty st.s_q then st.s_busy <- st.s_busy - 1
    else begin
      let w = Queue.pop st.s_q in
      match w.w_state with
      | `Waiting ->
          (* hand the slot to the queue head *)
          w.w_state <- `Granted;
          w.w_wake ()
      | `Expired -> release st  (* gave up while queued: skip it *)
      | `Granted -> assert false  (* granted entries leave the queue *)
    end

  let serve st ns =
    if not (in_task ()) then Sp_sim.Simclock.advance ns
    else begin
      check_epoch st;
      st.s_served <- st.s_served + 1;
      if st.s_busy >= st.s_servers then begin
        st.s_queued <- st.s_queued + 1;
        let w = { w_state = `Waiting; w_wake = ignore } in
        (match deadline () with
        | Some d ->
            at_time d (fun () ->
                if w.w_state = `Waiting then begin
                  w.w_state <- `Expired;
                  w.w_wake ()
                end)
        | None -> ());
        let t0 = Sp_sim.Simclock.now () in
        suspend ~on:("station:" ^ st.s_name) (fun wake ->
            w.w_wake <- wake;
            Queue.push w st.s_q);
        note_queue (Sp_sim.Simclock.now () - t0);
        (* Raised before the protect below: we never acquired a slot, so
           there is nothing to release. *)
        if w.w_state = `Expired then
          raise (Deadline_exceeded ("station:" ^ st.s_name))
      end
      else st.s_busy <- st.s_busy + 1;
      (* Service time is real work: [advance] in a task charges busy. *)
      Fun.protect
        ~finally:(fun () -> release st)
        (fun () -> Sp_sim.Simclock.advance ns)
    end

  let stats st = (st.s_served, st.s_queued)
end

(* ------------------------------------------------------------------ *)
(* Rwlock: fair (strict-FIFO) readers/writer lock                      *)
(* ------------------------------------------------------------------ *)

module Rwlock = struct
  type t = {
    rw_name : string;
    mutable readers : int list;  (* task ids holding read access *)
    mutable writer : int option;  (* task id holding write access *)
    rw_q : ([ `R | `W ] * int * (unit -> unit)) Queue.t;
    mutable rw_contended : int;
    mutable rw_epoch : int;
  }

  let create name =
    { rw_name = name; readers = []; writer = None; rw_q = Queue.create ();
      rw_contended = 0; rw_epoch = 0 }

  let check_epoch t =
    if t.rw_epoch <> epoch () then begin
      t.rw_epoch <- epoch ();
      t.readers <- [];
      t.writer <- None;
      Queue.clear t.rw_q
    end

  let me () = Sp_sim.Sched_hook.current ()

  let holds t id = t.writer = Some id || List.mem id t.readers

  let held_write t =
    in_task ()
    &&
    (check_epoch t;
     t.writer = Some (me ()))

  (* Admission is strict FIFO: a queued writer blocks readers that arrive
     after it, so a steady reader stream cannot starve the writer. *)
  let drain t =
    let rec go () =
      if (not (Queue.is_empty t.rw_q)) && t.writer = None then
        match Queue.peek t.rw_q with
        | `W, id, wake ->
            if t.readers = [] then begin
              ignore (Queue.pop t.rw_q);
              t.writer <- Some id;
              wake ()
            end
        | `R, id, wake ->
            ignore (Queue.pop t.rw_q);
            t.readers <- id :: t.readers;
            wake ();
            go ()
    in
    go ()

  let wait_turn t kind =
    t.rw_contended <- t.rw_contended + 1;
    let t0 = Sp_sim.Simclock.now () in
    suspend ~on:("rwlock:" ^ t.rw_name) (fun wake ->
        Queue.push (kind, me (), wake) t.rw_q);
    note_queue (Sp_sim.Simclock.now () - t0)

  let acquire_read t =
    if t.writer = None && Queue.is_empty t.rw_q then
      t.readers <- me () :: t.readers
    else wait_turn t `R  (* the granter records us as a reader *)

  let release_read t =
    let id = me () in
    let rec drop = function
      | [] -> []
      | x :: rest -> if x = id then rest else x :: drop rest
    in
    t.readers <- drop t.readers;
    if t.readers = [] then drain t

  let acquire_write t =
    if t.writer = None && t.readers = [] && Queue.is_empty t.rw_q then
      t.writer <- Some (me ())
    else wait_turn t `W

  let release_write t =
    t.writer <- None;
    drain t

  let with_read t f =
    if not (in_task ()) then f ()
    else if (check_epoch t; holds t (me ())) then f ()
      (* reentrant: already have access *)
    else begin
      acquire_read t;
      Fun.protect ~finally:(fun () -> release_read t) f
    end

  let with_write t f =
    if not (in_task ()) then f ()
    else if (check_epoch t; t.writer = Some (me ())) then f ()
      (* reentrant write *)
    else if List.mem (me ()) t.readers then
      (* Upgrade would self-deadlock behind our own read hold; the grant
         paths never do this, but a task that does keeps its read access. *)
      f ()
    else begin
      acquire_write t;
      Fun.protect ~finally:(fun () -> release_write t) f
    end

  let contended t = t.rw_contended
end

module Mutex = struct
  type t = Rwlock.t

  let create name = Rwlock.create name
  let with_lock t f = Rwlock.with_write t f
  let held t = Rwlock.held_write t
end
