(** Deterministic discrete-event scheduler: simulated clients as
    cooperatively interleaved tasks over [Sp_sim.Simclock].

    While a run is active, every [Simclock.advance] performed by a task
    suspends it until virtual time passes (other ready tasks run in the
    gap), so independent clients' service times overlap by default.
    Contention is modelled explicitly with the queueing resources below:
    a {!Station} serializes door crossings into a domain, {!Rwlock} makes
    [Mrsw] grants block, and the disk keeps an elevator queue (in
    [Sp_blockdev.Disk]).  Time spent waiting in any of these queues is
    recorded in [Sp_sim.Metrics] ([queue_ns]) and on the waiting task's
    open trace span.

    Determinism: the ready queue is strict FIFO, same-instant timers wake
    in creation order, and the seed only shuffles the initial task order.
    Same seed + same task bodies give an identical schedule (see
    {!stats}), metrics and final clock. *)

(** All tasks are blocked and no timer is pending — a lost wakeup or a
    lock cycle.  The run is aborted before this is raised. *)
exception Deadlock of string

(** Raised into still-blocked tasks when a run aborts (first task
    exception wins — e.g. [Sp_fault.Crash], the machine stopping).  It
    unwinds each task so [Fun.protect] finalizers restore global state.
    Task code must never catch it. *)
exception Aborted

(** Raised when an operation overruns the ambient {!with_deadline}: by
    {!check_deadline} at an op boundary, or from inside a {!Station}
    queue wait whose cancellation timer fired.  The payload names the
    operation or resource (["station:door:fs"], ["net:read"]...).
    [Fserr.Timed_out] is an alias, so layer code can match it without
    depending on this library. *)
exception Deadline_exceeded of string

(** [true] while a [run] is executing (even from the scheduler's own
    main loop, where no task is current). *)
val active : unit -> bool

(** [true] iff the caller is executing inside a scheduler task. *)
val in_task : unit -> bool

(** The current task's id, when [in_task ()]. *)
val current : unit -> int option

(** Generation counter, bumped at every [run].  Long-lived queueing
    resources built on {!suspend} compare it to lazily drop queue state
    an aborted previous run left behind (a crashed task never runs its
    release path).  {!Station} and {!Rwlock} do this internally. *)
val epoch : unit -> int

type stats = {
  st_tasks : int;  (** tasks that ran, including [spawn]ed ones *)
  st_switches : int;  (** dispatches (context switches) *)
  st_digest : int;  (** order-sensitive hash of the dispatch sequence *)
}

(** [run ?seed tasks] runs each thunk as a task until all (including any
    [spawn]ed during the run) finish.  The seed shuffles the initial task
    order.  If a task raises, all other tasks are unwound with {!Aborted}
    and the first exception is re-raised.  Runs cannot nest. *)
val run : ?seed:int -> (unit -> unit) list -> stats

(** Create a task from inside a run; returns its id (see {!join}). *)
val spawn : ?name:string -> (unit -> unit) -> int

(** Suspend the calling task for [ns] virtual nanoseconds of {e idle}
    time: the clock passes but nothing is charged as busy/service time
    (use [Simclock.advance] for time the task is doing work — inside a
    task it suspends just the same, but charges busy).  Backoffs and
    inter-arrival pauses belong here.  Outside any run it simply advances
    the clock. *)
val sleep : int -> unit

(** Let other ready tasks run; no virtual time passes. *)
val yield : unit -> unit

(** Block until task [id] finishes.  Returns immediately outside a run or
    if the task is already done. *)
val join : int -> unit

(** [suspend ~on register] parks the calling task; [register] receives the
    waker that makes it ready again.  [on] labels the wait in {!Deadlock}
    reports.  Building block for custom queueing resources (the disk's
    elevator queue uses it). *)
val suspend : on:string -> ((unit -> unit) -> unit) -> unit

(** Record queue-wait time: adds to [Metrics.queue_ns] and to the calling
    task's open trace span. *)
val note_queue : int -> unit

(** [with_deadline ~ns f] runs [f] with the ambient deadline set to
    [now + ns] virtual nanoseconds — or the enclosing deadline if that is
    sooner (deadlines only tighten when nested).  The deadline is
    task-local: it travels with the task across suspensions and does not
    leak to other tasks.  Enforcement is cooperative: {!check_deadline}
    at op boundaries (the door checks on every call), plus a cancellation
    timer on {!Station} queue waits so a caller parked behind a dead or
    saturated domain is released with {!Deadline_exceeded} instead of
    waiting forever.  Works outside a run too (pure clock comparison; no
    queue waits exist there to cancel). *)
val with_deadline : ns:int -> (unit -> 'a) -> 'a

(** The ambient absolute deadline, if any. *)
val deadline : unit -> int option

(** Raise {!Deadline_exceeded} labelled [on] if the ambient deadline has
    passed.  One ref read when no deadline is set. *)
val check_deadline : on:string -> unit

(** [register_tls save] declares a global mutable as {e task-local}:
    [save ()] captures its current value and returns a closure that
    restores it.  The scheduler snapshots every registered slot when a
    task suspends and reinstalls it when the task resumes, so state that
    models per-activity context ([Sp_obj.Door]'s current domain, the
    bulk-transfer scope depth) nests correctly under interleaving
    instead of leaking between tasks.  Tasks start from the values at
    [run] entry, and the run restores those values on exit — normal or
    aborted.  Call once, at library initialisation. *)
val register_tls : (unit -> unit -> unit) -> unit

(** Write-once synchronization cell. *)
module Ivar : sig
  type 'a t

  val create : unit -> 'a t

  (** Wakes all readers.  Filling twice is [Invalid_argument]. *)
  val fill : 'a t -> 'a -> unit

  (** Blocks until filled. *)
  val read : 'a t -> 'a
end

(** An s-server FIFO queueing station: [serve st ns] waits for a free
    server slot (queue time is recorded), then holds it for [ns] of
    service time.  Outside a run it degrades to [Simclock.advance ns].
    If the caller's ambient {!with_deadline} expires while it is still
    queued, the wait is cancelled and {!Deadline_exceeded} raised — the
    slot is handed to the next live waiter, never stranded. *)
module Station : sig
  type t

  val create : ?servers:int -> string -> t
  val serve : t -> int -> unit

  (** (total served, of which had to queue) *)
  val stats : t -> int * int
end

(** Fair readers/writer lock with strict-FIFO admission: a queued writer
    blocks readers that arrive after it (no writer starvation).  Scoped
    acquisition only; reentrant acquisition by the holding task runs the
    body directly.  Outside a run both combinators just run [f]. *)
module Rwlock : sig
  type t

  val create : string -> t
  val with_read : t -> (unit -> 'a) -> 'a
  val with_write : t -> (unit -> 'a) -> 'a

  (** Number of acquisitions that had to queue. *)
  val contended : t -> int
end

(** [Rwlock] in writer-only dress: a reentrant FIFO mutex. *)
module Mutex : sig
  type t

  val create : string -> t
  val with_lock : t -> (unit -> 'a) -> 'a

  (** Whether the calling task currently holds [t] (always false outside
      a run).  Lets a would-be group-commit follower detect that it is
      already inside the lock's critical section — parking there would
      deadlock the leader. *)
  val held : t -> bool
end
