(** Write-ahead (physical block) journal for the SFS disk layer.

    Modelled on the journaling ext3 layers over ext2 (data=journal mode):
    between commits, block writes buffer in memory; [commit] then writes
    every dirty block to the journal area, seals the transaction with a
    checksummed commit header, copies the blocks to their home locations,
    and finally marks the journal clean.  A crash at any point leaves the
    device in one of two recoverable states:

    - commit header absent/unsealed → the transaction never happened;
      the home locations still hold the previous contents;
    - commit header sealed → [replay] (run automatically at [attach],
      i.e. at mount) copies the journalled blocks home again.

    Checksums over the header and each journalled block defeat torn
    journal writes: a torn commit header or torn journal data block fails
    verification and the transaction is treated as uncommitted.

    The journal area is [1 + capacity] blocks placed before the layout's
    [data_start], so {!Fsck} (which scans only the data region) never
    sees it.  A commit whose dirty set exceeds the journal capacity is
    split into several independently-atomic batches; crash atomicity then
    holds per batch, not per sync — callers keep transactions small by
    syncing regularly.

    Batches pipeline: the journal-area data blocks of a batch go out as
    one vectored elevator request (the area is contiguous — one seek,
    back-to-back transfers), and the clean-mark header write between
    consecutive batches of one commit is elided — the next batch's sealed
    header, carrying a higher seq, supersedes the previous seal, and one
    clean mark is written after the last batch.  Replay stays sound
    because a batch's home copies all complete before the next batch
    reuses the journal area: a sealed header whose journal blocks have
    been partly overwritten by the next batch fails per-entry checksum
    verification and is treated as uncommitted — correctly, since the
    batch it describes is already home. *)

type t

(** A block device endpoint as the disk layer sees it: the raw device
    (unjournaled, writes go straight through) or a journaled view, either
    optionally verified by a {!Csum} region.  All disk-layer I/O goes
    through {!read}/{!write} on a [dev]. *)
type dev

(** Write a clean journal header at block [start] (used by [mkfs]). *)
val init : Sp_blockdev.Disk.t -> start:int -> unit

(** Replay a sealed transaction if the header at [start] holds one;
    returns the number of blocks copied home (0 when clean, torn, or
    unformatted).  Idempotent. *)
val replay : Sp_blockdev.Disk.t -> start:int -> int

(** [attach disk ~start ~blocks] replays any sealed transaction, then
    returns a journal writing to the [blocks]-block area at [start]. *)
val attach : Sp_blockdev.Disk.t -> start:int -> blocks:int -> t

(** Unjournaled, unverified dev: straight passthrough to the device. *)
val raw : Sp_blockdev.Disk.t -> dev

(** [make ?journal ?csum disk] assembles a dev: an attached journal
    buffers writes until {!commit}; an attached {!Csum} verifies every
    device read and maintains the checksum region on every write. *)
val make : ?journal:t -> ?csum:Csum.t -> Sp_blockdev.Disk.t -> dev

(** [fence dev f] installs an incarnation fence: [f] runs before every
    device read or write issued through [dev] (including each block of a
    {!commit}).  The disk layer points it at its domain's liveness so a
    fiber resumed from a device-charge suspension after its mount was
    killed dies ([Sdomain.Dead_domain]) instead of tearing the raw disk
    behind a remounted, journal-replayed successor.  Mid-commit deaths
    leave exactly the torn-transaction states {!replay} already
    tolerates.  Default: no-op. *)
val fence : dev -> (unit -> unit) -> unit

(** The underlying device (journaled or not). *)
val disk : dev -> Sp_blockdev.Disk.t

(** The attached journal, if any. *)
val journal : dev -> t option

(** Whether a checksum region is attached. *)
val checksums : dev -> bool

(** [read dev n]: dirty buffered blocks are served from memory (free,
    like a cache); everything else comes from the device and, when a
    [Csum] is attached, is verified against its recorded checksum —
    raising [Fserr.Checksum_error] on mismatch. *)
val read : dev -> int -> bytes

(** [write dev n data]: on a raw dev, straight to the device (followed by
    a write-through of the affected checksum-region block when a [Csum]
    is attached); on a journaled dev, buffered in memory until
    {!commit}. *)
val write : dev -> int -> bytes -> unit

(** [write_vec dev [(n, data); ...]]: one clustered-writeback extent,
    blocks in ascending order.  Equivalent to [write] per block except on
    a raw checksummed dev, where the data blocks go out back to back (one
    seek plus a contiguous transfer under the device's head-adjacency
    model) and the checksum region is flushed once for the whole extent
    instead of once per block. *)
val write_vec : dev -> (int * bytes) list -> unit

(** Commit buffered writes (no-op on raw devs or when nothing is dirty).
    With a [Csum] attached, each batch's dirty checksum-region blocks are
    appended to that batch's transaction, so data and checksums commit
    atomically together. *)
val commit : dev -> unit

(** Dirty blocks currently buffered (0 for raw devs). *)
val pending : dev -> int

(** Count a leader-run group commit / an absorbed sync against the dev's
    journal (no-op on raw devs).  Called by the disk layer's sync path —
    the leader/follower protocol lives there, the journal only keeps the
    books. *)
val note_group_commit : dev -> unit

val note_absorbed : dev -> unit

type stats = {
  js_commits : int;  (** sealed transactions written *)
  js_journal_writes : int;  (** device writes spent on the journal area *)
  js_replayed : int;  (** blocks copied home by replay at attach *)
  js_group_commits : int;  (** commits run by a group-commit leader *)
  js_absorbed_syncs : int;
      (** syncs that returned by riding another caller's commit instead
          of running their own *)
}

val stats : t -> stats

(** Blocks one transaction can hold given the area size passed to
    {!attach} (the commit header block is not counted). *)
val capacity : t -> int
