(** The SFS disk layer.

    Implements an on-disk UFS-compatible-in-spirit file system over a
    simulated block device (paper §6.2, Figure 10).  It is a base layer: it
    builds directly on a storage device and cannot be stacked on another
    file system.  It does {e not} implement a coherency algorithm — the
    coherency layer is stacked on top of it — and it does not cache file
    data; its only private state is the i-node cache (plus the allocation
    bitmaps), so open and stat are served without disk I/O while reads and
    writes reach the device.

    Files are exported with the full memory-object/pager contract: upper
    cache managers bind to a file's memory object and receive a pager
    backed by the device, with the [fs_pager] attribute subclass available
    by narrowing. *)

(** Format the device with an empty file system (root directory only).
    With [~journal:true] a write-ahead journal area (see {!Journal}) is
    reserved between the inode table and the data region; a subsequent
    {!mount} then buffers writes and commits them atomically on sync, so
    a crash at any point recovers to the last synced state.

    With [~checksums:true] (the default) a per-block checksum region (see
    {!Csum}) is reserved as well: every mounted read is verified, raising
    [Fserr.Checksum_error] on silent corruption, and every write updates
    the region — through the journal when there is one, so crash
    atomicity covers the checksums too.

    [inodes] overrides the default inode-table sizing (see
    {!Layout.compute}) — a million-file volume needs more inodes than the
    one-per-four-blocks ratio provides without paying for a
    proportionally huge device. *)
val mkfs :
  ?journal:bool -> ?checksums:bool -> ?inodes:int -> Sp_blockdev.Disk.t -> unit

(** [mount ~name disk] mounts a formatted device and returns the layer as
    a stackable file system.  [node] (default ["local"]) places the
    serving domain; [domain] overrides it entirely (used to co-locate the
    disk layer with another layer for the same-domain experiments).
    Raises {!Sp_core.Fserr.Io_error} on an unformatted device.

    Mounting a journaled volume replays any sealed-but-unapplied journal
    transaction first: mounting is crash recovery.

    [dir_index] (default [true]) controls whether flat directories
    upgrade to the hashed index when they outgrow
    {!Sp_dir.Index.upgrade_threshold}; [false] keeps them flat — the
    baseline the namespace benchmark measures linear lookup against.
    Directories already indexed on disk stay indexed either way.

    [group_commit] (default [true]) controls sync coalescing under
    concurrent scheduler tasks: the first sync elects itself leader,
    waits the model's [commit_delay_ns] (idle), then runs one commit
    over the union dirty set; syncs arriving before the seal park and
    return when that commit lands — a sync never returns before a
    sealed commit covers its writes.  A clean volume's sync returns
    immediately, charging no device I/O.  [false] restores
    one-commit-per-sync (the equivalence-test / A-B baseline). *)
val mount :
  ?node:string -> ?domain:Sp_obj.Sdomain.t -> ?dir_index:bool ->
  ?group_commit:bool -> name:string ->
  Sp_blockdev.Disk.t -> Sp_core.Stackable.t

(** Replay the journal of an unmounted device without mounting it;
    returns the number of blocks copied home (0 on clean or unjournaled
    volumes).  Raises {!Sp_core.Fserr.Io_error} on an unformatted
    device. *)
val recover : Sp_blockdev.Disk.t -> int

(** [creator ~node ~get_disk] packages [mkfs]+[mount] as a stackable-fs
    creator: [cr_create ~name] formats (if needed) and mounts
    [get_disk name]. *)
val creator :
  ?node:string -> ?journal:bool -> ?checksums:bool ->
  get_disk:(string -> Sp_blockdev.Disk.t) ->
  unit -> Sp_core.Stackable.creator

(** {1 Introspection (tests, tools)} *)

(** Free data blocks remaining. *)
val free_blocks : Sp_core.Stackable.t -> int

(** Free inodes remaining. *)
val free_inodes : Sp_core.Stackable.t -> int

(** Number of cached inodes (the layer's "small state"). *)
val cached_inodes : Sp_core.Stackable.t -> int

(** Live pager–cache channels served by this layer (Figure 2's count). *)
val channel_count : Sp_core.Stackable.t -> int

(** Whether the mounted volume has a journal. *)
val journaled : Sp_core.Stackable.t -> bool

(** Whether the mounted volume has a checksum region. *)
val checksummed : Sp_core.Stackable.t -> bool

(** Journal counters ([None] on unjournaled volumes). *)
val journal_stats : Sp_core.Stackable.t -> Journal.stats option

(** Buffered dirty blocks not yet committed (0 on unjournaled volumes,
    where writes reach the device immediately). *)
val journal_pending : Sp_core.Stackable.t -> int
