(** On-disk layout of the SFS disk layer.

    Block 0 holds the superblock; then the inode bitmap, the block bitmap,
    the inode table, and the data region.  All sizes derive from the device
    size at [mkfs] time, UFS-style (paper [14]). *)

(** Bytes per inode slot on disk. *)
val inode_size : int

(** Inodes per block. *)
val inodes_per_block : int

(** Direct block pointers per inode. *)
val n_direct : int

(** Block pointers held by one indirect block. *)
val ptrs_per_block : int

type t = {
  total_blocks : int;
  inode_count : int;
  inode_bitmap_start : int;  (** block index *)
  inode_bitmap_blocks : int;
  block_bitmap_start : int;
  block_bitmap_blocks : int;
  inode_table_start : int;
  inode_table_blocks : int;
  csum_start : int;  (** meaningless when [csum_blocks] is 0 *)
  csum_blocks : int;  (** checksum region size; 0 = no checksums *)
  journal_start : int;  (** meaningless when [journal_blocks] is 0 *)
  journal_blocks : int;  (** journal area size; 0 = unjournaled *)
  data_start : int;  (** first data block *)
}

(** Checksum-region entries (device blocks covered) per region block. *)
val csum_entries_per_block : int

(** Compute the layout for a device of [total_blocks] blocks, reserving
    [journal_blocks] (default 0, meaning no journal; otherwise >= 2:
    header + data slots) between the inode table and the data region,
    and, when [checksums] is true (default false), a checksum region (one
    4-byte checksum per device block) between the inode table and the
    journal.  [inodes] overrides the default one-inode-per-four-blocks
    sizing of the inode table (min 16).  Raises [Invalid_argument] if the
    device is too small to hold any data. *)
val compute :
  ?journal_blocks:int -> ?checksums:bool -> ?inodes:int -> total_blocks:int ->
  unit -> t

(** Maximum file size in bytes under this layout (direct + single
    indirect + double indirect). *)
val max_file_size : t -> int

(** Serialise the superblock (includes a magic and the layout). *)
val encode_superblock : t -> bytes

(** Decode and validate a superblock, raising {!Sp_core.Fserr.Io_error} on
    bad magic or version. *)
val decode_superblock : bytes -> t
