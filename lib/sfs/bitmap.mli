(** On-disk allocation bitmaps (inode and block bitmaps).

    The bitmap blocks are cached in memory at mount and written back
    lazily; [flush] persists dirty blocks.  Bit [i] set means unit [i] is
    allocated. *)

type t

(** [load dev ~start ~blocks ~bits] reads the bitmap occupying [blocks]
    device blocks from [start]; only the first [bits] bits are valid.
    Unjournaled callers pass [Journal.raw disk]. *)
val load : Journal.dev -> start:int -> blocks:int -> bits:int -> t

val is_set : t -> int -> bool
val set : t -> int -> unit
val clear : t -> int -> unit

(** First clear bit at index >= [from] (default 0), or [None] if full. *)
val find_free : ?from:int -> t -> int option

(** Number of set bits. *)
val used : t -> int

val capacity : t -> int

(** Write dirty bitmap blocks back to the device. *)
val flush : t -> unit

(** No cached block is dirty: a [flush] would write nothing. *)
val clean : t -> bool
