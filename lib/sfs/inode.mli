(** On-disk inodes and the in-memory inode cache.

    The disk layer's only private state is "basically an i-node cache"
    (paper §6.2): parsed inodes are cached at first touch so that open and
    stat need no disk I/O, and written back on [flush]. *)

type kind = Free | File | Dir

type t = {
  mutable kind : kind;
  mutable nlink : int;
  mutable len : int;
  mutable atime : int;
  mutable mtime : int;
  mutable ctime : int;
  direct : int array;  (** [Layout.n_direct] block pointers; 0 = hole *)
  mutable indirect : int;  (** single-indirect block pointer; 0 = none *)
  mutable double_indirect : int;
}

val encode : t -> bytes
val decode : bytes -> t

(** Attribute view of an inode. *)
val to_attr : t -> Sp_vm.Attr.t

(** Apply the settable attribute fields (times, nlink; not len/kind). *)
val apply_attr : t -> Sp_vm.Attr.t -> unit

(** {1 Inode table cache} *)

type cache

(** Unjournaled callers pass [Journal.raw disk]. *)
val cache_create : Journal.dev -> Layout.t -> cache

(** Fetch inode [ino], from memory if cached. *)
val get : cache -> int -> t

(** Mark inode [ino] dirty (must have been fetched). *)
val mark_dirty : cache -> int -> unit

(** [put c ino inode] installs a fresh in-memory inode (for allocation)
    and marks it dirty. *)
val put : cache -> int -> t -> unit

(** Write dirty inodes back to the inode table. *)
val flush : cache -> unit

(** Drop clean cached inodes (dirty ones are flushed first). *)
val drop : cache -> unit

(** Number of cached inodes. *)
val cached_count : cache -> int

(** No cached inode is dirty: a [flush] would write nothing.  O(1) — the
    sync fast path consults this per call. *)
val clean : cache -> bool
