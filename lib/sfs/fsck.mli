(** Off-line consistency checker for the SFS on-disk format.

    Reads the raw device (no mutation) and cross-checks the directory
    graph, the inode table and the allocation bitmaps, UFS-fsck style.
    Run it against a synced volume: in-memory caches of a live mount are
    invisible to it. *)

type problem =
  | Unreachable_inode of int
      (** allocated in the inode bitmap but not reachable from the root *)
  | Free_inode_referenced of int * string
      (** a directory entry names an inode the bitmap says is free *)
  | Bad_kind of int * string  (** entry/inode kind disagree *)
  | Block_out_of_range of int * int  (** (ino, block) pointer outside the data area *)
  | Block_double_use of int  (** block referenced by two owners *)
  | Block_not_allocated of int  (** referenced block marked free *)
  | Block_leak of int  (** allocated block referenced by nobody *)
  | Bad_nlink of int * int * int  (** (ino, expected, stored) *)
  | Checksum_mismatch of int
      (** block contents do not match the checksum region *)
  | Dir_index of int * string
      (** (ino, defect) — the directory's hash index is damaged:
          dangling slots, entries hashed into the wrong bucket,
          unreachable entries or a lying header count *)

val pp_problem : Format.formatter -> problem -> unit

(** Run the check.  Returns [] for a consistent volume.  With
    [~verify_checksums:true] every in-use covered block (metadata plus
    referenced data blocks) is also hashed and compared against the
    checksum region, reporting {!Checksum_mismatch} — this is how torn or
    silently corrupted writes are positively detected even when the
    directory graph still parses.  No-op on volumes formatted without
    checksums. *)
val check : ?verify_checksums:bool -> Sp_blockdev.Disk.t -> problem list
