module Disk = Sp_blockdev.Disk
module Stackable = Sp_core.Stackable
module File = Sp_core.File
module Sname = Sp_naming.Sname
module Rng = Sp_fault.Rng

type outcome = Survived | Lost of string | Corrupt of string | Detected of string

type report = {
  rp_journal : bool;
  rp_torn : bool;
  rp_checksums : bool;
  rp_ops : int;
  rp_seed : int;
  rp_writes : int;
  rp_points : int;
  rp_survived : int;
  rp_lost : int;
  rp_corrupt : int;
  rp_detected : int;
  rp_first_bad : (int * string) option;
}

let disk_blocks = 1024
let root = Sname.of_components []
let n_files = 6
let max_pos = 12 * 1024
let max_write = 4096

(* A consistent cut the recovered volume may legally equal: the set of
   files and their exact contents at some sync boundary. *)
type snapshot = (string * bytes) list

type sim = {
  fs : Stackable.t;
  expected : (string, bytes) Hashtbl.t;  (* live contents, incl. unsynced *)
  mutable synced : snapshot;  (* as of the last completed sync *)
  mutable pending : snapshot option;  (* set while a sync is in flight *)
}

let snapshot tbl =
  Hashtbl.fold (fun name data acc -> (name, Bytes.copy data) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let do_sync st =
  st.pending <- Some (snapshot st.expected);
  Stackable.sync st.fs;
  st.synced <- Option.get st.pending;
  st.pending <- None

(* The workload draws every decision from [rng] in strict operation
   order and never inspects wall time or hash order, so a given seed
   always produces the identical op and device-write sequence no matter
   where (or whether) a crash rule fires. *)
let write_step st rng =
  let name = "f" ^ string_of_int (Rng.int rng n_files) in
  let path = Sname.of_components [ name ] in
  let pos = Rng.int rng max_pos in
  let len = 1 + Rng.int rng max_write in
  let base = Rng.int rng 256 in
  let data = Bytes.init len (fun i -> Char.chr ((base + i) land 0xff)) in
  let f =
    if Hashtbl.mem st.expected name then Stackable.open_file st.fs path
    else begin
      let f = Stackable.create st.fs path in
      Hashtbl.replace st.expected name Bytes.empty;
      f
    end
  in
  ignore (File.write f ~pos data);
  let old = Hashtbl.find st.expected name in
  let buf = Bytes.make (max (Bytes.length old) (pos + len)) '\000' in
  Bytes.blit old 0 buf 0 (Bytes.length old);
  Bytes.blit data 0 buf pos len;
  Hashtbl.replace st.expected name buf

let remove_step st rng =
  let name = "f" ^ string_of_int (Rng.int rng n_files) in
  if Hashtbl.mem st.expected name then begin
    Stackable.remove st.fs (Sname.of_components [ name ]);
    Hashtbl.remove st.expected name
  end

let run_ops st rng ops =
  for i = 1 to ops do
    (match Rng.int rng 12 with
    | 10 -> remove_step st rng
    | 11 -> do_sync st
    | _ -> write_step st rng);
    if i mod 5 = 0 then do_sync st
  done;
  do_sync st

let label ~journal ~seed =
  Printf.sprintf "crashsweep-%c%d" (if journal then 'j' else 'r') seed

let setup ~journal ~checksums ~seed =
  let lbl = label ~journal ~seed in
  let disk = Disk.create ~label:lbl ~blocks:disk_blocks () in
  Disk_layer.mkfs ~journal ~checksums disk;
  let fs = Disk_layer.mount ~name:lbl disk in
  (disk, { fs; expected = Hashtbl.create 8; synced = []; pending = None })

let workload_writes ?(checksums = true) ~journal ~ops ~seed () =
  let disk, st = setup ~journal ~checksums ~seed in
  let before = (Disk.stats disk).writes in
  run_ops st (Rng.create seed) ops;
  (Disk.stats disk).writes - before

(* [matches fs2 snap] checks the remounted volume holds exactly the
   files of [snap] with exactly their contents; returns a description of
   the first divergence, or [None] on an exact match. *)
let matches fs2 snap =
  let names = List.sort String.compare (Stackable.listdir fs2 root) in
  let snap_names = List.map fst snap in
  if names <> snap_names then
    Some
      (Printf.sprintf "file set {%s} <> {%s}" (String.concat "," names)
         (String.concat "," snap_names))
  else
    List.find_map
      (fun (name, want) ->
        let f = Stackable.open_file fs2 (Sname.of_components [ name ]) in
        let got = File.read_all f in
        if Bytes.equal got want then None
        else
          Some
            (Printf.sprintf "%s: %d bytes on disk, expected %d%s" name
               (Bytes.length got) (Bytes.length want)
               (if Bytes.length got = Bytes.length want then
                  " (content differs)"
                else "")))
      snap

let run_point ?(torn = false) ?(checksums = true) ~journal ~ops ~seed ~crash_at () =
  let disk, st = setup ~journal ~checksums ~seed in
  let plan =
    Sp_fault.plan ~seed:(seed + crash_at)
      [
        Sp_fault.rule ~point:"disk.write"
          ~label:(label ~journal ~seed)
          ~after:(crash_at - 1) ~count:1
          (if torn then Sp_fault.Torn_write_crash else Sp_fault.Fail_stop);
      ]
  in
  (match
     Sp_fault.with_plan plan (fun () -> run_ops st (Rng.create seed) ops)
   with
  | () -> ()
  | exception Sp_fault.Crash _ -> ());
  ignore (Disk_layer.recover disk);
  let pp_first p rest =
    Format.asprintf "%a%s" Fsck.pp_problem p
      (if rest = [] then "" else Printf.sprintf " (+%d more)" (List.length rest))
  in
  let structural, mismatches =
    List.partition
      (function Fsck.Checksum_mismatch _ -> false | _ -> true)
      (Fsck.check ~verify_checksums:checksums disk)
  in
  match structural with
  | p :: rest -> Corrupt (pp_first p rest)
  | [] -> (
      match mismatches with
      | p :: rest ->
          (* The graph still parses, but checksums prove blocks hold the
             wrong bytes — the positive detection a torn unjournaled
             write gets with checksums on. *)
          Detected (pp_first p rest)
      | [] -> (
          (* Checksum errors during remount or reading back (metadata the
             structural pass could not attribute) also count as positive
             detection, never as silently-served data. *)
          match
            let fs2 = Disk_layer.mount ~name:(label ~journal ~seed ^ "-re") disk in
            let cuts =
              (match st.pending with
              | Some s -> [ ("in-flight sync", s) ]
              | None -> [])
              @ [ ("last sync", st.synced) ]
            in
            if List.exists (fun (_, s) -> matches fs2 s = None) cuts then Survived
            else
              match cuts with
              | (which, s) :: _ ->
                  Lost
                    (Printf.sprintf "vs %s: %s" which
                       (Option.value ~default:"?" (matches fs2 s)))
              | [] -> Lost "no snapshot to compare"
          with
          | outcome -> outcome
          | exception Sp_core.Fserr.Checksum_error msg -> Detected msg))

let sweep ?(stride = 1) ?(torn = false) ?(checksums = true) ~journal ~ops ~seed () =
  if stride < 1 then invalid_arg "Crash_sweep.sweep: stride must be >= 1";
  let writes = workload_writes ~checksums ~journal ~ops ~seed () in
  let survived = ref 0 and lost = ref 0 and corrupt = ref 0 and detected = ref 0 in
  let points = ref 0 in
  let first_bad = ref None in
  let crash_at = ref 1 in
  while !crash_at <= writes do
    incr points;
    (match run_point ~torn ~checksums ~journal ~ops ~seed ~crash_at:!crash_at () with
    | Survived -> incr survived
    | Lost msg ->
        incr lost;
        if !first_bad = None then first_bad := Some (!crash_at, msg)
    | Corrupt msg ->
        incr corrupt;
        if !first_bad = None then first_bad := Some (!crash_at, msg)
    | Detected msg ->
        incr detected;
        if !first_bad = None then first_bad := Some (!crash_at, msg));
    crash_at := !crash_at + stride
  done;
  {
    rp_journal = journal;
    rp_torn = torn;
    rp_checksums = checksums;
    rp_ops = ops;
    rp_seed = seed;
    rp_writes = writes;
    rp_points = !points;
    rp_survived = !survived;
    rp_lost = !lost;
    rp_corrupt = !corrupt;
    rp_detected = !detected;
    rp_first_bad = !first_bad;
  }

let pp_outcome ppf = function
  | Survived -> Format.fprintf ppf "survived"
  | Lost msg -> Format.fprintf ppf "lost (%s)" msg
  | Corrupt msg -> Format.fprintf ppf "corrupt (%s)" msg
  | Detected msg -> Format.fprintf ppf "detected (%s)" msg

let summary r =
  Printf.sprintf
    "CRASH-SWEEP journal=%s checksums=%s%s points=%d survived=%d lost=%d corrupt=%d \
     detected=%d"
    (if r.rp_journal then "on" else "off")
    (if r.rp_checksums then "on" else "off")
    (if r.rp_torn then " torn=on" else "")
    r.rp_points r.rp_survived r.rp_lost r.rp_corrupt r.rp_detected

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>crash sweep: journal=%s torn=%s checksums=%s ops=%d seed=%d@,\
     device writes swept: %d (%d crash points)@,\
     survived %d   lost %d   corrupt %d   checksum-detected %d@]"
    (if r.rp_journal then "on" else "off")
    (if r.rp_torn then "on" else "off")
    (if r.rp_checksums then "on" else "off")
    r.rp_ops r.rp_seed r.rp_writes r.rp_points r.rp_survived r.rp_lost
    r.rp_corrupt r.rp_detected;
  match r.rp_first_bad with
  | None -> ()
  | Some (at, msg) ->
      Format.fprintf ppf "@,first failure at write %d: %s" at msg
