module Disk = Sp_blockdev.Disk
module Stackable = Sp_core.Stackable
module File = Sp_core.File
module Sname = Sp_naming.Sname
module Rng = Sp_fault.Rng

type outcome = Survived | Lost of string | Corrupt of string | Detected of string

type report = {
  rp_journal : bool;
  rp_torn : bool;
  rp_checksums : bool;
  rp_sync_heavy : bool;
  rp_clients : int;
  rp_ops : int;
  rp_seed : int;
  rp_writes : int;
  rp_points : int;
  rp_survived : int;
  rp_lost : int;
  rp_corrupt : int;
  rp_detected : int;
  rp_first_bad : (int * string) option;
}

let disk_blocks = 1024
let root = Sname.of_components []
let n_files = 6
let max_pos = 12 * 1024
let max_write = 4096

(* A consistent cut the recovered volume may legally equal: the set of
   files and their exact contents at some sync boundary. *)
type snapshot = (string * bytes) list

type sim = {
  fs : Stackable.t;
  expected : (string, bytes) Hashtbl.t;  (* live contents, incl. unsynced *)
  mutable synced : snapshot;  (* as of the last completed sync *)
  mutable pending : snapshot option;  (* set while a sync is in flight *)
}

let snapshot tbl =
  Hashtbl.fold (fun name data acc -> (name, Bytes.copy data) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let do_sync st =
  st.pending <- Some (snapshot st.expected);
  Stackable.sync st.fs;
  st.synced <- Option.get st.pending;
  st.pending <- None

(* The workload draws every decision from [rng] in strict operation
   order and never inspects wall time or hash order, so a given seed
   always produces the identical op and device-write sequence no matter
   where (or whether) a crash rule fires. *)
let write_step st rng =
  let name = "f" ^ string_of_int (Rng.int rng n_files) in
  let path = Sname.of_components [ name ] in
  let pos = Rng.int rng max_pos in
  let len = 1 + Rng.int rng max_write in
  let base = Rng.int rng 256 in
  let data = Bytes.init len (fun i -> Char.chr ((base + i) land 0xff)) in
  let f =
    if Hashtbl.mem st.expected name then Stackable.open_file st.fs path
    else begin
      let f = Stackable.create st.fs path in
      Hashtbl.replace st.expected name Bytes.empty;
      f
    end
  in
  ignore (File.write f ~pos data);
  let old = Hashtbl.find st.expected name in
  let buf = Bytes.make (max (Bytes.length old) (pos + len)) '\000' in
  Bytes.blit old 0 buf 0 (Bytes.length old);
  Bytes.blit data 0 buf pos len;
  Hashtbl.replace st.expected name buf

let remove_step st rng =
  let name = "f" ^ string_of_int (Rng.int rng n_files) in
  if Hashtbl.mem st.expected name then begin
    Stackable.remove st.fs (Sname.of_components [ name ]);
    Hashtbl.remove st.expected name
  end

(* [sync_every]: ops between the periodic syncs.  The default (5) is the
   classic sweep; the sync-heavy mode (2) makes crash points land inside
   commit windows far more often — with concurrent clients that means
   inside the leader/follower group-commit protocol. *)
let run_ops ?(sync_every = 5) st rng ops =
  for i = 1 to ops do
    (match Rng.int rng 12 with
    | 10 -> remove_step st rng
    | 11 -> do_sync st
    | _ -> write_step st rng);
    if i mod sync_every = 0 then do_sync st
  done;
  do_sync st

let label ~journal ~seed =
  Printf.sprintf "crashsweep-%c%d" (if journal then 'j' else 'r') seed

let setup ~journal ~checksums ~seed =
  let lbl = label ~journal ~seed in
  let disk = Disk.create ~label:lbl ~blocks:disk_blocks () in
  Disk_layer.mkfs ~journal ~checksums disk;
  let fs = Disk_layer.mount ~name:lbl disk in
  (disk, { fs; expected = Hashtbl.create 8; synced = []; pending = None })

(* ------------------------------------------------------------------ *)
(* Concurrent-client mode                                              *)
(* ------------------------------------------------------------------ *)

(* With [clients > 1] the workload runs as N scheduler tasks over one
   volume, each owning a disjoint set of files ("c<k>f<j>").  The
   single-snapshot verification above no longer works: a crash can land
   between two clients' syncs, so there is no one cut the whole volume
   must equal.  Instead each file keeps its full version history
   (position 0 is the implicit "absent" before creation) plus a durable
   floor — the version that was current when the latest *completed* sync
   (by any client — every commit flushes the whole volume) started.
   After recovery each surviving file must hold SOME version at or above
   its floor: below the floor means a synced write was lost, no version
   at all means corruption. *)

type version = Absent | Content of bytes

type fhist = {
  mutable rev : version list;  (* newest first; positions n..1 *)
  mutable n : int;
  mutable floor : int;  (* 0 = nothing durable yet (implicit Absent) *)
}

let files_per_client = 3

let hist_of world name =
  match Hashtbl.find_opt world name with
  | Some h -> h
  | None ->
      let h = { rev = []; n = 0; floor = 0 } in
      Hashtbl.replace world name h;
      h

let hist_current h = match h.rev with [] -> Absent | v :: _ -> v

let hist_push h v =
  h.rev <- v :: h.rev;
  h.n <- h.n + 1

(* A completed sync makes (at least) every version current at its start
   durable: the journal commit flushes the whole volume's buffered
   writes, whoever issued them. *)
let csync world fs =
  let snap = Hashtbl.fold (fun _ h acc -> (h, h.n) :: acc) world [] in
  Stackable.sync fs;
  List.iter (fun (h, idx) -> if idx > h.floor then h.floor <- idx) snap

let cwrite_step world fs rng k =
  let name = Printf.sprintf "c%df%d" k (Rng.int rng files_per_client) in
  let path = Sname.of_components [ name ] in
  let pos = Rng.int rng max_pos in
  let len = 1 + Rng.int rng max_write in
  let base = Rng.int rng 256 in
  let data = Bytes.init len (fun i -> Char.chr ((base + i) land 0xff)) in
  let h = hist_of world name in
  let old, f =
    match hist_current h with
    | Content b -> (b, Stackable.open_file fs path)
    | Absent ->
        let f = Stackable.create fs path in
        (* The empty just-created file is its own committable version:
           the create and the first write are separately-locked ops, so
           another client's sync can land between them and make the bare
           creation durable. *)
        hist_push h (Content Bytes.empty);
        (Bytes.empty, f)
  in
  ignore (File.write f ~pos data);
  let buf = Bytes.make (max (Bytes.length old) (pos + len)) '\000' in
  Bytes.blit old 0 buf 0 (Bytes.length old);
  Bytes.blit data 0 buf pos len;
  (* No suspension point between the write returning and this push: the
     history always reflects every completed write. *)
  hist_push h (Content buf)

let cremove_step world fs rng k =
  let name = Printf.sprintf "c%df%d" k (Rng.int rng files_per_client) in
  let h = hist_of world name in
  match hist_current h with
  | Absent -> ()
  | Content _ ->
      Stackable.remove fs (Sname.of_components [ name ]);
      hist_push h Absent

let run_clients ?(sync_every = 5) world fs ~clients ~ops ~seed =
  let client k () =
    let rng = Rng.create (seed + ((k + 1) * 7919)) in
    for i = 1 to ops do
      (match Rng.int rng 12 with
      | 10 -> cremove_step world fs rng k
      | 11 -> csync world fs
      | _ -> cwrite_step world fs rng k);
      if i mod sync_every = 0 then csync world fs
    done;
    csync world fs
  in
  ignore (Sp_sched.run ~seed (List.init clients client))

(* Does the on-disk state of one file ([got = None] if absent) match any
   version at or above the durable floor? *)
let matches_hist h got =
  let rec go i = function
    | [] -> ( (* position 0: the implicit pre-creation Absent *)
        match got with None -> h.floor <= 0 | Some _ -> false)
    | v :: rest ->
        (i >= h.floor
        &&
        match (v, got) with
        | Absent, None -> true
        | Content b, Some g -> Bytes.equal b g
        | _ -> false)
        || go (i - 1) rest
  in
  go h.n h.rev

let matches_world world fs2 =
  let on_disk =
    List.sort String.compare
      (Stackable.fold_dir fs2 root (fun acc n -> n :: acc) [])
  in
  match
    List.find_opt (fun name -> not (Hashtbl.mem world name)) on_disk
  with
  | Some name -> Some (Printf.sprintf "unexpected file %s on disk" name)
  | None ->
      Hashtbl.fold
        (fun name h acc ->
          match acc with
          | Some _ -> acc
          | None ->
              let got =
                if List.mem name on_disk then
                  Some
                    (File.read_all
                       (Stackable.open_file fs2 (Sname.of_components [ name ])))
                else None
              in
              if matches_hist h got then None
              else
                Some
                  (Printf.sprintf
                     "%s: %s matches no version >= durable floor %d (of %d)"
                     name
                     (match got with
                     | None -> "absent"
                     | Some g -> Printf.sprintf "%d bytes" (Bytes.length g))
                     h.floor h.n))
        world None

let setup_concurrent ~journal ~checksums ~seed =
  let lbl = label ~journal ~seed in
  let disk = Disk.create ~label:lbl ~blocks:(2 * disk_blocks) () in
  Disk_layer.mkfs ~journal ~checksums disk;
  let fs = Disk_layer.mount ~name:lbl disk in
  (disk, fs, Hashtbl.create 32)

let workload_writes_concurrent ~sync_every ~checksums ~journal ~clients ~ops
    ~seed () =
  let disk, fs, world = setup_concurrent ~journal ~checksums ~seed in
  let before = (Disk.stats disk).writes in
  run_clients ~sync_every world fs ~clients ~ops ~seed;
  (Disk.stats disk).writes - before

let run_point_concurrent ~torn ~checksums ~sync_every ~journal ~clients ~ops
    ~seed ~crash_at () =
  let disk, fs, world = setup_concurrent ~journal ~checksums ~seed in
  let plan =
    Sp_fault.plan ~seed:(seed + crash_at)
      [
        Sp_fault.rule ~point:"disk.write"
          ~label:(label ~journal ~seed)
          ~after:(crash_at - 1) ~count:1
          (if torn then Sp_fault.Torn_write_crash else Sp_fault.Fail_stop);
      ]
  in
  (match
     Sp_fault.with_plan plan (fun () ->
         run_clients ~sync_every world fs ~clients ~ops ~seed)
   with
  | () -> ()
  | exception Sp_fault.Crash _ -> ());
  ignore (Disk_layer.recover disk);
  let pp_first p rest =
    Format.asprintf "%a%s" Fsck.pp_problem p
      (if rest = [] then "" else Printf.sprintf " (+%d more)" (List.length rest))
  in
  let structural, mismatches =
    List.partition
      (function Fsck.Checksum_mismatch _ -> false | _ -> true)
      (Fsck.check ~verify_checksums:checksums disk)
  in
  match structural with
  | p :: rest -> Corrupt (pp_first p rest)
  | [] -> (
      match mismatches with
      | p :: rest -> Detected (pp_first p rest)
      | [] -> (
          match
            let fs2 =
              Disk_layer.mount ~name:(label ~journal ~seed ^ "-re") disk
            in
            match matches_world world fs2 with
            | None -> Survived
            | Some msg -> Lost msg
          with
          | outcome -> outcome
          | exception Sp_core.Fserr.Checksum_error msg -> Detected msg))

let sync_interval sync_heavy = if sync_heavy then 2 else 5

let workload_writes ?(checksums = true) ?(clients = 1) ?(sync_heavy = false)
    ~journal ~ops ~seed () =
  if clients < 1 then invalid_arg "Crash_sweep: clients must be >= 1";
  let sync_every = sync_interval sync_heavy in
  if clients > 1 then
    workload_writes_concurrent ~sync_every ~checksums ~journal ~clients ~ops
      ~seed ()
  else begin
    let disk, st = setup ~journal ~checksums ~seed in
    let before = (Disk.stats disk).writes in
    run_ops ~sync_every st (Rng.create seed) ops;
    (Disk.stats disk).writes - before
  end

(* [matches fs2 snap] checks the remounted volume holds exactly the
   files of [snap] with exactly their contents; returns a description of
   the first divergence, or [None] on an exact match. *)
let matches fs2 snap =
  let names =
    List.sort String.compare
      (Stackable.fold_dir fs2 root (fun acc n -> n :: acc) [])
  in
  let snap_names = List.map fst snap in
  if names <> snap_names then
    Some
      (Printf.sprintf "file set {%s} <> {%s}" (String.concat "," names)
         (String.concat "," snap_names))
  else
    List.find_map
      (fun (name, want) ->
        let f = Stackable.open_file fs2 (Sname.of_components [ name ]) in
        let got = File.read_all f in
        if Bytes.equal got want then None
        else
          Some
            (Printf.sprintf "%s: %d bytes on disk, expected %d%s" name
               (Bytes.length got) (Bytes.length want)
               (if Bytes.length got = Bytes.length want then
                  " (content differs)"
                else "")))
      snap

let run_point ?(torn = false) ?(checksums = true) ?(clients = 1)
    ?(sync_heavy = false) ~journal ~ops ~seed ~crash_at () =
  if clients < 1 then invalid_arg "Crash_sweep: clients must be >= 1";
  let sync_every = sync_interval sync_heavy in
  if clients > 1 then
    run_point_concurrent ~torn ~checksums ~sync_every ~journal ~clients ~ops
      ~seed ~crash_at ()
  else
  let disk, st = setup ~journal ~checksums ~seed in
  let plan =
    Sp_fault.plan ~seed:(seed + crash_at)
      [
        Sp_fault.rule ~point:"disk.write"
          ~label:(label ~journal ~seed)
          ~after:(crash_at - 1) ~count:1
          (if torn then Sp_fault.Torn_write_crash else Sp_fault.Fail_stop);
      ]
  in
  (match
     Sp_fault.with_plan plan (fun () ->
         run_ops ~sync_every st (Rng.create seed) ops)
   with
  | () -> ()
  | exception Sp_fault.Crash _ -> ());
  ignore (Disk_layer.recover disk);
  let pp_first p rest =
    Format.asprintf "%a%s" Fsck.pp_problem p
      (if rest = [] then "" else Printf.sprintf " (+%d more)" (List.length rest))
  in
  let structural, mismatches =
    List.partition
      (function Fsck.Checksum_mismatch _ -> false | _ -> true)
      (Fsck.check ~verify_checksums:checksums disk)
  in
  match structural with
  | p :: rest -> Corrupt (pp_first p rest)
  | [] -> (
      match mismatches with
      | p :: rest ->
          (* The graph still parses, but checksums prove blocks hold the
             wrong bytes — the positive detection a torn unjournaled
             write gets with checksums on. *)
          Detected (pp_first p rest)
      | [] -> (
          (* Checksum errors during remount or reading back (metadata the
             structural pass could not attribute) also count as positive
             detection, never as silently-served data. *)
          match
            let fs2 = Disk_layer.mount ~name:(label ~journal ~seed ^ "-re") disk in
            let cuts =
              (match st.pending with
              | Some s -> [ ("in-flight sync", s) ]
              | None -> [])
              @ [ ("last sync", st.synced) ]
            in
            if List.exists (fun (_, s) -> matches fs2 s = None) cuts then Survived
            else
              match cuts with
              | (which, s) :: _ ->
                  Lost
                    (Printf.sprintf "vs %s: %s" which
                       (Option.value ~default:"?" (matches fs2 s)))
              | [] -> Lost "no snapshot to compare"
          with
          | outcome -> outcome
          | exception Sp_core.Fserr.Checksum_error msg -> Detected msg))

let sweep ?(stride = 1) ?(torn = false) ?(checksums = true) ?(clients = 1)
    ?(sync_heavy = false) ~journal ~ops ~seed () =
  if stride < 1 then invalid_arg "Crash_sweep.sweep: stride must be >= 1";
  let writes =
    workload_writes ~checksums ~clients ~sync_heavy ~journal ~ops ~seed ()
  in
  let survived = ref 0 and lost = ref 0 and corrupt = ref 0 and detected = ref 0 in
  let points = ref 0 in
  let first_bad = ref None in
  let crash_at = ref 1 in
  while !crash_at <= writes do
    incr points;
    (match
       run_point ~torn ~checksums ~clients ~sync_heavy ~journal ~ops ~seed
         ~crash_at:!crash_at ()
     with
    | Survived -> incr survived
    | Lost msg ->
        incr lost;
        if !first_bad = None then first_bad := Some (!crash_at, msg)
    | Corrupt msg ->
        incr corrupt;
        if !first_bad = None then first_bad := Some (!crash_at, msg)
    | Detected msg ->
        incr detected;
        if !first_bad = None then first_bad := Some (!crash_at, msg));
    crash_at := !crash_at + stride
  done;
  {
    rp_journal = journal;
    rp_torn = torn;
    rp_checksums = checksums;
    rp_sync_heavy = sync_heavy;
    rp_clients = clients;
    rp_ops = ops;
    rp_seed = seed;
    rp_writes = writes;
    rp_points = !points;
    rp_survived = !survived;
    rp_lost = !lost;
    rp_corrupt = !corrupt;
    rp_detected = !detected;
    rp_first_bad = !first_bad;
  }

let pp_outcome ppf = function
  | Survived -> Format.fprintf ppf "survived"
  | Lost msg -> Format.fprintf ppf "lost (%s)" msg
  | Corrupt msg -> Format.fprintf ppf "corrupt (%s)" msg
  | Detected msg -> Format.fprintf ppf "detected (%s)" msg

let summary r =
  Printf.sprintf
    "CRASH-SWEEP journal=%s checksums=%s%s%s points=%d survived=%d lost=%d corrupt=%d \
     detected=%d"
    (if r.rp_journal then "on" else "off")
    (if r.rp_checksums then "on" else "off")
    (if r.rp_torn then " torn=on" else "")
    ((if r.rp_sync_heavy then " sync-heavy=on" else "")
    ^ if r.rp_clients > 1 then Printf.sprintf " clients=%d" r.rp_clients else "")
    r.rp_points r.rp_survived r.rp_lost r.rp_corrupt r.rp_detected

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>crash sweep: journal=%s torn=%s checksums=%s%s clients=%d ops=%d seed=%d@,\
     device writes swept: %d (%d crash points)@,\
     survived %d   lost %d   corrupt %d   checksum-detected %d@]"
    (if r.rp_journal then "on" else "off")
    (if r.rp_torn then "on" else "off")
    (if r.rp_checksums then "on" else "off")
    (if r.rp_sync_heavy then " sync-heavy" else "")
    r.rp_clients r.rp_ops r.rp_seed r.rp_writes r.rp_points r.rp_survived
    r.rp_lost r.rp_corrupt r.rp_detected;
  match r.rp_first_bad with
  | None -> ()
  | Some (at, msg) ->
      Format.fprintf ppf "@,first failure at write %d: %s" at msg
