let block_size = Sp_blockdev.Disk.block_size

type t = {
  dev : Journal.dev;
  start : int;
  blocks : bytes array;  (* cached copies *)
  dirty : bool array;
  bits : int;
  mutable used : int;
  mutable hint : int;  (* next-free search start: everything below is set *)
}

let load dev ~start ~blocks ~bits =
  let cached = Array.init blocks (fun i -> Journal.read dev (start + i)) in
  let count = ref 0 in
  for i = 0 to bits - 1 do
    let byte = Char.code (Bytes.get cached.(i / (block_size * 8)) (i / 8 mod block_size)) in
    if byte land (1 lsl (i mod 8)) <> 0 then incr count
  done;
  {
    dev;
    start;
    blocks = cached;
    dirty = Array.make blocks false;
    bits;
    used = !count;
    hint = 0;
  }

let locate t i =
  if i < 0 || i >= t.bits then invalid_arg "Bitmap: index out of range";
  let block = i / (block_size * 8) in
  let byte = i / 8 mod block_size in
  let bit = i mod 8 in
  (block, byte, bit)

let is_set t i =
  let block, byte, bit = locate t i in
  Char.code (Bytes.get t.blocks.(block) byte) land (1 lsl bit) <> 0

let set t i =
  let block, byte, bit = locate t i in
  let v = Char.code (Bytes.get t.blocks.(block) byte) in
  if v land (1 lsl bit) = 0 then begin
    Bytes.set t.blocks.(block) byte (Char.chr (v lor (1 lsl bit)));
    t.dirty.(block) <- true;
    t.used <- t.used + 1
  end

let clear t i =
  let block, byte, bit = locate t i in
  let v = Char.code (Bytes.get t.blocks.(block) byte) in
  if v land (1 lsl bit) <> 0 then begin
    Bytes.set t.blocks.(block) byte (Char.chr (v land lnot (1 lsl bit)));
    t.dirty.(block) <- true;
    t.used <- t.used - 1;
    if i < t.hint then t.hint <- i
  end

(* The hint makes sequential allocation O(1) amortised instead of an
   O(bits) scan per call (which turned bulk file creation quadratic):
   the scan starts at the lowest index that might be free and [clear]
   pulls the hint back down.  The wraparound covers every bit, so
   semantics match the plain scan. *)
let find_free ?(from = 0) t =
  let rec go i stop =
    if i >= stop then None else if not (is_set t i) then Some i else go (i + 1) stop
  in
  let base = if from < 0 || from >= t.bits then 0 else from in
  let lo = if t.hint > base && t.hint < t.bits then t.hint else base in
  let r =
    match go lo t.bits with
    | Some _ as r -> r
    | None -> (
        match (if lo > base then go base lo else None) with
        | Some _ as r -> r
        | None -> if base > 0 then go 0 base else None)
  in
  (match r with Some i -> t.hint <- i + 1 | None -> ());
  r

let used t = t.used
let capacity t = t.bits
let clean t = not (Array.exists Fun.id t.dirty)

let flush t =
  Array.iteri
    (fun i dirty ->
      if dirty then begin
        Journal.write t.dev (t.start + i) t.blocks.(i);
        t.dirty.(i) <- false
      end)
    t.dirty
