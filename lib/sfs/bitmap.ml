let block_size = Sp_blockdev.Disk.block_size

type t = {
  dev : Journal.dev;
  start : int;
  blocks : bytes array;  (* cached copies *)
  dirty : bool array;
  bits : int;
  mutable used : int;
}

let load dev ~start ~blocks ~bits =
  let cached = Array.init blocks (fun i -> Journal.read dev (start + i)) in
  let count = ref 0 in
  for i = 0 to bits - 1 do
    let byte = Char.code (Bytes.get cached.(i / (block_size * 8)) (i / 8 mod block_size)) in
    if byte land (1 lsl (i mod 8)) <> 0 then incr count
  done;
  {
    dev;
    start;
    blocks = cached;
    dirty = Array.make blocks false;
    bits;
    used = !count;
  }

let locate t i =
  if i < 0 || i >= t.bits then invalid_arg "Bitmap: index out of range";
  let block = i / (block_size * 8) in
  let byte = i / 8 mod block_size in
  let bit = i mod 8 in
  (block, byte, bit)

let is_set t i =
  let block, byte, bit = locate t i in
  Char.code (Bytes.get t.blocks.(block) byte) land (1 lsl bit) <> 0

let set t i =
  let block, byte, bit = locate t i in
  let v = Char.code (Bytes.get t.blocks.(block) byte) in
  if v land (1 lsl bit) = 0 then begin
    Bytes.set t.blocks.(block) byte (Char.chr (v lor (1 lsl bit)));
    t.dirty.(block) <- true;
    t.used <- t.used + 1
  end

let clear t i =
  let block, byte, bit = locate t i in
  let v = Char.code (Bytes.get t.blocks.(block) byte) in
  if v land (1 lsl bit) <> 0 then begin
    Bytes.set t.blocks.(block) byte (Char.chr (v land lnot (1 lsl bit)));
    t.dirty.(block) <- true;
    t.used <- t.used - 1
  end

let find_free ?(from = 0) t =
  let rec go i =
    if i >= t.bits then None else if not (is_set t i) then Some i else go (i + 1)
  in
  let start = if from < 0 || from >= t.bits then 0 else from in
  match go start with Some i -> Some i | None -> if start = 0 then None else go 0

let used t = t.used
let capacity t = t.bits

let flush t =
  Array.iteri
    (fun i dirty ->
      if dirty then begin
        Journal.write t.dev (t.start + i) t.blocks.(i);
        t.dirty.(i) <- false
      end)
    t.dirty
