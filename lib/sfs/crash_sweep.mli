(** Crash-consistency sweep harness.

    Runs a deterministic workload (seeded by an explicit integer) against
    a fresh disk-layer volume, crashes it at the [N]-th device write via
    an {!Sp_fault} fail-stop (or torn-write-then-crash) rule, then
    recovers: replay the journal, {!Fsck.check} the device, remount, and
    compare the surviving files against the workload's own record of what
    had been synced.

    The invariant checked per crash point: the recovered volume is
    Fsck-clean and its contents equal one of the two consistent cuts a
    write-ahead journal guarantees — the state as of the last completed
    sync, or (when the crash hit after the in-flight transaction was
    sealed) the state the interrupted sync was committing.  Journaled
    volumes must survive every point of the sweep; unjournaled volumes
    are expected to fail at some points, which is how the sweep proves
    the injector works.

    Everything — workload, crash schedule, torn-write fractions — derives
    from the seed, so a sweep replays bit-identically. *)

type outcome =
  | Survived
  | Lost of string  (** Fsck clean, but contents match no consistent cut *)
  | Corrupt of string  (** Fsck found structural inconsistencies *)
  | Detected of string
      (** structure parses, but block checksums flagged wrong bytes — the
          damage was positively detected, never silently served *)

type report = {
  rp_journal : bool;
  rp_torn : bool;
  rp_checksums : bool;
  rp_sync_heavy : bool;
      (** sync every 2 ops instead of 5 — crash points land inside commit
          (and, concurrently, group-commit leader/follower) windows *)
  rp_clients : int;  (** concurrent clients (1 = the classic serial sweep) *)
  rp_ops : int;  (** operations, per client when [rp_clients > 1] *)
  rp_seed : int;
  rp_writes : int;  (** device writes the full workload performs *)
  rp_points : int;  (** crash points actually swept *)
  rp_survived : int;
  rp_lost : int;
  rp_corrupt : int;
  rp_detected : int;  (** points where only checksums caught the damage *)
  rp_first_bad : (int * string) option;  (** first failing crash point *)
}

(** Device writes the workload performs after mount (an exclusive upper
    bound for useful crash points).  [checksums] (default true) formats
    the volume with a checksum region, which changes the write count.
    With [clients > 1] the workload runs as that many concurrently
    interleaved [Sp_sched] tasks, each doing [ops] operations on its own
    disjoint files of the shared volume.  [sync_heavy] (default false)
    doubles the periodic sync rate (every 2 ops instead of 5), so the
    sweep's crash points fall inside commit windows far more often. *)
val workload_writes :
  ?checksums:bool -> ?clients:int -> ?sync_heavy:bool -> journal:bool ->
  ops:int -> seed:int -> unit -> int

(** Run the workload once, crashing at the [crash_at]-th device write
    (1-based; a [crash_at] beyond the workload's writes means no crash),
    then recover and verify.  [torn] makes the crash write a torn block
    first.  With [checksums] (default true) recovery also verifies block
    checksums: damage the structural fsck pass cannot see — an
    unjournaled torn write, a crash between a raw data write and its
    checksum write-through — comes back as {!Detected} rather than
    passing silently or escaping as an exception.

    With [clients > 1] the workload is the concurrent one: verification
    switches to per-file version histories with a durable floor — each
    recovered file must match some version at least as new as the one
    current at the last completed sync (any client's sync commits the
    whole volume). *)
val run_point :
  ?torn:bool -> ?checksums:bool -> ?clients:int -> ?sync_heavy:bool ->
  journal:bool -> ops:int -> seed:int -> crash_at:int -> unit -> outcome

(** Sweep crash points [1, 1+stride, ...] up to the workload's write
    count (default [stride] 1). *)
val sweep :
  ?stride:int -> ?torn:bool -> ?checksums:bool -> ?clients:int ->
  ?sync_heavy:bool -> journal:bool -> ops:int -> seed:int -> unit -> report

val pp_outcome : Format.formatter -> outcome -> unit
val pp_report : Format.formatter -> report -> unit

(** One-line machine-readable summary, e.g.
    ["CRASH-SWEEP journal=on checksums=on points=163 survived=163 lost=0 corrupt=0 detected=0"]. *)
val summary : report -> string
