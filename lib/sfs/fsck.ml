let bs = Sp_blockdev.Disk.block_size

type problem =
  | Unreachable_inode of int
  | Free_inode_referenced of int * string
  | Bad_kind of int * string
  | Block_out_of_range of int * int
  | Block_double_use of int
  | Block_not_allocated of int
  | Block_leak of int
  | Bad_nlink of int * int * int
  | Checksum_mismatch of int
  | Dir_index of int * string

let pp_problem ppf = function
  | Unreachable_inode i -> Format.fprintf ppf "inode %d allocated but unreachable" i
  | Free_inode_referenced (i, name) ->
      Format.fprintf ppf "entry %S references free inode %d" name i
  | Bad_kind (i, name) -> Format.fprintf ppf "entry %S kind disagrees with inode %d" name i
  | Block_out_of_range (ino, b) ->
      Format.fprintf ppf "inode %d points at out-of-range block %d" ino b
  | Block_double_use b -> Format.fprintf ppf "block %d referenced twice" b
  | Block_not_allocated b -> Format.fprintf ppf "block %d referenced but free" b
  | Block_leak b -> Format.fprintf ppf "block %d allocated but unreferenced" b
  | Bad_nlink (i, expected, stored) ->
      Format.fprintf ppf "inode %d link count %d, directories reference it %d times"
        i stored expected
  | Checksum_mismatch b ->
      Format.fprintf ppf "block %d does not match its recorded checksum" b
  | Dir_index (ino, what) ->
      Format.fprintf ppf "inode %d directory index: %s" ino what

(* The checker reads the device directly; it never goes through a mount. *)
let check ?(verify_checksums = false) disk =
  let layout = Layout.decode_superblock (Sp_blockdev.Disk.read disk 0) in
  let problems = ref [] in
  let report p = problems := p :: !problems in
  let rdev = Journal.raw disk in
  let ibitmap =
    Bitmap.load rdev ~start:layout.Layout.inode_bitmap_start
      ~blocks:layout.Layout.inode_bitmap_blocks ~bits:layout.Layout.inode_count
  in
  let bbitmap =
    Bitmap.load rdev ~start:layout.Layout.block_bitmap_start
      ~blocks:layout.Layout.block_bitmap_blocks ~bits:layout.Layout.total_blocks
  in
  let read_inode ino =
    let block =
      Sp_blockdev.Disk.read disk
        (layout.Layout.inode_table_start + (ino / Layout.inodes_per_block))
    in
    Inode.decode
      (Bytes.sub block (ino mod Layout.inodes_per_block * Layout.inode_size)
         Layout.inode_size)
  in
  (* Ownership map: block -> owning inode. *)
  let owners : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let claim ino b =
    if b <> 0 then
      if b < layout.Layout.data_start || b >= layout.Layout.total_blocks then
        report (Block_out_of_range (ino, b))
      else if Hashtbl.mem owners b then report (Block_double_use b)
      else begin
        Hashtbl.replace owners b ino;
        if not (Bitmap.is_set bbitmap b) then report (Block_not_allocated b)
      end
  in
  let claim_tree ino (inode : Inode.t) =
    Array.iter (claim ino) inode.Inode.direct;
    if inode.Inode.indirect <> 0 then begin
      claim ino inode.Inode.indirect;
      let table = Sp_blockdev.Disk.read disk inode.Inode.indirect in
      for i = 0 to Layout.ptrs_per_block - 1 do
        claim ino (Int32.to_int (Bytes.get_int32_le table (i * 4)))
      done
    end;
    if inode.Inode.double_indirect <> 0 then begin
      claim ino inode.Inode.double_indirect;
      let l1 = Sp_blockdev.Disk.read disk inode.Inode.double_indirect in
      for i = 0 to Layout.ptrs_per_block - 1 do
        let l2b = Int32.to_int (Bytes.get_int32_le l1 (i * 4)) in
        if l2b <> 0 then begin
          claim ino l2b;
          let l2 = Sp_blockdev.Disk.read disk l2b in
          for j = 0 to Layout.ptrs_per_block - 1 do
            claim ino (Int32.to_int (Bytes.get_int32_le l2 (j * 4)))
          done
        end
      done
    end
  in
  (* Read a file range straight from the block tree (for directory data). *)
  let read_range (inode : Inode.t) len =
    let out = Bytes.make len '\000' in
    let rec go cursor =
      if cursor < len then begin
        let n = min (len - cursor) (bs - (cursor mod bs)) in
        let file_block = cursor / bs in
        let b =
          if file_block < Layout.n_direct then inode.Inode.direct.(file_block)
          else if inode.Inode.indirect <> 0
                  && file_block - Layout.n_direct < Layout.ptrs_per_block then
            Int32.to_int
              (Bytes.get_int32_le
                 (Sp_blockdev.Disk.read disk inode.Inode.indirect)
                 ((file_block - Layout.n_direct) * 4))
          else 0
        in
        if b <> 0 then
          Bytes.blit (Sp_blockdev.Disk.read disk b) (cursor mod bs) out cursor n;
        go (cursor + n)
      end
    in
    go 0;
    out
  in
  (* File-block -> disk-block mapping (holes read as zeros).  Indexed
     directories can spill into the double-indirect tree, which
     [read_range] does not reach. *)
  let file_block (inode : Inode.t) fb =
    if fb < Layout.n_direct then inode.Inode.direct.(fb)
    else
      let fb = fb - Layout.n_direct in
      if fb < Layout.ptrs_per_block then
        if inode.Inode.indirect = 0 then 0
        else
          Int32.to_int
            (Bytes.get_int32_le
               (Sp_blockdev.Disk.read disk inode.Inode.indirect) (fb * 4))
      else
        let fb = fb - Layout.ptrs_per_block in
        if inode.Inode.double_indirect = 0 then 0
        else
          let l1 = Sp_blockdev.Disk.read disk inode.Inode.double_indirect in
          let l2b =
            Int32.to_int (Bytes.get_int32_le l1 (fb / Layout.ptrs_per_block * 4))
          in
          if l2b = 0 then 0
          else
            Int32.to_int
              (Bytes.get_int32_le (Sp_blockdev.Disk.read disk l2b)
                 (fb mod Layout.ptrs_per_block * 4))
  in
  let dir_io inode =
    {
      Sp_dir.Index.read =
        (fun fb ->
          let b = file_block inode fb in
          if b = 0 then Bytes.make bs '\000' else Sp_blockdev.Disk.read disk b);
      write = (fun _ _ -> invalid_arg "fsck: directory index is read-only");
    }
  in
  (* Walk the directory graph from the root. *)
  let reachable : (int, int) Hashtbl.t = Hashtbl.create 64 in
  (* ino -> reference count *)
  let bump ino =
    Hashtbl.replace reachable ino
      (1 + Option.value (Hashtbl.find_opt reachable ino) ~default:0)
  in
  let rec walk_dir ino =
    let inode = read_inode ino in
    claim_tree ino inode;
    let check_entry (e : Dirent.t) =
      if e.Dirent.ino < 0 || e.Dirent.ino >= layout.Layout.inode_count then
        report (Free_inode_referenced (e.Dirent.ino, e.Dirent.name))
      else if not (Bitmap.is_set ibitmap e.Dirent.ino) then
        report (Free_inode_referenced (e.Dirent.ino, e.Dirent.name))
      else begin
        let child = read_inode e.Dirent.ino in
        let kind_ok =
          match child.Inode.kind with
          | Inode.Dir -> e.Dirent.is_dir
          | Inode.File -> not e.Dirent.is_dir
          | Inode.Free -> false
        in
        if not kind_ok then report (Bad_kind (e.Dirent.ino, e.Dirent.name));
        let first_visit = not (Hashtbl.mem reachable e.Dirent.ino) in
        bump e.Dirent.ino;
        if e.Dirent.is_dir && first_visit then walk_dir e.Dirent.ino
        else if (not e.Dirent.is_dir) && first_visit then
          claim_tree e.Dirent.ino child
      end
    in
    let io = dir_io inode in
    if inode.Inode.len >= bs && Sp_dir.Index.is_index_root (io.Sp_dir.Index.read 0)
    then begin
      (* Indexed directory: verify the index structure, then walk its
         entries leaf by leaf (never materialising the whole listing). *)
      let r = Sp_dir.Index.check io in
      if r.Sp_dir.Index.ck_dangling > 0 then
        report
          (Dir_index
             (ino, Printf.sprintf "%d dangling slot(s)" r.Sp_dir.Index.ck_dangling));
      if r.Sp_dir.Index.ck_mismatch > 0 then
        report
          (Dir_index
             ( ino,
               Printf.sprintf "%d entr(ies) in the wrong bucket"
                 r.Sp_dir.Index.ck_mismatch ));
      if r.Sp_dir.Index.ck_unreachable > 0 then
        report
          (Dir_index
             ( ino,
               Printf.sprintf "%d unreachable entr(ies)"
                 r.Sp_dir.Index.ck_unreachable ));
      if r.Sp_dir.Index.ck_badcount then
        report (Dir_index (ino, "header entry count disagrees with leaves"));
      Sp_dir.Index.iter io check_entry
    end
    else begin
      let data = read_range inode inode.Inode.len in
      let rec entries off =
        if off + Dirent.entry_size <= Bytes.length data then begin
          (match Dirent.decode data off with
          | None -> ()
          | Some e -> check_entry e);
          entries (off + Dirent.entry_size)
        end
      in
      entries 0
    end
  in
  bump 0;
  walk_dir 0;
  (* Inode bitmap vs reachability, and link counts. *)
  for ino = 0 to layout.Layout.inode_count - 1 do
    let refs = Option.value (Hashtbl.find_opt reachable ino) ~default:0 in
    if Bitmap.is_set ibitmap ino && refs = 0 then report (Unreachable_inode ino);
    if Bitmap.is_set ibitmap ino && refs > 0 && ino <> 0 then begin
      let inode = read_inode ino in
      if inode.Inode.nlink <> refs then report (Bad_nlink (ino, refs, inode.Inode.nlink))
    end
  done;
  (* Block bitmap vs claims. *)
  for b = layout.Layout.data_start to layout.Layout.total_blocks - 1 do
    if Bitmap.is_set bbitmap b && not (Hashtbl.mem owners b) then
      report (Block_leak b)
  done;
  (* Checksum region vs block contents: metadata plus every allocated,
     referenced data block.  Unreferenced free blocks may legitimately
     hold stale data from before a truncate — skip them. *)
  (if verify_checksums then
     match Csum.attach disk layout with
     | None -> ()
     | Some c ->
         for b = 0 to layout.Layout.total_blocks - 1 do
           let in_use =
             b < layout.Layout.data_start || Hashtbl.mem owners b
           in
           if in_use && Csum.covers c b
              && not (Csum.matches c b (Sp_blockdev.Disk.read disk b))
           then report (Checksum_mismatch b)
         done);
  List.rev !problems
