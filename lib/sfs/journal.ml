let bs = Sp_blockdev.Disk.block_size
let magic = 0x53504a4cl (* "SPJL" *)
let header_bytes = 24 (* magic, state, seq, count, cksum *)
let entry_bytes = 8 (* target block, data checksum *)
let max_entries = (bs - header_bytes) / entry_bytes

(* FNV-1a over a byte range, folded to 32 bits.  Not cryptographic — it
   only has to make a torn (prefix-of-new + tail-of-old) block fail
   verification. *)
let cksum b =
  let h = ref 0x811c9dc5 in
  for i = 0 to Bytes.length b - 1 do
    h := (!h lxor Char.code (Bytes.unsafe_get b i)) * 0x01000193 land 0xffffffff
  done;
  !h

type t = {
  disk : Sp_blockdev.Disk.t;
  start : int;
  blocks : int;
  dirty : (int, bytes) Hashtbl.t;
  mutable order : int list;  (* newest first *)
  mutable seq : int;
  mutable commits : int;
  mutable journal_writes : int;
  mutable group_commits : int;  (* leader-run commits under a group window *)
  mutable absorbed : int;  (* syncs that rode a leader's commit *)
  replayed : int;
}

type dev = {
  d_disk : Sp_blockdev.Disk.t;
  d_journal : t option;
  d_csum : Csum.t option;
  (* Incarnation fence (see {!fence}): consulted before every device
     write so a fiber of a killed mount cannot keep mutating the raw
     disk behind a remounted, journal-replayed successor. *)
  mutable d_fence : unit -> unit;
}

(* Header block: word 0 magic, word 1 state (0 clean / 1 committed),
   words 2-3 seq, word 4 count, word 5 checksum (computed with the field
   zeroed, over the header words and the entry table). *)
let encode_header ~state ~seq ~entries =
  let b = Bytes.make bs '\000' in
  Bytes.set_int32_le b 0 magic;
  Bytes.set_int32_le b 4 (Int32.of_int state);
  Bytes.set_int64_le b 8 (Int64.of_int seq);
  Bytes.set_int32_le b 16 (Int32.of_int (List.length entries));
  List.iteri
    (fun i (target, data_ck) ->
      Bytes.set_int32_le b (header_bytes + (i * entry_bytes)) (Int32.of_int target);
      Bytes.set_int32_le b (header_bytes + (i * entry_bytes) + 4) (Int32.of_int data_ck))
    entries;
  let covered = header_bytes + (List.length entries * entry_bytes) in
  Bytes.set_int32_le b 20 (Int32.of_int (cksum (Bytes.sub b 0 covered)));
  b

(* Returns (state, seq, entries) or None for anything unformatted, torn
   or otherwise unverifiable. *)
let decode_header b =
  if Bytes.length b < bs || Bytes.get_int32_le b 0 <> magic then None
  else
    let state = Int32.to_int (Bytes.get_int32_le b 4) in
    let seq = Int64.to_int (Bytes.get_int64_le b 8) in
    let count = Int32.to_int (Bytes.get_int32_le b 16) in
    if (state <> 0 && state <> 1) || count < 0 || count > max_entries then None
    else
      let stored_ck = Int32.to_int (Bytes.get_int32_le b 20) in
      let scratch = Bytes.sub b 0 (header_bytes + (count * entry_bytes)) in
      Bytes.set_int32_le scratch 20 0l;
      if cksum scratch land 0xffffffff <> stored_ck land 0xffffffff then None
      else
        let entries =
          List.init count (fun i ->
              ( Int32.to_int (Bytes.get_int32_le b (header_bytes + (i * entry_bytes))),
                Int32.to_int (Bytes.get_int32_le b (header_bytes + (i * entry_bytes) + 4))
              ))
        in
        Some (state, seq, entries)

let init disk ~start =
  Sp_blockdev.Disk.write disk start (encode_header ~state:0 ~seq:0 ~entries:[])

let replay disk ~start =
  match decode_header (Sp_blockdev.Disk.read disk start) with
  | Some (1, seq, entries) ->
      (* Sealed transaction: verify every journalled block against its
         recorded checksum before touching home locations.  A torn journal
         data block means the seal itself cannot be trusted — treat the
         whole transaction as uncommitted (sound: the sync that wrote it
         never returned to its caller). *)
      let datas =
        List.mapi (fun i (target, ck) ->
            (target, ck, Sp_blockdev.Disk.read disk (start + 1 + i)))
          entries
      in
      (* Int32 round-trips make high-bit checksums negative; mask both
         sides back to 32 bits before comparing. *)
      if List.for_all (fun (_, ck, data) -> cksum data = ck land 0xffffffff) datas
      then begin
        List.iter (fun (target, _, data) -> Sp_blockdev.Disk.write disk target data) datas;
        Sp_blockdev.Disk.write disk start (encode_header ~state:0 ~seq ~entries:[]);
        List.length datas
      end
      else begin
        Sp_blockdev.Disk.write disk start (encode_header ~state:0 ~seq ~entries:[]);
        0
      end
  | Some (_, _, _) | None -> 0

let attach disk ~start ~blocks =
  if blocks < 2 then invalid_arg "Journal.attach: area too small";
  let replayed = replay disk ~start in
  let seq =
    match decode_header (Sp_blockdev.Disk.read disk start) with
    | Some (_, seq, _) -> seq + 1
    | None -> 1
  in
  {
    disk;
    start;
    blocks;
    dirty = Hashtbl.create 64;
    order = [];
    seq;
    commits = 0;
    journal_writes = 0;
    group_commits = 0;
    absorbed = 0;
    replayed;
  }

let raw disk =
  { d_disk = disk; d_journal = None; d_csum = None; d_fence = (fun () -> ()) }

let make ?journal ?csum disk =
  { d_disk = disk; d_journal = journal; d_csum = csum; d_fence = (fun () -> ()) }

let fence dev f = dev.d_fence <- f
let disk dev = dev.d_disk
let journal dev = dev.d_journal
let checksums dev = dev.d_csum <> None
let capacity t = min max_entries (t.blocks - 1)

let read dev n =
  match dev.d_journal with
  | Some t when Hashtbl.mem t.dirty n ->
      (* Dirty buffered blocks are served from memory: their checksum is
         recorded only at commit, so there is nothing to verify yet. *)
      Bytes.copy (Hashtbl.find t.dirty n)
  | _ ->
      dev.d_fence ();
      let data = Sp_blockdev.Disk.read dev.d_disk n in
      (match dev.d_csum with
      | Some c -> Csum.check c ~label:(Sp_blockdev.Disk.label dev.d_disk) n data
      | None -> ());
      data

let write dev n data =
  match dev.d_journal with
  | None -> (
      dev.d_fence ();
      Sp_blockdev.Disk.write dev.d_disk n data;
      match dev.d_csum with
      | Some c when Csum.covers c n ->
          (* Write-through: data first, then the region block holding its
             entry.  A crash between the two leaves a detectable (stale
             checksum) window — raw devs never promised atomicity. *)
          Csum.record c n data;
          List.iter
            (fun cb ->
              dev.d_fence ();
              Sp_blockdev.Disk.write dev.d_disk cb (Csum.image c cb))
            (Csum.dirty c);
          Csum.clear_dirty c
      | _ -> ())
  | Some t ->
      if n < 0 || n >= Sp_blockdev.Disk.block_count t.disk then
        invalid_arg (Printf.sprintf "Journal.write: block %d out of range" n);
      if Bytes.length data > bs then invalid_arg "Journal.write: larger than a block";
      (* Store a full zero-padded block, matching Disk.write semantics. *)
      let block = Bytes.make bs '\000' in
      Bytes.blit data 0 block 0 (Bytes.length data);
      if not (Hashtbl.mem t.dirty n) then t.order <- n :: t.order;
      Hashtbl.replace t.dirty n block

(* Vectored write: the blocks of one contiguous extent in ascending
   order.  On a journaled dev this only buffers, like [write].  On a raw
   checksummed dev the data blocks go out first — back to back, so the
   head pays one seek plus a contiguous transfer — and the checksum
   region is flushed once for the whole run instead of once per block.
   The detectable stale-checksum crash window of per-block write-through
   now spans the extent rather than one block; raw devs never promised
   atomicity, and fsck/scrub flag the window either way. *)
let write_vec dev writes =
  match dev.d_journal with
  | Some _ -> List.iter (fun (n, data) -> write dev n data) writes
  | None ->
      List.iter
        (fun (n, data) ->
          dev.d_fence ();
          Sp_blockdev.Disk.write dev.d_disk n data)
        writes;
      (match dev.d_csum with
      | Some c ->
          let recorded = ref false in
          List.iter
            (fun (n, data) ->
              if Csum.covers c n then begin
                Csum.record c n data;
                recorded := true
              end)
            writes;
          if !recorded then begin
            List.iter
              (fun cb ->
                dev.d_fence ();
                Sp_blockdev.Disk.write dev.d_disk cb (Csum.image c cb))
              (Csum.dirty c);
            Csum.clear_dirty c
          end
      | None -> ())

let commit_batch ~fence t datas =
  (* The fence runs before every device write: each device charge is a
     suspension point, and a fiber resumed there after its mount's
     domain died must stop — its successor may already have replayed the
     journal and be writing its own transactions to the same area. *)
  (* 1. Journal data blocks: one vectored elevator request into the
     contiguous journal area — one seek, back-to-back transfers, and no
     concurrent request can drag the head away between blocks. *)
  Sp_blockdev.Disk.write_vec ~check:fence t.disk
    (List.mapi (fun i (_, data) -> (t.start + 1 + i, data)) datas);
  t.journal_writes <- t.journal_writes + List.length datas;
  (* 2. Seal: checksummed commit header.  The transaction exists on disk
     from this write onward. *)
  let entries = List.map (fun (n, data) -> (n, cksum data)) datas in
  fence ();
  Sp_blockdev.Disk.write t.disk t.start (encode_header ~state:1 ~seq:t.seq ~entries);
  t.journal_writes <- t.journal_writes + 1;
  (* 3. Home writes. *)
  List.iter
    (fun (n, data) ->
      fence ();
      Sp_blockdev.Disk.write t.disk n data)
    datas;
  (* The clean mark is NOT written here: consecutive batches of one
     commit pipeline — the next batch's sealed header (higher seq)
     supersedes this one, and [commit] writes a single clean mark after
     the last batch.  Soundness of the elision: batch k's home writes
     all complete before batch k+1's journal writes begin, so when a
     crash leaves the header sealing batch k while the journal area
     already holds (some of) batch k+1's data, the per-entry checksum
     verification in [replay] fails and the transaction is treated as
     uncommitted — correct, because batch k is already home; an
     accidental checksum match can only re-copy identical bytes. *)
  t.seq <- t.seq + 1;
  t.commits <- t.commits + 1

let commit dev =
  match dev.d_journal with
  | None -> ()
  | Some t ->
      if t.order <> [] then begin
        let cap = capacity t in
        (* Greedy batches that leave room for the batch's checksum-region
           blocks: the entries describing a batch's data commit in the
           same transaction as the data, so crash atomicity covers both
           (per batch, as before). *)
        let rec go = function
          | [] -> ()
          | blocks ->
              let rec take acc csums rest =
                match rest with
                | [] -> (List.rev acc, rest)
                | n :: tl ->
                    let csums' =
                      match dev.d_csum with
                      | Some c when Csum.covers c n ->
                          let cb = Csum.home c n in
                          if List.mem cb csums then csums else cb :: csums
                      | _ -> csums
                    in
                    if List.length acc + 1 + List.length csums' > cap && acc <> [] then
                      (List.rev acc, rest)
                    else take (n :: acc) csums' tl
              in
              let group, rest = take [] [] blocks in
              let datas = List.map (fun n -> (n, Hashtbl.find t.dirty n)) group in
              (match dev.d_csum with
              | Some c ->
                  List.iter (fun (n, data) -> Csum.record c n data) datas;
                  let csum_datas =
                    List.map (fun cb -> (cb, Csum.image c cb)) (Csum.dirty c)
                  in
                  Csum.clear_dirty c;
                  commit_batch ~fence:dev.d_fence t (datas @ csum_datas)
              | None -> commit_batch ~fence:dev.d_fence t datas);
              go rest
        in
        go (List.rev t.order);
        (* One clean mark for the whole commit (clean-marks between
           batches are elided — see [commit_batch]).  Carries the last
           sealed seq so [attach] keeps seq monotonically increasing
           across remounts. *)
        dev.d_fence ();
        Sp_blockdev.Disk.write t.disk t.start
          (encode_header ~state:0 ~seq:(t.seq - 1) ~entries:[]);
        t.journal_writes <- t.journal_writes + 1;
        Hashtbl.reset t.dirty;
        t.order <- []
      end

let pending dev =
  match dev.d_journal with None -> 0 | Some t -> Hashtbl.length t.dirty

(* Group-commit accounting, bumped by the disk layer's sync path: the
   journal only records what happened, the leader/follower protocol
   itself lives in [Disk_layer.flush_all]. *)
let note_group_commit dev =
  match dev.d_journal with
  | None -> ()
  | Some t -> t.group_commits <- t.group_commits + 1

let note_absorbed dev =
  match dev.d_journal with
  | None -> ()
  | Some t -> t.absorbed <- t.absorbed + 1

type stats = {
  js_commits : int;
  js_journal_writes : int;
  js_replayed : int;
  js_group_commits : int;
  js_absorbed_syncs : int;
}

let stats t =
  {
    js_commits = t.commits;
    js_journal_writes = t.journal_writes;
    js_replayed = t.replayed;
    js_group_commits = t.group_commits;
    js_absorbed_syncs = t.absorbed;
  }
