let block_size = Sp_blockdev.Disk.block_size
let inode_size = 256
let inodes_per_block = block_size / inode_size
let n_direct = 12
let ptrs_per_block = block_size / 4
let bits_per_block = block_size * 8
let magic = 0x5350_4653l (* "SPFS" *)
let version = 1l

type t = {
  total_blocks : int;
  inode_count : int;
  inode_bitmap_start : int;
  inode_bitmap_blocks : int;
  block_bitmap_start : int;
  block_bitmap_blocks : int;
  inode_table_start : int;
  inode_table_blocks : int;
  csum_start : int;
  csum_blocks : int;
  journal_start : int;
  journal_blocks : int;
  data_start : int;
}

let div_ceil a b = (a + b - 1) / b

(* 4-byte checksum per device block. *)
let csum_entries_per_block = block_size / 4

let compute ?(journal_blocks = 0) ?(checksums = false) ?inodes ~total_blocks () =
  if total_blocks < 16 then invalid_arg "Layout.compute: device too small";
  if journal_blocks < 0 || journal_blocks = 1 then
    invalid_arg "Layout.compute: journal needs a header block plus data slots";
  (* One inode per four data-ish blocks by default, at least 16; an
     explicit [inodes] overrides the ratio (the superblock records the
     count, so remounts see the same table). *)
  let inode_count =
    match inodes with Some n -> max 16 n | None -> max 16 (total_blocks / 4)
  in
  let inode_bitmap_blocks = div_ceil inode_count bits_per_block in
  let block_bitmap_blocks = div_ceil total_blocks bits_per_block in
  let inode_table_blocks = div_ceil inode_count inodes_per_block in
  let inode_bitmap_start = 1 in
  let block_bitmap_start = inode_bitmap_start + inode_bitmap_blocks in
  let inode_table_start = block_bitmap_start + block_bitmap_blocks in
  (* The checksum region and the journal sit between the metadata region
     and the data region, so everything below [data_start] — journal and
     checksums included — is born allocated in the block bitmap and
     invisible to Fsck's data scan. *)
  let csum_start = inode_table_start + inode_table_blocks in
  let csum_blocks =
    if checksums then div_ceil total_blocks csum_entries_per_block else 0
  in
  let journal_start = csum_start + csum_blocks in
  let data_start = journal_start + journal_blocks in
  if data_start >= total_blocks then
    invalid_arg "Layout.compute: no room for data blocks";
  {
    total_blocks;
    inode_count;
    inode_bitmap_start;
    inode_bitmap_blocks;
    block_bitmap_start;
    block_bitmap_blocks;
    inode_table_start;
    inode_table_blocks;
    csum_start;
    csum_blocks;
    journal_start;
    journal_blocks;
    data_start;
  }

let max_file_size t =
  let blocks = n_direct + ptrs_per_block + (ptrs_per_block * ptrs_per_block) in
  let capacity = blocks * block_size in
  min capacity ((t.total_blocks - t.data_start) * block_size)

let encode_superblock t =
  let b = Bytes.make block_size '\000' in
  let put i v = Bytes.set_int32_le b (i * 4) (Int32.of_int v) in
  Bytes.set_int32_le b 0 magic;
  Bytes.set_int32_le b 4 version;
  put 2 t.total_blocks;
  put 3 t.inode_count;
  put 4 t.inode_bitmap_start;
  put 5 t.inode_bitmap_blocks;
  put 6 t.block_bitmap_start;
  put 7 t.block_bitmap_blocks;
  put 8 t.inode_table_start;
  put 9 t.inode_table_blocks;
  put 10 t.data_start;
  put 11 t.journal_start;
  put 12 t.journal_blocks;
  put 13 t.csum_start;
  put 14 t.csum_blocks;
  b

let decode_superblock b =
  if Bytes.length b < block_size then raise (Sp_core.Fserr.Io_error "short superblock");
  if Bytes.get_int32_le b 0 <> magic then
    raise (Sp_core.Fserr.Io_error "bad superblock magic");
  if Bytes.get_int32_le b 4 <> version then
    raise (Sp_core.Fserr.Io_error "unsupported superblock version");
  let get i = Int32.to_int (Bytes.get_int32_le b (i * 4)) in
  {
    total_blocks = get 2;
    inode_count = get 3;
    inode_bitmap_start = get 4;
    inode_bitmap_blocks = get 5;
    block_bitmap_start = get 6;
    block_bitmap_blocks = get 7;
    inode_table_start = get 8;
    inode_table_blocks = get 9;
    (* Words 11/12 decode as zero on images formatted before journaling
       existed: journal_blocks = 0 means "no journal", so the version
       number did not need to change.  Words 13/14 do the same for the
       checksum region: csum_blocks = 0 means "no checksums". *)
    journal_start = get 11;
    journal_blocks = get 12;
    csum_start = get 13;
    csum_blocks = get 14;
    data_start = get 10;
  }
