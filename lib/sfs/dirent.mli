(** Directory entries.

    A directory's data is an array of fixed-size 64-byte entries: inode
    number, kind tag, and a name of up to {!max_name} bytes.  Free slots
    have inode number 0 *and* an empty name.  The codec itself lives in
    {!Sp_dir.Entry}, shared with the hash index and the offline
    checkers; this module aliases it so disk-layer code keeps saying
    [Dirent]. *)

(** Entry size in bytes. *)
val entry_size : int

(** Maximum name length in bytes. *)
val max_name : int

type t = Sp_dir.Entry.t = { ino : int; is_dir : bool; name : string }

(** [encode e] is the 64-byte on-disk form.  Raises [Invalid_argument] if
    the name is empty, too long, or contains ['/'] or ['\000']. *)
val encode : t -> bytes

(** [decode b off] reads the entry at byte [off]; [None] for a free slot. *)
val decode : bytes -> int -> t option

(** The all-zero free slot. *)
val free_slot : bytes

(** Validate a file name (used by create/mkdir before touching the disk). *)
val check_name : string -> unit
