(** Per-block checksums for the SFS on-disk format.

    The checksum region ({!Layout.t.csum_start}, sized by [Layout]) holds
    one 32-bit FNV-1a checksum per device block, taken over the full
    zero-padded block.  Every block is covered except the region itself
    and the journal area: the journal already checksums its contents, and
    covering the region would make updates recursive.

    A [t] is the in-memory image of the region.  [Journal.write] calls
    {!record} on every store and {!check} on every device read, so silent
    corruption anywhere below — bit rot, a misdirected write, a lost
    write — surfaces as {!Sp_core.Fserr.Checksum_error} instead of wrong
    bytes.  On a journaled dev the dirty region blocks join the same
    commit batch as the data they describe, preserving crash atomicity;
    on a raw dev they are written through after the data.

    Verifying and recording charge simulated CPU via
    [Sp_obj.Door.charge_cpu] (free under the [fast] model, visible in the
    [scrub] bench table under [paper_1993]). *)

type t

(** 32-bit FNV-1a over the given bytes (exposed for tests and for the
    journal's commit entries). *)
val cksum : bytes -> int

(** Checksum of the zero-padded-to-a-block extension of the data. *)
val cksum_padded : bytes -> int

(** CPU cost of hashing [len] bytes, in [Door.charge_cpu] units. *)
val work_units : int -> int

(** Load the checksum region from the device; [None] when the layout has
    no region ([csum_blocks = 0]). *)
val attach : Sp_blockdev.Disk.t -> Layout.t -> t option

(** Initialise and write the checksum region at [mkfs] time: the
    zero-block checksum for every covered block, plus the actual contents
    of the metadata blocks below [data_start].  Assumes the data region
    is zero-filled (fresh device).  No-op when [csum_blocks = 0]. *)
val format : Sp_blockdev.Disk.t -> Layout.t -> unit

(** Is block [n] covered by a checksum? *)
val covers : t -> int -> bool

(** The region block holding the checksum entry for covered block [n]. *)
val home : t -> int -> int

(** Stored checksum for covered block [n]. *)
val stored : t -> int -> int

(** Update the in-memory entry for [n] (no-op when uncovered) and mark
    its region block dirty.  The caller flushes dirty region blocks —
    write-through on raw devs, same-batch on journaled commits. *)
val record : t -> int -> bytes -> unit

(** [true] when [n] is uncovered or the data matches its entry. *)
val matches : t -> int -> bytes -> bool

(** Raise [Fserr.Checksum_error] (bumping [Metrics.checksum_failures] and
    emitting a trace instant) unless {!matches}. *)
val check : t -> label:string -> int -> bytes -> unit

(** Region blocks (absolute indices, sorted) recorded since the last
    {!clear_dirty}. *)
val dirty : t -> int list

(** Copy of the current image of region block [cb] (absolute index). *)
val image : t -> int -> bytes

val clear_dirty : t -> unit
