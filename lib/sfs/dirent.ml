(* The 64-byte entry codec moved below the disk layer (Sp_dir shares it
   between the flat format, the hash index and the offline checkers);
   this alias keeps the disk layer's vocabulary. *)

include Sp_dir.Entry
