let bs = Sp_blockdev.Disk.block_size

(* FNV-1a folded to 32 bits — same hash the journal uses for its commit
   entries.  Not cryptographic; it only has to make bit rot, torn,
   misdirected and lost writes fail verification. *)
let cksum b =
  let h = ref 0x811c9dc5 in
  for i = 0 to Bytes.length b - 1 do
    h := (!h lxor Char.code (Bytes.unsafe_get b i)) * 0x01000193 land 0xffffffff
  done;
  !h

(* Checksums are taken over the full zero-padded block (Disk.write
   semantics); continue the fold over the implicit zero tail instead of
   allocating a padded copy. *)
let cksum_padded b =
  let h = ref 0x811c9dc5 in
  for i = 0 to Bytes.length b - 1 do
    h := (!h lxor Char.code (Bytes.unsafe_get b i)) * 0x01000193 land 0xffffffff
  done;
  for _ = Bytes.length b to bs - 1 do
    h := !h * 0x01000193 land 0xffffffff
  done;
  !h

(* CPU cost of hashing [len] bytes, in Door.charge_cpu units. *)
let work_units len = len / 64

type t = {
  c_start : int;
  c_blocks : int;
  c_total : int;
  c_journal_start : int;
  c_journal_blocks : int;
  c_images : bytes array;  (* current contents of the checksum region *)
  c_dirty : (int, unit) Hashtbl.t;  (* region-relative indices *)
}

let covers t n =
  n >= 0 && n < t.c_total
  && not (n >= t.c_start && n < t.c_start + t.c_blocks)
  && not (t.c_journal_blocks > 0 && n >= t.c_journal_start && n < t.c_journal_start + t.c_journal_blocks)

let home t n = t.c_start + (n / Layout.csum_entries_per_block)

let stored t n =
  let image = t.c_images.(n / Layout.csum_entries_per_block) in
  Int32.to_int (Bytes.get_int32_le image (n mod Layout.csum_entries_per_block * 4))
  land 0xffffffff

let set t n ck =
  let rel = n / Layout.csum_entries_per_block in
  Bytes.set_int32_le t.c_images.(rel)
    (n mod Layout.csum_entries_per_block * 4)
    (Int32.of_int ck);
  Hashtbl.replace t.c_dirty rel ()

let record t n data =
  if covers t n then begin
    Sp_obj.Door.charge_cpu (work_units (Bytes.length data));
    set t n (cksum_padded data)
  end

let matches t n data =
  (not (covers t n))
  ||
  (Sp_obj.Door.charge_cpu (work_units (Bytes.length data));
   cksum_padded data = stored t n)

let check t ~label n data =
  if not (matches t n data) then begin
    Sp_sim.Metrics.incr_checksum_failures ();
    if Sp_trace.enabled () then
      Sp_trace.instant ~name:"checksum:mismatch"
        ~args:[ ("disk", label); ("block", string_of_int n) ]
        ();
    raise
      (Sp_core.Fserr.Checksum_error
         (Printf.sprintf "%s[%d]: stored checksum does not match block contents" label n))
  end

let dirty t =
  Hashtbl.fold (fun rel () acc -> (t.c_start + rel) :: acc) t.c_dirty []
  |> List.sort compare

let image t cb = Bytes.copy t.c_images.(cb - t.c_start)
let clear_dirty t = Hashtbl.reset t.c_dirty

let make (layout : Layout.t) =
  {
    c_start = layout.csum_start;
    c_blocks = layout.csum_blocks;
    c_total = layout.total_blocks;
    c_journal_start = layout.journal_start;
    c_journal_blocks = layout.journal_blocks;
    c_images = Array.init layout.csum_blocks (fun _ -> Bytes.make bs '\000');
    c_dirty = Hashtbl.create 16;
  }

let attach disk (layout : Layout.t) =
  if layout.csum_blocks = 0 then None
  else begin
    let t = make layout in
    for i = 0 to t.c_blocks - 1 do
      t.c_images.(i) <- Sp_blockdev.Disk.read disk (t.c_start + i)
    done;
    Some t
  end

let format disk (layout : Layout.t) =
  if layout.csum_blocks > 0 then begin
    let t = make layout in
    (* Fresh devices are zero-filled, so every covered block starts with
       the zero-block checksum; then re-record the metadata blocks mkfs
       actually wrote (superblock, bitmaps, inode table, journal header
       live below data_start). *)
    let zero_ck = cksum (Bytes.make bs '\000') in
    for n = 0 to t.c_total - 1 do
      if covers t n then set t n zero_ck
    done;
    for n = 0 to layout.data_start - 1 do
      if covers t n then set t n (cksum (Sp_blockdev.Disk.read disk n))
    done;
    for i = 0 to t.c_blocks - 1 do
      Sp_blockdev.Disk.write disk (t.c_start + i) t.c_images.(i)
    done
  end
