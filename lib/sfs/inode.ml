type kind = Free | File | Dir

type t = {
  mutable kind : kind;
  mutable nlink : int;
  mutable len : int;
  mutable atime : int;
  mutable mtime : int;
  mutable ctime : int;
  direct : int array;
  mutable indirect : int;
  mutable double_indirect : int;
}

let kind_to_int = function Free -> 0 | File -> 1 | Dir -> 2

let kind_of_int = function
  | 0 -> Free
  | 1 -> File
  | 2 -> Dir
  | n -> raise (Sp_core.Fserr.Io_error (Printf.sprintf "bad inode kind %d" n))

let encode t =
  let b = Bytes.make Layout.inode_size '\000' in
  Bytes.set_uint8 b 0 (kind_to_int t.kind);
  Bytes.set_uint16_le b 2 t.nlink;
  Bytes.set_int64_le b 8 (Int64.of_int t.len);
  Bytes.set_int64_le b 16 (Int64.of_int t.atime);
  Bytes.set_int64_le b 24 (Int64.of_int t.mtime);
  Bytes.set_int64_le b 32 (Int64.of_int t.ctime);
  Array.iteri
    (fun i ptr -> Bytes.set_int32_le b (40 + (i * 4)) (Int32.of_int ptr))
    t.direct;
  Bytes.set_int32_le b (40 + (Layout.n_direct * 4)) (Int32.of_int t.indirect);
  Bytes.set_int32_le b (44 + (Layout.n_direct * 4)) (Int32.of_int t.double_indirect);
  b

let decode b =
  let i64 off = Int64.to_int (Bytes.get_int64_le b off) in
  let i32 off = Int32.to_int (Bytes.get_int32_le b off) in
  {
    kind = kind_of_int (Bytes.get_uint8 b 0);
    nlink = Bytes.get_uint16_le b 2;
    len = i64 8;
    atime = i64 16;
    mtime = i64 24;
    ctime = i64 32;
    direct = Array.init Layout.n_direct (fun i -> i32 (40 + (i * 4)));
    indirect = i32 (40 + (Layout.n_direct * 4));
    double_indirect = i32 (44 + (Layout.n_direct * 4));
  }

let to_attr t =
  {
    Sp_vm.Attr.kind =
      (match t.kind with
      | Dir -> Sp_vm.Attr.Directory
      | File | Free -> Sp_vm.Attr.Regular);
    len = t.len;
    atime = t.atime;
    mtime = t.mtime;
    ctime = t.ctime;
    nlink = t.nlink;
  }

let apply_attr t (a : Sp_vm.Attr.t) =
  t.atime <- a.atime;
  t.mtime <- a.mtime;
  t.ctime <- a.ctime

type slot = { inode : t; mutable dirty : bool }

type cache = {
  dev : Journal.dev;
  layout : Layout.t;
  table : (int, slot) Hashtbl.t;
  mutable dirty_count : int;
      (* maintained so the sync fast path can see "nothing dirty" in O(1)
         instead of scanning the cache *)
}

let cache_create dev layout =
  { dev; layout; table = Hashtbl.create 64; dirty_count = 0 }

let block_of c ino = c.layout.Layout.inode_table_start + (ino / Layout.inodes_per_block)
let offset_of ino = ino mod Layout.inodes_per_block * Layout.inode_size

let get c ino =
  if ino < 0 || ino >= c.layout.Layout.inode_count then
    invalid_arg (Printf.sprintf "Inode.get: inode %d out of range" ino);
  match Hashtbl.find_opt c.table ino with
  | Some slot -> slot.inode
  | None ->
      let block = Journal.read c.dev (block_of c ino) in
      let inode = decode (Bytes.sub block (offset_of ino) Layout.inode_size) in
      Hashtbl.replace c.table ino { inode; dirty = false };
      inode

let mark_dirty c ino =
  match Hashtbl.find_opt c.table ino with
  | Some slot ->
      if not slot.dirty then begin
        slot.dirty <- true;
        c.dirty_count <- c.dirty_count + 1
      end
  | None -> invalid_arg (Printf.sprintf "Inode.mark_dirty: inode %d not cached" ino)

let put c ino inode =
  (match Hashtbl.find_opt c.table ino with
  | Some slot when slot.dirty -> ()
  | Some _ | None -> c.dirty_count <- c.dirty_count + 1);
  Hashtbl.replace c.table ino { inode; dirty = true }

let flush c =
  (* Group dirty inodes by table block to write each block once. *)
  let by_block = Hashtbl.create 8 in
  Hashtbl.iter
    (fun ino slot ->
      if slot.dirty then begin
        let b = block_of c ino in
        let group = Option.value (Hashtbl.find_opt by_block b) ~default:[] in
        Hashtbl.replace by_block b ((ino, slot) :: group)
      end)
    c.table;
  Hashtbl.iter
    (fun block group ->
      let data = Journal.read c.dev block in
      List.iter
        (fun (ino, slot) ->
          Bytes.blit (encode slot.inode) 0 data (offset_of ino) Layout.inode_size;
          slot.dirty <- false)
        group;
      Journal.write c.dev block data)
    by_block;
  c.dirty_count <- 0

let drop c =
  flush c;
  Hashtbl.reset c.table

let cached_count c = Hashtbl.length c.table
let clean c = c.dirty_count = 0
