let bs = Sp_blockdev.Disk.block_size

(* Group-commit window (see [flush_all]): the leader that opened it
   seals it when its commit-delay expires; syncs arriving before the
   seal park on [gw_done] and are covered by the leader's transaction. *)
type gc_window = {
  gw_done : (unit, exn) result Sp_sched.Ivar.t;
  mutable gw_sealed : bool;
}

type fs = {
  name : string;
  disk : Sp_blockdev.Disk.t;
  dev : Journal.dev;  (* all layer I/O goes through this *)
  layout : Layout.t;
  domain : Sp_obj.Sdomain.t;
  icache : Inode.cache;
  ibitmap : Bitmap.t;
  bbitmap : Bitmap.t;
  channels : Sp_vm.Pager_lib.t;
  files : (int, Sp_core.File.t) Hashtbl.t;
  ctxs : (int, Sp_naming.Context.t) Hashtbl.t;
  dcache : (int, Dirent.t list) Hashtbl.t;
      (* flat-directory entry cache: with the i-node cache, lets open and
         stat run without disk I/O (paper Table 2 note).  Indexed
         directories bypass it and use [dirblk] instead. *)
  dirblk : (int * int, bytes) Hashtbl.t;
      (* (dir inode, file block) -> block cache for indexed directories,
         write-through: warm index lookups cost no disk I/O *)
  indcache : (int, bytes) Hashtbl.t;
      (* indirect-block cache (write-through): metadata, like the i-node
         cache, so sequential data I/O does not thrash the head between
         indirect and data blocks *)
  dir_index : bool;
      (* mount-time policy switch: when false, flat directories never
         upgrade to the hashed index (directories already indexed on
         disk stay indexed — the format test decides).  Exists for the
         flat-baseline benchmark; real mounts leave it on. *)
  lock : Sp_sched.Mutex.t;
      (* serializes mutating operations and sync against concurrent
         scheduler tasks: a journal commit interleaved with buffered
         writes (or two interleaved allocations) would corrupt the
         volume.  Reads stay outside it so the disk elevator sees
         concurrent I/O.  Reentrant per task (sync from inside a write
         path is fine). *)
  group_commit : bool;
      (* mount-time policy: when true (the default), concurrent syncs
         elect a leader whose single commit covers the union dirty set;
         off exists for the equivalence tests and A/B benchmarks. *)
  mutable gc : gc_window option;  (* the currently open window, if any *)
}

(* Registry linking exported stackable_fs values back to their state, for
   the introspection API. *)
let instances : (string, fs) Hashtbl.t = Hashtbl.create 4

let fs_of (sfs : Sp_core.Stackable.t) =
  match Hashtbl.find_opt instances sfs.Sp_core.Stackable.sfs_name with
  | Some fs -> fs
  | None -> invalid_arg (sfs.Sp_core.Stackable.sfs_name ^ ": not a disk layer")

let locked fs f = Sp_sched.Mutex.with_lock fs.lock f

(* ------------------------------------------------------------------ *)
(* Block allocation                                                    *)
(* ------------------------------------------------------------------ *)

let alloc_block fs =
  match Bitmap.find_free ~from:fs.layout.Layout.data_start fs.bbitmap with
  | Some b when b >= fs.layout.Layout.data_start ->
      Bitmap.set fs.bbitmap b;
      Journal.write fs.dev b (Bytes.make bs '\000');
      b
  | Some _ | None -> raise (Sp_core.Fserr.No_space (fs.name ^ ": data blocks"))

let free_block fs b = if b <> 0 then Bitmap.clear fs.bbitmap b

(* ------------------------------------------------------------------ *)
(* File-block mapping: direct, single and double indirect              *)
(* ------------------------------------------------------------------ *)

let ptr_get block i = Int32.to_int (Bytes.get_int32_le block (i * 4))
let ptr_set block i v = Bytes.set_int32_le block (i * 4) (Int32.of_int v)
let ppb = Layout.ptrs_per_block

let read_indirect fs b =
  match Hashtbl.find_opt fs.indcache b with
  | Some data -> data
  | None ->
      let data = Journal.read fs.dev b in
      Hashtbl.replace fs.indcache b data;
      data

let write_indirect fs b data =
  Hashtbl.replace fs.indcache b (Bytes.copy data);
  Journal.write fs.dev b data

(* Disk block holding file block [n] of [inode], or 0 for a hole. *)
let file_block fs inode n =
  if n < Layout.n_direct then inode.Inode.direct.(n)
  else
    let n = n - Layout.n_direct in
    if n < ppb then
      if inode.Inode.indirect = 0 then 0
      else ptr_get (read_indirect fs inode.Inode.indirect) n
    else
      let n = n - ppb in
      if n >= ppb * ppb then
        raise (Sp_core.Fserr.No_space (fs.name ^ ": file too large"))
      else if inode.Inode.double_indirect = 0 then 0
      else
        let l1 = read_indirect fs inode.Inode.double_indirect in
        let l2_block = ptr_get l1 (n / ppb) in
        if l2_block = 0 then 0
        else ptr_get (read_indirect fs l2_block) (n mod ppb)

(* Like [file_block] but allocates missing blocks (and indirect blocks). *)
let ensure_block fs ino inode n =
  let dirty () = Inode.mark_dirty fs.icache ino in
  if n < Layout.n_direct then begin
    if inode.Inode.direct.(n) = 0 then begin
      inode.Inode.direct.(n) <- alloc_block fs;
      dirty ()
    end;
    inode.Inode.direct.(n)
  end
  else
    let n' = n - Layout.n_direct in
    if n' < ppb then begin
      if inode.Inode.indirect = 0 then begin
        inode.Inode.indirect <- alloc_block fs;
        dirty ()
      end;
      let table = Bytes.copy (read_indirect fs inode.Inode.indirect) in
      let b = ptr_get table n' in
      if b <> 0 then b
      else begin
        let fresh = alloc_block fs in
        ptr_set table n' fresh;
        write_indirect fs inode.Inode.indirect table;
        fresh
      end
    end
    else begin
      let n' = n' - ppb in
      if n' >= ppb * ppb then
        raise (Sp_core.Fserr.No_space (fs.name ^ ": file too large"));
      if inode.Inode.double_indirect = 0 then begin
        inode.Inode.double_indirect <- alloc_block fs;
        dirty ()
      end;
      let l1 = Bytes.copy (read_indirect fs inode.Inode.double_indirect) in
      let l2_block =
        let b = ptr_get l1 (n' / ppb) in
        if b <> 0 then b
        else begin
          let fresh = alloc_block fs in
          ptr_set l1 (n' / ppb) fresh;
          write_indirect fs inode.Inode.double_indirect l1;
          fresh
        end
      in
      let l2 = Bytes.copy (read_indirect fs l2_block) in
      let b = ptr_get l2 (n' mod ppb) in
      if b <> 0 then b
      else begin
        let fresh = alloc_block fs in
        ptr_set l2 (n' mod ppb) fresh;
        write_indirect fs l2_block l2;
        fresh
      end
    end

(* Free file block [fb]'s disk block and zero its mapping pointer,
   leaving a hole (reads return zeros).  Index rebuilds punch the old
   extent out this way after the root flips. *)
let punch_file_block fs ino inode fb =
  Hashtbl.remove fs.dirblk (ino, fb);
  let dirty () = Inode.mark_dirty fs.icache ino in
  if fb < Layout.n_direct then begin
    let b = inode.Inode.direct.(fb) in
    if b <> 0 then begin
      free_block fs b;
      inode.Inode.direct.(fb) <- 0;
      dirty ()
    end
  end
  else
    let n = fb - Layout.n_direct in
    if n < ppb then begin
      if inode.Inode.indirect <> 0 then begin
        let table = Bytes.copy (read_indirect fs inode.Inode.indirect) in
        let b = ptr_get table n in
        if b <> 0 then begin
          free_block fs b;
          ptr_set table n 0;
          write_indirect fs inode.Inode.indirect table
        end
      end
    end
    else begin
      let n = n - ppb in
      if inode.Inode.double_indirect <> 0 then begin
        let l1 = read_indirect fs inode.Inode.double_indirect in
        let l2_block = ptr_get l1 (n / ppb) in
        if l2_block <> 0 then begin
          let l2 = Bytes.copy (read_indirect fs l2_block) in
          let b = ptr_get l2 (n mod ppb) in
          if b <> 0 then begin
            free_block fs b;
            ptr_set l2 (n mod ppb) 0;
            write_indirect fs l2_block l2
          end
        end
      end
    end

(* Free all blocks of file block index >= [from_block]. *)
let free_blocks_from fs ino inode ~from_block =
  let dirty () = Inode.mark_dirty fs.icache ino in
  for i = max 0 from_block to Layout.n_direct - 1 do
    if inode.Inode.direct.(i) <> 0 then begin
      free_block fs inode.Inode.direct.(i);
      inode.Inode.direct.(i) <- 0;
      dirty ()
    end
  done;
  if inode.Inode.indirect <> 0 then begin
    let first = max 0 (from_block - Layout.n_direct) in
    if first < ppb then begin
      let table = Bytes.copy (read_indirect fs inode.Inode.indirect) in
      let changed = ref false in
      for i = first to ppb - 1 do
        let b = ptr_get table i in
        if b <> 0 then begin
          free_block fs b;
          ptr_set table i 0;
          changed := true
        end
      done;
      if first = 0 then begin
        Hashtbl.remove fs.indcache inode.Inode.indirect;
        free_block fs inode.Inode.indirect;
        inode.Inode.indirect <- 0;
        dirty ()
      end
      else if !changed then write_indirect fs inode.Inode.indirect table
    end
  end;
  if inode.Inode.double_indirect <> 0 then begin
    let first = max 0 (from_block - Layout.n_direct - ppb) in
    let l1 = Bytes.copy (read_indirect fs inode.Inode.double_indirect) in
    let l1_changed = ref false in
    for i = (if first = 0 then 0 else first / ppb) to ppb - 1 do
      let l2_block = ptr_get l1 i in
      if l2_block <> 0 then begin
        let lo = if i * ppb >= first then 0 else first mod ppb in
        let l2 = Bytes.copy (read_indirect fs l2_block) in
        let l2_changed = ref false in
        for j = lo to ppb - 1 do
          let b = ptr_get l2 j in
          if b <> 0 then begin
            free_block fs b;
            ptr_set l2 j 0;
            l2_changed := true
          end
        done;
        if lo = 0 then begin
          Hashtbl.remove fs.indcache l2_block;
          free_block fs l2_block;
          ptr_set l1 i 0;
          l1_changed := true
        end
        else if !l2_changed then write_indirect fs l2_block l2
      end
    done;
    if first = 0 then begin
      Hashtbl.remove fs.indcache inode.Inode.double_indirect;
      free_block fs inode.Inode.double_indirect;
      inode.Inode.double_indirect <- 0;
      dirty ()
    end
    else if !l1_changed then
      write_indirect fs inode.Inode.double_indirect l1
  end

(* ------------------------------------------------------------------ *)
(* Raw ranged I/O (ignores the inode length; holes read as zeros)      *)
(* ------------------------------------------------------------------ *)

let read_range fs inode ~pos ~len =
  let out = Bytes.make len '\000' in
  let rec go cursor =
    if cursor < len then begin
      let off = pos + cursor in
      let b = file_block fs inode (off / bs) in
      let in_block = off mod bs in
      let n = min (len - cursor) (bs - in_block) in
      if b <> 0 then begin
        let data = Journal.read fs.dev b in
        Bytes.blit data in_block out cursor n
      end;
      go (cursor + n)
    end
  in
  go 0;
  out

let write_range fs ino inode ~pos data =
  let len = Bytes.length data in
  let rec go cursor =
    if cursor < len then begin
      let off = pos + cursor in
      let in_block = off mod bs in
      let n = min (len - cursor) (bs - in_block) in
      let b = ensure_block fs ino inode (off / bs) in
      if n = bs then Journal.write fs.dev b (Bytes.sub data cursor n)
      else begin
        let block = Journal.read fs.dev b in
        Bytes.blit data cursor block in_block n;
        Journal.write fs.dev b block
      end;
      go (cursor + n)
    end
  in
  go 0

(* [write_range] for one clustered-writeback extent: allocation (and its
   metadata writes) happens up front while collecting the run's blocks,
   then the data goes to the device in one [Journal.write_vec] — in
   ascending block order, so a contiguously-allocated run costs one seek
   plus a contiguous transfer instead of thrashing the head between data
   and checksum-region blocks per page. *)
let write_range_vec fs ino inode ~pos data =
  let len = Bytes.length data in
  let writes = ref [] in
  let rec go cursor =
    if cursor < len then begin
      let off = pos + cursor in
      let in_block = off mod bs in
      let n = min (len - cursor) (bs - in_block) in
      let b = ensure_block fs ino inode (off / bs) in
      let block =
        if n = bs then Bytes.sub data cursor n
        else begin
          let block = Journal.read fs.dev b in
          Bytes.blit data cursor block in_block n;
          block
        end
      in
      writes := (b, block) :: !writes;
      go (cursor + n)
    end
  in
  go 0;
  Journal.write_vec fs.dev (List.rev !writes)

(* ------------------------------------------------------------------ *)
(* Inode allocation, length                                            *)
(* ------------------------------------------------------------------ *)

let alloc_inode fs kind =
  match Bitmap.find_free fs.ibitmap with
  | None -> raise (Sp_core.Fserr.No_space (fs.name ^ ": inodes"))
  | Some ino ->
      Bitmap.set fs.ibitmap ino;
      let now = Sp_sim.Simclock.now () in
      let inode =
        {
          Inode.kind;
          nlink = 1;
          len = 0;
          atime = now;
          mtime = now;
          ctime = now;
          direct = Array.make Layout.n_direct 0;
          indirect = 0;
          double_indirect = 0;
        }
      in
      Inode.put fs.icache ino inode;
      (ino, inode)

let set_length fs ino len =
  let inode = Inode.get fs.icache ino in
  if len < 0 then invalid_arg "Disk_layer.set_length: negative";
  if len < inode.Inode.len then begin
    let keep = (len + bs - 1) / bs in
    free_blocks_from fs ino inode ~from_block:keep;
    (* Zero the tail of the last kept block so re-extension reads zeros. *)
    if len mod bs <> 0 then begin
      let b = file_block fs inode (len / bs) in
      if b <> 0 then begin
        let block = Journal.read fs.dev b in
        Bytes.fill block (len mod bs) (bs - (len mod bs)) '\000';
        Journal.write fs.dev b block
      end
    end
  end;
  if len <> inode.Inode.len then begin
    inode.Inode.len <- len;
    inode.Inode.mtime <- Sp_sim.Simclock.now ();
    Inode.mark_dirty fs.icache ino
  end

let free_inode fs ino =
  (* The file's identity dies here: tear down every pager-cache channel so
     a later file reusing this inode cannot alias stale caches. *)
  Sp_vm.Pager_lib.destroy_key fs.channels
    ~key:(Printf.sprintf "%s/ino%d" fs.name ino);
  let inode = Inode.get fs.icache ino in
  free_blocks_from fs ino inode ~from_block:0;
  inode.Inode.kind <- Inode.Free;
  inode.Inode.len <- 0;
  inode.Inode.nlink <- 0;
  Inode.mark_dirty fs.icache ino;
  Bitmap.clear fs.ibitmap ino;
  Hashtbl.remove fs.files ino;
  Hashtbl.remove fs.ctxs ino;
  Hashtbl.remove fs.dcache ino;
  Hashtbl.filter_map_inplace
    (fun (i, _) data -> if i = ino then None else Some data)
    fs.dirblk

(* ------------------------------------------------------------------ *)
(* Directories                                                         *)
(* ------------------------------------------------------------------ *)

let es = Dirent.entry_size

let decode_dir data =
  let rec go off acc =
    if off + es > Bytes.length data then List.rev acc
    else
      match Dirent.decode data off with
      | Some e -> go (off + es) (e :: acc)
      | None -> go (off + es) acc
  in
  go 0 []

let dir_entries_uncached fs inode =
  decode_dir (read_range fs inode ~pos:0 ~len:inode.Inode.len)

(* [ino] is only used as the cache key; [inode] must be its inode.
   Flat directories only — indexed directories go through [dir_io]. *)
let dir_entries_at fs ino inode =
  match Hashtbl.find_opt fs.dcache ino with
  | Some entries -> entries
  | None ->
      let entries = dir_entries_uncached fs inode in
      Hashtbl.replace fs.dcache ino entries;
      entries

(* Index block I/O over the directory's own data blocks: reads come
   through the write-through [dirblk] cache (the indexed analog of
   [dcache]), writes route through the journalled dev so index updates
   commit atomically with everything else.  [Index] never mutates a
   block it read, so the cache hands out its bytes directly. *)
let dir_block fs ino inode fb =
  match Hashtbl.find_opt fs.dirblk (ino, fb) with
  | Some data -> data
  | None ->
      let b = file_block fs inode fb in
      let data = if b = 0 then Bytes.make bs '\000' else Journal.read fs.dev b in
      Hashtbl.replace fs.dirblk (ino, fb) data;
      data

let dir_io fs ino inode =
  {
    Sp_dir.Index.read = (fun fb -> dir_block fs ino inode fb);
    write =
      (fun fb data ->
        let b = ensure_block fs ino inode fb in
        Hashtbl.replace fs.dirblk (ino, fb) data;
        Journal.write fs.dev b data);
  }

(* Format test: an index root's magic + flag bytes cannot occur in a
   flat block, and flat directories under 64 entries short-circuit on
   length alone. *)
let dir_indexed fs ino inode =
  inode.Inode.len >= bs && Sp_dir.Index.is_index_root (dir_block fs ino inode 0)

(* On a journalled volume a shadow rebuild must fit one commit batch,
   so bucket growth stops at 64 (chains then deepen instead — lookups
   stay O(chain), never wrong).  Unjournaled volumes write through and
   grow to the policy cap. *)
let bucket_cap fs = if Journal.journal fs.dev <> None then 64 else 65536

(* Shadow-rebuild the index past the current extent ([start] blocks),
   flip the root, then punch the superseded blocks out of the mapping.
   Also the flat->indexed upgrade (old extent = the flat blocks). *)
let dir_rebuild fs ino inode entries ~start =
  let io = dir_io fs ino inode in
  let buckets =
    Sp_dir.Index.target_buckets ~cap:(bucket_cap fs)
      ~entries:(List.length entries) ()
  in
  let nblocks = Sp_dir.Index.build io ~entries ~buckets ~start in
  for fb = 1 to start - 1 do
    punch_file_block fs ino inode fb
  done;
  inode.Inode.len <- nblocks * bs;
  Inode.mark_dirty fs.icache ino;
  Hashtbl.remove fs.dcache ino

let dir_lookup fs ino inode name =
  if dir_indexed fs ino inode then Sp_dir.Index.lookup (dir_io fs ino inode) name
  else
    List.find_opt
      (fun e -> String.equal e.Dirent.name name)
      (dir_entries_at fs ino inode)

let dir_add fs ino inode entry =
  if dir_indexed fs ino inode then begin
    let io = dir_io fs ino inode in
    Sp_dir.Index.add io entry;
    let h = Sp_dir.Index.read_header io in
    if h.Sp_dir.Index.nblocks * bs > inode.Inode.len then
      inode.Inode.len <- h.Sp_dir.Index.nblocks * bs;
    if Sp_dir.Index.grow_due ~cap:(bucket_cap fs) h then
      dir_rebuild fs ino inode (Sp_dir.Index.entries io)
        ~start:h.Sp_dir.Index.nblocks;
    inode.Inode.mtime <- Sp_sim.Simclock.now ();
    Inode.mark_dirty fs.icache ino
  end
  else begin
    (* Reuse the first free slot, else append. *)
    let data = read_range fs inode ~pos:0 ~len:inode.Inode.len in
    let rec find_slot off =
      if off + es > Bytes.length data then inode.Inode.len
      else match Dirent.decode data off with Some _ -> find_slot (off + es) | None -> off
    in
    let slot = find_slot 0 in
    write_range fs ino inode ~pos:slot (Dirent.encode entry);
    if slot + es > inode.Inode.len then begin
      inode.Inode.len <- slot + es;
      Inode.mark_dirty fs.icache ino
    end;
    inode.Inode.mtime <- Sp_sim.Simclock.now ();
    Inode.mark_dirty fs.icache ino;
    Hashtbl.remove fs.dcache ino;
    let flat = decode_dir data in
    if fs.dir_index && List.length flat + 1 > Sp_dir.Index.upgrade_threshold then
      dir_rebuild fs ino inode (entry :: flat)
        ~start:((inode.Inode.len + bs - 1) / bs)
  end

let dir_remove fs ino inode name =
  if dir_indexed fs ino inode then begin
    (* Indexed directories never downgrade (ext-style). *)
    if not (Sp_dir.Index.remove (dir_io fs ino inode) name) then
      raise (Sp_core.Fserr.No_such_file (fs.name ^ "/" ^ name));
    inode.Inode.mtime <- Sp_sim.Simclock.now ();
    Inode.mark_dirty fs.icache ino
  end
  else begin
    let data = read_range fs inode ~pos:0 ~len:inode.Inode.len in
    let rec go off =
      if off + es > Bytes.length data then
        raise (Sp_core.Fserr.No_such_file (fs.name ^ "/" ^ name))
      else
        match Dirent.decode data off with
        | Some e when String.equal e.Dirent.name name ->
            write_range fs ino inode ~pos:off Dirent.free_slot;
            inode.Inode.mtime <- Sp_sim.Simclock.now ();
            Inode.mark_dirty fs.icache ino;
            Hashtbl.remove fs.dcache ino
        | _ -> go (off + es)
    in
    go 0
  end

let dir_entry_count fs ino inode =
  if dir_indexed fs ino inode then
    (Sp_dir.Index.read_header (dir_io fs ino inode)).Sp_dir.Index.entries
  else List.length (dir_entries_at fs ino inode)

(* ------------------------------------------------------------------ *)
(* Pager / memory objects                                              *)
(* ------------------------------------------------------------------ *)

let file_key fs ino = Printf.sprintf "%s/ino%d" fs.name ino

let make_pager fs ino =
  let get_attr () = Inode.to_attr (Inode.get fs.icache ino) in
  let set_attr a =
    locked fs @@ fun () ->
    let inode = Inode.get fs.icache ino in
    Inode.apply_attr inode a;
    Inode.mark_dirty fs.icache ino
  in
  let attr_sync (a : Sp_vm.Attr.t) =
    locked fs @@ fun () ->
    let inode = Inode.get fs.icache ino in
    if a.Sp_vm.Attr.len <> inode.Inode.len then set_length fs ino a.Sp_vm.Attr.len;
    let inode = Inode.get fs.icache ino in
    Inode.apply_attr inode a;
    Inode.mark_dirty fs.icache ino
  in
  let write ~offset data =
    locked fs @@ fun () ->
    let inode = Inode.get fs.icache ino in
    write_range fs ino inode ~pos:offset data
  in
  {
    Sp_vm.Vm_types.p_domain = fs.domain;
    p_label = file_key fs ino;
    p_page_in =
      (fun ~offset ~size ~access:_ ->
        let inode = Inode.get fs.icache ino in
        read_range fs inode ~pos:offset ~len:size);
    p_page_out = write;
    p_write_out = write;
    p_sync = write;
    (* Vectored writeback: each extent is a contiguous run of blocks,
       issued to the device in ascending order with the checksum region
       flushed once per extent.  All I/O still goes through the [Journal]
       dev, so crash atomicity and checksums are preserved and a sync
       commits the whole cluster in one journal batch. *)
    p_sync_v =
      Sp_vm.Vm_types.sync_each (fun ~offset data ->
          locked fs @@ fun () ->
          let inode = Inode.get fs.icache ino in
          write_range_vec fs ino inode ~pos:offset data);
    p_done_with = (fun () -> ());
    p_exten =
      [
        Sp_vm.Vm_types.Fs_pager
          {
            Sp_vm.Vm_types.fp_get_attr = get_attr;
            fp_set_attr = set_attr;
            fp_attr_sync = attr_sync;
          };
      ];
  }

let make_memory_object fs ino =
  {
    Sp_vm.Vm_types.m_domain = fs.domain;
    m_label = file_key fs ino;
    m_bind =
      (fun manager _access ->
        Sp_vm.Pager_lib.bind fs.channels ~key:(file_key fs ino)
          ~make_pager:(fun ~id:_ -> make_pager fs ino)
          manager);
    m_get_length = (fun () -> (Inode.get fs.icache ino).Inode.len);
    m_set_length = (fun len -> locked fs (fun () -> set_length fs ino len));
  }

(* ------------------------------------------------------------------ *)
(* File objects                                                        *)
(* ------------------------------------------------------------------ *)

(* Nothing a flush would write: no buffered journal blocks, no dirty
   cached inode, no dirty bitmap block.  O(1), called without the lock —
   safe because a caller's own completed write always leaves something
   dirty (there is no suspension point between a write reaching the
   dev/cache and its dirty mark), so the fast path can never skip work
   the caller is entitled to have synced. *)
let fs_clean fs =
  Journal.pending fs.dev = 0
  && Inode.clean fs.icache
  && Bitmap.clean fs.ibitmap
  && Bitmap.clean fs.bbitmap

let flush_direct fs =
  locked fs @@ fun () ->
  (* The span wraps the whole flush so profiles attribute the commit to
     exactly one task — the leader (or solo caller); absorbed followers
     never open it. *)
  Sp_trace.span ~op:"journal.commit" @@ fun () ->
  Inode.flush fs.icache;
  Bitmap.flush fs.ibitmap;
  Bitmap.flush fs.bbitmap;
  (* On a journaled dev everything above only reached the in-memory dirty
     set; this seals it as one atomic transaction and copies it home. *)
  Journal.commit fs.dev

(* Group commit.  Under concurrent scheduler tasks, the first sync to
   arrive becomes the leader: it opens a window, waits the model's
   commit delay (idle — other clients keep running and their syncs park
   on the window), then seals the window and runs one commit over the
   union dirty set.  A follower whose sync parked before the seal is
   covered by that commit — every write it completed before calling sync
   is in the dirty set the leader flushes — so it returns (or re-raises
   the leader's failure) without touching the device.  A sync that finds
   the window already sealed waits it out and starts over.

   The leader seals with no suspension point between waking from the
   delay and setting [gw_sealed], and followers check [gw_sealed] with
   no suspension point before parking, so no sync can slip between the
   seal and the commit's enumeration of the dirty set uncovered.

   Callers already inside the fs lock (drop_caches, a writeback path
   re-entering sync) must not park — the leader needs that lock to
   commit — and take the direct path; so does everything outside a
   scheduler run, where there is no concurrency to absorb. *)
let rec flush_all fs =
  if fs_clean fs then ()
  else if
    (not fs.group_commit)
    || (not (Sp_sched.in_task ()))
    || Sp_sched.Mutex.held fs.lock
  then flush_direct fs
  else
    match fs.gc with
    | Some w when not w.gw_sealed ->
        (* Follower: the window is still open, so our completed writes
           are in the dirty set the leader will commit. *)
        Journal.note_absorbed fs.dev;
        (match Sp_sched.Ivar.read w.gw_done with
        | Ok () -> ()
        | Error e -> raise e)
    | Some w ->
        (* Sealed: too late to be covered.  Wait for it to land (its
           outcome is not ours to report) and start over. *)
        ignore (Sp_sched.Ivar.read w.gw_done : (unit, exn) result);
        flush_all fs
    | None ->
        (* Leader. *)
        let w = { gw_done = Sp_sched.Ivar.create (); gw_sealed = false } in
        fs.gc <- Some w;
        Sp_sched.sleep (Sp_sim.Cost_model.current ()).commit_delay_ns;
        w.gw_sealed <- true;
        let result =
          match flush_direct fs with () -> Ok () | exception e -> Error e
        in
        (* Clear the window before waking anyone: no suspension point
           between here and the fill, so every later sync sees a fresh
           start.  Guarded by identity — if this leader died mid-commit
           ([Dead_domain]) a successor incarnation may already have
           installed its own window. *)
        (match fs.gc with Some w' when w' == w -> fs.gc <- None | _ -> ());
        if result = Ok () then Journal.note_group_commit fs.dev;
        Sp_sched.Ivar.fill w.gw_done result;
        (match result with Ok () -> () | Error e -> raise e)

(* The disk layer serves read/write straight from the device: it has no
   data cache (Table 2's "reads and writes to the disk layer do require
   disk I/Os"). *)
let make_file fs ino =
  let get_attr () = Inode.to_attr (Inode.get fs.icache ino) in
  {
    Sp_core.File.f_id = file_key fs ino;
    f_domain = fs.domain;
    f_mem = make_memory_object fs ino;
    f_read =
      (fun ~pos ~len ->
        let inode = Inode.get fs.icache ino in
        let len = max 0 (min len (inode.Inode.len - pos)) in
        if len = 0 then Bytes.empty
        else begin
          inode.Inode.atime <- Sp_sim.Simclock.now ();
          Inode.mark_dirty fs.icache ino;
          let data = read_range fs inode ~pos ~len in
          Sp_obj.Door.charge_source_copy len;
          data
        end);
    f_write =
      (fun ~pos data ->
        locked fs @@ fun () ->
        let inode = Inode.get fs.icache ino in
        write_range fs ino inode ~pos data;
        let len = Bytes.length data in
        if pos + len > inode.Inode.len then inode.Inode.len <- pos + len;
        inode.Inode.mtime <- Sp_sim.Simclock.now ();
        Inode.mark_dirty fs.icache ino;
        Sp_obj.Door.charge_source_copy len;
        len);
    f_stat = get_attr;
    f_set_attr =
      (fun a ->
        locked fs @@ fun () ->
        let inode = Inode.get fs.icache ino in
        Inode.apply_attr inode a;
        Inode.mark_dirty fs.icache ino);
    f_truncate = (fun len -> locked fs (fun () -> set_length fs ino len));
    f_sync = (fun () -> flush_all fs);
    f_exten = [];
  }

let file_of fs ino =
  match Hashtbl.find_opt fs.files ino with
  | Some f -> f
  | None ->
      let f = make_file fs ino in
      Hashtbl.replace fs.files ino f;
      f

(* ------------------------------------------------------------------ *)
(* Naming contexts over directories                                    *)
(* ------------------------------------------------------------------ *)

let rec ctx_of fs ino =
  match Hashtbl.find_opt fs.ctxs ino with
  | Some c -> c
  | None ->
      let c = make_ctx fs ino in
      Hashtbl.replace fs.ctxs ino c;
      c

and make_ctx fs ino =
  let label = Printf.sprintf "%s:dir%d" fs.name ino in
  let dir () =
    let inode = Inode.get fs.icache ino in
    if inode.Inode.kind <> Inode.Dir then raise (Sp_core.Fserr.Not_a_directory label);
    inode
  in
  let resolve1 component =
    match dir_lookup fs ino (dir ()) component with
    | None -> raise (Sp_naming.Context.Unbound (label ^ "/" ^ component))
    | Some e ->
        if e.Dirent.is_dir then Sp_naming.Context.Context (ctx_of fs e.Dirent.ino)
        else begin
          (* Resolving a file is an open: charge the per-layer open-file
             state maintenance the paper's Table 2 measures. *)
          Sp_sim.Simclock.advance (Sp_sim.Cost_model.current ()).open_state_ns;
          Sp_core.File.File (file_of fs e.Dirent.ino)
        end
  in
  let bind1 component obj =
    locked fs @@ fun () ->
    Dirent.check_name component;
    let inode = dir () in
    if dir_lookup fs ino inode component <> None then
      raise (Sp_naming.Context.Already_bound (label ^ "/" ^ component));
    match obj with
    | Sp_core.File.File f ->
        (* Hard link: only files of this very file system can live in its
           directories. *)
        let prefix = fs.name ^ "/ino" in
        let id = f.Sp_core.File.f_id in
        if not (String.length id > String.length prefix
                && String.sub id 0 (String.length prefix) = prefix) then
          invalid_arg (label ^ ": can bind only files of this file system");
        let target =
          int_of_string (String.sub id (String.length prefix)
                           (String.length id - String.length prefix))
        in
        dir_add fs ino inode { Dirent.ino = target; is_dir = false; name = component };
        let tnode = Inode.get fs.icache target in
        tnode.Inode.nlink <- tnode.Inode.nlink + 1;
        Inode.mark_dirty fs.icache target
    | _ -> invalid_arg (label ^ ": disk layer binds only its own files")
  in
  let unbind1 component =
    locked fs @@ fun () ->
    let inode = dir () in
    match dir_lookup fs ino inode component with
    | None -> raise (Sp_naming.Context.Unbound (label ^ "/" ^ component))
    | Some e ->
        if e.Dirent.is_dir then begin
          let child = Inode.get fs.icache e.Dirent.ino in
          if dir_entry_count fs e.Dirent.ino child <> 0 then
            raise (Sp_core.Fserr.Directory_not_empty (label ^ "/" ^ component));
          dir_remove fs ino inode component;
          free_inode fs e.Dirent.ino
        end
        else begin
          dir_remove fs ino inode component;
          let child = Inode.get fs.icache e.Dirent.ino in
          child.Inode.nlink <- child.Inode.nlink - 1;
          Inode.mark_dirty fs.icache e.Dirent.ino;
          if child.Inode.nlink <= 0 then free_inode fs e.Dirent.ino
        end
  in
  let rebind1 component obj =
    locked fs @@ fun () ->
    (match dir_lookup fs ino (dir ()) component with
    | Some _ -> unbind1 component
    | None -> ());
    bind1 component obj
  in
  (* Indexed directories stream straight off the index in file-block
     order (the cookie is the index's own resume position); flat ones
     cursor over the cached listing.  Either way a batch never
     materialises more than [limit] names. *)
  let readdir1 ~cookie ~limit =
    let inode = dir () in
    if dir_indexed fs ino inode then begin
      let page, next = Sp_dir.Index.fold_page (dir_io fs ino inode) ~cookie ~limit in
      (List.map (fun e -> e.Dirent.name) page, next)
    end
    else
      Sp_dir.Cursor.of_list
        (List.map (fun e -> e.Dirent.name) (dir_entries_at fs ino inode))
        ~cookie ~limit
  in
  let list () =
    List.sort String.compare
      (Sp_dir.Cursor.drain (fun ~cookie ~limit -> readdir1 ~cookie ~limit))
  in
  {
    Sp_naming.Context.ctx_domain = fs.domain;
    ctx_label = label;
    ctx_acl = (fun () -> Sp_naming.Acl.open_acl);
    ctx_set_acl = (fun _ -> ());
    ctx_resolve1 = resolve1;
    ctx_bind1 = bind1;
    ctx_rebind1 = rebind1;
    ctx_unbind1 = unbind1;
    ctx_list = list;
    ctx_readdir1 = readdir1;
  }

(* ------------------------------------------------------------------ *)
(* Path operations                                                     *)
(* ------------------------------------------------------------------ *)

(* Walk to the parent directory inode of [path]; returns (parent_ino, last). *)
let walk_parent fs path =
  let components = Sp_naming.Sname.components path in
  match List.rev components with
  | [] -> invalid_arg "Disk_layer: empty path"
  | last :: rev_parents ->
      let parents = List.rev rev_parents in
      let step ino component =
        let inode = Inode.get fs.icache ino in
        if inode.Inode.kind <> Inode.Dir then
          raise (Sp_core.Fserr.Not_a_directory component);
        match dir_lookup fs ino inode component with
        | Some e when e.Dirent.is_dir -> e.Dirent.ino
        | Some _ -> raise (Sp_core.Fserr.Not_a_directory component)
        | None -> raise (Sp_core.Fserr.No_such_file component)
      in
      (List.fold_left step 0 parents, last)

let create_at fs path kind =
  locked fs @@ fun () ->
  let parent, name = walk_parent fs path in
  Dirent.check_name name;
  let pnode = Inode.get fs.icache parent in
  if pnode.Inode.kind <> Inode.Dir then raise (Sp_core.Fserr.Not_a_directory name);
  if dir_lookup fs parent pnode name <> None then
    raise (Sp_core.Fserr.Already_exists (Sp_naming.Sname.to_string path));
  let ino, _inode = alloc_inode fs kind in
  dir_add fs parent pnode { Dirent.ino; is_dir = kind = Inode.Dir; name };
  ino

(* ------------------------------------------------------------------ *)
(* Mount / mkfs / creator                                              *)
(* ------------------------------------------------------------------ *)

(* Default journal sizing: an eighth of the device, clamped to what one
   commit header can describe and to a useful minimum. *)
let journal_size ~total_blocks = min 128 (max 9 (total_blocks / 8))

let mkfs ?(journal = false) ?(checksums = true) ?inodes disk =
  let total_blocks = Sp_blockdev.Disk.block_count disk in
  let journal_blocks = if journal then journal_size ~total_blocks else 0 in
  let layout = Layout.compute ~journal_blocks ~checksums ?inodes ~total_blocks () in
  Sp_blockdev.Disk.write disk 0 (Layout.encode_superblock layout);
  (* Zero the bitmaps.  Formatting writes raw: there is nothing to
     recover on a device that was never consistent. *)
  let zero = Bytes.make bs '\000' in
  for i = layout.Layout.inode_bitmap_start
      to layout.Layout.inode_table_start + layout.Layout.inode_table_blocks - 1 do
    Sp_blockdev.Disk.write disk i zero
  done;
  if journal then Journal.init disk ~start:layout.Layout.journal_start;
  let rdev = Journal.raw disk in
  let bbitmap =
    Bitmap.load rdev ~start:layout.Layout.block_bitmap_start
      ~blocks:layout.Layout.block_bitmap_blocks ~bits:layout.Layout.total_blocks
  in
  for i = 0 to layout.Layout.data_start - 1 do
    Bitmap.set bbitmap i
  done;
  Bitmap.flush bbitmap;
  let ibitmap =
    Bitmap.load rdev ~start:layout.Layout.inode_bitmap_start
      ~blocks:layout.Layout.inode_bitmap_blocks ~bits:layout.Layout.inode_count
  in
  Bitmap.set ibitmap 0;
  Bitmap.flush ibitmap;
  let icache = Inode.cache_create rdev layout in
  let now = Sp_sim.Simclock.now () in
  Inode.put icache 0
    {
      Inode.kind = Inode.Dir;
      nlink = 1;
      len = 0;
      atime = now;
      mtime = now;
      ctime = now;
      direct = Array.make Layout.n_direct 0;
      indirect = 0;
      double_indirect = 0;
    };
  Inode.flush icache;
  (* Last: the region must record what the metadata blocks above ended up
     holding.  Formatting writes raw, like everything else in mkfs. *)
  Csum.format disk layout

let mount ?(node = "local") ?domain ?(dir_index = true) ?(group_commit = true)
    ~name disk =
  let layout = Layout.decode_superblock (Sp_blockdev.Disk.read disk 0) in
  let domain =
    match domain with Some d -> d | None -> Sp_obj.Sdomain.create ~node name
  in
  (* Attaching the journal replays any sealed-but-unapplied transaction:
     mounting IS crash recovery.  The checksum region loads afterwards so
     it sees the replayed state (region blocks are journaled alongside
     the data they describe). *)
  let journal =
    if layout.Layout.journal_blocks > 0 then
      Some
        (Journal.attach disk ~start:layout.Layout.journal_start
           ~blocks:layout.Layout.journal_blocks)
    else None
  in
  let csum = Csum.attach disk layout in
  let dev = Journal.make ?journal ?csum disk in
  (* Incarnation fence: a fiber suspended inside this mount (a device
     charge is a suspension point) whose domain has since been killed
     must die instead of resuming its I/O — a supervisor may already
     have remounted the same disk and replayed the journal, and a
     zombie's raw writes would tear the successor's blocks behind its
     checksums.  One field read when the domain is alive. *)
  Journal.fence dev (fun () ->
      if not (Sp_obj.Sdomain.alive domain) then
        raise (Sp_obj.Sdomain.Dead_domain (Sp_obj.Sdomain.name domain)));
  let fs =
    {
      name;
      disk;
      dev;
      layout;
      domain;
      icache = Inode.cache_create dev layout;
      ibitmap =
        Bitmap.load dev ~start:layout.Layout.inode_bitmap_start
          ~blocks:layout.Layout.inode_bitmap_blocks ~bits:layout.Layout.inode_count;
      bbitmap =
        Bitmap.load dev ~start:layout.Layout.block_bitmap_start
          ~blocks:layout.Layout.block_bitmap_blocks ~bits:layout.Layout.total_blocks;
      channels = Sp_vm.Pager_lib.create ();
      files = Hashtbl.create 32;
      ctxs = Hashtbl.create 8;
      dcache = Hashtbl.create 8;
      dirblk = Hashtbl.create 8;
      indcache = Hashtbl.create 8;
      dir_index;
      lock = Sp_sched.Mutex.create ("sfs:" ^ name);
      group_commit;
      gc = None;
    }
  in
  Hashtbl.replace instances name fs;
  {
    Sp_core.Stackable.sfs_name = name;
    sfs_type = "sfs_disk";
    sfs_domain = domain;
    sfs_ctx = ctx_of fs 0;
    sfs_stack_on =
      (fun _ ->
        raise (Sp_core.Stackable.Stack_error (name ^ ": base layers stack on devices")));
    sfs_unders = (fun () -> []);
    sfs_create =
      (fun path ->
        let ino = create_at fs path Inode.File in
        file_of fs ino);
    sfs_mkdir = (fun path -> ignore (create_at fs path Inode.Dir));
    sfs_remove =
      (fun path ->
        locked fs @@ fun () ->
        let parent, name' = walk_parent fs path in
        let ctx = ctx_of fs parent in
        match ctx.Sp_naming.Context.ctx_unbind1 name' with
        | () -> ()
        | exception Sp_naming.Context.Unbound _ ->
            raise (Sp_core.Fserr.No_such_file (Sp_naming.Sname.to_string path)));
    sfs_sync = (fun () -> flush_all fs);
    sfs_drop_caches =
      (fun () ->
        locked fs @@ fun () ->
        flush_all fs;
        (* Channels pin the upper layer's per-file cache state through
           their cache objects; destroying them cascades the eviction. *)
        Sp_vm.Pager_lib.destroy_all fs.channels;
        Hashtbl.reset fs.files;
        Inode.drop fs.icache;
        Hashtbl.reset fs.dcache;
        Hashtbl.reset fs.dirblk;
        Hashtbl.reset fs.indcache);
  }

let creator ?(node = "local") ?(journal = false) ?(checksums = true) ~get_disk () =
  {
    Sp_core.Stackable.cr_type = "sfs_disk";
    cr_create =
      (fun ~name ->
        let disk = get_disk name in
        (match Layout.decode_superblock (Sp_blockdev.Disk.read disk 0) with
        | _ -> ()
        | exception Sp_core.Fserr.Io_error _ -> mkfs ~journal ~checksums disk);
        mount ~node ~name disk);
  }

(* Standalone crash recovery: replay the journal of an unmounted device.
   [mount] does this implicitly; this entry point exists for tools (fsck,
   the crash sweep) that want the replay count without mounting. *)
let recover disk =
  let layout = Layout.decode_superblock (Sp_blockdev.Disk.read disk 0) in
  if layout.Layout.journal_blocks > 0 then
    Journal.replay disk ~start:layout.Layout.journal_start
  else 0

let journaled sfs = (fs_of sfs).layout.Layout.journal_blocks > 0
let checksummed sfs = (fs_of sfs).layout.Layout.csum_blocks > 0

let journal_stats sfs =
  match Journal.journal (fs_of sfs).dev with
  | None -> None
  | Some t -> Some (Journal.stats t)

let journal_pending sfs = Journal.pending (fs_of sfs).dev

let free_blocks sfs =
  let fs = fs_of sfs in
  Bitmap.capacity fs.bbitmap - Bitmap.used fs.bbitmap

let free_inodes sfs =
  let fs = fs_of sfs in
  Bitmap.capacity fs.ibitmap - Bitmap.used fs.ibitmap

let cached_inodes sfs = Inode.cached_count (fs_of sfs).icache
let channel_count sfs = Sp_vm.Pager_lib.channel_count (fs_of sfs).channels
