module L = Sp_sfs.Layout
module I = Sp_sfs.Inode
module D = Sp_sfs.Dirent

let bs = Sp_blockdev.Disk.block_size

(* CPU work per syscall beyond the trap, in cpu_op units (25 ns each under
   the paper model; zero under the fast model).  Calibrated so that the
   warm-cache numbers land near SunOS 4.1.3's Table 3 row. *)
let open_work = 4_400 (* ~110 us: namei, permission checks, fd setup *)

let io_work = 600 (* ~15 us *)

let stat_work = 500 (* ~12.5 us *)

type buf = { data : bytes; mutable dirty : bool }

type t = {
  disk : Sp_blockdev.Disk.t;
  layout : L.t;
  icache : I.cache;
  ibitmap : Sp_sfs.Bitmap.t;
  bbitmap : Sp_sfs.Bitmap.t;
  bufcache : (int, buf) Hashtbl.t;
  ncache : (string, int) Hashtbl.t;  (* absolute path -> inode *)
}

type fd = int

(* ------------------------------------------------------------------ *)
(* Buffer cache                                                        *)
(* ------------------------------------------------------------------ *)

let bread t b =
  match Hashtbl.find_opt t.bufcache b with
  | Some buf -> buf.data
  | None ->
      let data = Sp_blockdev.Disk.read t.disk b in
      Hashtbl.replace t.bufcache b { data; dirty = false };
      data

let bwrite t b data =
  match Hashtbl.find_opt t.bufcache b with
  | Some buf ->
      Bytes.blit data 0 buf.data 0 (Bytes.length data);
      if Bytes.length data < bs then
        Bytes.fill buf.data (Bytes.length data) (bs - Bytes.length data) '\000';
      buf.dirty <- true
  | None ->
      let block = Bytes.make bs '\000' in
      Bytes.blit data 0 block 0 (Bytes.length data);
      Hashtbl.replace t.bufcache b { data = block; dirty = true }

let flush_buffers t =
  Hashtbl.iter
    (fun b buf ->
      if buf.dirty then begin
        Sp_blockdev.Disk.write t.disk b buf.data;
        buf.dirty <- false
      end)
    t.bufcache

(* ------------------------------------------------------------------ *)
(* Allocation and block mapping (direct + single indirect)             *)
(* ------------------------------------------------------------------ *)

let alloc_block t =
  match Sp_sfs.Bitmap.find_free ~from:t.layout.L.data_start t.bbitmap with
  | Some b when b >= t.layout.L.data_start ->
      Sp_sfs.Bitmap.set t.bbitmap b;
      bwrite t b (Bytes.make bs '\000');
      b
  | Some _ | None -> raise (Sp_core.Fserr.No_space "unixfs: data blocks")

let ptr_get block i = Int32.to_int (Bytes.get_int32_le block (i * 4))
let ptr_set block i v = Bytes.set_int32_le block (i * 4) (Int32.of_int v)

let file_block t (inode : I.t) n =
  if n < L.n_direct then inode.I.direct.(n)
  else
    let n = n - L.n_direct in
    if n >= L.ptrs_per_block then raise (Sp_core.Fserr.No_space "unixfs: file too large")
    else if inode.I.indirect = 0 then 0
    else ptr_get (bread t inode.I.indirect) n

let ensure_block t ino (inode : I.t) n =
  if n < L.n_direct then begin
    if inode.I.direct.(n) = 0 then begin
      inode.I.direct.(n) <- alloc_block t;
      I.mark_dirty t.icache ino
    end;
    inode.I.direct.(n)
  end
  else begin
    let n = n - L.n_direct in
    if n >= L.ptrs_per_block then raise (Sp_core.Fserr.No_space "unixfs: file too large");
    if inode.I.indirect = 0 then begin
      inode.I.indirect <- alloc_block t;
      I.mark_dirty t.icache ino
    end;
    let table = Bytes.copy (bread t inode.I.indirect) in
    let b = ptr_get table n in
    if b <> 0 then b
    else begin
      let fresh = alloc_block t in
      ptr_set table n fresh;
      bwrite t inode.I.indirect table;
      fresh
    end
  end

let read_range t inode ~pos ~len =
  let out = Bytes.make len '\000' in
  let rec go cursor =
    if cursor < len then begin
      let off = pos + cursor in
      let b = file_block t inode (off / bs) in
      let in_block = off mod bs in
      let n = min (len - cursor) (bs - in_block) in
      if b <> 0 then Bytes.blit (bread t b) in_block out cursor n;
      go (cursor + n)
    end
  in
  go 0;
  out

let write_range t ino inode ~pos data =
  let len = Bytes.length data in
  let rec go cursor =
    if cursor < len then begin
      let off = pos + cursor in
      let in_block = off mod bs in
      let n = min (len - cursor) (bs - in_block) in
      let b = ensure_block t ino inode (off / bs) in
      let block = Bytes.copy (bread t b) in
      Bytes.blit data cursor block in_block n;
      bwrite t b block;
      go (cursor + n)
    end
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Directories and paths                                               *)
(* ------------------------------------------------------------------ *)

let es = D.entry_size

let dir_entries t inode =
  let data = read_range t inode ~pos:0 ~len:inode.I.len in
  let rec go off acc =
    if off + es > Bytes.length data then List.rev acc
    else
      match D.decode data off with
      | Some e -> go (off + es) (e :: acc)
      | None -> go (off + es) acc
  in
  go 0 []

let dir_lookup t inode name =
  List.find_opt (fun e -> String.equal e.D.name name) (dir_entries t inode)

let dir_add t ino inode entry =
  let slot = inode.I.len in
  write_range t ino inode ~pos:slot (D.encode entry);
  inode.I.len <- slot + es;
  I.mark_dirty t.icache ino

let dir_remove t ino inode name =
  let data = read_range t inode ~pos:0 ~len:inode.I.len in
  let rec go off =
    if off + es > Bytes.length data then raise (Sp_core.Fserr.No_such_file name)
    else
      match D.decode data off with
      | Some e when String.equal e.D.name name ->
          write_range t ino inode ~pos:off D.free_slot
      | _ -> go (off + es)
  in
  go 0

let namei t path =
  match Hashtbl.find_opt t.ncache path with
  | Some ino -> ino
  | None ->
      let components = Sp_naming.Sname.components (Sp_naming.Sname.of_string path) in
      let step ino component =
        let inode = I.get t.icache ino in
        if inode.I.kind <> I.Dir then raise (Sp_core.Fserr.Not_a_directory component);
        match dir_lookup t inode component with
        | Some e -> e.D.ino
        | None -> raise (Sp_core.Fserr.No_such_file path)
      in
      let ino = List.fold_left step 0 components in
      Hashtbl.replace t.ncache path ino;
      ino

let parent_of t path =
  let components = Sp_naming.Sname.components (Sp_naming.Sname.of_string path) in
  match List.rev components with
  | [] -> invalid_arg "unixfs: empty path"
  | last :: rev_dirs ->
      let dir_path = String.concat "/" (List.rev rev_dirs) in
      (namei t dir_path, last)

(* ------------------------------------------------------------------ *)
(* Syscalls                                                            *)
(* ------------------------------------------------------------------ *)

let syscall work =
  Sp_obj.Door.kernel_call ();
  Sp_obj.Door.charge_cpu work

let mount ?label disk =
  ignore label;
  let layout = L.decode_superblock (Sp_blockdev.Disk.read disk 0) in
  {
    disk;
    layout;
    icache = I.cache_create (Sp_sfs.Journal.raw disk) layout;
    ibitmap =
      Sp_sfs.Bitmap.load (Sp_sfs.Journal.raw disk)
        ~start:layout.L.inode_bitmap_start
        ~blocks:layout.L.inode_bitmap_blocks ~bits:layout.L.inode_count;
    bbitmap =
      Sp_sfs.Bitmap.load (Sp_sfs.Journal.raw disk)
        ~start:layout.L.block_bitmap_start
        ~blocks:layout.L.block_bitmap_blocks ~bits:layout.L.total_blocks;
    bufcache = Hashtbl.create 256;
    ncache = Hashtbl.create 64;
  }

let mkfs_and_mount ?label disk =
  (* The baseline predates the checksum region, and its caches write
     through [Journal.raw] without maintaining one — format the
     pre-checksum on-disk layout (csum_blocks = 0 decodes fine). *)
  Sp_sfs.Disk_layer.mkfs ~checksums:false disk;
  mount ?label disk

let alloc_inode t kind =
  match Sp_sfs.Bitmap.find_free t.ibitmap with
  | None -> raise (Sp_core.Fserr.No_space "unixfs: inodes")
  | Some ino ->
      Sp_sfs.Bitmap.set t.ibitmap ino;
      let now = Sp_sim.Simclock.now () in
      I.put t.icache ino
        {
          I.kind;
          nlink = 1;
          len = 0;
          atime = now;
          mtime = now;
          ctime = now;
          direct = Array.make L.n_direct 0;
          indirect = 0;
          double_indirect = 0;
        };
      ino

let creat t path =
  syscall open_work;
  let parent, name = parent_of t path in
  let pnode = I.get t.icache parent in
  if dir_lookup t pnode name <> None then raise (Sp_core.Fserr.Already_exists path);
  let ino = alloc_inode t I.File in
  dir_add t parent pnode { D.ino; is_dir = false; name };
  Hashtbl.replace t.ncache path ino;
  ino

let openf t path =
  syscall open_work;
  let ino = namei t path in
  let inode = I.get t.icache ino in
  if inode.I.kind = I.Dir then raise (Sp_core.Fserr.Is_directory path);
  ino

let read t fd ~pos ~len =
  syscall io_work;
  let inode = I.get t.icache fd in
  let len = max 0 (min len (inode.I.len - pos)) in
  if len = 0 then Bytes.empty
  else begin
    let data = read_range t inode ~pos ~len in
    Sp_obj.Door.charge_copy len;
    data
  end

let write t fd ~pos data =
  syscall io_work;
  let inode = I.get t.icache fd in
  write_range t fd inode ~pos data;
  let len = Bytes.length data in
  if pos + len > inode.I.len then inode.I.len <- pos + len;
  inode.I.mtime <- Sp_sim.Simclock.now ();
  I.mark_dirty t.icache fd;
  Sp_obj.Door.charge_copy len;
  len

let fstat t fd =
  syscall stat_work;
  I.to_attr (I.get t.icache fd)

let mkdir t path =
  syscall open_work;
  let parent, name = parent_of t path in
  let pnode = I.get t.icache parent in
  if dir_lookup t pnode name <> None then raise (Sp_core.Fserr.Already_exists path);
  let ino = alloc_inode t I.Dir in
  dir_add t parent pnode { D.ino; is_dir = true; name }

let unlink t path =
  syscall open_work;
  let parent, name = parent_of t path in
  let pnode = I.get t.icache parent in
  (match dir_lookup t pnode name with
  | None -> raise (Sp_core.Fserr.No_such_file path)
  | Some e ->
      dir_remove t parent pnode name;
      let child = I.get t.icache e.D.ino in
      child.I.nlink <- child.I.nlink - 1;
      I.mark_dirty t.icache e.D.ino;
      if child.I.nlink <= 0 then Sp_sfs.Bitmap.clear t.ibitmap e.D.ino);
  Hashtbl.remove t.ncache path

let sync t =
  syscall io_work;
  flush_buffers t;
  I.flush t.icache;
  Sp_sfs.Bitmap.flush t.ibitmap;
  Sp_sfs.Bitmap.flush t.bbitmap

let fsync t fd =
  ignore fd;
  sync t

let drop_caches t =
  sync t;
  Hashtbl.reset t.bufcache;
  Hashtbl.reset t.ncache;
  I.drop t.icache
