(** COMPFS — the compression file system layer (paper §4.2.1).

    Stacked on one underlying file system, COMPFS "save[s] disk space by
    compressing all data before writing it out and by uncompressing all
    data read from the disk".  Each exported file is backed by a container
    file in the underlying layer: a header page recording the logical
    length and the log tail, followed by a log of per-page LZSS chunks; a
    compaction pass at [sync] rewrites the log densely, realising the disk
    savings.

    Two stacking modes, matching Figures 5 and 6:
    - [coherent:false] — COMPFS accesses the container through the plain
      file interface; concurrent direct access to the underlying file is
      {e not} kept coherent with the COMPFS view (a direct container write
      leaves COMPFS's decompressed cache stale);
    - [coherent:true] — COMPFS establishes itself as a cache manager for
      the container (the C3–P3 connection), moving data through the
      pager–cache channel; revocations from below invalidate COMPFS's
      state, so direct container writes become visible upstream.

    Upward, COMPFS is a non-coherent pager: per §6.3 a coherent stack is
    obtained by stacking a coherency layer (or DFS) on top of it.

    Crash recovery: the chunk log is validated on (re)scan like a
    journal — each chunk's payload must decompress — and is truncated at
    the first invalid chunk (a crash can commit a chunk's header page
    while its payload page dies with a killed layer incarnation).  The
    synced prefix is always consistent, so truncation only ever discards
    unsynced data and re-exposes each page's newest surviving chunk.  A
    chunk that rots {e after} the scan fails the read loudly with
    [Fserr.Io_error]. *)

(** [make ~vmm ~name ()] creates an instance; stack on exactly one
    underlying file system.  [coherent] defaults to [true] (Figure 6). *)
val make :
  ?node:string ->
  ?domain:Sp_obj.Sdomain.t ->
  ?coherent:bool ->
  vmm:Sp_vm.Vmm.t ->
  name:string ->
  unit ->
  Sp_core.Stackable.t

(** Creator (type ["compfs"]). *)
val creator :
  ?node:string -> ?coherent:bool -> vmm:Sp_vm.Vmm.t -> unit ->
  Sp_core.Stackable.creator

(** {1 Introspection} *)

(** [container_bytes fs path] is the current size of the underlying
    container for the file at [path] (compression-savings observable). *)
val container_bytes : Sp_core.Stackable.t -> Sp_naming.Sname.t -> int

(** Logical (uncompressed) length of the file at [path]. *)
val logical_bytes : Sp_core.Stackable.t -> Sp_naming.Sname.t -> int
