module V = Sp_vm.Vm_types

let ps = V.page_size
let magic = 0x43_4d_50_46l (* "CMPF" *)
let chunk_magic = 0xc4a9

(* Container layout: page 0 = header (magic, logical_len, tail); from byte
   [ps] a log of chunks, each [u16 magic, u16 page_idx, u32 clen, data]. *)
let chunk_header = 8

type centry = {
  e_key : string;
  e_lower : Sp_core.File.t;
  mutable e_pager : V.pager_object option;  (* the P3 of Figure 6 *)
  idx : (int, int * int) Hashtbl.t;  (* logical page -> (data offset, clen) *)
  mutable logical_len : int;
  mutable tail : int;  (* end of the chunk log *)
  mutable header_dirty : bool;
  mutable stale : bool;  (* container changed under us (coherent mode) *)
  e_state : Sp_coherency.Mrsw.t;  (* MRSW over our upper channels *)
  mutable self_op : bool;
      (* a container operation of our own is in flight: coherency echoes
         it triggers below must not mark us stale *)
}

type layer = {
  l_name : string;
  l_domain : Sp_obj.Sdomain.t;
  l_vmm : Sp_vm.Vmm.t;
  l_coherent : bool;
  mutable l_lower : Sp_core.Stackable.t option;
  l_channels : Sp_vm.Pager_lib.t;
  l_files : (string, centry) Hashtbl.t;  (* by lower file id *)
  l_wrapped : (string, Sp_core.File.t * Sp_core.File.t) Hashtbl.t;
      (* lower file id -> (lower file, wrapper) *)
  l_lock : Sp_sched.Mutex.t;
      (* Container operations are multi-step read-modify-write cycles
         (append, compact, rescan) whose container I/O suspends the task
         under [Sp_sched]; two concurrent syncs — or a sync and a cache
         eviction — would interleave those cycles and corrupt the chunk
         log.  One reentrant lock for the whole instance, not one per
         file: an eviction inside a locked section can push another
         file's dirty page back through this layer, and per-file locks
         would deadlock on that re-entry. *)
}

let instances : (string, layer) Hashtbl.t = Hashtbl.create 4

let layer_of (sfs : Sp_core.Stackable.t) =
  match Hashtbl.find_opt instances sfs.Sp_core.Stackable.sfs_name with
  | Some l -> l
  | None -> invalid_arg (sfs.Sp_core.Stackable.sfs_name ^ ": not a compfs layer")

let lower_of l =
  match l.l_lower with
  | Some fs -> fs
  | None -> raise (Sp_core.Stackable.Stack_error (l.l_name ^ ": not stacked yet"))

let locked l f = Sp_sched.Mutex.with_lock l.l_lock f

(* ------------------------------------------------------------------ *)
(* Container access: plain file interface (Figure 5) or pager channel
   (Figure 6)                                                          *)
(* ------------------------------------------------------------------ *)

let container_read l e ~pos ~len =
  match e.e_pager with
  | Some pager when l.l_coherent ->
      V.page_in pager ~offset:pos ~size:len ~access:V.Read_only
  | _ -> Sp_core.File.read e.e_lower ~pos ~len

let container_write l e ~pos data =
  match e.e_pager with
  | Some pager when l.l_coherent ->
      e.self_op <- true;
      Fun.protect ~finally:(fun () -> e.self_op <- false) @@ fun () ->
      (* Extend the container length before pushing: lower layers are
         entitled to clip page traffic beyond their file length. *)
      let mem = e.e_lower.Sp_core.File.f_mem in
      let needed = pos + Bytes.length data in
      if V.get_length mem < needed then V.set_length mem needed;
      (* write_out, not page_out: COMPFS's in-memory index is cached state
         derived from the container, so it must stay registered as a
         read-only holder to receive revocations (Figure 6). *)
      V.write_out pager ~offset:pos data
  | _ -> ignore (Sp_core.File.write e.e_lower ~pos data)

let container_truncate l e len =
  match e.e_pager with
  | Some _ when l.l_coherent ->
      e.self_op <- true;
      Fun.protect
        ~finally:(fun () -> e.self_op <- false)
        (fun () -> V.set_length e.e_lower.Sp_core.File.f_mem len)
  | _ -> Sp_core.File.truncate e.e_lower len

(* ------------------------------------------------------------------ *)
(* Header and index                                                    *)
(* ------------------------------------------------------------------ *)

let write_header l e =
  let b = Bytes.make 24 '\000' in
  Bytes.set_int32_le b 0 magic;
  Bytes.set_int64_le b 4 (Int64.of_int e.logical_len);
  Bytes.set_int64_le b 12 (Int64.of_int e.tail);
  container_write l e ~pos:0 b;
  e.header_dirty <- false

(* A chunk is valid iff its payload actually decompresses to at most a
   page.  Cheap structural checks alone are not enough: a crash can
   commit the page holding a chunk's header while the page holding its
   payload dies with a killed layer incarnation, leaving a
   plausible-looking header over garbage. *)
let chunk_payload_ok compressed =
  match Lz.decompress compressed with
  | d -> Bytes.length d <= ps
  | exception Invalid_argument _ -> false

(* Roll-forward recovery over the chunk log, like journal replay: scan
   validates every chunk and truncates the log at the first invalid one.
   The synced prefix is always consistent (the lower journal commits a
   sync atomically), so anything past the tear is unsynced data a crash
   is allowed to lose; truncating re-exposes the newest surviving chunk
   of each page.  Subsequent appends overwrite the torn region. *)
let scan_index l e =
  Hashtbl.reset e.idx;
  let rec go pos =
    if pos + chunk_header <= e.tail then begin
      let h = container_read l e ~pos ~len:chunk_header in
      let ok =
        Bytes.length h >= chunk_header
        && Bytes.get_uint16_le h 0 = chunk_magic
        &&
        let clen = Int32.to_int (Bytes.get_int32_le h 4) in
        clen >= 0
        && pos + chunk_header + clen <= e.tail
        && chunk_payload_ok
             (container_read l e ~pos:(pos + chunk_header) ~len:clen)
      in
      if ok then begin
        let page = Bytes.get_uint16_le h 2 in
        let clen = Int32.to_int (Bytes.get_int32_le h 4) in
        Hashtbl.replace e.idx page (pos + chunk_header, clen);
        go (pos + chunk_header + clen)
      end
      else begin
        e.tail <- pos;
        e.header_dirty <- true
      end
    end
  in
  go ps;
  e.stale <- false

let load_header l e =
  let h = container_read l e ~pos:0 ~len:24 in
  if Bytes.length h < 24 || Bytes.get_int32_le h 0 <> magic then
    raise (Sp_core.Fserr.Io_error (e.e_key ^ ": not a COMPFS container"));
  e.logical_len <- Int64.to_int (Bytes.get_int64_le h 4);
  e.tail <- Int64.to_int (Bytes.get_int64_le h 12);
  scan_index l e

(* Flush every upper cache of this file and drop its pages: the container
   changed underneath us, so decompressed data is stale. *)
let invalidate_upper l e =
  let channels = Sp_vm.Pager_lib.live_channels_for_key l.l_channels ~key:e.e_key in
  let size = ((e.logical_len / ps) + 1) * ps in
  List.iter
    (fun ch -> V.delete_range ch.Sp_vm.Pager_lib.ch_cache ~offset:0 ~size)
    channels;
  Sp_coherency.Mrsw.clear e.e_state

let refresh_if_stale l e =
  if e.stale then begin
    invalidate_upper l e;
    load_header l e
  end

(* ------------------------------------------------------------------ *)
(* Chunk I/O                                                           *)
(* ------------------------------------------------------------------ *)

let read_logical_page l e page =
  match Hashtbl.find_opt e.idx page with
  | None -> Bytes.make ps '\000'
  | Some (off, clen) ->
      let compressed = container_read l e ~pos:off ~len:clen in
      Sp_obj.Door.charge_cpu (Lz.work_units clen);
      (* The scan validated this chunk, so a failure here means the
         container rotted underneath us mid-run: fail loudly with the
         stack's I/O error, never leak [Invalid_argument]. *)
      let data =
        try Lz.decompress compressed
        with Invalid_argument msg ->
          raise (Sp_core.Fserr.Io_error (e.e_key ^ ": " ^ msg))
      in
      if Bytes.length data = ps then data
      else begin
        let padded = Bytes.make ps '\000' in
        Bytes.blit data 0 padded 0 (min ps (Bytes.length data));
        padded
      end

let append_chunk l e page data =
  Sp_obj.Door.charge_cpu (Lz.work_units (Bytes.length data));
  let compressed = Lz.compress data in
  let clen = Bytes.length compressed in
  let h = Bytes.make chunk_header '\000' in
  Bytes.set_uint16_le h 0 chunk_magic;
  Bytes.set_uint16_le h 2 page;
  Bytes.set_int32_le h 4 (Int32.of_int clen);
  let at = e.tail in
  container_write l e ~pos:at (Bytes.cat h compressed);
  Hashtbl.replace e.idx page (at + chunk_header, clen);
  e.tail <- at + chunk_header + clen;
  e.header_dirty <- true

let write_logical l e ~offset data =
  let len = Bytes.length data in
  let first = V.page_index offset in
  let pages = V.pages_covering ~offset ~size:len in
  List.iter
    (fun page ->
      let chunk =
        if page * ps >= offset && (page + 1) * ps <= offset + len then
          Bytes.sub data (page * ps - offset) ps
        else begin
          (* Partial page: read-modify-write. *)
          let existing = read_logical_page l e page in
          let from = max offset (page * ps) in
          let upto = min (offset + len) ((page + 1) * ps) in
          Bytes.blit data (from - offset) existing (from - (page * ps)) (upto - from);
          existing
        end
      in
      append_chunk l e page chunk)
    pages;
  ignore first

(* Rewrite the chunk log densely: the compaction that realises the disk
   savings. *)
let compact l e =
  let live =
    List.sort compare (Hashtbl.fold (fun page loc acc -> (page, loc) :: acc) e.idx [])
  in
  let chunks =
    List.map
      (fun (page, (off, clen)) -> (page, container_read l e ~pos:off ~len:clen))
      live
  in
  let cursor = ref ps in
  Hashtbl.reset e.idx;
  List.iter
    (fun (page, compressed) ->
      let clen = Bytes.length compressed in
      let h = Bytes.make chunk_header '\000' in
      Bytes.set_uint16_le h 0 chunk_magic;
      Bytes.set_uint16_le h 2 page;
      Bytes.set_int32_le h 4 (Int32.of_int clen);
      container_write l e ~pos:!cursor (Bytes.cat h compressed);
      Hashtbl.replace e.idx page (!cursor + chunk_header, clen);
      cursor := !cursor + chunk_header + clen)
    chunks;
  e.tail <- !cursor;
  write_header l e;
  container_truncate l e !cursor

(* ------------------------------------------------------------------ *)
(* Acting as cache manager for the container (Figure 6)                *)
(* ------------------------------------------------------------------ *)

let lower_cache_object l e =
  let mark () = if not e.self_op then e.stale <- true in
  let gone ~offset:_ ~size:_ =
    (* We hold no dirty container data (appends are written through), but
       our decompressed view is now suspect. *)
    mark ();
    []
  in
  {
    V.c_domain = l.l_domain;
    c_label = "compfs-cache:" ^ e.e_key;
    c_flush_back = gone;
    c_deny_writes = (fun ~offset:_ ~size:_ -> []);
    c_write_back = (fun ~offset:_ ~size:_ -> []);
    c_delete_range = (fun ~offset:_ ~size:_ -> mark ());
    c_zero_fill = (fun ~offset:_ ~size:_ -> mark ());
    c_populate = (fun ~offset:_ ~access:_ _ -> mark ());
    c_destroy =
      (fun () ->
        Sp_vm.Pager_lib.destroy_key l.l_channels ~key:e.e_key;
        Hashtbl.remove l.l_files e.e_lower.Sp_core.File.f_id;
        Hashtbl.remove l.l_wrapped e.e_lower.Sp_core.File.f_id);
    c_exten = [];
  }

let manager l =
  {
    V.cm_id = "compfs:" ^ l.l_name;
    cm_domain = l.l_domain;
    cm_connect =
      (fun ~key pager ->
        match Hashtbl.find_opt l.l_files key with
        | None -> failwith (l.l_name ^ ": connect for unknown file " ^ key)
        | Some e ->
            e.e_pager <- Some pager;
            lower_cache_object l e);
  }

(* ------------------------------------------------------------------ *)
(* Exported files                                                      *)
(* ------------------------------------------------------------------ *)

let get_attr l e =
  locked l @@ fun () ->
  refresh_if_stale l e;
  let a = Sp_core.File.stat e.e_lower in
  Sp_vm.Attr.with_len a e.logical_len

let truncate_entry l e len =
  locked l @@ fun () ->
  refresh_if_stale l e;
  if len < e.logical_len then begin
    let channels = Sp_vm.Pager_lib.live_channels_for_key l.l_channels ~key:e.e_key in
    let cut = (len + ps - 1) / ps * ps in
    (* Push dirty upper pages below the cut down before dropping anything,
       zero the cached tail of the boundary page, then discard fully-cut
       pages from every cache. *)
    List.iter
      (fun ch ->
        let extents =
          V.write_back ch.Sp_vm.Pager_lib.ch_cache ~offset:0 ~size:cut
        in
        List.iter
          (fun x -> write_logical l e ~offset:x.V.ext_offset x.V.ext_data)
          extents;
        if len mod ps <> 0 then
          V.zero_fill ch.Sp_vm.Pager_lib.ch_cache ~offset:len ~size:(cut - len);
        V.delete_range ch.Sp_vm.Pager_lib.ch_cache ~offset:cut
          ~size:(max ps (e.logical_len - cut)))
      channels;
    let keep = cut / ps in
    Sp_coherency.Mrsw.drop_blocks_from e.e_state ~block:keep;
    Hashtbl.iter
      (fun page _ -> if page >= keep then Hashtbl.remove e.idx page)
      (Hashtbl.copy e.idx);
    if len mod ps <> 0 && Hashtbl.mem e.idx (len / ps) then begin
      let edge = read_logical_page l e (len / ps) in
      Bytes.fill edge (len mod ps) (ps - (len mod ps)) '\000';
      append_chunk l e (len / ps) edge
    end
  end;
  if len <> e.logical_len then begin
    e.logical_len <- len;
    e.header_dirty <- true
  end

let upper_pager l e ~id =
  let write_down x = write_logical l e ~offset:x.V.ext_offset x.V.ext_data in
  let page_in ~offset ~size ~access =
    locked l @@ fun () ->
    refresh_if_stale l e;
    Sp_coherency.Mrsw.granting e.e_state ~access @@ fun () ->
    Sp_coherency.Mrsw.before_grant e.e_state ~channels:l.l_channels ~key:e.e_key
      ~me:id ~access ~offset ~size ~write_down;
    let out = Bytes.create size in
    let rec go cursor =
      if cursor < size then begin
        let off = offset + cursor in
        let page = V.page_index off in
        let data = read_logical_page l e page in
        let in_page = off - (page * ps) in
        let n = min (size - cursor) (ps - in_page) in
        Bytes.blit data in_page out cursor n;
        go (cursor + n)
      end
    in
    go 0;
    Sp_coherency.Mrsw.after_grant e.e_state ~me:id ~access ~offset ~size;
    out
  in
  let push retain ~offset data =
    locked l @@ fun () ->
    refresh_if_stale l e;
    Sp_coherency.Mrsw.granting e.e_state ~access:V.Read_write @@ fun () ->
    write_logical l e ~offset data;
    Sp_coherency.Mrsw.on_push e.e_state ~me:id ~retain ~offset
      ~size:(Bytes.length data)
  in
  {
    V.p_domain = l.l_domain;
    p_label = e.e_key;
    p_page_in = page_in;
    p_page_out = push `Drop;
    p_write_out = push `Read_only;
    p_sync = push `Same;
    p_sync_v = V.sync_each (push `Same);
    p_done_with =
      (fun () ->
        Sp_coherency.Mrsw.remove_channel e.e_state ~ch:id;
        Sp_vm.Pager_lib.remove l.l_channels id);
    p_exten =
      [
        V.Fs_pager
          {
            V.fp_get_attr = (fun () -> get_attr l e);
            fp_set_attr = (fun a -> Sp_core.File.set_attr e.e_lower a);
            fp_attr_sync =
              (fun a ->
                locked l @@ fun () ->
                let len = a.Sp_vm.Attr.len in
                if len < e.logical_len then truncate_entry l e len
                else if len > e.logical_len then begin
                  e.logical_len <- len;
                  e.header_dirty <- true
                end;
                Sp_core.File.set_attr e.e_lower a);
          };
      ];
  }

let make_entry l (lower : Sp_core.File.t) ~fresh =
  let e =
    {
      e_key = Printf.sprintf "compfs:%s:%s" l.l_name lower.Sp_core.File.f_id;
      e_lower = lower;
      e_pager = None;
      idx = Hashtbl.create 16;
      logical_len = 0;
      tail = ps;
      header_dirty = false;
      stale = false;
      e_state = Sp_coherency.Mrsw.create ();
      self_op = false;
    }
  in
  Hashtbl.replace l.l_files lower.Sp_core.File.f_id e;
  if l.l_coherent then
    ignore (V.bind lower.Sp_core.File.f_mem (manager l) V.Read_write);
  (try if fresh then write_header l e else load_header l e
   with ex ->
     (* Unreadable container: forget the half-built entry so a later
        open retries (or remove can clean up) instead of syncing
        fabricated state. *)
     Hashtbl.remove l.l_files lower.Sp_core.File.f_id;
     raise ex);
  e

let make_memory_object l e =
  {
    V.m_domain = l.l_domain;
    m_label = e.e_key;
    m_bind =
      (fun mgr _access ->
        Sp_vm.Pager_lib.bind l.l_channels ~key:e.e_key
          ~make_pager:(fun ~id -> upper_pager l e ~id)
          mgr);
    m_get_length =
      (fun () ->
        locked l @@ fun () ->
        refresh_if_stale l e;
        e.logical_len);
    m_set_length = (fun len -> truncate_entry l e len);
  }

let sync_entry l e =
  locked l @@ fun () ->
  Sp_coherency.Mrsw.sweep e.e_state ~channels:l.l_channels ~key:e.e_key `Write_back
    ~write_down:(fun x -> write_logical l e ~offset:x.V.ext_offset x.V.ext_data);
  compact l e

let wrap_entry l e =
  let mem = make_memory_object l e in
  let mapped =
    Sp_core.File.mapped_ops ~vmm:l.l_vmm ~mem
      ~get_attr:(fun () -> get_attr l e)
      ~set_attr_len:(fun len ->
        if len > e.logical_len then begin
          e.logical_len <- len;
          e.header_dirty <- true
        end)
  in
  {
    Sp_core.File.f_id = e.e_key;
    f_domain = l.l_domain;
    f_mem = mem;
    f_read = mapped.Sp_core.File.mo_read;
    f_write = mapped.Sp_core.File.mo_write;
    f_stat = (fun () -> get_attr l e);
    f_set_attr = (fun a -> Sp_core.File.set_attr e.e_lower a);
    f_truncate = (fun len -> truncate_entry l e len);
    f_sync =
      (fun () ->
        mapped.Sp_core.File.mo_sync ();
        sync_entry l e;
        Sp_core.File.sync e.e_lower);
    f_exten = [];
  }

let wrap_file l ~fresh (lower : Sp_core.File.t) =
  locked l @@ fun () ->
  match Hashtbl.find_opt l.l_wrapped lower.Sp_core.File.f_id with
  | Some (stored, f) when stored == lower -> f
  | Some _ | None ->
      let e = make_entry l lower ~fresh in
      let f = wrap_entry l e in
      Hashtbl.replace l.l_wrapped lower.Sp_core.File.f_id (lower, f);
      f

(* ------------------------------------------------------------------ *)
(* The stackable layer                                                 *)
(* ------------------------------------------------------------------ *)

let make ?(node = "local") ?domain ?(coherent = true) ~vmm ~name () =
  let domain =
    match domain with Some d -> d | None -> Sp_obj.Sdomain.create ~node name
  in
  let l =
    {
      l_name = name;
      l_domain = domain;
      l_vmm = vmm;
      l_coherent = coherent;
      l_lower = None;
      l_channels = Sp_vm.Pager_lib.create ();
      l_files = Hashtbl.create 16;
      l_wrapped = Hashtbl.create 16;
      l_lock = Sp_sched.Mutex.create ("compfs:" ^ name);
    }
  in
  Hashtbl.replace instances name l;
  let ctx = ref None in
  let get_ctx () =
    match !ctx with
    | Some c -> c
    | None ->
        let lower = lower_of l in
        let charge_open (_ : Sp_core.File.t) =
          Sp_sim.Simclock.advance (Sp_sim.Cost_model.current ()).open_state_ns
        in
        let c =
          Sp_core.Mapped_context.make ~domain ~label:name
            ~lower:lower.Sp_core.Stackable.sfs_ctx
            ~wrap_file:(wrap_file l ~fresh:false)
            ~on_file:charge_open ()
        in
        ctx := Some c;
        c
  in
  let exported_ctx =
    {
      Sp_naming.Context.ctx_domain = domain;
      ctx_label = name;
      ctx_acl = (fun () -> Sp_naming.Acl.open_acl);
      ctx_set_acl = (fun _ -> ());
      ctx_resolve1 = (fun c -> (get_ctx ()).Sp_naming.Context.ctx_resolve1 c);
      ctx_bind1 = (fun c o -> (get_ctx ()).Sp_naming.Context.ctx_bind1 c o);
      ctx_rebind1 = (fun c o -> (get_ctx ()).Sp_naming.Context.ctx_rebind1 c o);
      ctx_unbind1 = (fun c -> (get_ctx ()).Sp_naming.Context.ctx_unbind1 c);
      ctx_list = (fun () -> (get_ctx ()).Sp_naming.Context.ctx_list ());
      ctx_readdir1 =
        (fun ~cookie ~limit ->
          (get_ctx ()).Sp_naming.Context.ctx_readdir1 ~cookie ~limit);
    }
  in
  {
    Sp_core.Stackable.sfs_name = name;
    sfs_type = "compfs";
    sfs_domain = domain;
    sfs_ctx = exported_ctx;
    sfs_stack_on =
      (fun under ->
        match l.l_lower with
        | Some _ ->
            raise
              (Sp_core.Stackable.Stack_error
                 (name ^ ": compfs stacks on exactly one file system"))
        | None -> l.l_lower <- Some under);
    sfs_unders = (fun () -> Option.to_list l.l_lower);
    sfs_create =
      (fun path ->
        let lower_file = Sp_core.Stackable.create (lower_of l) path in
        wrap_file l ~fresh:true lower_file);
    sfs_mkdir = (fun path -> Sp_core.Stackable.mkdir (lower_of l) path);
    sfs_remove =
      (fun path ->
        let lower = lower_of l in
        (match Sp_core.Stackable.open_file lower path with
        | lf ->
            (match Hashtbl.find_opt l.l_files lf.Sp_core.File.f_id with
            | Some e -> Sp_vm.Pager_lib.destroy_key l.l_channels ~key:e.e_key
            | None -> ());
            Hashtbl.remove l.l_files lf.Sp_core.File.f_id;
            Hashtbl.remove l.l_wrapped lf.Sp_core.File.f_id
        | exception _ -> ());
        Sp_core.Stackable.remove lower path);
    sfs_sync =
      (fun () ->
        (* Snapshot first: sync_entry yields, and a concurrent open may
           add files while we iterate. *)
        let es = Hashtbl.fold (fun _ e acc -> e :: acc) l.l_files [] in
        List.iter (sync_entry l) es;
        Sp_core.Stackable.sync (lower_of l));
    sfs_drop_caches =
      (fun () ->
        let es = Hashtbl.fold (fun _ e acc -> e :: acc) l.l_files [] in
        List.iter
          (fun e ->
            sync_entry l e;
            e.stale <- true)
          es);
  }

let creator ?(node = "local") ?(coherent = true) ~vmm () =
  {
    Sp_core.Stackable.cr_type = "compfs";
    cr_create = (fun ~name -> make ~node ~coherent ~vmm ~name ());
  }

let entry_at sfs path =
  let l = layer_of sfs in
  let lower = lower_of l in
  let lf = Sp_core.Stackable.open_file lower path in
  match Hashtbl.find_opt l.l_files lf.Sp_core.File.f_id with
  | Some e -> (l, e)
  | None ->
      ignore (wrap_file l ~fresh:false lf);
      (l, Hashtbl.find l.l_files lf.Sp_core.File.f_id)

let container_bytes sfs path =
  let l, e = entry_at sfs path in
  ignore l;
  (Sp_core.File.stat e.e_lower).Sp_vm.Attr.len

let logical_bytes sfs path =
  let l, e = entry_at sfs path in
  locked l @@ fun () ->
  refresh_if_stale l e;
  e.logical_len
