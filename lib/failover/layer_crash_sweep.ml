(* Sibling of [Sp_sfs.Crash_sweep]: instead of crashing the machine at
   every device write, fail-stop each *layer domain* of the demo stack at
   every op boundary of a seeded workload, and check the supervised stack
   resumes serving without losing a synced byte.

   The verification model differs from the machine-crash sweep because a
   layer crash is partial: layers below the dead one keep their in-memory
   state, and VMM pages whose pager survived keep unsynced data, while
   pages bound to a dead incarnation are reconciled (dirty ones lost).
   So after the restart the durable floor is per *byte*, not per file:

   - every file of the last synced cut that was not removed since must
     still exist, and every byte of it NOT overwritten since that sync
     must read back exactly;
   - bytes written since the sync may hold the old or the new value;
   - files created (removed) since the sync may or may not exist (their
     creation may have reached the still-live base layer, or died with
     the killed layer);
   - no file may appear out of thin air.

   After checking the floor, the sweep adopts what the stack actually
   serves as the new expected state and runs the remaining ops, so the
   final exact verification also proves the restarted stack serves
   reads and writes correctly. *)

module Disk = Sp_blockdev.Disk
module Stackable = Sp_core.Stackable
module File = Sp_core.File
module Sname = Sp_naming.Sname
module Rng = Sp_fault.Rng
module DL = Sp_sfs.Disk_layer

type outcome =
  | Served
  | Unavailable of string
  | Lost of string
  | Corrupt of string

type report = {
  fr_supervised : bool;
  fr_ops : int;
  fr_seed : int;
  fr_layers : string list;
  fr_points : int;
  fr_served : int;
  fr_unavailable : int;
  fr_lost : int;
  fr_corrupt : int;
  fr_restarts : int;  (* level rebuilds across all points *)
  fr_reconciled_clean : int;  (* clean pages dropped and refetched *)
  fr_reconciled_lost : int;  (* dirty unsynced pages lost *)
  fr_first_bad : (string * int * string) option;  (* layer, op, message *)
}

let disk_blocks = 2048
let root = Sname.of_components []
let n_files = 6
let max_pos = 12 * 1024
let max_write = 4096
let layer_names = [ "lcs.disk"; "lcs.coh"; "lcs.crypt"; "lcs.comp" ]

type snapshot = (string * bytes) list

type sim = {
  sup : Sp_supervise.t;
  fs : Stackable.t;  (* the supervised handle (or the bare top) *)
  disk : Disk.t;
  vmm : Sp_vm.Vmm.t;
  expected : (string, bytes) Hashtbl.t;
  mutable synced : snapshot;
  (* Since-sync tracking, for the per-byte durability floor. *)
  dirty : (string, (int * int) list) Hashtbl.t;  (* written (pos, len) *)
  created : (string, unit) Hashtbl.t;
  removed : (string, unit) Hashtbl.t;
}

let snapshot tbl =
  Hashtbl.fold (fun name data acc -> (name, Bytes.copy data) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let clear_since_sync st =
  Hashtbl.reset st.dirty;
  Hashtbl.reset st.created;
  Hashtbl.reset st.removed

let do_sync st =
  Stackable.sync st.fs;
  st.synced <- snapshot st.expected;
  clear_since_sync st

(* Workload identical in shape (and rng draw order) to Crash_sweep's. *)
let write_step st rng =
  let name = "f" ^ string_of_int (Rng.int rng n_files) in
  let path = Sname.of_components [ name ] in
  let pos = Rng.int rng max_pos in
  let len = 1 + Rng.int rng max_write in
  let base = Rng.int rng 256 in
  let data = Bytes.init len (fun i -> Char.chr ((base + i) land 0xff)) in
  let f =
    if Hashtbl.mem st.expected name then Stackable.open_file st.fs path
    else begin
      let f = Stackable.create st.fs path in
      Hashtbl.replace st.expected name Bytes.empty;
      Hashtbl.replace st.created name ();
      Hashtbl.remove st.removed name;
      f
    end
  in
  ignore (File.write f ~pos data);
  let old = Hashtbl.find st.expected name in
  let buf = Bytes.make (max (Bytes.length old) (pos + len)) '\000' in
  Bytes.blit old 0 buf 0 (Bytes.length old);
  Bytes.blit data 0 buf pos len;
  Hashtbl.replace st.expected name buf;
  let prev = Option.value ~default:[] (Hashtbl.find_opt st.dirty name) in
  Hashtbl.replace st.dirty name ((pos, len) :: prev)

let remove_step st rng =
  let name = "f" ^ string_of_int (Rng.int rng n_files) in
  if Hashtbl.mem st.expected name then begin
    Stackable.remove st.fs (Sname.of_components [ name ]);
    Hashtbl.remove st.expected name;
    Hashtbl.remove st.dirty name;
    Hashtbl.remove st.created name;
    Hashtbl.replace st.removed name ()
  end

let step st rng i =
  (match Rng.int rng 12 with
  | 10 -> remove_step st rng
  | 11 -> do_sync st
  | _ -> write_step st rng);
  if i mod 5 = 0 then do_sync st

(* ------------------------------------------------------------------ *)
(* Stack construction                                                  *)
(* ------------------------------------------------------------------ *)

let build_sim ~supervised =
  let disk = Disk.create ~label:"lcs.dev" ~blocks:disk_blocks () in
  DL.mkfs ~journal:true disk;
  let vmm = Sp_vm.Vmm.create ~node:"local" "lcs" in
  let levels =
    [
      Sp_supervise.level ~name:"lcs.disk" (fun ~lower:_ ->
          DL.mount ~name:"lcs.disk" disk);
      Sp_supervise.level ~name:"lcs.coh" (fun ~lower ->
          let fs = Sp_coherency.Coherency_layer.make ~vmm ~name:"lcs.coh" () in
          Stackable.stack_on fs (Option.get lower);
          fs);
      Sp_supervise.level ~name:"lcs.crypt" (fun ~lower ->
          let fs =
            Sp_cryptfs.Cryptfs.make ~vmm ~name:"lcs.crypt" ~key:"sweep-key" ()
          in
          Stackable.stack_on fs (Option.get lower);
          fs);
      Sp_supervise.level ~name:"lcs.comp" (fun ~lower ->
          let fs = Sp_compfs.Compfs.make ~vmm ~name:"lcs.comp" () in
          Stackable.stack_on fs (Option.get lower);
          fs);
    ]
  in
  let sup = Sp_supervise.supervise ~name:"lcs" levels in
  let fs = if supervised then Sp_supervise.handle sup else Sp_supervise.top sup in
  if not supervised then Sp_supervise.unsupervise sup;
  {
    sup;
    fs;
    disk;
    vmm;
    expected = Hashtbl.create 8;
    synced = [];
    dirty = Hashtbl.create 8;
    created = Hashtbl.create 8;
    removed = Hashtbl.create 8;
  }

(* ------------------------------------------------------------------ *)
(* Verification                                                        *)
(* ------------------------------------------------------------------ *)

(* A container whose header died with the crashed layer before ever
   reaching a sync reads back as garbage, and the stack rejects it
   ([Io_error]) rather than serve fabricated bytes.  For a file outside
   the synced cut that loss is permitted — the application's recovery is
   to remove the husk and move on.  A *synced* file turning unreadable is
   real damage. *)
let scavenge st =
  let damaged = ref None in
  List.iter
    (fun name ->
      let path = Sname.of_components [ name ] in
      match ignore (File.read_all (Stackable.open_file st.fs path)) with
      | () -> ()
      | exception Sp_core.Fserr.Io_error msg ->
          if List.mem_assoc name st.synced then begin
            if !damaged = None then
              damaged :=
                Some
                  (Printf.sprintf "synced file %s unreadable after restart: %s"
                     name msg)
          end
          else begin
            Stackable.remove st.fs path;
            Hashtbl.remove st.expected name;
            Hashtbl.remove st.dirty name;
            Hashtbl.remove st.created name;
            Hashtbl.replace st.removed name ()
          end)
    (* Snapshot the listing before the loop: the body removes entries,
       and a readdir cursor is only weakly consistent under mutation. *)
    (List.sort String.compare
       (Stackable.fold_dir st.fs root (fun acc n -> n :: acc) []));
  !damaged

let read_back st =
  let names =
    List.sort String.compare
      (Stackable.fold_dir st.fs root (fun acc n -> n :: acc) [])
  in
  List.map
    (fun name ->
      (name, File.read_all (Stackable.open_file st.fs (Sname.of_components [ name ]))))
    names

let interval_covers intervals j =
  List.exists (fun (pos, len) -> j >= pos && j < pos + len) intervals

(* The per-byte durability floor described at the top of the file. *)
let check_floor st actual =
  let problem = ref None in
  let fail fmt = Printf.ksprintf (fun m -> if !problem = None then problem := Some m) fmt in
  List.iter
    (fun (name, want) ->
      if not (Hashtbl.mem st.removed name) then
        match List.assoc_opt name actual with
        | None -> fail "synced file %s vanished" name
        | Some got ->
            if Bytes.length got < Bytes.length want then
              fail "synced file %s shrank: %d < %d bytes" name
                (Bytes.length got) (Bytes.length want)
            else
              let dirty =
                Option.value ~default:[] (Hashtbl.find_opt st.dirty name)
              in
              let n = Bytes.length want in
              let j = ref 0 in
              while !j < n && !problem = None do
                if
                  (not (interval_covers dirty !j))
                  && Bytes.get got !j <> Bytes.get want !j
                then
                  fail "synced byte %s[%d] lost: %C <> %C" name !j
                    (Bytes.get got !j) (Bytes.get want !j);
                incr j
              done)
    st.synced;
  List.iter
    (fun (name, _) ->
      let was_synced = List.mem_assoc name st.synced in
      if (not was_synced) && not (Hashtbl.mem st.created name) then
        fail "unexpected file %s appeared" name)
    actual;
  !problem

(* Adopt what the stack actually serves as the new model state (it was
   just synced, so it is also the new durable cut). *)
let adopt st actual =
  Hashtbl.reset st.expected;
  List.iter (fun (name, data) -> Hashtbl.replace st.expected name (Bytes.copy data)) actual;
  st.synced <- snapshot st.expected;
  clear_since_sync st

let exact_match st actual =
  let want = snapshot st.expected in
  let names l = List.map fst l in
  if names actual <> names want then
    Some
      (Printf.sprintf "file set {%s} <> {%s}"
         (String.concat "," (names actual))
         (String.concat "," (names want)))
  else
    List.find_map
      (fun ((name, got), (_, w)) ->
        if Bytes.equal got w then None
        else
          Some
            (Printf.sprintf "%s: %d bytes served, expected %d%s" name
               (Bytes.length got) (Bytes.length w)
               (if Bytes.length got = Bytes.length w then " (content differs)"
                else "")))
      (List.combine actual want)

(* ------------------------------------------------------------------ *)
(* One crash point                                                     *)
(* ------------------------------------------------------------------ *)

let run_point ~supervised ~layer ~ops ~seed ~kill_at =
  let st = build_sim ~supervised in
  let rng = Rng.create seed in
  let finish () = Sp_supervise.unsupervise st.sup in
  let stats () =
    let clean, lost = Sp_vm.Vmm.reconciled st.vmm in
    (Sp_supervise.restarts st.sup, clean, lost)
  in
  let outcome =
    Fun.protect ~finally:finish @@ fun () ->
    match
    let restarts0 = Sp_supervise.restarts st.sup in
    for i = 1 to kill_at - 1 do
      step st rng i
    done;
    (* Fail-stop the layer's current serving domain at the op boundary. *)
    Sp_obj.Sdomain.kill (Sp_supervise.current st.sup layer).Stackable.sfs_domain;
    (* Recovery: the next operation through the supervised handle trips
       [Dead_domain] and triggers the restart; sync makes the recovered
       state durable before we inspect it. *)
    Stackable.sync st.fs;
    let floor =
      match scavenge st with
      | Some _ as damaged -> damaged
      | None -> check_floor st (read_back st)
    in
    (match floor with
    | Some msg -> Error (Lost msg)
    | None ->
        adopt st (read_back st);
        for i = kill_at to ops do
          step st rng i
        done;
        do_sync st;
        if supervised && Sp_supervise.restarts st.sup = restarts0 then
          Error (Corrupt (layer ^ ": supervisor never restarted anything"))
        else Ok ())
    with
    | Error o -> o
    | exception Sp_core.Fserr.Dead_domain who -> Unavailable who
    | exception Sp_supervise.Give_up msg -> Unavailable msg
    | Ok () -> (
        match Sp_sfs.Fsck.check st.disk with
        | p :: rest ->
            Corrupt
              (Format.asprintf "%a%s" Sp_sfs.Fsck.pp_problem p
                 (if rest = [] then ""
                  else Printf.sprintf " (+%d more)" (List.length rest)))
        | [] -> (
            match exact_match st (read_back st) with
            | Some msg -> Lost msg
            | None -> Served))
  in
  (outcome, stats ())

(* ------------------------------------------------------------------ *)
(* The sweep                                                           *)
(* ------------------------------------------------------------------ *)

let sweep ?(stride = 1) ?(supervised = true) ~ops ~seed () =
  if stride < 1 then invalid_arg "Layer_crash_sweep.sweep: stride must be >= 1";
  let served = ref 0
  and unavailable = ref 0
  and lost = ref 0
  and corrupt = ref 0
  and points = ref 0
  and restarts = ref 0
  and rec_clean = ref 0
  and rec_lost = ref 0 in
  let first_bad = ref None in
  let bad layer at msg =
    if !first_bad = None then first_bad := Some (layer, at, msg)
  in
  List.iter
    (fun layer ->
      let kill_at = ref 1 in
      while !kill_at <= ops do
        incr points;
        let outcome, (rs, rc, rl) =
          run_point ~supervised ~layer ~ops ~seed ~kill_at:!kill_at
        in
        restarts := !restarts + rs;
        rec_clean := !rec_clean + rc;
        rec_lost := !rec_lost + rl;
        (match outcome with
        | Served -> incr served
        | Unavailable msg ->
            incr unavailable;
            bad layer !kill_at ("unavailable: " ^ msg)
        | Lost msg ->
            incr lost;
            bad layer !kill_at msg
        | Corrupt msg ->
            incr corrupt;
            bad layer !kill_at msg);
        kill_at := !kill_at + stride
      done)
    layer_names;
  {
    fr_supervised = supervised;
    fr_ops = ops;
    fr_seed = seed;
    fr_layers = layer_names;
    fr_points = !points;
    fr_served = !served;
    fr_unavailable = !unavailable;
    fr_lost = !lost;
    fr_corrupt = !corrupt;
    fr_restarts = !restarts;
    fr_reconciled_clean = !rec_clean;
    fr_reconciled_lost = !rec_lost;
    fr_first_bad = !first_bad;
  }

let summary r =
  Printf.sprintf
    "LAYER-CRASH-SWEEP supervised=%s layers=%d points=%d served=%d \
     unavailable=%d lost=%d corrupt=%d restarts=%d reconciled=%d+%d"
    (if r.fr_supervised then "on" else "off")
    (List.length r.fr_layers) r.fr_points r.fr_served r.fr_unavailable
    r.fr_lost r.fr_corrupt r.fr_restarts r.fr_reconciled_clean
    r.fr_reconciled_lost

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>layer crash sweep: supervised=%s ops=%d seed=%d@,\
     layers: %s@,\
     crash points: %d (every op boundary of every layer)@,\
     served %d   unavailable %d   lost %d   corrupt %d@,\
     level restarts %d   pages reconciled %d clean / %d lost@]"
    (if r.fr_supervised then "on" else "off")
    r.fr_ops r.fr_seed
    (String.concat " -> " r.fr_layers)
    r.fr_points r.fr_served r.fr_unavailable r.fr_lost r.fr_corrupt
    r.fr_restarts r.fr_reconciled_clean r.fr_reconciled_lost;
  match r.fr_first_bad with
  | None -> ()
  | Some (layer, at, msg) ->
      Format.fprintf ppf "@,first failure: %s killed before op %d: %s" layer at
        msg
