(* Sibling of [Sp_sfs.Crash_sweep]: instead of crashing the machine at
   every device write, fail-stop each *layer domain* of the demo stack at
   every op boundary of a seeded workload, and check the supervised stack
   resumes serving without losing a synced byte.

   The verification model differs from the machine-crash sweep because a
   layer crash is partial: layers below the dead one keep their in-memory
   state, and VMM pages whose pager survived keep unsynced data, while
   pages bound to a dead incarnation are reconciled (dirty ones lost).
   So after the restart the durable floor is per *byte*, not per file:

   - every file of the last synced cut that was not removed since must
     still exist, and every byte of it NOT overwritten since that sync
     must read back exactly;
   - bytes written since the sync may hold the old or the new value;
   - files created (removed) since the sync may or may not exist (their
     creation may have reached the still-live base layer, or died with
     the killed layer);
   - no file may appear out of thin air.

   After checking the floor, the sweep adopts what the stack actually
   serves as the new expected state and runs the remaining ops, so the
   final exact verification also proves the restarted stack serves
   reads and writes correctly. *)

module Disk = Sp_blockdev.Disk
module Stackable = Sp_core.Stackable
module File = Sp_core.File
module Sname = Sp_naming.Sname
module Rng = Sp_fault.Rng
module DL = Sp_sfs.Disk_layer

type outcome =
  | Served
  | Unavailable of string
  | Lost of string
  | Corrupt of string

type report = {
  fr_supervised : bool;
  fr_ops : int;
  fr_seed : int;
  fr_clients : int;
  fr_layers : string list;
  fr_points : int;
  fr_served : int;
  fr_unavailable : int;
  fr_lost : int;
  fr_corrupt : int;
  fr_restarts : int;  (* level rebuilds across all points *)
  fr_reconciled_clean : int;  (* clean pages dropped and refetched *)
  fr_reconciled_lost : int;  (* dirty unsynced pages lost *)
  (* Concurrent-mode per-op availability accounting (zero for clients=1). *)
  fr_op_served : int;  (* client ops that completed *)
  fr_op_retried : int;  (* of which only after availability retry *)
  fr_op_shed : int;  (* ops fast-failed by an open breaker *)
  fr_op_failed : int;  (* ops that surfaced a loud failure *)
  fr_deadline_misses : int;  (* ops that overran their deadline *)
  fr_max_recover_ns : int;  (* worst kill -> first-served-again gap *)
  fr_first_bad : (string * int * string) option;  (* layer, op, message *)
}

let disk_blocks = 2048
let root = Sname.of_components []
let n_files = 6
let max_pos = 12 * 1024
let max_write = 4096
let layer_names = [ "lcs.disk"; "lcs.coh"; "lcs.crypt"; "lcs.comp" ]

type snapshot = (string * bytes) list

type sim = {
  sup : Sp_supervise.t;
  fs : Stackable.t;  (* the supervised handle (or the bare top) *)
  disk : Disk.t;
  vmm : Sp_vm.Vmm.t;
  expected : (string, bytes) Hashtbl.t;
  mutable synced : snapshot;
  (* Since-sync tracking, for the per-byte durability floor. *)
  dirty : (string, (int * int) list) Hashtbl.t;  (* written (pos, len) *)
  created : (string, unit) Hashtbl.t;
  removed : (string, unit) Hashtbl.t;
}

let snapshot tbl =
  Hashtbl.fold (fun name data acc -> (name, Bytes.copy data) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let clear_since_sync st =
  Hashtbl.reset st.dirty;
  Hashtbl.reset st.created;
  Hashtbl.reset st.removed

let do_sync st =
  Stackable.sync st.fs;
  st.synced <- snapshot st.expected;
  clear_since_sync st

(* Workload identical in shape (and rng draw order) to Crash_sweep's. *)
let write_step st rng =
  let name = "f" ^ string_of_int (Rng.int rng n_files) in
  let path = Sname.of_components [ name ] in
  let pos = Rng.int rng max_pos in
  let len = 1 + Rng.int rng max_write in
  let base = Rng.int rng 256 in
  let data = Bytes.init len (fun i -> Char.chr ((base + i) land 0xff)) in
  let f =
    if Hashtbl.mem st.expected name then Stackable.open_file st.fs path
    else begin
      let f = Stackable.create st.fs path in
      Hashtbl.replace st.expected name Bytes.empty;
      Hashtbl.replace st.created name ();
      Hashtbl.remove st.removed name;
      f
    end
  in
  ignore (File.write f ~pos data);
  let old = Hashtbl.find st.expected name in
  let buf = Bytes.make (max (Bytes.length old) (pos + len)) '\000' in
  Bytes.blit old 0 buf 0 (Bytes.length old);
  Bytes.blit data 0 buf pos len;
  Hashtbl.replace st.expected name buf;
  let prev = Option.value ~default:[] (Hashtbl.find_opt st.dirty name) in
  Hashtbl.replace st.dirty name ((pos, len) :: prev)

let remove_step st rng =
  let name = "f" ^ string_of_int (Rng.int rng n_files) in
  if Hashtbl.mem st.expected name then begin
    Stackable.remove st.fs (Sname.of_components [ name ]);
    Hashtbl.remove st.expected name;
    Hashtbl.remove st.dirty name;
    Hashtbl.remove st.created name;
    Hashtbl.replace st.removed name ()
  end

let step st rng i =
  (match Rng.int rng 12 with
  | 10 -> remove_step st rng
  | 11 -> do_sync st
  | _ -> write_step st rng);
  if i mod 5 = 0 then do_sync st

(* ------------------------------------------------------------------ *)
(* Stack construction                                                  *)
(* ------------------------------------------------------------------ *)

let build_sim ?(clients = 1) ~supervised () =
  (* The concurrent mode keeps one private file per client (plus its
     compfs container growth), so the volume must scale with the client
     count; the single-client geometry stays exactly as before. *)
  let blocks =
    if clients <= 1 then disk_blocks else max disk_blocks ((clients * 8) + 512)
  in
  let disk = Disk.create ~label:"lcs.dev" ~blocks () in
  if clients <= 1 then DL.mkfs ~journal:true disk
  else DL.mkfs ~journal:true ~inodes:(clients + 64) disk;
  let vmm = Sp_vm.Vmm.create ~node:"local" "lcs" in
  let levels =
    [
      Sp_supervise.level ~name:"lcs.disk" (fun ~lower:_ ->
          DL.mount ~name:"lcs.disk" disk);
      Sp_supervise.level ~name:"lcs.coh" (fun ~lower ->
          let fs = Sp_coherency.Coherency_layer.make ~vmm ~name:"lcs.coh" () in
          Stackable.stack_on fs (Option.get lower);
          fs);
      Sp_supervise.level ~name:"lcs.crypt" (fun ~lower ->
          let fs =
            Sp_cryptfs.Cryptfs.make ~vmm ~name:"lcs.crypt" ~key:"sweep-key" ()
          in
          Stackable.stack_on fs (Option.get lower);
          fs);
      Sp_supervise.level ~name:"lcs.comp" (fun ~lower ->
          let fs = Sp_compfs.Compfs.make ~vmm ~name:"lcs.comp" () in
          Stackable.stack_on fs (Option.get lower);
          fs);
    ]
  in
  let sup = Sp_supervise.supervise ~name:"lcs" levels in
  let fs = if supervised then Sp_supervise.handle sup else Sp_supervise.top sup in
  if not supervised then Sp_supervise.unsupervise sup;
  {
    sup;
    fs;
    disk;
    vmm;
    expected = Hashtbl.create 8;
    synced = [];
    dirty = Hashtbl.create 8;
    created = Hashtbl.create 8;
    removed = Hashtbl.create 8;
  }

(* ------------------------------------------------------------------ *)
(* Verification                                                        *)
(* ------------------------------------------------------------------ *)

(* A container whose header died with the crashed layer before ever
   reaching a sync reads back as garbage, and the stack rejects it
   ([Io_error]) rather than serve fabricated bytes.  For a file outside
   the synced cut that loss is permitted — the application's recovery is
   to remove the husk and move on.  A *synced* file turning unreadable is
   real damage. *)
let scavenge st =
  let damaged = ref None in
  List.iter
    (fun name ->
      let path = Sname.of_components [ name ] in
      match ignore (File.read_all (Stackable.open_file st.fs path)) with
      | () -> ()
      | exception Sp_core.Fserr.Io_error msg ->
          if List.mem_assoc name st.synced then begin
            if !damaged = None then
              damaged :=
                Some
                  (Printf.sprintf "synced file %s unreadable after restart: %s"
                     name msg)
          end
          else begin
            Stackable.remove st.fs path;
            Hashtbl.remove st.expected name;
            Hashtbl.remove st.dirty name;
            Hashtbl.remove st.created name;
            Hashtbl.replace st.removed name ()
          end)
    (* Snapshot the listing before the loop: the body removes entries,
       and a readdir cursor is only weakly consistent under mutation. *)
    (List.sort String.compare
       (Stackable.fold_dir st.fs root (fun acc n -> n :: acc) []));
  !damaged

let read_back st =
  let names =
    List.sort String.compare
      (Stackable.fold_dir st.fs root (fun acc n -> n :: acc) [])
  in
  List.map
    (fun name ->
      (name, File.read_all (Stackable.open_file st.fs (Sname.of_components [ name ]))))
    names

let interval_covers intervals j =
  List.exists (fun (pos, len) -> j >= pos && j < pos + len) intervals

(* The per-byte durability floor described at the top of the file. *)
let check_floor st actual =
  let problem = ref None in
  let fail fmt = Printf.ksprintf (fun m -> if !problem = None then problem := Some m) fmt in
  List.iter
    (fun (name, want) ->
      if not (Hashtbl.mem st.removed name) then
        match List.assoc_opt name actual with
        | None -> fail "synced file %s vanished" name
        | Some got ->
            if Bytes.length got < Bytes.length want then
              fail "synced file %s shrank: %d < %d bytes" name
                (Bytes.length got) (Bytes.length want)
            else
              let dirty =
                Option.value ~default:[] (Hashtbl.find_opt st.dirty name)
              in
              let n = Bytes.length want in
              let j = ref 0 in
              while !j < n && !problem = None do
                if
                  (not (interval_covers dirty !j))
                  && Bytes.get got !j <> Bytes.get want !j
                then
                  fail "synced byte %s[%d] lost: %C <> %C" name !j
                    (Bytes.get got !j) (Bytes.get want !j);
                incr j
              done)
    st.synced;
  List.iter
    (fun (name, _) ->
      let was_synced = List.mem_assoc name st.synced in
      if (not was_synced) && not (Hashtbl.mem st.created name) then
        fail "unexpected file %s appeared" name)
    actual;
  !problem

(* Adopt what the stack actually serves as the new model state (it was
   just synced, so it is also the new durable cut). *)
let adopt st actual =
  Hashtbl.reset st.expected;
  List.iter (fun (name, data) -> Hashtbl.replace st.expected name (Bytes.copy data)) actual;
  st.synced <- snapshot st.expected;
  clear_since_sync st

let exact_match st actual =
  let want = snapshot st.expected in
  let names l = List.map fst l in
  if names actual <> names want then
    Some
      (Printf.sprintf "file set {%s} <> {%s}"
         (String.concat "," (names actual))
         (String.concat "," (names want)))
  else
    List.find_map
      (fun ((name, got), (_, w)) ->
        if Bytes.equal got w then None
        else
          Some
            (Printf.sprintf "%s: %d bytes served, expected %d%s" name
               (Bytes.length got) (Bytes.length w)
               (if Bytes.length got = Bytes.length w then " (content differs)"
                else "")))
      (List.combine actual want)

(* ------------------------------------------------------------------ *)
(* One crash point                                                     *)
(* ------------------------------------------------------------------ *)

let run_point ~supervised ~layer ~ops ~seed ~kill_at =
  let st = build_sim ~supervised () in
  let rng = Rng.create seed in
  let finish () = Sp_supervise.unsupervise st.sup in
  let stats () =
    let clean, lost = Sp_vm.Vmm.reconciled st.vmm in
    (Sp_supervise.restarts st.sup, clean, lost)
  in
  let outcome =
    Fun.protect ~finally:finish @@ fun () ->
    match
    let restarts0 = Sp_supervise.restarts st.sup in
    for i = 1 to kill_at - 1 do
      step st rng i
    done;
    (* Fail-stop the layer's current serving domain at the op boundary. *)
    Sp_obj.Sdomain.kill (Sp_supervise.current st.sup layer).Stackable.sfs_domain;
    (* Recovery: the next operation through the supervised handle trips
       [Dead_domain] and triggers the restart; sync makes the recovered
       state durable before we inspect it. *)
    Stackable.sync st.fs;
    let floor =
      match scavenge st with
      | Some _ as damaged -> damaged
      | None -> check_floor st (read_back st)
    in
    (match floor with
    | Some msg -> Error (Lost msg)
    | None ->
        adopt st (read_back st);
        for i = kill_at to ops do
          step st rng i
        done;
        do_sync st;
        if supervised && Sp_supervise.restarts st.sup = restarts0 then
          Error (Corrupt (layer ^ ": supervisor never restarted anything"))
        else Ok ())
    with
    | Error o -> o
    | exception Sp_core.Fserr.Dead_domain who -> Unavailable who
    | exception Sp_supervise.Give_up msg -> Unavailable msg
    | Ok () -> (
        match Sp_sfs.Fsck.check st.disk with
        | p :: rest ->
            Corrupt
              (Format.asprintf "%a%s" Sp_sfs.Fsck.pp_problem p
                 (if rest = [] then ""
                  else Printf.sprintf " (+%d more)" (List.length rest)))
        | [] -> (
            match exact_match st (read_back st) with
            | Some msg -> Lost msg
            | None -> Served))
  in
  (outcome, stats ())

(* ------------------------------------------------------------------ *)
(* Concurrent crash points                                             *)
(* ------------------------------------------------------------------ *)

(* With [clients > 1] the workload runs as N [Sp_sched] tasks that keep
   calling through the supervised handle while the kill lands at a swept
   global op boundary.  Every op goes through [Sp_avail.call] with a
   deadline, so the availability contract is enforced live: ops either
   complete (possibly retried through the restart window), or fail
   loudly within the deadline — never hang, never silently corrupt.

   Verification model: each client owns one file (created and synced in
   setup) and only ever writes and syncs — writes to a fixed position
   with fixed data are idempotent under availability retry, which
   re-executes the closure.  A global event counter orders op starts and
   completions; the durable cut is the highest event watermark of a sync
   that completed before the kill.  After the run (plus a final sync) a
   byte is pinned iff its newest covering write either completed before
   the cut (durability floor) or started after recovery completed — the
   first post-restart success.  The vulnerable window runs from the kill
   to that point, not just to the kill instant: an op issued after the
   kill can still resolve through the dying incarnation's caches while
   the restart is in flight, and its buffered data dies with them (the
   unsynced-data-at-crash contract).  Bytes under vulnerable or failed
   writes are indeterminate and skipped; bytes never written must be
   zero. *)

type wrec = {
  w_pos : int;
  w_len : int;
  w_data : bytes;
  w_seq : int;  (* event seq at op start *)
  mutable w_done : int;  (* event seq at successful completion; -1 if not *)
}

let conc_max_pos = 4096
let conc_max_write = 1024
let conc_breaker = "lcs"

(* Retry policy sized to the stack's real restart window: under
   [paper_1993] rebuilding the disk layer replays the journal (~10 disk
   IOs, ~130ms virtual), so the backoff series must keep probing well
   past that — cumulative raw sleep is ~560ms over 16 attempts, and
   jitter only shortens it to no less than half.  The default policy's
   ~16ms budget (tuned for a dead *domain*, not a remount) would exhaust
   mid-restart and trip the breaker on a stack that is coming back. *)
let conc_policy =
  Sp_avail.Backoff.make ~base_ns:2_000_000 ~max_delay_ns:50_000_000
    ~max_attempts:16 ()

type conc_result = {
  cr_outcome : outcome;
  cr_restarts : int;
  cr_rec_clean : int;
  cr_rec_lost : int;
  cr_op_served : int;
  cr_op_retried : int;
  cr_op_shed : int;
  cr_op_failed : int;
  cr_deadline_misses : int;
  cr_recover_ns : int;
}

let run_point_concurrent ~supervised ~layer ~clients ~cops ~seed ~kill_at
    ~deadline_ns =
  let st = build_sim ~clients ~supervised () in
  Sp_avail.Breaker.reset conc_breaker;
  let m0 = Sp_sim.Metrics.snapshot () in
  let paths =
    Array.init clients (fun k -> Sname.of_components [ "c" ^ string_of_int k ])
  in
  let recs = Array.make clients [] in
  (* newest-first *)
  let ev = ref 0 in
  let cut_ev = ref 0 in
  let killed = ref false in
  let recovery_ev = ref (-1) in
  let boundary = ref 0 in
  let t_kill = ref 0 in
  let t_recover = ref (-1) in
  let op_served = ref 0 in
  let deadline_misses = ref 0 in
  let first_err = ref None in
  let note_err m = if !first_err = None then first_err := Some m in
  let maybe_kill () =
    incr boundary;
    if (not !killed) && !boundary = kill_at then begin
      killed := true;
      t_kill := Sp_sim.Simclock.now ();
      Sp_obj.Sdomain.kill
        (Sp_supervise.current st.sup layer).Stackable.sfs_domain
    end
  in
  let note_success () =
    incr op_served;
    if !killed && !t_recover < 0 then t_recover := Sp_sim.Simclock.now ();
    (* Recovery completed once an op succeeds with the restart counted:
       ops started after this watermark resolve through the rebuilt
       incarnations and their effects can no longer die with the old
       ones. *)
    if !killed && !recovery_ev < 0 && Sp_supervise.restarts st.sup > 0 then
      recovery_ev := !ev
  in
  let client k () =
    let wl = Rng.create (seed + ((k + 1) * 7919)) in
    let bo = Rng.create (seed + ((k + 1) * 104729)) in
    (* Stagger arrivals so kill boundaries interleave clients. *)
    Sp_sched.sleep (k * 1_000);
    for i = 1 to cops do
      maybe_kill ();
      if i mod 4 = 0 then begin
        (* Durable cut: only a sync that completed before the kill
           guarantees pre-sync-start writes survived it. *)
        let s0 = !ev in
        match
          Sp_avail.call ~name:conc_breaker ~policy:conc_policy ~deadline_ns
            ~rng:bo (fun () -> Stackable.sync st.fs)
        with
        | () ->
            note_success ();
            if not !killed then cut_ev := max !cut_ev s0
        | exception Sp_core.Fserr.Timed_out _ -> incr deadline_misses
        | exception Sp_avail.Unavailable m -> note_err m
        | exception Sp_core.Fserr.Io_error m -> note_err ("io: " ^ m)
        | exception Sp_core.Fserr.Checksum_error m ->
            note_err ("checksum: " ^ m)
      end
      else begin
        incr ev;
        let pos = Rng.int wl conc_max_pos in
        let len = 1 + Rng.int wl conc_max_write in
        let base = Rng.int wl 256 in
        let r =
          {
            w_pos = pos;
            w_len = len;
            w_data =
              Bytes.init len (fun j -> Char.chr ((base + j) land 0xff));
            w_seq = !ev;
            w_done = -1;
          }
        in
        recs.(k) <- r :: recs.(k);
        match
          Sp_avail.call ~name:conc_breaker ~policy:conc_policy ~deadline_ns
            ~rng:bo (fun () ->
              (* Re-resolve the file every attempt: a handle minted by a
                 dead incarnation must not be retried into. *)
              let f = Stackable.open_file st.fs paths.(k) in
              ignore (File.write f ~pos:r.w_pos r.w_data))
        with
        | () ->
            incr ev;
            r.w_done <- !ev;
            note_success ()
        | exception Sp_core.Fserr.Timed_out _ -> incr deadline_misses
        | exception Sp_avail.Unavailable m -> note_err m
        | exception Sp_core.Fserr.Io_error m -> note_err ("io: " ^ m)
        | exception Sp_core.Fserr.Checksum_error m ->
            note_err ("checksum: " ^ m)
      end
    done
  in
  let verify () =
    let problem = ref None in
    let fail fmt =
      Printf.ksprintf (fun m -> if !problem = None then problem := Some m) fmt
    in
    (* Writes started after this event are immune to the crash: with no
       kill nothing is vulnerable; with a kill but no observed recovery
       (unsupervised control) every post-kill write stays vulnerable. *)
    let safe_after =
      if not !killed then -1
      else if !recovery_ev >= 0 then !recovery_ev
      else max_int
    in
    Array.iteri
      (fun k rl ->
        let name = "c" ^ string_of_int k in
        let got =
          (* A client file turning unreadable after recovery is damage in
             its own right — report it as a lost file, don't crash. *)
          try File.read_all (Stackable.open_file st.fs paths.(k))
          with Sp_core.Fserr.Io_error m | Sp_core.Fserr.Checksum_error m ->
            fail "%s unreadable after recovery: %s" name m;
            Bytes.empty
        in
        let need =
          List.fold_left (fun a r -> max a (r.w_pos + r.w_len)) 0 rl
        in
        let j = ref 0 in
        while !j < need && !problem = None do
          let covering =
            List.find_opt
              (fun r -> !j >= r.w_pos && !j < r.w_pos + r.w_len)
              rl
          in
          (match covering with
          | Some r
            when r.w_done >= 0
                 && (r.w_done <= !cut_ev || r.w_seq > safe_after) ->
              let want = Bytes.get r.w_data (!j - r.w_pos) in
              if !j >= Bytes.length got then
                fail "%s[%d]: file too short (%d bytes) for a pinned byte"
                  name !j (Bytes.length got)
              else if Bytes.get got !j <> want then
                fail "%s[%d]: pinned byte lost: %C <> %C" name !j
                  (Bytes.get got !j) want
          | Some _ -> ()  (* vulnerable window or failed op *)
          | None ->
              if !j < Bytes.length got && Bytes.get got !j <> '\000' then
                fail "%s[%d]: never-written byte reads %C" name !j
                  (Bytes.get got !j));
          incr j
        done)
      recs;
    !problem
  in
  let finish () = Sp_supervise.unsupervise st.sup in
  let outcome =
    Fun.protect ~finally:finish @@ fun () ->
    match
      Array.iter (fun p -> ignore (Stackable.create st.fs p)) paths;
      Stackable.sync st.fs;
      ignore
        (Sp_sched.run ~seed (List.init clients (fun k -> client k)));
      (* Final durable cut, outside the run: post-kill state must be
         fully serveable (for the unsupervised control this is where the
         dead stack surfaces if every client op happened to land before
         the kill). *)
      Stackable.sync st.fs
    with
    | exception Sp_core.Fserr.Dead_domain who -> Unavailable who
    | exception Sp_supervise.Give_up msg -> Unavailable msg
    | exception Sp_core.Fserr.Io_error m -> Lost ("io: " ^ m)
    | exception Sp_core.Fserr.Checksum_error m -> Lost ("checksum: " ^ m)
    | () -> (
        if !t_recover < 0 && !killed then
          t_recover := Sp_sim.Simclock.now ();
        match (!first_err, !deadline_misses) with
        | Some m, _ -> Unavailable m
        | None, n when n > 0 ->
            Unavailable (Printf.sprintf "%d ops overran their deadline" n)
        | None, _ -> (
            match verify () with
            | Some msg -> Lost msg
            | None -> (
                match Sp_sfs.Fsck.check st.disk with
                | p :: rest ->
                    Corrupt
                      (Format.asprintf "%a%s" Sp_sfs.Fsck.pp_problem p
                         (if rest = [] then ""
                          else Printf.sprintf " (+%d more)" (List.length rest)))
                | [] ->
                    if supervised && Sp_supervise.restarts st.sup = 0 then
                      Corrupt (layer ^ ": supervisor never restarted anything")
                    else Served)))
  in
  let m1 = Sp_sim.Metrics.snapshot () in
  let d = Sp_sim.Metrics.diff ~before:m0 ~after:m1 in
  let clean, lost = Sp_vm.Vmm.reconciled st.vmm in
  {
    cr_outcome = outcome;
    cr_restarts = Sp_supervise.restarts st.sup;
    cr_rec_clean = clean;
    cr_rec_lost = lost;
    cr_op_served = !op_served;
    cr_op_retried = d.Sp_sim.Metrics.avail_retried;
    cr_op_shed = d.Sp_sim.Metrics.avail_shed;
    cr_op_failed = d.Sp_sim.Metrics.avail_failed;
    cr_deadline_misses = !deadline_misses;
    cr_recover_ns = (if !t_recover >= 0 then !t_recover - !t_kill else 0);
  }

(* ------------------------------------------------------------------ *)
(* The sweep                                                           *)
(* ------------------------------------------------------------------ *)

let sweep ?(stride = 1) ?(supervised = true) ?(clients = 1)
    ?(op_deadline_ns = 1_000_000_000) ~ops ~seed () =
  if stride < 1 then invalid_arg "Layer_crash_sweep.sweep: stride must be >= 1";
  if clients < 1 then invalid_arg "Layer_crash_sweep.sweep: clients must be >= 1";
  let served = ref 0
  and unavailable = ref 0
  and lost = ref 0
  and corrupt = ref 0
  and points = ref 0
  and restarts = ref 0
  and rec_clean = ref 0
  and rec_lost = ref 0
  and op_served = ref 0
  and op_retried = ref 0
  and op_shed = ref 0
  and op_failed = ref 0
  and deadline_misses = ref 0
  and max_recover = ref 0 in
  let first_bad = ref None in
  let bad layer at msg =
    if !first_bad = None then first_bad := Some (layer, at, msg)
  in
  (* Concurrent mode sweeps *global* op boundaries (clients * per-client
     ops); single-client mode keeps the original per-op workload. *)
  let cops = max 2 (ops / clients) in
  let boundaries = if clients = 1 then ops else clients * cops in
  List.iter
    (fun layer ->
      let kill_at = ref 1 in
      while !kill_at <= boundaries do
        incr points;
        let outcome =
          if clients = 1 then begin
            let outcome, (rs, rc, rl) =
              run_point ~supervised ~layer ~ops ~seed ~kill_at:!kill_at
            in
            restarts := !restarts + rs;
            rec_clean := !rec_clean + rc;
            rec_lost := !rec_lost + rl;
            outcome
          end
          else begin
            let r =
              run_point_concurrent ~supervised ~layer ~clients ~cops ~seed
                ~kill_at:!kill_at ~deadline_ns:op_deadline_ns
            in
            restarts := !restarts + r.cr_restarts;
            rec_clean := !rec_clean + r.cr_rec_clean;
            rec_lost := !rec_lost + r.cr_rec_lost;
            op_served := !op_served + r.cr_op_served;
            op_retried := !op_retried + r.cr_op_retried;
            op_shed := !op_shed + r.cr_op_shed;
            op_failed := !op_failed + r.cr_op_failed;
            deadline_misses := !deadline_misses + r.cr_deadline_misses;
            if r.cr_recover_ns > !max_recover then
              max_recover := r.cr_recover_ns;
            r.cr_outcome
          end
        in
        (match outcome with
        | Served -> incr served
        | Unavailable msg ->
            incr unavailable;
            bad layer !kill_at ("unavailable: " ^ msg)
        | Lost msg ->
            incr lost;
            bad layer !kill_at msg
        | Corrupt msg ->
            incr corrupt;
            bad layer !kill_at msg);
        kill_at := !kill_at + stride
      done)
    layer_names;
  {
    fr_supervised = supervised;
    fr_ops = ops;
    fr_seed = seed;
    fr_clients = clients;
    fr_layers = layer_names;
    fr_points = !points;
    fr_served = !served;
    fr_unavailable = !unavailable;
    fr_lost = !lost;
    fr_corrupt = !corrupt;
    fr_restarts = !restarts;
    fr_reconciled_clean = !rec_clean;
    fr_reconciled_lost = !rec_lost;
    fr_op_served = !op_served;
    fr_op_retried = !op_retried;
    fr_op_shed = !op_shed;
    fr_op_failed = !op_failed;
    fr_deadline_misses = !deadline_misses;
    fr_max_recover_ns = !max_recover;
    fr_first_bad = !first_bad;
  }

let summary r =
  Printf.sprintf
    "LAYER-CRASH-SWEEP supervised=%s clients=%d layers=%d points=%d served=%d \
     unavailable=%d lost=%d corrupt=%d restarts=%d reconciled=%d+%d \
     op_served=%d retried=%d shed=%d failed=%d deadline_misses=%d"
    (if r.fr_supervised then "on" else "off")
    r.fr_clients (List.length r.fr_layers) r.fr_points r.fr_served
    r.fr_unavailable r.fr_lost r.fr_corrupt r.fr_restarts
    r.fr_reconciled_clean r.fr_reconciled_lost r.fr_op_served r.fr_op_retried
    r.fr_op_shed r.fr_op_failed r.fr_deadline_misses

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>layer crash sweep: supervised=%s ops=%d seed=%d clients=%d@,\
     layers: %s@,\
     crash points: %d (every op boundary of every layer)@,\
     served %d   unavailable %d   lost %d   corrupt %d@,\
     level restarts %d   pages reconciled %d clean / %d lost@]"
    (if r.fr_supervised then "on" else "off")
    r.fr_ops r.fr_seed r.fr_clients
    (String.concat " -> " r.fr_layers)
    r.fr_points r.fr_served r.fr_unavailable r.fr_lost r.fr_corrupt
    r.fr_restarts r.fr_reconciled_clean r.fr_reconciled_lost;
  if r.fr_clients > 1 then
    Format.fprintf ppf
      "@,client ops: %d served (%d retried through restart)   %d shed   \
       %d failed   %d deadline misses@,\
       worst kill -> served-again gap: %.3f ms"
      r.fr_op_served r.fr_op_retried r.fr_op_shed r.fr_op_failed
      r.fr_deadline_misses
      (float_of_int r.fr_max_recover_ns /. 1e6);
  match r.fr_first_bad with
  | None -> ()
  | Some (layer, at, msg) ->
      Format.fprintf ppf "@,first failure: %s killed before op %d: %s" layer at
        msg
