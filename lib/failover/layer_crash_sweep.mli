(** Layer-domain crash sweep (sibling of [Sp_sfs.Crash_sweep]).

    Runs a seeded workload against the demo stack
    (disk -> coherency -> cryptfs -> compfs, journal on) under
    [Sp_supervise], fail-stopping each layer's serving domain at every
    op boundary, and verifies that the supervised stack restarts the
    layer, keeps serving, and never loses a synced byte — the per-byte
    durability floor: bytes not written since the last completed sync
    must read back exactly; bytes written since may hold the old or the
    new value; files created or removed since may or may not exist.
    After the floor check the sweep adopts the served state, runs the
    remaining ops, and requires an exact match plus a clean fsck of the
    underlying volume.

    With [supervised:false] the same kills are applied to an
    unsupervised stack; every point is then expected to end
    [Unavailable] — the control demonstrating the supervisor is what
    provides the resilience.

    With [clients > 1] the workload runs as N concurrent [Sp_sched]
    tasks (one private file each, writes and syncs only — idempotent
    under retry), every op wrapped in [Sp_avail.call] with a deadline,
    and the kill lands at a swept {e global} op boundary while the other
    clients keep calling.  Verification switches to an event-ordered
    per-byte model: a byte is pinned iff its newest covering write
    completed before the last pre-kill sync (the durability floor) or
    started after the kill; vulnerable-window and failed writes are
    indeterminate; never-written bytes must be zero.  A point is
    [Served] only if, additionally, no op failed loudly, no op overran
    its deadline, fsck is clean, and the supervisor actually
    restarted. *)

type outcome =
  | Served  (** restarted, no synced byte lost, exact final state, clean fsck *)
  | Unavailable of string  (** a [Dead_domain] (or budget [Give_up]) escaped *)
  | Lost of string  (** a synced byte (or file) did not survive *)
  | Corrupt of string  (** fsck problems, or supervised but never restarted *)

type report = {
  fr_supervised : bool;
  fr_ops : int;
  fr_seed : int;
  fr_clients : int;
  fr_layers : string list;
  fr_points : int;
  fr_served : int;
  fr_unavailable : int;
  fr_lost : int;
  fr_corrupt : int;
  fr_restarts : int;  (** level rebuilds across all points *)
  fr_reconciled_clean : int;  (** clean pages dropped and refetched *)
  fr_reconciled_lost : int;  (** dirty unsynced pages reported lost *)
  fr_op_served : int;  (** concurrent mode: client ops completed *)
  fr_op_retried : int;  (** of which only after availability retry *)
  fr_op_shed : int;  (** ops fast-failed by an open circuit breaker *)
  fr_op_failed : int;  (** ops that surfaced a loud failure *)
  fr_deadline_misses : int;  (** ops that overran their deadline *)
  fr_max_recover_ns : int;  (** worst kill -> first-served-again gap *)
  fr_first_bad : (string * int * string) option;  (** layer, op, message *)
}

(** The layers swept, bottom to top. *)
val layer_names : string list

(** One crash point: kill [layer] before op [kill_at] (1-based) of an
    [ops]-op workload.  Returns the outcome and this point's
    [(restarts, reconciled_clean, reconciled_lost)]. *)
val run_point :
  supervised:bool ->
  layer:string ->
  ops:int ->
  seed:int ->
  kill_at:int ->
  outcome * (int * int * int)

(** Sweep every (layer, op boundary) pair; [stride] thins the op
    boundaries tested (default 1 = all of them).  [clients] (default 1)
    switches to the concurrent mode described above, with per-client ops
    [max 2 (ops / clients)] and global boundaries [clients * that];
    [op_deadline_ns] (default 1s virtual — several times the worst
    observed restart window under [paper_1993], so it bounds hangs
    without failing ops that legitimately ride through a restart) is the
    per-op deadline enforced through [Sp_avail.call]. *)
val sweep :
  ?stride:int ->
  ?supervised:bool ->
  ?clients:int ->
  ?op_deadline_ns:int ->
  ops:int ->
  seed:int ->
  unit ->
  report

(** One-line machine-readable verdict (CI greps this). *)
val summary : report -> string

val pp_report : Format.formatter -> report -> unit
