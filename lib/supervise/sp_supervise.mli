(** Supervised restart of layer domains.

    The paper's architecture runs each file-system layer in its own
    domain, so a whole layer domain dying mid-operation is a failure mode
    the stack must survive.  A supervisor holds the {e recipe} used to
    build a linear stack — one {!level} per layer, each a closure from
    the (still-live) lower layer to a fresh incarnation — and turns
    [Fserr.Dead_domain] into: deterministic backoff, kill everything from
    the dead level up (fencing stale references), rebuild those levels
    bottom-up, rebind the top of the stack in the namespace, retry.

    Coherence recovery rides on the rebuild: a restarted layer is a new
    pager incarnation, so when it reconnects to a client VMM the VMM
    reconciles stale pages per MRSW state ([Vmm.reconciled]), and pager
    registries fence callbacks from pre-crash incarnations
    ([Pager_lib.live_cache]).

    With no supervisor consulted and no faults armed nothing here is on
    any hot path: the door's liveness test is a single field read. *)

(** Raised by {!call} when a level exceeds its restart budget. *)
exception Give_up of string

(** A restart recipe for one layer of a linear stack. *)
type level

(** [level ~name build] — [name] must equal the layer's instance name
    (and hence its serving-domain name: that is how a [Dead_domain]
    exception is routed back to the recipe).  [build ~lower] creates a
    fresh incarnation stacked on [lower] ([None] only for the base
    level). *)
val level : name:string -> (lower:Sp_core.Stackable.t option -> Sp_core.Stackable.t) -> level

type t

(** [supervise ~name levels] builds the stack bottom-up and registers
    every level.  [budget] bounds restarts {e per level} (default 8;
    {!Give_up} beyond it).  [backoff_ns] is the base of the per-level
    exponential backoff slept (idle — [Sp_sched.sleep], so under a
    scheduler other clients run through the window) before a restart
    (default 1ms; the [n]-th restart of a level waits [backoff_ns * 2^n]).
    [rebind] names a (context, name) binding updated to the current top
    incarnation after every restart.  [base] is an unsupervised file
    system the bottom level stacks on. *)
val supervise :
  ?budget:int ->
  ?backoff_ns:int ->
  ?rebind:Sp_naming.Context.t * Sp_naming.Sname.t ->
  ?base:Sp_core.Stackable.t ->
  name:string ->
  level list ->
  t

(** The supervised handle: a stackable proxy (served by its own
    supervisor domain) whose every operation resolves the current top
    incarnation inside {!call} — callers keep using one value across
    restarts.  Files returned by it belong to the current incarnation;
    after a crash they must be re-opened (operations on them raise
    [Dead_domain], which {!call} turns into a restart — the retry must
    then re-resolve). *)
val handle : t -> Sp_core.Stackable.t

(** Current top-of-stack incarnation (changes across restarts). *)
val top : t -> Sp_core.Stackable.t

(** Current incarnation of the named level. *)
val current : t -> string -> Sp_core.Stackable.t

(** [call f] runs [f] and, on [Fserr.Dead_domain] from a supervised
    domain, restarts the dead level (and everything above it) and
    retries [f].  Unsupervised dead domains re-raise.  If the domain's
    current incarnation is alive — [f] tripped over a stale pre-restart
    reference — it retries once without restarting, then re-raises.

    Under [Sp_sched], a restart already in flight on another task is not
    duplicated: the caller gets [Dead_domain] back immediately and should
    back off and retry ([Sp_avail.call] does). *)
val call : (unit -> 'a) -> 'a

(** Kill the named level's current serving domain (fail-stop: the next
    door call into it raises [Dead_domain]).  Used by sweeps and tests;
    fault plans reach the same state via a [Domain_crash] rule. *)
val kill : t -> string -> unit

(** Total level rebuilds performed by this supervisor. *)
val restarts : t -> int

(** Rebuild count of the named level. *)
val level_restarts : t -> string -> int

(** Deregister every level (test hygiene: the registry is global). *)
val unsupervise : t -> unit

(** The supervisor owning the named domain/level, if any ([Dead_domain]
    payloads route here). *)
val find : string -> t option

(** The supervisor's name. *)
val name : t -> string

(** A restart of this stack is currently in flight (its owner is asleep
    in the backoff or rebuilding). *)
val restarting : t -> bool

(** The [Give_up] message, once the restart budget has been exhausted. *)
val gave_up : t -> string option
