module S = Sp_core.Stackable

exception Give_up of string

type level = {
  lv_name : string;
  lv_build : lower:S.t option -> S.t;
}

let level ~name build = { lv_name = name; lv_build = build }

type entry = {
  e_level : level;
  mutable e_cur : S.t;
  mutable e_restarts : int;
}

type t = {
  s_name : string;
  s_budget : int;
  s_backoff_ns : int;
  s_rebind : (Sp_naming.Context.t * Sp_naming.Sname.t) option;
  s_base : S.t option;
  s_entries : entry array;
  mutable s_restarts : int;
  mutable s_proxy : S.t option;
  (* A restart is in flight: under [Sp_sched] the backoff sleep and the
     rebuild suspend, so other client tasks run mid-restart.  They must
     not start a second rebuild of the same stack — [restart] bounces
     them with [Dead_domain] and their retry policy backs off. *)
  mutable s_restarting : bool;
  mutable s_gave_up : string option;
}

(* Domain name -> owning supervisor.  [Dead_domain] carries the domain
   name, and a layer's serving domain is named after its instance, so the
   name is the join point between the raised exception and the restart
   recipe.  Level names must therefore be globally unique (they already
   are: layer instance registries are keyed the same way). *)
let registry : (string, t) Hashtbl.t = Hashtbl.create 8

let register_entry t e =
  Hashtbl.replace registry (Sp_obj.Sdomain.name e.e_cur.S.sfs_domain) t;
  if e.e_cur.S.sfs_name <> Sp_obj.Sdomain.name e.e_cur.S.sfs_domain then
    Hashtbl.replace registry e.e_cur.S.sfs_name t

let unsupervise t =
  Array.iter
    (fun e ->
      Hashtbl.remove registry (Sp_obj.Sdomain.name e.e_cur.S.sfs_domain);
      Hashtbl.remove registry e.e_cur.S.sfs_name)
    t.s_entries

let top t = t.s_entries.(Array.length t.s_entries - 1).e_cur

let entry_named t name =
  Array.fold_left
    (fun acc e ->
      if
        e.e_level.lv_name = name
        || Sp_obj.Sdomain.name e.e_cur.S.sfs_domain = name
      then Some e
      else acc)
    None t.s_entries

let current t name =
  match entry_named t name with
  | Some e -> e.e_cur
  | None -> invalid_arg (t.s_name ^ ": no supervised level named " ^ name)

let restarts t = t.s_restarts
let level_restarts t name = (Option.get (entry_named t name)).e_restarts
let name t = t.s_name
let restarting t = t.s_restarting
let gave_up t = t.s_gave_up
let find who = Hashtbl.find_opt registry who

let kill t name = Sp_obj.Sdomain.kill (current t name).S.sfs_domain

let scan_lowest_dead t =
  let n = Array.length t.s_entries in
  let lowest = ref n in
  for i = n - 1 downto 0 do
    if not (Sp_obj.Sdomain.alive t.s_entries.(i).e_cur.S.sfs_domain) then
      lowest := i
  done;
  !lowest

(* Restart from the lowest dead level up (rest-for-one): layers above a
   restarted layer hold closures over the dead incarnation, and stacks
   cannot be re-stacked in place, so everything from the dead level to the
   top is killed and rebuilt bottom-up on the still-live lower layer. *)
let restart t =
  let n = Array.length t.s_entries in
  let i0 = scan_lowest_dead t in
  if i0 < n then begin
    let e = t.s_entries.(i0) in
    if t.s_restarting then
      (* Another task is already mid-restart of this stack (asleep in the
         backoff or rebuilding).  Don't double-rebuild: bounce the caller
         with [Dead_domain] so its retry policy backs off until the
         in-flight restart lands. *)
      raise (Sp_obj.Sdomain.Dead_domain e.e_level.lv_name);
    if e.e_restarts >= t.s_budget then begin
      let msg =
        Printf.sprintf "%s: restart budget (%d) exhausted for level %s"
          t.s_name t.s_budget e.e_level.lv_name
      in
      t.s_gave_up <- Some msg;
      raise (Give_up msg)
    end;
    t.s_restarting <- true;
    Fun.protect
      ~finally:(fun () -> t.s_restarting <- false)
      (fun () ->
        (* Deterministic exponential backoff.  Idle, not busy: under a
           scheduler [sleep] lets other client tasks run through the
           restart window (they hit the [s_restarting] fence above);
           outside a run it just advances the clock as before. *)
        Sp_sched.sleep (t.s_backoff_ns * (1 lsl min e.e_restarts 16));
        (* More levels may have died while we slept. *)
        let i = min i0 (scan_lowest_dead t) in
        for j = i to n - 1 do
          (* Fence every level from the dead one up: stale references to
             these incarnations (cached file handles, pager channels) must
             fail or be fenced, never reach a half-connected stack. *)
          Sp_obj.Sdomain.kill t.s_entries.(j).e_cur.S.sfs_domain
        done;
        for j = i to n - 1 do
          let ej = t.s_entries.(j) in
          let lower =
            if j = 0 then t.s_base else Some t.s_entries.(j - 1).e_cur
          in
          ej.e_cur <- ej.e_level.lv_build ~lower;
          ej.e_restarts <- ej.e_restarts + 1;
          t.s_restarts <- t.s_restarts + 1;
          register_entry t ej;
          if Sp_trace.enabled () then
            Sp_trace.instant ~name:"supervise.restart"
              ~args:
                [
                  ("supervisor", t.s_name);
                  ("level", ej.e_level.lv_name);
                  ("incarnation", string_of_int (ej.e_restarts + 1));
                ]
              ()
        done;
        (* Incarnation fence: name caches may hold objects minted by the
           dead incarnations; bump the coherence epoch so every
           pre-restart entry misses instead of handing out a dead door. *)
        Sp_naming.Name_coherence.fence ();
        match t.s_rebind with
        | Some (ctx, sname) ->
            Sp_naming.Context.rebind ctx sname (S.Fs (top t))
        | None -> ())
  end

let call f =
  let rec go stale_retries =
    try f ()
    with Sp_obj.Sdomain.Dead_domain who as e -> (
      match Hashtbl.find_opt registry who with
      | None -> raise e
      | Some t ->
          let cur_alive =
            match entry_named t who with
            | Some entry -> Sp_obj.Sdomain.alive entry.e_cur.S.sfs_domain
            | None -> false
          in
          if cur_alive then
            (* The current incarnation is healthy: the caller tripped over
               a stale reference to a pre-restart incarnation.  Retry once
               so callers that re-resolve can recover; a second trip means
               the caller pinned the dead object and no restart will fix
               it. *)
            if stale_retries > 0 then go (stale_retries - 1) else raise e
          else begin
            restart t;
            go stale_retries
          end)
  in
  go 1

(* ------------------------------------------------------------------ *)
(* The supervised handle                                               *)
(* ------------------------------------------------------------------ *)

(* A proxy stackable served by its own (never-killed) supervisor domain.
   Every operation re-resolves the current top incarnation inside
   [call], so a [Dead_domain] raised anywhere below turns into a restart
   plus a transparent retry.  Naming operations are forwarded through
   the door of the real context so accounting and liveness checks are
   identical to direct use. *)
let make_proxy t =
  let domain = Sp_obj.Sdomain.create (t.s_name ^ ".supervisor") in
  let cur () = top t in
  let ctx_op opname f =
    call (fun () ->
        let c = (cur ()).S.sfs_ctx in
        Sp_obj.Door.call ~op:opname c.Sp_naming.Context.ctx_domain (fun () ->
            f c))
  in
  let ctx =
    {
      Sp_naming.Context.ctx_domain = domain;
      ctx_label = t.s_name;
      ctx_acl =
        (fun () -> (cur ()).S.sfs_ctx.Sp_naming.Context.ctx_acl ());
      ctx_set_acl =
        (fun a -> (cur ()).S.sfs_ctx.Sp_naming.Context.ctx_set_acl a);
      ctx_resolve1 =
        (fun comp ->
          ctx_op "name.resolve" (fun c ->
              c.Sp_naming.Context.ctx_resolve1 comp));
      ctx_bind1 =
        (fun comp o ->
          ctx_op "name.bind" (fun c -> c.Sp_naming.Context.ctx_bind1 comp o));
      ctx_rebind1 =
        (fun comp o ->
          ctx_op "name.rebind" (fun c ->
              c.Sp_naming.Context.ctx_rebind1 comp o));
      ctx_unbind1 =
        (fun comp ->
          ctx_op "name.unbind" (fun c -> c.Sp_naming.Context.ctx_unbind1 comp));
      ctx_list =
        (fun () -> ctx_op "name.list" (fun c -> c.Sp_naming.Context.ctx_list ()));
      ctx_readdir1 =
        (fun ~cookie ~limit ->
          ctx_op "name.readdir" (fun c ->
              c.Sp_naming.Context.ctx_readdir1 ~cookie ~limit));
    }
  in
  {
    S.sfs_name = t.s_name;
    sfs_type = "supervised";
    sfs_domain = domain;
    sfs_ctx = ctx;
    sfs_stack_on =
      (fun _ ->
        raise
          (S.Stack_error
             (t.s_name ^ ": a supervised stack is built from its recipe")));
    sfs_unders = (fun () -> Option.to_list t.s_base);
    sfs_create = (fun path -> call (fun () -> S.create (cur ()) path));
    sfs_mkdir = (fun path -> call (fun () -> S.mkdir (cur ()) path));
    sfs_remove = (fun path -> call (fun () -> S.remove (cur ()) path));
    sfs_sync = (fun () -> call (fun () -> S.sync (cur ())));
    sfs_drop_caches = (fun () -> call (fun () -> S.drop_caches (cur ())));
  }

let handle t =
  match t.s_proxy with
  | Some p -> p
  | None ->
      let p = make_proxy t in
      t.s_proxy <- Some p;
      p

let supervise ?(budget = 8) ?(backoff_ns = 1_000_000) ?rebind ?base ~name
    levels =
  if levels = [] then invalid_arg "Sp_supervise.supervise: no levels";
  let build_one lower lv = lv.lv_build ~lower in
  let entries =
    let lower = ref base in
    List.map
      (fun lv ->
        let cur = build_one !lower lv in
        lower := Some cur;
        { e_level = lv; e_cur = cur; e_restarts = 0 })
      levels
  in
  let t =
    {
      s_name = name;
      s_budget = budget;
      s_backoff_ns = backoff_ns;
      s_rebind = rebind;
      s_base = base;
      s_entries = Array.of_list entries;
      s_restarts = 0;
      s_proxy = None;
      s_restarting = false;
      s_gave_up = None;
    }
  in
  Array.iter (register_entry t) t.s_entries;
  (match rebind with
  | Some (ctx, sname) -> Sp_naming.Context.rebind ctx sname (S.Fs (top t))
  | None -> ());
  t
