(* The name-cache coherence hub: a process-wide broadcast channel from
   namespace mutators to every live name cache.

   Two signals keep caches coherent:

   - [note_change c]: some binding whose last component is [c] was
     bound, rebound or unbound somewhere.  Caches drop every entry
     whose path mentions [c] — a superset of the affected names, which
     is safe (the next resolution re-walks) and cheap to compute
     without knowing which root the mutation happened under.
   - [fence ()]: a supervised domain restarted.  Rather than track
     which cached objects came from the dead incarnation, the global
     epoch bumps and caches lazily discard anything minted before it
     (stale doors would raise [Dead_domain] anyway; the fence turns
     that into a clean miss).

   Name caches subscribe for the life of the process ([subscribe]);
   shorter-lived listeners — a cluster shard watching its own node's
   namespace to push lease invalidations, torn down and rebuilt per
   sweep point — take a handle and detach ([subscribe_handle] /
   [unsubscribe]), otherwise every rebuilt instance would leave a dead
   callback firing into freed state forever. *)

type sub = { sub_id : int; sub_f : string -> unit }

let epoch_counter = ref 0
let subscribers : sub list ref = ref []
let next_id = ref 0

let epoch () = !epoch_counter
let fence () = incr epoch_counter

let subscribe_handle f =
  incr next_id;
  let s = { sub_id = !next_id; sub_f = f } in
  subscribers := s :: !subscribers;
  s.sub_id

let subscribe f = ignore (subscribe_handle f)

let unsubscribe id =
  subscribers := List.filter (fun s -> s.sub_id <> id) !subscribers

let note_change component =
  List.iter (fun s -> s.sub_f component) !subscribers
