(* The name-cache coherence hub: a process-wide broadcast channel from
   namespace mutators to every live name cache.

   Two signals keep caches coherent:

   - [note_change c]: some binding whose last component is [c] was
     bound, rebound or unbound somewhere.  Caches drop every entry
     whose path mentions [c] — a superset of the affected names, which
     is safe (the next resolution re-walks) and cheap to compute
     without knowing which root the mutation happened under.
   - [fence ()]: a supervised domain restarted.  Rather than track
     which cached objects came from the dead incarnation, the global
     epoch bumps and caches lazily discard anything minted before it
     (stale doors would raise [Dead_domain] anyway; the fence turns
     that into a clean miss).

   Subscribers are registered for the life of the process; caches are
   few and long-lived, so no unsubscription machinery. *)

let epoch_counter = ref 0
let subscribers : (string -> unit) list ref = ref []

let epoch () = !epoch_counter
let fence () = incr epoch_counter
let subscribe f = subscribers := f :: !subscribers
let note_change component = List.iter (fun f -> f component) !subscribers
