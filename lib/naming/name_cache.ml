(* An LRU name cache with negative entries.

   Entries live in [table]; recency is an integer stamp bumped on every
   touch, and eviction scans for the minimum — exact LRU semantics with
   O(1) hits, paying O(capacity) only on the (capacity-bounded) evict.
   A negative entry records that a name was unbound when last walked, so
   repeated failing lookups also skip the context chain.

   Coherence: the cache subscribes to {!Name_coherence} at creation.
   Component broadcasts (bind/rebind/unbind anywhere) drop every entry
   whose path mentions the component; the restart fence is checked
   lazily — an entry stamped under an older epoch is discarded on
   lookup, so objects minted from a dead domain incarnation never hit. *)

type stats = {
  hits : int;
  misses : int;
  invalidations : int;
  negative_hits : int;
}

type entry = {
  value : (Context.obj, string) result;  (* [Error msg]: cached Unbound *)
  components : string list;
  epoch : int;  (* Name_coherence fence epoch at insert *)
  mutable stamp : int;  (* recency; larger = more recent *)
}

type t = {
  table : (string, entry) Hashtbl.t;
  capacity : int;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
  mutable negative_hits : int;
}

let drop_where t pred =
  let doomed =
    Hashtbl.fold (fun k e acc -> if pred e then k :: acc else acc) t.table []
  in
  List.iter
    (fun k ->
      Hashtbl.remove t.table k;
      t.invalidations <- t.invalidations + 1)
    doomed

let create ~capacity () =
  let t =
    {
      table = Hashtbl.create capacity;
      capacity;
      clock = 0;
      hits = 0;
      misses = 0;
      invalidations = 0;
      negative_hits = 0;
    }
  in
  Name_coherence.subscribe (fun component ->
      drop_where t (fun e -> List.mem component e.components));
  t

let touch t e =
  t.clock <- t.clock + 1;
  e.stamp <- t.clock

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
        match acc with
        | Some (_, s) when s <= e.stamp -> acc
        | _ -> Some (k, e.stamp))
      t.table None
  in
  match victim with Some (k, _) -> Hashtbl.remove t.table k | None -> ()

let insert t key components value =
  if Hashtbl.length t.table >= t.capacity then evict_lru t;
  t.clock <- t.clock + 1;
  Hashtbl.replace t.table key
    { value; components; epoch = Name_coherence.epoch (); stamp = t.clock }

let trace_instant kind key =
  if Sp_trace.enabled () then
    Sp_trace.instant ~name:("ncache." ^ kind) ~args:[ ("name", key) ] ()

let resolve t ?principal root name =
  let key = Sname.to_string name in
  let live =
    match Hashtbl.find_opt t.table key with
    | Some e when e.epoch = Name_coherence.epoch () -> Some e
    | Some _ ->
        (* cached before the last supervised restart: fence it out *)
        Hashtbl.remove t.table key;
        t.invalidations <- t.invalidations + 1;
        None
    | None -> None
  in
  match live with
  | Some ({ value = Ok o; _ } as e) ->
      touch t e;
      t.hits <- t.hits + 1;
      Sp_sim.Metrics.incr_name_cache_hits ();
      trace_instant "hit" key;
      o
  | Some ({ value = Error msg; _ } as e) ->
      touch t e;
      t.negative_hits <- t.negative_hits + 1;
      Sp_sim.Metrics.incr_name_cache_negative_hits ();
      trace_instant "neg" key;
      raise (Context.Unbound msg)
  | None -> (
      t.misses <- t.misses + 1;
      Sp_sim.Metrics.incr_name_cache_misses ();
      trace_instant "miss" key;
      let components = Sname.components name in
      match Context.resolve ?principal root name with
      | o ->
          insert t key components (Ok o);
          o
      | exception Context.Unbound msg ->
          insert t key components (Error msg);
          raise (Context.Unbound msg))

let invalidate t name =
  let key = Sname.to_string name in
  if Hashtbl.mem t.table key then begin
    t.invalidations <- t.invalidations + 1;
    Hashtbl.remove t.table key
  end

let clear t = Hashtbl.reset t.table

let stats t =
  {
    hits = t.hits;
    misses = t.misses;
    invalidations = t.invalidations;
    negative_hits = t.negative_hits;
  }
