(** Naming contexts.

    A context is an object containing a set of name bindings in which each
    name is unique (paper §3.2).  Any object can be bound to any name; an
    object may be bound under several names in several contexts.  Any domain
    may implement a context, and an authenticated domain can bind its
    context into any other context — this is what makes the name space
    "largely orthogonal to the file system" and what file-system stacking
    uses to arrange the exported name spaces.

    The bound-object type is an extensible variant so that higher layers
    (files, stackable file systems, creators) can be bound without this
    library depending on them. *)

(** Objects bindable in a context. *)
type obj = ..

type t = {
  ctx_domain : Sp_obj.Sdomain.t;  (** serving domain *)
  ctx_label : string;  (** diagnostic label *)
  ctx_acl : unit -> Acl.t;
  ctx_set_acl : Acl.t -> unit;
  ctx_resolve1 : string -> obj;  (** resolve one component; raises {!Unbound} *)
  ctx_bind1 : string -> obj -> unit;  (** raises {!Already_bound} *)
  ctx_rebind1 : string -> obj -> unit;  (** bind, replacing any existing binding *)
  ctx_unbind1 : string -> unit;  (** raises {!Unbound} *)
  ctx_list : unit -> string list;  (** bound names, sorted *)
  ctx_readdir1 : cookie:int -> limit:int -> string list * int option;
      (** one bounded batch of bound names from an opaque cookie (0
          starts a scan); [None] as the next cookie means exhausted.
          Weakly consistent under concurrent mutation, like POSIX
          readdir. *)
}

type obj += Context of t

exception Unbound of string
exception Already_bound of string
exception Denied of string

(** [make ~domain ~label ()] creates an empty hash-table-backed context
    served by [domain].  [acl] defaults to {!Acl.open_acl}. *)
val make : domain:Sp_obj.Sdomain.t -> label:string -> ?acl:Acl.t -> unit -> t

(** {1 Compound-name operations}

    These walk the context chain one component at a time, performing a door
    invocation on each context's serving domain and checking its ACL against
    [principal] (default ["user"]). *)

(** Resolve a compound name to an object. *)
val resolve : ?principal:string -> t -> Sname.t -> obj

(** Resolve, requiring the result to be a context. *)
val resolve_context : ?principal:string -> t -> Sname.t -> t

(** Bind [obj] at [name]; all but the last component must resolve to
    existing contexts. *)
val bind : ?principal:string -> t -> Sname.t -> obj -> unit

(** Like {!bind} but replaces an existing binding — the primitive used for
    name-space interposition (paper §5). *)
val rebind : ?principal:string -> t -> Sname.t -> obj -> unit

val unbind : ?principal:string -> t -> Sname.t -> unit

(** List the names bound in the context denoted by [name] (use an empty
    name for the context itself). *)
val list : ?principal:string -> t -> Sname.t -> string list

(** One bounded readdir batch from the context denoted by [name]: the
    streaming alternative to {!list}.  Each batch pays one door
    crossing; neither side materialises the whole directory. *)
val readdir :
  ?principal:string ->
  t ->
  Sname.t ->
  cookie:int ->
  limit:int ->
  string list * int option

(** [mkdir_path ctx name ~domain] resolves [name], creating intermediate
    hash-table contexts (served by [domain]) as needed, and returns the
    final context. *)
val mkdir_path : ?principal:string -> t -> Sname.t -> domain:Sp_obj.Sdomain.t -> t
