type t = { overlay : Context.t; shared : Context.t; view : Context.t }

let create ~shared ~domain =
  let overlay =
    Context.make ~domain ~label:(Sp_obj.Sdomain.name domain ^ ":overlay") ()
  in
  let resolve1 component =
    match overlay.Context.ctx_resolve1 component with
    | o -> o
    | exception Context.Unbound _ -> shared.Context.ctx_resolve1 component
  in
  let list () =
    let merged = overlay.Context.ctx_list () @ shared.Context.ctx_list () in
    List.sort_uniq String.compare merged
  in
  let view =
    {
      Context.ctx_domain = domain;
      ctx_label = Sp_obj.Sdomain.name domain ^ ":ns";
      ctx_acl = shared.Context.ctx_acl;
      ctx_set_acl = shared.Context.ctx_set_acl;
      ctx_resolve1 = resolve1;
      ctx_bind1 = overlay.Context.ctx_bind1;
      ctx_rebind1 = overlay.Context.ctx_rebind1;
      ctx_unbind1 = overlay.Context.ctx_unbind1;
      ctx_list = list;
      ctx_readdir1 = (fun ~cookie ~limit -> Sp_dir.Cursor.of_list (list ()) ~cookie ~limit);
    }
  in
  { overlay; shared; view }

let as_context t = t.view
let shared_root t = t.shared

let customize t name o =
  match Sname.components name with
  | [ single ] -> t.overlay.Context.ctx_bind1 single o
  | _ -> Context.bind t.view name o
