(** Coherence protocol between namespace mutators and name caches.

    Mutation entry points ({!Context.bind}/[rebind]/[unbind], the
    [Stackable] path helpers) broadcast the changed binding's last
    component with {!note_change}; {!Name_cache} instances subscribe and
    drop every entry mentioning that component.  Supervised restarts
    call {!fence}, bumping a global epoch that invalidates all entries
    cached before it (incarnation fencing: cached objects may hold
    doors into the dead incarnation). *)

(** Current fence epoch; caches stamp entries with it at insert. *)
val epoch : unit -> int

(** Bump the epoch: every entry cached before this call is stale. *)
val fence : unit -> unit

(** Register an invalidation callback; called with the last component
    of every changed binding.  Subscriptions last for the process. *)
val subscribe : (string -> unit) -> unit

(** Like {!subscribe}, returning a handle for {!unsubscribe}.  For
    listeners shorter-lived than the process (a cluster shard pushing
    lease invalidations, rebuilt per sweep point). *)
val subscribe_handle : (string -> unit) -> int

(** Detach a {!subscribe_handle} subscription; unknown ids are
    ignored. *)
val unsubscribe : int -> unit

(** Broadcast that a binding ending in [component] changed. *)
val note_change : string -> unit
