(** Name caching.

    The paper (§6.4) observes that the open overhead of split-domain stacks
    "can be eliminated" by name caching, which Spring was implementing to
    remove remote name-resolution costs.  A [Name_cache.t] caches full
    compound-name resolutions against one root context; hits avoid walking
    the context chain (and hence all door crossings).

    The cache is an LRU and also holds {e negative} entries: a resolution
    that raised [Context.Unbound] is remembered, so repeated failing
    lookups skip the walk too.  Coherence comes from {!Name_coherence}:
    bind/rebind/unbind broadcasts drop entries mentioning the changed
    component (positive and negative alike), and supervised restarts
    fence out everything cached from the dead incarnation. *)

type t

type stats = {
  hits : int;
  misses : int;
  invalidations : int;  (** entries dropped by name, component or fence *)
  negative_hits : int;  (** lookups answered "unbound" from the cache *)
}

(** [create ~capacity ()] makes an empty cache holding at most
    [capacity] entries, evicting the least recently used.  The cache
    subscribes to {!Name_coherence} for the life of the process. *)
val create : capacity:int -> unit -> t

(** Resolve through the cache.  Raises [Context.Unbound] on a negative
    hit without touching the context chain. *)
val resolve : t -> ?principal:string -> Context.t -> Sname.t -> Context.obj

(** Drop a cached entry (called after unbind/rebind of that name). *)
val invalidate : t -> Sname.t -> unit

(** Drop everything. *)
val clear : t -> unit

val stats : t -> stats
