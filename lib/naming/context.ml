type obj = ..

type t = {
  ctx_domain : Sp_obj.Sdomain.t;
  ctx_label : string;
  ctx_acl : unit -> Acl.t;
  ctx_set_acl : Acl.t -> unit;
  ctx_resolve1 : string -> obj;
  ctx_bind1 : string -> obj -> unit;
  ctx_rebind1 : string -> obj -> unit;
  ctx_unbind1 : string -> unit;
  ctx_list : unit -> string list;
  ctx_readdir1 : cookie:int -> limit:int -> string list * int option;
}

type obj += Context of t

exception Unbound of string
exception Already_bound of string
exception Denied of string

let make ~domain ~label ?(acl = Acl.open_acl) () =
  let table : (string, obj) Hashtbl.t = Hashtbl.create 16 in
  let acl_ref = ref acl in
  let resolve1 component =
    match Hashtbl.find_opt table component with
    | Some o -> o
    | None -> raise (Unbound (label ^ "/" ^ component))
  in
  let bind1 component o =
    if Hashtbl.mem table component then
      raise (Already_bound (label ^ "/" ^ component))
    else Hashtbl.replace table component o
  in
  let rebind1 component o = Hashtbl.replace table component o in
  let unbind1 component =
    if Hashtbl.mem table component then Hashtbl.remove table component
    else raise (Unbound (label ^ "/" ^ component))
  in
  let list () = List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) table []) in
  let readdir1 ~cookie ~limit = Sp_dir.Cursor.of_list (list ()) ~cookie ~limit in
  {
    ctx_domain = domain;
    ctx_label = label;
    ctx_acl = (fun () -> !acl_ref);
    ctx_set_acl = (fun a -> acl_ref := a);
    ctx_resolve1 = resolve1;
    ctx_bind1 = bind1;
    ctx_rebind1 = rebind1;
    ctx_unbind1 = unbind1;
    ctx_list = list;
    ctx_readdir1 = readdir1;
  }

let check ctx ~principal perm =
  if not (Acl.permits (ctx.ctx_acl ()) ~principal perm) then
    raise
      (Denied
         (Format.asprintf "%s: %s denied %a" ctx.ctx_label principal
            Acl.pp_permission perm))

(* Walk all but the last component, returning the context serving the last
   component together with that component. *)
let rec walk ~principal ctx name =
  match Sname.split name with
  | None -> invalid_arg "Context.walk: empty name"
  | Some (component, rest) when Sname.is_empty rest -> (ctx, component)
  | Some (component, rest) -> (
      let child =
        Sp_obj.Door.call ~op:"name.resolve" ctx.ctx_domain (fun () ->
            check ctx ~principal Acl.Resolve;
            ctx.ctx_resolve1 component)
      in
      match child with
      | Context c -> walk ~principal c rest
      | _ -> raise (Unbound (ctx.ctx_label ^ "/" ^ component ^ ": not a context")))

let resolve ?(principal = "user") ctx name =
  if Sname.is_empty name then Context ctx
  else
    let parent, last = walk ~principal ctx name in
    Sp_obj.Door.call ~op:"name.resolve" parent.ctx_domain (fun () ->
        check parent ~principal Acl.Resolve;
        parent.ctx_resolve1 last)

let resolve_context ?principal ctx name =
  match resolve ?principal ctx name with
  | Context c -> c
  | _ -> raise (Unbound (Sname.to_string name ^ ": not a context"))

let bind ?(principal = "user") ctx name o =
  let parent, last = walk ~principal ctx name in
  Sp_obj.Door.call ~op:"name.bind" parent.ctx_domain (fun () ->
      check parent ~principal Acl.Bind;
      parent.ctx_bind1 last o);
  Name_coherence.note_change last

let rebind ?(principal = "user") ctx name o =
  let parent, last = walk ~principal ctx name in
  Sp_obj.Door.call ~op:"name.rebind" parent.ctx_domain (fun () ->
      check parent ~principal Acl.Bind;
      parent.ctx_rebind1 last o);
  Name_coherence.note_change last

let unbind ?(principal = "user") ctx name =
  let parent, last = walk ~principal ctx name in
  Sp_obj.Door.call ~op:"name.unbind" parent.ctx_domain (fun () ->
      check parent ~principal Acl.Unbind;
      parent.ctx_unbind1 last);
  Name_coherence.note_change last

let list ?(principal = "user") ctx name =
  match resolve ?principal:(Some principal) ctx name with
  | Context c ->
      Sp_obj.Door.call ~op:"name.list" c.ctx_domain (fun () ->
          check c ~principal Acl.Resolve;
          c.ctx_list ())
  | _ -> raise (Unbound (Sname.to_string name ^ ": not a context"))

(* One bounded readdir batch.  Each batch re-resolves [name] and pays
   one door crossing, so a long scan costs O(entries / limit) calls —
   never a whole-directory materialisation on either side. *)
let readdir ?(principal = "user") ctx name ~cookie ~limit =
  match resolve ~principal ctx name with
  | Context c ->
      Sp_obj.Door.call ~op:"name.readdir" c.ctx_domain (fun () ->
          check c ~principal Acl.Resolve;
          c.ctx_readdir1 ~cookie ~limit)
  | _ -> raise (Unbound (Sname.to_string name ^ ": not a context"))

let mkdir_path ?(principal = "user") ctx name ~domain =
  let rec go ctx name =
    match Sname.split name with
    | None -> ctx
    | Some (component, rest) ->
        let child =
          Sp_obj.Door.call ~op:"name.mkdir" ctx.ctx_domain (fun () ->
              check ctx ~principal Acl.Resolve;
              match ctx.ctx_resolve1 component with
              | o -> o
              | exception Unbound _ ->
                  let fresh =
                    make ~domain ~label:(ctx.ctx_label ^ "/" ^ component) ()
                  in
                  check ctx ~principal Acl.Bind;
                  ctx.ctx_bind1 component (Context fresh);
                  Context fresh)
        in
        (match child with
        | Context c -> go c rest
        | _ ->
            raise (Unbound (ctx.ctx_label ^ "/" ^ component ^ ": not a context")))
  in
  go ctx name
