module F = Sp_core.File
module S = Sp_core.Stackable

type errno =
  | ENOENT
  | EEXIST
  | EBADF
  | EISDIR
  | ENOTDIR
  | ENOTEMPTY
  | ENOSPC
  | EACCES
  | EIO
  | EINVAL

let errno_to_string = function
  | ENOENT -> "ENOENT"
  | EEXIST -> "EEXIST"
  | EBADF -> "EBADF"
  | EISDIR -> "EISDIR"
  | ENOTDIR -> "ENOTDIR"
  | ENOTEMPTY -> "ENOTEMPTY"
  | ENOSPC -> "ENOSPC"
  | EACCES -> "EACCES"
  | EIO -> "EIO"
  | EINVAL -> "EINVAL"

type open_flag = O_RDONLY | O_RDWR | O_CREAT | O_TRUNC | O_APPEND | O_EXCL

(* An open-file description, shared between dup'ed descriptors. *)
type ofd = {
  o_file : F.t;
  mutable o_offset : int;
  o_append : bool;
  o_writable : bool;
}

type process = {
  p_root : S.t;
  mutable p_cwd : string list;  (* absolute, as components *)
  p_fds : (int, ofd) Hashtbl.t;
  mutable p_next_fd : int;
}

type fd = int

type whence = SEEK_SET | SEEK_CUR | SEEK_END

let create_process ~root ?(cwd = "/") () =
  {
    p_root = root;
    p_cwd = Sp_naming.Sname.components (Sp_naming.Sname.of_string cwd);
    p_fds = Hashtbl.create 16;
    p_next_fd = 3;  (* 0-2 reserved, as tradition demands *)
  }

(* Resolve a path string against the cwd.  Absolute paths start with '/'. *)
let abspath p path =
  let name = Sp_naming.Sname.of_string path in
  if String.length path > 0 && path.[0] = '/' then name
  else Sp_naming.Sname.of_components (p.p_cwd @ Sp_naming.Sname.components name)

(* Map the typed errors of the stack onto errno. *)
let guard f =
  match f () with
  | v -> Ok v
  | exception Sp_core.Fserr.No_such_file _ -> Error ENOENT
  | exception Sp_naming.Context.Unbound _ -> Error ENOENT
  | exception Sp_core.Fserr.Already_exists _ -> Error EEXIST
  | exception Sp_naming.Context.Already_bound _ -> Error EEXIST
  | exception Sp_core.Fserr.Is_directory _ -> Error EISDIR
  | exception Sp_core.Fserr.Not_a_directory _ -> Error ENOTDIR
  | exception Sp_core.Fserr.Directory_not_empty _ -> Error ENOTEMPTY
  | exception Sp_core.Fserr.No_space _ -> Error ENOSPC
  | exception Sp_core.Fserr.Read_only _ -> Error EACCES
  | exception Sp_naming.Context.Denied _ -> Error EACCES
  | exception Sp_core.Fserr.Io_error _ -> Error EIO
  | exception Invalid_argument _ -> Error EINVAL

let ( let* ) = Result.bind

let lookup_fd p fd =
  match Hashtbl.find_opt p.p_fds fd with Some o -> Ok o | None -> Error EBADF

let install p ofd =
  let fd = p.p_next_fd in
  p.p_next_fd <- fd + 1;
  Hashtbl.replace p.p_fds fd ofd;
  fd

let openf p path flags =
  let name = abspath p path in
  let want_creat = List.mem O_CREAT flags in
  let want_excl = List.mem O_EXCL flags in
  let* file =
    match guard (fun () -> S.open_file p.p_root name) with
    | Ok f -> if want_creat && want_excl then Error EEXIST else Ok f
    | Error ENOENT when want_creat -> guard (fun () -> S.create p.p_root name)
    | Error e -> Error e
  in
  let* () =
    if List.mem O_TRUNC flags then guard (fun () -> F.truncate file 0) else Ok ()
  in
  let writable = List.mem O_RDWR flags || want_creat || List.mem O_APPEND flags in
  Ok
    (install p
       {
         o_file = file;
         o_offset = 0;
         o_append = List.mem O_APPEND flags;
         o_writable = writable;
       })

let creat p path = openf p path [ O_CREAT; O_RDWR; O_TRUNC ]
let unlink p path = guard (fun () -> S.remove p.p_root (abspath p path))
let mkdir p path = guard (fun () -> S.mkdir p.p_root (abspath p path))

let rmdir p path =
  let name = abspath p path in
  (* Emptiness probe: one cursor batch is enough for a non-empty
     directory; filtering layers may return short batches with a live
     cookie, so terminate on the cookie, never on a batch being empty. *)
  let rec empty cookie =
    match S.readdir p.p_root name ~cookie ~limit:16 with
    | _ :: _, _ -> false
    | [], None -> true
    | [], Some c -> empty c
  in
  let* is_empty = guard (fun () -> empty 0) in
  if not is_empty then Error ENOTEMPTY
  else guard (fun () -> S.remove p.p_root name)

let rename p src dst =
  guard (fun () -> S.rename p.p_root ~src:(abspath p src) ~dst:(abspath p dst))

let link p src dst =
  (* Hard links, like renames, are name-space operations performed where
     the bindings live: the base of the stack. *)
  let b = S.base p.p_root in
  let* file = guard (fun () -> S.open_file b (abspath p src)) in
  guard (fun () ->
      Sp_naming.Context.bind b.S.sfs_ctx (abspath p dst) (F.File file))

let stat p path =
  let name = abspath p path in
  match guard (fun () -> S.open_file p.p_root name) with
  | Ok f -> guard (fun () -> F.stat f)
  | Error EISDIR -> Ok (Sp_vm.Attr.fresh Sp_vm.Attr.Directory)
  | Error e -> Error e

let readdir p path =
  guard (fun () ->
      List.sort String.compare
        (S.fold_dir p.p_root (abspath p path) (fun acc n -> n :: acc) []))

let chdir p path =
  let name = abspath p path in
  let* obj = guard (fun () -> Sp_naming.Context.resolve p.p_root.S.sfs_ctx name) in
  match obj with
  | Sp_naming.Context.Context _ ->
      p.p_cwd <- Sp_naming.Sname.components name;
      Ok ()
  | F.File _ -> Error ENOTDIR
  | _ -> Error ENOTDIR

let getcwd p = "/" ^ String.concat "/" p.p_cwd

let read p fd len =
  let* o = lookup_fd p fd in
  if len < 0 then Error EINVAL
  else
    let* data = guard (fun () -> F.read o.o_file ~pos:o.o_offset ~len) in
    o.o_offset <- o.o_offset + Bytes.length data;
    Ok data

let write p fd data =
  let* o = lookup_fd p fd in
  if not o.o_writable then Error EACCES
  else begin
    let pos =
      if o.o_append then (F.stat o.o_file).Sp_vm.Attr.len else o.o_offset
    in
    let* n = guard (fun () -> F.write o.o_file ~pos data) in
    o.o_offset <- pos + n;
    Ok n
  end

let pread p fd ~pos ~len =
  let* o = lookup_fd p fd in
  if pos < 0 || len < 0 then Error EINVAL
  else guard (fun () -> F.read o.o_file ~pos ~len)

let pwrite p fd ~pos data =
  let* o = lookup_fd p fd in
  if pos < 0 then Error EINVAL
  else if not o.o_writable then Error EACCES
  else guard (fun () -> F.write o.o_file ~pos data)

let lseek p fd offset whence =
  let* o = lookup_fd p fd in
  let* base =
    match whence with
    | SEEK_SET -> Ok 0
    | SEEK_CUR -> Ok o.o_offset
    | SEEK_END -> guard (fun () -> (F.stat o.o_file).Sp_vm.Attr.len)
  in
  let target = base + offset in
  if target < 0 then Error EINVAL
  else begin
    o.o_offset <- target;
    Ok target
  end

let fstat p fd =
  let* o = lookup_fd p fd in
  guard (fun () -> F.stat o.o_file)

let ftruncate p fd len =
  let* o = lookup_fd p fd in
  if not o.o_writable then Error EACCES
  else if len < 0 then Error EINVAL
  else guard (fun () -> F.truncate o.o_file len)

let fsync p fd =
  let* o = lookup_fd p fd in
  guard (fun () -> F.sync o.o_file)

let dup p fd =
  let* o = lookup_fd p fd in
  Ok (install p o)

let close p fd =
  let* _ = lookup_fd p fd in
  Hashtbl.remove p.p_fds fd;
  Ok ()

let open_fds p = List.sort Int.compare (Hashtbl.fold (fun k _ acc -> k :: acc) p.p_fds [])
