(** The bulk data path, re-exported under its subsystem name.

    The mechanism lives in {!Sp_obj.Bulk} (the channel registry and
    transfer scope) and {!Sp_obj.Door} ([data_call], [charge_transfer],
    [charge_source_copy]) because the door is where Spring's stubs chose
    between procedure call, cross-domain call, and the bulk-buffer path
    (paper §6.4).  [Sp_bulk] is the library clients, benches, and tests
    name: toggles, channel introspection, and a one-stop stats view.

    Data-bearing call helpers must route through this path —
    [Door.data_call] with an [~op] label plus one [charge_transfer] for
    the payload — or copy accounting silently double-charges (see
    CLAUDE.md conventions). *)

include Sp_obj.Bulk

type stats = {
  channels : int;  (** bulk channels currently established *)
  setups : int;  (** channels ever established (Metrics counter) *)
  handoffs : int;  (** payloads handed over without a marshalling copy *)
  copies : int;  (** payloads copied once into a shared bulk buffer *)
}

let stats () =
  {
    channels = channel_count ();
    setups = Sp_sim.Metrics.bulk_setups ();
    handoffs = Sp_sim.Metrics.bulk_handoffs ();
    copies = Sp_sim.Metrics.bulk_copies ();
  }

let pp_stats ppf s =
  Format.fprintf ppf "channels=%d setups=%d handoffs=%d copies=%d" s.channels
    s.setups s.handoffs s.copies
