(** File-system errors shared by every layer. *)

exception No_such_file of string
exception Already_exists of string
exception Is_directory of string
exception Not_a_directory of string
exception Directory_not_empty of string

(** Device or table exhausted. *)
exception No_space of string

(** Layer or file refuses modification. *)
exception Read_only of string

exception Io_error of string

(** Stored data does not match its recorded checksum: silent corruption
    (bit rot, a misdirected or lost write) detected on read.  Distinct
    from {!Io_error} — the device answered, but with the wrong bytes.
    Mirrorfs catches this to serve from the healthy twin and rewrite the
    bad one. *)
exception Checksum_error of string

(** The domain serving the invoked object has fail-stopped (alias of
    [Sp_obj.Sdomain.Dead_domain], raised by the door itself).  Layers
    never catch this; [Sp_supervise.call] turns it into a supervised
    restart + retry. *)
exception Dead_domain of string

(** The op overran its [Sp_sched.with_deadline] (alias of
    [Sp_sched.Deadline_exceeded]): raised at a door-call boundary, from a
    cancelled station-queue wait, or by a backoff that would sleep past
    the deadline.  The payload names where it expired. *)
exception Timed_out of string

(** Render any of the above (or any other exception via [Printexc]). *)
val to_string : exn -> string
