(* Memo registries of all mapped contexts, so [invalidate] can reach them.
   Keyed weakly by context label; a context's memo lives as long as the
   context itself in practice (contexts are never collected mid-run in the
   simulation). *)
let registries : (string, unit -> unit) Hashtbl.t = Hashtbl.create 16

let rec make ~domain ~label ~lower ~wrap_file ?on_miss ?on_file () =
  (* The memo stores the lower file alongside the wrapper: a hit is valid
     only while the lower layer still returns the SAME object.  When a file
     is removed and its identity reused, lower layers mint a fresh object,
     so the stale wrapper is discarded and rebuilt. *)
  let file_memo : (string, File.t * File.t) Hashtbl.t = Hashtbl.create 16 in
  let ctx_memo : (string, Sp_naming.Context.t) Hashtbl.t = Hashtbl.create 4 in
  Hashtbl.replace registries label (fun () ->
      Hashtbl.reset file_memo;
      Hashtbl.reset ctx_memo);
  let wrap component obj =
    match obj with
    | File.File f -> (
        let deliver wrapped =
          (match on_file with None -> () | Some hook -> hook wrapped);
          File.File wrapped
        in
        let fresh () =
          let wrapped = wrap_file f in
          Hashtbl.replace file_memo f.File.f_id (f, wrapped);
          deliver wrapped
        in
        match Hashtbl.find_opt file_memo f.File.f_id with
        | Some (stored_lower, wrapped) when stored_lower == f -> deliver wrapped
        | Some _ | None -> fresh ())
    | Sp_naming.Context.Context sub -> (
        match Hashtbl.find_opt ctx_memo component with
        | Some wrapped -> Sp_naming.Context.Context wrapped
        | None ->
            let wrapped =
              make ~domain
                ~label:(label ^ "/" ^ component)
                ~lower:sub ~wrap_file ?on_miss ?on_file ()
            in
            Hashtbl.replace ctx_memo component wrapped;
            Sp_naming.Context.Context wrapped)
    | other -> other
  in
  let single component = Sp_naming.Sname.of_components [ component ] in
  let resolve1 component =
    match Sp_naming.Context.resolve lower (single component) with
    | obj -> wrap component obj
    | exception (Sp_naming.Context.Unbound _ as e) -> (
        match on_miss with
        | None -> raise e
        | Some synth -> (
            match synth component with Some obj -> obj | None -> raise e))
  in
  {
    Sp_naming.Context.ctx_domain = domain;
    ctx_label = label;
    ctx_acl = lower.Sp_naming.Context.ctx_acl;
    ctx_set_acl = lower.Sp_naming.Context.ctx_set_acl;
    ctx_resolve1 = resolve1;
    ctx_bind1 = (fun c o -> Sp_naming.Context.bind lower (single c) o);
    ctx_rebind1 = (fun c o -> Sp_naming.Context.rebind lower (single c) o);
    ctx_unbind1 = (fun c -> Sp_naming.Context.unbind lower (single c));
    ctx_list = (fun () -> Sp_naming.Context.list lower (Sp_naming.Sname.of_components []));
    ctx_readdir1 =
      (fun ~cookie ~limit ->
        Sp_naming.Context.readdir lower
          (Sp_naming.Sname.of_components [])
          ~cookie ~limit);
  }

let invalidate ctx =
  match Hashtbl.find_opt registries ctx.Sp_naming.Context.ctx_label with
  | Some reset -> reset ()
  | None -> ()
