(** The stackable file system interface (paper §4.4, Figure 8).

    [stackable_fs] inherits from the file-system and naming-context
    interfaces; instances are produced by [stackable_fs_creator] objects
    registered under a well-known context (conventionally [/fs_creators]),
    stacked on underlying file systems with [stack_on], and exported by
    binding them — they are naming contexts — anywhere in the name space. *)

type t = {
  sfs_name : string;  (** instance name, e.g. ["sfs0"] *)
  sfs_type : string;  (** layer type, e.g. ["compfs"] *)
  sfs_domain : Sp_obj.Sdomain.t;
  sfs_ctx : Sp_naming.Context.t;  (** the inherited naming context *)
  sfs_stack_on : t -> unit;
      (** add an underlying file system; callable more than once if the
          layer supports several (the maximum is implementation dependent) *)
  sfs_unders : unit -> t list;
  sfs_create : Sp_naming.Sname.t -> File.t;  (** create and return a regular file *)
  sfs_mkdir : Sp_naming.Sname.t -> unit;
  sfs_remove : Sp_naming.Sname.t -> unit;
  sfs_sync : unit -> unit;  (** flush everything toward stable store *)
  sfs_drop_caches : unit -> unit;
      (** drop layer-private caches (benchmark support) *)
}

type creator = {
  cr_type : string;
  cr_create : name:string -> t;  (** the [create] operation of Figure 8 *)
}

type Sp_naming.Context.obj +=
  | Fs of t  (** a stackable file system bound in the name space *)
  | Creator of creator

exception Stack_error of string

(** {1 Call helpers} *)

(** [open_file fs path] resolves [path] in the file system's naming context
    and narrows the result to a file.  Raises {!Fserr.No_such_file} /
    {!Fserr.Is_directory} accordingly. *)
val open_file : ?principal:string -> t -> Sp_naming.Sname.t -> File.t

(** Like {!open_file} but resolving through a {!Sp_naming.Name_cache}. *)
val open_file_cached :
  ?principal:string -> Sp_naming.Name_cache.t -> t -> Sp_naming.Sname.t -> File.t

val create : t -> Sp_naming.Sname.t -> File.t
val mkdir : t -> Sp_naming.Sname.t -> unit
val remove : t -> Sp_naming.Sname.t -> unit
val stack_on : t -> t -> unit
val sync : t -> unit
val drop_caches : t -> unit

(** One bounded readdir batch (cookie 0 starts a scan; [None] as the
    next cookie means exhausted).  Batches may be shorter than [limit]
    when a filtering layer sits in the stack — key termination on the
    cookie, not the batch size. *)
val readdir :
  ?principal:string ->
  t ->
  Sp_naming.Sname.t ->
  cookie:int ->
  limit:int ->
  string list * int option

(** Stream a directory in bounded batches ([batch] defaults to
    {!Sp_dir.Cursor.default_batch}) without materialising it. *)
val fold_dir :
  ?principal:string ->
  ?batch:int ->
  t ->
  Sp_naming.Sname.t ->
  ('a -> string -> 'a) ->
  'a ->
  'a

val iter_dir :
  ?principal:string -> ?batch:int -> t -> Sp_naming.Sname.t -> (string -> unit) -> unit

(** List names bound in a directory of the file system, sorted — a
    compatibility wrapper that drains {!readdir}; prefer the streaming
    helpers for potentially large directories. *)
val listdir : t -> Sp_naming.Sname.t -> string list

(** [rename fs ~src ~dst] moves a regular file by binding it under the new
    name and unbinding the old one at the stack's base layer — in Spring a
    rename is a name-space operation, not a file operation; upper layers
    re-wrap the file under its new name on the next resolution.  Raises
    {!Fserr.Already_exists} if [dst] is bound.  The whole
    lookup/link/unlink cycle holds per-directory write locks (source and
    destination directories, acquired in sorted order), so two
    [Sp_sched] tasks racing to rename the same name serialize: one wins,
    the other observes the post-rename namespace ([Fserr.No_such_file]).
    Sidecar state keyed by name (extended attributes, version history)
    stays under the old name. *)
val rename : t -> src:Sp_naming.Sname.t -> dst:Sp_naming.Sname.t -> unit

(** The single underlying file system of a layer, raising {!Stack_error}
    if there is not exactly one. *)
val sole_under : t -> t

(** The base of a linear stack: follow sole underlying links to the layer
    whose context actually stores name bindings. *)
val base : t -> t

(** {1 Creator registry} *)

(** [register_creator ctx creator] binds the creator as
    [<cr_type>_creator] in [ctx] (the well-known [/fs_creators] context). *)
val register_creator : Sp_naming.Context.t -> creator -> unit

(** [lookup_creator ctx type_name] resolves [<type_name>_creator]. *)
val lookup_creator : Sp_naming.Context.t -> string -> creator

(** [instantiate ctx type_name ~name] looks the creator up and creates an
    instance — steps 1–2 of the configuration method in §4.4. *)
val instantiate : Sp_naming.Context.t -> string -> name:string -> t
