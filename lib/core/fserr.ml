exception No_such_file of string
exception Already_exists of string
exception Is_directory of string
exception Not_a_directory of string
exception Directory_not_empty of string
exception No_space of string
exception Read_only of string
exception Io_error of string
exception Checksum_error of string
exception Dead_domain = Sp_obj.Sdomain.Dead_domain
exception Timed_out = Sp_sched.Deadline_exceeded

let to_string = function
  | No_such_file p -> "no such file: " ^ p
  | Already_exists p -> "already exists: " ^ p
  | Is_directory p -> "is a directory: " ^ p
  | Not_a_directory p -> "not a directory: " ^ p
  | Directory_not_empty p -> "directory not empty: " ^ p
  | No_space what -> "no space: " ^ what
  | Read_only what -> "read-only: " ^ what
  | Io_error what -> "i/o error: " ^ what
  | Checksum_error what -> "checksum error: " ^ what
  | Dead_domain who -> "dead domain: " ^ who
  | Timed_out what -> "timed out: " ^ what
  | e -> Printexc.to_string e
