type t = {
  sfs_name : string;
  sfs_type : string;
  sfs_domain : Sp_obj.Sdomain.t;
  sfs_ctx : Sp_naming.Context.t;
  sfs_stack_on : t -> unit;
  sfs_unders : unit -> t list;
  sfs_create : Sp_naming.Sname.t -> File.t;
  sfs_mkdir : Sp_naming.Sname.t -> unit;
  sfs_remove : Sp_naming.Sname.t -> unit;
  sfs_sync : unit -> unit;
  sfs_drop_caches : unit -> unit;
}

type creator = { cr_type : string; cr_create : name:string -> t }

type Sp_naming.Context.obj += Fs of t | Creator of creator

exception Stack_error of string

let narrow_to_file path = function
  | File.File f -> f
  | Sp_naming.Context.Context _ | Fs _ ->
      raise (Fserr.Is_directory (Sp_naming.Sname.to_string path))
  | _ -> raise (Fserr.No_such_file (Sp_naming.Sname.to_string path))

let open_file ?principal fs path =
  match Sp_naming.Context.resolve ?principal fs.sfs_ctx path with
  | o -> narrow_to_file path o
  | exception Sp_naming.Context.Unbound _ ->
      raise (Fserr.No_such_file (Sp_naming.Sname.to_string path))

let open_file_cached ?principal cache fs path =
  match Sp_naming.Name_cache.resolve cache ?principal fs.sfs_ctx path with
  | o -> narrow_to_file path o
  | exception Sp_naming.Context.Unbound _ ->
      raise (Fserr.No_such_file (Sp_naming.Sname.to_string path))

(* The fs helpers mutate bindings inside the layer (bypassing
   [Context.bind]/[unbind]), so they broadcast the coherence signal
   themselves. *)
let note_change path =
  match List.rev (Sp_naming.Sname.components path) with
  | last :: _ -> Sp_naming.Name_coherence.note_change last
  | [] -> ()

let create fs path =
  let f =
    Sp_obj.Door.call ~op:"fs.create" fs.sfs_domain (fun () -> fs.sfs_create path)
  in
  note_change path;
  f

let mkdir fs path =
  Sp_obj.Door.call ~op:"fs.mkdir" fs.sfs_domain (fun () -> fs.sfs_mkdir path);
  note_change path

let remove fs path =
  Sp_obj.Door.call ~op:"fs.remove" fs.sfs_domain (fun () -> fs.sfs_remove path);
  note_change path

let stack_on fs under =
  Sp_obj.Door.call ~op:"fs.stack_on" fs.sfs_domain (fun () -> fs.sfs_stack_on under)

let sync fs = Sp_obj.Door.call ~op:"fs.sync" fs.sfs_domain fs.sfs_sync
let drop_caches fs = Sp_obj.Door.call ~op:"fs.drop_caches" fs.sfs_domain fs.sfs_drop_caches
let readdir ?principal fs path ~cookie ~limit =
  Sp_naming.Context.readdir ?principal fs.sfs_ctx path ~cookie ~limit

let fold_dir ?principal ?batch fs path f init =
  Sp_dir.Cursor.fold ?batch
    (fun ~cookie ~limit -> readdir ?principal fs path ~cookie ~limit)
    f init

let iter_dir ?principal ?batch fs path f =
  fold_dir ?principal ?batch fs path (fun () name -> f name) ()

(* Compatibility wrapper: drain the cursor.  Internal consumers stream
   with [readdir]/[fold_dir]; this stays for call sites that genuinely
   want the whole (small) listing at once.  Sorted, as [ctx_list] was. *)
let listdir fs path =
  List.sort String.compare
    (Sp_dir.Cursor.drain (fun ~cookie ~limit -> readdir fs path ~cookie ~limit))

let rec base fs =
  match fs.sfs_unders () with [ under ] -> base under | _ -> fs

(* Per-(base fs, directory) write locks serializing rename's
   lookup/link/unlink cycle.  Without them two tasks renaming the same
   name race through the unlocked window between [open_file] and
   [remove] (door crossings suspend under [Sp_sched]) and both "win":
   last-wins leaves the file bound under two names or removes it twice.
   Keyed by instance name so fresh test instances never share a lock. *)
let rename_locks : (string, Sp_sched.Rwlock.t) Hashtbl.t = Hashtbl.create 16

let dir_key b path =
  let dir =
    match List.rev (Sp_naming.Sname.components path) with
    | _ :: rev_dir -> String.concat "/" (List.rev rev_dir)
    | [] -> ""
  in
  b.sfs_name ^ ":" ^ dir

let dir_lock key =
  match Hashtbl.find_opt rename_locks key with
  | Some l -> l
  | None ->
      let l = Sp_sched.Rwlock.create ("rename:" ^ key) in
      Hashtbl.replace rename_locks key l;
      l

let rename fs ~src ~dst =
  (* Bindings of a linear stack live in its base layer; perform the
     relink there.  Upper layers re-wrap the same underlying file under
     the new name automatically. *)
  let b = base fs in
  (* Sorted-key acquisition so two cross-directory renames in opposite
     directions cannot ABBA-deadlock; equal keys collapse to one lock
     (the write lock is not reentrant). *)
  let locks =
    List.map dir_lock
      (List.sort_uniq String.compare [ dir_key b src; dir_key b dst ])
  in
  let rec locked = function
    | [] ->
        let file = open_file b src in
        (match Sp_naming.Context.bind b.sfs_ctx dst (File.File file) with
        | () -> ()
        | exception Sp_naming.Context.Already_bound _ ->
            raise (Fserr.Already_exists (Sp_naming.Sname.to_string dst)));
        Sp_obj.Door.call ~op:"fs.remove" b.sfs_domain (fun () ->
            b.sfs_remove src);
        note_change src
    | l :: rest -> Sp_sched.Rwlock.with_write l (fun () -> locked rest)
  in
  locked locks

let sole_under fs =
  match fs.sfs_unders () with
  | [ under ] -> under
  | [] -> raise (Stack_error (fs.sfs_name ^ ": not stacked on anything"))
  | _ -> raise (Stack_error (fs.sfs_name ^ ": stacked on several file systems"))

let creator_binding type_name = Sp_naming.Sname.of_string (type_name ^ "_creator")

let register_creator ctx creator =
  Sp_naming.Context.bind ctx (creator_binding creator.cr_type) (Creator creator)

let lookup_creator ctx type_name =
  match Sp_naming.Context.resolve ctx (creator_binding type_name) with
  | Creator c -> c
  | _ -> raise (Stack_error (type_name ^ ": bound object is not a creator"))
  | exception Sp_naming.Context.Unbound _ ->
      raise (Stack_error (type_name ^ ": no such creator"))

let instantiate ctx type_name ~name =
  let creator = lookup_creator ctx type_name in
  creator.cr_create ~name
