type t = {
  f_id : string;
  f_domain : Sp_obj.Sdomain.t;
  f_mem : Sp_vm.Vm_types.memory_object;
  f_read : pos:int -> len:int -> bytes;
  f_write : pos:int -> bytes -> int;
  f_stat : unit -> Sp_vm.Attr.t;
  f_set_attr : Sp_vm.Attr.t -> unit;
  f_truncate : int -> unit;
  f_sync : unit -> unit;
  f_exten : Sp_obj.Exten.t list;
}

type Sp_naming.Context.obj += File of t

(* Data crossing the file interface rides the bulk path: same-domain
   calls hand pages by reference, cross-domain calls charge exactly one
   copy through the shared bulk buffer ([Door.charge_transfer]); with the
   path disabled this degrades to the legacy full marshalling copy. *)
let read f ~pos ~len =
  let data =
    Sp_obj.Door.data_call ~op:"file.read" f.f_domain (fun () -> f.f_read ~pos ~len)
  in
  Sp_obj.Door.charge_transfer f.f_domain (Bytes.length data);
  data

let write f ~pos data =
  Sp_obj.Door.charge_transfer f.f_domain (Bytes.length data);
  Sp_obj.Door.data_call ~op:"file.write" f.f_domain (fun () -> f.f_write ~pos data)

let stat f = Sp_obj.Door.call ~op:"file.stat" f.f_domain f.f_stat

let set_attr f attr =
  Sp_obj.Door.call ~op:"file.set_attr" f.f_domain (fun () -> f.f_set_attr attr)

let truncate f len =
  Sp_obj.Door.call ~op:"file.truncate" f.f_domain (fun () -> f.f_truncate len)

let sync f = Sp_obj.Door.call ~op:"file.sync" f.f_domain f.f_sync

let read_all f =
  let attr = stat f in
  read f ~pos:0 ~len:attr.Sp_vm.Attr.len

let of_obj = function File f -> Some f | _ -> None

type mapped_ops = {
  mo_read : pos:int -> len:int -> bytes;
  mo_write : pos:int -> bytes -> int;
  mo_sync : unit -> unit;
}

let mapped_ops ~vmm ~mem ~get_attr ~set_attr_len =
  let mapping = ref None in
  let get_mapping () =
    match !mapping with
    | Some m -> m
    | None ->
        let m = Sp_vm.Vmm.map vmm mem in
        mapping := Some m;
        m
  in
  let mo_read ~pos ~len =
    let attr = get_attr () in
    let available = max 0 (attr.Sp_vm.Attr.len - pos) in
    let len = max 0 (min len available) in
    if len = 0 then Bytes.empty else Sp_vm.Vmm.read (get_mapping ()) ~pos ~len
  in
  let mo_write ~pos data =
    let len = Bytes.length data in
    if len > 0 then begin
      Sp_vm.Vmm.write (get_mapping ()) ~pos data;
      let attr = get_attr () in
      if pos + len > attr.Sp_vm.Attr.len then set_attr_len (pos + len)
      else set_attr_len attr.Sp_vm.Attr.len
    end;
    len
  in
  let mo_sync () = match !mapping with None -> () | Some m -> Sp_vm.Vmm.msync m in
  { mo_read; mo_write; mo_sync }
