(* Sp_cluster — a sharded DFS with lease-coherent client caching.
   Grows the single-server DFS into a multi-node service:

   - The exported namespace is sharded across N server nodes by hashing
     the first path component ([Sp_dir.Hash]), so a directory co-locates
     with its subtree.  Clients cache a small shard map (version +
     placement overrides) and re-fetch it when a server answers
     {!Wrong_shard} — the only time placement is ever re-read.
   - Client caching is lease-backed: a cached binding (positive or
     negative) is served warm only while the client holds an unexpired
     per-shard lease.  Leases ride existing RPCs (every successful call
     grants/renews; no extra messages), server-side namespace mutations
     push invalidations to lease holders, and a warm lease-held open
     charges zero network messages — it is a pure table lookup.
   - Robustness: lease expiry is the partition-safety valve (checked
     against [Sp_sim.Simclock], never wall time — a partitioned client's
     cache self-fences when renewals stop); each shard is a supervised
     stack (journaled disk twins under a Mirrorfs, a DFS front) restarted
     by [Sp_supervise] on node kill, with clients re-resolving by
     incarnation; retried RPCs ride [Net.rpc_retry]'s idempotency tokens
     so a lost ack cannot double-apply; and invalidation pushes go
     through the [Sp_avail.Breaker] so a partitioned client sheds
     instead of melting the mutating server (storm control). *)

module Sname = Sp_naming.Sname
module File = Sp_core.File
module Stackable = Sp_core.Stackable
module Fserr = Sp_core.Fserr
module Net = Sp_dfs.Net
module Simclock = Sp_sim.Simclock
module DL = Sp_sfs.Disk_layer

(* The contacted server does not own the path's top component under the
   authoritative map: the client's cached shard map is stale — re-fetch
   and retry. *)
exception Wrong_shard of string

(* Same-shard renames only: a cross-shard rename would be a migration,
   which is {!rebalance}'s job. *)
exception Cross_shard of string

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

type shard = {
  sh_id : int;
  sh_node : string;
  sh_disk_a : Sp_blockdev.Disk.t;
  sh_disk_b : Sp_blockdev.Disk.t;
  sh_vmm : Sp_vm.Vmm.t;
  sh_sup : Sp_supervise.t;
  sh_lv_store : string;  (* supervised level: twin mounts + mirror *)
  sh_lv_dfs : string;  (* supervised level: the DFS serving front *)
  (* Lease table: client node -> expiry (sim ns).  Granted server-side
     inside the RPC body, so a reply-loss grant errs in the safe
     direction: the server pushes invalidations to a client that will
     not serve warm. *)
  sh_leases : (string, int) Hashtbl.t;
  (* Which clients cached which served binding: path key -> (last
     component, holder set).  The push targets; a pushed holder is
     dropped (it must re-open, and re-opening re-registers). *)
  sh_served : (string, string * (string, unit) Hashtbl.t) Hashtbl.t;
  mutable sh_sub : int;  (* Name_coherence subscription handle *)
}

type centry = {
  ce_file : File.t option;  (* None = cached negative (unbound) *)
  ce_shard : int;
  ce_epoch : int;  (* Name_coherence fence epoch at insert *)
  ce_version : int;  (* shard-map version at insert *)
  ce_incarnation : int;  (* serving dfs domain id at insert *)
}

type client = {
  c_node : string;
  c_domain : Sp_obj.Sdomain.t;
  c_cluster : t;
  c_cache : (string, centry) Hashtbl.t;
  mutable c_version : int;  (* cached shard-map version *)
  c_overrides : (string, int) Hashtbl.t;  (* cached placement overrides *)
  c_lease_until : int array;  (* per-shard lease expiry, sim ns *)
  mutable c_warm_hits : int;
  mutable c_negative_hits : int;
  mutable c_cold_opens : int;
  mutable c_invalidations : int;  (* pushes received *)
  mutable c_wrong_shard : int;  (* map re-fetches forced by Wrong_shard *)
  mutable c_stale_blocked : int;  (* entries refused: lease lapsed *)
  mutable c_stale_serves : int;  (* must stay 0: warm serve past lease *)
}

and t = {
  cl_name : string;
  cl_net : Net.t;
  cl_lease_ns : int;  (* 0 = leaseless (no client caching) *)
  cl_shards : shard array;
  mutable cl_version : int;
  cl_overrides : (string, int) Hashtbl.t;  (* component -> shard id *)
  cl_clients : (string, client) Hashtbl.t;
  mutable cl_inval_sent : int;
  mutable cl_inval_shed : int;  (* shed by breaker or lost to the net *)
  mutable cl_inval_lapsed : int;  (* skipped: holder's lease already over *)
}

type client_stats = {
  cs_warm_hits : int;
  cs_negative_hits : int;
  cs_cold_opens : int;
  cs_invalidations : int;
  cs_wrong_shard : int;
  cs_stale_blocked : int;
  cs_stale_serves : int;
}

type stats = {
  s_inval_sent : int;
  s_inval_shed : int;
  s_inval_lapsed : int;
}

(* The node currently executing a mutation, for push-exclusion (its own
   cache is updated synchronously; pushing to it would only waste a
   message).  Task-local under [Sp_sched], like [Door]'s current
   domain. *)
let current_mutator : string option ref = ref None

let () =
  Sp_sched.register_tls (fun () ->
      let v = !current_mutator in
      fun () -> current_mutator := v)

(* ------------------------------------------------------------------ *)
(* Placement                                                           *)
(* ------------------------------------------------------------------ *)

let owner_of t comp =
  match Hashtbl.find_opt t.cl_overrides comp with
  | Some s -> s
  | None -> Sp_dir.Hash.bucket comp ~buckets:(Array.length t.cl_shards)

let client_owner c comp =
  match Hashtbl.find_opt c.c_overrides comp with
  | Some s -> s
  | None ->
      Sp_dir.Hash.bucket comp ~buckets:(Array.length c.c_cluster.cl_shards)

let top_component path =
  match Sname.components path with
  | c :: _ -> c
  | [] -> invalid_arg "Sp_cluster: the root has no owning shard"

let check_owner t sh path =
  let c = top_component path in
  if owner_of t c <> sh.sh_id then raise (Wrong_shard c)

(* ------------------------------------------------------------------ *)
(* Shard stacks                                                        *)
(* ------------------------------------------------------------------ *)

let top sh = Sp_supervise.current sh.sh_sup sh.sh_lv_dfs
let dfs_domain sh = (top sh).Stackable.sfs_domain

(* Route every file operation through the shard's serving (DFS) domain
   door before it reaches the store: node death must make held handles
   fail ([Dead_domain]) even though the storage domains survive a
   front-level kill.  The door charges the crossing, so the server-side
   hop stays visible in profiles. *)
let gate dfs_dom (f : File.t) =
  {
    f with
    File.f_domain = dfs_dom;
    f_read = (fun ~pos ~len -> File.read f ~pos ~len);
    f_write = (fun ~pos data -> File.write f ~pos data);
    f_stat = (fun () -> File.stat f);
    f_set_attr = (fun a -> File.set_attr f a);
    f_truncate = (fun n -> File.truncate f n);
    f_sync = (fun () -> File.sync f);
  }

let make_shard t_name ~net ~blocks ~inodes i =
  let node = Printf.sprintf "%s.n%d" t_name i in
  let label pfx = Printf.sprintf "%s.%d.%s" t_name i pfx in
  let disk_a = Sp_blockdev.Disk.create ~label:(label "a") ~blocks ()
  and disk_b = Sp_blockdev.Disk.create ~label:(label "b") ~blocks () in
  DL.mkfs ~journal:true ~inodes disk_a;
  DL.mkfs ~journal:true ~inodes disk_b;
  let vmm = Sp_vm.Vmm.create ~node (label "vmm") in
  let lv_store = label "store" and lv_dfs = label "dfs" in
  let levels =
    [
      (* One level builds the whole storage substrate: the twin journaled
         mounts and the mirror across them restart as a unit (mounting is
         crash recovery — the journals replay).  All three share ONE
         domain per incarnation: the supervisor's restart fence kills
         only the level's top domain, so if the twins had their own
         domains a fiber suspended inside an old mount would outlive the
         kill and keep writing to the raw disks behind the remounted,
         journal-replayed incarnation. *)
      Sp_supervise.level ~name:lv_store (fun ~lower:_ ->
          let dom = Sp_obj.Sdomain.create ~node lv_store in
          let a = DL.mount ~node ~domain:dom ~name:(label "a") disk_a in
          let b = DL.mount ~node ~domain:dom ~name:(label "b") disk_b in
          let mir = Sp_mirrorfs.Mirrorfs.make ~node ~domain:dom ~vmm ~name:lv_store () in
          Stackable.stack_on mir a;
          Stackable.stack_on mir b;
          mir);
      Sp_supervise.level ~name:lv_dfs (fun ~lower ->
          let fs = Sp_dfs.Dfs.make_server ~node ~net ~vmm ~name:lv_dfs () in
          Stackable.stack_on fs (Option.get lower);
          fs);
    ]
  in
  let sup = Sp_supervise.supervise ~name:(Printf.sprintf "%s.%d" t_name i) levels in
  {
    sh_id = i;
    sh_node = node;
    sh_disk_a = disk_a;
    sh_disk_b = disk_b;
    sh_vmm = vmm;
    sh_sup = sup;
    sh_lv_store = lv_store;
    sh_lv_dfs = lv_dfs;
    sh_leases = Hashtbl.create 8;
    sh_served = Hashtbl.create 32;
    sh_sub = -1;
  }

(* ------------------------------------------------------------------ *)
(* Server-side lease bookkeeping and invalidation push                 *)
(* ------------------------------------------------------------------ *)

let grant t sh cnode =
  if t.cl_lease_ns > 0 then
    Hashtbl.replace sh.sh_leases cnode (Simclock.now () + t.cl_lease_ns)

let record_served t sh key comp cnode =
  if t.cl_lease_ns > 0 then begin
    let holders =
      match Hashtbl.find_opt sh.sh_served key with
      | Some (_, h) -> h
      | None ->
          let h = Hashtbl.create 4 in
          Hashtbl.replace sh.sh_served key (comp, h);
          h
    in
    Hashtbl.replace holders cnode ()
  end

let inval_breaker sh cnode = "cl.inval:" ^ sh.sh_node ^ ">" ^ cnode

(* Push one invalidation, best-effort: a single attempt behind the
   per-destination circuit breaker.  A partitioned or dead client costs
   the server one timeout window, trips its breaker, and every further
   push to it sheds until the cooldown's half-open probe — lease expiry
   covers whatever the client missed.  This is what keeps an
   invalidation storm (one hot directory, many holders) from melting
   the mutating server. *)
let push_one t sh key cnode =
  match Hashtbl.find_opt t.cl_clients cnode with
  | None -> ()
  | Some cl -> (
      let bk = inval_breaker sh cnode in
      match Sp_avail.Breaker.blocking bk with
      | Some _ ->
          Sp_sim.Metrics.incr_avail_shed ();
          t.cl_inval_shed <- t.cl_inval_shed + 1
      | None -> (
          let am_probe = Sp_avail.Breaker.probing bk in
          match
            Net.rpc t.cl_net ~src:sh.sh_node ~dst:cnode ~bytes:32 (fun () ->
                Hashtbl.remove cl.c_cache key;
                cl.c_invalidations <- cl.c_invalidations + 1)
          with
          | () ->
              Sp_avail.Breaker.note_ok bk;
              t.cl_inval_sent <- t.cl_inval_sent + 1
          | exception Net.Timeout _ ->
              if am_probe then Sp_avail.Breaker.abort_probe bk;
              Sp_avail.Breaker.trip ~reason:"invalidation timeout" bk;
              t.cl_inval_shed <- t.cl_inval_shed + 1))

(* A binding whose last component is [comp] changed somewhere in the
   process.  If this shard served bindings with that component to lease
   holders, push them an invalidation (except the mutating client — its
   cache is updated synchronously) and forget the registration: a
   dropped holder re-registers when it re-opens. *)
let on_change t sh comp =
  if Hashtbl.length sh.sh_served > 0 then begin
    let targets = ref [] in
    Hashtbl.iter
      (fun key (kcomp, holders) ->
        if String.equal kcomp comp then
          Hashtbl.iter
            (fun cnode () -> targets := (key, cnode) :: !targets)
            holders)
      sh.sh_served;
    let targets = List.sort compare !targets in
    let now = Simclock.now () in
    List.iter
      (fun (key, cnode) ->
        (match Hashtbl.find_opt sh.sh_served key with
        | Some (_, holders) ->
            Hashtbl.remove holders cnode;
            if Hashtbl.length holders = 0 then Hashtbl.remove sh.sh_served key
        | None -> ());
        if !current_mutator <> Some cnode then
          match Hashtbl.find_opt sh.sh_leases cnode with
          | Some exp when now < exp -> push_one t sh key cnode
          | Some _ ->
              (* Lease already over: the holder's cache self-fences on
                 its own clock, so a push would be a wasted message —
                 but count the skip, or a partition that outlives the
                 lease looks indistinguishable from a working push
                 path. *)
              Hashtbl.remove sh.sh_leases cnode;
              t.cl_inval_lapsed <- t.cl_inval_lapsed + 1
          | None -> ())
      targets
  end

(* ------------------------------------------------------------------ *)
(* Cluster construction                                                *)
(* ------------------------------------------------------------------ *)

let default_lease_ns = 25_000_000

let make ?(name = "cluster") ?(lease_ns = default_lease_ns) ?(blocks = 4096)
    ?(inodes = 256) ~net ~nodes () =
  if nodes < 1 then invalid_arg "Sp_cluster.make: nodes < 1";
  let t =
    {
      cl_name = name;
      cl_net = net;
      cl_lease_ns = lease_ns;
      cl_shards = [||];
      cl_version = 1;
      cl_overrides = Hashtbl.create 8;
      cl_clients = Hashtbl.create 8;
      cl_inval_sent = 0;
      cl_inval_shed = 0;
      cl_inval_lapsed = 0;
    }
  in
  let shards = Array.init nodes (make_shard name ~net ~blocks ~inodes) in
  let t = { t with cl_shards = shards } in
  Array.iter
    (fun sh -> sh.sh_sub <- Sp_naming.Name_coherence.subscribe_handle (on_change t sh))
    shards;
  t

let shutdown t =
  Array.iter
    (fun sh ->
      Sp_naming.Name_coherence.unsubscribe sh.sh_sub;
      Sp_supervise.unsupervise sh.sh_sup;
      Hashtbl.iter
        (fun cnode _ -> Sp_avail.Breaker.reset (inval_breaker sh cnode))
        t.cl_clients)
    t.cl_shards;
  Hashtbl.reset t.cl_clients

let nodes t = Array.length t.cl_shards
let shard_node t i = t.cl_shards.(i).sh_node
let shard_disks t i = (t.cl_shards.(i).sh_disk_a, t.cl_shards.(i).sh_disk_b)
let shard_sup t i = t.cl_shards.(i).sh_sup
let owner t path = owner_of t (top_component path)
let lease_ns t = t.cl_lease_ns
let stats t =
  {
    s_inval_sent = t.cl_inval_sent;
    s_inval_shed = t.cl_inval_shed;
    s_inval_lapsed = t.cl_inval_lapsed;
  }

let restarts t =
  Array.fold_left (fun acc sh -> acc + Sp_supervise.restarts sh.sh_sup) 0 t.cl_shards

(* Fail-stop the shard's serving front (the next door call into it
   raises [Dead_domain]; a supervised retry rebuilds it).  With
   [~store:true] the storage level dies instead — the supervisor then
   rebuilds the whole stack from the twin remounts up, and the remounts
   replay the journals (full crash recovery, not just a front swap). *)
let kill_shard ?(store = false) t i =
  let sh = t.cl_shards.(i) in
  Sp_supervise.kill sh.sh_sup (if store then sh.sh_lv_store else sh.sh_lv_dfs)

(* The server-side view of a shard's stack, for sweeps' direct
   verification reads (no network, no client cache). *)
let shard_top t i = top t.cl_shards.(i)

(* ------------------------------------------------------------------ *)
(* Rebalance                                                           *)
(* ------------------------------------------------------------------ *)

(* Move the namespace under top component [comp] to shard [to_]: copy
   the file (or the directory's files) across, flip the placement
   override, bump the map version.  Clients keep using their cached map
   until the old owner answers {!Wrong_shard}.  The emptied source
   directory is left as a husk — placement routes every future access
   to the new owner.  Migration bytes cross the wire once per file. *)
let rebalance t comp ~to_ =
  let n = Array.length t.cl_shards in
  if to_ < 0 || to_ >= n then invalid_arg "Sp_cluster.rebalance: bad shard";
  let src = owner_of t comp in
  if src <> to_ then begin
    let s_sh = t.cl_shards.(src) and d_sh = t.cl_shards.(to_) in
    let s_top = top s_sh and d_top = top d_sh in
    let path = Sname.of_components [ comp ] in
    let migrate_file sub =
      match Sp_naming.Context.resolve s_top.Stackable.sfs_ctx sub with
      | File.File f ->
          let data = File.read_all f in
          Net.rpc t.cl_net ~src:s_sh.sh_node ~dst:d_sh.sh_node
            ~bytes:(Bytes.length data) (fun () -> ());
          let nf = Stackable.create d_top sub in
          ignore (File.write nf ~pos:0 data);
          Stackable.remove s_top sub
      | _ -> ()
      | exception Sp_naming.Context.Unbound _ -> ()
    in
    (match Sp_naming.Context.resolve s_top.Stackable.sfs_ctx path with
    | File.File _ -> migrate_file path
    | Sp_naming.Context.Context _ ->
        Stackable.mkdir d_top path;
        let names = Stackable.listdir s_top path in
        List.iter (fun nm -> migrate_file (Sname.append path nm)) names
    | _ -> ()
    | exception Sp_naming.Context.Unbound _ -> ());
    Stackable.sync d_top;
    Stackable.sync s_top;
    Hashtbl.replace t.cl_overrides comp to_;
    t.cl_version <- t.cl_version + 1;
    (* The moved name changed owners: holders of [comp] bindings must
       re-resolve (and will then trip Wrong_shard and re-fetch). *)
    Sp_naming.Name_coherence.note_change comp
  end

(* ------------------------------------------------------------------ *)
(* Clients                                                             *)
(* ------------------------------------------------------------------ *)

let connect t ~node =
  let c =
    {
      c_node = node;
      c_domain = Sp_obj.Sdomain.create ~node (t.cl_name ^ "-client:" ^ node);
      c_cluster = t;
      c_cache = Hashtbl.create 32;
      c_version = t.cl_version;
      c_overrides = Hashtbl.copy t.cl_overrides;
      c_lease_until = Array.make (Array.length t.cl_shards) 0;
      c_warm_hits = 0;
      c_negative_hits = 0;
      c_cold_opens = 0;
      c_invalidations = 0;
      c_wrong_shard = 0;
      c_stale_blocked = 0;
      c_stale_serves = 0;
    }
  in
  Hashtbl.replace t.cl_clients node c;
  c

let client_stats c =
  {
    cs_warm_hits = c.c_warm_hits;
    cs_negative_hits = c.c_negative_hits;
    cs_cold_opens = c.c_cold_opens;
    cs_invalidations = c.c_invalidations;
    cs_wrong_shard = c.c_wrong_shard;
    cs_stale_blocked = c.c_stale_blocked;
    cs_stale_serves = c.c_stale_serves;
  }

let lease_valid c s = Simclock.now () < c.c_lease_until.(s)

(* The client's own expiry bound for its lease on shard [s] — what the
   partition sweeps use to decide which warm serves were legal. *)
let lease_deadline c s = c.c_lease_until.(s)

(* Re-fetch the shard map from the first reachable shard (one small
   RPC); raises [Io_error] when every shard is unreachable. *)
let refetch_map c =
  let t = c.c_cluster in
  let n = Array.length t.cl_shards in
  let rec go i =
    if i >= n then
      raise (Fserr.Io_error (t.cl_name ^ ": no shard reachable for map re-fetch"))
    else
      let sh = t.cl_shards.(i) in
      match
        Net.rpc_retry ~retries:1 t.cl_net ~src:c.c_node ~dst:sh.sh_node ~bytes:128
          (fun () ->
            ( t.cl_version,
              Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.cl_overrides [] ))
      with
      | version, overrides ->
          c.c_version <- version;
          Hashtbl.reset c.c_overrides;
          List.iter (fun (k, v) -> Hashtbl.replace c.c_overrides k v) overrides
      | exception (Net.Timeout _ | Fserr.Io_error _) -> go (i + 1)
  in
  go 0

(* Run [f shard] server-side on the owning shard, under ownership check
   and lease grant, re-fetching the map on {!Wrong_shard}.  [f] runs
   inside one [rpc_retry] (idempotency-token) envelope. *)
let with_placement c path ~bytes f =
  let t = c.c_cluster in
  let rec go tries =
    let s = client_owner c (top_component path) in
    let sh = t.cl_shards.(s) in
    match
      Net.rpc_retry t.cl_net ~src:c.c_node ~dst:sh.sh_node ~bytes (fun () ->
          check_owner t sh path;
          let v = f sh in
          grant t sh c.c_node;
          v)
    with
    | v ->
        if t.cl_lease_ns > 0 then
          c.c_lease_until.(s) <- Simclock.now () + t.cl_lease_ns;
        (s, v)
    | exception Wrong_shard _ when tries < 3 ->
        c.c_wrong_shard <- c.c_wrong_shard + 1;
        refetch_map c;
        go (tries + 1)
  in
  go 0

let wrap_remote c s (f_srv : File.t) =
  let t = c.c_cluster in
  Sp_dfs.Dfs.remote_file t.cl_net ~client:c.c_node ~client_domain:c.c_domain
    ~server:t.cl_shards.(s).sh_node f_srv

let cache_store c key s obj =
  let t = c.c_cluster in
  if t.cl_lease_ns > 0 then
    Hashtbl.replace c.c_cache key
      {
        ce_file = obj;
        ce_shard = s;
        ce_epoch = Sp_naming.Name_coherence.epoch ();
        ce_version = c.c_version;
        ce_incarnation = Sp_obj.Sdomain.id (dfs_domain t.cl_shards.(s));
      }

(* A warm entry serves only while: the lease on its shard is unexpired
   (the partition-safety valve — [c_stale_blocked] counts the valve
   firing, and [c_stale_serves] would count a serve that slipped past
   it, asserted 0 by the sweep), no restart fenced the epoch, the shard
   map hasn't moved, and the serving incarnation is unchanged. *)
let cache_lookup c key =
  let t = c.c_cluster in
  match Hashtbl.find_opt c.c_cache key with
  | None -> None
  | Some e ->
      let lease_ok = lease_valid c e.ce_shard in
      let fresh =
        lease_ok
        && e.ce_epoch = Sp_naming.Name_coherence.epoch ()
        && e.ce_version = c.c_version
        && e.ce_incarnation
           = Sp_obj.Sdomain.id (dfs_domain t.cl_shards.(e.ce_shard))
      in
      if fresh then begin
        if not (lease_valid c e.ce_shard) then
          c.c_stale_serves <- c.c_stale_serves + 1;
        Some e
      end
      else begin
        if not lease_ok then c.c_stale_blocked <- c.c_stale_blocked + 1;
        Hashtbl.remove c.c_cache key;
        None
      end

let as_mutator c f =
  let saved = !current_mutator in
  current_mutator := Some c.c_node;
  Fun.protect ~finally:(fun () -> current_mutator := saved) f

let no_such path = raise (Fserr.No_such_file (Sname.to_string path))

(* The headline operation.  Warm (lease-held, pushed-coherent) hits are
   answered from the client table with zero network messages and zero
   simulated time; everything else is one RPC to the owning shard. *)
let open_file c path =
  let key = Sname.to_string path in
  match cache_lookup c key with
  | Some { ce_file = Some f; _ } ->
      c.c_warm_hits <- c.c_warm_hits + 1;
      f
  | Some { ce_file = None; _ } ->
      c.c_negative_hits <- c.c_negative_hits + 1;
      no_such path
  | None -> (
      let s, found =
        with_placement c path ~bytes:64 (fun sh ->
            let t = c.c_cluster in
            match Stackable.open_file (top sh) path with
            | f ->
                record_served t sh key
                  (List.hd (List.rev (Sname.components path)))
                  c.c_node;
                Some (gate (dfs_domain sh) f)
            | exception Fserr.No_such_file _ ->
                record_served t sh key
                  (List.hd (List.rev (Sname.components path)))
                  c.c_node;
                None)
      in
      c.c_cold_opens <- c.c_cold_opens + 1;
      match found with
      | Some f_srv ->
          let rf = wrap_remote c s f_srv in
          cache_store c key s (Some rf);
          rf
      | None ->
          cache_store c key s None;
          no_such path)

let create c path =
  let key = Sname.to_string path in
  as_mutator c (fun () ->
      let s, f_srv =
        with_placement c path ~bytes:64 (fun sh ->
            let t = c.c_cluster in
            let f = Stackable.create (top sh) path in
            record_served t sh key
              (List.hd (List.rev (Sname.components path)))
              c.c_node;
            gate (dfs_domain sh) f)
      in
      let rf = wrap_remote c s f_srv in
      cache_store c key s (Some rf);
      rf)

let mkdir c path =
  as_mutator c (fun () ->
      ignore (with_placement c path ~bytes:64 (fun sh -> Stackable.mkdir (top sh) path)))

let remove c path =
  let key = Sname.to_string path in
  as_mutator c (fun () ->
      let s, () =
        with_placement c path ~bytes:64 (fun sh -> Stackable.remove (top sh) path)
      in
      cache_store c key s None)

let rename c ~src ~dst =
  let s_own = client_owner c (top_component src)
  and d_own = client_owner c (top_component dst) in
  if s_own <> d_own then
    raise
      (Cross_shard
         (Printf.sprintf "rename %s -> %s crosses shards %d -> %d"
            (Sname.to_string src) (Sname.to_string dst) s_own d_own));
  as_mutator c (fun () ->
      ignore
        (with_placement c src ~bytes:64 (fun sh ->
             check_owner c.c_cluster sh dst;
             Stackable.rename (top sh) ~src ~dst)));
  Hashtbl.remove c.c_cache (Sname.to_string src);
  Hashtbl.remove c.c_cache (Sname.to_string dst)

(* Cursor readdir over the owning shard (one RPC per batch, like the
   DFS import).  Root readdir merges the shards' root listings,
   filtered by ownership so a rebalance husk never shows through. *)
let readdir c path ~cookie ~limit =
  let _, r =
    with_placement c path ~bytes:64 (fun sh ->
        Stackable.readdir (top sh) path ~cookie ~limit)
  in
  r

let listdir c path =
  match Sname.components path with
  | [] ->
      let t = c.c_cluster in
      let all = ref [] in
      Array.iter
        (fun sh ->
          let names =
            Net.rpc_retry t.cl_net ~src:c.c_node ~dst:sh.sh_node ~bytes:64
              (fun () -> Stackable.listdir (top sh) path)
          in
          List.iter
            (fun nm -> if client_owner c nm = sh.sh_id then all := nm :: !all)
            names)
        t.cl_shards;
      List.sort String.compare !all
  | _ ->
      List.sort String.compare
        (Sp_dir.Cursor.drain (fun ~cookie ~limit -> readdir c path ~cookie ~limit))

(* Durable cut on the shard owning [path]. *)
let sync_path c path =
  ignore (with_placement c path ~bytes:16 (fun sh -> Stackable.sync (top sh)))

let sync_all c =
  let t = c.c_cluster in
  Array.iter
    (fun sh ->
      ignore
        (Net.rpc_retry t.cl_net ~src:c.c_node ~dst:sh.sh_node ~bytes:16 (fun () ->
             Stackable.sync (top sh))))
    t.cl_shards
