(** Shard crash/partition sweep for {!Sp_cluster} — the clustered
    sibling of [Sp_failover.Layer_crash_sweep].

    A fresh N-shard cluster is built per point; C concurrent [Sp_sched]
    client tasks run a seeded workload (slot writes to a private file,
    periodic syncs, hot-directory churn driving invalidation pushes),
    every op under [Sp_avail.call] with a deadline.

    {e Kill mode} (default) fail-stops one shard's serving domain at
    every (strided) global op boundary — alternating the DFS front and
    the storage level, whose rebuild remounts the journaled twins.  A
    point is [Served] only if the event-ordered per-slot durability
    floor holds, no warm serve ever crossed a lease bound, every op
    completed or failed within its deadline, fsck of every shard's twin
    disks is clean, and the supervisor actually restarted.

    {e Partition mode} cuts the network between a rotating victim
    client and the hot shard instead.  [Served] requires: warm
    (zero-message) service while partitioned and lease-held, the lease
    expiry valve firing afterwards (no serve past the bound, ever), the
    lost invalidation pushes shed through the breaker, and the mutated
    content observed after healing.  With [lease_ns = 0] every point
    must end [Unavailable] — the leaseless control. *)

type outcome =
  | Served
  | Unavailable of string  (** no warm service / a loud failure escaped *)
  | Lost of string  (** a pinned slot value, or lease safety, was violated *)
  | Corrupt of string  (** fsck damage, or the harness contract broke *)

type report = {
  dr_nodes : int;
  dr_clients : int;
  dr_ops : int;  (** per-client ops actually run *)
  dr_seed : int;
  dr_lease_ns : int;
  dr_partition : bool;
  dr_points : int;
  dr_served : int;
  dr_unavailable : int;
  dr_lost : int;
  dr_corrupt : int;
  dr_restarts : int;
  dr_warm_hits : int;  (** opens served from lease caches, zero messages *)
  dr_cold_opens : int;
  dr_inval_sent : int;
  dr_inval_shed : int;
  dr_inval_lapsed : int;
      (** pushes skipped because the holder's lease had already lapsed *)
  dr_stale_blocked : int;  (** cache entries refused: lease lapsed *)
  dr_stale_serves : int;  (** warm serves past the lease bound — must be 0 *)
  dr_wrong_shard : int;  (** shard-map re-fetches *)
  dr_op_served : int;
  dr_op_retried : int;
  dr_op_shed : int;
  dr_op_failed : int;
  dr_deadline_misses : int;
  dr_max_recover_ns : int;  (** worst kill -> first-served-again gap *)
  dr_first_bad : (string * int * string) option;  (** mode, point, message *)
}

(** Sweep every (strided) global op boundary.  [ops] is the total op
    budget; each client runs [max 8 (ops / clients)] ops.
    [op_deadline_ns] (default 1s virtual) bounds every client op
    through [Sp_avail.call]. *)
val sweep :
  ?stride:int ->
  ?partition:bool ->
  ?lease_ns:int ->
  ?op_deadline_ns:int ->
  nodes:int ->
  clients:int ->
  ops:int ->
  seed:int ->
  unit ->
  report

(** One-line machine-readable verdict (CI greps this). *)
val summary : report -> string

val pp_report : Format.formatter -> report -> unit
