(** Sp_cluster — a sharded DFS with lease-coherent client caching.

    The exported namespace is sharded across N supervised server nodes
    (journaled disk twins under a Mirrorfs, a DFS front) by hashing the
    first path component; clients cache a small shard map and re-fetch it
    on {!Wrong_shard}.  Client attribute/name caching is lease-backed:
    entries serve warm — zero network messages — only while the client
    holds an unexpired per-shard lease ([Sp_sim.Simclock], never wall
    time), leases ride ordinary RPCs, server-side mutations push
    invalidations through per-destination [Sp_avail] circuit breakers
    (storm shedding), and lease expiry is the partition-safety valve:
    a client that stops hearing from a shard stops serving its cache. *)

type t
type client

(** The contacted shard does not own the path under the authoritative
    map; the client re-fetches its shard map and retries (handled
    internally by the client operations — escapes only if the map churns
    faster than the retry bound). *)
exception Wrong_shard of string

(** Raised by {!rename} when source and destination hash to different
    shards; cross-shard moves are {!rebalance}'s job. *)
exception Cross_shard of string

(** {1 Cluster lifecycle} *)

val default_lease_ns : int

(** [make ~net ~nodes ()] builds an [nodes]-shard cluster on [net].
    [lease_ns = 0] runs leaseless: clients cache nothing and every open
    pays a round trip (the control arm for the lease experiments).
    [blocks]/[inodes] size each shard's twin volumes. *)
val make :
  ?name:string ->
  ?lease_ns:int ->
  ?blocks:int ->
  ?inodes:int ->
  net:Sp_dfs.Net.t ->
  nodes:int ->
  unit ->
  t

(** Detach coherence subscriptions, unsupervise every shard, reset the
    invalidation breakers, and drop clients.  Sweeps call this per
    point so rebuilt clusters never receive a dead predecessor's
    callbacks. *)
val shutdown : t -> unit

val nodes : t -> int
val shard_node : t -> int -> string
val lease_ns : t -> int

(** The shard's twin disks, for direct fsck in sweeps. *)
val shard_disks : t -> int -> Sp_blockdev.Disk.t * Sp_blockdev.Disk.t

val shard_sup : t -> int -> Sp_supervise.t

(** Authoritative owning shard of a path (by its first component). *)
val owner : t -> Sp_naming.Sname.t -> int

(** Current server-side top of a shard's stack — verification reads
    that must bypass the network and client caches. *)
val shard_top : t -> int -> Sp_core.Stackable.t

(** Fail-stop the shard's serving (DFS) front; the supervisor rebuilds
    it on the next client operation that trips [Dead_domain].
    [~store:true] kills the storage level instead: the rebuild remounts
    the journaled twins (journal replay — full crash recovery). *)
val kill_shard : ?store:bool -> t -> int -> unit

(** Total supervised restarts across shards. *)
val restarts : t -> int

(** Move the namespace under a top-level component to another shard:
    data crosses the wire once, the placement override flips, the map
    version bumps, and stale clients converge via {!Wrong_shard}. *)
val rebalance : t -> string -> to_:int -> unit

(** {1 Clients} *)

(** Connect a caching client at [node].  Clients are single-task
    actors; concurrent workloads connect one client per task. *)
val connect : t -> node:string -> client

(** Open through the lease cache.  A warm hit (lease held, epoch and
    map and incarnation unchanged) returns the cached remote proxy with
    zero network messages; a cached negative raises [No_such_file] the
    same way.  Cold opens cost one RPC to the owning shard and register
    the client for invalidation pushes. *)
val open_file : client -> Sp_naming.Sname.t -> Sp_core.File.t

val create : client -> Sp_naming.Sname.t -> Sp_core.File.t
val mkdir : client -> Sp_naming.Sname.t -> unit
val remove : client -> Sp_naming.Sname.t -> unit

(** The client's own expiry bound ([Sp_sim.Simclock] ns) for its lease
    on a shard: after this instant the client refuses its cached
    entries for that shard.  0 until the first contact. *)
val lease_deadline : client -> int -> int

(** Same-shard rename (raises {!Cross_shard} otherwise). *)
val rename : client -> src:Sp_naming.Sname.t -> dst:Sp_naming.Sname.t -> unit

(** One cursor batch from the owning shard (one RPC per batch). *)
val readdir :
  client -> Sp_naming.Sname.t -> cookie:int -> limit:int -> string list * int option

(** Sorted listing; the root merges every shard's view filtered by
    ownership (rebalance husks never show through). *)
val listdir : client -> Sp_naming.Sname.t -> string list

(** Durable cut on the shard owning [path] / on every shard. *)
val sync_path : client -> Sp_naming.Sname.t -> unit

val sync_all : client -> unit

(** {1 Statistics} *)

type client_stats = {
  cs_warm_hits : int;  (** opens served from cache, zero messages *)
  cs_negative_hits : int;  (** cached-negative opens, zero messages *)
  cs_cold_opens : int;
  cs_invalidations : int;  (** pushes received *)
  cs_wrong_shard : int;  (** map re-fetches forced by {!Wrong_shard} *)
  cs_stale_blocked : int;  (** cache entries refused: lease lapsed *)
  cs_stale_serves : int;  (** warm serves past the lease — must be 0 *)
}

val client_stats : client -> client_stats

type stats = {
  s_inval_sent : int;  (** invalidation pushes delivered *)
  s_inval_shed : int;  (** pushes shed by breakers or lost to the net *)
  s_inval_lapsed : int;
      (** pushes skipped because the holder's lease had already lapsed
          (the holder's cache self-fences on its own clock) *)
}

val stats : t -> stats
