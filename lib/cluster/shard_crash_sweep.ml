(* Shard crash/partition sweep for [Sp_cluster] — the clustered sibling
   of [Sp_failover.Layer_crash_sweep].

   A fresh N-shard cluster is built per point and C concurrent
   [Sp_sched] client tasks run a seeded workload (slot writes to a
   private per-client file, periodic syncs, warm opens, hot-directory
   churn that exercises the invalidation push).  Two fault modes:

   - {e kill} (default): at a swept (strided) global op boundary one
     shard's serving domain is fail-stopped — alternating the DFS front
     and the storage level (whose rebuild remounts the journaled twins:
     full crash recovery).  Clients ride through via [Sp_avail.call];
     verification applies the event-ordered per-slot durability floor
     (a slot value is pinned iff its newest completed write either
     completed before the client's last pre-kill sync or started after
     recovery), demands zero stale lease serves, a bounded kill ->
     served-again gap, and a clean fsck of every shard's twin disks.

   - {e partition}: no kill; at the swept boundary the network between
     one victim client and the hot shard is cut.  While partitioned the
     victim's lease-held cache keeps serving warm (the availability
     win), a mutator rewrites two bindings the victim has cached (the
     pushes time out and then shed through the breaker), and once the
     lease expires the victim's cache self-fences — warm service stops,
     loudly.  After healing, the victim must observe the mutated
     content.  Zero warm serves past the lease bound, ever.  The
     leaseless control ([lease_ns = 0]) has no warm service at all
     while partitioned, so every point ends [Unavailable] — the control
     demonstrating the leases are what buy availability, and the lease
     {e expiry} is what keeps them safe. *)

module File = Sp_core.File
module Stackable = Sp_core.Stackable
module Fserr = Sp_core.Fserr
module Sname = Sp_naming.Sname
module Net = Sp_dfs.Net
module Rng = Sp_fault.Rng
module Simclock = Sp_sim.Simclock


type outcome =
  | Served
  | Unavailable of string
  | Lost of string
  | Corrupt of string

type report = {
  dr_nodes : int;
  dr_clients : int;
  dr_ops : int;  (* per-client ops *)
  dr_seed : int;
  dr_lease_ns : int;
  dr_partition : bool;
  dr_points : int;
  dr_served : int;
  dr_unavailable : int;
  dr_lost : int;
  dr_corrupt : int;
  dr_restarts : int;
  dr_warm_hits : int;  (* opens served from lease caches, zero messages *)
  dr_cold_opens : int;
  dr_inval_sent : int;  (* invalidation pushes delivered *)
  dr_inval_shed : int;  (* pushes shed (breaker open) or lost to the net *)
  dr_inval_lapsed : int;  (* pushes skipped: holder's lease already over *)
  dr_stale_blocked : int;  (* cache entries refused: lease lapsed *)
  dr_stale_serves : int;  (* warm serves past the lease bound: must be 0 *)
  dr_wrong_shard : int;  (* shard-map re-fetches *)
  dr_op_served : int;
  dr_op_retried : int;
  dr_op_shed : int;
  dr_op_failed : int;
  dr_deadline_misses : int;
  dr_max_recover_ns : int;  (* worst kill -> first-served-again gap *)
  dr_first_bad : (string * int * string) option;  (* mode, point, message *)
}

let slots = 8
let slot_bytes = 512
let marker_bytes = 16

let slot_data k slot seq =
  Bytes.init slot_bytes (fun j ->
      Char.chr (((k * 31) + (slot * 7) + (seq * 13) + j) land 0xff))

let marker tag seq =
  Bytes.init marker_bytes (fun j -> Char.chr (((tag * 5) + (seq * 11) + j) land 0xff))

let dir_path k = Sname.of_components [ "d" ^ string_of_int k ]
let file_path k = Sname.of_components [ "d" ^ string_of_int k; "f" ]
let hot_dir = Sname.of_components [ "hot" ]
let hot_file k = Sname.of_components [ "hot"; "m" ^ string_of_int k ]
let hot_x = Sname.of_components [ "hot"; "x" ]
let hot_y = Sname.of_components [ "hot"; "y" ]

(* One slot write attempted by a client: event-ordered like
   [Layer_crash_sweep]'s [wrec], but whole-slot so the floor check is
   per slot value, not per byte. *)
type wrec = {
  w_slot : int;
  w_seq : int;  (* event seq at op start *)
  mutable w_done : int;  (* event seq at successful completion; -1 if not *)
  w_data : bytes;
}

(* Same sizing rationale as Layer_crash_sweep's policy: the retry
   series must keep probing past a journal-replay remount. *)
let policy =
  Sp_avail.Backoff.make ~base_ns:2_000_000 ~max_delay_ns:50_000_000
    ~max_attempts:16 ()

let client_breaker k = "dsw:c" ^ string_of_int k

(* ------------------------------------------------------------------ *)
(* Point setup                                                         *)
(* ------------------------------------------------------------------ *)

(* Fixed cluster/client names every point: layer registries are keyed
   by instance name, so rebuilt points replace their predecessors
   instead of accumulating. *)
let setup ~net ~nodes ~clients ~lease_ns =
  let t = Cluster.make ~name:"dsw" ~lease_ns ~net ~nodes () in
  let cls =
    Array.init clients (fun k -> Cluster.connect t ~node:("c" ^ string_of_int k))
  in
  for k = 0 to clients - 1 do
    Cluster.mkdir cls.(k) (dir_path k);
    let f = Cluster.create cls.(k) (file_path k) in
    for slot = 0 to slots - 1 do
      ignore (File.write f ~pos:(slot * slot_bytes) (slot_data k slot 0))
    done
  done;
  Cluster.mkdir cls.(0) hot_dir;
  for k = 0 to clients - 1 do
    let f = Cluster.create cls.(k) (hot_file k) in
    ignore (File.write f ~pos:0 (marker k 0))
  done;
  List.iter
    (fun (p, tag) ->
      let f = Cluster.create cls.(0) p in
      ignore (File.write f ~pos:0 (marker tag 0)))
    [ (hot_x, 101); (hot_y, 102) ];
  Cluster.sync_all cls.(0);
  (t, cls)

(* The acceptance-criterion metric assertion: with leases on, an open
   of an entry just minted must cross the network zero times. *)
let warm_zero_message_check cls =
  (* First open may be cold (setup's syncs can outlive the lease); it
     re-grants the lease.  The immediately-following open must then be a
     warm hit: zero simulated time, zero network messages. *)
  ignore (Cluster.open_file cls.(0) hot_x);
  let before = Sp_sim.Metrics.net_messages () in
  ignore (Cluster.open_file cls.(0) hot_x);
  let d = Sp_sim.Metrics.net_messages () - before in
  if d = 0 then None
  else Some (Printf.sprintf "warm lease-held open charged %d network messages" d)

let teardown t =
  Sp_fault.disarm ();
  Cluster.shutdown t

(* ------------------------------------------------------------------ *)
(* Verification                                                        *)
(* ------------------------------------------------------------------ *)

let zeros = Bytes.make slot_bytes '\000'

let slot_slice data slot =
  let b = Bytes.make slot_bytes '\000' in
  let pos = slot * slot_bytes in
  let avail = max 0 (min slot_bytes (Bytes.length data - pos)) in
  if avail > 0 then Bytes.blit data pos b 0 avail;
  b

(* Per-slot durability floor.  [cut.(k)] is the highest op-start event
   watermark covered by a sync of client [k] that completed before the
   kill; [safe_after] is the recovery watermark (-1 with no kill: every
   completed write is pinned; [max_int] if recovery was never
   observed).  The served slot value must be the newest pinned write or
   any write newer than it (vulnerable window / failed attempts). *)
let verify_slots t recs cut ~safe_after =
  let problem = ref None in
  let fail fmt =
    Printf.ksprintf (fun m -> if !problem = None then problem := Some m) fmt
  in
  Array.iteri
    (fun k rl ->
      let path = file_path k in
      let got =
        try
          Sp_supervise.call (fun () ->
              File.read_all
                (Stackable.open_file (Cluster.shard_top t (Cluster.owner t path)) path))
        with
        | Fserr.Io_error m | Fserr.Checksum_error m ->
            fail "d%d/f unreadable after recovery: %s" k m;
            Bytes.empty
      in
      for slot = 0 to slots - 1 do
        if !problem = None then begin
          let rl = List.filter (fun r -> r.w_slot = slot) rl in
          (* newest first *)
          let rec split newer = function
            | [] -> (List.rev newer, None)
            | r :: _
              when r.w_done >= 0 && (r.w_done <= cut.(k) || r.w_seq > safe_after)
              ->
                (List.rev newer, Some r)
            | r :: rest -> split (r :: newer) rest
          in
          let newer, pinned = split [] rl in
          let allowed =
            (match pinned with Some r -> [ r.w_data ] | None -> [ zeros ])
            @ List.map (fun r -> r.w_data) newer
          in
          let slice = slot_slice got slot in
          if not (List.exists (fun d -> Bytes.equal d slice) allowed) then
            fail "d%d/f slot %d holds none of the %d admissible values%s" k slot
              (List.length allowed)
              (match pinned with
              | Some r -> Printf.sprintf " (pinned write seq %d lost)" r.w_seq
              | None -> "")
        end
      done)
    recs;
  !problem

let fsck_all t =
  let nodes = Cluster.nodes t in
  let problem = ref None in
  for i = 0 to nodes - 1 do
    if !problem = None then begin
      let a, b = Cluster.shard_disks t i in
      List.iter
        (fun (disk, twin) ->
          if !problem = None then
            match Sp_sfs.Fsck.check disk with
            | [] -> ()
            | p :: rest ->
                problem :=
                  Some
                    (Format.asprintf "shard %d twin %s: %a%s" i twin
                       Sp_sfs.Fsck.pp_problem p
                       (if rest = [] then ""
                        else Printf.sprintf " (+%d more)" (List.length rest))))
        [ (a, "a"); (b, "b") ]
    end
  done;
  !problem

let sum_client_stats cls =
  Array.fold_left
    (fun (w, c, inv, ws, sb, ss) cl ->
      let s = Cluster.client_stats cl in
      ( w + s.Cluster.cs_warm_hits + s.Cluster.cs_negative_hits,
        c + s.Cluster.cs_cold_opens,
        inv + s.Cluster.cs_invalidations,
        ws + s.Cluster.cs_wrong_shard,
        sb + s.Cluster.cs_stale_blocked,
        ss + s.Cluster.cs_stale_serves ))
    (0, 0, 0, 0, 0, 0) cls

type point_result = {
  pr_outcome : outcome;
  pr_restarts : int;
  pr_warm : int;
  pr_cold : int;
  pr_inval_sent : int;
  pr_inval_shed : int;
  pr_inval_lapsed : int;
  pr_stale_blocked : int;
  pr_stale_serves : int;
  pr_wrong_shard : int;
  pr_op_served : int;
  pr_op_retried : int;
  pr_op_shed : int;
  pr_op_failed : int;
  pr_deadline_misses : int;
  pr_recover_ns : int;
}

(* ------------------------------------------------------------------ *)
(* Kill mode                                                           *)
(* ------------------------------------------------------------------ *)

let run_point_kill ~net ~nodes ~clients ~cops ~lease_ns ~seed ~kill_at
    ~victim_shard ~store ~deadline_ns =
  let t, cls = setup ~net ~nodes ~clients ~lease_ns in
  for k = 0 to clients - 1 do
    Sp_avail.Breaker.reset (client_breaker k)
  done;
  let m0 = Sp_sim.Metrics.snapshot () in
  let setup_bad = if lease_ns > 0 then warm_zero_message_check cls else None in
  let recs = Array.make clients [] in
  (* baseline: setup wrote and synced every slot (seq 0, event 0) *)
  for k = 0 to clients - 1 do
    recs.(k) <-
      List.init slots (fun slot ->
          { w_slot = slot; w_seq = 0; w_done = 0; w_data = slot_data k slot 0 })
  done;
  let cut = Array.make clients 0 in
  let ev = ref 0 in
  let boundary = ref 0 in
  let killed = ref false in
  let recovery_ev = ref (-1) in
  let t_kill = ref 0 in
  let t_recover = ref (-1) in
  let op_served = ref 0 in
  let deadline_misses = ref 0 in
  let first_err = ref None in
  let note_err m = if !first_err = None then first_err := Some m in
  let maybe_kill () =
    incr boundary;
    if (not !killed) && !boundary = kill_at then begin
      killed := true;
      t_kill := Simclock.now ();
      Cluster.kill_shard ~store t victim_shard
    end
  in
  let note_success () =
    incr op_served;
    if !killed && !t_recover < 0 then t_recover := Simclock.now ();
    if !killed && !recovery_ev < 0 && Cluster.restarts t > 0 then
      recovery_ev := !ev
  in
  let catch_op k f =
    match
      Sp_avail.call ~name:(client_breaker k) ~policy ~deadline_ns
        ~rng:(Rng.create (seed + ((k + 1) * 104729) + !boundary))
        f
    with
    | v -> Some v
    | exception Fserr.Timed_out _ ->
        incr deadline_misses;
        None
    | exception Sp_avail.Unavailable m ->
        note_err ("unavailable: " ^ m);
        None
    | exception Fserr.Io_error m ->
        note_err ("io: " ^ m);
        None
    | exception Fserr.Checksum_error m ->
        note_err ("checksum: " ^ m);
        None
    | exception Net.Timeout m ->
        note_err ("net: " ^ m);
        None
    | exception Cluster.Wrong_shard c ->
        note_err ("wrong shard not converged: " ^ c);
        None
  in
  let client_task k () =
    let wl = Rng.create (seed + ((k + 1) * 7919)) in
    Sp_sched.sleep (k * 1_000);
    for i = 1 to cops do
      maybe_kill ();
      if i mod 3 = 0 then begin
        (* durable cut for this client's shard *)
        let s0 = !ev in
        match catch_op k (fun () -> Cluster.sync_path cls.(k) (dir_path k)) with
        | Some () ->
            note_success ();
            if not !killed then cut.(k) <- max cut.(k) s0
        | None -> ()
      end
      else if i mod 8 = 5 && clients > 1 then begin
        (* warm/cold open of a neighbour's hot file: the read side of
           the invalidation protocol.  The neighbour's recreate is a
           remove/create/write sequence, so a racing reader legally sees
           No_such_file or a still-empty file — only a torn marker (a
           length strictly between 0 and the marker size) is damage. *)
        let n = (k + 1) mod clients in
        match
          catch_op k (fun () ->
              match Cluster.open_file cls.(k) (hot_file n) with
              | f ->
                  let d = File.read_all f in
                  let len = Bytes.length d in
                  if len <> 0 && len <> marker_bytes then
                    raise (Fserr.Io_error "torn hot marker")
              | exception Fserr.No_such_file _ -> ())
        with
        | Some () -> note_success ()
        | None -> ()
      end
      else if i mod 8 = 7 then begin
        (* recreate own hot file: drives invalidation pushes to every
           registered neighbour.  The closure is made idempotent by
           hand because an availability retry re-executes it whole. *)
        let seq = i in
        match
          catch_op k (fun () ->
              (try Cluster.remove cls.(k) (hot_file k)
               with Fserr.No_such_file _ -> ());
              let f =
                try Cluster.create cls.(k) (hot_file k)
                with Fserr.Already_exists _ -> Cluster.open_file cls.(k) (hot_file k)
              in
              ignore (File.write f ~pos:0 (marker k seq)))
        with
        | Some () -> note_success ()
        | None -> ()
      end
      else begin
        incr ev;
        let slot = Rng.int wl slots in
        let r =
          { w_slot = slot; w_seq = !ev; w_done = -1; w_data = slot_data k slot !ev }
        in
        recs.(k) <- r :: recs.(k);
        match
          catch_op k (fun () ->
              (* re-resolve every attempt: a proxy minted by a dead
                 incarnation must not be retried into *)
              let f = Cluster.open_file cls.(k) (file_path k) in
              ignore (File.write f ~pos:(r.w_slot * slot_bytes) r.w_data))
        with
        | Some () ->
            incr ev;
            r.w_done <- !ev;
            note_success ()
        | None -> ()
      end
    done
  in
  let outcome =
    Fun.protect ~finally:(fun () -> teardown t) @@ fun () ->
    match
      ignore (Sp_sched.run ~seed (List.init clients (fun k -> client_task k)));
      (* final durable cut, server-side *)
      for i = 0 to nodes - 1 do
        Sp_supervise.call (fun () -> Stackable.sync (Cluster.shard_top t i))
      done
    with
    | exception Fserr.Dead_domain who -> Unavailable who
    | exception Sp_supervise.Give_up msg -> Unavailable msg
    | exception Fserr.Io_error m -> Lost ("io: " ^ m)
    | () -> (
        if !t_recover < 0 && !killed then t_recover := Simclock.now ();
        let warm, _, _, _, _, stale_serves = sum_client_stats cls in
        match (setup_bad, !first_err, !deadline_misses) with
        | Some m, _, _ -> Corrupt m
        | None, Some m, _ -> Unavailable m
        | None, None, n when n > 0 ->
            Unavailable (Printf.sprintf "%d ops overran their deadline" n)
        | None, None, _ -> (
            if stale_serves > 0 then
              Lost (Printf.sprintf "%d warm serves past the lease bound" stale_serves)
            else if not !killed then
              Corrupt "kill point beyond the executed boundaries"
            else
              let safe_after = if !recovery_ev >= 0 then !recovery_ev else max_int in
              match verify_slots t recs cut ~safe_after with
              | Some msg -> Lost msg
              | None -> (
                  match fsck_all t with
                  | Some msg -> Corrupt msg
                  | None ->
                      if Cluster.restarts t = 0 then
                        Corrupt "supervisor never restarted anything"
                      else if lease_ns > 0 && warm = 0 then
                        Corrupt "leases enabled but no warm hit was ever served"
                      else Served)))
  in
  let m1 = Sp_sim.Metrics.snapshot () in
  let d = Sp_sim.Metrics.diff ~before:m0 ~after:m1 in
  let warm, cold, _inv, ws, sb, ss = sum_client_stats cls in
  let cs = Cluster.stats t in
  {
    pr_outcome = outcome;
    pr_restarts = Cluster.restarts t;
    pr_warm = warm;
    pr_cold = cold;
    pr_inval_sent = cs.Cluster.s_inval_sent;
    pr_inval_shed = cs.Cluster.s_inval_shed;
    pr_inval_lapsed = cs.Cluster.s_inval_lapsed;
    pr_stale_blocked = sb;
    pr_stale_serves = ss;
    pr_wrong_shard = ws;
    pr_op_served = !op_served;
    pr_op_retried = d.Sp_sim.Metrics.avail_retried;
    pr_op_shed = d.Sp_sim.Metrics.avail_shed;
    pr_op_failed = d.Sp_sim.Metrics.avail_failed;
    pr_deadline_misses = !deadline_misses;
    pr_recover_ns = (if !t_recover >= 0 then !t_recover - !t_kill else 0);
  }

(* ------------------------------------------------------------------ *)
(* Partition mode                                                      *)
(* ------------------------------------------------------------------ *)

let probe_gap_ns = 3_000_000
let probes = 20

let run_point_partition ~net ~nodes ~clients ~cops ~lease_ns ~seed ~arm_at
    ~victim ~deadline_ns =
  let t, cls = setup ~net ~nodes ~clients ~lease_ns in
  for k = 0 to clients - 1 do
    Sp_avail.Breaker.reset (client_breaker k)
  done;
  let m0 = Sp_sim.Metrics.snapshot () in
  let setup_bad = if lease_ns > 0 then warm_zero_message_check cls else None in
  let hot_shard = Cluster.owner t hot_dir in
  let mutator = (victim + 1) mod clients in
  (* the victim must hold cached bindings for the probe files before
     the cut lands *)
  (* Best-effort cache warming: the partition can arm (another task's
     [bump]) while the victim is suspended inside one of these opens, so
     a network failure here is a benign race, not a verdict. *)
  let prime () =
    List.iter
      (fun p ->
        try ignore (Cluster.open_file cls.(victim) p)
        with Fserr.No_such_file _ | Fserr.Io_error _ | Net.Timeout _ -> ())
      [ hot_x; hot_y ]
  in
  prime ();
  let recs = Array.make clients [] in
  for k = 0 to clients - 1 do
    recs.(k) <-
      List.init slots (fun slot ->
          { w_slot = slot; w_seq = 0; w_done = 0; w_data = slot_data k slot 0 })
  done;
  let cut = Array.make clients 0 in
  let ev = ref 0 in
  let boundary = ref 0 in
  let armed = ref false in
  let mutated = ref 0 in
  let warm_in_part = ref 0 in
  let stale_obs = ref 0 in
  let post_heal_bad = ref None in
  let op_served = ref 0 in
  let deadline_misses = ref 0 in
  let first_err = ref None in
  let note_err m = if !first_err = None then first_err := Some m in
  let bump () =
    incr boundary;
    if (not !armed) && !boundary = arm_at then begin
      armed := true;
      Sp_fault.arm
        (Sp_fault.plan ~seed
           (Sp_fault.partition
              ~a:("c" ^ string_of_int victim)
              ~b:(Cluster.shard_node t hot_shard)))
    end
  in
  let catch_op k f =
    match
      Sp_avail.call ~name:(client_breaker k) ~policy ~deadline_ns
        ~rng:(Rng.create (seed + ((k + 1) * 104729) + !boundary))
        f
    with
    | v ->
        incr op_served;
        Some v
    | exception Fserr.Timed_out _ ->
        incr deadline_misses;
        None
    | exception Sp_avail.Unavailable m ->
        note_err ("unavailable: " ^ m);
        None
    | exception Fserr.Io_error m ->
        note_err ("io: " ^ m);
        None
    | exception Net.Timeout m ->
        note_err ("net: " ^ m);
        None
  in
  let slot_write k wl =
    incr ev;
    let slot = Rng.int wl slots in
    let r = { w_slot = slot; w_seq = !ev; w_done = -1; w_data = slot_data k slot !ev } in
    recs.(k) <- r :: recs.(k);
    match
      catch_op k (fun () ->
          let f = Cluster.open_file cls.(k) (file_path k) in
          ignore (File.write f ~pos:(r.w_slot * slot_bytes) r.w_data))
    with
    | Some () ->
        incr ev;
        r.w_done <- !ev
    | None -> ()
  in
  let recreate k p data =
    catch_op k (fun () ->
        (try Cluster.remove cls.(k) p with Fserr.No_such_file _ -> ());
        let f =
          try Cluster.create cls.(k) p
          with Fserr.Already_exists _ -> Cluster.open_file cls.(k) p
        in
        ignore (File.write f ~pos:0 data))
  in
  let mutate () =
    (* two mutations of victim-cached bindings: the first push times
       out against the partition and trips the breaker, the second
       sheds on the open breaker *)
    ignore (recreate mutator hot_x (marker 101 1));
    mutated := 1;
    ignore (recreate mutator hot_y (marker 102 2));
    mutated := 2
  in
  let normal_task k () =
    let wl = Rng.create (seed + ((k + 1) * 7919)) in
    Sp_sched.sleep (k * 1_000);
    for i = 1 to cops do
      bump ();
      if k = mutator && !armed && !mutated < 2 then mutate ()
      else if i mod 3 = 0 then (
        let s0 = !ev in
        match catch_op k (fun () -> Cluster.sync_path cls.(k) (dir_path k)) with
        | Some () -> cut.(k) <- max cut.(k) s0
        | None -> ())
      else slot_write k wl
    done;
    (* the mutator may exhaust its loop before the cut lands: keep it
       alive (bounded) so the partition always gets its mutations *)
    if k = mutator then begin
      let rec grace n =
        if !mutated < 2 && n > 0 then
          if !armed then mutate ()
          else begin
            Sp_sched.sleep 2_000_000;
            grace (n - 1)
          end
      in
      grace 200
    end
  in
  let victim_task () =
    Sp_sched.sleep (victim * 1_000);
    (* pre-cut: keep the hot-shard lease fresh with a real RPC per op
       (warm hits don't renew — they never reach the server) *)
    let pre = ref 0 in
    while (not !armed) && !pre < cops * 4 do
      incr pre;
      bump ();
      if not !armed then begin
        (* lease renewal, same benign race as [prime]: the loop itself
           is the retry, so a failure mid-arm must not dirty the
           verdict through [catch_op]'s first-error note *)
        (try Cluster.sync_path cls.(victim) hot_dir
         with Fserr.Io_error _ | Net.Timeout _ -> ());
        prime ()
      end
    done;
    if !armed then begin
      let expiry = Cluster.lease_deadline cls.(victim) hot_shard in
      for _ = 1 to probes do
        Sp_sched.sleep probe_gap_ns;
        List.iter
          (fun p ->
            let now = Simclock.now () in
            match Cluster.open_file cls.(victim) p with
            | _ -> if now < expiry then incr warm_in_part else incr stale_obs
            | exception Fserr.No_such_file _ ->
                if now < expiry then incr warm_in_part else incr stale_obs
            | exception (Fserr.Io_error _ | Net.Timeout _) ->
                (* partitioned and past the cache: fails loudly, as it
                   must — never silently, never stale *)
                ())
          [ hot_x; hot_y ]
      done;
      (* Wait (bounded, generously: the mutator's recreates queue
         behind every other client's closed-loop ops on the hot shard)
         for BOTH mutations before healing — checking mid-recreate
         would observe the legal remove->create gap as a missing file.
         If the bound still exhausts, skip the post-heal probe; the
         outcome ladder reports [mutated < 2] as a sweep-config
         problem. *)
      let rec wait n =
        if !mutated < 2 && n > 0 then begin
          Sp_sched.sleep 2_000_000;
          wait (n - 1)
        end
      in
      wait 5_000;
      let now = Simclock.now () in
      if now <= expiry then Sp_sched.sleep (expiry - now + 1_000_000);
      Sp_fault.disarm ();
      (* post-heal: the (stale, lease-lapsed) entries must fall cold
         and serve the mutated content *)
      if !mutated >= 2 then
      List.iter
          (fun (p, want, what) ->
            match Cluster.open_file cls.(victim) p with
            | f ->
                let d = File.read_all f in
                if not (Bytes.equal d want) then
                  if !post_heal_bad = None then
                    post_heal_bad :=
                      Some (what ^ ": stale content served after heal")
            | exception e ->
                if !post_heal_bad = None then
                  post_heal_bad := Some (what ^ ": " ^ Printexc.to_string e))
          [ (hot_x, marker 101 1, "hot/x"); (hot_y, marker 102 2, "hot/y") ]
    end
  in
  let outcome =
    Fun.protect ~finally:(fun () -> teardown t) @@ fun () ->
    match
      ignore
        (Sp_sched.run ~seed
           (List.init clients (fun k ->
                if k = victim then victim_task else normal_task k)));
      Sp_fault.disarm ();
      for i = 0 to nodes - 1 do
        Sp_supervise.call (fun () -> Stackable.sync (Cluster.shard_top t i))
      done
    with
    | exception Fserr.Dead_domain who -> Unavailable who
    | exception Fserr.Io_error m -> Lost ("io: " ^ m)
    | () -> (
        let _, _, _, _, _, stale_serves = sum_client_stats cls in
        let vstats = Cluster.client_stats cls.(victim) in
        let cstats = Cluster.stats t in
        let shed = cstats.Cluster.s_inval_shed + cstats.Cluster.s_inval_lapsed in
        match (setup_bad, !first_err, !deadline_misses) with
        | Some m, _, _ -> Corrupt m
        | None, Some m, _ -> Unavailable m
        | None, None, n when n > 0 ->
            Unavailable (Printf.sprintf "%d ops overran their deadline" n)
        | None, None, _ ->
            if not !armed then Corrupt "partition never armed (sweep config)"
            else if !mutated < 2 then Corrupt "mutator never fired"
            else if stale_serves > 0 || !stale_obs > 0 then
              Lost
                (Printf.sprintf "%d warm serves past the lease bound"
                   (stale_serves + !stale_obs))
            else if !post_heal_bad <> None then Lost (Option.get !post_heal_bad)
            else (
              match verify_slots t recs cut ~safe_after:(-1) with
              | Some msg -> Lost msg
              | None -> (
                  match fsck_all t with
                  | Some msg -> Corrupt msg
                  | None ->
                      if lease_ns = 0 then
                        if !warm_in_part = 0 then
                          Unavailable
                            "leaseless client had no warm service while partitioned"
                        else Lost "leaseless client served warm data"
                      else if !warm_in_part = 0 then
                        Unavailable "no warm service while partitioned"
                      else if vstats.Cluster.cs_stale_blocked = 0 then
                        Corrupt "lease expiry valve never fired"
                      else if shed = 0 then
                        Corrupt
                          "no invalidation push was shed, lost or \
                           lease-lapsed"
                      else Served)))
  in
  let m1 = Sp_sim.Metrics.snapshot () in
  let d = Sp_sim.Metrics.diff ~before:m0 ~after:m1 in
  let warm, cold, _inv, ws, sb, ss = sum_client_stats cls in
  let cs = Cluster.stats t in
  {
    pr_outcome = outcome;
    pr_restarts = Cluster.restarts t;
    pr_warm = warm;
    pr_cold = cold;
    pr_inval_sent = cs.Cluster.s_inval_sent;
    pr_inval_shed = cs.Cluster.s_inval_shed;
    pr_inval_lapsed = cs.Cluster.s_inval_lapsed;
    pr_stale_blocked = sb;
    pr_stale_serves = ss + !stale_obs;
    pr_wrong_shard = ws;
    pr_op_served = !op_served;
    pr_op_retried = d.Sp_sim.Metrics.avail_retried;
    pr_op_shed = d.Sp_sim.Metrics.avail_shed;
    pr_op_failed = d.Sp_sim.Metrics.avail_failed;
    pr_deadline_misses = !deadline_misses;
    pr_recover_ns = 0;
  }

(* ------------------------------------------------------------------ *)
(* The sweep                                                           *)
(* ------------------------------------------------------------------ *)

let sweep ?(stride = 1) ?(partition = false) ?(lease_ns = Cluster.default_lease_ns)
    ?(op_deadline_ns = 1_000_000_000) ~nodes ~clients ~ops ~seed () =
  if stride < 1 then invalid_arg "Shard_crash_sweep.sweep: stride must be >= 1";
  if clients < 1 then invalid_arg "Shard_crash_sweep.sweep: clients must be >= 1";
  if nodes < 1 then invalid_arg "Shard_crash_sweep.sweep: nodes must be >= 1";
  if partition && clients < 2 then
    invalid_arg "Shard_crash_sweep.sweep: partition mode needs >= 2 clients";
  let net = Net.create ~seed () in
  let cops = max 8 (ops / clients) in
  let boundaries = clients * cops in
  (* partition points must land while enough client ops remain for the
     mutator and the window to play out *)
  let limit = if partition then max 1 (boundaries / 2) else boundaries in
  let served = ref 0
  and unavailable = ref 0
  and lost = ref 0
  and corrupt = ref 0
  and points = ref 0
  and restarts = ref 0
  and warm = ref 0
  and cold = ref 0
  and inval_sent = ref 0
  and inval_shed = ref 0
  and inval_lapsed = ref 0
  and stale_blocked = ref 0
  and stale_serves = ref 0
  and wrong_shard = ref 0
  and op_served = ref 0
  and op_retried = ref 0
  and op_shed = ref 0
  and op_failed = ref 0
  and deadline_misses = ref 0
  and max_recover = ref 0 in
  let first_bad = ref None in
  let bad mode at msg = if !first_bad = None then first_bad := Some (mode, at, msg) in
  let at = ref 1 in
  let pt = ref 0 in
  while !at <= limit do
    incr points;
    let mode, r =
      if partition then begin
        let victim = !pt mod clients in
        ( Printf.sprintf "partition:c%d" victim,
          run_point_partition ~net ~nodes ~clients ~cops ~lease_ns ~seed
            ~arm_at:!at ~victim ~deadline_ns:op_deadline_ns )
      end
      else begin
        let victim_shard = !pt mod nodes in
        let store = !pt land 1 = 1 in
        ( Printf.sprintf "kill:n%d.%s" victim_shard (if store then "store" else "dfs"),
          run_point_kill ~net ~nodes ~clients ~cops ~lease_ns ~seed ~kill_at:!at
            ~victim_shard ~store ~deadline_ns:op_deadline_ns )
      end
    in
    (match r.pr_outcome with
    | Served -> incr served
    | Unavailable msg ->
        incr unavailable;
        bad mode !at ("unavailable: " ^ msg)
    | Lost msg ->
        incr lost;
        bad mode !at msg
    | Corrupt msg ->
        incr corrupt;
        bad mode !at msg);
    restarts := !restarts + r.pr_restarts;
    warm := !warm + r.pr_warm;
    cold := !cold + r.pr_cold;
    inval_sent := !inval_sent + r.pr_inval_sent;
    inval_shed := !inval_shed + r.pr_inval_shed;
    inval_lapsed := !inval_lapsed + r.pr_inval_lapsed;
    stale_blocked := !stale_blocked + r.pr_stale_blocked;
    stale_serves := !stale_serves + r.pr_stale_serves;
    wrong_shard := !wrong_shard + r.pr_wrong_shard;
    op_served := !op_served + r.pr_op_served;
    op_retried := !op_retried + r.pr_op_retried;
    op_shed := !op_shed + r.pr_op_shed;
    op_failed := !op_failed + r.pr_op_failed;
    deadline_misses := !deadline_misses + r.pr_deadline_misses;
    if r.pr_recover_ns > !max_recover then max_recover := r.pr_recover_ns;
    at := !at + stride;
    incr pt
  done;
  {
    dr_nodes = nodes;
    dr_clients = clients;
    dr_ops = cops;
    dr_seed = seed;
    dr_lease_ns = lease_ns;
    dr_partition = partition;
    dr_points = !points;
    dr_served = !served;
    dr_unavailable = !unavailable;
    dr_lost = !lost;
    dr_corrupt = !corrupt;
    dr_restarts = !restarts;
    dr_warm_hits = !warm;
    dr_cold_opens = !cold;
    dr_inval_sent = !inval_sent;
    dr_inval_shed = !inval_shed;
    dr_inval_lapsed = !inval_lapsed;
    dr_stale_blocked = !stale_blocked;
    dr_stale_serves = !stale_serves;
    dr_wrong_shard = !wrong_shard;
    dr_op_served = !op_served;
    dr_op_retried = !op_retried;
    dr_op_shed = !op_shed;
    dr_op_failed = !op_failed;
    dr_deadline_misses = !deadline_misses;
    dr_max_recover_ns = !max_recover;
    dr_first_bad = !first_bad;
  }

let summary r =
  Printf.sprintf
    "DFS-SWEEP mode=%s nodes=%d clients=%d leases=%s points=%d served=%d \
     unavailable=%d lost=%d corrupt=%d restarts=%d warm=%d cold=%d \
     inval_sent=%d inval_shed=%d inval_lapsed=%d stale_blocked=%d \
     stale_served=%d \
     wrong_shard=%d op_served=%d retried=%d shed=%d failed=%d \
     deadline_misses=%d"
    (if r.dr_partition then "partition" else "kill")
    r.dr_nodes r.dr_clients
    (if r.dr_lease_ns > 0 then "on" else "off")
    r.dr_points r.dr_served r.dr_unavailable r.dr_lost r.dr_corrupt
    r.dr_restarts r.dr_warm_hits r.dr_cold_opens r.dr_inval_sent r.dr_inval_shed
    r.dr_inval_lapsed r.dr_stale_blocked r.dr_stale_serves r.dr_wrong_shard
    r.dr_op_served r.dr_op_retried r.dr_op_shed r.dr_op_failed
    r.dr_deadline_misses

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>shard %s sweep: nodes=%d clients=%d ops/client=%d seed=%d leases=%s@,\
     points: %d (every %s boundary, strided)@,\
     served %d   unavailable %d   lost %d   corrupt %d@,\
     restarts %d   worst kill->served gap %.1f ms@,\
     cache: %d warm (zero-message) / %d cold opens, %d stale-blocked, %d \
     stale-served@,\
     invalidations: %d pushed, %d shed, %d lease-lapsed; shard-map \
     re-fetches %d@,\
     ops: %d served (%d retried, %d shed, %d failed, %d deadline misses)@]"
    (if r.dr_partition then "partition" else "crash")
    r.dr_nodes r.dr_clients r.dr_ops r.dr_seed
    (if r.dr_lease_ns > 0 then
       Printf.sprintf "on (%.0f ms)" (float_of_int r.dr_lease_ns /. 1e6)
     else "off")
    r.dr_points
    (if r.dr_partition then "partition-arm" else "kill")
    r.dr_served r.dr_unavailable r.dr_lost r.dr_corrupt r.dr_restarts
    (float_of_int r.dr_max_recover_ns /. 1e6)
    r.dr_warm_hits r.dr_cold_opens r.dr_stale_blocked r.dr_stale_serves
    r.dr_inval_sent r.dr_inval_shed r.dr_inval_lapsed r.dr_wrong_shard
    r.dr_op_served r.dr_op_retried r.dr_op_shed r.dr_op_failed
    r.dr_deadline_misses
