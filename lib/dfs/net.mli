(** Simulated network between nodes.

    Substitute for the paper's "private DFS protocol" transport: a
    latency/bandwidth cost model plus counters.  All nodes live in one
    process; an RPC is a cost-charged, metric-counted direct call.
    Intra-node calls are free (and uncounted).

    Every remote attempt consults the armed {!Sp_fault} plan at point
    ["net.rpc"] with label ["src->dst"].  Two loss modes, both surfacing
    as {!Timeout}: [Drop] loses the {e request} (the server-side body
    never runs), [Io_error] loses the {e reply} (the body ran — the
    lost-ack case that makes naive retry of a mutating RPC
    double-apply). *)

(** A send that received no reply (request or reply lost in flight). *)
exception Timeout of string

type t

type stats = {
  messages : int;
  bytes : int;
  retries : int;
  dedup_hits : int;  (** retries answered from the server's dedup window *)
}

(** [seed] initialises the retry-backoff jitter stream (deterministic
    per [t]; two nets created with the same seed replay the same
    delays). *)
val create : ?seed:int -> unit -> t

(** [rpc t ~src ~dst ~bytes f] performs [f ()] as a remote invocation from
    node [src] to node [dst] carrying [bytes] of payload (request +
    response combined).  A single attempt: raises {!Timeout} on drop. *)
val rpc : t -> src:string -> dst:string -> bytes:int -> (unit -> 'a) -> 'a

(** Like {!rpc} but retries {!Timeout}s with the unified
    [Sp_avail.Backoff] policy: exponential in the model RTT (1x, 2x,
    4x ...), seeded downward jitter, slept as idle time — bumping
    [Sp_sim.Metrics.net_retries] and emitting an [Sp_trace] instant per
    retry.  After [retries] (default 3) failed retries the error becomes
    [Sp_core.Fserr.Io_error], which file-system layers already handle.
    Server-side exceptions pass through untouched — only transport
    timeouts are retried.  Under an ambient [Sp_sched.with_deadline],
    an attempt or a backoff that would cross the deadline raises
    [Fserr.Timed_out] instead.

    Idempotency (default [idem = true]): every retry of one [rpc_retry]
    call carries the same per-call token; the server keeps a dedup
    window keyed by token, so a retry after a {e lost ack} (the body ran,
    the reply evaporated) returns the recorded result instead of
    re-executing — counted in [stats.dedup_hits] with an [Sp_trace]
    instant [net.dedup].  [~idem:false] restores the naive re-execute
    behaviour (control for tests).  Only successful executions enter the
    window; a server-side exception always propagates unrecorded.

    Simulated-delay cap: a call that exhausts its budget makes
    [retries + 1] attempts, each charging at most one RTT window
    (a reply-loss attempt also charges its per-byte wire time), plus
    backoffs of at most [rtt * 2^(i-1)] after attempts [1..retries]
    (jitter only shortens them) — so the total simulated delay is
    bounded by [rtt * (retries + 1) + rtt * (2^retries - 1)] (with the
    default [retries = 3]: 11 RTTs) plus the per-byte wire time of
    each attempt that reached the server, independent of the fault and
    jitter seeds. *)
val rpc_retry :
  ?retries:int ->
  ?idem:bool ->
  t ->
  src:string ->
  dst:string ->
  bytes:int ->
  (unit -> 'a) ->
  'a

val stats : t -> stats

val reset_stats : t -> unit
