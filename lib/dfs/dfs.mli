(** DFS — the network-coherent distributed file system layer (Figure 7,
    §4.2.2, §6.2).

    DFS is "implemented as a coherency layer": the server embeds one,
    stacked on the underlying file system, and serves remote cache
    managers over the (simulated) network.  Two properties from the paper
    hold structurally:

    - {e local binds are forwarded}: the DFS layer's own naming context
      returns the underlying files unchanged, so local clients share the
      underlying cache object and DFS is not involved in local
      page-in/page-out traffic;
    - {e local and remote stay coherent}: the embedded coherency layer
      binds to the underlying file as a cache manager, so local activity
      revokes remote caches through the underlying layer's protocol, and
      remote activity is pushed down the same channel.

    [import] builds the client-side view on another node: names resolve
    over the network, files are remote proxies whose memory objects
    forward binds across the network (pager and cache objects are proxied
    with network costs in both directions).  Without CFS interposed, every
    file operation on an imported file goes to the remote DFS. *)

(** Create a DFS server layer on [node]; stack it on exactly one
    underlying file system.  Its naming context is the local (forwarding)
    view. *)
val make_server :
  ?node:string ->
  net:Net.t ->
  vmm:Sp_vm.Vmm.t ->
  name:string ->
  unit ->
  Sp_core.Stackable.t

(** Creator (type ["dfs"]). *)
val creator :
  ?node:string -> net:Net.t -> vmm:Sp_vm.Vmm.t -> unit -> Sp_core.Stackable.creator

(** [import ~net ~client_node server] is the remote client view of
    [server] (a stackable made by {!make_server}) as seen from
    [client_node]. *)
val import :
  net:Net.t -> client_node:string -> Sp_core.Stackable.t -> Sp_core.Stackable.t

(** The embedded coherency layer of a server (tests: channel counts,
    invariants). *)
val coherency_of : Sp_core.Stackable.t -> Sp_core.Stackable.t

(** [remote_file net ~client ~client_domain ~server f] wraps a
    server-side file as the remote proxy {!import} would hand out:
    read/write/stat/sync become [rpc_retry] calls from [client] to
    [server], and the memory object forwards binds across the network.
    Exposed for layers (e.g. [Sp_cluster]) that run their own
    resolution protocol but reuse the DFS data path. *)
val remote_file :
  Net.t ->
  client:string ->
  client_domain:Sp_obj.Sdomain.t ->
  server:string ->
  Sp_core.File.t ->
  Sp_core.File.t
