exception Timeout of string

type stats = { messages : int; bytes : int; retries : int; dedup_hits : int }

type t = {
  mutable messages : int;
  mutable bytes : int;
  mutable retries : int;
  mutable dedup_hits : int;
  rng : Sp_fault.Rng.t;  (* jitter stream for retry backoff *)
}

let create ?(seed = 0x0df5) () =
  {
    messages = 0;
    bytes = 0;
    retries = 0;
    dedup_hits = 0;
    rng = Sp_fault.Rng.create seed;
  }

(* One attempt: charge the wire cost and run [f].  Two distinct loss
   modes, both surfacing as [Timeout] at the client:
   - [Drop]: the request was lost in flight — [f] never runs, no
     server-side effect.
   - [Io_error] ([Fail_io]): the request arrived and [f] ran, but the
     *reply* was lost — the server-side effect happened and the client
     cannot know.  This is the lost-ack case idempotency tokens exist
     for: a naive retry of a mutating RPC would double-apply.
   Either way the client charges a full round-trip window (it waited for
   a reply that never came). *)
let attempt t ~src ~dst ~bytes f =
  let model = Sp_sim.Cost_model.current () in
  let label = src ^ "->" ^ dst in
  Sp_sched.check_deadline ~on:("net:" ^ label);
  (match Sp_fault.consult ~point:"net.rpc" ~label with
  | Sp_fault.Pass -> ()
  | Sp_fault.Dropped msg ->
      t.messages <- t.messages + 1;
      t.bytes <- t.bytes + bytes;
      Sp_sim.Metrics.incr_net_messages ();
      Sp_sim.Metrics.add_net_bytes bytes;
      Sp_sim.Simclock.advance model.net_rtt_ns;
      raise (Timeout msg)
  | Sp_fault.Fail_io msg ->
      t.messages <- t.messages + 1;
      t.bytes <- t.bytes + bytes;
      Sp_sim.Metrics.incr_net_messages ();
      Sp_sim.Metrics.add_net_bytes bytes;
      Sp_sim.Simclock.advance (model.net_rtt_ns + (bytes * model.net_per_byte_ns));
      (* Reply loss: the server executes, then the ack evaporates.  A
         server-side exception still propagates — we model the fault as
         hitting only the reply of an op that completed. *)
      ignore (f ());
      raise (Timeout msg)
  | Sp_fault.Delayed ns -> Sp_sim.Simclock.advance ns
  | Sp_fault.Torn _ | Sp_fault.Torn_crash _ | Sp_fault.Domain_died _
    | Sp_fault.Bit_rot _ | Sp_fault.Misdirected _ | Sp_fault.Lost_write_ack -> ());
  t.messages <- t.messages + 1;
  t.bytes <- t.bytes + bytes;
  Sp_sim.Metrics.incr_net_messages ();
  Sp_sim.Metrics.add_net_bytes bytes;
  Sp_sim.Simclock.advance (model.net_rtt_ns + (bytes * model.net_per_byte_ns));
  f ()

let rpc t ~src ~dst ~bytes f =
  if String.equal src dst then f () else attempt t ~src ~dst ~bytes f

let rpc_retry ?(retries = 3) ?(idem = true) t ~src ~dst ~bytes f =
  if String.equal src dst then f ()
  else
    let model = Sp_sim.Cost_model.current () in
    (* Idempotency token: each rpc_retry call is one logical RPC, and
       every retry re-sends the same token.  [memo] is the server's
       dedup-window entry for that token — filled only when [f] actually
       ran on the server (including reply-loss attempts), consulted only
       when a retry reaches the server.  The entry's lifetime is the
       call's (window eviction = the closure going out of scope), so a
       token can never collide across calls. *)
    let memo = ref None in
    let body () =
      match !memo with
      | Some v when idem ->
          t.dedup_hits <- t.dedup_hits + 1;
          if Sp_trace.enabled () then
            Sp_trace.instant ~name:"net.dedup"
              ~args:[ ("link", src ^ "->" ^ dst) ]
              ();
          v
      | _ ->
          let v = f () in
          memo := Some v;
          v
    in
    (* Unified availability backoff ([Sp_avail.Backoff]): exponential in
       the RTT (1x, 2x, 4x ...), seeded downward jitter so concurrently
       retrying clients desynchronize, idle sleep so under [Sp_sched]
       other clients run through the window and the wait is not counted
       as service time.  Jitter only subtracts, so the documented delay
       cap still holds. *)
    let policy =
      Sp_avail.Backoff.make ~base_ns:model.net_rtt_ns
        ~max_delay_ns:(model.net_rtt_ns * (1 lsl max 0 (min (retries - 1) 16)))
        ~max_attempts:(retries + 1) ()
    in
    let rec go attempt_no =
      try attempt t ~src ~dst ~bytes body
      with Timeout msg ->
        if attempt_no > retries then
          raise
            (Sp_core.Fserr.Io_error
               (Printf.sprintf "net %s->%s: %s (gave up after %d attempts)" src
                  dst msg attempt_no))
        else begin
          t.retries <- t.retries + 1;
          Sp_sim.Metrics.incr_net_retries ();
          if Sp_trace.enabled () then
            Sp_trace.instant ~name:"net.retry"
              ~args:
                [
                  ("link", src ^ "->" ^ dst);
                  ("attempt", string_of_int attempt_no);
                ]
              ();
          Sp_avail.Backoff.pause
            ~on:("net:" ^ src ^ "->" ^ dst)
            policy ~rng:t.rng ~attempt:attempt_no;
          go (attempt_no + 1)
        end
    in
    go 1

let stats t : stats =
  {
    messages = t.messages;
    bytes = t.bytes;
    retries = t.retries;
    dedup_hits = t.dedup_hits;
  }

let reset_stats t =
  t.messages <- 0;
  t.bytes <- 0;
  t.retries <- 0;
  t.dedup_hits <- 0
