module V = Sp_vm.Vm_types

(* ------------------------------------------------------------------ *)
(* Network proxies for the channel objects                             *)
(* ------------------------------------------------------------------ *)

let attr_bytes = 64

let proxy_fs_pager net ~src ~dst (ops : V.fs_pager_ops) =
  {
    V.fp_get_attr =
      (fun () -> Net.rpc_retry net ~src ~dst ~bytes:attr_bytes ops.V.fp_get_attr);
    fp_set_attr =
      (fun a -> Net.rpc_retry net ~src ~dst ~bytes:attr_bytes (fun () -> ops.V.fp_set_attr a));
    fp_attr_sync =
      (fun a -> Net.rpc_retry net ~src ~dst ~bytes:attr_bytes (fun () -> ops.V.fp_attr_sync a));
  }

(* Calls travel client -> server. *)
let proxy_pager net ~client ~server (p : V.pager_object) =
  let rpc bytes f = Net.rpc_retry net ~src:client ~dst:server ~bytes f in
  {
    p with
    V.p_page_in =
      (fun ~offset ~size ~access ->
        rpc size (fun () -> p.V.p_page_in ~offset ~size ~access));
    p_page_out =
      (fun ~offset data ->
        rpc (Bytes.length data) (fun () -> p.V.p_page_out ~offset data));
    p_write_out =
      (fun ~offset data ->
        rpc (Bytes.length data) (fun () -> p.V.p_write_out ~offset data));
    p_sync =
      (fun ~offset data -> rpc (Bytes.length data) (fun () -> p.V.p_sync ~offset data));
    (* A clustered writeback batch crosses the wire as one RPC. *)
    p_sync_v =
      (fun extents -> rpc (V.extents_bytes extents) (fun () -> p.V.p_sync_v extents));
    p_done_with = (fun () -> rpc 16 p.V.p_done_with);
    p_exten =
      List.map
        (function
          | V.Fs_pager ops -> V.Fs_pager (proxy_fs_pager net ~src:client ~dst:server ops)
          | other -> other)
        p.V.p_exten;
  }

let extent_bytes extents =
  List.fold_left (fun acc e -> acc + Bytes.length e.V.ext_data) 0 extents

(* Calls travel server -> client (coherency callbacks). *)
let proxy_cache net ~client ~server (c : V.cache_object) =
  let rpc bytes f = Net.rpc_retry net ~src:server ~dst:client ~bytes f in
  let ranged op ~offset ~size =
    let extents = rpc 32 (fun () -> op ~offset ~size) in
    (* The returned data rides back over the network too. *)
    Net.rpc_retry net ~src:client ~dst:server ~bytes:(extent_bytes extents) (fun () -> extents)
  in
  {
    c with
    V.c_flush_back = ranged c.V.c_flush_back;
    c_deny_writes = ranged c.V.c_deny_writes;
    c_write_back = ranged c.V.c_write_back;
    c_delete_range =
      (fun ~offset ~size -> rpc 32 (fun () -> c.V.c_delete_range ~offset ~size));
    c_zero_fill = (fun ~offset ~size -> rpc 32 (fun () -> c.V.c_zero_fill ~offset ~size));
    c_populate =
      (fun ~offset ~access data ->
        rpc (Bytes.length data) (fun () -> c.V.c_populate ~offset ~access data));
    c_destroy = (fun () -> rpc 16 c.V.c_destroy);
    c_exten =
      List.map
        (function
          | V.Fs_cache ops ->
              V.Fs_cache
                {
                  V.fc_invalidate_attr =
                    (fun () -> rpc attr_bytes ops.V.fc_invalidate_attr);
                  fc_write_back_attr =
                    (fun () -> rpc attr_bytes ops.V.fc_write_back_attr);
                  fc_populate_attr =
                    (fun a -> rpc attr_bytes (fun () -> ops.V.fc_populate_attr a));
                }
          | other -> other)
        c.V.c_exten;
  }

(* ------------------------------------------------------------------ *)
(* Remote memory objects and files                                     *)
(* ------------------------------------------------------------------ *)

let remote_mem net ~client ~server (mem : V.memory_object) =
  {
    mem with
    V.m_bind =
      (fun mgr access ->
        let mgr' =
          {
            mgr with
            V.cm_id = mgr.V.cm_id ^ "@" ^ client;
            cm_connect =
              (fun ~key pager ->
                let pager' = proxy_pager net ~client ~server pager in
                let cache =
                  Net.rpc_retry net ~src:server ~dst:client ~bytes:128 (fun () ->
                      mgr.V.cm_connect ~key pager')
                in
                proxy_cache net ~client ~server cache);
          }
        in
        Net.rpc_retry net ~src:client ~dst:server ~bytes:64 (fun () -> V.bind mem mgr' access));
    m_get_length =
      (fun () -> Net.rpc_retry net ~src:client ~dst:server ~bytes:16 (fun () -> V.get_length mem));
    m_set_length =
      (fun len ->
        Net.rpc_retry net ~src:client ~dst:server ~bytes:16 (fun () -> V.set_length mem len));
  }

let remote_file net ~client ~client_domain ~server (f : Sp_core.File.t) =
  {
    Sp_core.File.f_id = Printf.sprintf "dfs-remote:%s:%s" client f.Sp_core.File.f_id;
    f_domain = client_domain;
    f_mem = remote_mem net ~client ~server f.Sp_core.File.f_mem;
    f_read =
      (fun ~pos ~len ->
        Net.rpc_retry net ~src:client ~dst:server ~bytes:len (fun () ->
            Sp_core.File.read f ~pos ~len));
    f_write =
      (fun ~pos data ->
        Net.rpc_retry net ~src:client ~dst:server ~bytes:(Bytes.length data) (fun () ->
            Sp_core.File.write f ~pos data));
    f_stat =
      (fun () ->
        Net.rpc_retry net ~src:client ~dst:server ~bytes:attr_bytes (fun () ->
            Sp_core.File.stat f));
    f_set_attr =
      (fun a ->
        Net.rpc_retry net ~src:client ~dst:server ~bytes:attr_bytes (fun () ->
            Sp_core.File.set_attr f a));
    f_truncate =
      (fun len ->
        Net.rpc_retry net ~src:client ~dst:server ~bytes:16 (fun () ->
            Sp_core.File.truncate f len));
    f_sync =
      (fun () ->
        Net.rpc_retry net ~src:client ~dst:server ~bytes:16 (fun () -> Sp_core.File.sync f));
    f_exten = f.Sp_core.File.f_exten;
  }

(* ------------------------------------------------------------------ *)
(* The server layer                                                    *)
(* ------------------------------------------------------------------ *)

type server = {
  s_name : string;
  s_node : string;
  s_domain : Sp_obj.Sdomain.t;
  s_net : Net.t;
  s_vmm : Sp_vm.Vmm.t;
  mutable s_lower : Sp_core.Stackable.t option;
  mutable s_coh : Sp_core.Stackable.t option;
}

let servers : (string, server) Hashtbl.t = Hashtbl.create 4

let server_of (sfs : Sp_core.Stackable.t) =
  match Hashtbl.find_opt servers sfs.Sp_core.Stackable.sfs_name with
  | Some s -> s
  | None -> invalid_arg (sfs.Sp_core.Stackable.sfs_name ^ ": not a DFS server")

let lower_of s =
  match s.s_lower with
  | Some fs -> fs
  | None -> raise (Sp_core.Stackable.Stack_error (s.s_name ^ ": not stacked yet"))

let coh_of s =
  match s.s_coh with
  | Some fs -> fs
  | None -> raise (Sp_core.Stackable.Stack_error (s.s_name ^ ": not stacked yet"))

let make_server ?(node = "local") ~net ~vmm ~name () =
  let domain = Sp_obj.Sdomain.create ~node name in
  let s =
    {
      s_name = name;
      s_node = node;
      s_domain = domain;
      s_net = net;
      s_vmm = vmm;
      s_lower = None;
      s_coh = None;
    }
  in
  Hashtbl.replace servers name s;
  (* The local view: names resolve in the underlying file system and the
     underlying files are returned unchanged — local binds are thereby
     "forwarded" and local paging bypasses DFS entirely (Figure 7). *)
  let delegate f = f (lower_of s).Sp_core.Stackable.sfs_ctx in
  let local_ctx =
    {
      Sp_naming.Context.ctx_domain = domain;
      ctx_label = name;
      ctx_acl = (fun () -> Sp_naming.Acl.open_acl);
      ctx_set_acl = (fun _ -> ());
      ctx_resolve1 = (fun c -> delegate (fun ctx -> ctx.Sp_naming.Context.ctx_resolve1 c));
      ctx_bind1 = (fun c o -> delegate (fun ctx -> ctx.Sp_naming.Context.ctx_bind1 c o));
      ctx_rebind1 =
        (fun c o -> delegate (fun ctx -> ctx.Sp_naming.Context.ctx_rebind1 c o));
      ctx_unbind1 = (fun c -> delegate (fun ctx -> ctx.Sp_naming.Context.ctx_unbind1 c));
      ctx_list = (fun () -> delegate (fun ctx -> ctx.Sp_naming.Context.ctx_list ()));
      ctx_readdir1 =
        (fun ~cookie ~limit ->
          delegate (fun ctx -> ctx.Sp_naming.Context.ctx_readdir1 ~cookie ~limit));
    }
  in
  {
    Sp_core.Stackable.sfs_name = name;
    sfs_type = "dfs";
    sfs_domain = domain;
    sfs_ctx = local_ctx;
    sfs_stack_on =
      (fun under ->
        match s.s_lower with
        | Some _ ->
            raise
              (Sp_core.Stackable.Stack_error
                 (name ^ ": dfs stacks on exactly one file system"))
        | None ->
            s.s_lower <- Some under;
            (* The embedded coherency layer — "the Spring distributed file
               system is implemented as a coherency layer" (§6.2). *)
            let coh =
              Sp_coherency.Coherency_layer.make ~node ~domain ~vmm
                ~name:(name ^ ".coh") ()
            in
            Sp_core.Stackable.stack_on coh under;
            s.s_coh <- Some coh);
    sfs_unders = (fun () -> Option.to_list s.s_lower);
    sfs_create = (fun path -> Sp_core.Stackable.create (lower_of s) path);
    sfs_mkdir = (fun path -> Sp_core.Stackable.mkdir (lower_of s) path);
    sfs_remove = (fun path -> Sp_core.Stackable.remove (lower_of s) path);
    sfs_sync =
      (fun () ->
        Sp_core.Stackable.sync (coh_of s);
        Sp_core.Stackable.sync (lower_of s));
    sfs_drop_caches = (fun () -> Sp_core.Stackable.drop_caches (coh_of s));
  }

let creator ?(node = "local") ~net ~vmm () =
  {
    Sp_core.Stackable.cr_type = "dfs";
    cr_create = (fun ~name -> make_server ~node ~net ~vmm ~name ());
  }

let coherency_of sfs = coh_of (server_of sfs)

(* ------------------------------------------------------------------ *)
(* The client view                                                     *)
(* ------------------------------------------------------------------ *)

let import ~net ~client_node server_sfs =
  let s0 = server_of server_sfs in
  let sname = s0.s_name in
  let server_node = s0.s_node in
  let client_domain =
    Sp_obj.Sdomain.create ~node:client_node ("dfs-client:" ^ sname)
  in
  let memo : (string, Sp_core.File.t) Hashtbl.t = Hashtbl.create 16 in
  (* The client holds the server by *name*, not by value: every operation
     re-looks-up the current server incarnation, so a server restarted by
     a supervisor is picked up transparently.  Memoized remote files wrap
     the incarnation they were minted from; when the serving domain
     changes they are forgotten (operations on handles minted from the
     dead incarnation raise [Dead_domain] and must be re-opened, exactly
     like local files across a layer restart). *)
  let last_id = ref (Sp_obj.Sdomain.id s0.s_domain) in
  let current () =
    let s =
      match Hashtbl.find_opt servers sname with
      | Some s -> s
      | None -> invalid_arg (sname ^ ": not a DFS server")
    in
    if Sp_obj.Sdomain.id s.s_domain <> !last_id then begin
      Hashtbl.reset memo;
      last_id := Sp_obj.Sdomain.id s.s_domain
    end;
    s
  in
  let coh_now () = coh_of (current ()) in
  let wrap_remote f =
    match Hashtbl.find_opt memo f.Sp_core.File.f_id with
    | Some r -> r
    | None ->
        let r = remote_file net ~client:client_node ~client_domain ~server:server_node f in
        Hashtbl.replace memo f.Sp_core.File.f_id r;
        r
  in
  let rec import_ctx path =
    let label =
      Printf.sprintf "dfs-import:%s:%s" client_node (Sp_naming.Sname.to_string path)
    in
    let remote_resolve sub =
      Net.rpc_retry net ~src:client_node ~dst:server_node ~bytes:64 (fun () ->
          Sp_naming.Context.resolve (coh_now ()).Sp_core.Stackable.sfs_ctx sub)
    in
    let resolve1 component =
      let sub = Sp_naming.Sname.append path component in
      match remote_resolve sub with
      | Sp_core.File.File f -> Sp_core.File.File (wrap_remote f)
      | Sp_naming.Context.Context _ -> Sp_naming.Context.Context (import_ctx sub)
      | other -> other
    in
    {
      Sp_naming.Context.ctx_domain = client_domain;
      ctx_label = label;
      ctx_acl = (fun () -> Sp_naming.Acl.open_acl);
      ctx_set_acl = (fun _ -> ());
      ctx_resolve1 = resolve1;
      ctx_bind1 = (fun _ _ -> invalid_arg (label ^ ": bind via the server"));
      ctx_rebind1 = (fun _ _ -> invalid_arg (label ^ ": rebind via the server"));
      ctx_unbind1 =
        (fun component ->
          Net.rpc_retry net ~src:client_node ~dst:server_node ~bytes:64 (fun () ->
              Sp_naming.Context.unbind (coh_now ()).Sp_core.Stackable.sfs_ctx
                (Sp_naming.Sname.append path component)));
      ctx_list =
        (fun () ->
          Net.rpc_retry net ~src:client_node ~dst:server_node ~bytes:64 (fun () ->
              Sp_naming.Context.list (coh_now ()).Sp_core.Stackable.sfs_ctx path));
      ctx_readdir1 =
        (* One RPC per batch: the remote cursor streams a big directory
           without ever shipping the whole listing. *)
        (fun ~cookie ~limit ->
          Net.rpc_retry net ~src:client_node ~dst:server_node ~bytes:64 (fun () ->
              Sp_naming.Context.readdir (coh_now ()).Sp_core.Stackable.sfs_ctx
                path ~cookie ~limit));
    }
  in
  let rpc_to_server bytes f = Net.rpc_retry net ~src:client_node ~dst:server_node ~bytes f in
  {
    Sp_core.Stackable.sfs_name = sname ^ "@" ^ client_node;
    sfs_type = "dfs-import";
    sfs_domain = client_domain;
    sfs_ctx = import_ctx (Sp_naming.Sname.of_components []);
    sfs_stack_on =
      (fun _ ->
        raise
          (Sp_core.Stackable.Stack_error "dfs-import: imports cannot be stacked on"));
    sfs_unders = (fun () -> []);
    sfs_create =
      (fun path ->
        let f =
          rpc_to_server 64 (fun () -> Sp_core.Stackable.create (coh_now ()) path)
        in
        wrap_remote f);
    sfs_mkdir =
      (fun path -> rpc_to_server 64 (fun () -> Sp_core.Stackable.mkdir (coh_now ()) path));
    sfs_remove =
      (fun path -> rpc_to_server 64 (fun () -> Sp_core.Stackable.remove (coh_now ()) path));
    sfs_sync = (fun () -> rpc_to_server 16 (fun () -> Sp_core.Stackable.sync (coh_now ())));
    sfs_drop_caches = (fun () -> ());
  }
