module V = Sp_vm.Vm_types

let ps = V.page_size

type cfile = {
  key : string;  (* cache key of the exported memory object *)
  lower : Sp_core.File.t;
  mutable lower_pager : V.pager_object option;
  mutable lower_fs_pager : V.fs_pager_ops option;
  state : Block_state.t;
  lock : Sp_sched.Rwlock.t;
      (* serializes upper-initiated grant/push sections against concurrent
         scheduler tasks; from-below cache callbacks stay lock-free (they
         arrive under the lower layer's own serialization, and taking the
         lock there could deadlock against a task calling down) *)
  mutable attr : Sp_vm.Attr.t option;
  mutable attr_dirty : bool;
}

type layer = {
  l_name : string;
  l_epoch : int;  (* recovery epoch: bumped every time the same instance
                     name is re-made, i.e. on supervised restart *)
  l_domain : Sp_obj.Sdomain.t;
  l_vmm : Sp_vm.Vmm.t;
  l_embedded : bool;
  mutable l_lower : Sp_core.Stackable.t option;
  l_channels : Sp_vm.Pager_lib.t;  (* upper channels, all files *)
  l_files : (string, cfile) Hashtbl.t;  (* keyed by lower file id *)
  l_wrapped : (string, Sp_core.File.t * Sp_core.File.t) Hashtbl.t;
      (* lower file id -> (lower file, wrapper); the stored lower validates
         hits against identity reuse *)
}

let instances : (string, layer) Hashtbl.t = Hashtbl.create 4

let layer_of (sfs : Sp_core.Stackable.t) =
  match Hashtbl.find_opt instances sfs.Sp_core.Stackable.sfs_name with
  | Some l -> l
  | None -> invalid_arg (sfs.Sp_core.Stackable.sfs_name ^ ": not a coherency layer")

let lower_of l =
  match l.l_lower with
  | Some fs -> fs
  | None -> raise (Sp_core.Stackable.Stack_error (l.l_name ^ ": not stacked yet"))

let lower_pager_of cf =
  match cf.lower_pager with
  | Some p -> p
  | None -> failwith (cf.key ^ ": lower channel not established")

(* ------------------------------------------------------------------ *)
(* Attribute cache                                                     *)
(* ------------------------------------------------------------------ *)

(* Before trusting our cached copy, recall dirty attributes from upper
   cache managers that are file systems (fs_cache write-back): a layer
   stacked on us may hold newer times/length, exactly as it may hold newer
   page data.  Plain cache managers (VMMs) do not narrow and cost
   nothing. *)
let poll_upper_attrs l cf =
  let recall ch =
    match V.narrow_fs_cache ch.Sp_vm.Pager_lib.ch_cache with
    | None -> ()
    | Some ops -> (
        match V.fs_write_back_attr ch.Sp_vm.Pager_lib.ch_cache ops with
        | Some a ->
            cf.attr <- Some a;
            cf.attr_dirty <- true
        | None -> ())
  in
  List.iter recall (Sp_vm.Pager_lib.live_channels_for_key l.l_channels ~key:cf.key)

let fetch_attr_l l cf =
  poll_upper_attrs l cf;
  match cf.attr with
  | Some a -> a
  | None ->
      let a =
        match (cf.lower_fs_pager, cf.lower_pager) with
        | Some ops, Some pager -> V.fs_get_attr pager ops
        | _ -> Sp_core.File.stat cf.lower
      in
      cf.attr <- Some a;
      cf.attr_dirty <- false;
      a

(* Invalidate attribute caches of upper cache managers that are themselves
   file systems (the fs_cache subclass protocol of §4.3). *)
let invalidate_upper_attrs l cf ~except =
  let channels = Sp_vm.Pager_lib.live_channels_for_key l.l_channels ~key:cf.key in
  List.iter
    (fun ch ->
      if ch.Sp_vm.Pager_lib.ch_id <> except then
        match V.narrow_fs_cache ch.Sp_vm.Pager_lib.ch_cache with
        | Some ops -> V.fs_invalidate_attr ch.Sp_vm.Pager_lib.ch_cache ops
        | None -> ())
    channels

let update_attr l cf ~except f =
  let a = fetch_attr_l l cf in
  let a' = f a in
  if not (Sp_vm.Attr.equal a a') then begin
    cf.attr <- Some a';
    cf.attr_dirty <- true;
    invalidate_upper_attrs l cf ~except
  end

let attr_sync_down cf =
  if cf.attr_dirty then begin
    (match (cf.attr, cf.lower_fs_pager, cf.lower_pager) with
    | Some a, Some ops, Some pager -> V.fs_attr_sync pager ops a
    | Some a, _, _ ->
        V.set_length cf.lower.Sp_core.File.f_mem a.Sp_vm.Attr.len;
        Sp_core.File.set_attr cf.lower a
    | None, _, _ -> ());
    cf.attr_dirty <- false
  end

(* ------------------------------------------------------------------ *)
(* The MRSW protocol                                                   *)
(* ------------------------------------------------------------------ *)

let write_down cf extents =
  let pager = lower_pager_of cf in
  List.iter (fun e -> V.write_out pager ~offset:e.V.ext_offset e.V.ext_data) extents

(* [live_cache] fences channels of fail-stopped upper incarnations: the
   [None] branches at every call site already treat a vanished channel as
   "holder gone", which is exactly the recovery semantics we want. *)
let cache_of_channel l id = Sp_vm.Pager_lib.live_cache l.l_channels ~id

(* Make block [b] grantable to channel [me] in [access] mode by revoking
   conflicting holders. *)
let make_way l cf ~me ~access b =
  let offset = b * ps in
  let revoke (h : Block_state.holder) =
    if h.Block_state.h_channel <> me then
      match cache_of_channel l h.Block_state.h_channel with
      | None -> Block_state.remove cf.state b ~ch:h.Block_state.h_channel
      | Some cache -> (
          match access with
          | V.Read_write ->
              write_down cf (V.flush_back cache ~offset ~size:ps);
              Block_state.remove cf.state b ~ch:h.Block_state.h_channel
          | V.Read_only ->
              if h.Block_state.h_mode = V.Read_write then begin
                write_down cf (V.deny_writes cache ~offset ~size:ps);
                Block_state.downgrade cf.state b ~ch:h.Block_state.h_channel
              end)
  in
  List.iter revoke (Block_state.holders cf.state b)

let upper_pager l cf ~id =
  let page_in ~offset ~size ~access =
    let section () =
      let blocks = V.pages_covering ~offset ~size in
      List.iter (make_way l cf ~me:id ~access) blocks;
      let data = V.page_in (lower_pager_of cf) ~offset ~size ~access in
      List.iter
        (fun b -> Block_state.record cf.state b ~ch:id ~mode:access)
        blocks;
      data
    in
    match access with
    | V.Read_only -> Sp_sched.Rwlock.with_read cf.lock section
    | V.Read_write -> Sp_sched.Rwlock.with_write cf.lock section
  in
  let push retain ~offset data =
    Sp_sched.Rwlock.with_write cf.lock @@ fun () ->
    let pager = lower_pager_of cf in
    (match retain with
    | `Drop -> V.page_out pager ~offset data
    | `Read_only -> V.write_out pager ~offset data
    | `Same -> V.sync pager ~offset data);
    let blocks = V.pages_covering ~offset ~size:(Bytes.length data) in
    List.iter
      (fun b ->
        match retain with
        | `Drop -> Block_state.remove cf.state b ~ch:id
        | `Read_only ->
            (* The caller retains the data read-only (Appendix B), so it
               becomes/remains an RO holder eligible for revocation. *)
            Block_state.record cf.state b ~ch:id ~mode:V.Read_only;
            Block_state.downgrade cf.state b ~ch:id
        | `Same -> ())
      blocks
  in
  {
    V.p_domain = l.l_domain;
    p_label = cf.key;
    p_page_in = page_in;
    p_page_out = push `Drop;
    p_write_out = push `Read_only;
    p_sync = push `Same;
    (* Vectored sync: callers retain their mode, so there is no block
       state to update — forward the whole batch to the lower pager in a
       single vectored crossing. *)
    p_sync_v = (fun extents -> V.sync_v (lower_pager_of cf) extents);
    p_done_with =
      (fun () ->
        Block_state.remove_channel cf.state ~ch:id;
        Sp_vm.Pager_lib.remove l.l_channels id);
    p_exten =
      [
        V.Fs_pager
          {
            V.fp_get_attr = (fun () -> fetch_attr_l l cf);
            fp_set_attr =
              (fun a -> update_attr l cf ~except:id (fun _ -> a));
            fp_attr_sync =
              (fun a -> update_attr l cf ~except:id (fun _ -> a));
          };
      ];
  }

(* ------------------------------------------------------------------ *)
(* Acting as cache manager for the lower layer                          *)
(* ------------------------------------------------------------------ *)

(* Coherency actions arriving from below are forwarded to every upper
   cache; this is what lets coherent stacks be built out of non-coherent
   layers (§6.3). *)
let lower_cache_object l cf =
  let on_range action ~offset ~size =
    let collected = ref [] in
    let blocks = V.pages_covering ~offset ~size in
    let visit b =
      let off = b * ps in
      let revoke (h : Block_state.holder) =
        match cache_of_channel l h.Block_state.h_channel with
        | None -> Block_state.remove cf.state b ~ch:h.Block_state.h_channel
        | Some cache -> (
            match action with
            | `Flush ->
                collected := !collected @ V.flush_back cache ~offset:off ~size:ps;
                Block_state.remove cf.state b ~ch:h.Block_state.h_channel
            | `Deny ->
                if h.Block_state.h_mode = V.Read_write then begin
                  collected := !collected @ V.deny_writes cache ~offset:off ~size:ps;
                  Block_state.downgrade cf.state b ~ch:h.Block_state.h_channel
                end
            | `Write_back ->
                collected := !collected @ V.write_back cache ~offset:off ~size:ps
            | `Delete ->
                V.delete_range cache ~offset:off ~size:ps;
                Block_state.remove cf.state b ~ch:h.Block_state.h_channel
            | `Zero -> V.zero_fill cache ~offset:off ~size:ps)
      in
      List.iter revoke (Block_state.holders cf.state b)
    in
    List.iter visit blocks;
    !collected
  in
  {
    V.c_domain = l.l_domain;
    c_label = "coh-cache:" ^ cf.key;
    c_flush_back = (fun ~offset ~size -> on_range `Flush ~offset ~size);
    c_deny_writes = (fun ~offset ~size -> on_range `Deny ~offset ~size);
    c_write_back = (fun ~offset ~size -> on_range `Write_back ~offset ~size);
    c_delete_range = (fun ~offset ~size -> ignore (on_range `Delete ~offset ~size));
    c_zero_fill = (fun ~offset ~size -> ignore (on_range `Zero ~offset ~size));
    c_populate = (fun ~offset:_ ~access:_ _ -> ());
    c_destroy =
      (fun () ->
        (* Cascade: our backing identity is gone, so our exported identity
           is too. *)
        Sp_vm.Pager_lib.destroy_key l.l_channels ~key:cf.key;
        Hashtbl.remove l.l_files cf.lower.Sp_core.File.f_id;
        Hashtbl.remove l.l_wrapped cf.lower.Sp_core.File.f_id);
    c_exten =
      [
        V.Fs_cache
          {
            V.fc_invalidate_attr =
              (fun () ->
                cf.attr <- None;
                cf.attr_dirty <- false;
                invalidate_upper_attrs l cf ~except:(-1));
            fc_write_back_attr =
              (fun () ->
                if cf.attr_dirty then begin
                  cf.attr_dirty <- false;
                  cf.attr
                end
                else None);
            fc_populate_attr =
              (fun a ->
                cf.attr <- Some a;
                cf.attr_dirty <- false);
          };
      ];
  }

let manager l =
  {
    V.cm_id = "coh:" ^ l.l_name;
    cm_domain = l.l_domain;
    cm_connect =
      (fun ~key pager ->
        match Hashtbl.find_opt l.l_files key with
        | None -> failwith (l.l_name ^ ": connect for unknown file " ^ key)
        | Some cf ->
            cf.lower_pager <- Some pager;
            cf.lower_fs_pager <- V.narrow_fs_pager pager;
            lower_cache_object l cf);
  }

(* ------------------------------------------------------------------ *)
(* Per-file maintenance                                                *)
(* ------------------------------------------------------------------ *)

(* Apply a coherency sweep to every populated block of [cf]. *)
let sweep l cf action =
  Sp_sched.Rwlock.with_write cf.lock @@ fun () ->
  let visit b =
    let off = b * ps in
    let revoke (h : Block_state.holder) =
      match cache_of_channel l h.Block_state.h_channel with
      | None -> Block_state.remove cf.state b ~ch:h.Block_state.h_channel
      | Some cache -> (
          match action with
          | `Write_back -> write_down cf (V.write_back cache ~offset:off ~size:ps)
          | `Flush ->
              write_down cf (V.flush_back cache ~offset:off ~size:ps);
              Block_state.remove cf.state b ~ch:h.Block_state.h_channel)
    in
    List.iter revoke (Block_state.holders cf.state b)
  in
  List.iter visit (Block_state.populated_blocks cf.state)

let sync_cfile l cf =
  sweep l cf `Write_back;
  attr_sync_down cf

let drop_cfile_caches l cf =
  sweep l cf `Flush;
  attr_sync_down cf;
  cf.attr <- None

(* Shrinks must also discard stale cached pages beyond the new length:
   push the boundary page's dirty data down, zero its cached tail, delete
   fully-cut pages from every cache, then propagate the cut so the lower
   layer frees the blocks. *)
let truncate_cfile l cf len =
  let old = (fetch_attr_l l cf).Sp_vm.Attr.len in
  if len < old then begin
    let channels = Sp_vm.Pager_lib.live_channels_for_key l.l_channels ~key:cf.key in
    let cut = (len + ps - 1) / ps * ps in
    if len mod ps <> 0 then begin
      let edge = len - (len mod ps) in
      List.iter
        (fun ch ->
          write_down cf
            (V.write_back ch.Sp_vm.Pager_lib.ch_cache ~offset:edge ~size:ps);
          V.zero_fill ch.Sp_vm.Pager_lib.ch_cache ~offset:len ~size:(cut - len))
        channels
    end;
    if old > cut then
      List.iter
        (fun ch ->
          V.delete_range ch.Sp_vm.Pager_lib.ch_cache ~offset:cut ~size:(old - cut))
        channels;
    List.iter
      (fun b ->
        if b * ps >= cut then
          List.iter
            (fun (h : Block_state.holder) ->
              Block_state.remove cf.state b ~ch:h.Block_state.h_channel)
            (Block_state.holders cf.state b))
      (Block_state.populated_blocks cf.state);
    V.set_length cf.lower.Sp_core.File.f_mem len
  end;
  update_attr l cf ~except:(-1) (fun a ->
      Sp_vm.Attr.touch_mtime (Sp_vm.Attr.with_len a len))

(* ------------------------------------------------------------------ *)
(* Exported files                                                      *)
(* ------------------------------------------------------------------ *)

let make_cfile l (lower : Sp_core.File.t) =
  let cf =
    {
      key = Printf.sprintf "coh:%s:%s" l.l_name lower.Sp_core.File.f_id;
      lower;
      lower_pager = None;
      lower_fs_pager = None;
      state = Block_state.create ();
      lock = Sp_sched.Rwlock.create "coh";
      attr = None;
      attr_dirty = false;
    }
  in
  Hashtbl.replace l.l_files lower.Sp_core.File.f_id cf;
  (* Establish our cache-manager channel to the lower file eagerly. *)
  ignore (V.bind lower.Sp_core.File.f_mem (manager l) V.Read_write);
  cf

let make_memory_object l cf =
  {
    V.m_domain = l.l_domain;
    m_label = cf.key;
    m_bind =
      (fun mgr _access ->
        Sp_vm.Pager_lib.bind l.l_channels ~key:cf.key
          ~make_pager:(fun ~id -> upper_pager l cf ~id)
          mgr);
    m_get_length = (fun () -> (fetch_attr_l l cf).Sp_vm.Attr.len);
    m_set_length = (fun len -> truncate_cfile l cf len);
  }

let rec wrap_file l (lower : Sp_core.File.t) =
  match Hashtbl.find_opt l.l_wrapped lower.Sp_core.File.f_id with
  | Some (stored, f) when stored == lower -> f
  | Some _ | None ->
      let f = wrap_file_fresh l lower in
      Hashtbl.replace l.l_wrapped lower.Sp_core.File.f_id (lower, f);
      f

and wrap_file_fresh l (lower : Sp_core.File.t) =
  let cf = make_cfile l lower in
  let mem = make_memory_object l cf in
  let mapped =
    Sp_core.File.mapped_ops ~vmm:l.l_vmm ~mem
      ~get_attr:(fun () -> fetch_attr_l l cf)
      ~set_attr_len:(fun len ->
        update_attr l cf ~except:(-1) (fun a ->
            Sp_vm.Attr.touch_mtime (Sp_vm.Attr.with_len a (max len a.Sp_vm.Attr.len))))
  in
  {
    Sp_core.File.f_id = cf.key;
    f_domain = l.l_domain;
    f_mem = mem;
    f_read =
      (fun ~pos ~len ->
        update_attr l cf ~except:(-1) Sp_vm.Attr.touch_atime;
        mapped.Sp_core.File.mo_read ~pos ~len);
    f_write = mapped.Sp_core.File.mo_write;
    f_stat = (fun () -> fetch_attr_l l cf);
    f_set_attr = (fun a -> update_attr l cf ~except:(-1) (fun _ -> a));
    f_truncate = (fun len -> truncate_cfile l cf len);
    f_sync =
      (fun () ->
        mapped.Sp_core.File.mo_sync ();
        sync_cfile l cf;
        Sp_core.File.sync lower);
    f_exten = [];
  }

(* ------------------------------------------------------------------ *)
(* The stackable layer                                                 *)
(* ------------------------------------------------------------------ *)

let iter_cfiles l f = Hashtbl.iter (fun _ cf -> f cf) l.l_files

let make ?(node = "local") ?domain ?(embedded = false) ~vmm ~name () =
  let domain =
    match domain with Some d -> d | None -> Sp_obj.Sdomain.create ~node name
  in
  let epoch =
    match Hashtbl.find_opt instances name with
    | Some old -> old.l_epoch + 1
    | None -> 0
  in
  let l =
    {
      l_name = name;
      l_epoch = epoch;
      l_domain = domain;
      l_vmm = vmm;
      l_embedded = embedded;
      l_lower = None;
      l_channels = Sp_vm.Pager_lib.create ();
      l_files = Hashtbl.create 16;
      l_wrapped = Hashtbl.create 16;
    }
  in
  Hashtbl.replace instances name l;
  let ctx = ref None in
  let get_ctx () =
    match !ctx with
    | Some c -> c
    | None ->
        let lower = lower_of l in
        let charge_open (_ : Sp_core.File.t) =
          if not l.l_embedded then
            Sp_sim.Simclock.advance (Sp_sim.Cost_model.current ()).open_state_ns
        in
        let c =
          Sp_core.Mapped_context.make ~domain ~label:name
            ~lower:lower.Sp_core.Stackable.sfs_ctx ~wrap_file:(wrap_file l)
            ~on_file:charge_open ()
        in
        ctx := Some c;
        c
  in
  let resolve_through component =
    (get_ctx ()).Sp_naming.Context.ctx_resolve1 component
  in
  (* The exported context is a fixed record delegating to the lazily-built
     mapped context, so the stackable value can exist before stack_on. *)
  let exported_ctx =
    {
      Sp_naming.Context.ctx_domain = domain;
      ctx_label = name;
      ctx_acl = (fun () -> Sp_naming.Acl.open_acl);
      ctx_set_acl = (fun _ -> ());
      ctx_resolve1 = resolve_through;
      ctx_bind1 = (fun c o -> (get_ctx ()).Sp_naming.Context.ctx_bind1 c o);
      ctx_rebind1 = (fun c o -> (get_ctx ()).Sp_naming.Context.ctx_rebind1 c o);
      ctx_unbind1 = (fun c -> (get_ctx ()).Sp_naming.Context.ctx_unbind1 c);
      ctx_list = (fun () -> (get_ctx ()).Sp_naming.Context.ctx_list ());
      ctx_readdir1 =
        (fun ~cookie ~limit ->
          (get_ctx ()).Sp_naming.Context.ctx_readdir1 ~cookie ~limit);
    }
  in
  let self =
    {
      Sp_core.Stackable.sfs_name = name;
      sfs_type = "coherency";
      sfs_domain = domain;
      sfs_ctx = exported_ctx;
      sfs_stack_on =
        (fun under ->
          match l.l_lower with
          | Some _ ->
              raise
                (Sp_core.Stackable.Stack_error
                   (name ^ ": coherency layer stacks on exactly one file system"))
          | None -> l.l_lower <- Some under);
      sfs_unders = (fun () -> Option.to_list l.l_lower);
      sfs_create =
        (fun path ->
          let lower = lower_of l in
          let lower_file = Sp_core.Stackable.create lower path in
          wrap_file l lower_file);
      sfs_mkdir = (fun path -> Sp_core.Stackable.mkdir (lower_of l) path);
      sfs_remove =
        (fun path ->
          let lower = lower_of l in
          (match Sp_core.Stackable.open_file lower path with
          | lower_file -> (
              match Hashtbl.find_opt l.l_files lower_file.Sp_core.File.f_id with
              | Some cf ->
                  sweep l cf `Flush;
                  Sp_vm.Pager_lib.destroy_key l.l_channels ~key:cf.key;
                  Hashtbl.remove l.l_files lower_file.Sp_core.File.f_id;
                  Hashtbl.remove l.l_wrapped lower_file.Sp_core.File.f_id
              | None ->
                  Hashtbl.remove l.l_wrapped lower_file.Sp_core.File.f_id)
          | exception _ -> ());
          Sp_core.Stackable.remove lower path);
      sfs_sync =
        (fun () ->
          iter_cfiles l (fun cf -> sync_cfile l cf);
          Sp_core.Stackable.sync (lower_of l));
      sfs_drop_caches =
        (fun () ->
          (* Evict, don't just flush: the cfile table otherwise grows
             with every file ever touched, which unbounds the heap of a
             bulk build (the million-file scenario).  Evicted state is
             rebuilt on demand at the next open.  Forward down so the
             whole stack sheds its caches. *)
          iter_cfiles l (fun cf ->
              drop_cfile_caches l cf;
              Sp_vm.Pager_lib.destroy_key l.l_channels ~key:cf.key);
          Hashtbl.reset l.l_files;
          Hashtbl.reset l.l_wrapped;
          Sp_vm.Vmm.drop_caches l.l_vmm;
          Sp_core.Stackable.drop_caches (lower_of l));
    }
  in
  self

let creator ?(node = "local") ~vmm () =
  {
    Sp_core.Stackable.cr_type = "coherency";
    cr_create = (fun ~name -> make ~node ~vmm ~name ());
  }

let channel_count sfs = Sp_vm.Pager_lib.channel_count (layer_of sfs).l_channels
let recovery_epoch sfs = (layer_of sfs).l_epoch

let invariant_holds sfs =
  let l = layer_of sfs in
  Hashtbl.fold (fun _ cf ok -> ok && Block_state.invariant_holds cf.state) l.l_files true

let cached_attrs sfs =
  let l = layer_of sfs in
  Hashtbl.fold (fun _ cf n -> if cf.attr = None then n else n + 1) l.l_files 0
