(** The coherency layer (paper §6.2–§6.3).

    A stackable file system implementing a per-block
    multiple-readers/single-writer coherency protocol over any underlying
    layer.  For each exported file it:

    - acts as a {e pager} toward upper cache managers (VMMs, or stacked
      file systems), keeping track of which channel holds which block in
      which mode and triggering [deny_writes]/[flush_back] before granting
      conflicting access;
    - acts as a {e cache manager} toward the underlying file (binding to
      its memory object), so coherency actions initiated below are
      forwarded to the upper caches — this is what makes coherent stacks
      composable out of non-coherent layers (§6.3);
    - caches file attributes, using the [fs_cache]/[fs_pager] subclass
      operations when the lower pager narrows to a file system.

    The layer holds no page data of its own: its read/write operations map
    the exported file through the node VMM, so the VMM's unified page
    cache is the data cache — which is why "cached" operations make no
    calls to the lower layer (Table 2). *)

(** [make ~vmm ~name ()] creates an instance; stack it on exactly one
    underlying file system before use.  [domain] overrides the serving
    domain (used to co-locate layers for the same-domain experiments);
    [embedded] marks the instance as compiled into its lower layer (the
    "C++ library" alternative of §6.2) — it then skips the second
    per-open state charge, modelling a single combined open record. *)
val make :
  ?node:string ->
  ?domain:Sp_obj.Sdomain.t ->
  ?embedded:bool ->
  vmm:Sp_vm.Vmm.t ->
  name:string ->
  unit ->
  Sp_core.Stackable.t

(** Creator for [/fs_creators] (type ["coherency"]). *)
val creator : ?node:string -> vmm:Sp_vm.Vmm.t -> unit -> Sp_core.Stackable.creator

(** {1 Introspection} *)

(** Upper pager–cache channels served for a given exported file. *)
val channel_count : Sp_core.Stackable.t -> int

(** Recovery epoch of the instance: 0 for a first make, incremented each
    time the same instance name is re-made — i.e. on every supervised
    restart.  Stale references to the previous incarnation are fenced at
    the door ([Dead_domain]) and at the pager registry
    ([Pager_lib.live_cache]); the epoch makes the incarnation count
    observable. *)
val recovery_epoch : Sp_core.Stackable.t -> int

(** Check the MRSW invariant over every file's block state. *)
val invariant_holds : Sp_core.Stackable.t -> bool

(** Number of files with cached attributes. *)
val cached_attrs : Sp_core.Stackable.t -> int
