module V = Sp_vm.Vm_types

let ps = V.page_size

type t = {
  bs : Block_state.t;
  mutable t_epoch : int;
  t_lock : Sp_sched.Rwlock.t;
}

let create () =
  { bs = Block_state.create (); t_epoch = 0; t_lock = Sp_sched.Rwlock.create "mrsw" }

(* Serialize a whole grant section (revoke + produce + record) against
   concurrent scheduler tasks: read-only grants may overlap (the revoke
   and record steps are idempotent for RO holders), a read-write grant is
   exclusive.  Outside a scheduler run this is just [f ()]. *)
let granting t ~access f =
  match access with
  | V.Read_only -> Sp_sched.Rwlock.with_read t.t_lock f
  | V.Read_write -> Sp_sched.Rwlock.with_write t.t_lock f
let epoch t = t.t_epoch
let bump_epoch t = t.t_epoch <- t.t_epoch + 1

(* Incarnation fencing (see [Pager_lib.live_cache]): holders served by a
   fail-stopped domain read as absent, so every [None] branch below
   quietly forgets them instead of calling into a dead layer. *)
let cache_of channels id = Sp_vm.Pager_lib.live_cache channels ~id

let before_grant t ~channels ~key:_ ~me ~access ~offset ~size ~write_down =
  let revoke_block b =
    let off = b * ps in
    let revoke (h : Block_state.holder) =
      if h.Block_state.h_channel <> me then
        match cache_of channels h.Block_state.h_channel with
        | None -> Block_state.remove t.bs b ~ch:h.Block_state.h_channel
        | Some cache -> (
            match access with
            | V.Read_write ->
                List.iter write_down (V.flush_back cache ~offset:off ~size:ps);
                Block_state.remove t.bs b ~ch:h.Block_state.h_channel
            | V.Read_only ->
                if h.Block_state.h_mode = V.Read_write then begin
                  List.iter write_down (V.deny_writes cache ~offset:off ~size:ps);
                  Block_state.downgrade t.bs b ~ch:h.Block_state.h_channel
                end)
    in
    List.iter revoke (Block_state.holders t.bs b)
  in
  List.iter revoke_block (V.pages_covering ~offset ~size)

let after_grant t ~me ~access ~offset ~size =
  List.iter
    (fun b -> Block_state.record t.bs b ~ch:me ~mode:access)
    (V.pages_covering ~offset ~size)

let on_push t ~me ~retain ~offset ~size =
  List.iter
    (fun b ->
      match retain with
      | `Drop -> Block_state.remove t.bs b ~ch:me
      | `Read_only ->
          Block_state.record t.bs b ~ch:me ~mode:V.Read_only;
          Block_state.downgrade t.bs b ~ch:me
      | `Same -> ())
    (V.pages_covering ~offset ~size)

let sweep t ~channels ~key:_ action ~write_down =
  Sp_sched.Rwlock.with_write t.t_lock @@ fun () ->
  let visit b =
    let off = b * ps in
    let revoke (h : Block_state.holder) =
      match cache_of channels h.Block_state.h_channel with
      | None -> Block_state.remove t.bs b ~ch:h.Block_state.h_channel
      | Some cache -> (
          match action with
          | `Write_back -> List.iter write_down (V.write_back cache ~offset:off ~size:ps)
          | `Flush ->
              List.iter write_down (V.flush_back cache ~offset:off ~size:ps);
              Block_state.remove t.bs b ~ch:h.Block_state.h_channel)
    in
    List.iter revoke (Block_state.holders t.bs b)
  in
  List.iter visit (Block_state.populated_blocks t.bs)

let remove_channel t ~ch = Block_state.remove_channel t.bs ~ch

let drop_blocks_from t ~block =
  List.iter
    (fun b ->
      if b >= block then
        List.iter
          (fun (h : Block_state.holder) ->
            Block_state.remove t.bs b ~ch:h.Block_state.h_channel)
          (Block_state.holders t.bs b))
    (Block_state.populated_blocks t.bs)

let clear t =
  bump_epoch t;
  List.iter
    (fun b ->
      List.iter
        (fun (h : Block_state.holder) ->
          Block_state.remove t.bs b ~ch:h.Block_state.h_channel)
        (Block_state.holders t.bs b))
    (Block_state.populated_blocks t.bs)

let invariant_holds t = Block_state.invariant_holds t.bs
