(** Reusable single-writer/multiple-readers protocol over upper channels.

    "Each pager is responsible for keeping its own files coherent" (§4.2.1)
    — so every layer that exports files (COMPFS, CRYPTFS, MIRRORFS, ...)
    runs this protocol across the pager–cache channels of each file,
    exactly as the coherency layer does for its own.  The layer supplies
    [write_down], which lands revoked dirty extents in its backing store
    (compressing, encrypting, replicating... as the layer pleases). *)

type t

val create : unit -> t

(** Recovery epoch of this protocol instance: 0 at creation, bumped by
    {!bump_epoch} (and by {!clear}).  Layers bump it when the serving
    incarnation behind the state restarts, so stale callbacks can be
    recognised and dropped. *)
val epoch : t -> int

val bump_epoch : t -> unit

(** [granting t ~access f] runs the whole grant (or push) section [f] —
    revoke, produce, record — holding the protocol's readers/writer lock:
    read-only grants overlap, read-write grants and pushes are exclusive.
    Reentrant per task; outside an [Sp_sched] run this is just [f ()].
    {!sweep} takes the write side internally. *)
val granting : t -> access:Sp_vm.Vm_types.access -> (unit -> 'a) -> 'a

(** Revoke conflicting holders of the blocks in the range before granting
    channel [me] the given access (deny writers for read-only grants,
    flush everyone for read-write grants). *)
val before_grant :
  t ->
  channels:Sp_vm.Pager_lib.t ->
  key:string ->
  me:int ->
  access:Sp_vm.Vm_types.access ->
  offset:int ->
  size:int ->
  write_down:(Sp_vm.Vm_types.extent -> unit) ->
  unit

(** Record channel [me] as holding the range in the given mode (call after
    the data has been produced). *)
val after_grant :
  t -> me:int -> access:Sp_vm.Vm_types.access -> offset:int -> size:int -> unit

(** Adjust holder state after channel [me] pushed data down with the given
    retention semantics (page_out / write_out / sync). *)
val on_push :
  t ->
  me:int ->
  retain:[ `Drop | `Read_only | `Same ] ->
  offset:int ->
  size:int ->
  unit

(** Collect dirty data from every holder ([`Write_back] retains the
    caches, [`Flush] empties them). *)
val sweep :
  t ->
  channels:Sp_vm.Pager_lib.t ->
  key:string ->
  [ `Write_back | `Flush ] ->
  write_down:(Sp_vm.Vm_types.extent -> unit) ->
  unit

(** Forget a channel entirely. *)
val remove_channel : t -> ch:int -> unit

(** Forget all holders of blocks with index >= [block] (after truncate). *)
val drop_blocks_from : t -> block:int -> unit

(** Forget everything (after the backing store changed under the layer).
    Bumps the recovery epoch. *)
val clear : t -> unit

(** The MRSW invariant over the tracked state. *)
val invariant_holds : t -> bool
