module V = Sp_vm.Vm_types

let ps = V.page_size

type replica = Primary | Secondary

(* The file pair backing one exported file.  The lower handles are
   mutable: when a replica fails during create/open the survivor's handle
   stands in for it, and [repair] swaps a real handle back. *)
type pair = {
  p_key : string;
  mutable p_prim : Sp_core.File.t;
  mutable p_sec : Sp_core.File.t;
  p_state : Sp_coherency.Mrsw.t;
}

type layer = {
  l_name : string;
  l_domain : Sp_obj.Sdomain.t;
  l_vmm : Sp_vm.Vmm.t;
  mutable l_primary : Sp_core.Stackable.t option;
  mutable l_secondary : Sp_core.Stackable.t option;
  mutable l_degraded : replica option;
  mutable l_failovers : int;
  mutable l_repairs : int;
  l_channels : Sp_vm.Pager_lib.t;
  l_wrapped : (string, Sp_core.File.t) Hashtbl.t;  (* by path-independent key *)
  l_pairs : (string, pair) Hashtbl.t;  (* same keys; for [repair] *)
}

let instances : (string, layer) Hashtbl.t = Hashtbl.create 4

let layer_of (sfs : Sp_core.Stackable.t) =
  match Hashtbl.find_opt instances sfs.Sp_core.Stackable.sfs_name with
  | Some l -> l
  | None -> invalid_arg (sfs.Sp_core.Stackable.sfs_name ^ ": not a mirrorfs layer")

let replicas l =
  match (l.l_primary, l.l_secondary) with
  | Some p, Some s -> (p, s)
  | _ -> raise (Sp_core.Stackable.Stack_error (l.l_name ^ ": needs two underlays"))

let read_source l pair =
  match l.l_degraded with Some Primary -> pair.p_sec | _ -> pair.p_prim

let replica_name = function Primary -> "primary" | Secondary -> "secondary"

(* Copy [data] over [target], replacing whatever (possibly corrupt)
   content it held. *)
let overwrite target data =
  Sp_core.File.truncate target 0;
  if Bytes.length data > 0 then ignore (Sp_core.File.write target ~pos:0 data);
  Sp_core.File.sync target

let note_repair l ~file which reason =
  l.l_repairs <- l.l_repairs + 1;
  Sp_sim.Metrics.incr_integrity_repairs ();
  if Sp_trace.enabled () then
    Sp_trace.instant ~name:"scrub.repair"
      ~args:
        [
          ("layer", l.l_name); ("file", file); ("replica", replica_name which);
          ("reason", reason);
        ]
      ()

(* Automatic failover: an [Fserr.Io_error] from a replica (e.g. injected
   by [Sp_fault]) marks it degraded, exactly as [set_degraded] would, and
   the operation completes on the survivor.  [Sp_fault.Crash] is never
   caught — a machine crash is not a device failure. *)
let note_failover l which reason =
  l.l_degraded <- Some which;
  l.l_failovers <- l.l_failovers + 1;
  if Sp_trace.enabled () then
    Sp_trace.instant ~name:"mirrorfs.failover"
      ~args:
        [
          ("layer", l.l_name);
          ("replica", (match which with Primary -> "primary" | Secondary -> "secondary"));
          ("reason", reason);
        ]
      ()

(* Self-healing: [bad]'s stored bytes failed checksum verification but the
   other twin read clean — rewrite the bad twin from the good copy.  If
   the rewrite itself fails, fall back to degrading the bad replica, the
   same as an outright device failure. *)
let heal l pair ~bad ~good reason =
  let bad_f = match bad with Primary -> pair.p_prim | Secondary -> pair.p_sec in
  match overwrite bad_f (Sp_core.File.read_all good) with
  | () -> note_repair l ~file:pair.p_key bad reason
  | exception (Sp_core.Fserr.Io_error _ | Sp_core.Fserr.Checksum_error _) ->
      note_failover l bad reason

(* Run the same create/open/mkdir/remove against both lower file systems,
   tolerating the loss of one.  A degraded twin is never touched — its
   directory tree is stale until [repair] reconciles it, so probing it
   risks spurious [Already_exists]/[No_such_file] noise.  While both are
   live, a device or checksum failure on either side degrades that
   replica (directory metadata has no per-file heal path) and the
   survivor's result stands in for the missing one.  The stand-in handle
   is never reached while degraded — [read_source] and [each_target]
   route around the failed replica — and [repair] swaps real lower
   handles back in before the twin is trusted again.  When no replica
   survives, the error propagates. *)
let dual_acquire l ~prim_op ~sec_op =
  match l.l_degraded with
  | Some Primary ->
      let s = sec_op () in
      (s, s)
  | Some Secondary ->
      let p = prim_op () in
      (p, p)
  | None -> (
      let attempt op =
        match op () with
        | f -> Ok f
        | exception ((Sp_core.Fserr.Io_error r | Sp_core.Fserr.Checksum_error r) as e)
          ->
            Error (r, e)
      in
      let on_prim = attempt prim_op in
      let on_sec = attempt sec_op in
      match (on_prim, on_sec) with
      | Ok p, Ok s -> (p, s)
      | Ok p, Error (reason, _) ->
          note_failover l Secondary reason;
          (p, p)
      | Error (reason, _), Ok s ->
          note_failover l Primary reason;
          (s, s)
      | Error (_, e), Error _ -> raise e)

let with_read l pair f =
  match f (read_source l pair) with
  | v -> v
  | exception Sp_core.Fserr.Io_error reason when l.l_degraded = None ->
      note_failover l Primary reason;
      f pair.p_sec
  | exception Sp_core.Fserr.Checksum_error reason when l.l_degraded = None ->
      (* Silent corruption on the primary: serve the read from the
         secondary, then rewrite the primary's bad copy in place —
         redundancy is restored without degrading anything. *)
      let v = f pair.p_sec in
      heal l pair ~bad:Primary ~good:pair.p_sec reason;
      v

(* Apply [f] to every live replica of the pair.  A replica whose write
   fails is degraded as long as the other one took the write; when no
   replica survives, the error propagates. *)
let each_target l pair f =
  let targets =
    match l.l_degraded with
    | Some Primary -> [ (Secondary, pair.p_sec) ]
    | Some Secondary -> [ (Primary, pair.p_prim) ]
    | None -> [ (Primary, pair.p_prim); (Secondary, pair.p_sec) ]
  in
  let failures =
    List.filter_map
      (fun (which, file) ->
        match f file with
        | () -> None
        | exception Sp_core.Fserr.Io_error reason -> Some (which, reason)
        | exception Sp_core.Fserr.Checksum_error reason -> Some (which, reason))
      targets
  in
  match failures with
  | [] -> ()
  | [ (which, reason) ] when List.length targets = 2 -> note_failover l which reason
  | (_, reason) :: _ -> raise (Sp_core.Fserr.Io_error reason)

let pair_len l pair = with_read l pair (fun f -> (Sp_core.File.stat f).Sp_vm.Attr.len)

let upper_pager l pair ~id =
  let raw_push ~offset data =
    let len = pair_len l pair in
    let keep = min (Bytes.length data) (max 0 (len - offset)) in
    if keep > 0 then
      each_target l pair (fun f ->
          ignore (Sp_core.File.write f ~pos:offset (Bytes.sub data 0 keep)))
  in
  let write_down x = raw_push ~offset:x.V.ext_offset x.V.ext_data in
  let page_in ~offset ~size ~access =
    Sp_coherency.Mrsw.granting pair.p_state ~access @@ fun () ->
    Sp_coherency.Mrsw.before_grant pair.p_state ~channels:l.l_channels
      ~key:pair.p_key ~me:id ~access ~offset ~size ~write_down;
    let data = with_read l pair (fun f -> Sp_core.File.read f ~pos:offset ~len:size) in
    let data =
      if Bytes.length data = size then data
      else begin
        let padded = Bytes.make size '\000' in
        Bytes.blit data 0 padded 0 (Bytes.length data);
        padded
      end
    in
    Sp_coherency.Mrsw.after_grant pair.p_state ~me:id ~access ~offset ~size;
    data
  in
  let push retain ~offset data =
    Sp_coherency.Mrsw.granting pair.p_state ~access:V.Read_write @@ fun () ->
    raw_push ~offset data;
    Sp_coherency.Mrsw.on_push pair.p_state ~me:id ~retain ~offset
      ~size:(Bytes.length data)
  in
  {
    V.p_domain = l.l_domain;
    p_label = pair.p_key;
    p_page_in = page_in;
    p_page_out = push `Drop;
    p_write_out = push `Read_only;
    p_sync = push `Same;
    p_sync_v = V.sync_each (push `Same);
    p_done_with =
      (fun () ->
        Sp_coherency.Mrsw.remove_channel pair.p_state ~ch:id;
        Sp_vm.Pager_lib.remove l.l_channels id);
    p_exten =
      [
        V.Fs_pager
          {
            V.fp_get_attr = (fun () -> with_read l pair (fun f -> Sp_core.File.stat f));
            fp_set_attr =
              (fun a -> each_target l pair (fun f -> Sp_core.File.set_attr f a));
            fp_attr_sync =
              (fun a ->
                each_target l pair (fun f ->
                    V.set_length f.Sp_core.File.f_mem a.Sp_vm.Attr.len;
                    Sp_core.File.set_attr f a));
          };
      ];
  }

let truncate_pair l pair len =
  let old = pair_len l pair in
  if len < old then begin
    let channels = Sp_vm.Pager_lib.live_channels_for_key l.l_channels ~key:pair.p_key in
    let cut = (len + ps - 1) / ps * ps in
    List.iter
      (fun ch ->
        let extents = V.write_back ch.Sp_vm.Pager_lib.ch_cache ~offset:0 ~size:cut in
        List.iter
          (fun x ->
            each_target l pair (fun f ->
                ignore (Sp_core.File.write f ~pos:x.V.ext_offset x.V.ext_data)))
          extents;
        if len mod ps <> 0 then
          V.zero_fill ch.Sp_vm.Pager_lib.ch_cache ~offset:len ~size:(cut - len);
        V.delete_range ch.Sp_vm.Pager_lib.ch_cache ~offset:cut ~size:(max ps (old - cut)))
      channels;
    Sp_coherency.Mrsw.drop_blocks_from pair.p_state ~block:(cut / ps)
  end;
  each_target l pair (fun f -> Sp_core.File.truncate f len)

let wrap_pair l pair =
  Hashtbl.replace l.l_pairs pair.p_key pair;
  let mem =
    {
      V.m_domain = l.l_domain;
      m_label = pair.p_key;
      m_bind =
        (fun mgr _access ->
          Sp_vm.Pager_lib.bind l.l_channels ~key:pair.p_key
            ~make_pager:(fun ~id -> upper_pager l pair ~id)
            mgr);
      m_get_length = (fun () -> pair_len l pair);
      m_set_length = (fun len -> truncate_pair l pair len);
    }
  in
  let mapped =
    Sp_core.File.mapped_ops ~vmm:l.l_vmm ~mem
      ~get_attr:(fun () -> with_read l pair (fun f -> Sp_core.File.stat f))
      ~set_attr_len:(fun len ->
        each_target l pair (fun f ->
            if (Sp_core.File.stat f).Sp_vm.Attr.len < len then
              V.set_length f.Sp_core.File.f_mem len))
  in
  {
    Sp_core.File.f_id = pair.p_key;
    f_domain = l.l_domain;
    f_mem = mem;
    f_read = mapped.Sp_core.File.mo_read;
    f_write = mapped.Sp_core.File.mo_write;
    f_stat = (fun () -> with_read l pair (fun f -> Sp_core.File.stat f));
    f_set_attr = (fun a -> each_target l pair (fun f -> Sp_core.File.set_attr f a));
    f_truncate = (fun len -> truncate_pair l pair len);
    f_sync =
      (fun () ->
        mapped.Sp_core.File.mo_sync ();
        each_target l pair Sp_core.File.sync);
    f_exten = [];
  }

(* The exported context resolves in BOTH lower file systems by path, so it
   is built per-directory from the primary's listing. *)
let rec make_ctx l ~path =
  let label =
    if Sp_naming.Sname.is_empty path then l.l_name
    else l.l_name ^ "/" ^ Sp_naming.Sname.to_string path
  in
  let resolve1 component =
    let prim, sec = replicas l in
    let sub = Sp_naming.Sname.append path component in
    let source = match l.l_degraded with Some Primary -> sec | _ -> prim in
    let resolved =
      (* Directory metadata has no per-file heal path: a checksum failure
         while resolving degrades the replica, exactly like an I/O error. *)
      match Sp_naming.Context.resolve source.Sp_core.Stackable.sfs_ctx sub with
      | r -> r
      | exception (Sp_core.Fserr.Io_error reason | Sp_core.Fserr.Checksum_error reason)
        when l.l_degraded = None ->
          note_failover l Primary reason;
          Sp_naming.Context.resolve sec.Sp_core.Stackable.sfs_ctx sub
    in
    match resolved with
    | Sp_naming.Context.Context _ ->
        Sp_naming.Context.Context (make_ctx l ~path:sub)
    | Sp_core.File.File _ -> (
        let key =
          Printf.sprintf "mirrorfs:%s:%s" l.l_name (Sp_naming.Sname.to_string sub)
        in
        match Hashtbl.find_opt l.l_wrapped key with
        | Some f ->
            Sp_sim.Simclock.advance (Sp_sim.Cost_model.current ()).open_state_ns;
            Sp_core.File.File f
        | None ->
            let p_prim, p_sec =
              dual_acquire l
                ~prim_op:(fun () -> Sp_core.Stackable.open_file prim sub)
                ~sec_op:(fun () -> Sp_core.Stackable.open_file sec sub)
            in
            let f = wrap_pair l { p_key = key; p_prim; p_sec; p_state = Sp_coherency.Mrsw.create () } in
            Hashtbl.replace l.l_wrapped key f;
            Sp_sim.Simclock.advance (Sp_sim.Cost_model.current ()).open_state_ns;
            Sp_core.File.File f)
    | other -> other
  in
  let list () =
    let prim, sec = replicas l in
    let source = match l.l_degraded with Some Primary -> sec | _ -> prim in
    match Sp_naming.Context.list source.Sp_core.Stackable.sfs_ctx path with
    | listing -> listing
    | exception (Sp_core.Fserr.Io_error reason | Sp_core.Fserr.Checksum_error reason)
      when l.l_degraded = None ->
        note_failover l Primary reason;
        Sp_naming.Context.list sec.Sp_core.Stackable.sfs_ctx path
  in
  (* The twins hold identical directories, so a cursor taken from one
     replica stays valid on the other after a mid-scan failover. *)
  let readdir1 ~cookie ~limit =
    let prim, sec = replicas l in
    let source = match l.l_degraded with Some Primary -> sec | _ -> prim in
    match
      Sp_naming.Context.readdir source.Sp_core.Stackable.sfs_ctx path ~cookie
        ~limit
    with
    | batch -> batch
    | exception (Sp_core.Fserr.Io_error reason | Sp_core.Fserr.Checksum_error reason)
      when l.l_degraded = None ->
        note_failover l Primary reason;
        Sp_naming.Context.readdir sec.Sp_core.Stackable.sfs_ctx path ~cookie
          ~limit
  in
  {
    Sp_naming.Context.ctx_domain = l.l_domain;
    ctx_label = label;
    ctx_acl = (fun () -> Sp_naming.Acl.open_acl);
    ctx_set_acl = (fun _ -> ());
    ctx_resolve1 = resolve1;
    ctx_bind1 = (fun _ _ -> invalid_arg (label ^ ": bind files via create"));
    ctx_rebind1 = (fun _ _ -> invalid_arg (label ^ ": rebind unsupported"));
    ctx_unbind1 =
      (fun component ->
        let prim, sec = replicas l in
        let sub = Sp_naming.Sname.append path component in
        let key =
          Printf.sprintf "mirrorfs:%s:%s" l.l_name (Sp_naming.Sname.to_string sub)
        in
        Sp_vm.Pager_lib.destroy_key l.l_channels ~key;
        Hashtbl.remove l.l_wrapped key;
        Hashtbl.remove l.l_pairs key;
        (match l.l_degraded with
        | Some Primary -> ()
        | _ -> (
            try Sp_core.Stackable.remove prim sub
            with
            | (Sp_core.Fserr.Io_error reason | Sp_core.Fserr.Checksum_error reason)
            when l.l_degraded = None
            ->
              note_failover l Primary reason));
        match l.l_degraded with
        | Some Secondary -> ()
        | _ -> (
            try Sp_core.Stackable.remove sec sub with
            | Sp_core.Fserr.No_such_file _ -> ()
            | (Sp_core.Fserr.Io_error reason | Sp_core.Fserr.Checksum_error reason)
            when l.l_degraded = None
            ->
              note_failover l Secondary reason));
    ctx_list = list;
    ctx_readdir1 = readdir1;
  }

let make ?(node = "local") ?domain ~vmm ~name () =
  let domain =
    match domain with Some d -> d | None -> Sp_obj.Sdomain.create ~node name
  in
  let l =
    {
      l_name = name;
      l_domain = domain;
      l_vmm = vmm;
      l_primary = None;
      l_secondary = None;
      l_degraded = None;
      l_failovers = 0;
      l_repairs = 0;
      l_channels = Sp_vm.Pager_lib.create ();
      l_wrapped = Hashtbl.create 16;
      l_pairs = Hashtbl.create 16;
    }
  in
  Hashtbl.replace instances name l;
  let ctx = make_ctx l ~path:(Sp_naming.Sname.of_components []) in
  {
    Sp_core.Stackable.sfs_name = name;
    sfs_type = "mirrorfs";
    sfs_domain = domain;
    sfs_ctx = ctx;
    sfs_stack_on =
      (fun under ->
        match (l.l_primary, l.l_secondary) with
        | None, _ -> l.l_primary <- Some under
        | Some _, None -> l.l_secondary <- Some under
        | Some _, Some _ ->
            raise
              (Sp_core.Stackable.Stack_error
                 (name ^ ": mirrorfs stacks on exactly two file systems")));
    sfs_unders =
      (fun () -> List.filter_map Fun.id [ l.l_primary; l.l_secondary ]);
    sfs_create =
      (fun path ->
        let prim, sec = replicas l in
        let key =
          Printf.sprintf "mirrorfs:%s:%s" l.l_name (Sp_naming.Sname.to_string path)
        in
        let p_prim, p_sec =
          dual_acquire l
            ~prim_op:(fun () -> Sp_core.Stackable.create prim path)
            ~sec_op:(fun () -> Sp_core.Stackable.create sec path)
        in
        let f = wrap_pair l { p_key = key; p_prim; p_sec; p_state = Sp_coherency.Mrsw.create () } in
        Hashtbl.replace l.l_wrapped key f;
        f);
    sfs_mkdir =
      (fun path ->
        let prim, sec = replicas l in
        ignore
          (dual_acquire l
             ~prim_op:(fun () -> Sp_core.Stackable.mkdir prim path)
             ~sec_op:(fun () -> Sp_core.Stackable.mkdir sec path)));
    sfs_remove =
      (fun path ->
        let prim, sec = replicas l in
        let key =
          Printf.sprintf "mirrorfs:%s:%s" l.l_name (Sp_naming.Sname.to_string path)
        in
        Sp_vm.Pager_lib.destroy_key l.l_channels ~key;
        Hashtbl.remove l.l_wrapped key;
        Hashtbl.remove l.l_pairs key;
        ignore
          (dual_acquire l
             ~prim_op:(fun () -> Sp_core.Stackable.remove prim path)
             ~sec_op:(fun () -> Sp_core.Stackable.remove sec path)));
    sfs_sync =
      (fun () ->
        Hashtbl.iter (fun _ f -> Sp_core.File.sync f) l.l_wrapped;
        let prim, sec = replicas l in
        (match l.l_degraded with
        | Some Primary -> ()
        | _ -> (
            try Sp_core.Stackable.sync prim
            with
            | (Sp_core.Fserr.Io_error reason | Sp_core.Fserr.Checksum_error reason)
            when l.l_degraded = None
            ->
              note_failover l Primary reason));
        match l.l_degraded with
        | Some Secondary -> ()
        | _ -> (
            try Sp_core.Stackable.sync sec
            with
            | (Sp_core.Fserr.Io_error reason | Sp_core.Fserr.Checksum_error reason)
            when l.l_degraded = None
            ->
              note_failover l Secondary reason));
    sfs_drop_caches =
      (fun () ->
        (* A degraded replica is out of service: flushing its caches would
           touch the very metadata that failed, so route around it until
           [repair] brings it back. *)
        let prim, sec = replicas l in
        (match l.l_degraded with
        | Some Primary -> ()
        | _ -> (
            try Sp_core.Stackable.drop_caches prim
            with
            | (Sp_core.Fserr.Io_error reason | Sp_core.Fserr.Checksum_error reason)
            when l.l_degraded = None
            ->
              note_failover l Primary reason));
        match l.l_degraded with
        | Some Secondary -> ()
        | _ -> (
            try Sp_core.Stackable.drop_caches sec
            with
            | (Sp_core.Fserr.Io_error reason | Sp_core.Fserr.Checksum_error reason)
            when l.l_degraded = None
            ->
              note_failover l Secondary reason));
  }

let creator ?(node = "local") ~vmm () =
  {
    Sp_core.Stackable.cr_type = "mirrorfs";
    cr_create = (fun ~name -> make ~node ~vmm ~name ());
  }

let set_degraded sfs replica = (layer_of sfs).l_degraded <- replica
let degraded sfs = (layer_of sfs).l_degraded
let failovers sfs = (layer_of sfs).l_failovers
let repairs sfs = (layer_of sfs).l_repairs

let lower_pair sfs path =
  let l = layer_of sfs in
  let prim, sec = replicas l in
  (Sp_core.Stackable.open_file prim path, Sp_core.Stackable.open_file sec path)

let verify sfs path =
  let fp, fs = lower_pair sfs path in
  Bytes.equal (Sp_core.File.read_all fp) (Sp_core.File.read_all fs)

(* Background scrub: walk every file, read both twins from their devices
   (caches dropped first so verification actually reaches stored bytes),
   and heal divergence.  A checksum failure identifies the wrong twin
   directly; when both read clean but differ — a lost write leaves stale
   data whose old checksum still matches — the non-degraded twin is
   authoritative, as in {!repair}. *)
let scrub sfs =
  let l = layer_of sfs in
  let prim, sec = replicas l in
  Sp_core.Stackable.drop_caches prim;
  Sp_core.Stackable.drop_caches sec;
  let repaired = ref 0 in
  let read_clean f =
    match Sp_core.File.read_all f with
    | data -> Some data
    | exception Sp_core.Fserr.Checksum_error _ -> None
  in
  let fix path target which data =
    overwrite target data;
    incr repaired;
    note_repair l ~file:(Sp_naming.Sname.to_string path) which "scrub"
  in
  let scrub_file path =
    let fp = Sp_core.Stackable.open_file prim path in
    let fs = Sp_core.Stackable.open_file sec path in
    match (read_clean fp, read_clean fs) with
    | Some p, Some s ->
        if not (Bytes.equal p s) then (
          match l.l_degraded with
          | Some Primary -> fix path fp Primary s
          | _ -> fix path fs Secondary p)
    | None, Some s -> fix path fp Primary s
    | Some p, None -> fix path fs Secondary p
    | None, None -> ()
    (* both twins damaged: nothing trustworthy to heal from; reads keep
       raising Checksum_error, which is detection, not silence *)
  in
  let rec walk path =
    List.iter
      (fun component ->
        let sub = Sp_naming.Sname.append path component in
        match Sp_naming.Context.resolve prim.Sp_core.Stackable.sfs_ctx sub with
        | Sp_naming.Context.Context _ -> walk sub
        | Sp_core.File.File _ -> scrub_file sub
        | _ -> ())
      (Sp_naming.Context.list prim.Sp_core.Stackable.sfs_ctx path)
  in
  walk (Sp_naming.Sname.of_components []);
  !repaired

let repair sfs path =
  let l = layer_of sfs in
  let prim, sec = replicas l in
  let source_fs, target_fs =
    match l.l_degraded with Some Primary -> (sec, prim) | _ -> (prim, sec)
  in
  let source = Sp_core.Stackable.open_file source_fs path in
  let target =
    match Sp_core.Stackable.open_file target_fs path with
    | f -> f
    | exception Sp_core.Fserr.No_such_file _ -> Sp_core.Stackable.create target_fs path
  in
  let data = Sp_core.File.read_all source in
  Sp_core.File.truncate target 0;
  ignore (Sp_core.File.write target ~pos:0 data);
  Sp_core.File.sync target;
  (* A pair opened or created while the twin was down carries the
     survivor's handle in the failed slot; now that the twin holds the
     file again, swap the real lower handles back in. *)
  (match
     Hashtbl.find_opt l.l_pairs
       (Printf.sprintf "mirrorfs:%s:%s" l.l_name (Sp_naming.Sname.to_string path))
   with
  | Some pair ->
      pair.p_prim <- Sp_core.Stackable.open_file prim path;
      pair.p_sec <- Sp_core.Stackable.open_file sec path
  | None -> ());
  (* The twin is whole again: clear the degraded mark so a *later*
     failure of either replica can fail over afresh instead of being
     treated as a second fault on an already-degraded mirror. *)
  l.l_degraded <- None
