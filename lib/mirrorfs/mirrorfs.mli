(** MIRRORFS — a mirroring (replication) file system layer.

    The fs4 of Figure 3: a layer whose implementation "uses two underlying
    file systems to implement its function".  [stack_on] is called twice —
    first the primary, then the secondary.  Writes go to both replicas;
    reads are served from the primary, falling over to the secondary when
    the primary is marked degraded (simulated device failure).  A replica
    that raises [Fserr.Io_error] — e.g. under an injected {!Sp_fault}
    disk fault — is degraded {e automatically} as long as the other
    replica can complete the operation; the error only propagates when
    both replicas fail.  [verify] compares replicas and [repair] copies
    the healthy replica over the other, restoring redundancy after an
    outage.

    Silent corruption is handled differently from device failure: a
    replica that raises [Fserr.Checksum_error] on a read is {e healed} in
    place — the read completes from the clean twin and the bad copy is
    rewritten from it, without degrading anything ([repairs] counts these,
    and each emits a ["scrub.repair"] trace instant).  [scrub] does the
    same proactively for every file. *)

type replica = Primary | Secondary

val make :
  ?node:string ->
  ?domain:Sp_obj.Sdomain.t ->
  vmm:Sp_vm.Vmm.t ->
  name:string ->
  unit ->
  Sp_core.Stackable.t

(** Creator (type ["mirrorfs"]). *)
val creator : ?node:string -> vmm:Sp_vm.Vmm.t -> unit -> Sp_core.Stackable.creator

(** Mark a replica failed (reads and writes skip it) or clear the failure
    with [None]. *)
val set_degraded : Sp_core.Stackable.t -> replica option -> unit

val degraded : Sp_core.Stackable.t -> replica option

(** How many times this layer degraded a replica automatically after an
    [Fserr.Io_error] (manual {!set_degraded} calls are not counted). *)
val failovers : Sp_core.Stackable.t -> int

(** How many times a checksum-failing replica copy was rewritten from its
    clean twin (read-path self-healing plus {!scrub} repairs). *)
val repairs : Sp_core.Stackable.t -> int

(** Walk every file, drop caches so reads reach stored bytes, and compare
    the twins: a copy that fails checksum verification — or, when both
    read clean but differ (a lost write leaves stale data under a stale
    but self-consistent checksum), the non-authoritative one — is
    rewritten from the other.  Returns the number of file copies
    repaired.  A file whose both copies fail verification is left alone:
    there is nothing trustworthy to heal from, and reads keep failing
    loudly. *)
val scrub : Sp_core.Stackable.t -> int

(** [verify fs path] is [true] when both replicas hold identical content
    and length for the file at [path]. *)
val verify : Sp_core.Stackable.t -> Sp_naming.Sname.t -> bool

(** [repair fs path] copies the authoritative replica (the non-degraded
    one, or the primary) over the other, then re-checks. *)
val repair : Sp_core.Stackable.t -> Sp_naming.Sname.t -> unit
