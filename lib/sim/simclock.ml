let time_ns = ref 0

let now () = !time_ns

let advance ns =
  if ns < 0 then invalid_arg "Simclock.advance: negative duration";
  if ns > 0 then
    match !Sched_hook.advance_hook with
    | Some hook when Sched_hook.in_task () -> hook ns
    | _ ->
        time_ns := !time_ns + ns;
        Sched_hook.note_busy ns

let advance_raw ns = time_ns := !time_ns + ns

let reset () = time_ns := 0

let measure f =
  let start = now () in
  let result = f () in
  (result, now () - start)

let pp_duration ppf ns =
  if ns >= 1_000_000_000 then Format.fprintf ppf "%.2fs" (float_of_int ns /. 1e9)
  else if ns >= 1_000_000 then Format.fprintf ppf "%.2fms" (float_of_int ns /. 1e6)
  else if ns >= 1_000 then Format.fprintf ppf "%.1fus" (float_of_int ns /. 1e3)
  else Format.fprintf ppf "%dns" ns
