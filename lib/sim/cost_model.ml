type t = {
  local_call_ns : int;
  cross_domain_call_ns : int;
  kernel_call_ns : int;
  page_fault_ns : int;
  copy_per_byte_ns : int;
  cpu_op_ns : int;
  open_state_ns : int;
  disk_seek_ns : int;
  disk_rotate_ns : int;
  disk_per_block_ns : int;
  net_rtt_ns : int;
  net_per_byte_ns : int;
  bulk_setup_ns : int;
  bulk_call_ns : int;
  readahead_max_pages : int;
  commit_delay_ns : int;
}

(* Calibrated against Table 2/3 of the paper: cached 4KB read/write ~0.16ms,
   uncached (disk-bound) ~13.7ms, cross-domain open overhead ~100%, SunOS
   open 127us.  A 4400 RPM disk revolves in 13.6ms. *)
let paper_1993 =
  {
    local_call_ns = 2_000;
    cross_domain_call_ns = 120_000;
    kernel_call_ns = 15_000;
    page_fault_ns = 25_000;
    copy_per_byte_ns = 25;
    cpu_op_ns = 25;
    open_state_ns = 73_000;
    disk_seek_ns = 5_000_000;
    disk_rotate_ns = 6_800_000;
    disk_per_block_ns = 1_900_000;
    net_rtt_ns = 2_000_000;
    net_per_byte_ns = 800;
    bulk_setup_ns = 150_000;
    bulk_call_ns = 40_000;
    readahead_max_pages = 32;
    (* Well under one disk access (~13.7ms seek+rotate+transfer): a
       leader's wait costs a fraction of the commit it amortises. *)
    commit_delay_ns = 2_000_000;
  }

let fast =
  {
    local_call_ns = 0;
    cross_domain_call_ns = 1;
    kernel_call_ns = 0;
    page_fault_ns = 0;
    copy_per_byte_ns = 0;
    cpu_op_ns = 0;
    open_state_ns = 0;
    disk_seek_ns = 1;
    disk_rotate_ns = 1;
    disk_per_block_ns = 1;
    net_rtt_ns = 1;
    net_per_byte_ns = 0;
    (* bulk_call_ns must equal cross_domain_call_ns and bulk_setup_ns must
       be zero so the bulk path leaves fast-model totals unchanged;
       readahead_max_pages = 0 keeps adaptive read-ahead windowless so
       tests see deterministic page-in counts. *)
    bulk_setup_ns = 0;
    bulk_call_ns = 1;
    readahead_max_pages = 0;
    (* commit_delay_ns = 0 keeps the group-commit leader from sleeping, so
       fast-model tests see deterministic single-task sync behaviour. *)
    commit_delay_ns = 0;
  }

let model = ref paper_1993
let current () = !model
let set m = model := m

let with_model m f =
  let saved = !model in
  model := m;
  Fun.protect ~finally:(fun () -> model := saved) f
