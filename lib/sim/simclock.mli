(** Virtual simulation clock.

    All simulated costs in the system (domain crossings, disk seeks, network
    round trips, per-byte copies) advance this clock rather than consuming
    wall time.  The clock is a single global counter of nanoseconds, which is
    adequate because the simulation is single-threaded and deterministic. *)

(** Current virtual time in nanoseconds since [reset]. *)
val now : unit -> int

(** Advance the clock by the given number of nanoseconds.  Negative
    increments are rejected with [Invalid_argument].  When a discrete-event
    scheduler is active and the caller is a task (see {!Sched_hook}), the
    advance becomes a virtual-time sleep: the task suspends and other ready
    tasks run until the clock passes the wake time. *)
val advance : int -> unit

(** Move the clock without consulting the scheduler hook or charging busy
    time.  Scheduler internal — this is how the event loop jumps to the
    next timer; everything else must use {!advance}. *)
val advance_raw : int -> unit

(** Reset virtual time to zero.  Used by tests and by the benchmark harness
    between measurement runs. *)
val reset : unit -> unit

(** [measure f] runs [f ()] and returns its result together with the virtual
    time it consumed. *)
val measure : (unit -> 'a) -> 'a * int

(** Render a duration in nanoseconds as a human-friendly string, e.g.
    ["1.20ms"], ["82us"]. *)
val pp_duration : Format.formatter -> int -> unit
