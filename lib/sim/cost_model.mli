(** Cost model for the simulated Spring substrate.

    Costs are expressed in nanoseconds and charged to {!Simclock} by the
    subsystems ([Door] for invocations, [Disk] for storage, [Net] for the
    DFS network).  The [paper_1993] preset is calibrated so that the
    regenerated Table 2 / Table 3 have the same order of magnitude and the
    same ratios as the SPARCstation 10 numbers in the paper; [fast] is a
    near-zero model useful for wall-clock benchmarking of the code paths
    themselves. *)

type t = {
  local_call_ns : int;  (** same-domain object invocation (procedure call) *)
  cross_domain_call_ns : int;  (** cross-domain door invocation, round trip *)
  kernel_call_ns : int;  (** trap into the nucleus / VMM *)
  page_fault_ns : int;  (** fault handling overhead, excluding pager work *)
  copy_per_byte_ns : int;  (** memory copy cost per byte *)
  cpu_op_ns : int;  (** one unit of simulated CPU work (compress, crypt) *)
  open_state_ns : int;  (** per-layer open-file state maintenance on each open *)
  disk_seek_ns : int;  (** average seek *)
  disk_rotate_ns : int;  (** average rotational delay (half a revolution) *)
  disk_per_block_ns : int;  (** media transfer time for one block *)
  net_rtt_ns : int;  (** network round trip, small message *)
  net_per_byte_ns : int;  (** network transfer cost per payload byte *)
  bulk_setup_ns : int;
      (** one-time cost of establishing a shared bulk buffer between two
          domains (mapping pages into both address spaces); charged on the
          first data-bearing call of a domain pair, never per call *)
  bulk_call_ns : int;
      (** cross-domain data-bearing door call once a bulk channel is
          established (cheaper than [cross_domain_call_ns]: arguments ride
          in the pre-mapped buffer) *)
  readahead_max_pages : int;
      (** cap on the adaptive per-entry read-ahead window ([Vmm]); 0
          disables adaptive read-ahead entirely *)
  commit_delay_ns : int;
      (** group-commit window: how long a sync leader waits (idle) for
          concurrent syncs to join its transaction before sealing; 0
          disables the wait (the leader seals immediately) *)
}

(** Cost model approximating the paper's 40 MHz SPARCstation 10 with a
    424 MB 4400 RPM disk and a 10 Mb/s-era network. *)
val paper_1993 : t

(** Near-zero costs: simulated time stays close to zero so that Bechamel
    wall-clock measurements reflect only the OCaml code paths. *)
val fast : t

(** The model consulted by all subsystems.  Defaults to [paper_1993]. *)
val current : unit -> t

val set : t -> unit

(** [with_model m f] runs [f ()] with [m] installed, restoring the previous
    model afterwards (also on exceptions). *)
val with_model : t -> (unit -> 'a) -> 'a
