(** Scheduler integration points for the simulation substrate.

    [Sp_sched] (which depends on this library) installs the advance hook
    and maintains the current-task register while a discrete-event run is
    active; [Simclock] consults both on every [advance], and [Sp_trace]
    reads the per-context busy clocks to attribute self time.  With no
    scheduler active everything here is inert: the current context is the
    main context and [advance] behaves exactly as it always did. *)

(** The task id of the main (non-task) context: [-1]. *)
val main_ctx : int

(** Id of the context currently executing ([main_ctx] outside tasks). *)
val current : unit -> int

(** Set the current context.  Scheduler internal. *)
val set_current : int -> unit

(** [true] iff a scheduler task is the current context. *)
val in_task : unit -> bool

(** When set and [in_task ()], [Simclock.advance n] calls this instead of
    moving the clock: the scheduler suspends the task until virtual time
    has passed it.  Scheduler internal. *)
val advance_hook : (int -> unit) option ref

(** Charge [ns] of busy time to the current context (also accumulates the
    global total).  Called by [Simclock.advance] on the unhooked path and
    by the scheduler when it services a task's wait. *)
val note_busy : int -> unit

(** Busy time charged by context [id] ([main_ctx] for the main context). *)
val busy_of : int -> int

(** Busy time charged by the current context. *)
val busy : unit -> int

(** Busy time charged by all contexts together.  Equals elapsed wall time
    when no tasks overlap; exceeds it when they do. *)
val total_busy : unit -> int

(** Clear the hook, the current-task register and all busy clocks. *)
val reset : unit -> unit
