(** Global event counters for the simulated system.

    Tests use counter snapshots to assert structural properties that the
    paper states qualitatively — e.g. "when the coherency layer caches data
    there are no calls to the lower layer", or "local page traffic does not
    involve DFS". *)

type snapshot = {
  cross_domain_calls : int;
  local_calls : int;
  kernel_calls : int;
  page_faults : int;
  page_ins : int;
  page_outs : int;
  disk_reads : int;
  disk_writes : int;
  net_messages : int;
  net_bytes : int;
  coherency_actions : int;  (** deny_writes/flush_back/write_back issued *)
  attr_fetches : int;  (** fs_pager attribute fetches that left a layer *)
  faults_injected : int;  (** faults fired by an armed [Sp_fault] plan *)
  net_retries : int;  (** RPC attempts repeated after drop/timeout *)
  checksum_failures : int;  (** reads whose data failed checksum verification *)
  integrity_repairs : int;  (** corrupt blocks rewritten from a good copy *)
  bulk_handoffs : int;
      (** payloads handed over without a marshalling copy (same-domain by
          reference, or a source writing straight into a bulk buffer) *)
  bulk_copies : int;  (** payloads copied once into a shared bulk buffer *)
  bulk_setups : int;  (** bulk channels established (one per domain pair) *)
  readahead_hits : int;  (** faults absorbed by a previously prefetched page *)
  readahead_wasted : int;  (** prefetched pages retired without ever being hit *)
  name_cache_hits : int;  (** resolutions served from a {!Sp_naming.Name_cache} *)
  name_cache_misses : int;  (** resolutions that had to walk the context chain *)
  name_cache_negative_hits : int;
      (** lookups answered "unbound" from a cached negative entry *)
  queue_ns : int;
      (** virtual time tasks spent waiting for a contended resource (door
          station, disk queue, Mrsw lock) before being served *)
  avail_shed : int;
      (** ops fast-failed by an open [Sp_avail] circuit breaker instead of
          queueing behind a dead domain *)
  avail_retried : int;  (** ops that succeeded only after availability retry *)
  avail_failed : int;
      (** ops that exhausted retry/deadline and surfaced an error *)
  avail_degraded : int;  (** ops served by a degraded (read-only) fallback *)
}

val cross_domain_calls : unit -> int

(** Read a single counter without taking a full snapshot (symmetric with
    {!cross_domain_calls}). *)
val net_messages : unit -> int

val net_bytes : unit -> int
val faults_injected : unit -> int
val net_retries : unit -> int
val checksum_failures : unit -> int
val integrity_repairs : unit -> int
val incr_cross_domain_calls : unit -> unit
val incr_local_calls : unit -> unit
val incr_kernel_calls : unit -> unit
val incr_page_faults : unit -> unit
val incr_page_ins : unit -> unit
val incr_page_outs : unit -> unit
val incr_disk_reads : unit -> unit
val incr_disk_writes : unit -> unit
val incr_net_messages : unit -> unit
val add_net_bytes : int -> unit
val incr_coherency_actions : unit -> unit
val incr_attr_fetches : unit -> unit
val incr_faults_injected : unit -> unit
val incr_net_retries : unit -> unit
val incr_checksum_failures : unit -> unit
val incr_integrity_repairs : unit -> unit
val bulk_handoffs : unit -> int
val bulk_copies : unit -> int
val bulk_setups : unit -> int
val readahead_hits : unit -> int
val readahead_wasted : unit -> int
val incr_bulk_handoffs : unit -> unit
val incr_bulk_copies : unit -> unit
val incr_bulk_setups : unit -> unit
val incr_readahead_hits : unit -> unit
val incr_readahead_wasted : unit -> unit
val name_cache_hits : unit -> int
val name_cache_misses : unit -> int
val name_cache_negative_hits : unit -> int
val incr_name_cache_hits : unit -> unit
val incr_name_cache_misses : unit -> unit
val incr_name_cache_negative_hits : unit -> unit
val queue_ns : unit -> int
val add_queue_ns : int -> unit
val avail_shed : unit -> int
val avail_retried : unit -> int
val avail_failed : unit -> int
val avail_degraded : unit -> int
val incr_avail_shed : unit -> unit
val incr_avail_retried : unit -> unit
val incr_avail_failed : unit -> unit
val incr_avail_degraded : unit -> unit

(** Capture the current counter values. *)
val snapshot : unit -> snapshot

(** The all-zero snapshot. *)
val zero : snapshot

(** [diff ~before ~after] is the per-counter difference. *)
val diff : before:snapshot -> after:snapshot -> snapshot

(** [add a b] is the per-counter sum (used when accumulating the deltas of
    sibling trace spans). *)
val add : snapshot -> snapshot -> snapshot

(** Reset every counter to zero. *)
val reset : unit -> unit

val pp : Format.formatter -> snapshot -> unit
