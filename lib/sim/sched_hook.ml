(* Bridge between the bottom-of-stack simulation primitives and the
   discrete-event scheduler ([Sp_sched]), which lives higher in the
   dependency order.  The scheduler installs an advance hook and keeps
   the current-task register up to date; [Simclock] and [Sp_trace] read
   both without depending on the scheduler library.

   Task id -1 is the main (non-task) context.  Everything here is plain
   mutable state: the simulation is single-threaded. *)

let main_ctx = -1
let current_task = ref main_ctx
let current () = !current_task
let set_current id = current_task := id
let in_task () = !current_task >= 0

(* When set, [Simclock.advance] from inside a task routes through the
   scheduler (the task sleeps in virtual time and other tasks run). *)
let advance_hook : (int -> unit) option ref = ref None

(* Per-context busy time: virtual nanoseconds *charged by* a context, as
   opposed to wall (global-clock) time elapsed while it happened to have
   a frame open.  Under concurrency the two differ: while a task waits in
   a queue, the clock moves but the task is not busy.  Trace self-time
   attribution partitions busy time, never wall time (they coincide when
   no scheduler is active). *)
let main_busy = ref 0
let task_busy : (int, int ref) Hashtbl.t = Hashtbl.create 64
let total_busy_ns = ref 0

let busy_cell id =
  if id < 0 then main_busy
  else
    match Hashtbl.find_opt task_busy id with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.replace task_busy id r;
        r

let note_busy ns =
  if ns > 0 then begin
    let c = busy_cell !current_task in
    c := !c + ns;
    total_busy_ns := !total_busy_ns + ns
  end

let busy_of id = !(busy_cell id)
let busy () = busy_of !current_task
let total_busy () = !total_busy_ns

let reset () =
  current_task := main_ctx;
  advance_hook := None;
  main_busy := 0;
  total_busy_ns := 0;
  Hashtbl.reset task_busy
