type snapshot = {
  cross_domain_calls : int;
  local_calls : int;
  kernel_calls : int;
  page_faults : int;
  page_ins : int;
  page_outs : int;
  disk_reads : int;
  disk_writes : int;
  net_messages : int;
  net_bytes : int;
  coherency_actions : int;
  attr_fetches : int;
  faults_injected : int;
  net_retries : int;
  checksum_failures : int;
  integrity_repairs : int;
  bulk_handoffs : int;
  bulk_copies : int;
  bulk_setups : int;
  readahead_hits : int;
  readahead_wasted : int;
  name_cache_hits : int;
  name_cache_misses : int;
  name_cache_negative_hits : int;
  queue_ns : int;
  avail_shed : int;
  avail_retried : int;
  avail_failed : int;
  avail_degraded : int;
}

let zero =
  {
    cross_domain_calls = 0;
    local_calls = 0;
    kernel_calls = 0;
    page_faults = 0;
    page_ins = 0;
    page_outs = 0;
    disk_reads = 0;
    disk_writes = 0;
    net_messages = 0;
    net_bytes = 0;
    coherency_actions = 0;
    attr_fetches = 0;
    faults_injected = 0;
    net_retries = 0;
    checksum_failures = 0;
    integrity_repairs = 0;
    bulk_handoffs = 0;
    bulk_copies = 0;
    bulk_setups = 0;
    readahead_hits = 0;
    readahead_wasted = 0;
    name_cache_hits = 0;
    name_cache_misses = 0;
    name_cache_negative_hits = 0;
    queue_ns = 0;
    avail_shed = 0;
    avail_retried = 0;
    avail_failed = 0;
    avail_degraded = 0;
  }

let state = ref zero

let cross_domain_calls () = !state.cross_domain_calls
let net_messages () = !state.net_messages
let net_bytes () = !state.net_bytes

let incr_cross_domain_calls () =
  state := { !state with cross_domain_calls = !state.cross_domain_calls + 1 }

let incr_local_calls () = state := { !state with local_calls = !state.local_calls + 1 }
let incr_kernel_calls () = state := { !state with kernel_calls = !state.kernel_calls + 1 }
let incr_page_faults () = state := { !state with page_faults = !state.page_faults + 1 }
let incr_page_ins () = state := { !state with page_ins = !state.page_ins + 1 }
let incr_page_outs () = state := { !state with page_outs = !state.page_outs + 1 }
let incr_disk_reads () = state := { !state with disk_reads = !state.disk_reads + 1 }
let incr_disk_writes () = state := { !state with disk_writes = !state.disk_writes + 1 }
let incr_net_messages () = state := { !state with net_messages = !state.net_messages + 1 }
let add_net_bytes n = state := { !state with net_bytes = !state.net_bytes + n }

let incr_coherency_actions () =
  state := { !state with coherency_actions = !state.coherency_actions + 1 }

let incr_attr_fetches () = state := { !state with attr_fetches = !state.attr_fetches + 1 }

let faults_injected () = !state.faults_injected
let net_retries () = !state.net_retries

let incr_faults_injected () =
  state := { !state with faults_injected = !state.faults_injected + 1 }

let incr_net_retries () = state := { !state with net_retries = !state.net_retries + 1 }
let checksum_failures () = !state.checksum_failures
let integrity_repairs () = !state.integrity_repairs

let incr_checksum_failures () =
  state := { !state with checksum_failures = !state.checksum_failures + 1 }

let incr_integrity_repairs () =
  state := { !state with integrity_repairs = !state.integrity_repairs + 1 }

let bulk_handoffs () = !state.bulk_handoffs
let bulk_copies () = !state.bulk_copies
let bulk_setups () = !state.bulk_setups
let readahead_hits () = !state.readahead_hits
let readahead_wasted () = !state.readahead_wasted
let incr_bulk_handoffs () = state := { !state with bulk_handoffs = !state.bulk_handoffs + 1 }
let incr_bulk_copies () = state := { !state with bulk_copies = !state.bulk_copies + 1 }
let incr_bulk_setups () = state := { !state with bulk_setups = !state.bulk_setups + 1 }
let incr_readahead_hits () = state := { !state with readahead_hits = !state.readahead_hits + 1 }

let incr_readahead_wasted () =
  state := { !state with readahead_wasted = !state.readahead_wasted + 1 }

let name_cache_hits () = !state.name_cache_hits
let name_cache_misses () = !state.name_cache_misses
let name_cache_negative_hits () = !state.name_cache_negative_hits

let incr_name_cache_hits () =
  state := { !state with name_cache_hits = !state.name_cache_hits + 1 }

let incr_name_cache_misses () =
  state := { !state with name_cache_misses = !state.name_cache_misses + 1 }

let incr_name_cache_negative_hits () =
  state :=
    { !state with name_cache_negative_hits = !state.name_cache_negative_hits + 1 }

let queue_ns () = !state.queue_ns
let add_queue_ns n = state := { !state with queue_ns = !state.queue_ns + n }

let avail_shed () = !state.avail_shed
let avail_retried () = !state.avail_retried
let avail_failed () = !state.avail_failed
let avail_degraded () = !state.avail_degraded
let incr_avail_shed () = state := { !state with avail_shed = !state.avail_shed + 1 }
let incr_avail_retried () = state := { !state with avail_retried = !state.avail_retried + 1 }
let incr_avail_failed () = state := { !state with avail_failed = !state.avail_failed + 1 }

let incr_avail_degraded () =
  state := { !state with avail_degraded = !state.avail_degraded + 1 }

let snapshot () = !state

let diff ~before ~after =
  {
    cross_domain_calls = after.cross_domain_calls - before.cross_domain_calls;
    local_calls = after.local_calls - before.local_calls;
    kernel_calls = after.kernel_calls - before.kernel_calls;
    page_faults = after.page_faults - before.page_faults;
    page_ins = after.page_ins - before.page_ins;
    page_outs = after.page_outs - before.page_outs;
    disk_reads = after.disk_reads - before.disk_reads;
    disk_writes = after.disk_writes - before.disk_writes;
    net_messages = after.net_messages - before.net_messages;
    net_bytes = after.net_bytes - before.net_bytes;
    coherency_actions = after.coherency_actions - before.coherency_actions;
    attr_fetches = after.attr_fetches - before.attr_fetches;
    faults_injected = after.faults_injected - before.faults_injected;
    net_retries = after.net_retries - before.net_retries;
    checksum_failures = after.checksum_failures - before.checksum_failures;
    integrity_repairs = after.integrity_repairs - before.integrity_repairs;
    bulk_handoffs = after.bulk_handoffs - before.bulk_handoffs;
    bulk_copies = after.bulk_copies - before.bulk_copies;
    bulk_setups = after.bulk_setups - before.bulk_setups;
    readahead_hits = after.readahead_hits - before.readahead_hits;
    readahead_wasted = after.readahead_wasted - before.readahead_wasted;
    name_cache_hits = after.name_cache_hits - before.name_cache_hits;
    name_cache_misses = after.name_cache_misses - before.name_cache_misses;
    name_cache_negative_hits =
      after.name_cache_negative_hits - before.name_cache_negative_hits;
    queue_ns = after.queue_ns - before.queue_ns;
    avail_shed = after.avail_shed - before.avail_shed;
    avail_retried = after.avail_retried - before.avail_retried;
    avail_failed = after.avail_failed - before.avail_failed;
    avail_degraded = after.avail_degraded - before.avail_degraded;
  }

let add a b =
  {
    cross_domain_calls = a.cross_domain_calls + b.cross_domain_calls;
    local_calls = a.local_calls + b.local_calls;
    kernel_calls = a.kernel_calls + b.kernel_calls;
    page_faults = a.page_faults + b.page_faults;
    page_ins = a.page_ins + b.page_ins;
    page_outs = a.page_outs + b.page_outs;
    disk_reads = a.disk_reads + b.disk_reads;
    disk_writes = a.disk_writes + b.disk_writes;
    net_messages = a.net_messages + b.net_messages;
    net_bytes = a.net_bytes + b.net_bytes;
    coherency_actions = a.coherency_actions + b.coherency_actions;
    attr_fetches = a.attr_fetches + b.attr_fetches;
    faults_injected = a.faults_injected + b.faults_injected;
    net_retries = a.net_retries + b.net_retries;
    checksum_failures = a.checksum_failures + b.checksum_failures;
    integrity_repairs = a.integrity_repairs + b.integrity_repairs;
    bulk_handoffs = a.bulk_handoffs + b.bulk_handoffs;
    bulk_copies = a.bulk_copies + b.bulk_copies;
    bulk_setups = a.bulk_setups + b.bulk_setups;
    readahead_hits = a.readahead_hits + b.readahead_hits;
    readahead_wasted = a.readahead_wasted + b.readahead_wasted;
    name_cache_hits = a.name_cache_hits + b.name_cache_hits;
    name_cache_misses = a.name_cache_misses + b.name_cache_misses;
    name_cache_negative_hits =
      a.name_cache_negative_hits + b.name_cache_negative_hits;
    queue_ns = a.queue_ns + b.queue_ns;
    avail_shed = a.avail_shed + b.avail_shed;
    avail_retried = a.avail_retried + b.avail_retried;
    avail_failed = a.avail_failed + b.avail_failed;
    avail_degraded = a.avail_degraded + b.avail_degraded;
  }

let reset () = state := zero

let pp ppf s =
  Format.fprintf ppf
    "@[<v>cross_domain_calls=%d local_calls=%d kernel_calls=%d@ \
     page_faults=%d page_ins=%d page_outs=%d@ \
     disk_reads=%d disk_writes=%d@ \
     net_messages=%d net_bytes=%d@ \
     coherency_actions=%d attr_fetches=%d@ \
     faults_injected=%d net_retries=%d@ \
     checksum_failures=%d integrity_repairs=%d@ \
     bulk_handoffs=%d bulk_copies=%d bulk_setups=%d@ \
     readahead_hits=%d readahead_wasted=%d@ \
     name_cache_hits=%d name_cache_misses=%d name_cache_negative_hits=%d@ \
     queue_ns=%d@ \
     avail_shed=%d avail_retried=%d avail_failed=%d avail_degraded=%d@]"
    s.cross_domain_calls s.local_calls s.kernel_calls s.page_faults s.page_ins
    s.page_outs s.disk_reads s.disk_writes s.net_messages s.net_bytes
    s.coherency_actions s.attr_fetches s.faults_injected s.net_retries
    s.checksum_failures s.integrity_repairs s.bulk_handoffs s.bulk_copies
    s.bulk_setups s.readahead_hits s.readahead_wasted s.name_cache_hits
    s.name_cache_misses s.name_cache_negative_hits s.queue_ns s.avail_shed
    s.avail_retried s.avail_failed s.avail_degraded
