exception Crash of string
exception Injected of string

module Rng = struct
  (* splitmix64: tiny, full-period, and completely determined by the seed.
     Draws happen in operation order, so a (plan, workload) pair replays
     bit-identically. *)
  type t = { mutable state : int64 }

  let create seed = { state = Int64.of_int seed }

  let next t =
    let open Int64 in
    t.state <- add t.state 0x9E3779B97F4A7C15L;
    let z = t.state in
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    logxor z (shift_right_logical z 31)

  let int t bound =
    if bound <= 0 then invalid_arg "Sp_fault.Rng.int: bound <= 0";
    Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))

  let float t =
    (* 53 high bits -> uniform in [0, 1) *)
    Int64.to_float (Int64.shift_right_logical (next t) 11) /. 9007199254740992.0
end

type fault =
  | Fail_stop
  | Io_error
  | Torn_write
  | Torn_write_crash
  | Drop
  | Delay of int
  | Domain_crash
  | Bitrot
  | Misdirected_write
  | Lost_write

type rule = {
  r_point : string;
  r_label : string option;
  r_after : int;
  r_count : int;
  r_prob : float;
  r_fault : fault;
}

let rule ~point ?label ?(after = 0) ?(count = max_int) ?(prob = 1.0) fault =
  if after < 0 then invalid_arg "Sp_fault.rule: after < 0";
  if count < 0 then invalid_arg "Sp_fault.rule: count < 0";
  if prob < 0.0 || prob > 1.0 then invalid_arg "Sp_fault.rule: prob outside [0, 1]";
  { r_point = point; r_label = label; r_after = after; r_count = count;
    r_prob = prob; r_fault = fault }

let partition ~a ~b =
  [
    rule ~point:"net.rpc" ~label:(a ^ "->" ^ b) Drop;
    rule ~point:"net.rpc" ~label:(b ^ "->" ^ a) Drop;
  ]

(* Per-rule firing state lives in the plan, not the rule, so rule values
   are reusable specs and two plans built from the same rules are
   independent. *)
type armed_rule = {
  ar_rule : rule;
  mutable ar_seen : int;
  mutable ar_fired : int;
}

type plan = {
  p_seed : int;
  p_rng : Rng.t;
  p_rules : armed_rule list;
  mutable p_fired : int;
}

let plan ?(seed = 0) rules =
  {
    p_seed = seed;
    p_rng = Rng.create seed;
    p_rules = List.map (fun r -> { ar_rule = r; ar_seen = 0; ar_fired = 0 }) rules;
    p_fired = 0;
  }

let seed p = p.p_seed
let fired p = p.p_fired

let armed : plan option ref = ref None
let arm p = armed := Some p
let disarm () = armed := None
let active () = !armed <> None

let with_plan p f =
  arm p;
  Fun.protect ~finally:disarm f

let injected () = match !armed with None -> 0 | Some p -> p.p_fired

type outcome =
  | Pass
  | Fail_io of string
  | Torn of float
  | Torn_crash of float
  | Dropped of string
  | Delayed of int
  | Domain_died of string
  | Bit_rot of float
  | Misdirected of float
  | Lost_write_ack

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  if n = 0 then true
  else
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0

let describe = function
  | Fail_stop -> "fail_stop"
  | Io_error -> "io_error"
  | Torn_write -> "torn_write"
  | Torn_write_crash -> "torn_write_crash"
  | Drop -> "drop"
  | Delay ns -> Printf.sprintf "delay(%dns)" ns
  | Domain_crash -> "domain_crash"
  | Bitrot -> "bitrot"
  | Misdirected_write -> "misdirected_write"
  | Lost_write -> "lost_write"

let fire p ~point ~label fault =
  p.p_fired <- p.p_fired + 1;
  Sp_sim.Metrics.incr_faults_injected ();
  if Sp_trace.enabled () then
    Sp_trace.instant ~name:("fault:" ^ describe fault)
      ~args:[ ("point", point); ("label", label) ]
      ();
  let where = Printf.sprintf "%s(%s)" point label in
  match fault with
  | Fail_stop -> raise (Crash ("fail-stop at " ^ where))
  | Io_error -> Fail_io ("injected I/O error at " ^ where)
  | Torn_write -> Torn (0.1 +. (0.8 *. Rng.float p.p_rng))
  | Torn_write_crash -> Torn_crash (0.1 +. (0.8 *. Rng.float p.p_rng))
  | Drop -> Dropped ("injected drop at " ^ where)
  | Delay ns -> Delayed ns
  | Domain_crash -> Domain_died where
  | Bitrot -> Bit_rot (Rng.float p.p_rng)
  | Misdirected_write -> Misdirected (Rng.float p.p_rng)
  | Lost_write -> Lost_write_ack

let consult ~point ~label =
  match !armed with
  | None -> Pass
  | Some p ->
      let rec scan = function
        | [] -> Pass
        | ar :: rest ->
            let r = ar.ar_rule in
            let matches =
              r.r_point = point
              &&
              match r.r_label with
              | None -> true
              | Some sub -> contains ~sub label
            in
            if not matches then scan rest
            else begin
              ar.ar_seen <- ar.ar_seen + 1;
              if
                ar.ar_seen > r.r_after
                && ar.ar_fired < r.r_count
                && (r.r_prob >= 1.0 || Rng.float p.p_rng < r.r_prob)
              then begin
                ar.ar_fired <- ar.ar_fired + 1;
                fire p ~point ~label r.r_fault
              end
              else scan rest
            end
      in
      scan p.p_rules
