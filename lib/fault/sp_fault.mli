(** Deterministic fault injection.

    A {!plan} is a seeded schedule of faults.  Injection points scattered
    through the simulator ([disk.read], [disk.write], [net.rpc],
    [door.call]) call {!consult} on every operation; when no plan is armed
    this is a single reference read, so the disarmed path costs nothing.
    All randomness comes from a splitmix64 generator seeded by an explicit
    integer — never wall-clock — and draws happen in operation order, so a
    given (plan, workload) pair replays bit-identically.

    Faults surface in three ways: as {!Sp_core.Fserr.Io_error}-style
    failures raised by the injection point itself (disk and net translate
    {!outcome} values into their native error types), as the {!Crash}
    exception modelling a fail-stop machine crash (callers unwind and the
    simulated disk image is all that survives), or as pure simulated-time
    delays. *)

(** Simulated machine crash: the process stops at the injection point.
    Harnesses catch this at top level, discard all in-memory state and
    recover from the on-disk image alone.  Never caught by layers. *)
exception Crash of string

(** Injected failure at a point with no native error type (e.g.
    [door.call]). *)
exception Injected of string

(** Deterministic splitmix64 generator (no wall-clock, no global state). *)
module Rng : sig
  type t

  val create : int -> t

  val int : t -> int -> int
  (** [int t bound] is uniform in [\[0, bound)]; [bound > 0]. *)

  val float : t -> float
  (** Uniform in [\[0, 1)]. *)
end

type fault =
  | Fail_stop  (** raise {!Crash} at the injection point *)
  | Io_error  (** transient I/O failure (disk → [Fserr.Io_error]) *)
  | Torn_write
      (** a block write persists only a prefix of the data; the tail of
          the previous block contents survives *)
  | Torn_write_crash  (** torn write immediately followed by {!Crash} *)
  | Drop  (** network message lost (→ [Net.Timeout]) *)
  | Delay of int  (** advance {!Sp_sim.Simclock} by this many ns *)
  | Domain_crash
      (** fail-stop one layer domain: consulted at the [domain.crash]
          point (label = serving domain name) by [Sp_obj.Door.call];
          the door marks the domain dead and raises
          [Fserr.Dead_domain].  Unlike {!Fail_stop}, the rest of the
          machine keeps running — recovery is a supervised layer
          restart, not a reboot. *)
  | Bitrot
      (** silent corruption at rest: one bit of the stored block flips
          (persistently) before a [disk.read] returns it, or in the data
          as a [disk.write] stores it.  The device reports success;
          only checksums can tell. *)
  | Misdirected_write
      (** the block lands at a wrong LBA: some other block is
          overwritten with the data, the intended block is untouched,
          and the device acks.  Both the victim and the stale intended
          block are silently wrong. *)
  | Lost_write
      (** the write is acked (and charged) but no bytes reach the
          media; the previous contents survive unchanged. *)

type rule

val rule :
  point:string ->
  ?label:string ->
  ?after:int ->
  ?count:int ->
  ?prob:float ->
  fault ->
  rule
(** [rule ~point fault] fires [fault] at injection point [point]
    ([disk.write], [net.rpc], ...).  [?label] restricts the rule to
    operations whose label contains that substring (disk labels,
    ["src->dst"] for RPCs, door op names).  The rule skips its first
    [after] matching operations (default 0), fires at most [count] times
    (default [max_int]), and when [prob < 1.] each eligible operation
    fires with that probability, drawn from the plan's seeded generator. *)

val partition : a:string -> b:string -> rule list
(** Network partition between nodes [a] and [b]: drops every RPC whose
    label matches ["a->b"] or ["b->a"]. *)

type plan

val plan : ?seed:int -> rule list -> plan
(** Fresh plan; [seed] defaults to 0. *)

val seed : plan -> int

val fired : plan -> int
(** Total faults this plan has injected. *)

val arm : plan -> unit
(** Make [plan] the active plan consulted by injection points. *)

val disarm : unit -> unit

val active : unit -> bool

val with_plan : plan -> (unit -> 'a) -> 'a
(** [with_plan p f] arms [p], runs [f], and disarms — also on exception
    (including {!Crash}). *)

val injected : unit -> int
(** Faults injected by the currently armed plan (0 if none). *)

type outcome =
  | Pass
  | Fail_io of string
  | Torn of float  (** surviving prefix fraction, in [\[0.1, 0.9)] *)
  | Torn_crash of float
  | Dropped of string
  | Delayed of int
  | Domain_died of string  (** the serving domain fail-stopped *)
  | Bit_rot of float
      (** flip the bit at this fraction of the block's bit positions *)
  | Misdirected of float
      (** redirect the write to this fraction of the device's blocks *)
  | Lost_write_ack  (** ack the write without storing anything *)

val consult : point:string -> label:string -> outcome
(** Called by injection points on every operation.  Returns {!Pass} when
    no plan is armed or no rule fires.  Raises {!Crash} itself for
    {!Fail_stop} rules.  A firing rule bumps
    [Sp_sim.Metrics.faults_injected] and, when tracing is enabled,
    records an [Sp_trace] instant event. *)
