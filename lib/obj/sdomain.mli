(** Spring domains.

    A domain is an address space with a collection of threads; a given
    domain may act as the server of some objects and the client of others
    (paper §3.1).  In the simulation a domain is a named identity used by
    {!Door} to decide whether an invocation is a local procedure call or a
    cross-domain call, and by the VMM to name page-cache owners. *)

(** Raised by {!Door.call} when the serving domain has been killed
    (fail-stop of a whole layer domain).  Re-exported as
    [Sp_core.Fserr.Dead_domain]; the argument is the domain name.
    Callers that want transparent recovery route the retry through
    [Sp_supervise]. *)
exception Dead_domain of string

type t

(** [create ?node name] makes a fresh domain.  [node] identifies the machine
    the domain runs on (defaults to ["local"]); two domains on different
    nodes can never share a VMM.  Domains are created alive. *)
val create : ?node:string -> string -> t

val name : t -> string
val node : t -> string
val id : t -> int

val alive : t -> bool
(** Liveness flag read by {!Door.call} before every invocation (a single
    field read — zero simulated cost). *)

val kill : t -> unit
(** Fail-stop the domain: every subsequent door invocation targeting it
    raises {!Dead_domain}.  The domain's in-memory state is not touched —
    like a real crash, whatever its heap held simply becomes unreachable
    through the door. *)

val revive : t -> unit
(** Mark the domain alive again.  Restart recipes normally build a {e fresh}
    domain instead (a new incarnation with a new {!id}); [revive] exists for
    tests that need to model a transient stall. *)

(** Structural equality of domain identities. *)
val equal : t -> t -> bool

val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
