exception Dead_domain of string

type t = { id : int; name : string; node : string; mutable alive : bool }

let counter = ref 0

let create ?(node = "local") name =
  incr counter;
  { id = !counter; name; node; alive = true }

let name t = t.name
let node t = t.node
let id t = t.id
let alive t = t.alive
let kill t = t.alive <- false
let revive t = t.alive <- true
let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id
let pp ppf t = Format.fprintf ppf "%s@%s#%d" t.name t.node t.id
