let user_domain = Sdomain.create ~node:"local" "user"
let current_domain = ref user_domain
let current () = !current_domain

(* The current domain is per-activity state: two interleaved scheduler
   tasks are each inside their own call chain, and their save/restore
   pairs in [invoke] do not nest across a suspension.  Registering it as
   task-local makes the scheduler swap it on every switch. *)
let () =
  Sp_sched.register_tls (fun () ->
      let d = !current_domain in
      fun () -> current_domain := d)

(* Under an [Sp_sched] run, the door-crossing cost into each domain is
   served by a small queueing station: a domain has a handful of server
   threads parked on its doors, so when many clients cross into it at
   once the crossings queue (and the wait lands in [Metrics.queue_ns]).
   Only the crossing charge is serialized — the invocation body runs
   unserialized, since layers are internally re-entrant in the
   simulation and serializing bodies would deadlock nested calls. *)
let door_servers = 4
let stations : (string, Sp_sched.Station.t) Hashtbl.t = Hashtbl.create 32

let station_of target =
  let key = Sdomain.node target ^ "/" ^ Sdomain.name target in
  match Hashtbl.find_opt stations key with
  | Some st -> st
  | None ->
      let st = Sp_sched.Station.create ~servers:door_servers ("door:" ^ key) in
      Hashtbl.replace stations key st;
      st

(* Outside a scheduler task this is exactly [Simclock.advance]. *)
let serve_crossing target ns =
  if Sp_sched.in_task () then Sp_sched.Station.serve (station_of target) ns
  else Sp_sim.Simclock.advance ns

let charge_invocation target =
  let model = Sp_sim.Cost_model.current () in
  if Sdomain.equal !current_domain target then begin
    Sp_sim.Metrics.incr_local_calls ();
    Sp_sim.Simclock.advance model.local_call_ns
  end
  else begin
    Sp_sim.Metrics.incr_cross_domain_calls ();
    serve_crossing target model.cross_domain_call_ns
  end

let invoke target f =
  charge_invocation target;
  let saved = !current_domain in
  current_domain := target;
  Fun.protect ~finally:(fun () -> current_domain := saved) f

(* Door invocations have no native error type, so injected failures
   surface as [Sp_fault.Injected] (and [Fail_stop] as [Sp_fault.Crash],
   raised by [consult] itself). *)
let consult_fault op =
  if Sp_fault.active () then
    match Sp_fault.consult ~point:"door.call" ~label:op with
    | Sp_fault.Pass -> ()
    | Sp_fault.Fail_io msg | Sp_fault.Dropped msg -> raise (Sp_fault.Injected msg)
    | Sp_fault.Delayed ns -> Sp_sim.Simclock.advance ns
    | Sp_fault.Torn _ | Sp_fault.Torn_crash _ | Sp_fault.Domain_died _
    | Sp_fault.Bit_rot _ | Sp_fault.Misdirected _ | Sp_fault.Lost_write_ack -> ()

(* A [Domain_crash] rule at the [domain.crash] point (label = serving
   domain name) fail-stops the target the first time a call reaches it.
   The liveness test itself is one field read: the disarmed, all-alive
   path costs nothing. *)
let check_alive target =
  if Sp_fault.active () then begin
    match
      Sp_fault.consult ~point:"domain.crash" ~label:(Sdomain.name target)
    with
    | Sp_fault.Domain_died _ -> Sdomain.kill target
    | _ -> ()
  end;
  (* The caller's own domain may have been killed while this fiber was
     suspended inside it.  Its threads died with the domain: the next
     crossing stops the fiber, whichever direction it faces — otherwise a
     zombie fiber of the old incarnation keeps mutating shared lower-layer
     state while the restarted one is already serving.  One field read on
     the live path. *)
  if not (Sdomain.alive !current_domain) then
    raise (Sdomain.Dead_domain (Sdomain.name !current_domain));
  if not (Sdomain.alive target) then begin
    if Sp_trace.enabled () then
      Sp_trace.instant ~name:"door.dead_domain"
        ~args:[ ("domain", Sdomain.name target) ]
        ();
    raise (Sdomain.Dead_domain (Sdomain.name target))
  end

(* Deadline enforcement lives at the door: every call boundary checks
   the ambient deadline (one ref read when unset), and the crossing's
   station wait is cancellable (see [Sp_sched.Station]), so a caller
   queued into a saturated domain gets [Deadline_exceeded] instead of
   waiting forever.  [?deadline_ns] scopes a fresh (or tighter) deadline
   over just this call. *)
let with_opt_deadline deadline_ns f =
  match deadline_ns with
  | None -> f ()
  | Some ns -> Sp_sched.with_deadline ~ns f

let call ?(op = "invoke") ?deadline_ns target f =
  with_opt_deadline deadline_ns (fun () ->
      Sp_sched.check_deadline ~on:op;
      consult_fault op;
      check_alive target;
      if Sp_trace.enabled () then
        Sp_trace.span ~op
          ~src:(Sdomain.name !current_domain)
          ~dst:(Sdomain.name target) ~node:(Sdomain.node target)
          (fun () -> invoke target f)
      else invoke target f)

(* ------------------------------------------------------------------ *)
(* Bulk data path (paper §6.4)                                         *)
(* ------------------------------------------------------------------ *)

(* Like [charge_invocation], but for data-bearing calls: once a bulk
   channel between the two domains exists, the crossing costs
   [bulk_call_ns] (arguments ride in the pre-mapped buffer).  The
   establishing call pays the full door cost plus the one-time mapping
   setup.  Counted as a cross-domain call either way. *)
let charge_data_invocation target =
  let model = Sp_sim.Cost_model.current () in
  if Sdomain.equal !current_domain target then begin
    Sp_sim.Metrics.incr_local_calls ();
    Sp_sim.Simclock.advance model.local_call_ns
  end
  else begin
    Sp_sim.Metrics.incr_cross_domain_calls ();
    if not (Bulk.enabled ()) then serve_crossing target model.cross_domain_call_ns
    else if Bulk.established !current_domain target then
      serve_crossing target model.bulk_call_ns
    else begin
      Bulk.establish !current_domain target;
      Sp_sim.Metrics.incr_bulk_setups ();
      if Sp_trace.enabled () then
        Sp_trace.instant ~name:"bulk.setup"
          ~args:
            [
              ("src", Sdomain.name !current_domain);
              ("dst", Sdomain.name target);
            ]
          ();
      serve_crossing target (model.cross_domain_call_ns + model.bulk_setup_ns)
    end
  end

let data_invoke target f =
  charge_data_invocation target;
  let scoped = Bulk.enabled () && not (Sdomain.equal !current_domain target) in
  let saved = !current_domain in
  current_domain := target;
  if scoped then Bulk.enter_scope ();
  Fun.protect
    ~finally:(fun () ->
      current_domain := saved;
      if scoped then Bulk.exit_scope ())
    f

let data_call ?(op = "invoke") ?deadline_ns target f =
  with_opt_deadline deadline_ns (fun () ->
      Sp_sched.check_deadline ~on:op;
      consult_fault op;
      check_alive target;
      if Sp_trace.enabled () then
        Sp_trace.span ~op
          ~src:(Sdomain.name !current_domain)
          ~dst:(Sdomain.name target) ~node:(Sdomain.node target)
          (fun () -> data_invoke target f)
      else data_invoke target f)

let from domain f =
  let saved = !current_domain in
  current_domain := domain;
  Fun.protect ~finally:(fun () -> current_domain := saved) f

let charge_kernel_call () =
  let model = Sp_sim.Cost_model.current () in
  Sp_sim.Metrics.incr_kernel_calls ();
  Sp_sim.Simclock.advance model.kernel_call_ns

let kernel_call () =
  if Sp_trace.enabled () then
    Sp_trace.span ~op:"kernel.trap"
      ~src:(Sdomain.name !current_domain)
      ~dst:"(kernel)"
      ~node:(Sdomain.node !current_domain)
      charge_kernel_call
  else charge_kernel_call ()

let charge_copy bytes =
  let model = Sp_sim.Cost_model.current () in
  Sp_trace.note_copy bytes;
  Sp_sim.Simclock.advance (bytes * model.copy_per_byte_ns)

(* Payload accounting at a data-bearing interface boundary, relative to
   the current (caller) domain.  Same-domain: pages are handed by
   reference, zero marshalling copies.  Cross-domain: exactly one copy,
   into the shared bulk buffer.  With the bulk path disabled this is the
   legacy full marshalling copy ([fallback:true], the file interface) or
   the historically unaccounted pager traffic ([fallback:false]). *)
let charge_transfer ?(fallback = true) target bytes =
  if bytes > 0 then
    if not (Bulk.enabled ()) then begin
      if fallback then charge_copy bytes
    end
    else if Sdomain.equal !current_domain target then
      Sp_sim.Metrics.incr_bulk_handoffs ()
    else begin
      Sp_sim.Metrics.incr_bulk_copies ();
      charge_copy bytes
    end

(* Payload copy at a data *source* (page cache -> caller buffer, disk
   layer file body -> caller buffer).  Inside a cross-domain data call
   the source writes straight into the bulk buffer the boundary charges
   for, so the private copy is elided. *)
let charge_source_copy bytes =
  if bytes > 0 then
    if Bulk.enabled () && Bulk.in_scope () then Sp_sim.Metrics.incr_bulk_handoffs ()
    else charge_copy bytes

let charge_cpu units =
  let model = Sp_sim.Cost_model.current () in
  Sp_trace.note_cpu units;
  Sp_sim.Simclock.advance (units * model.cpu_op_ns)
