(** Location-independent object invocation.

    Spring's stub technology "automatically chooses the optimal path
    (procedure calls or cross-domain calls)" depending on whether client and
    server share a domain (paper §6.4).  [call] reproduces that: it compares
    the dynamic current domain against the target object's home domain and
    charges the appropriate simulated cost, counting the event in
    {!Sp_sim.Metrics}.  During the call the current domain becomes the
    target's, so nested invocations account correctly. *)

(** The domain the executing thread currently runs in.  The simulation
    starts in a distinguished "user" domain. *)
val current : unit -> Sdomain.t

(** The initial user domain. *)
val user_domain : Sdomain.t

(** [call target f] invokes [f ()] as an operation of an object served by
    domain [target].  When {!Sp_trace} tracing is active the invocation is
    recorded as a span named [op] (default ["invoke"]); call helpers pass
    their operation name, e.g. [~op:"file.read"].  Consults the armed
    {!Sp_fault} plan at point ["door.call"] (label = [op]); injected
    failures raise [Sp_fault.Injected] or [Sp_fault.Crash].

    The door is also where layer-domain fail-stop surfaces: an armed
    [Domain_crash] rule at point ["domain.crash"] (label = target domain
    name) kills the target on arrival, and any call to a dead domain
    raises {!Sdomain.Dead_domain} (traced as a [door.dead_domain]
    instant event).  With no plan armed the extra cost is one field
    read, so the fast-path door cost is unchanged.

    [?deadline_ns] scopes an [Sp_sched.with_deadline] over the call
    (tightening any enclosing deadline).  Every call checks the ambient
    deadline at entry and its crossing's queue wait is cancellable, so
    an overrun raises [Sp_sched.Deadline_exceeded] (= [Fserr.Timed_out])
    instead of blocking forever behind a dead or saturated domain. *)
val call : ?op:string -> ?deadline_ns:int -> Sdomain.t -> (unit -> 'a) -> 'a

(** [data_call target f] is {!call} for data-bearing operations
    ([file.read], [pager.page_in], ...).  It costs the same as [call]
    until a {!Bulk} channel between caller and [target] exists (the
    establishing call additionally pays [bulk_setup_ns]); thereafter
    cross-domain crossings cost only [bulk_call_ns].  While a
    cross-domain [data_call] runs, {!charge_source_copy} elides source
    copies — the payload lands directly in the bulk buffer, whose single
    copy the caller charges via {!charge_transfer}.  Counts in
    {!Sp_sim.Metrics} exactly like [call], and enforces [?deadline_ns]
    and the ambient deadline the same way. *)
val data_call : ?op:string -> ?deadline_ns:int -> Sdomain.t -> (unit -> 'a) -> 'a

(** [charge_transfer target bytes] accounts a payload crossing the
    interface between the current domain and [target]: zero marshalling
    copies same-domain (by-reference handoff), exactly one copy
    cross-domain (into the shared bulk buffer).  With the bulk path
    disabled, [fallback] selects the legacy accounting: [true] (default)
    charges the old full marshalling copy (file interface), [false]
    charges nothing (pager traffic, historically unaccounted). *)
val charge_transfer : ?fallback:bool -> Sdomain.t -> int -> unit

(** Charge a data-source copy ([Vmm.read]/[write], disk-layer file
    bodies): a full copy normally, elided to a by-reference handoff
    inside a cross-domain {!data_call}. *)
val charge_source_copy : int -> unit

(** [from domain f] runs [f ()] with [domain] as the current (client)
    domain; used by tests and examples to stand for an application
    program running in that domain. *)
val from : Sdomain.t -> (unit -> 'a) -> 'a

(** Charge a kernel trap (e.g. VMM entry) to the clock. *)
val kernel_call : unit -> unit

(** Charge [n] bytes of memory-copy work to the clock. *)
val charge_copy : int -> unit

(** Charge [n] units of CPU work (e.g. compression) to the clock. *)
val charge_cpu : int -> unit
