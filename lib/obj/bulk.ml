(* Shared bulk-buffer channels between domain pairs, plus the dynamic
   "a bulk transfer is in flight" scope that lets data sources hand pages
   over by reference instead of charging a private copy.  See bulk.mli. *)

let enabled_flag = ref true
let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

let with_disabled f =
  let saved = !enabled_flag in
  enabled_flag := false;
  Fun.protect ~finally:(fun () -> enabled_flag := saved) f

(* Channels are symmetric: one mapping serves both transfer directions. *)
let channels : (int * int, unit) Hashtbl.t = Hashtbl.create 64

let channel_key a b =
  let ia = Sdomain.id a and ib = Sdomain.id b in
  if ia <= ib then (ia, ib) else (ib, ia)

let established a b = Hashtbl.mem channels (channel_key a b)
let establish a b = Hashtbl.replace channels (channel_key a b) ()
let channel_count () = Hashtbl.length channels
let reset () = Hashtbl.reset channels

(* Depth of nested cross-domain data calls.  While positive, payload
   copies at data *sources* are elided: the source writes straight into
   the bulk buffer the boundary will charge for. *)
let scope_depth = ref 0
let in_scope () = !scope_depth > 0
let enter_scope () = incr scope_depth
let exit_scope () = decr scope_depth

(* The scope depth tracks the current task's call chain, not the whole
   machine: another interleaved task must not see a transfer in flight
   (it would skip its own source copy).  Task-local, like the current
   domain in [Door]. *)
let () =
  Sp_sched.register_tls (fun () ->
      let d = !scope_depth in
      fun () -> scope_depth := d)
