(** Bulk data path: shared buffers for data-bearing door calls.

    Spring avoided marshalling file data through the RPC machinery by
    mapping a {e bulk buffer} into both the client's and the server's
    address space and passing data through it (paper §6.4).  The
    simulation models that as a per-domain-pair {e channel}: the first
    data-bearing call between two domains charges
    [Cost_model.bulk_setup_ns] to establish the mapping, and every later
    call crosses at the cheaper [bulk_call_ns] and charges exactly one
    payload copy — the write into the shared buffer.  Same-domain calls
    hand pages by reference and charge no marshalling copy at all.

    This module holds the channel registry and the dynamic scope flag;
    the charging logic lives in {!Door} ([data_call],
    [charge_transfer], [charge_source_copy]).  The registry is keyed by
    domain-id pairs, so channels survive cache drops but not domain
    restarts (a fresh incarnation has a fresh id and pays setup again).

    The [enabled] switch exists for equivalence testing and the
    before/after bench rows: with the path disabled every helper falls
    back to the legacy accounting (full cross-domain door, one
    marshalling copy per boundary, private source copies). *)

val enabled : unit -> bool
val set_enabled : bool -> unit

(** Run [f] with the bulk path disabled, restoring the previous state
    afterwards (also on exceptions). *)
val with_disabled : (unit -> 'a) -> 'a

(** [established a b] is true once a bulk channel exists between the two
    domains (symmetric). *)
val established : Sdomain.t -> Sdomain.t -> bool

(** Record a channel between two domains (idempotent). *)
val establish : Sdomain.t -> Sdomain.t -> unit

(** Number of live channels. *)
val channel_count : unit -> int

(** Drop every channel (tests; the next data call pays setup again). *)
val reset : unit -> unit

(** {1 Transfer scope}

    While a cross-domain data call is executing, payload copies at data
    sources (page cache, disk-layer file bodies) are elided — the data
    lands directly in the bulk buffer whose single copy the interface
    boundary charges.  [Door.data_call] maintains the depth. *)

val in_scope : unit -> bool

val enter_scope : unit -> unit
val exit_scope : unit -> unit
