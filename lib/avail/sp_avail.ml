(* Availability policy over supervised door calls: jittered exponential
   backoff, a per-domain circuit breaker with a degraded-mode fallback,
   and deadline-bounded retry of [Dead_domain] during restart windows.

   The contract (see DESIGN.md): under [Sp_avail.call] an operation
   either completes, completes degraded, or fails loudly — [Unavailable]
   or [Fserr.Timed_out] — within its deadline.  It never hangs behind a
   dead domain and never silently corrupts. *)

exception Unavailable of string

(* ------------------------------------------------------------------ *)
(* Backoff                                                             *)
(* ------------------------------------------------------------------ *)

module Backoff = struct
  type policy = {
    base_ns : int;
    max_delay_ns : int;
    max_attempts : int;
    jitter : float;
  }

  let default =
    { base_ns = 200_000; max_delay_ns = 5_000_000; max_attempts = 8; jitter = 0.5 }

  let make ?(base_ns = default.base_ns) ?(max_delay_ns = default.max_delay_ns)
      ?(max_attempts = default.max_attempts) ?(jitter = default.jitter) () =
    if base_ns < 0 then invalid_arg "Sp_avail.Backoff.make: negative base";
    if max_attempts < 1 then invalid_arg "Sp_avail.Backoff.make: max_attempts < 1";
    if jitter < 0.0 || jitter > 1.0 then
      invalid_arg "Sp_avail.Backoff.make: jitter outside [0,1]";
    { base_ns; max_delay_ns; max_attempts; jitter }

  (* Jitter only ever *subtracts* (delay in [(1-j)*raw, raw]), so any
     documented upper bound on total retry time computed from the
     unjittered series stays valid. *)
  let delay_ns p ~rng ~attempt =
    if attempt < 1 then invalid_arg "Sp_avail.Backoff.delay_ns: attempt < 1";
    let raw = min p.max_delay_ns (p.base_ns * (1 lsl min (attempt - 1) 16)) in
    raw - int_of_float (Sp_fault.Rng.float rng *. p.jitter *. float_of_int raw)

  let pause ?(on = "backoff") p ~rng ~attempt =
    let d = delay_ns p ~rng ~attempt in
    (* Sleeping past the ambient deadline only converts one loud failure
       into a later one: fail now, while the caller can still act. *)
    (match Sp_sched.deadline () with
    | Some dl when Sp_sim.Simclock.now () + d > dl ->
        raise (Sp_sched.Deadline_exceeded on)
    | _ -> ());
    Sp_sched.sleep d
end

(* ------------------------------------------------------------------ *)
(* Circuit breaker                                                     *)
(* ------------------------------------------------------------------ *)

module Breaker = struct
  type state =
    | Closed
    | Open of { b_until : int; b_reason : string }
    | Half_open of { h_reason : string }  (* one probe in flight *)

  type t = { br_name : string; mutable br_state : state; mutable br_trips : int }

  let table : (string, t) Hashtbl.t = Hashtbl.create 8

  let get name =
    match Hashtbl.find_opt table name with
    | Some b -> b
    | None ->
        let b = { br_name = name; br_state = Closed; br_trips = 0 } in
        Hashtbl.replace table name b;
        b

  let default_cooldown_ns = 10_000_000

  let trip ?(cooldown_ns = default_cooldown_ns) ~reason name =
    let b = get name in
    let until =
      if cooldown_ns = max_int then max_int
      else Sp_sim.Simclock.now () + cooldown_ns
    in
    b.br_state <- Open { b_until = until; b_reason = reason };
    b.br_trips <- b.br_trips + 1;
    if Sp_trace.enabled () then
      Sp_trace.instant ~name:"avail.break"
        ~args:[ ("breaker", name); ("reason", reason) ]
        ()

  (* [Some reason] while the cooldown holds.  The first caller to find
     the cooldown elapsed flips the breaker to [Half_open] and gets
     [None]: it *is* the probe.  Everyone else sees [Half_open] and is
     held off until the probe's outcome decides — [note_ok] closes,
     [trip] re-opens, [abort_probe] (probe died without an outcome)
     re-arms an already-elapsed [Open] so the next caller probes.
     The flip and the return are one atomic step (no suspension), so
     under [Sp_sched] exactly one concurrent task is admitted. *)
  let blocking name =
    let b = get name in
    match b.br_state with
    | Closed -> None
    | Half_open { h_reason } -> Some ("probe in flight: " ^ h_reason)
    | Open { b_until; b_reason } ->
        if b_until = max_int || Sp_sim.Simclock.now () < b_until then
          Some b_reason
        else begin
          b.br_state <- Half_open { h_reason = b_reason };
          if Sp_trace.enabled () then
            Sp_trace.instant ~name:"avail.half_open"
              ~args:[ ("breaker", name) ]
              ();
          None
        end

  (* Is the current caller the admitted half-open probe?  Only
     meaningful immediately after {!blocking} returned [None], before
     any suspension point. *)
  let probing name =
    match (get name).br_state with Half_open _ -> true | _ -> false

  (* The probe died without reaching [note_ok] or [trip] (deadline,
     unexpected exception).  Revert to an already-elapsed [Open] so the
     next caller becomes the probe — otherwise a dead probe would shed
     every future caller forever. *)
  let abort_probe name =
    let b = get name in
    match b.br_state with
    | Half_open { h_reason } ->
        b.br_state <-
          Open { b_until = Sp_sim.Simclock.now (); b_reason = h_reason }
    | Closed | Open _ -> ()

  let note_ok name =
    let b = get name in
    if b.br_state <> Closed then b.br_state <- Closed

  let trips name = (get name).br_trips

  let reset name =
    let b = get name in
    b.br_state <- Closed;
    b.br_trips <- 0
end

(* ------------------------------------------------------------------ *)
(* The availability wrapper                                            *)
(* ------------------------------------------------------------------ *)

(* Deterministic by construction: virtual clock + seeded rng + the
   scheduler's fixed interleaving.  Callers that need stream isolation
   (one rng per client task) pass their own. *)
let default_rng = Sp_fault.Rng.create 0x5eed

let instant name breaker =
  if Sp_trace.enabled () then
    Sp_trace.instant ~name ~args:[ ("breaker", breaker) ] ()

let call ?deadline_ns ?(policy = Backoff.default) ?rng ?degraded ~name f =
  let rng = match rng with Some r -> r | None -> default_rng in
  let serve_degraded g =
    Sp_sim.Metrics.incr_avail_degraded ();
    instant "avail.degraded" name;
    g ()
  in
  (* Terminal failure: the breaker has just tripped (or was found open).
     Fall through to the degraded path if there is one, else fail loud. *)
  let conclude e =
    match degraded with
    | Some g -> serve_degraded g
    | None ->
        Sp_sim.Metrics.incr_avail_failed ();
        raise e
  in
  let body () =
    match Breaker.blocking name with
    | Some reason -> (
        (* Fast-fail: don't queue behind a corpse.  Counted as shed, not
           failed — the op was never attempted. *)
        Sp_sim.Metrics.incr_avail_shed ();
        instant "avail.shed" name;
        match degraded with
        | Some g -> serve_degraded g
        | None -> raise (Unavailable (name ^ ": " ^ reason)))
    | None ->
        (* If blocking just flipped an elapsed-cooldown breaker to
           half-open, this caller is the single admitted probe and must
           leave the breaker decided: success closes it (note_ok),
           terminal failure re-trips it, and anything that escapes
           undecided (deadline, unexpected exception) aborts the probe
           so the stack isn't shed forever behind a dead probe. *)
        let am_probe = Breaker.probing name in
        let rec go attempt =
          match Sp_supervise.call f with
          | v ->
              if attempt > 1 then begin
                Sp_sim.Metrics.incr_avail_retried ();
                instant "avail.retried" name
              end;
              Breaker.note_ok name;
              v
          | exception (Sp_sched.Deadline_exceeded _ as e) ->
              Sp_sim.Metrics.incr_avail_failed ();
              instant "avail.timeout" name;
              raise e
          | exception Sp_supervise.Give_up msg ->
              (* Restart budget exhausted: this stack is not coming back.
                 Open permanently so later callers shed instead of
                 re-discovering the corpse. *)
              Breaker.trip ~cooldown_ns:max_int ~reason:msg name;
              conclude (Unavailable (name ^ ": " ^ msg))
          | exception Sp_obj.Sdomain.Dead_domain who ->
              if attempt < policy.Backoff.max_attempts then begin
                instant "avail.retry" name;
                (try Backoff.pause ~on:("avail:" ^ name) policy ~rng ~attempt
                 with Sp_sched.Deadline_exceeded _ as e ->
                   Sp_sim.Metrics.incr_avail_failed ();
                   instant "avail.timeout" name;
                   raise e);
                go (attempt + 1)
              end
              else begin
                Breaker.trip ~reason:("retries exhausted on " ^ who) name;
                conclude (Unavailable (name ^ ": retries exhausted on " ^ who))
              end
        in
        if not am_probe then go 1
        else (
          try go 1
          with e ->
            Breaker.abort_probe name;
            raise e)
  in
  match deadline_ns with
  | None -> body ()
  | Some ns -> Sp_sched.with_deadline ~ns body
