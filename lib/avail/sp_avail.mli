(** Availability policy over supervised door calls.

    [Sp_supervise] makes a single caller survive a layer-domain crash:
    restart the dead levels, retry.  Under live concurrent load that is
    not enough — while one task rebuilds the stack, every other client
    task keeps dialling the corpse.  This module states the availability
    contract and enforces it: under {!call}, an operation either
    {ul
    {- completes (possibly only after backoff-retry through a restart
       window — counted [avail_retried]);}
    {- completes {e degraded} through a caller-supplied read-only
       fallback (Mirrorfs one twin, Versionfs frozen view — counted
       [avail_degraded]);}
    {- or fails {e loudly} within its deadline: {!Unavailable} when the
       circuit breaker is open or retry is exhausted (counted
       [avail_shed] / [avail_failed]), [Fserr.Timed_out] when the
       deadline expires (counted [avail_failed]).}}
    It never hangs behind a dead or saturated domain.  Everything is
    deterministic: virtual clock, seeded jitter, fixed scheduler
    interleaving. *)

(** The named stack cannot serve: its breaker is open, its restart
    budget is exhausted, or retries ran out — and no degraded fallback
    was provided. *)
exception Unavailable of string

(** Jittered, capped exponential backoff.  One policy serves both
    door-level [Dead_domain] retry (here) and DFS RPC retry
    ([Sp_dfs.Net]). *)
module Backoff : sig
  type policy = {
    base_ns : int;  (** delay before the 2nd attempt *)
    max_delay_ns : int;  (** cap on any single delay *)
    max_attempts : int;  (** total attempts, including the first *)
    jitter : float;  (** in [0,1]: delay drawn from [(1-j)*raw, raw] *)
  }

  (** 200µs base, 5ms cap, 8 attempts, 0.5 jitter. *)
  val default : policy

  val make :
    ?base_ns:int ->
    ?max_delay_ns:int ->
    ?max_attempts:int ->
    ?jitter:float ->
    unit ->
    policy

  (** The [attempt]-th delay (1-based; the delay slept {e after} attempt
    [attempt] fails): [raw = min max_delay_ns (base_ns * 2^(attempt-1))]
    minus a seeded jitter fraction.  Jitter only subtracts, so bounds
    computed from the unjittered series remain valid.  Deterministic in
    the rng state. *)
  val delay_ns : policy -> rng:Sp_fault.Rng.t -> attempt:int -> int

  (** Sleep the [attempt]-th delay as {e idle} time ([Sp_sched.sleep] —
      no busy charge; under a scheduler other tasks run).  If the sleep
      would cross the ambient [Sp_sched.with_deadline], raises
      [Sp_sched.Deadline_exceeded on] {e without} sleeping. *)
  val pause : ?on:string -> policy -> rng:Sp_fault.Rng.t -> attempt:int -> unit
end

(** Per-name circuit breaker.  {!call} trips it on terminal failures
    (permanently on [Sp_supervise.Give_up], for a cooldown on retry
    exhaustion); while open, callers shed instead of queueing behind the
    corpse.  An elapsed cooldown half-opens: exactly {e one} caller is
    admitted as the probe (the first to call {!blocking} after the
    cooldown — atomic, no suspension point, so concurrent [Sp_sched]
    tasks cannot both be admitted); every other caller sheds until the
    probe's outcome closes ({!note_ok}) or re-trips ({!trip}) the
    breaker, or the probe dies undecided ({!abort_probe}). *)
module Breaker : sig
  (** [trip ~reason name] opens the breaker for [cooldown_ns] of virtual
      time (default 10ms; [max_int] = permanently). *)
  val trip : ?cooldown_ns:int -> reason:string -> string -> unit

  (** [Some reason] while the breaker holds callers off (cooldown still
      running, or a half-open probe already in flight); [None] when
      closed — or when this call just flipped an elapsed cooldown to
      half-open, making the caller the single admitted probe. *)
  val blocking : string -> string option

  (** [true] while a half-open probe is in flight.  Immediately after
      {!blocking} returned [None] (before any suspension point) this
      tells the caller whether it is that probe. *)
  val probing : string -> bool

  (** The half-open probe died without an outcome (deadline, unexpected
      exception): revert to an already-elapsed open so the next caller
      probes.  No-op unless half-open. *)
  val abort_probe : string -> unit

  (** Record a successful probe: closes the breaker if open. *)
  val note_ok : string -> unit

  (** Times tripped since the last {!reset}. *)
  val trips : string -> int

  (** Close and zero the counter (sweeps call this between points). *)
  val reset : string -> unit
end

(** [call ~name f] runs [f] under the availability contract above.
    [name] keys the circuit breaker (one per protected stack).

    [f] is wrapped in [Sp_supervise.call], so a [Dead_domain] from a
    supervised domain first triggers (or waits out) a restart; a
    [Dead_domain] that escapes — restart in flight on another task, or
    stale incarnation — is retried up to [policy.max_attempts] times
    with {!Backoff.pause} between attempts.  [?deadline_ns] scopes an
    [Sp_sched.with_deadline] over the whole thing (attempts, backoffs
    and queue waits included).  [?rng] seeds the jitter (tasks should
    pass a per-client rng for stream isolation; default is a shared
    deterministic one).  [?degraded] is served instead of raising
    {!Unavailable} on shed and terminal failures.

    Counters: [avail_retried] (succeeded after >1 attempt),
    [avail_shed] (breaker open), [avail_failed] (loud failure),
    [avail_degraded] (fallback served); trace instants [avail.retry],
    [avail.retried], [avail.shed], [avail.break], [avail.timeout],
    [avail.degraded]. *)
val call :
  ?deadline_ns:int ->
  ?policy:Backoff.policy ->
  ?rng:Sp_fault.Rng.t ->
  ?degraded:(unit -> 'a) ->
  name:string ->
  (unit -> 'a) ->
  'a
