(** Per-node virtual memory manager.

    The VMM handles mapping, sharing and caching of local memory, depending
    on external pagers for backing store (paper §3.3.1).  It is the primary
    cache manager in the system: when a memory object is mapped, the VMM
    binds to it, and the returned cache rights' key unifies equivalent
    memory objects so that their pages are cached once.

    Pages stay cached after unmap (that is the point of a page cache); the
    pager remains responsible for their coherency through the cache object
    the VMM implements for each channel. *)

type t

(** A memory object mapped into an address space. *)
type mapping

(** [create ~node name] makes the VMM of machine [node].  Its serving
    domain is the nucleus domain of that node. *)
val create : node:string -> string -> t

val domain : t -> Sp_obj.Sdomain.t

(** The VMM's cache-manager identity (handed to memory-object binds). *)
val manager : t -> Vm_types.cache_manager

(** Map a memory object.  Performs a kernel call and a bind on the memory
    object. *)
val map : t -> Vm_types.memory_object -> mapping

(** Drop the mapping (pages stay cached; dirty pages are pushed to the
    pager with [sync] first so no updates are lost if the entry is later
    evicted). *)
val unmap : mapping -> unit

(** [read m ~pos ~len] copies bytes out of the mapping, faulting pages in
    read-only as needed.  Reading beyond the pager's data yields the bytes
    the pager returns (zero-filled). *)
val read : mapping -> pos:int -> len:int -> bytes

(** [write m ~pos data] copies bytes into the mapping, faulting pages in
    read-write (upgrading read-only pages) as needed.  Does not change the
    memory object's length — file layers do that explicitly. *)
val write : mapping -> pos:int -> bytes -> unit

(** Push dirty pages to the pager ([sync]: data retained in current mode).
    With clustered writeback (the default) contiguous dirty pages coalesce
    into one extent per run and the whole batch crosses to the pager in a
    single vectored [sync_v]. *)
val msync : mapping -> unit

(** Enable/disable clustered writeback (on by default).  Off restores the
    one-[sync]-per-dirty-page behaviour. *)
val set_clustered : t -> bool -> unit

val clustered : t -> bool

(** The memory object backing this mapping. *)
val memory_object : mapping -> Vm_types.memory_object

(** Number of pages currently cached under the mapping's cache key. *)
val cached_pages : mapping -> int

(** Write back and drop every cached page of every entry (used to simulate
    memory pressure / cold caches in benchmarks). *)
val drop_caches : t -> unit

(** Number of distinct cache entries (≈ bound channels) the VMM holds. *)
val entry_count : t -> int

(** {1 Read-ahead (paper §8)}

    The paper's open problem: "allow a cache manager to convey to the
    pager the maximum and minimum amount of data required during a
    page-in; the pager is then given the opportunity to return more data
    than strictly needed."  When a read fault continues a sequential run,
    the VMM requests extra pages in the same page-in; whatever the pager
    actually returns beyond the faulting page is populated read-only and
    marked prefetched.

    By default the window is {e adaptive} and per entry: it starts at two
    pages, doubles each time the run continues (up to
    {!Sp_sim.Cost_model.t.readahead_max_pages} — 0 under the [fast] model,
    so tests see no read-ahead) and collapses to zero on a non-sequential
    fault.  First-touch of a prefetched page counts
    [Sp_sim.Metrics.readahead_hits]; a prefetched page retired untouched
    counts [readahead_wasted]. *)

(** Set a manual read-ahead window in pages, overriding the adaptive one
    (0 restores adaptive behaviour; the default). *)
val set_readahead : t -> pages:int -> unit

val readahead : t -> int

(** Enable/disable the adaptive window (on by default; only consulted when
    no manual window is set). *)
val set_adaptive : t -> bool -> unit

val adaptive : t -> bool

(** {1 Memory pressure}

    Real VMMs cache under a physical-memory budget.  With a capacity set,
    inserting a page beyond the budget evicts the least-recently-used
    cached page first (pushing it to its pager with [sync] if dirty). *)

(** Bound the page cache to [pages] pages ([None] = unbounded, the
    default).  Raises [Invalid_argument] on a non-positive bound. *)
val set_capacity : t -> pages:int option -> unit

(** Total pages currently cached across all entries. *)
val total_cached_pages : t -> int

(** Pages evicted so far. *)
val evictions : t -> int

(** {1 Crash reconciliation}

    When a pager reconnects for a key already bound to a pager in a
    {e different} domain, the previous serving incarnation crashed.  The
    VMM reconciles the stale pages per their MRSW state — clean pages
    are dropped (next fault refetches from the restarted layer), dirty
    unsynced pages are reported lost exactly like an unsynced machine
    crash — and the entry starts fresh under the new incarnation. *)

(** [(clean_dropped, dirty_lost)] page totals across all reconciles. *)
val reconciled : t -> int * int
