(** Channel registry for pagers.

    Implements the bind handshake of paper §3.3.2: "when a pager receives a
    bind operation, it must determine if there is already a pager–cache
    object connection for the memory object at the given [cache manager].
    If there is no connection, the pager contacts the [manager], and the two
    exchange pager and cache objects."  Every file-system layer embeds one
    registry. *)

type channel = {
  ch_id : int;
  ch_key : string;  (** identity of the cached memory object *)
  ch_manager_id : string;
  ch_manager_domain : Sp_obj.Sdomain.t;
  ch_pager : Vm_types.pager_object;  (** the pager's end *)
  ch_cache : Vm_types.cache_object;  (** the manager's end *)
}

type t

val create : unit -> t

(** [bind t ~key ~make_pager manager access] finds the channel for
    [(manager, key)] or establishes one: [make_pager ~id] builds the
    pager's end (the pre-assigned channel id lets pagers key per-channel
    coherency state), the manager's [cm_connect] is invoked (a door call
    into the manager's domain) to obtain the cache object, and the channel
    is recorded.  Returns the cache rights to hand back from the memory
    object's bind. *)
val bind :
  t ->
  key:string ->
  make_pager:(id:int -> Vm_types.pager_object) ->
  Vm_types.cache_manager ->
  Vm_types.cache_rights

(** All live channels caching [key] — the set a coherency protocol ranges
    over. *)
val channels_for_key : t -> key:string -> channel list

(** All live channels. *)
val channels : t -> channel list

(** [find t ~id] returns the channel with that id, if live. *)
val find : t -> id:int -> channel option

(** Forget a channel (after [done_with] or cache destruction). *)
val remove : t -> int -> unit

(** [live_cache t ~id] is channel [id]'s cache object, {e unless} the
    domain serving it has fail-stopped — then the channel is a leftover
    of a pre-crash incarnation: it is dropped (traced as a
    [pager.fence] instant) and [None] is returned, so pagers never call
    back into a dead upper layer.  This is the pager-side half of epoch
    fencing; the manager-side half is the VMM's reconcile on
    re-connect. *)
val live_cache : t -> id:int -> Vm_types.cache_object option

(** [channels_for_key] restricted to channels whose cache domain is
    alive; dead ones are fenced (dropped) as in {!live_cache}. *)
val live_channels_for_key : t -> key:string -> channel list

(** Tear down every channel caching [key]: invoke [destroy_cache] on each
    manager's cache object (Appendix A) and forget the channel.  Pagers
    call this when the backing object is deleted, so a later object that
    reuses the identity cannot alias stale caches. *)
val destroy_key : t -> key:string -> unit

(** Tear down every channel of every key — the drop_caches analog of
    {!destroy_key}.  The destroy cascades manager-side, so per-file
    state captured by the cache objects is released too. *)
val destroy_all : t -> unit

(** Number of live channels (Figure 2's observable). *)
val channel_count : t -> int
