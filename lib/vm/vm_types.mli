(** The stackable pager architecture: cache, pager and memory objects.

    These are the interfaces of Appendices A and B of the paper, plus the
    [fs_cache] / [fs_pager] attribute subclasses of §4.3 and the two-way
    channel-establishment protocol of §3.3.2:

    - a {e cache object} is implemented by a cache manager (the VMM, or a
      file-system layer acting as a cache manager) and invoked by pagers to
      perform coherency actions;
    - a {e pager object} is implemented by a pager (a file-system layer or a
      plain storage pager) and invoked by cache managers to move data;
    - a {e memory object} is an abstraction of memory that can be mapped; it
      has no paging operations — its [bind] operation locates or creates a
      pager–cache channel and returns [cache_rights] that let the caller
      unify equivalent memory objects (the separation Spring contrasts with
      Mach in Table 1).

    Invoke operations only through the call helpers in this module: they
    perform the door invocation (charging local or cross-domain cost) and
    maintain the event counters used by tests and benchmarks. *)

(** Access mode of cached data. *)
type access = Read_only | Read_write

(** A modified range returned to a pager by a coherency action. *)
type extent = { ext_offset : int; ext_data : bytes }

type cache_object = {
  c_domain : Sp_obj.Sdomain.t;
  c_label : string;
  c_flush_back : offset:int -> size:int -> extent list;
      (** remove data from the cache, returning modified blocks *)
  c_deny_writes : offset:int -> size:int -> extent list;
      (** downgrade read-write blocks to read-only, returning modified blocks *)
  c_write_back : offset:int -> size:int -> extent list;
      (** return modified blocks; data retained in the same mode *)
  c_delete_range : offset:int -> size:int -> unit;
      (** remove data from the cache; nothing returned *)
  c_zero_fill : offset:int -> size:int -> unit;
      (** declare a range zero-filled *)
  c_populate : offset:int -> access:access -> bytes -> unit;
      (** introduce data into the cache *)
  c_destroy : unit -> unit;
  c_exten : Sp_obj.Exten.t list;
}

type pager_object = {
  p_domain : Sp_obj.Sdomain.t;
  p_label : string;
  p_page_in : offset:int -> size:int -> access:access -> bytes;
      (** bring data from the pager in the requested mode *)
  p_page_out : offset:int -> bytes -> unit;
      (** write data to the pager; caller retains nothing *)
  p_write_out : offset:int -> bytes -> unit;
      (** write data to the pager; caller retains it read-only *)
  p_sync : offset:int -> bytes -> unit;
      (** write data to the pager; caller retains its mode *)
  p_sync_v : extent list -> unit;
      (** vectored [p_sync]: a batch of coalesced contiguous dirty runs
          pushed in one crossing (clustered writeback); each extent has
          [p_sync] semantics.  Pagers with no smarter handling use
          {!sync_each}. *)
  p_done_with : unit -> unit;
      (** the cache manager closes its end of the channel *)
  p_exten : Sp_obj.Exten.t list;
}

(** [sync_each sync extents] applies a per-extent push function to each
    extent in order — the default [p_sync_v] implementation. *)
val sync_each : (offset:int -> bytes -> unit) -> extent list -> unit

(** Total payload bytes across a batch of extents. *)
val extents_bytes : extent list -> int

(** Token identifying a pager–cache channel; equivalent memory objects yield
    rights with equal [cr_key], letting cache managers share cached pages. *)
type cache_rights = { cr_key : string; cr_channel_id : int }

(** The identity a cache manager presents when binding.  When the pager sets
    up a new channel it calls [cm_connect] with its pager object; the
    manager answers with the cache object of its end. *)
type cache_manager = {
  cm_id : string;
  cm_domain : Sp_obj.Sdomain.t;
  cm_connect : key:string -> pager_object -> cache_object;
}

type memory_object = {
  m_domain : Sp_obj.Sdomain.t;
  m_label : string;
  m_bind : cache_manager -> access -> cache_rights;
  m_get_length : unit -> int;
  m_set_length : int -> unit;
}

(** {1 File-attribute subclasses (paper §4.3)} *)

(** Operations added by [fs_pager], the file-system subclass of a pager
    object. *)
type fs_pager_ops = {
  fp_get_attr : unit -> Attr.t;  (** fetch authoritative attributes *)
  fp_set_attr : Attr.t -> unit;  (** explicit attribute update *)
  fp_attr_sync : Attr.t -> unit;  (** write back attributes cached upstream *)
}

(** Operations added by [fs_cache], the file-system subclass of a cache
    object, letting the pager engage the manager in attribute coherency. *)
type fs_cache_ops = {
  fc_invalidate_attr : unit -> unit;
  fc_write_back_attr : unit -> Attr.t option;
      (** surrender dirty cached attributes, if any *)
  fc_populate_attr : Attr.t -> unit;
}

type Sp_obj.Exten.t += Fs_pager of fs_pager_ops | Fs_cache of fs_cache_ops

(** Narrow a pager object to its file-system subclass. *)
val narrow_fs_pager : pager_object -> fs_pager_ops option

(** Narrow a cache object to its file-system subclass. *)
val narrow_fs_cache : cache_object -> fs_cache_ops option

(** {1 Call helpers}

    Each performs a door invocation on the serving domain and updates
    {!Sp_sim.Metrics}. *)

val flush_back : cache_object -> offset:int -> size:int -> extent list
val deny_writes : cache_object -> offset:int -> size:int -> extent list
val write_back : cache_object -> offset:int -> size:int -> extent list
val delete_range : cache_object -> offset:int -> size:int -> unit
val zero_fill : cache_object -> offset:int -> size:int -> unit
val populate : cache_object -> offset:int -> access:access -> bytes -> unit
val destroy_cache : cache_object -> unit
val page_in : pager_object -> offset:int -> size:int -> access:access -> bytes
val page_out : pager_object -> offset:int -> bytes -> unit
val write_out : pager_object -> offset:int -> bytes -> unit
val sync : pager_object -> offset:int -> bytes -> unit

(** Push a batch of coalesced dirty runs in a single vectored crossing:
    one door call, one payload transfer, one [page_outs] count for the
    whole batch.  No-op on the empty list. *)
val sync_v : pager_object -> extent list -> unit

val done_with : pager_object -> unit
val bind : memory_object -> cache_manager -> access -> cache_rights
val get_length : memory_object -> int
val set_length : memory_object -> int -> unit

(** Attribute helpers; they charge the door of the given pager/cache
    object's domain, as the subclass operations travel on the same
    connection. *)

val fs_get_attr : pager_object -> fs_pager_ops -> Attr.t
val fs_set_attr : pager_object -> fs_pager_ops -> Attr.t -> unit
val fs_attr_sync : pager_object -> fs_pager_ops -> Attr.t -> unit
val fs_invalidate_attr : cache_object -> fs_cache_ops -> unit
val fs_write_back_attr : cache_object -> fs_cache_ops -> Attr.t option
val fs_populate_attr : cache_object -> fs_cache_ops -> Attr.t -> unit

(** {1 Page geometry} *)

(** System page/block size in bytes (4096). *)
val page_size : int

(** [page_index off] is the page number containing byte [off]. *)
val page_index : int -> int

(** [page_base off] is the byte offset of the start of [off]'s page. *)
val page_base : int -> int

(** [pages_covering ~offset ~size] enumerates the page indices that
    intersect the byte range. *)
val pages_covering : offset:int -> size:int -> int list
