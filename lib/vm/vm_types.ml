type access = Read_only | Read_write

type extent = { ext_offset : int; ext_data : bytes }

type cache_object = {
  c_domain : Sp_obj.Sdomain.t;
  c_label : string;
  c_flush_back : offset:int -> size:int -> extent list;
  c_deny_writes : offset:int -> size:int -> extent list;
  c_write_back : offset:int -> size:int -> extent list;
  c_delete_range : offset:int -> size:int -> unit;
  c_zero_fill : offset:int -> size:int -> unit;
  c_populate : offset:int -> access:access -> bytes -> unit;
  c_destroy : unit -> unit;
  c_exten : Sp_obj.Exten.t list;
}

type pager_object = {
  p_domain : Sp_obj.Sdomain.t;
  p_label : string;
  p_page_in : offset:int -> size:int -> access:access -> bytes;
  p_page_out : offset:int -> bytes -> unit;
  p_write_out : offset:int -> bytes -> unit;
  p_sync : offset:int -> bytes -> unit;
  p_sync_v : extent list -> unit;
  p_done_with : unit -> unit;
  p_exten : Sp_obj.Exten.t list;
}

(* Per-extent [p_sync] semantics over a vectored batch: the default
   [p_sync_v] for pagers with no smarter clustering of their own. *)
let sync_each sync extents =
  List.iter (fun e -> sync ~offset:e.ext_offset e.ext_data) extents

let extents_bytes extents =
  List.fold_left (fun acc e -> acc + Bytes.length e.ext_data) 0 extents

type cache_rights = { cr_key : string; cr_channel_id : int }

type cache_manager = {
  cm_id : string;
  cm_domain : Sp_obj.Sdomain.t;
  cm_connect : key:string -> pager_object -> cache_object;
}

type memory_object = {
  m_domain : Sp_obj.Sdomain.t;
  m_label : string;
  m_bind : cache_manager -> access -> cache_rights;
  m_get_length : unit -> int;
  m_set_length : int -> unit;
}

type fs_pager_ops = {
  fp_get_attr : unit -> Attr.t;
  fp_set_attr : Attr.t -> unit;
  fp_attr_sync : Attr.t -> unit;
}

type fs_cache_ops = {
  fc_invalidate_attr : unit -> unit;
  fc_write_back_attr : unit -> Attr.t option;
  fc_populate_attr : Attr.t -> unit;
}

type Sp_obj.Exten.t += Fs_pager of fs_pager_ops | Fs_cache of fs_cache_ops

let narrow_fs_pager p =
  Sp_obj.Exten.narrow p.p_exten (function Fs_pager ops -> Some ops | _ -> None)

let narrow_fs_cache c =
  Sp_obj.Exten.narrow c.c_exten (function Fs_cache ops -> Some ops | _ -> None)

let coherency_call ~op domain f =
  Sp_sim.Metrics.incr_coherency_actions ();
  Sp_obj.Door.call ~op domain f

let flush_back c ~offset ~size =
  coherency_call ~op:"cache.flush_back" c.c_domain (fun () ->
      c.c_flush_back ~offset ~size)

let deny_writes c ~offset ~size =
  coherency_call ~op:"cache.deny_writes" c.c_domain (fun () ->
      c.c_deny_writes ~offset ~size)

let write_back c ~offset ~size =
  coherency_call ~op:"cache.write_back" c.c_domain (fun () ->
      c.c_write_back ~offset ~size)

let delete_range c ~offset ~size =
  coherency_call ~op:"cache.delete_range" c.c_domain (fun () ->
      c.c_delete_range ~offset ~size)

let zero_fill c ~offset ~size =
  Sp_obj.Door.call ~op:"cache.zero_fill" c.c_domain (fun () ->
      c.c_zero_fill ~offset ~size)

let populate c ~offset ~access data =
  Sp_obj.Door.call ~op:"cache.populate" c.c_domain (fun () ->
      c.c_populate ~offset ~access data)

let destroy_cache c = Sp_obj.Door.call ~op:"cache.destroy" c.c_domain c.c_destroy

(* Pager traffic is data-bearing: it rides the bulk path
   ([Door.data_call] + one [charge_transfer] per crossing).  Historically
   this payload was unaccounted, so the disabled-path fallback charges
   nothing ([~fallback:false]). *)
let page_in p ~offset ~size ~access =
  Sp_sim.Metrics.incr_page_ins ();
  let data =
    Sp_obj.Door.data_call ~op:"pager.page_in" p.p_domain (fun () ->
        p.p_page_in ~offset ~size ~access)
  in
  Sp_obj.Door.charge_transfer ~fallback:false p.p_domain (Bytes.length data);
  data

let page_out p ~offset data =
  Sp_sim.Metrics.incr_page_outs ();
  Sp_obj.Door.charge_transfer ~fallback:false p.p_domain (Bytes.length data);
  Sp_obj.Door.data_call ~op:"pager.page_out" p.p_domain (fun () ->
      p.p_page_out ~offset data)

let write_out p ~offset data =
  Sp_sim.Metrics.incr_page_outs ();
  Sp_obj.Door.charge_transfer ~fallback:false p.p_domain (Bytes.length data);
  Sp_obj.Door.data_call ~op:"pager.write_out" p.p_domain (fun () ->
      p.p_write_out ~offset data)

let sync p ~offset data =
  Sp_sim.Metrics.incr_page_outs ();
  Sp_obj.Door.charge_transfer ~fallback:false p.p_domain (Bytes.length data);
  Sp_obj.Door.data_call ~op:"pager.sync" p.p_domain (fun () -> p.p_sync ~offset data)

(* One vectored crossing pushes a whole run of coalesced dirty extents:
   one door call, one transfer charge, one [page_outs] count per batch. *)
let sync_v p extents =
  if extents <> [] then begin
    Sp_sim.Metrics.incr_page_outs ();
    Sp_obj.Door.charge_transfer ~fallback:false p.p_domain (extents_bytes extents);
    Sp_obj.Door.data_call ~op:"pager.sync_v" p.p_domain (fun () -> p.p_sync_v extents)
  end

let done_with p = Sp_obj.Door.call ~op:"pager.done_with" p.p_domain p.p_done_with

let bind m manager access =
  Sp_obj.Door.call ~op:"mem.bind" m.m_domain (fun () -> m.m_bind manager access)

let get_length m = Sp_obj.Door.call ~op:"mem.get_length" m.m_domain m.m_get_length

let set_length m len =
  Sp_obj.Door.call ~op:"mem.set_length" m.m_domain (fun () -> m.m_set_length len)

let fs_get_attr p ops =
  Sp_sim.Metrics.incr_attr_fetches ();
  Sp_obj.Door.call ~op:"fs_pager.get_attr" p.p_domain ops.fp_get_attr

let fs_set_attr p ops attr =
  Sp_obj.Door.call ~op:"fs_pager.set_attr" p.p_domain (fun () -> ops.fp_set_attr attr)

let fs_attr_sync p ops attr =
  Sp_obj.Door.call ~op:"fs_pager.attr_sync" p.p_domain (fun () ->
      ops.fp_attr_sync attr)

let fs_invalidate_attr c ops =
  Sp_obj.Door.call ~op:"fs_cache.invalidate_attr" c.c_domain ops.fc_invalidate_attr

let fs_write_back_attr c ops =
  Sp_obj.Door.call ~op:"fs_cache.write_back_attr" c.c_domain ops.fc_write_back_attr

let fs_populate_attr c ops attr =
  Sp_obj.Door.call ~op:"fs_cache.populate_attr" c.c_domain (fun () ->
      ops.fc_populate_attr attr)

let page_size = 4096
let page_index off = off / page_size
let page_base off = off - (off mod page_size)

let pages_covering ~offset ~size =
  if size <= 0 then []
  else
    let first = page_index offset in
    let last = page_index (offset + size - 1) in
    List.init (last - first + 1) (fun i -> first + i)
