type t = {
  label : string;
  domain : Sp_obj.Sdomain.t;
  mutable store : bytes;
  mutable len : int;
  registry : Pager_lib.t;
  mutable page_ins : int;
}

let create ?(node = "local") ~label () =
  {
    label;
    domain = Sp_obj.Sdomain.create ~node ("rampager:" ^ label);
    store = Bytes.create 0;
    len = 0;
    registry = Pager_lib.create ();
    page_ins = 0;
  }

let grow t target =
  if target > Bytes.length t.store then begin
    let fresh = Bytes.make (max target (2 * Bytes.length t.store)) '\000' in
    Bytes.blit t.store 0 fresh 0 t.len;
    t.store <- fresh
  end;
  if target > t.len then t.len <- target

let peek t ~pos ~len =
  let out = Bytes.make len '\000' in
  let available = max 0 (min len (t.len - pos)) in
  if available > 0 then Bytes.blit t.store pos out 0 available;
  out

let poke t ~pos data =
  grow t (pos + Bytes.length data);
  Bytes.blit data 0 t.store pos (Bytes.length data)

let make_pager t =
  let write ~offset data = poke t ~pos:offset data in
  {
    Vm_types.p_domain = t.domain;
    p_label = t.label;
    p_page_in =
      (fun ~offset ~size ~access:_ ->
        t.page_ins <- t.page_ins + 1;
        peek t ~pos:offset ~len:size);
    p_page_out = write;
    p_write_out = write;
    p_sync = write;
    p_sync_v = Vm_types.sync_each write;
    p_done_with = (fun () -> ());
    p_exten = [];
  }

let memory_object t =
  {
    Vm_types.m_domain = t.domain;
    m_label = t.label;
    m_bind =
      (fun manager _access ->
        Pager_lib.bind t.registry ~key:t.label ~make_pager:(fun ~id:_ -> make_pager t)
          manager);
    m_get_length = (fun () -> t.len);
    m_set_length =
      (fun len ->
        if len < t.len then begin
          Bytes.fill t.store len (Bytes.length t.store - len) '\000';
          t.len <- len
        end
        else grow t len);
  }

let store_size t = t.len
let channels t = Pager_lib.channels t.registry
let page_in_count t = t.page_ins
