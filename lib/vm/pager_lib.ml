type channel = {
  ch_id : int;
  ch_key : string;
  ch_manager_id : string;
  ch_manager_domain : Sp_obj.Sdomain.t;
  ch_pager : Vm_types.pager_object;
  ch_cache : Vm_types.cache_object;
}

type t = { mutable next_id : int; table : (string * string, channel) Hashtbl.t }

let create () = { next_id = 0; table = Hashtbl.create 16 }

let bind t ~key ~make_pager (manager : Vm_types.cache_manager) =
  let slot = (manager.cm_id, key) in
  let existing =
    match Hashtbl.find_opt t.table slot with
    | Some ch when not (Sp_obj.Sdomain.alive ch.ch_cache.Vm_types.c_domain) ->
        (* Same manager identity, dead serving domain: the manager's
           previous incarnation crashed and a restarted one is binding
           again.  Fence the stale channel and connect afresh. *)
        Hashtbl.remove t.table slot;
        None
    | found -> found
  in
  match existing with
  | Some ch -> { Vm_types.cr_key = key; cr_channel_id = ch.ch_id }
  | None ->
      t.next_id <- t.next_id + 1;
      let id = t.next_id in
      let pager = make_pager ~id in
      let cache =
        Sp_obj.Door.call ~op:"cache_manager.connect" manager.cm_domain (fun () ->
            manager.cm_connect ~key pager)
      in
      let ch =
        {
          ch_id = id;
          ch_key = key;
          ch_manager_id = manager.cm_id;
          ch_manager_domain = manager.cm_domain;
          ch_pager = pager;
          ch_cache = cache;
        }
      in
      Hashtbl.replace t.table slot ch;
      { Vm_types.cr_key = key; cr_channel_id = ch.ch_id }

let channels_for_key t ~key =
  Hashtbl.fold
    (fun (_, k) ch acc -> if String.equal k key then ch :: acc else acc)
    t.table []

let channels t = Hashtbl.fold (fun _ ch acc -> ch :: acc) t.table []

let find t ~id =
  Hashtbl.fold
    (fun _ ch acc -> if ch.ch_id = id then Some ch else acc)
    t.table None

let remove t id =
  let slot =
    Hashtbl.fold
      (fun slot ch acc -> if ch.ch_id = id then Some slot else acc)
      t.table None
  in
  Option.iter (Hashtbl.remove t.table) slot

(* Incarnation fencing: a channel whose cache object is served by a
   fail-stopped domain belongs to a pre-crash incarnation of the cache
   manager.  Calling back into it would raise [Dead_domain] inside the
   (still-live) pager's own operation, so the channel is dropped instead
   and its holder state is forgotten by the caller. *)
let cache_if_live t ch =
  if Sp_obj.Sdomain.alive ch.ch_cache.Vm_types.c_domain then Some ch.ch_cache
  else begin
    remove t ch.ch_id;
    if Sp_trace.enabled () then
      Sp_trace.instant ~name:"pager.fence"
        ~args:[ ("cache", ch.ch_cache.Vm_types.c_label); ("key", ch.ch_key) ]
        ();
    None
  end

let live_cache t ~id =
  match find t ~id with None -> None | Some ch -> cache_if_live t ch

let live_channels_for_key t ~key =
  List.filter
    (fun ch -> Option.is_some (cache_if_live t ch))
    (channels_for_key t ~key)

let destroy_key t ~key =
  List.iter
    (fun ch ->
      Vm_types.destroy_cache ch.ch_cache;
      remove t ch.ch_id)
    (channels_for_key t ~key)

(* Tear down every channel (drop_caches): the cache objects capture the
   manager-side per-file state, so leaving dead channels behind pins it.
   Destroys cascade manager-side ([c_destroy] evicts the holder), so the
   table is cleared first to keep reentrant callbacks away from it. *)
let destroy_all t =
  let chs = channels t in
  Hashtbl.reset t.table;
  List.iter (fun ch -> Vm_types.destroy_cache ch.ch_cache) chs

let channel_count t = Hashtbl.length t.table
