type channel = {
  ch_id : int;
  ch_key : string;
  ch_manager_id : string;
  ch_manager_domain : Sp_obj.Sdomain.t;
  ch_pager : Vm_types.pager_object;
  ch_cache : Vm_types.cache_object;
}

type t = { mutable next_id : int; table : (string * string, channel) Hashtbl.t }

let create () = { next_id = 0; table = Hashtbl.create 16 }

let bind t ~key ~make_pager (manager : Vm_types.cache_manager) =
  let slot = (manager.cm_id, key) in
  match Hashtbl.find_opt t.table slot with
  | Some ch -> { Vm_types.cr_key = key; cr_channel_id = ch.ch_id }
  | None ->
      t.next_id <- t.next_id + 1;
      let id = t.next_id in
      let pager = make_pager ~id in
      let cache =
        Sp_obj.Door.call ~op:"cache_manager.connect" manager.cm_domain (fun () ->
            manager.cm_connect ~key pager)
      in
      let ch =
        {
          ch_id = id;
          ch_key = key;
          ch_manager_id = manager.cm_id;
          ch_manager_domain = manager.cm_domain;
          ch_pager = pager;
          ch_cache = cache;
        }
      in
      Hashtbl.replace t.table slot ch;
      { Vm_types.cr_key = key; cr_channel_id = ch.ch_id }

let channels_for_key t ~key =
  Hashtbl.fold
    (fun (_, k) ch acc -> if String.equal k key then ch :: acc else acc)
    t.table []

let channels t = Hashtbl.fold (fun _ ch acc -> ch :: acc) t.table []

let find t ~id =
  Hashtbl.fold
    (fun _ ch acc -> if ch.ch_id = id then Some ch else acc)
    t.table None

let remove t id =
  let slot =
    Hashtbl.fold
      (fun slot ch acc -> if ch.ch_id = id then Some slot else acc)
      t.table None
  in
  Option.iter (Hashtbl.remove t.table) slot

let destroy_key t ~key =
  List.iter
    (fun ch ->
      Vm_types.destroy_cache ch.ch_cache;
      remove t ch.ch_id)
    (channels_for_key t ~key)

let channel_count t = Hashtbl.length t.table
