let ps = Vm_types.page_size

type page = {
  mutable data : bytes;
  mutable mode : Vm_types.access;
  mutable dirty : bool;
  mutable used : int;  (* LRU tick *)
  mutable prefetched : bool;  (* brought in by read-ahead, not yet hit *)
}

type entry = {
  e_key : string;
  pages : (int, page) Hashtbl.t;
  mutable pager : Vm_types.pager_object option;
  mutable mapped : int;  (* live mapping count *)
  mutable last_fault : int;  (* page index, for sequential-run detection *)
  mutable ra_window : int;  (* adaptive read-ahead window, in pages *)
  mutable ra_next : int;  (* fault index that continues the run: the first
                             page past the last fetch (prefetched pages
                             absorb intermediate faults, so [last_fault+1]
                             alone would read a sequential run as random) *)
}

type t = {
  vmm_domain : Sp_obj.Sdomain.t;
  vmm_name : string;
  entries : (string, entry) Hashtbl.t;
  mutable readahead_pages : int;  (* manual override; 0 = adaptive *)
  mutable adaptive : bool;
  mutable clustered : bool;
  mutable capacity : int option;
  mutable tick : int;
  mutable evicted : int;
  mutable evicting : bool;  (* reentrancy guard: page-out of a dirty victim
                               may fault pages back in through lower layers *)
  mutable reconciled_clean : int;
  mutable reconciled_lost : int;
}

type mapping = {
  m_vmm : t;
  m_entry : entry;
  m_mem : Vm_types.memory_object;
  mutable m_live : bool;
}

let create ~node name =
  {
    vmm_domain = Sp_obj.Sdomain.create ~node ("vmm:" ^ name);
    vmm_name = name;
    entries = Hashtbl.create 32;
    readahead_pages = 0;
    adaptive = true;
    clustered = true;
    capacity = None;
    tick = 0;
    evicted = 0;
    evicting = false;
    reconciled_clean = 0;
    reconciled_lost = 0;
  }

let domain t = t.vmm_domain

let entry_for t key =
  match Hashtbl.find_opt t.entries key with
  | Some e -> e
  | None ->
      let e =
        { e_key = key; pages = Hashtbl.create 16; pager = None; mapped = 0;
          last_fault = min_int; ra_window = 0; ra_next = min_int }
      in
      Hashtbl.replace t.entries key e;
      e

(* A prefetched page leaving the cache (or being discarded) without ever
   having absorbed a fault was wasted read-ahead. *)
let note_retired (page : page) =
  if page.prefetched then Sp_sim.Metrics.incr_readahead_wasted ()

(* Collect modified extents for pages intersecting [offset, offset+size),
   applying [update] to each intersecting page and dropping those for which
   [update] returns [false]. *)
let scan_range entry ~offset ~size ~collect_dirty ~clear_dirty ~downgrade ~drop =
  let extents = ref [] in
  let doomed = ref [] in
  let visit idx =
    match Hashtbl.find_opt entry.pages idx with
    | None -> ()
    | Some page ->
        if collect_dirty && page.dirty then
          extents :=
            { Vm_types.ext_offset = idx * ps; ext_data = Bytes.copy page.data }
            :: !extents;
        if clear_dirty then page.dirty <- false;
        if downgrade && page.mode = Vm_types.Read_write then
          page.mode <- Vm_types.Read_only;
        if drop then begin
          note_retired page;
          doomed := idx :: !doomed
        end
  in
  List.iter visit (Vm_types.pages_covering ~offset ~size);
  List.iter (Hashtbl.remove entry.pages) !doomed;
  List.sort
    (fun a b -> Int.compare a.Vm_types.ext_offset b.Vm_types.ext_offset)
    !extents

let touch t page =
  t.tick <- t.tick + 1;
  page.used <- t.tick

let total_cached_pages t =
  Hashtbl.fold (fun _ e acc -> acc + Hashtbl.length e.pages) t.entries 0

(* Evict the least-recently-used page, pushing dirty contents to the
   owning pager first. *)
let evict_one t =
  let victim = ref None in
  Hashtbl.iter
    (fun _ entry ->
      Hashtbl.iter
        (fun idx page ->
          match !victim with
          | Some (_, _, best) when best.used <= page.used -> ()
          | _ -> victim := Some (entry, idx, page))
        entry.pages)
    t.entries;
  match !victim with
  | None -> ()
  | Some (entry, idx, page) ->
      (* Remove before the dirty push: the push may recurse into this VMM
         and must not pick the same victim again. *)
      Hashtbl.remove entry.pages idx;
      t.evicted <- t.evicted + 1;
      note_retired page;
      if page.dirty then
        match entry.pager with
        | Some pager when not (Sp_obj.Sdomain.alive pager.Vm_types.p_domain) ->
            (* the serving incarnation crashed before this page was pushed:
               the data is lost, like dirty data at a machine crash *)
            t.reconciled_lost <- t.reconciled_lost + 1
        | Some pager when not t.clustered ->
            (* The victim is already out of the table, so its buffer can be
               handed to the pager as-is — no defensive copy needed. *)
            Sp_obj.Door.call ~op:"vmm.evict" t.vmm_domain (fun () ->
                Vm_types.sync pager ~offset:(idx * ps) page.data)
        | Some pager ->
            (* Write-behind clustering: push the whole contiguous dirty run
               around the victim in one vectored crossing.  The neighbours
               stay cached, now clean. *)
            let dirty_at i =
              match Hashtbl.find_opt entry.pages i with
              | Some p -> p.dirty
              | None -> false
            in
            let lo = ref idx and hi = ref idx in
            while dirty_at (!lo - 1) do
              decr lo
            done;
            while dirty_at (!hi + 1) do
              incr hi
            done;
            if !lo = idx && !hi = idx then
              Sp_obj.Door.call ~op:"vmm.evict" t.vmm_domain (fun () ->
                  Vm_types.sync pager ~offset:(idx * ps) page.data)
            else begin
              let n = !hi - !lo + 1 in
              let buf = Bytes.create (n * ps) in
              for i = !lo to !hi do
                let src = if i = idx then page else Hashtbl.find entry.pages i in
                Bytes.blit src.data 0 buf ((i - !lo) * ps) ps
              done;
              Sp_obj.Door.call ~op:"vmm.evict" t.vmm_domain (fun () ->
                  Vm_types.sync_v pager
                    [ { Vm_types.ext_offset = !lo * ps; ext_data = buf } ]);
              for i = !lo to !hi do
                match Hashtbl.find_opt entry.pages i with
                | Some p -> p.dirty <- false
                | None -> ()
              done
            end
        | None -> ()

(* Insert a page, honouring the capacity bound.  While a victim's dirty
   data is being pushed out, nested insertions are admitted unconditionally
   (the recursion's working set is effectively pinned), so the cache may
   briefly overshoot rather than livelock. *)
let insert_page t entry idx page =
  (match t.capacity with
  | Some cap when not t.evicting ->
      t.evicting <- true;
      Fun.protect
        ~finally:(fun () -> t.evicting <- false)
        (fun () ->
          let guard = ref (2 * cap) in
          while total_cached_pages t >= cap && !guard > 0 do
            evict_one t;
            decr guard
          done)
  | _ -> ());
  touch t page;
  Hashtbl.replace entry.pages idx page

let make_cache_object t entry =
  {
    Vm_types.c_domain = t.vmm_domain;
    c_label = Printf.sprintf "cache:%s:%s" t.vmm_name entry.e_key;
    c_flush_back =
      (fun ~offset ~size ->
        scan_range entry ~offset ~size ~collect_dirty:true ~clear_dirty:true
          ~downgrade:false ~drop:true);
    c_deny_writes =
      (fun ~offset ~size ->
        scan_range entry ~offset ~size ~collect_dirty:true ~clear_dirty:true
          ~downgrade:true ~drop:false);
    c_write_back =
      (fun ~offset ~size ->
        scan_range entry ~offset ~size ~collect_dirty:true ~clear_dirty:true
          ~downgrade:false ~drop:false);
    c_delete_range =
      (fun ~offset ~size ->
        ignore
          (scan_range entry ~offset ~size ~collect_dirty:false ~clear_dirty:false
             ~downgrade:false ~drop:true));
    c_zero_fill =
      (fun ~offset ~size ->
        let zero_page idx =
          let page_off = idx * ps in
          if offset <= page_off && page_off + ps <= offset + size then
            insert_page t entry idx
              { data = Bytes.make ps '\000'; mode = Vm_types.Read_only; dirty = false;
                used = 0; prefetched = false }
          else
            match Hashtbl.find_opt entry.pages idx with
            | None -> ()
            | Some page ->
                let from = max offset page_off in
                let upto = min (offset + size) (page_off + ps) in
                Bytes.fill page.data (from - page_off) (upto - from) '\000'
        in
        List.iter zero_page (Vm_types.pages_covering ~offset ~size));
    c_populate =
      (fun ~offset ~access data ->
        if offset mod ps <> 0 then invalid_arg "populate: unaligned offset";
        let total = Bytes.length data in
        let insert idx =
          let rel = (idx * ps) - offset in
          let chunk = Bytes.make ps '\000' in
          let n = min ps (total - rel) in
          Bytes.blit data rel chunk 0 n;
          insert_page t entry idx
            { data = chunk; mode = access; dirty = false; used = 0; prefetched = false }
        in
        List.iter insert (Vm_types.pages_covering ~offset ~size:total));
    c_destroy =
      (fun () ->
        Hashtbl.iter (fun _ p -> note_retired p) entry.pages;
        Hashtbl.reset entry.pages;
        entry.pager <- None);
    c_exten = [];
  }

(* A connect from a pager in a different domain than the one already
   bound means the previous serving incarnation crashed and a restarted
   layer is reconnecting.  Reconcile cached pages per MRSW state: clean
   pages (including dirty-then-synced ones) are dropped and refetched on
   the next fault; dirty unsynced pages never reached the old pager and
   are lost — the same contract as unsynced data at a machine crash. *)
let reconcile t entry =
  let clean = ref 0 and lost = ref 0 in
  Hashtbl.iter
    (fun _ (p : page) ->
      note_retired p;
      if p.dirty then incr lost else incr clean)
    entry.pages;
  Hashtbl.reset entry.pages;
  entry.last_fault <- min_int;
  entry.ra_window <- 0;
  entry.ra_next <- min_int;
  t.reconciled_clean <- t.reconciled_clean + !clean;
  t.reconciled_lost <- t.reconciled_lost + !lost;
  if Sp_trace.enabled () then
    Sp_trace.instant ~name:"vmm.reconcile"
      ~args:
        [
          ("key", entry.e_key);
          ("clean", string_of_int !clean);
          ("lost", string_of_int !lost);
        ]
      ()

let manager t =
  {
    Vm_types.cm_id = "vmm:" ^ t.vmm_name;
    cm_domain = t.vmm_domain;
    cm_connect =
      (fun ~key pager ->
        let entry = entry_for t key in
        (match entry.pager with
        | Some old
          when Sp_obj.Sdomain.id old.Vm_types.p_domain
               <> Sp_obj.Sdomain.id pager.Vm_types.p_domain ->
            reconcile t entry
        | _ -> ());
        entry.pager <- Some pager;
        make_cache_object t entry);
  }

let map t mem =
  Sp_obj.Door.kernel_call ();
  let rights = Vm_types.bind mem (manager t) Vm_types.Read_write in
  let entry = entry_for t rights.Vm_types.cr_key in
  entry.mapped <- entry.mapped + 1;
  { m_vmm = t; m_entry = entry; m_mem = mem; m_live = true }

let pager_of entry =
  match entry.pager with
  | Some p -> p
  | None -> failwith ("Vmm: no pager bound for cache entry " ^ entry.e_key)

(* A mapping whose channel was torn down (drop_caches destroyed the
   cache object, which cleared [entry.pager]) reconnects on the next
   fault: the mapping still holds the memory object, and re-binding it
   re-establishes the channel under the same key. *)
let pager_of_mapping m =
  let entry = m.m_entry in
  (match entry.pager with
  | Some _ -> ()
  | None -> ignore (Vm_types.bind m.m_mem (manager m.m_vmm) Vm_types.Read_write));
  pager_of entry

let fault m idx access =
  let model = Sp_sim.Cost_model.current () in
  Sp_sim.Metrics.incr_page_faults ();
  Sp_sim.Simclock.advance model.page_fault_ns;
  let entry = m.m_entry in
  let pager = pager_of_mapping m in
  (* Read-ahead: a read fault continuing a sequential run asks the pager
     for more than strictly needed; anything extra comes back read-only.
     A manual window ([set_readahead]) is used as-is; otherwise the
     per-entry adaptive window starts at two pages, doubles each time the
     run continues (up to the cost model's cap) and collapses to zero on a
     non-sequential fault.  [ra_next] — the first page past the last fetch
     — recognises a run even when prefetched pages absorbed the
     intermediate faults. *)
  let vmm = m.m_vmm in
  let extra =
    if access <> Vm_types.Read_only then 0
    else if vmm.readahead_pages > 0 then
      if idx = entry.last_fault + 1 then vmm.readahead_pages else 0
    else if vmm.adaptive && model.readahead_max_pages > 0 then begin
      let sequential = idx = entry.ra_next || idx = entry.last_fault + 1 in
      let window =
        if sequential then
          min model.readahead_max_pages (max 2 (entry.ra_window * 2))
        else 0
      in
      if window <> entry.ra_window && Sp_trace.enabled () then
        Sp_trace.instant ~name:"vmm.readahead"
          ~args:
            [
              ("key", entry.e_key);
              ("page", string_of_int idx);
              ("window", string_of_int window);
            ]
          ();
      entry.ra_window <- window;
      window
    end
    else 0
  in
  entry.last_fault <- idx;
  entry.ra_next <- idx + 1 + extra;
  let size = (1 + extra) * ps in
  let data =
    Sp_obj.Door.call ~op:"vmm.fault" m.m_vmm.vmm_domain (fun () ->
        Vm_types.page_in pager ~offset:(idx * ps) ~size ~access)
  in
  let slice i =
    let from = i * ps in
    let available = Bytes.length data - from in
    if available >= ps then Some (Bytes.sub data from ps)
    else if available > 0 then begin
      let padded = Bytes.make ps '\000' in
      Bytes.blit data from padded 0 available;
      Some padded
    end
    else None
  in
  let first =
    match slice 0 with Some d -> d | None -> Bytes.make ps '\000'
  in
  let page = { data = first; mode = access; dirty = false; used = 0; prefetched = false } in
  insert_page m.m_vmm entry idx page;
  for i = 1 to extra do
    match slice i with
    | Some d ->
        if not (Hashtbl.mem entry.pages (idx + i)) then
          insert_page m.m_vmm entry (idx + i)
            { data = d; mode = Vm_types.Read_only; dirty = false; used = 0;
              prefetched = true }
    | None -> ()
  done;
  page

let note_hit (page : page) =
  if page.prefetched then begin
    page.prefetched <- false;
    Sp_sim.Metrics.incr_readahead_hits ()
  end

let ensure m idx access =
  match Hashtbl.find_opt m.m_entry.pages idx with
  | Some page when access = Vm_types.Read_only ->
      touch m.m_vmm page;
      note_hit page;
      page
  | Some page when page.mode = Vm_types.Read_write ->
      touch m.m_vmm page;
      note_hit page;
      page
  | Some _ -> fault m idx Vm_types.Read_write
  | None -> fault m idx access

let check_live m = if not m.m_live then failwith "Vmm: access through unmapped mapping"

let read m ~pos ~len =
  check_live m;
  if len < 0 || pos < 0 then invalid_arg "Vmm.read";
  let out = Bytes.create len in
  let rec go cursor =
    if cursor < len then begin
      let off = pos + cursor in
      let idx = Vm_types.page_index off in
      let page = ensure m idx Vm_types.Read_only in
      let in_page = off - (idx * ps) in
      let n = min (len - cursor) (ps - in_page) in
      Bytes.blit page.data in_page out cursor n;
      go (cursor + n)
    end
  in
  go 0;
  Sp_obj.Door.charge_source_copy len;
  out

let write m ~pos data =
  check_live m;
  if pos < 0 then invalid_arg "Vmm.write";
  let len = Bytes.length data in
  let rec go cursor =
    if cursor < len then begin
      let off = pos + cursor in
      let idx = Vm_types.page_index off in
      let page = ensure m idx Vm_types.Read_write in
      let in_page = off - (idx * ps) in
      let n = min (len - cursor) (ps - in_page) in
      Bytes.blit data cursor page.data in_page n;
      page.dirty <- true;
      go (cursor + n)
    end
  in
  go 0;
  Sp_obj.Door.charge_source_copy len

let push_dirty vmm entry =
  match entry.pager with
  | None -> ()
  | Some pager when not (Sp_obj.Sdomain.alive pager.Vm_types.p_domain) ->
      (* pager incarnation crashed while we held its pages: reconcile
         instead of calling into the dead domain *)
      reconcile vmm entry
  | Some pager ->
      let flush idx (page : page) acc = if page.dirty then (idx, page) :: acc else acc in
      let dirty = Hashtbl.fold flush entry.pages [] in
      let ordered = List.sort (fun (a, _) (b, _) -> Int.compare a b) dirty in
      if ordered = [] then ()
      else if not vmm.clustered then
        (* Unclustered baseline: one crossing per dirty page. *)
        List.iter
          (fun (idx, page) ->
            Sp_obj.Door.call ~op:"vmm.push_dirty" vmm.vmm_domain (fun () ->
                Vm_types.sync pager ~offset:(idx * ps) (Bytes.copy page.data));
            page.dirty <- false)
          ordered
      else begin
        (* Clustered writeback: coalesce contiguous dirty pages into one
           extent per run and push the whole batch in a single vectored
           crossing. *)
        let runs =
          List.fold_left
            (fun acc (idx, page) ->
              match acc with
              | ((prev, _) :: _ as run) :: rest when idx = prev + 1 ->
                  ((idx, page) :: run) :: rest
              | _ -> [ (idx, page) ] :: acc)
            [] ordered
          |> List.rev_map List.rev
        in
        let extents =
          List.map
            (fun run ->
              let first = match run with (i, _) :: _ -> i | [] -> assert false in
              let buf = Bytes.create (List.length run * ps) in
              List.iteri
                (fun i (_, page) -> Bytes.blit page.data 0 buf (i * ps) ps)
                run;
              { Vm_types.ext_offset = first * ps; ext_data = buf })
            runs
        in
        Sp_obj.Door.call ~op:"vmm.push_dirty" vmm.vmm_domain (fun () ->
            Vm_types.sync_v pager extents);
        List.iter (fun (_, page) -> page.dirty <- false) ordered
      end

let msync m =
  check_live m;
  Sp_obj.Door.kernel_call ();
  push_dirty m.m_vmm m.m_entry

let unmap m =
  if m.m_live then begin
    m.m_live <- false;
    Sp_obj.Door.kernel_call ();
    push_dirty m.m_vmm m.m_entry;
    m.m_entry.mapped <- max 0 (m.m_entry.mapped - 1)
  end

let memory_object m = m.m_mem
let cached_pages m = Hashtbl.length m.m_entry.pages

let drop_caches t =
  let drop _key entry =
    push_dirty t entry;
    Hashtbl.iter (fun _ p -> note_retired p) entry.pages;
    Hashtbl.reset entry.pages
  in
  Hashtbl.iter drop t.entries;
  (* Evict the entry records of unmapped files too: a live mapping holds
     its entry through the mapped count, but entries for files nobody
     maps any more only pin memory (a bulk build touches millions). *)
  let idle =
    Hashtbl.fold
      (fun key e acc -> if e.mapped = 0 then key :: acc else acc)
      t.entries []
  in
  List.iter (Hashtbl.remove t.entries) idle

let entry_count t = Hashtbl.length t.entries

let set_readahead t ~pages =
  if pages < 0 then invalid_arg "Vmm.set_readahead";
  t.readahead_pages <- pages

let readahead t = t.readahead_pages
let set_adaptive t on = t.adaptive <- on
let adaptive t = t.adaptive
let set_clustered t on = t.clustered <- on
let clustered t = t.clustered

let set_capacity t ~pages =
  match pages with
  | Some n when n <= 0 -> invalid_arg "Vmm.set_capacity"
  | _ -> t.capacity <- pages

let evictions t = t.evicted
let reconciled t = (t.reconciled_clean, t.reconciled_lost)
