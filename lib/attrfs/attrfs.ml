let shadow_prefix = ".xattr."

type xattr_ops = {
  xa_get : string -> string option;
  xa_set : string -> string -> unit;
  xa_remove : string -> unit;
  xa_list : unit -> (string * string) list;
}

type Sp_obj.Exten.t += Xattr of xattr_ops

let xattrs (f : Sp_core.File.t) =
  Sp_obj.Exten.narrow f.Sp_core.File.f_exten (function
    | Xattr ops -> Some ops
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Shadow-file codec: u16 count, then per entry u16 klen, key, u32 vlen,
   value.                                                              *)
(* ------------------------------------------------------------------ *)

let encode_pairs pairs =
  let buf = Buffer.create 64 in
  let u16 n =
    Buffer.add_char buf (Char.chr (n land 0xff));
    Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff))
  in
  let u32 n =
    u16 (n land 0xffff);
    u16 ((n lsr 16) land 0xffff)
  in
  u16 (List.length pairs);
  List.iter
    (fun (k, v) ->
      u16 (String.length k);
      Buffer.add_string buf k;
      u32 (String.length v);
      Buffer.add_string buf v)
    pairs;
  Buffer.to_bytes buf

let decode_pairs data =
  let pos = ref 0 in
  let u16 () =
    let v = Bytes.get_uint16_le data !pos in
    pos := !pos + 2;
    v
  in
  let u32 () =
    let lo = u16 () in
    let hi = u16 () in
    lo lor (hi lsl 16)
  in
  let str n =
    let s = Bytes.sub_string data !pos n in
    pos := !pos + n;
    s
  in
  if Bytes.length data < 2 then []
  else begin
    let count = u16 () in
    List.init count (fun _ ->
        let k = str (u16 ()) in
        let v = str (u32 ()) in
        (k, v))
  end

(* ------------------------------------------------------------------ *)
(* The layer                                                           *)
(* ------------------------------------------------------------------ *)

type layer = {
  l_name : string;
  l_domain : Sp_obj.Sdomain.t;
  mutable l_lower : Sp_core.Stackable.t option;
  l_wrapped : (string, Sp_core.File.t) Hashtbl.t;
}

let lower_of l =
  match l.l_lower with
  | Some fs -> fs
  | None -> raise (Sp_core.Stackable.Stack_error (l.l_name ^ ": not stacked yet"))

let is_shadow name =
  String.length name >= String.length shadow_prefix
  && String.sub name 0 (String.length shadow_prefix) = shadow_prefix

let shadow_path path =
  match List.rev (Sp_naming.Sname.components path) with
  | [] -> invalid_arg "Attrfs: empty path"
  | last :: rev_dirs ->
      Sp_naming.Sname.of_components (List.rev ((shadow_prefix ^ last) :: rev_dirs))

let read_pairs l path =
  let lower = lower_of l in
  match Sp_core.Stackable.open_file lower (shadow_path path) with
  | shadow -> decode_pairs (Sp_core.File.read_all shadow)
  | exception Sp_core.Fserr.No_such_file _ -> []

let write_pairs l path pairs =
  let lower = lower_of l in
  let sp = shadow_path path in
  let shadow =
    match Sp_core.Stackable.open_file lower sp with
    | f -> f
    | exception Sp_core.Fserr.No_such_file _ -> Sp_core.Stackable.create lower sp
  in
  let data = encode_pairs pairs in
  Sp_core.File.truncate shadow 0;
  ignore (Sp_core.File.write shadow ~pos:0 data)

let make_xattr_ops l path =
  let sorted pairs = List.sort (fun (a, _) (b, _) -> String.compare a b) pairs in
  {
    xa_get = (fun k -> List.assoc_opt k (read_pairs l path));
    xa_set =
      (fun k v ->
        let pairs = List.remove_assoc k (read_pairs l path) in
        write_pairs l path (sorted ((k, v) :: pairs)));
    xa_remove =
      (fun k -> write_pairs l path (List.remove_assoc k (read_pairs l path)));
    xa_list = (fun () -> sorted (read_pairs l path));
  }

(* The exported file forwards everything — including the memory object,
   so mappings bind straight to the original pager — and adds the Xattr
   extension. *)
let wrap_file l path (lower : Sp_core.File.t) =
  let key = Printf.sprintf "attrfs:%s:%s" l.l_name (Sp_naming.Sname.to_string path) in
  match Hashtbl.find_opt l.l_wrapped key with
  | Some f -> f
  | None ->
      let f =
        {
          lower with
          Sp_core.File.f_id = key;
          f_domain = l.l_domain;
          f_read = (fun ~pos ~len -> Sp_core.File.read lower ~pos ~len);
          f_write = (fun ~pos data -> Sp_core.File.write lower ~pos data);
          f_stat = (fun () -> Sp_core.File.stat lower);
          f_set_attr = (fun a -> Sp_core.File.set_attr lower a);
          f_truncate = (fun n -> Sp_core.File.truncate lower n);
          f_sync = (fun () -> Sp_core.File.sync lower);
          f_exten = Xattr (make_xattr_ops l path) :: lower.Sp_core.File.f_exten;
        }
      in
      Hashtbl.replace l.l_wrapped key f;
      f

let rec make_ctx l ~path =
  let label =
    if Sp_naming.Sname.is_empty path then l.l_name
    else l.l_name ^ "/" ^ Sp_naming.Sname.to_string path
  in
  let resolve1 component =
    if is_shadow component then raise (Sp_naming.Context.Unbound (label ^ "/" ^ component));
    let lower = lower_of l in
    let sub = Sp_naming.Sname.append path component in
    match Sp_naming.Context.resolve lower.Sp_core.Stackable.sfs_ctx sub with
    | Sp_core.File.File f ->
        Sp_sim.Simclock.advance (Sp_sim.Cost_model.current ()).open_state_ns;
        Sp_core.File.File (wrap_file l sub f)
    | Sp_naming.Context.Context _ -> Sp_naming.Context.Context (make_ctx l ~path:sub)
    | other -> other
  in
  let readdir1 ~cookie ~limit =
    Sp_dir.Cursor.filter
      (fun n -> not (is_shadow n))
      (fun ~cookie ~limit ->
        Sp_core.Stackable.readdir (lower_of l) path ~cookie ~limit)
      ~cookie ~limit
  in
  let list () =
    List.sort String.compare
      (Sp_dir.Cursor.drain (fun ~cookie ~limit -> readdir1 ~cookie ~limit))
  in
  {
    Sp_naming.Context.ctx_domain = l.l_domain;
    ctx_label = label;
    ctx_acl = (fun () -> Sp_naming.Acl.open_acl);
    ctx_set_acl = (fun _ -> ());
    ctx_resolve1 = resolve1;
    ctx_bind1 =
      (fun c o ->
        Sp_naming.Context.bind (lower_of l).Sp_core.Stackable.sfs_ctx
          (Sp_naming.Sname.append path c) o);
    ctx_rebind1 =
      (fun c o ->
        Sp_naming.Context.rebind (lower_of l).Sp_core.Stackable.sfs_ctx
          (Sp_naming.Sname.append path c) o);
    ctx_unbind1 =
      (fun c ->
        Sp_naming.Context.unbind (lower_of l).Sp_core.Stackable.sfs_ctx
          (Sp_naming.Sname.append path c));
    ctx_list = list;
    ctx_readdir1 = readdir1;
  }

let remove_shadow_if_any l path =
  let lower = lower_of l in
  match Sp_core.Stackable.remove lower (shadow_path path) with
  | () -> ()
  | exception Sp_core.Fserr.No_such_file _ -> ()

let make ?(node = "local") ?domain ~name () =
  let domain =
    match domain with Some d -> d | None -> Sp_obj.Sdomain.create ~node name
  in
  let l = { l_name = name; l_domain = domain; l_lower = None; l_wrapped = Hashtbl.create 16 } in
  let ctx = make_ctx l ~path:(Sp_naming.Sname.of_components []) in
  {
    Sp_core.Stackable.sfs_name = name;
    sfs_type = "attrfs";
    sfs_domain = domain;
    sfs_ctx = ctx;
    sfs_stack_on =
      (fun under ->
        match l.l_lower with
        | Some _ ->
            raise
              (Sp_core.Stackable.Stack_error
                 (name ^ ": attrfs stacks on exactly one file system"))
        | None -> l.l_lower <- Some under);
    sfs_unders = (fun () -> Option.to_list l.l_lower);
    sfs_create =
      (fun path -> wrap_file l path (Sp_core.Stackable.create (lower_of l) path));
    sfs_mkdir = (fun path -> Sp_core.Stackable.mkdir (lower_of l) path);
    sfs_remove =
      (fun path ->
        Hashtbl.remove l.l_wrapped
          (Printf.sprintf "attrfs:%s:%s" l.l_name (Sp_naming.Sname.to_string path));
        remove_shadow_if_any l path;
        Sp_core.Stackable.remove (lower_of l) path);
    sfs_sync = (fun () -> Sp_core.Stackable.sync (lower_of l));
    sfs_drop_caches = (fun () -> Sp_core.Stackable.drop_caches (lower_of l));
  }

let creator ?(node = "local") () =
  {
    Sp_core.Stackable.cr_type = "attrfs";
    cr_create = (fun ~name -> make ~node ~name ());
  }
