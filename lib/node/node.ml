type t = {
  n_name : string;
  n_vmm : Sp_vm.Vmm.t;
  n_root : Sp_naming.Context.t;
  n_creators : Sp_naming.Context.t;
  n_disks : (string, Sp_blockdev.Disk.t) Hashtbl.t;
  n_net : Sp_dfs.Net.t;
}

let name t = t.n_name
let vmm t = t.n_vmm
let root t = t.n_root
let creators t = t.n_creators

let add_disk t ~name ~blocks =
  let disk = Sp_blockdev.Disk.create ~label:(t.n_name ^ ":" ^ name) ~blocks () in
  Hashtbl.replace t.n_disks name disk;
  disk

let disk t name =
  match Hashtbl.find_opt t.n_disks name with
  | Some d -> d
  | None -> invalid_arg (t.n_name ^ ": no such disk " ^ name)

let namespace t ~domain = Sp_naming.Namespace.create ~shared:t.n_root ~domain

let mount_sfs t ~disk_name ~name =
  let sfs =
    Sp_coherency.Spring_sfs.make_split ~node:t.n_name ~vmm:t.n_vmm ~name
      ~same_domain:false (disk t disk_name)
  in
  let fs_dir =
    Sp_naming.Context.mkdir_path t.n_root (Sp_naming.Sname.of_string "fs")
      ~domain:(Sp_vm.Vmm.domain t.n_vmm)
  in
  Sp_naming.Context.bind fs_dir
    (Sp_naming.Sname.of_string name)
    (Sp_core.Stackable.Fs sfs);
  sfs

let build_stack t ~base layers =
  Sp_core.Stack_builder.stack ~creators:t.n_creators ~base layers

module World = struct
  type world = { w_net : Sp_dfs.Net.t; mutable w_nodes : t list }

  let create () = { w_net = Sp_dfs.Net.create (); w_nodes = [] }
  let net w = w.w_net

  let add_node w node_name =
    let vmm = Sp_vm.Vmm.create ~node:node_name node_name in
    let naming_domain = Sp_obj.Sdomain.create ~node:node_name "nameserver" in
    let root = Sp_naming.Context.make ~domain:naming_domain ~label:"/" () in
    let creators_ctx =
      Sp_naming.Context.make ~domain:naming_domain ~label:"fs_creators" ()
    in
    Sp_naming.Context.bind root
      (Sp_naming.Sname.of_string "fs_creators")
      (Sp_naming.Context.Context creators_ctx);
    let node =
      {
        n_name = node_name;
        n_vmm = vmm;
        n_root = root;
        n_creators = creators_ctx;
        n_disks = Hashtbl.create 4;
        n_net = w.w_net;
      }
    in
    (* Register every creator this repository provides, the way boot-time
       configuration registers them in /fs_creators (§4.4). *)
    let get_disk disk_name = disk node disk_name in
    Sp_core.Stackable.register_creator creators_ctx
      (Sp_sfs.Disk_layer.creator ~node:node_name ~get_disk ());
    Sp_core.Stackable.register_creator creators_ctx
      (Sp_coherency.Coherency_layer.creator ~node:node_name ~vmm ());
    Sp_core.Stackable.register_creator creators_ctx
      (Sp_compfs.Compfs.creator ~node:node_name ~vmm ());
    Sp_core.Stackable.register_creator creators_ctx
      (Sp_cryptfs.Cryptfs.creator ~node:node_name ~vmm ~key:"spring" ());
    Sp_core.Stackable.register_creator creators_ctx
      (Sp_mirrorfs.Mirrorfs.creator ~node:node_name ~vmm ());
    Sp_core.Stackable.register_creator creators_ctx
      (Sp_integrity.Integrityfs.creator ~node:node_name ~vmm ());
    Sp_core.Stackable.register_creator creators_ctx
      (Sp_attrfs.Attrfs.creator ~node:node_name ());
    Sp_core.Stackable.register_creator creators_ctx
      (Sp_unionfs.Unionfs.creator ~node:node_name ~vmm ());
    Sp_core.Stackable.register_creator creators_ctx
      (Sp_versionfs.Versionfs.creator ~node:node_name ());
    Sp_core.Stackable.register_creator creators_ctx
      (Sp_dfs.Dfs.creator ~node:node_name ~net:w.w_net ~vmm ());
    w.w_nodes <- node :: w.w_nodes;
    node
end
