module M = Sp_sim.Metrics

type span = {
  sp_id : int;
  sp_parent : int;
  sp_depth : int;
  sp_task : int;
  sp_op : string;
  sp_src : string;
  sp_dst : string;
  sp_node : string;
  sp_start : int;
  sp_stop : int;
  sp_self_ns : int;
  sp_queue_ns : int;
  sp_metrics : M.snapshot;
  sp_self_metrics : M.snapshot;
  sp_copy_bytes : int;
  sp_cpu_units : int;
}

type instant = {
  in_name : string;
  in_ts : int;
  in_args : (string * string) list;
}

type trace = {
  tr_spans : span list;
  tr_instants : instant list;
  tr_dropped : int;
  tr_total_ns : int;
  tr_busy_ns : int;
  tr_root : int;
}

(* An open span.  Child inclusive time and metrics accumulate into the
   parent as children close, so a completed span carries its self figures
   directly and aggregation never needs to rebuild the tree (which would
   break when the ring buffer drops spans).

   Self time is *busy* time (Sched_hook per-context clocks), not wall
   time: under the discrete-event scheduler a frame stays open across its
   task's suspensions, during which the wall clock moves for other tasks'
   work.  With no scheduler active busy and wall deltas coincide, so the
   classic partition invariant (self times sum to the root's elapsed
   time) is unchanged; under concurrency the invariant becomes "self
   times sum to total busy time" ([tr_busy_ns]), per task and overall. *)
type frame = {
  fr_id : int;
  fr_parent : int;
  fr_depth : int;
  fr_task : int;
  fr_op : string;
  fr_src : string;
  fr_dst : string;
  fr_node : string;
  fr_start : int;
  fr_busy0 : int;
  fr_metrics0 : M.snapshot;
  fr_stolen0 : M.snapshot;
  mutable fr_child_ns : int;
  mutable fr_child_metrics : M.snapshot;
  mutable fr_queue_ns : int;
  mutable fr_copy_bytes : int;
  mutable fr_cpu_units : int;
}

(* Per-execution-context (main, or one task) trace state.  [stolen]
   accumulates the global-metrics delta consumed by *other* contexts
   while this one was suspended, so a frame's inclusive metrics can be
   corrected to what its own context actually did. *)
type ctx = {
  mutable stack : frame list;
  mutable stolen : M.snapshot;
  mutable pause_at : M.snapshot option;
}

type state = {
  ring : span option array;
  capacity : int;
  mutable next_slot : int;
  mutable recorded : int;
  mutable next_id : int;
  mutable root_id : int;
  main : ctx;
  tasks : (int, ctx) Hashtbl.t;
  mutable instants : instant list;  (** newest first; sparse, unbounded *)
}

let state : state option ref = ref None
let enabled () = match !state with None -> false | Some _ -> true

let fresh_ctx () = { stack = []; stolen = M.zero; pause_at = None }

let ctx_of st id =
  if id < 0 then st.main
  else
    match Hashtbl.find_opt st.tasks id with
    | Some c -> c
    | None ->
        let c = fresh_ctx () in
        Hashtbl.replace st.tasks id c;
        c

let cur_ctx st = ctx_of st (Sp_sim.Sched_hook.current ())

let open_frame st ~op ~src ~dst ~node =
  let id = st.next_id in
  st.next_id <- id + 1;
  let task = Sp_sim.Sched_hook.current () in
  let c = ctx_of st task in
  let parent, depth =
    match c.stack with
    | f :: _ -> (f.fr_id, f.fr_depth + 1)
    | [] ->
        (* A task's outermost frame hangs off the synthetic root (which
           lives in the main context) for tree rendering; its time and
           metrics do NOT accumulate into the root — cross-context busy
           time is not the root's own. *)
        if task >= 0 && st.root_id > 0 then (st.root_id, 1) else (0, 0)
  in
  let fr =
    {
      fr_id = id;
      fr_parent = parent;
      fr_depth = depth;
      fr_task = task;
      fr_op = op;
      fr_src = src;
      fr_dst = dst;
      fr_node = node;
      fr_start = Sp_sim.Simclock.now ();
      fr_busy0 = Sp_sim.Sched_hook.busy_of task;
      fr_metrics0 = M.snapshot ();
      fr_stolen0 = c.stolen;
      fr_child_ns = 0;
      fr_child_metrics = M.zero;
      fr_queue_ns = 0;
      fr_copy_bytes = 0;
      fr_cpu_units = 0;
    }
  in
  c.stack <- fr :: c.stack;
  fr

let record st sp =
  st.ring.(st.next_slot) <- Some sp;
  st.next_slot <- (st.next_slot + 1) mod st.capacity;
  st.recorded <- st.recorded + 1

let close_frame st fr =
  let c = ctx_of st fr.fr_task in
  (match c.stack with
  | f :: rest when f == fr -> c.stack <- rest
  | _ ->
      (* Only reachable if a span body tampered with the stack; drop down
         to (and including) [fr] so accounting can continue. *)
      let rec pop = function
        | f :: rest when f == fr -> rest
        | _ :: rest -> pop rest
        | [] -> []
      in
      c.stack <- pop c.stack);
  let stop = Sp_sim.Simclock.now () in
  let incl_ns = Sp_sim.Sched_hook.busy_of fr.fr_task - fr.fr_busy0 in
  let incl_raw = M.diff ~before:fr.fr_metrics0 ~after:(M.snapshot ()) in
  (* Subtract what other contexts did while this one was suspended. *)
  let stolen_delta = M.diff ~before:fr.fr_stolen0 ~after:c.stolen in
  let incl_m = M.diff ~before:stolen_delta ~after:incl_raw in
  let sp =
    {
      sp_id = fr.fr_id;
      sp_parent = fr.fr_parent;
      sp_depth = fr.fr_depth;
      sp_task = fr.fr_task;
      sp_op = fr.fr_op;
      sp_src = fr.fr_src;
      sp_dst = fr.fr_dst;
      sp_node = fr.fr_node;
      sp_start = fr.fr_start;
      sp_stop = stop;
      sp_self_ns = incl_ns - fr.fr_child_ns;
      sp_queue_ns = fr.fr_queue_ns;
      sp_metrics = incl_m;
      sp_self_metrics = M.diff ~before:fr.fr_child_metrics ~after:incl_m;
      sp_copy_bytes = fr.fr_copy_bytes;
      sp_cpu_units = fr.fr_cpu_units;
    }
  in
  (match c.stack with
  | parent :: _ ->
      parent.fr_child_ns <- parent.fr_child_ns + incl_ns;
      parent.fr_child_metrics <- M.add parent.fr_child_metrics incl_m
  | [] -> ());
  record st sp

let span ?(op = "invoke") ?(src = "?") ?(dst = "?") ?(node = "local") f =
  match !state with
  | None -> f ()
  | Some st ->
      let fr = open_frame st ~op ~src ~dst ~node in
      Fun.protect ~finally:(fun () -> close_frame st fr) f

let instant ~name ?(args = []) () =
  match !state with
  | None -> ()
  | Some st ->
      st.instants <-
        { in_name = name; in_ts = Sp_sim.Simclock.now (); in_args = args }
        :: st.instants

let note_copy n =
  match !state with
  | Some st -> (
      match (cur_ctx st).stack with
      | fr :: _ -> fr.fr_copy_bytes <- fr.fr_copy_bytes + n
      | [] -> ())
  | None -> ()

let note_cpu n =
  match !state with
  | Some st -> (
      match (cur_ctx st).stack with
      | fr :: _ -> fr.fr_cpu_units <- fr.fr_cpu_units + n
      | [] -> ())
  | None -> ()

let note_queue n =
  match !state with
  | Some st -> (
      match (cur_ctx st).stack with
      | fr :: _ -> fr.fr_queue_ns <- fr.fr_queue_ns + n
      | [] -> ())
  | None -> ()

(* Scheduler hooks: bracket a task's suspension so the global-metrics
   delta other contexts produce meanwhile is charged to [stolen], not to
   the task's open frames. *)
let on_task_suspend () =
  match !state with
  | None -> ()
  | Some st -> (cur_ctx st).pause_at <- Some (M.snapshot ())

let on_task_resume () =
  match !state with
  | None -> ()
  | Some st -> (
      let c = cur_ctx st in
      match c.pause_at with
      | None -> ()
      | Some snap ->
          c.pause_at <- None;
          c.stolen <- M.add c.stolen (M.diff ~before:snap ~after:(M.snapshot ())))

let gather st ~root_id ~busy_ns =
  let n = min st.recorded st.capacity in
  let first =
    if st.recorded <= st.capacity then 0 else st.next_slot (* oldest survivor *)
  in
  let spans = ref [] in
  for i = n - 1 downto 0 do
    match st.ring.((first + i) mod st.capacity) with
    | Some sp -> spans := sp :: !spans
    | None -> ()
  done;
  let total_ns =
    match List.find_opt (fun sp -> sp.sp_id = root_id) !spans with
    | Some root -> root.sp_stop - root.sp_start
    | None -> 0
  in
  {
    tr_spans = !spans;
    tr_instants = List.rev st.instants;
    tr_dropped = max 0 (st.recorded - st.capacity);
    tr_total_ns = total_ns;
    tr_busy_ns = busy_ns;
    tr_root = root_id;
  }

let with_tracing ?(capacity = 65536) ?(root = "workload") f =
  if enabled () then invalid_arg "Sp_trace.with_tracing: tracing already active";
  if capacity < 2 then invalid_arg "Sp_trace.with_tracing: capacity < 2";
  let st =
    {
      ring = Array.make capacity None;
      capacity;
      next_slot = 0;
      recorded = 0;
      next_id = 1;
      root_id = 0;
      main = fresh_ctx ();
      tasks = Hashtbl.create 16;
      instants = [];
    }
  in
  state := Some st;
  let busy0 = Sp_sim.Sched_hook.total_busy () in
  let root_fr = open_frame st ~op:root ~src:"user" ~dst:"user" ~node:"local" in
  st.root_id <- root_fr.fr_id;
  match f () with
  | result ->
      (* Spans close themselves via [Fun.protect]; anything still open here
         besides the root means a caller leaked a frame — close those too so
         the root's accounting stays consistent. *)
      Hashtbl.iter
        (fun _ c ->
          List.iter (fun fr -> close_frame st fr) c.stack;
          c.stack <- [])
        st.tasks;
      while
        match st.main.stack with
        | fr :: _ when fr != root_fr ->
            close_frame st fr;
            true
        | _ -> false
      do
        ()
      done;
      close_frame st root_fr;
      state := None;
      ( result,
        gather st ~root_id:root_fr.fr_id
          ~busy_ns:(Sp_sim.Sched_hook.total_busy () - busy0) )
  | exception e ->
      state := None;
      raise e

(* ------------------------------------------------------------------ *)
(* Aggregation                                                         *)
(* ------------------------------------------------------------------ *)

type layer_stats = {
  agg_layer : string;
  agg_node : string;
  agg_count : int;
  agg_total_ns : int;
  agg_self_ns : int;
  agg_queue_ns : int;
  agg_crossings : int;
  agg_local_calls : int;
  agg_disk_reads : int;
  agg_disk_writes : int;
  agg_copy_bytes : int;
  agg_cpu_units : int;
}

let aggregate trace =
  let tbl : (string, layer_stats) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun sp ->
      let key = sp.sp_dst in
      let prev =
        match Hashtbl.find_opt tbl key with
        | Some s -> s
        | None ->
            {
              agg_layer = sp.sp_dst;
              agg_node = sp.sp_node;
              agg_count = 0;
              agg_total_ns = 0;
              agg_self_ns = 0;
              agg_queue_ns = 0;
              agg_crossings = 0;
              agg_local_calls = 0;
              agg_disk_reads = 0;
              agg_disk_writes = 0;
              agg_copy_bytes = 0;
              agg_cpu_units = 0;
            }
      in
      Hashtbl.replace tbl key
        {
          prev with
          agg_count = prev.agg_count + 1;
          agg_total_ns = prev.agg_total_ns + (sp.sp_stop - sp.sp_start);
          agg_self_ns = prev.agg_self_ns + sp.sp_self_ns;
          agg_queue_ns = prev.agg_queue_ns + sp.sp_queue_ns;
          agg_crossings =
            prev.agg_crossings + sp.sp_self_metrics.M.cross_domain_calls;
          agg_local_calls = prev.agg_local_calls + sp.sp_self_metrics.M.local_calls;
          agg_disk_reads = prev.agg_disk_reads + sp.sp_self_metrics.M.disk_reads;
          agg_disk_writes = prev.agg_disk_writes + sp.sp_self_metrics.M.disk_writes;
          agg_copy_bytes = prev.agg_copy_bytes + sp.sp_copy_bytes;
          agg_cpu_units = prev.agg_cpu_units + sp.sp_cpu_units;
        })
    trace.tr_spans;
  Hashtbl.fold (fun _ s acc -> s :: acc) tbl []
  |> List.sort (fun a b -> compare (b.agg_self_ns, a.agg_layer) (a.agg_self_ns, b.agg_layer))

let duration ns = Format.asprintf "%a" Sp_sim.Simclock.pp_duration ns

let pp_profile ppf trace =
  let stats = aggregate trace in
  let busy =
    if trace.tr_busy_ns > 0 then trace.tr_busy_ns else trace.tr_total_ns
  in
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "%-26s %7s %10s %10s %6s %9s %6s %6s %9s %10s %8s@,"
    "layer instance" "calls" "total" "self" "self%" "queued" "xdom" "local"
    "disk r/w" "copy" "cpu";
  Format.fprintf ppf "%s@," (String.make 120 '-');
  let pct self =
    if busy = 0 then 0.0 else 100.0 *. float_of_int self /. float_of_int busy
  in
  List.iter
    (fun s ->
      Format.fprintf ppf
        "%-26s %7d %10s %10s %5.1f%% %9s %6d %6d %4d/%-4d %10d %8d@,"
        (if s.agg_node = "local" then s.agg_layer
         else s.agg_layer ^ "@" ^ s.agg_node)
        s.agg_count (duration s.agg_total_ns) (duration s.agg_self_ns)
        (pct s.agg_self_ns) (duration s.agg_queue_ns) s.agg_crossings
        s.agg_local_calls s.agg_disk_reads s.agg_disk_writes s.agg_copy_bytes
        s.agg_cpu_units)
    stats;
  Format.fprintf ppf "%s@," (String.make 120 '-');
  let self_sum = List.fold_left (fun acc s -> acc + s.agg_self_ns) 0 stats in
  let queue_sum = List.fold_left (fun acc s -> acc + s.agg_queue_ns) 0 stats in
  Format.fprintf ppf "%-26s %7d %10s %10s %5.1f%% %9s@," "total"
    (List.length trace.tr_spans)
    (duration busy) (duration self_sum) (pct self_sum) (duration queue_sum);
  if trace.tr_busy_ns > trace.tr_total_ns then
    Format.fprintf ppf
      "(%s of wall time; busy exceeds wall when concurrent tasks overlap)@,"
      (duration trace.tr_total_ns);
  (match trace.tr_instants with
  | [] -> ()
  | instants ->
      Format.fprintf ppf "%d instant event(s) (faults/retries/failovers)@,"
        (List.length instants));
  if trace.tr_dropped > 0 then
    Format.fprintf ppf
      "warning: ring buffer overflowed, %d oldest spans dropped (self-times \
       no longer partition the total; raise the capacity)@,"
      trace.tr_dropped;
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export                                           *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Each task renders as its own Chrome thread; the main context is tid 1. *)
let tid_of sp = if sp.sp_task < 0 then 1 else sp.sp_task + 2

let chrome_json trace =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  Buffer.add_string buf
    "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"process_name\",\"args\":{\"name\":\"springfs \
     (simulated)\"}}";
  (* Chrome infers nesting of complete events on one thread from the
     timestamps; emit parents before their children at equal start times. *)
  let ordered =
    List.sort
      (fun a b ->
        if a.sp_start <> b.sp_start then compare a.sp_start b.sp_start
        else compare a.sp_depth b.sp_depth)
      trace.tr_spans
  in
  List.iter
    (fun sp ->
      Buffer.add_string buf ",";
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"door\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d,\"args\":{\"src\":\"%s\",\"dst\":\"%s\",\"node\":\"%s\",\"task\":%d,\"span_id\":%d,\"parent\":%d,\"depth\":%d,\"self_ns\":%d,\"queue_ns\":%d,\"cross_domain_calls\":%d,\"local_calls\":%d,\"kernel_calls\":%d,\"page_faults\":%d,\"disk_reads\":%d,\"disk_writes\":%d,\"net_messages\":%d,\"copy_bytes\":%d,\"cpu_units\":%d}}"
           (json_escape (sp.sp_op ^ " \xc2\xbb " ^ sp.sp_dst))
           (float_of_int sp.sp_start /. 1000.0)
           (float_of_int (sp.sp_stop - sp.sp_start) /. 1000.0)
           (tid_of sp)
           (json_escape sp.sp_src) (json_escape sp.sp_dst)
           (json_escape sp.sp_node) sp.sp_task sp.sp_id sp.sp_parent sp.sp_depth
           sp.sp_self_ns sp.sp_queue_ns sp.sp_metrics.M.cross_domain_calls
           sp.sp_metrics.M.local_calls sp.sp_metrics.M.kernel_calls
           sp.sp_metrics.M.page_faults sp.sp_metrics.M.disk_reads
           sp.sp_metrics.M.disk_writes sp.sp_metrics.M.net_messages
           sp.sp_copy_bytes sp.sp_cpu_units))
    ordered;
  List.iter
    (fun inst ->
      Buffer.add_string buf ",";
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"fault\",\"ph\":\"i\",\"ts\":%.3f,\"pid\":1,\"tid\":1,\"s\":\"t\",\"args\":{"
           (json_escape inst.in_name)
           (float_of_int inst.in_ts /. 1000.0));
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",";
          Buffer.add_string buf
            (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
        inst.in_args;
      Buffer.add_string buf "}}")
    trace.tr_instants;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let write_chrome_json file trace =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (chrome_json trace))
