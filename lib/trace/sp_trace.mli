(** Structured span tracing and per-layer profiling.

    Every door invocation in the simulation (see {!Sp_obj.Door} and the call
    helpers in [Vm_types] / [File] / [Stackable]) opens a {e span}: a record
    of one operation served by one layer instance, carrying the operation
    name, source and target domains, simulated start/end times from
    {!Sp_sim.Simclock}, and the {!Sp_sim.Metrics} delta accrued inside it.
    Spans nest — a [read] on a four-layer stack yields a tree attributing
    exact simulated-nanosecond self-time to each layer.

    Tracing is {e off by default} and scoped: it only records inside
    {!with_tracing}.  The disabled path is a single reference read with no
    allocation, so the [fast] cost model, [dune runtest], and the benchmark
    tables are unaffected.  Completed spans land in a fixed-capacity ring
    buffer; when a workload overflows it, the oldest spans are dropped and
    the drop count is reported in the resulting {!trace}.

    {2 Concurrency}

    Under an active [Sp_sched] run each task keeps its own span stack, so
    interleaved tasks don't corrupt each other's nesting.  Self-time is
    measured on the per-context {e busy} clocks ([Sp_sim.Sched_hook]), not
    on the wall clock: a frame that stays open across its task's
    suspension is not charged for the time other tasks spent running.
    With no scheduler active, busy and wall deltas coincide and the
    original invariant (self-times sum to [tr_total_ns]) holds; under
    concurrency they sum to [tr_busy_ns] instead.  Metrics deltas are
    corrected the same way (counters other contexts bumped while a task
    was suspended are subtracted from its open spans). *)

(** A completed span.  Metric deltas come in two flavours: [sp_metrics] is
    inclusive (everything this context did while the span was open) and
    [sp_self_metrics] excludes child spans, so self columns sum to global
    totals across a trace. *)
type span = {
  sp_id : int;  (** unique within a trace, 1-based, allocation order *)
  sp_parent : int;  (** parent span id; 0 for the root *)
  sp_depth : int;  (** root span = 0, first door crossing = 1, ... *)
  sp_task : int;  (** scheduler task id, or [-1] for the main context *)
  sp_op : string;  (** operation name, e.g. ["file.read"] *)
  sp_src : string;  (** calling domain name *)
  sp_dst : string;  (** serving domain (layer instance) name *)
  sp_node : string;  (** node hosting the serving domain *)
  sp_start : int;  (** simulated ns at entry *)
  sp_stop : int;  (** simulated ns at exit *)
  sp_self_ns : int;  (** own busy time minus time inside child spans *)
  sp_queue_ns : int;
      (** of [sp_self_ns], time spent waiting in a resource queue *)
  sp_metrics : Sp_sim.Metrics.snapshot;  (** inclusive metrics delta *)
  sp_self_metrics : Sp_sim.Metrics.snapshot;  (** delta minus children *)
  sp_copy_bytes : int;  (** marshalling bytes charged inside (self) *)
  sp_cpu_units : int;  (** CPU work units charged inside (self) *)
}

(** A point event: something that happened at one simulated instant with
    no duration — a fault injection, an RPC retry, a mirror failover.
    Exported as Chrome trace ["i"] (instant) events. *)
type instant = {
  in_name : string;  (** e.g. ["fault:io_error"], ["net.retry"] *)
  in_ts : int;  (** simulated ns *)
  in_args : (string * string) list;
}

(** The result of a traced run. *)
type trace = {
  tr_spans : span list;  (** completion order (children before parents) *)
  tr_instants : instant list;  (** chronological *)
  tr_dropped : int;  (** spans lost to ring-buffer overflow *)
  tr_total_ns : int;  (** simulated time covered by the root span *)
  tr_busy_ns : int;
      (** busy time across all contexts; equals [tr_total_ns] when no
          scheduler ran, exceeds it when concurrent tasks overlapped *)
  tr_root : int;  (** id of the synthetic root span *)
}

(** Whether a {!with_tracing} region is active.  Instrumentation guards on
    this before building span arguments so the disabled path allocates
    nothing. *)
val enabled : unit -> bool

(** [span ~op ~src ~dst ~node f] runs [f ()] inside a fresh span nested
    under the innermost open span of the calling context.  When tracing is
    disabled this is exactly [f ()].  The span is closed (and recorded)
    even if [f] raises. *)
val span :
  ?op:string -> ?src:string -> ?dst:string -> ?node:string -> (unit -> 'a) -> 'a

(** Record a point event at the current simulated time (no-op when
    disabled).  Instants are kept outside the span ring buffer — they are
    sparse (faults, retries) and must survive span overflow. *)
val instant : name:string -> ?args:(string * string) list -> unit -> unit

(** Attribute [n] bytes of marshalling copy to the innermost open span
    (no-op when disabled). *)
val note_copy : int -> unit

(** Attribute [n] CPU work units to the innermost open span (no-op when
    disabled). *)
val note_cpu : int -> unit

(** Attribute [n] ns of queue wait to the innermost open span of the
    calling context (no-op when disabled).  [Sp_sched.note_queue] calls
    this alongside bumping [Metrics.queue_ns]. *)
val note_queue : int -> unit

(** {1 Scheduler hooks}

    Called by [Sp_sched] around task suspension.  They bracket the
    global-metrics delta produced by {e other} contexts while this one
    slept, so it can be subtracted from the task's open spans.  No-ops
    when tracing is disabled. *)

val on_task_suspend : unit -> unit
val on_task_resume : unit -> unit

(** [with_tracing f] records spans during [f ()], wrapped in a synthetic
    root span so that the self-times of all recorded spans sum exactly to
    the total busy time of the run.  Returns [f]'s result and the
    trace.  Raises [Invalid_argument] if tracing is already active; if [f]
    raises, tracing is torn down and the exception propagates. *)
val with_tracing :
  ?capacity:int -> ?root:string -> (unit -> 'a) -> 'a * trace

(** {1 Aggregation} *)

(** Per-layer-instance totals over a trace.  [agg_total_ns] is inclusive
    (time with the layer anywhere on the stack below the caller), so nested
    same-layer calls count more than once; the [self] columns partition the
    trace exactly. *)
type layer_stats = {
  agg_layer : string;  (** serving domain (layer instance) name *)
  agg_node : string;
  agg_count : int;  (** spans served by this instance *)
  agg_total_ns : int;
  agg_self_ns : int;
  agg_queue_ns : int;  (** queue waits recorded in this instance's spans *)
  agg_crossings : int;  (** cross-domain calls, self *)
  agg_local_calls : int;  (** local (same-domain) calls, self *)
  agg_disk_reads : int;  (** disk block reads, self *)
  agg_disk_writes : int;  (** disk block writes, self *)
  agg_copy_bytes : int;
  agg_cpu_units : int;
}

(** Group a trace's spans by serving layer instance, sorted by descending
    self-time. *)
val aggregate : trace -> layer_stats list

(** Render the per-layer profile table, a totals row, and (when non-zero)
    a dropped-span warning. *)
val pp_profile : Format.formatter -> trace -> unit

(** {1 Chrome trace-event export} *)

(** Serialise the trace in Chrome trace-event JSON (one complete ["X"]
    event per span, timestamps in microseconds of simulated time; each
    scheduler task renders as its own thread); the result opens in
    [chrome://tracing] or Perfetto. *)
val chrome_json : trace -> string

(** Write {!chrome_json} to a file. *)
val write_chrome_json : string -> trace -> unit
