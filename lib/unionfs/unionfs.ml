module V = Sp_vm.Vm_types

let ps = V.page_size
let whiteout_prefix = ".wh."

type layer = {
  l_name : string;
  l_domain : Sp_obj.Sdomain.t;
  l_vmm : Sp_vm.Vmm.t;
  mutable l_top : Sp_core.Stackable.t option;  (* writable branch *)
  mutable l_lowers : Sp_core.Stackable.t list;  (* read-only branches *)
  l_channels : Sp_vm.Pager_lib.t;
  l_wrapped : (string, Sp_core.File.t) Hashtbl.t;  (* by full path *)
}

let instances : (string, layer) Hashtbl.t = Hashtbl.create 4

let layer_of (sfs : Sp_core.Stackable.t) =
  match Hashtbl.find_opt instances sfs.Sp_core.Stackable.sfs_name with
  | Some l -> l
  | None -> invalid_arg (sfs.Sp_core.Stackable.sfs_name ^ ": not a unionfs layer")

let top_of l =
  match l.l_top with
  | Some fs -> fs
  | None -> raise (Sp_core.Stackable.Stack_error (l.l_name ^ ": not stacked yet"))

let is_whiteout name =
  String.length name >= String.length whiteout_prefix
  && String.sub name 0 (String.length whiteout_prefix) = whiteout_prefix

let whiteout_path path =
  match List.rev (Sp_naming.Sname.components path) with
  | [] -> invalid_arg "Unionfs: empty path"
  | last :: rev_dirs ->
      Sp_naming.Sname.of_components (List.rev ((whiteout_prefix ^ last) :: rev_dirs))

let exists fs path =
  match Sp_naming.Context.resolve fs.Sp_core.Stackable.sfs_ctx path with
  | _ -> true
  | exception Sp_naming.Context.Unbound _ -> false
  | exception Sp_core.Fserr.No_such_file _ -> false

let resolve_opt fs path =
  match Sp_naming.Context.resolve fs.Sp_core.Stackable.sfs_ctx path with
  | o -> Some o
  | exception Sp_naming.Context.Unbound _ -> None
  | exception Sp_core.Fserr.No_such_file _ -> None

let whited_out l path = exists (top_of l) (whiteout_path path)

(* First branch (top first, then lowers in stacking order) binding [path]. *)
let find_backing l path =
  let branches = top_of l :: l.l_lowers in
  let rec go idx = function
    | [] -> None
    | fs :: rest -> (
        match resolve_opt fs path with
        | Some obj -> Some (idx, fs, obj)
        | None -> go (idx + 1) rest)
  in
  if whited_out l path then None else go 0 branches

(* Create the directory chain of [path]'s parent in the top branch. *)
let mkdir_p_top l path =
  let top = top_of l in
  let rec go prefix = function
    | [] | [ _ ] -> ()
    | d :: rest ->
        let here = Sp_naming.Sname.append prefix d in
        (match Sp_core.Stackable.mkdir top here with
        | () -> ()
        | exception Sp_core.Fserr.Already_exists _ -> ());
        go here rest
  in
  go (Sp_naming.Sname.of_components []) (Sp_naming.Sname.components path)

(* ------------------------------------------------------------------ *)
(* Union files with copy-up                                            *)
(* ------------------------------------------------------------------ *)

type ufile = {
  u_key : string;
  u_path : Sp_naming.Sname.t;
  mutable u_backing : Sp_core.File.t;
  mutable u_in_top : bool;
  u_state : Sp_coherency.Mrsw.t;
}

let copy_up l u =
  if not u.u_in_top then begin
    let top = top_of l in
    mkdir_p_top l u.u_path;
    let data = Sp_core.File.read_all u.u_backing in
    let fresh = Sp_core.Stackable.create top u.u_path in
    if Bytes.length data > 0 then ignore (Sp_core.File.write fresh ~pos:0 data);
    u.u_backing <- fresh;
    u.u_in_top <- true
  end

let backing_len u = (Sp_core.File.stat u.u_backing).Sp_vm.Attr.len

let upper_pager l u ~id =
  let raw_push ~offset data =
    copy_up l u;
    let len = backing_len u in
    let keep = min (Bytes.length data) (max 0 (len - offset)) in
    if keep > 0 then
      ignore (Sp_core.File.write u.u_backing ~pos:offset (Bytes.sub data 0 keep))
  in
  let write_down x = raw_push ~offset:x.V.ext_offset x.V.ext_data in
  let page_in ~offset ~size ~access =
    Sp_coherency.Mrsw.granting u.u_state ~access @@ fun () ->
    Sp_coherency.Mrsw.before_grant u.u_state ~channels:l.l_channels ~key:u.u_key
      ~me:id ~access ~offset ~size ~write_down;
    let data = Sp_core.File.read u.u_backing ~pos:offset ~len:size in
    let data =
      if Bytes.length data = size then data
      else begin
        let padded = Bytes.make size '\000' in
        Bytes.blit data 0 padded 0 (Bytes.length data);
        padded
      end
    in
    Sp_coherency.Mrsw.after_grant u.u_state ~me:id ~access ~offset ~size;
    data
  in
  let push retain ~offset data =
    Sp_coherency.Mrsw.granting u.u_state ~access:V.Read_write @@ fun () ->
    raw_push ~offset data;
    Sp_coherency.Mrsw.on_push u.u_state ~me:id ~retain ~offset
      ~size:(Bytes.length data)
  in
  {
    V.p_domain = l.l_domain;
    p_label = u.u_key;
    p_page_in = page_in;
    p_page_out = push `Drop;
    p_write_out = push `Read_only;
    p_sync = push `Same;
    p_sync_v = V.sync_each (push `Same);
    p_done_with =
      (fun () ->
        Sp_coherency.Mrsw.remove_channel u.u_state ~ch:id;
        Sp_vm.Pager_lib.remove l.l_channels id);
    p_exten =
      [
        V.Fs_pager
          {
            V.fp_get_attr = (fun () -> Sp_core.File.stat u.u_backing);
            fp_set_attr =
              (fun a ->
                copy_up l u;
                Sp_core.File.set_attr u.u_backing a);
            fp_attr_sync =
              (fun a ->
                copy_up l u;
                V.set_length u.u_backing.Sp_core.File.f_mem a.Sp_vm.Attr.len;
                Sp_core.File.set_attr u.u_backing a);
          };
      ];
  }

let truncate_ufile l u len =
  copy_up l u;
  let old = backing_len u in
  if len < old then begin
    let channels = Sp_vm.Pager_lib.live_channels_for_key l.l_channels ~key:u.u_key in
    let cut = (len + ps - 1) / ps * ps in
    List.iter
      (fun ch ->
        let extents = V.write_back ch.Sp_vm.Pager_lib.ch_cache ~offset:0 ~size:cut in
        List.iter
          (fun x ->
            ignore (Sp_core.File.write u.u_backing ~pos:x.V.ext_offset x.V.ext_data))
          extents;
        if len mod ps <> 0 then
          V.zero_fill ch.Sp_vm.Pager_lib.ch_cache ~offset:len ~size:(cut - len);
        V.delete_range ch.Sp_vm.Pager_lib.ch_cache ~offset:cut ~size:(max ps (old - cut)))
      channels;
    Sp_coherency.Mrsw.drop_blocks_from u.u_state ~block:(cut / ps)
  end;
  Sp_core.File.truncate u.u_backing len

let wrap_file l path ~in_top (backing : Sp_core.File.t) =
  let key = Printf.sprintf "unionfs:%s:%s" l.l_name (Sp_naming.Sname.to_string path) in
  match Hashtbl.find_opt l.l_wrapped key with
  | Some f -> f
  | None ->
      let u =
        {
          u_key = key;
          u_path = path;
          u_backing = backing;
          u_in_top = in_top;
          u_state = Sp_coherency.Mrsw.create ();
        }
      in
      let mem =
        {
          V.m_domain = l.l_domain;
          m_label = key;
          m_bind =
            (fun mgr _access ->
              Sp_vm.Pager_lib.bind l.l_channels ~key
                ~make_pager:(fun ~id -> upper_pager l u ~id)
                mgr);
          m_get_length = (fun () -> backing_len u);
          m_set_length = (fun len -> truncate_ufile l u len);
        }
      in
      let mapped =
        Sp_core.File.mapped_ops ~vmm:l.l_vmm ~mem
          ~get_attr:(fun () -> Sp_core.File.stat u.u_backing)
          ~set_attr_len:(fun len ->
            copy_up l u;
            if len > backing_len u then
              V.set_length u.u_backing.Sp_core.File.f_mem len)
      in
      let f =
        {
          Sp_core.File.f_id = key;
          f_domain = l.l_domain;
          f_mem = mem;
          f_read = mapped.Sp_core.File.mo_read;
          f_write =
            (fun ~pos data ->
              copy_up l u;
              mapped.Sp_core.File.mo_write ~pos data);
          f_stat = (fun () -> Sp_core.File.stat u.u_backing);
          f_set_attr =
            (fun a ->
              copy_up l u;
              Sp_core.File.set_attr u.u_backing a);
          f_truncate = (fun len -> truncate_ufile l u len);
          f_sync =
            (fun () ->
              mapped.Sp_core.File.mo_sync ();
              Sp_core.File.sync u.u_backing);
          f_exten = [];
        }
      in
      Hashtbl.replace l.l_wrapped key f;
      f

(* ------------------------------------------------------------------ *)
(* The union naming context                                            *)
(* ------------------------------------------------------------------ *)

let rec make_ctx l ~path =
  let label =
    if Sp_naming.Sname.is_empty path then l.l_name
    else l.l_name ^ "/" ^ Sp_naming.Sname.to_string path
  in
  let resolve1 component =
    if is_whiteout component then
      raise (Sp_naming.Context.Unbound (label ^ "/" ^ component));
    let sub = Sp_naming.Sname.append path component in
    match find_backing l sub with
    | None -> raise (Sp_naming.Context.Unbound (label ^ "/" ^ component))
    | Some (_, _, Sp_naming.Context.Context _) ->
        Sp_naming.Context.Context (make_ctx l ~path:sub)
    | Some (idx, _, Sp_core.File.File f) ->
        Sp_sim.Simclock.advance (Sp_sim.Cost_model.current ()).open_state_ns;
        Sp_core.File.File (wrap_file l sub ~in_top:(idx = 0) f)
    | Some (_, _, other) -> other
  in
  (* Streaming union merge.  The cookie encodes (branch, sub-cookie):
     branch index in the high bits, the branch's own readdir cookie in
     the low 36.  A name from branch [idx] is visible unless it is a
     whiteout, whited out from the top, or shadowed by (present in) an
     earlier branch — the earlier branch's scan already emitted it, so
     probing gives exact-once without cross-batch state. *)
  let branch_stride = 0x10_0000_0000 in
  let readdir1 ~cookie ~limit =
    let branches = Array.of_list (top_of l :: l.l_lowers) in
    let nbranches = Array.length branches in
    let visible idx name =
      (not (is_whiteout name))
      && (not (whited_out l (Sp_naming.Sname.append path name)))
      &&
      let rec shadowed i =
        i < idx
        && (resolve_opt branches.(i) (Sp_naming.Sname.append path name) <> None
           || shadowed (i + 1))
      in
      not (shadowed 0)
    in
    let rec scan idx sub =
      let names, next_sub =
        Sp_core.Stackable.readdir branches.(idx) path ~cookie:sub ~limit
      in
      let names = List.filter (visible idx) names in
      match next_sub with
      | Some s -> (names, Some ((idx * branch_stride) + s))
      | None ->
          (* Branch exhausted: hand the cursor to the next branch.  The
             batch may be short or empty — consumers key on the cookie. *)
          if idx + 1 >= nbranches then (names, None)
          else (names, Some ((idx + 1) * branch_stride))
    and start_at idx =
      if idx >= nbranches then ([], None)
      else
        match resolve_opt branches.(idx) path with
        | Some (Sp_naming.Context.Context _) -> scan idx 0
        | _ -> start_at (idx + 1)
    in
    let idx = cookie / branch_stride and sub = cookie mod branch_stride in
    if idx >= nbranches then ([], None)
    else if sub = 0 then start_at idx
    else scan idx sub
  in
  let list () =
    List.sort_uniq String.compare
      (Sp_dir.Cursor.drain (fun ~cookie ~limit -> readdir1 ~cookie ~limit))
  in
  {
    Sp_naming.Context.ctx_domain = l.l_domain;
    ctx_label = label;
    ctx_acl = (fun () -> Sp_naming.Acl.open_acl);
    ctx_set_acl = (fun _ -> ());
    ctx_resolve1 = resolve1;
    ctx_bind1 = (fun _ _ -> invalid_arg (label ^ ": bind files via create"));
    ctx_rebind1 = (fun _ _ -> invalid_arg (label ^ ": rebind unsupported"));
    ctx_unbind1 = (fun _ -> invalid_arg (label ^ ": unbind via remove"));
    ctx_list = list;
    ctx_readdir1 = readdir1;
  }

(* ------------------------------------------------------------------ *)
(* The stackable layer                                                 *)
(* ------------------------------------------------------------------ *)

let make ?(node = "local") ?domain ~vmm ~name () =
  let domain =
    match domain with Some d -> d | None -> Sp_obj.Sdomain.create ~node name
  in
  let l =
    {
      l_name = name;
      l_domain = domain;
      l_vmm = vmm;
      l_top = None;
      l_lowers = [];
      l_channels = Sp_vm.Pager_lib.create ();
      l_wrapped = Hashtbl.create 16;
    }
  in
  Hashtbl.replace instances name l;
  {
    Sp_core.Stackable.sfs_name = name;
    sfs_type = "unionfs";
    sfs_domain = domain;
    sfs_ctx = make_ctx l ~path:(Sp_naming.Sname.of_components []);
    sfs_stack_on =
      (fun under ->
        match l.l_top with
        | None -> l.l_top <- Some under
        | Some _ -> l.l_lowers <- l.l_lowers @ [ under ]);
    sfs_unders = (fun () -> top_of l :: l.l_lowers);
    sfs_create =
      (fun path ->
        if find_backing l path <> None then
          raise (Sp_core.Fserr.Already_exists (Sp_naming.Sname.to_string path));
        let top = top_of l in
        mkdir_p_top l path;
        (* Creating a name drops any whiteout hiding it. *)
        (match Sp_core.Stackable.remove top (whiteout_path path) with
        | () -> ()
        | exception Sp_core.Fserr.No_such_file _ -> ()
        | exception Sp_naming.Context.Unbound _ -> ());
        let f = Sp_core.Stackable.create top path in
        wrap_file l path ~in_top:true f);
    sfs_mkdir =
      (fun path ->
        mkdir_p_top l path;
        match Sp_core.Stackable.mkdir (top_of l) path with
        | () -> ()
        | exception Sp_core.Fserr.Already_exists _ -> ());
    sfs_remove =
      (fun path ->
        let top = top_of l in
        let in_lower =
          List.exists (fun fs -> exists fs path) l.l_lowers
        in
        if (not in_lower) && not (exists top path) then
          raise (Sp_core.Fserr.No_such_file (Sp_naming.Sname.to_string path));
        (match Sp_core.Stackable.remove top path with
        | () -> ()
        | exception Sp_core.Fserr.No_such_file _ -> ()
        | exception Sp_naming.Context.Unbound _ -> ());
        if in_lower then begin
          mkdir_p_top l path;
          ignore (Sp_core.Stackable.create top (whiteout_path path))
        end;
        Sp_vm.Pager_lib.destroy_key l.l_channels
          ~key:(Printf.sprintf "unionfs:%s:%s" l.l_name (Sp_naming.Sname.to_string path));
        Hashtbl.remove l.l_wrapped
          (Printf.sprintf "unionfs:%s:%s" l.l_name (Sp_naming.Sname.to_string path)));
    sfs_sync = (fun () -> Sp_core.Stackable.sync (top_of l));
    sfs_drop_caches =
      (fun () ->
        Sp_core.Stackable.drop_caches (top_of l);
        List.iter Sp_core.Stackable.drop_caches l.l_lowers);
  }

let creator ?(node = "local") ~vmm () =
  {
    Sp_core.Stackable.cr_type = "unionfs";
    cr_create = (fun ~name -> make ~node ~vmm ~name ());
  }

let branch_of sfs path =
  let l = layer_of sfs in
  (* A copied-up file is in the top branch even if the wrapper was first
     created from a lower branch. *)
  if exists (top_of l) path then `Top
  else
    let rec go i = function
      | [] -> raise (Sp_core.Fserr.No_such_file (Sp_naming.Sname.to_string path))
      | fs :: rest -> if exists fs path then `Lower i else go (i + 1) rest
    in
    go 0 l.l_lowers
