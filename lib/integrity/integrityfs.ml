module V = Sp_vm.Vm_types
module Csum = Sp_sfs.Csum

let ps = V.page_size

type centry = {
  e_key : string;
  e_lower : Sp_core.File.t;
  e_state : Sp_coherency.Mrsw.t;
  e_sums : (int, int) Hashtbl.t;  (* page index -> FNV-1a of the padded page *)
}

type layer = {
  l_name : string;
  l_domain : Sp_obj.Sdomain.t;
  l_vmm : Sp_vm.Vmm.t;
  mutable l_lower : Sp_core.Stackable.t option;
  mutable l_verified : int;
  mutable l_failures : int;
  l_channels : Sp_vm.Pager_lib.t;
  l_wrapped : (string, Sp_core.File.t * Sp_core.File.t) Hashtbl.t;
      (* lower file id -> (lower file, wrapper) *)
}

let instances : (string, layer) Hashtbl.t = Hashtbl.create 4

let layer_of (sfs : Sp_core.Stackable.t) =
  match Hashtbl.find_opt instances sfs.Sp_core.Stackable.sfs_name with
  | Some l -> l
  | None -> invalid_arg (sfs.Sp_core.Stackable.sfs_name ^ ": not an integrityfs layer")

let lower_of l =
  match l.l_lower with
  | Some fs -> fs
  | None -> raise (Sp_core.Stackable.Stack_error (l.l_name ^ ": not stacked yet"))

let lower_len e = (Sp_core.File.stat e.e_lower).Sp_vm.Attr.len

(* Read one lower page, zero-padded to a full page. *)
let read_lower_page e page =
  let data = Sp_core.File.read e.e_lower ~pos:(page * ps) ~len:ps in
  if Bytes.length data = ps then data
  else begin
    let padded = Bytes.make ps '\000' in
    Bytes.blit data 0 padded 0 (Bytes.length data);
    padded
  end

(* Verify a padded page against the recorded checksum.  Pages never seen
   before are trusted on first read (the layer has no store of its own to
   persist sums in); once recorded, any later divergence of the lower
   layer's bytes is a hard [Checksum_error], not wrong data. *)
let verify_page l e page data =
  Sp_obj.Door.charge_cpu (Csum.work_units ps);
  let sum = Csum.cksum data in
  match Hashtbl.find_opt e.e_sums page with
  | None -> Hashtbl.replace e.e_sums page sum
  | Some want when want = sum -> l.l_verified <- l.l_verified + 1
  | Some _ ->
      l.l_failures <- l.l_failures + 1;
      Sp_sim.Metrics.incr_checksum_failures ();
      if Sp_trace.enabled () then
        Sp_trace.instant ~name:"checksum:mismatch"
          ~args:
            [
              ("layer", l.l_name); ("file", e.e_key); ("page", string_of_int page);
            ]
          ();
      raise
        (Sp_core.Fserr.Checksum_error
           (Printf.sprintf "%s: page %d from below does not match its recorded checksum"
              e.e_key page))

let record_page l e page data =
  ignore l;
  Sp_obj.Door.charge_cpu (Csum.work_units ps);
  Hashtbl.replace e.e_sums page (Csum.cksum data)

(* Forget sums from the page containing [len] upward (their lower bytes
   are about to change shape under a shrink). *)
let invalidate_from e len =
  let first = len / ps in
  let victims =
    Hashtbl.fold (fun p _ acc -> if p >= first then p :: acc else acc) e.e_sums []
  in
  List.iter (Hashtbl.remove e.e_sums) victims

let set_len e new_len =
  let old_len = lower_len e in
  if new_len < old_len then invalidate_from e new_len;
  V.set_length e.e_lower.Sp_core.File.f_mem new_len

let rec upper_pager l e ~id =
  let write_down x =
    let p = upper_pager l e ~id in
    p.V.p_sync ~offset:x.V.ext_offset x.V.ext_data
  in
  let page_in ~offset ~size ~access =
    Sp_coherency.Mrsw.granting e.e_state ~access @@ fun () ->
    Sp_coherency.Mrsw.before_grant e.e_state ~channels:l.l_channels ~key:e.e_key
      ~me:id ~access ~offset ~size ~write_down;
    let out = Bytes.create size in
    let rec go cursor =
      if cursor < size then begin
        let off = offset + cursor in
        let page = V.page_index off in
        let data = read_lower_page e page in
        verify_page l e page data;
        let in_page = off - (page * ps) in
        let n = min (size - cursor) (ps - in_page) in
        Bytes.blit data in_page out cursor n;
        go (cursor + n)
      end
    in
    go 0;
    Sp_coherency.Mrsw.after_grant e.e_state ~me:id ~access ~offset ~size;
    out
  in
  let push retain ~offset data =
    Sp_coherency.Mrsw.granting e.e_state ~access:V.Read_write @@ fun () ->
    (* Clip to the current length, like every passthrough layer. *)
    let len = lower_len e in
    let keep = min (Bytes.length data) (max 0 (len - offset)) in
    if keep > 0 then begin
      ignore (Sp_core.File.write e.e_lower ~pos:offset (Bytes.sub data 0 keep));
      (* Re-checksum what we now know: a page whose content this push
         fully determines (whole page, or prefix up to EOF — the read
         path zero-pads the tail) is recorded; a partially-overwritten
         page is forgotten and re-trusted on its next page_in. *)
      let first = offset / ps and last = (offset + keep - 1) / ps in
      for page = first to last do
        let start = page * ps in
        let lo = max offset start and hi = min (offset + keep) (start + ps) in
        if lo = start && (hi = start + ps || hi >= len) then begin
          let padded = Bytes.make ps '\000' in
          Bytes.blit data (lo - offset) padded 0 (hi - lo);
          record_page l e page padded
        end
        else Hashtbl.remove e.e_sums page
      done
    end;
    Sp_coherency.Mrsw.on_push e.e_state ~me:id ~retain ~offset
      ~size:(Bytes.length data)
  in
  {
    V.p_domain = l.l_domain;
    p_label = e.e_key;
    p_page_in = page_in;
    p_page_out = push `Drop;
    p_write_out = push `Read_only;
    p_sync = push `Same;
    p_sync_v = V.sync_each (push `Same);
    p_done_with =
      (fun () ->
        Sp_coherency.Mrsw.remove_channel e.e_state ~ch:id;
        Sp_vm.Pager_lib.remove l.l_channels id);
    p_exten =
      [
        V.Fs_pager
          {
            V.fp_get_attr = (fun () -> Sp_core.File.stat e.e_lower);
            fp_set_attr = (fun a -> Sp_core.File.set_attr e.e_lower a);
            fp_attr_sync =
              (fun a ->
                let len = a.Sp_vm.Attr.len in
                if len <> lower_len e then set_len e len;
                Sp_core.File.set_attr e.e_lower a);
          };
      ];
  }

let truncate_entry l e len =
  let old = lower_len e in
  if len < old then begin
    let channels = Sp_vm.Pager_lib.live_channels_for_key l.l_channels ~key:e.e_key in
    let cut = (len + ps - 1) / ps * ps in
    List.iter
      (fun ch ->
        let extents = V.write_back ch.Sp_vm.Pager_lib.ch_cache ~offset:0 ~size:cut in
        List.iter
          (fun x ->
            let pager = upper_pager l e ~id:ch.Sp_vm.Pager_lib.ch_id in
            pager.V.p_sync ~offset:x.V.ext_offset x.V.ext_data)
          extents;
        if len mod ps <> 0 then
          V.zero_fill ch.Sp_vm.Pager_lib.ch_cache ~offset:len ~size:(cut - len);
        V.delete_range ch.Sp_vm.Pager_lib.ch_cache ~offset:cut ~size:(max ps (old - cut)))
      channels;
    Sp_coherency.Mrsw.drop_blocks_from e.e_state ~block:(cut / ps)
  end;
  set_len e len

let wrap_file l (lower : Sp_core.File.t) =
  match Hashtbl.find_opt l.l_wrapped lower.Sp_core.File.f_id with
  | Some (stored, f) when stored == lower -> f
  | Some _ | None ->
      let e =
        {
          e_key = Printf.sprintf "integrityfs:%s:%s" l.l_name lower.Sp_core.File.f_id;
          e_lower = lower;
          e_state = Sp_coherency.Mrsw.create ();
          e_sums = Hashtbl.create 16;
        }
      in
      let mem =
        {
          V.m_domain = l.l_domain;
          m_label = e.e_key;
          m_bind =
            (fun mgr _access ->
              Sp_vm.Pager_lib.bind l.l_channels ~key:e.e_key
                ~make_pager:(fun ~id -> upper_pager l e ~id)
                mgr);
          m_get_length = (fun () -> lower_len e);
          m_set_length = (fun len -> truncate_entry l e len);
        }
      in
      let mapped =
        Sp_core.File.mapped_ops ~vmm:l.l_vmm ~mem
          ~get_attr:(fun () -> Sp_core.File.stat e.e_lower)
          ~set_attr_len:(fun len -> if len > lower_len e then set_len e len)
      in
      let f =
        {
          Sp_core.File.f_id = e.e_key;
          f_domain = l.l_domain;
          f_mem = mem;
          f_read = mapped.Sp_core.File.mo_read;
          f_write = mapped.Sp_core.File.mo_write;
          f_stat = (fun () -> Sp_core.File.stat e.e_lower);
          f_set_attr = (fun a -> Sp_core.File.set_attr e.e_lower a);
          f_truncate = (fun len -> truncate_entry l e len);
          f_sync =
            (fun () ->
              mapped.Sp_core.File.mo_sync ();
              Sp_core.File.sync e.e_lower);
          f_exten = [];
        }
      in
      Hashtbl.replace l.l_wrapped lower.Sp_core.File.f_id (lower, f);
      f

let make ?(node = "local") ?domain ~vmm ~name () =
  let domain =
    match domain with Some d -> d | None -> Sp_obj.Sdomain.create ~node name
  in
  let l =
    {
      l_name = name;
      l_domain = domain;
      l_vmm = vmm;
      l_lower = None;
      l_verified = 0;
      l_failures = 0;
      l_channels = Sp_vm.Pager_lib.create ();
      l_wrapped = Hashtbl.create 16;
    }
  in
  Hashtbl.replace instances name l;
  let ctx = ref None in
  let get_ctx () =
    match !ctx with
    | Some c -> c
    | None ->
        let lower = lower_of l in
        let charge_open (_ : Sp_core.File.t) =
          Sp_sim.Simclock.advance (Sp_sim.Cost_model.current ()).open_state_ns
        in
        let c =
          Sp_core.Mapped_context.make ~domain ~label:name
            ~lower:lower.Sp_core.Stackable.sfs_ctx ~wrap_file:(wrap_file l)
            ~on_file:charge_open ()
        in
        ctx := Some c;
        c
  in
  let exported_ctx =
    {
      Sp_naming.Context.ctx_domain = domain;
      ctx_label = name;
      ctx_acl = (fun () -> Sp_naming.Acl.open_acl);
      ctx_set_acl = (fun _ -> ());
      ctx_resolve1 = (fun c -> (get_ctx ()).Sp_naming.Context.ctx_resolve1 c);
      ctx_bind1 = (fun c o -> (get_ctx ()).Sp_naming.Context.ctx_bind1 c o);
      ctx_rebind1 = (fun c o -> (get_ctx ()).Sp_naming.Context.ctx_rebind1 c o);
      ctx_unbind1 = (fun c -> (get_ctx ()).Sp_naming.Context.ctx_unbind1 c);
      ctx_list = (fun () -> (get_ctx ()).Sp_naming.Context.ctx_list ());
      ctx_readdir1 =
        (fun ~cookie ~limit ->
          (get_ctx ()).Sp_naming.Context.ctx_readdir1 ~cookie ~limit);
    }
  in
  {
    Sp_core.Stackable.sfs_name = name;
    sfs_type = "integrityfs";
    sfs_domain = domain;
    sfs_ctx = exported_ctx;
    sfs_stack_on =
      (fun under ->
        match l.l_lower with
        | Some _ ->
            raise
              (Sp_core.Stackable.Stack_error
                 (name ^ ": integrityfs stacks on exactly one file system"))
        | None -> l.l_lower <- Some under);
    sfs_unders = (fun () -> Option.to_list l.l_lower);
    sfs_create =
      (fun path -> wrap_file l (Sp_core.Stackable.create (lower_of l) path));
    sfs_mkdir = (fun path -> Sp_core.Stackable.mkdir (lower_of l) path);
    sfs_remove =
      (fun path ->
        let lower = lower_of l in
        (match Sp_core.Stackable.open_file lower path with
        | lf ->
            Sp_vm.Pager_lib.destroy_key l.l_channels
              ~key:(Printf.sprintf "integrityfs:%s:%s" l.l_name lf.Sp_core.File.f_id);
            Hashtbl.remove l.l_wrapped lf.Sp_core.File.f_id
        | exception _ -> ());
        Sp_core.Stackable.remove lower path);
    sfs_sync =
      (fun () ->
        Hashtbl.iter (fun _ (_, f) -> Sp_core.File.sync f) l.l_wrapped;
        Sp_core.Stackable.sync (lower_of l));
    sfs_drop_caches = (fun () -> Sp_core.Stackable.drop_caches (lower_of l));
  }

let creator ?(node = "local") ~vmm () =
  {
    Sp_core.Stackable.cr_type = "integrityfs";
    cr_create = (fun ~name -> make ~node ~vmm ~name ());
  }

let verified sfs = (layer_of sfs).l_verified
let failures sfs = (layer_of sfs).l_failures
