(** Silent-corruption sweep harness — the checksum counterpart of
    {!Sp_sfs.Crash_sweep}.

    For every device I/O of a deterministic seeded workload, a fresh
    journaled volume is built and exactly one silent corruption fault is
    injected at that point: {!Bitrot} (one stored bit flips on a read),
    {!Misdirected} (a write lands on the wrong block), or {!Lost} (a
    write is acknowledged but never stored).  The workload includes reads
    whose results are discarded — the application never checks its own
    data, so only the system's integrity machinery can catch the damage.

    After the workload the sweep verifies from stored bytes (fsck with
    checksum verification plus a fresh remount, or a cache-dropped read
    through the mirror) and classifies the point.  The invariant:
    {!Silent} never happens on a checksummed volume.  The
    [~checksums:false] control exists to prove the sweep would see it —
    there, bit rot in file data comes back {!Silent}. *)

type kind =
  | Bitrot  (** one bit of a stored block flips, surfacing on a read *)
  | Misdirected  (** a write lands on some other block; the target keeps stale data *)
  | Lost  (** a write is acknowledged but never reaches the platter *)

type outcome =
  | Absorbed
      (** the damaged bytes were overwritten or freed before any read;
          read-back content is correct and nothing fired *)
  | Detected of string
      (** a [Checksum_error] (or other loud failure: fsck flag, I/O
          error, refused mount) — the system never served wrong bytes *)
  | Repaired
      (** mirror mode: content is correct and the mirror healed at least
          one twin copy along the way *)
  | Silent of string
      (** read-back content differs from what was written and nothing
          complained — the failure checksums exist to rule out *)

type report = {
  cr_kind : kind;
  cr_checksums : bool;
  cr_mirror : bool;
  cr_clients : int;  (** concurrent clients (1 = the classic serial sweep) *)
  cr_ops : int;  (** operations, per client when [cr_clients > 1] *)
  cr_seed : int;
  cr_io : int;  (** device I/Os of the faulted kind in the workload *)
  cr_points : int;  (** injection points actually swept *)
  cr_absorbed : int;
  cr_detected : int;
  cr_repaired : int;
  cr_silent : int;
  cr_first_silent : (int * string) option;
}

val kind_name : kind -> string

(** Device I/Os (reads for {!Bitrot}, writes otherwise) the workload
    performs — the number of points a full sweep visits.  With
    [clients > 1] the workload runs as that many concurrently scheduled
    [Sp_sched] tasks, each doing [ops] operations on its own files of the
    shared volume (a run with no crash either completes — and must read
    back exactly — or fails loudly, so verification is unchanged). *)
val workload_io :
  ?checksums:bool -> ?mirror:bool -> ?clients:int -> kind:kind -> ops:int ->
  seed:int -> unit -> int

(** Build a fresh volume (or mirrored pair; corruption always strikes the
    primary twin), run the workload with the single fault armed at the
    [at]-th device I/O, then verify from stored bytes. *)
val run_point :
  ?checksums:bool -> ?mirror:bool -> ?clients:int -> kind:kind -> ops:int ->
  seed:int -> at:int -> unit -> outcome

(** Sweep injection points [1, 1+stride, ...] across the workload. *)
val sweep :
  ?stride:int -> ?checksums:bool -> ?mirror:bool -> ?clients:int ->
  kind:kind -> ops:int -> seed:int -> unit -> report

val pp_outcome : Format.formatter -> outcome -> unit
val pp_report : Format.formatter -> report -> unit

(** One-line machine-readable summary, e.g.
    ["SCRUB-SWEEP kind=bitrot checksums=on mirror=off points=63 absorbed=11 detected=52 repaired=0 silent=0"]. *)
val summary : report -> string
