(** Background checksum scrubber for SFS volumes.

    Walks every checksum-covered block of a formatted device on the
    simulated clock, reads it back, and compares against the {!Sp_sfs.Csum}
    region — the proactive counterpart to the read-path verification in
    [Journal.read].  Latent bit rot in rarely-read blocks is found before
    the redundancy needed to repair it is gone.

    Like {!Sp_sfs.Fsck}, the scrubber reads the raw device: run it on a
    synced or unmounted volume.  With [repair_with] (e.g.
    {!from_device} on a mirror twin) a bad block whose replacement
    matches the recorded checksum is rewritten in place; each repair
    bumps [Metrics.integrity_repairs] and emits a ["scrub.repair"] trace
    instant. *)

type report = {
  sr_scanned : int;  (** covered blocks read and hashed *)
  sr_bad : int;  (** blocks whose contents did not match *)
  sr_repaired : int;  (** bad blocks rewritten from [repair_with] *)
  sr_ns : int;  (** simulated time the scrub took *)
}

val pp_report : Format.formatter -> report -> unit

(** Fetch candidate replacement blocks from another device (a mirror
    twin); [None] when that device fails the read. *)
val from_device : Sp_blockdev.Disk.t -> int -> bytes option

(** Scrub the device.  [repair_with n] supplies replacement bytes for bad
    block [n]; a replacement is applied only if it matches the recorded
    checksum.  A volume without a checksum region reports zero blocks
    scanned. *)
val run : ?repair_with:(int -> bytes option) -> Sp_blockdev.Disk.t -> report
