(** INTEGRITYFS — an end-to-end integrity (checksum) file system layer.

    A stackable layer in the style the paper's §5 extension catalogue
    suggests: it passes data through unchanged but keeps a per-page
    checksum of everything it has seen, taken in its own pager path.
    Where the SFS disk layer's {!Sp_sfs.Csum} region catches corruption
    at the device boundary, this layer catches it wherever it sits in the
    stack — below it may be a whole tower of layers (compression,
    mirroring, a remote DFS import) and any of them silently changing
    bytes is caught at [page_in] with [Fserr.Checksum_error].

    Pages are trusted on first read (the layer keeps no persistent store
    of its own) and re-checksummed on every push of a fully-determined
    page; partially-overwritten pages are forgotten and re-trusted on the
    next read.  Hashing charges simulated CPU via [Door.charge_cpu]. *)

(** [make ~vmm ~name ()] creates an instance; stack on exactly one
    underlying file system. *)
val make :
  ?node:string ->
  ?domain:Sp_obj.Sdomain.t ->
  vmm:Sp_vm.Vmm.t ->
  name:string ->
  unit ->
  Sp_core.Stackable.t

(** Creator (type ["integrityfs"]). *)
val creator :
  ?node:string -> vmm:Sp_vm.Vmm.t -> unit -> Sp_core.Stackable.creator

(** Pages read whose checksum matched a previous sighting. *)
val verified : Sp_core.Stackable.t -> int

(** Pages read whose checksum did not match ([Checksum_error] raised). *)
val failures : Sp_core.Stackable.t -> int
