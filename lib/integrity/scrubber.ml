module Disk = Sp_blockdev.Disk
module Layout = Sp_sfs.Layout
module Csum = Sp_sfs.Csum

type report = {
  sr_scanned : int;
  sr_bad : int;
  sr_repaired : int;
  sr_ns : int;
}

let pp_report ppf r =
  Format.fprintf ppf "scrub: %d block(s) scanned, %d bad, %d repaired, %a"
    r.sr_scanned r.sr_bad r.sr_repaired Sp_sim.Simclock.pp_duration r.sr_ns

let from_device other n =
  match Disk.read other n with
  | data -> Some data
  | exception Sp_core.Fserr.Io_error _ -> None

(* The scrubber is an offline tool in the fsck family: it reads the raw
   device (the whole point is to reach stored bytes, not caches), so run
   it against a synced or unmounted volume. *)
let run ?repair_with disk =
  let t0 = Sp_sim.Simclock.now () in
  let layout = Layout.decode_superblock (Disk.read disk 0) in
  let finish scanned bad repaired =
    {
      sr_scanned = scanned;
      sr_bad = bad;
      sr_repaired = repaired;
      sr_ns = Sp_sim.Simclock.now () - t0;
    }
  in
  match Csum.attach disk layout with
  | None -> finish 0 0 0
  | Some c ->
      let scanned = ref 0 and bad = ref 0 and repaired = ref 0 in
      for b = 0 to layout.Layout.total_blocks - 1 do
        if Csum.covers c b then begin
          incr scanned;
          let data = Disk.read disk b in
          if not (Csum.matches c b data) then begin
            incr bad;
            Sp_sim.Metrics.incr_checksum_failures ();
            if Sp_trace.enabled () then
              Sp_trace.instant ~name:"checksum:mismatch"
                ~args:[ ("disk", Disk.label disk); ("block", string_of_int b) ]
                ();
            match repair_with with
            | None -> ()
            | Some fetch -> (
                match fetch b with
                | Some good when Csum.matches c b good ->
                    Disk.write disk b good;
                    incr repaired;
                    Sp_sim.Metrics.incr_integrity_repairs ();
                    if Sp_trace.enabled () then
                      Sp_trace.instant ~name:"scrub.repair"
                        ~args:
                          [
                            ("disk", Disk.label disk);
                            ("block", string_of_int b);
                          ]
                        ()
                | Some _ | None ->
                    (* no replacement, or the replacement is damaged too:
                       leave the block flagged rather than guessing *)
                    ())
          end
        end
      done;
      finish !scanned !bad !repaired
