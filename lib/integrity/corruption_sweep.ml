(* Silent-corruption sweep: the checksum counterpart of
   [Sp_sfs.Crash_sweep].  Instead of crashing the machine at every device
   write, it injects one silent corruption fault — bit rot, a misdirected
   write, a lost write — at every device I/O of a seeded workload, then
   checks what the system made of it.  The invariant: corrupted bytes are
   never served as good data.  Every point must end detected (a
   [Checksum_error] or other loud failure), repaired (the mirror healed
   it), or absorbed (the damage was overwritten or freed before anyone
   could read it) — a [Silent] outcome, where read-back data differs from
   what was written with no error anywhere, is the failure the checksums
   exist to rule out. *)

module File = Sp_core.File
module Stackable = Sp_core.Stackable
module Disk = Sp_blockdev.Disk
module Disk_layer = Sp_sfs.Disk_layer
module Fsck = Sp_sfs.Fsck
module Rng = Sp_fault.Rng
module Sname = Sp_naming.Sname

type kind = Bitrot | Misdirected | Lost

type outcome =
  | Absorbed
  | Detected of string
  | Repaired
  | Silent of string

type report = {
  cr_kind : kind;
  cr_checksums : bool;
  cr_mirror : bool;
  cr_clients : int;
  cr_ops : int;
  cr_seed : int;
  cr_io : int;
  cr_points : int;
  cr_absorbed : int;
  cr_detected : int;
  cr_repaired : int;
  cr_silent : int;
  cr_first_silent : (int * string) option;
}

let kind_name = function
  | Bitrot -> "bitrot"
  | Misdirected -> "misdirected"
  | Lost -> "lost"

(* Which device op the fault hooks, and the fault itself. *)
let point_of = function Bitrot -> "disk.read" | Misdirected | Lost -> "disk.write"

let fault_of = function
  | Bitrot -> Sp_fault.Bitrot
  | Misdirected -> Sp_fault.Misdirected_write
  | Lost -> Sp_fault.Lost_write

let disk_blocks = 1024
let n_files = 6
let max_pos = 12288
let max_write = 4096

(* Concurrent mode: each client owns [client_files] files of its own
   ("c<k>f<j>"), so the shared expected-contents table never races — a
   name is only ever written by one task, and the table update sits
   between the same two suspension points as the write itself. *)
let client_files = 3

let fname ?client rng =
  match client with
  | None -> "f" ^ string_of_int (Rng.int rng n_files)
  | Some k -> Printf.sprintf "c%df%d" k (Rng.int rng client_files)

type sim = {
  top : Stackable.t;  (* where the workload runs: the volume or the mirror *)
  expected : (string, bytes) Hashtbl.t;
}

let write_step ?client st rng =
  let name = fname ?client rng in
  let path = Sname.of_components [ name ] in
  let pos = Rng.int rng max_pos in
  let len = 1 + Rng.int rng max_write in
  let base = Rng.int rng 256 in
  let data = Bytes.init len (fun i -> Char.chr ((base + i) land 0xff)) in
  let f =
    if Hashtbl.mem st.expected name then Stackable.open_file st.top path
    else begin
      let f = Stackable.create st.top path in
      Hashtbl.replace st.expected name Bytes.empty;
      f
    end
  in
  ignore (File.write f ~pos data);
  let old = Hashtbl.find st.expected name in
  let buf = Bytes.make (max (Bytes.length old) (pos + len)) '\000' in
  Bytes.blit old 0 buf 0 (Bytes.length old);
  Bytes.blit data 0 buf pos len;
  Hashtbl.replace st.expected name buf

(* Reads deliberately discard their results: the sweep never lets the
   application "notice" corruption by comparing — detection must come
   from the system (checksums raising, fsck flagging), or it does not
   count. *)
let read_step ?client st rng =
  let name = fname ?client rng in
  if Hashtbl.mem st.expected name then
    ignore (File.read_all (Stackable.open_file st.top (Sname.of_components [ name ])))

let remove_step ?client st rng =
  let name = fname ?client rng in
  if Hashtbl.mem st.expected name then begin
    Stackable.remove st.top (Sname.of_components [ name ]);
    Hashtbl.remove st.expected name
  end

let run_ops ?client st rng ops =
  for i = 1 to ops do
    (match Rng.int rng 12 with
    | 8 | 9 -> read_step ?client st rng
    | 10 -> remove_step ?client st rng
    | 11 -> Stackable.sync st.top
    | _ -> write_step ?client st rng);
    if i mod 5 = 0 then Stackable.sync st.top
  done;
  Stackable.sync st.top

(* [clients > 1]: the same op mix, one scheduler task per client on the
   shared volume.  There is no crash here — a run either completes (and
   the final state must read back exactly) or dies loudly, so the serial
   expected-contents verification still applies verbatim. *)
let run_workload st ~clients ~ops ~seed =
  if clients = 1 then run_ops st (Rng.create seed) ops
  else
    let client k () =
      run_ops ~client:k st (Rng.create (seed + ((k + 1) * 7919))) ops
    in
    ignore (Sp_sched.run ~seed (List.init clients client))

let label ~kind ~checksums ~mirror ~seed =
  Printf.sprintf "corr-%s%c%c%d" (kind_name kind)
    (if checksums then 'c' else 'n')
    (if mirror then 'm' else 's')
    seed

(* A loud failure: the system refused to serve or even mount the damaged
   bytes.  [Sp_fault.Crash] is absent on purpose — this sweep injects no
   crash faults, so one escaping would be a harness bug. *)
let loud = function
  | Sp_core.Fserr.Checksum_error _ | Sp_core.Fserr.Io_error _
  | Sp_core.Fserr.No_such_file _ | Sp_core.Fserr.Not_a_directory _
  | Sp_core.Fserr.Is_directory _ | Sp_core.Fserr.No_space _
  | Invalid_argument _ | Failure _ ->
      true
  | _ -> false

type setup = {
  s_disks : Disk.t list;  (* fault target first *)
  s_sim : sim;
  s_mirror : Stackable.t option;
  s_vmm : Sp_vm.Vmm.t option;
  s_label : string;  (* disk label the fault rule targets *)
}

(* Serial sweeps keep the historical geometry; concurrent ones scale the
   volume so [clients * client_files] files never hit [No_space] (which
   is loud and would masquerade as detection). *)
let blocks_for clients =
  if clients = 1 then disk_blocks else disk_blocks * (1 + ((clients + 7) / 8))

let setup ~kind ~checksums ~mirror ~clients ~seed =
  let lbl = label ~kind ~checksums ~mirror ~seed in
  let disk_blocks = blocks_for clients in
  if not mirror then begin
    let disk = Disk.create ~label:lbl ~blocks:disk_blocks () in
    Disk_layer.mkfs ~journal:true ~checksums disk;
    let fs = Disk_layer.mount ~name:lbl disk in
    {
      s_disks = [ disk ];
      s_sim = { top = fs; expected = Hashtbl.create 8 };
      s_mirror = None;
      s_vmm = None;
      s_label = lbl;
    }
  end
  else begin
    let disk_a = Disk.create ~label:(lbl ^ "A") ~blocks:disk_blocks () in
    let disk_b = Disk.create ~label:(lbl ^ "B") ~blocks:disk_blocks () in
    Disk_layer.mkfs ~journal:true ~checksums disk_a;
    Disk_layer.mkfs ~journal:true ~checksums disk_b;
    let fs_a = Disk_layer.mount ~name:(lbl ^ "A") disk_a in
    let fs_b = Disk_layer.mount ~name:(lbl ^ "B") disk_b in
    let vmm = Sp_vm.Vmm.create ~node:"local" (lbl ^ "-vmm") in
    let m = Sp_mirrorfs.Mirrorfs.make ~vmm ~name:(lbl ^ "-m") () in
    Stackable.stack_on m fs_a;
    Stackable.stack_on m fs_b;
    {
      s_disks = [ disk_a; disk_b ];
      s_sim = { top = m; expected = Hashtbl.create 8 };
      s_mirror = Some m;
      s_vmm = Some vmm;
      s_label = lbl ^ "A";  (* corruption always strikes the primary twin *)
    }
  end

(* Device I/Os of the faulted kind the workload performs — the number of
   injection points a sweep visits. *)
let workload_io ?(checksums = true) ?(mirror = false) ?(clients = 1) ~kind ~ops
    ~seed () =
  if clients < 1 then invalid_arg "Corruption_sweep: clients must be >= 1";
  let s = setup ~kind ~checksums ~mirror ~clients ~seed in
  let target = List.hd s.s_disks in
  let before = Disk.stats target in
  run_workload s.s_sim ~clients ~ops ~seed;
  let after = Disk.stats target in
  match point_of kind with
  | "disk.read" -> after.Disk.reads - before.Disk.reads
  | _ -> after.Disk.writes - before.Disk.writes

let compare_expected st top =
  let want =
    Hashtbl.fold (fun name data acc -> (name, data) :: acc) st.expected []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let got =
    List.sort String.compare
      (Stackable.fold_dir top (Sname.of_components []) (fun acc n -> n :: acc) [])
  in
  if got <> List.map fst want then
    Some
      (Printf.sprintf "file set {%s} <> {%s}" (String.concat "," got)
         (String.concat "," (List.map fst want)))
  else
    List.find_map
      (fun (name, data) ->
        let back = File.read_all (Stackable.open_file top (Sname.of_components [ name ])) in
        if Bytes.equal back data then None
        else Some (Printf.sprintf "%s: read back %d byte(s) differing from what was written" name (Bytes.length back)))
      want

let run_point ?(checksums = true) ?(mirror = false) ?(clients = 1) ~kind ~ops
    ~seed ~at () =
  if clients < 1 then invalid_arg "Corruption_sweep: clients must be >= 1";
  let s = setup ~kind ~checksums ~mirror ~clients ~seed in
  let plan =
    Sp_fault.plan ~seed:(seed + at)
      [
        Sp_fault.rule ~point:(point_of kind) ~label:s.s_label ~after:(at - 1)
          ~count:1 (fault_of kind);
      ]
  in
  let attempt () =
    (* Phase 1: the workload, with the fault armed. *)
    Sp_fault.with_plan plan (fun () -> run_workload s.s_sim ~clients ~ops ~seed);
    (* Phase 2: verification, disarmed.  Reads must reach stored bytes. *)
    match s.s_mirror with
    | Some m -> (
        Option.iter Sp_vm.Vmm.drop_caches s.s_vmm;
        Stackable.drop_caches m;
        match compare_expected s.s_sim m with
        | Some divergence -> Silent divergence
        | None ->
            if Sp_mirrorfs.Mirrorfs.repairs m > 0 then Repaired else Absorbed)
    | None -> (
        let disk = List.hd s.s_disks in
        match Fsck.check ~verify_checksums:checksums disk with
        | p :: rest ->
            Detected
              (Format.asprintf "fsck: %a%s" Fsck.pp_problem p
                 (if rest = [] then ""
                  else Printf.sprintf " (+%d more)" (List.length rest)))
        | [] -> (
            let fs2 = Disk_layer.mount ~name:(s.s_label ^ "-v") disk in
            match compare_expected s.s_sim fs2 with
            | Some divergence -> Silent divergence
            | None -> Absorbed))
  in
  match attempt () with
  | outcome -> outcome
  | exception e when loud e -> Detected (Sp_core.Fserr.to_string e)

let sweep ?(stride = 1) ?(checksums = true) ?(mirror = false) ?(clients = 1)
    ~kind ~ops ~seed () =
  if stride < 1 then invalid_arg "Corruption_sweep.sweep: stride must be >= 1";
  let io = workload_io ~checksums ~mirror ~clients ~kind ~ops ~seed () in
  let absorbed = ref 0 and detected = ref 0 and repaired = ref 0 and silent = ref 0 in
  let points = ref 0 in
  let first_silent = ref None in
  let at = ref 1 in
  while !at <= io do
    incr points;
    (match run_point ~checksums ~mirror ~clients ~kind ~ops ~seed ~at:!at () with
    | Absorbed -> incr absorbed
    | Detected _ -> incr detected
    | Repaired -> incr repaired
    | Silent msg ->
        incr silent;
        if !first_silent = None then first_silent := Some (!at, msg));
    at := !at + stride
  done;
  {
    cr_kind = kind;
    cr_checksums = checksums;
    cr_mirror = mirror;
    cr_clients = clients;
    cr_ops = ops;
    cr_seed = seed;
    cr_io = io;
    cr_points = !points;
    cr_absorbed = !absorbed;
    cr_detected = !detected;
    cr_repaired = !repaired;
    cr_silent = !silent;
    cr_first_silent = !first_silent;
  }

let pp_outcome ppf = function
  | Absorbed -> Format.fprintf ppf "absorbed"
  | Detected msg -> Format.fprintf ppf "detected (%s)" msg
  | Repaired -> Format.fprintf ppf "repaired"
  | Silent msg -> Format.fprintf ppf "SILENT (%s)" msg

let summary r =
  Printf.sprintf
    "SCRUB-SWEEP kind=%s checksums=%s mirror=%s%s points=%d absorbed=%d \
     detected=%d repaired=%d silent=%d"
    (kind_name r.cr_kind)
    (if r.cr_checksums then "on" else "off")
    (if r.cr_mirror then "on" else "off")
    (if r.cr_clients > 1 then Printf.sprintf " clients=%d" r.cr_clients else "")
    r.cr_points r.cr_absorbed r.cr_detected r.cr_repaired r.cr_silent

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>corruption sweep: kind=%s checksums=%s mirror=%s clients=%d ops=%d \
     seed=%d@,\
     device %s swept: %d (%d injection points)@,\
     absorbed %d   detected %d   repaired %d   silent %d@]"
    (kind_name r.cr_kind)
    (if r.cr_checksums then "on" else "off")
    (if r.cr_mirror then "on" else "off")
    r.cr_clients r.cr_ops r.cr_seed
    (match point_of r.cr_kind with "disk.read" -> "reads" | _ -> "writes")
    r.cr_io r.cr_points r.cr_absorbed r.cr_detected r.cr_repaired r.cr_silent;
  match r.cr_first_silent with
  | Some (at, msg) ->
      Format.fprintf ppf "@,first silent corruption at %s %d: %s"
        (match point_of r.cr_kind with "disk.read" -> "read" | _ -> "write")
        at msg
  | None -> ()
