(* Multi-client scale benchmark: N clients run as [Sp_sched] tasks over
   one shared two-domain SFS stack under the [paper_1993] model, and the
   row reports what contention does to the tail — throughput plus
   p50/p99/p999 of the per-operation virtual latency.  The serialization
   points are the real queueing resources (door stations into the lower
   domain, the coherency Rwlock, the disk elevator), so p99/p50 spreading
   apart as clients grow is the system's behaviour, not a model knob.

   The op budget is fixed per row (each client runs [budget / clients]
   ops, at least one), so rows compare the same amount of work at
   different concurrency.  Arrivals are staggered by a fixed inter-client
   gap to model clients joining over time rather than one thundering
   herd at t=0.  Everything derives from the seed: one row is a single
   deterministic discrete-event run. *)

module F = Sp_core.File
module S = Sp_core.Stackable
module Rng = Sp_fault.Rng
module Sname = Sp_naming.Sname

let ps = Sp_vm.Vm_types.page_size

type row = {
  sc_clients : int;
  sc_ops : int;  (** total operations completed across all clients *)
  sc_elapsed_ns : int;  (** virtual time from first arrival to last completion *)
  sc_throughput : float;  (** operations per simulated second *)
  sc_p50_ns : int;
  sc_p99_ns : int;
  sc_p999_ns : int;
  sc_queue_ns : int;  (** total time tasks spent waiting in queues *)
  sc_switches : int;  (** scheduler dispatches *)
  sc_syncs : int;  (** client-issued syncs (sync-heavy mode; else 0) *)
  sc_commits : int;  (** journal transactions those syncs produced *)
  sc_absorbed : int;  (** syncs absorbed into another caller's commit *)
  sc_sync_p99_ns : int;  (** p99 latency of the sync calls themselves *)
}

let n_files = 16
let arrival_gap_ns = 2_000

(* Sync-heavy mode: every client syncs after every [sync_every]-th write,
   so durability — not the read path — is the bottleneck and concurrent
   syncs pile into the journal's group-commit window. *)
let sync_every = 4

(* Directory-heavy mode: a shared directory big enough to have upgraded
   to the hashed index, so namespace ops (opens by path, readdir
   batches, create/remove churn) hit the index under contention. *)
let n_dir_files = 192

let pattern n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set b i (Char.chr ((i * 131) land 0xff))
  done;
  b

let instances = ref 0

(* A two-domain stack with a warm population of [n_files] shared files:
   every op crosses a door into the lower domain, so the station queue is
   always in play; syncs drive the journalless disk through the elevator. *)
let setup ?(dir_heavy = false) ?(deep = false) ?(sync_heavy = false) ~tag () =
  incr instances;
  let tag = Printf.sprintf "%s%d" tag !instances in
  let vmm = Sp_vm.Vmm.create ~node:tag ("vmm-" ^ tag) in
  let base suffix =
    let disk =
      Sp_blockdev.Disk.create ~label:("disk-" ^ tag ^ suffix) ~blocks:8192 ()
    in
    (* Sync-heavy rows measure commit batching, so the base is journaled;
       the other mixes keep the journalless disk the elevator rows were
       calibrated against. *)
    Sp_sfs.Disk_layer.mkfs ~journal:sync_heavy disk;
    Sp_coherency.Spring_sfs.make_split ~node:tag ~vmm ~name:(tag ^ suffix)
      ~same_domain:false disk
  in
  let fs =
    if not deep then base ""
    else begin
      (* Deep stack: compression over a mirror of two two-domain bases —
         five layer instances, so every op crosses several doors and the
         mirror fans writes out to both replicas. *)
      let fa = base "a" and fb = base "b" in
      let mirror = Sp_mirrorfs.Mirrorfs.make ~node:tag ~vmm ~name:(tag ^ ".m") () in
      S.stack_on mirror fa;
      S.stack_on mirror fb;
      let comp = Sp_compfs.Compfs.make ~node:tag ~vmm ~name:(tag ^ ".z") () in
      S.stack_on comp mirror;
      comp
    end
  in
  let files =
    Array.init n_files (fun i ->
        let f = S.create fs (Sname.of_string (Printf.sprintf "s%d" i)) in
        ignore (F.write f ~pos:0 (pattern ps));
        f)
  in
  if dir_heavy then begin
    S.mkdir fs (Sname.of_string "dir");
    for i = 0 to n_dir_files - 1 do
      ignore (S.create fs (Sname.of_string (Printf.sprintf "dir/g%03d" i)))
    done
  end;
  S.sync fs;
  (fs, files)

(* The op mix: mostly warm 4KB reads, a fair share of 1KB writes, some
   stats, and an occasional sync that forces writeback through the disk.
   Files are shared — two clients hitting the same file contend on its
   coherency lock, which is the point. *)
let client_op files rng data =
  let f = files.(Rng.int rng n_files) in
  match Rng.int rng 16 with
  | 0 -> F.sync f
  | 1 | 2 -> ignore (F.stat f)
  | 3 | 4 | 5 -> ignore (F.write f ~pos:(256 * Rng.int rng 12) data)
  | _ -> ignore (F.read f ~pos:0 ~len:ps)

(* Namespace mix: opens by compound name (two lookups through the index),
   cursor readdir batches, stats, and create/remove churn that mutates
   the shared indexed directory under the layer lock. *)
let dir_name = Sname.of_string "dir"

let client_dir_op fs rng ~client ~op =
  match Rng.int rng 16 with
  | 0 | 1 ->
      let tmp = Sname.of_string (Printf.sprintf "dir/t%d_%d" client op) in
      ignore (S.create fs tmp);
      S.remove fs tmp
  | 2 | 3 | 4 ->
      ignore (S.readdir fs dir_name ~cookie:0 ~limit:32)
  | 5 | 6 ->
      let f =
        S.open_file fs
          (Sname.of_string (Printf.sprintf "dir/g%03d" (Rng.int rng n_dir_files)))
      in
      ignore (F.stat f)
  | _ ->
      ignore
        (S.open_file fs
           (Sname.of_string (Printf.sprintf "dir/g%03d" (Rng.int rng n_dir_files))))

(* Sync-heavy mix: every op is a 1KB write, and every [sync_every]-th op
   follows it with a sync on the same file.  Per-file coherency locks let
   different files' syncs reach the disk layer concurrently, which is
   what gives the journal's group commit syncs to absorb. *)
let client_sync_op files rng data ~op ~record_sync =
  let f = files.(Rng.int rng n_files) in
  ignore (F.write f ~pos:(256 * Rng.int rng 12) data);
  if op mod sync_every = 0 then begin
    let t0 = Sp_sim.Simclock.now () in
    F.sync f;
    record_sync (Sp_sim.Simclock.now () - t0)
  end

let percentile sorted per_mille =
  let n = Array.length sorted in
  if n = 0 then 0 else sorted.(min (n - 1) (n * per_mille / 1000))

let journal_stats_of fs =
  match Sp_sfs.Disk_layer.journal_stats (Sp_coherency.Spring_sfs.disk_layer fs) with
  | Some s -> (s.Sp_sfs.Journal.js_commits, s.Sp_sfs.Journal.js_absorbed_syncs)
  | None -> (0, 0)

let run_row ?(budget = 10_000) ?(dir_heavy = false) ?(deep = false)
    ?(sync_heavy = false) ~clients ~seed () =
  if clients < 1 then invalid_arg "Scale.run_row: clients must be >= 1";
  if sync_heavy && (dir_heavy || deep) then
    invalid_arg "Scale.run_row: sync_heavy uses the base stack and op mix";
  Sp_sim.Cost_model.with_model Sp_sim.Cost_model.paper_1993 @@ fun () ->
  let fs, files = setup ~dir_heavy ~deep ~sync_heavy ~tag:"scale" () in
  let ops_per_client = max 1 (budget / clients) in
  let total = clients * ops_per_client in
  let samples = Array.make total 0 in
  let filled = ref 0 in
  let sync_samples = ref [] in
  let syncs = ref 0 in
  let data = pattern 1024 in
  let client k () =
    let rng = Rng.create (seed + ((k + 1) * 2654435761)) in
    Sp_sched.sleep (k * arrival_gap_ns);
    for op = 1 to ops_per_client do
      let t0 = Sp_sim.Simclock.now () in
      (if sync_heavy then
         client_sync_op files rng data ~op ~record_sync:(fun ns ->
             incr syncs;
             sync_samples := ns :: !sync_samples)
       else if dir_heavy then client_dir_op fs rng ~client:k ~op
       else client_op files rng data);
      samples.(!filled) <- Sp_sim.Simclock.now () - t0;
      incr filled
    done
  in
  let commits0, absorbed0 = if sync_heavy then journal_stats_of fs else (0, 0) in
  let q0 = Sp_sim.Metrics.queue_ns () in
  let t0 = Sp_sim.Simclock.now () in
  let stats = Sp_sched.run ~seed (List.init clients client) in
  let elapsed = max 1 (Sp_sim.Simclock.now () - t0) in
  let commits1, absorbed1 = if sync_heavy then journal_stats_of fs else (0, 0) in
  S.sync fs;
  let queue = Sp_sim.Metrics.queue_ns () - q0 in
  Array.sort compare samples;
  let sync_sorted = Array.of_list !sync_samples in
  Array.sort compare sync_sorted;
  {
    sc_clients = clients;
    sc_ops = total;
    sc_elapsed_ns = elapsed;
    sc_throughput = float_of_int total /. (float_of_int elapsed /. 1e9);
    sc_p50_ns = percentile samples 500;
    sc_p99_ns = percentile samples 990;
    sc_p999_ns = percentile samples 999;
    sc_queue_ns = queue;
    sc_switches = stats.Sp_sched.st_switches;
    sc_syncs = !syncs;
    sc_commits = commits1 - commits0;
    sc_absorbed = absorbed1 - absorbed0;
    sc_sync_p99_ns = percentile sync_sorted 990;
  }

let default_clients = [ 10; 1_000; 100_000 ]

let run ?(clients = default_clients) ?(budget = 10_000) ?(seed = 7) () =
  List.map (fun c -> run_row ~budget ~clients:c ~seed ()) clients

let print ?(label = "the shared two-domain stack") ppf rows =
  Format.fprintf ppf
    "Scale: concurrent clients on %s (paper_1993, fixed op budget)@." label;
  Format.fprintf ppf "  %8s %9s %12s %12s %10s %10s %10s %7s@." "clients" "ops"
    "elapsed" "ops/sec" "p50" "p99" "p999" "queued";
  List.iter
    (fun r ->
      let ms ns = Printf.sprintf "%.1fms" (float_of_int ns /. 1e6) in
      let us ns = Printf.sprintf "%.1fus" (float_of_int ns /. 1e3) in
      Format.fprintf ppf "  %8d %9d %12s %12.0f %10s %10s %10s %6.0f%%@."
        r.sc_clients r.sc_ops (ms r.sc_elapsed_ns) r.sc_throughput
        (us r.sc_p50_ns) (us r.sc_p99_ns) (us r.sc_p999_ns)
        (100.
        *. float_of_int r.sc_queue_ns
        /. float_of_int (max 1 r.sc_elapsed_ns)
        /. float_of_int (max 1 r.sc_clients)))
    rows
