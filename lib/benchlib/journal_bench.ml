(* Journal group-commit benchmark: the sync-heavy scale mix (all 1KB
   writes, every 4th op followed by a sync on the same file) over a
   journaled two-domain base, at growing concurrency.

   The question per row: how many concurrent syncs does one journal
   commit retire?  At 1 client every sync is its own commit (nothing to
   batch — the absorbed count must stay 0); as clients grow, syncs pile
   into the leader's commit-delay window and syncs-per-commit climbs,
   which is exactly the sync-call p99 not exploding with client count. *)

type row = Scale.row

let run_row ~clients ~seed () = Scale.run_row ~sync_heavy:true ~clients ~seed ()

let default_clients = [ 1; 64; 1_000 ]

let run ?(clients = default_clients) ?(seed = 7) () =
  List.map (fun c -> run_row ~clients:c ~seed ()) clients

let print ppf rows =
  Format.fprintf ppf
    "Journal group commit: sync-heavy clients on the journaled two-domain \
     stack (paper_1993)@.";
  Format.fprintf ppf "  %8s %7s %9s %8s %10s %11s %10s@." "clients" "syncs"
    "commits" "absorbed" "syncs/cmt" "sync p99" "op p99";
  List.iter
    (fun r ->
      let us ns = Printf.sprintf "%.1fus" (float_of_int ns /. 1e3) in
      Format.fprintf ppf "  %8d %7d %9d %8d %10.1f %11s %10s@."
        r.Scale.sc_clients r.Scale.sc_syncs r.Scale.sc_commits
        r.Scale.sc_absorbed
        (float_of_int r.Scale.sc_syncs
        /. float_of_int (max 1 r.Scale.sc_commits))
        (us r.Scale.sc_sync_p99_ns) (us r.Scale.sc_p99_ns))
    rows
