type row = { table : string; label : string; ns : int }

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_string rows =
  let b = Buffer.create 4096 in
  Buffer.add_string b "[\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf "  {\"table\": \"%s\", \"label\": \"%s\", \"ns\": %d}"
           (escape r.table) (escape r.label) r.ns))
    rows;
  Buffer.add_string b "\n]\n";
  Buffer.contents b

exception Bad_json of string

(* Minimal parser for the flat shape emitted above: an array of objects
   whose values are strings or integers.  Not a general JSON parser. *)
let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !pos)) in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let peek () =
    skip_ws ();
    if !pos < n then Some s.[!pos] else None
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 32 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            if !pos >= n then fail "unterminated escape";
            (match s.[!pos] with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | 'n' -> Buffer.add_char b '\n'
            | 'u' ->
                if !pos + 4 >= n then fail "bad \\u escape";
                let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
                Buffer.add_char b (Char.chr (code land 0xff));
                pos := !pos + 4
            | c -> Buffer.add_char b c);
            incr pos;
            go ()
        | c ->
            Buffer.add_char b c;
            incr pos;
            go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_int () =
    skip_ws ();
    let start = !pos in
    if !pos < n && s.[!pos] = '-' then incr pos;
    while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
      incr pos
    done;
    if !pos = start then fail "expected number";
    int_of_string (String.sub s start (!pos - start))
  in
  let parse_object () =
    expect '{';
    let table = ref None and label = ref None and ns = ref None in
    let rec fields () =
      let key = parse_string () in
      expect ':';
      (match key with
      | "table" -> table := Some (parse_string ())
      | "label" -> label := Some (parse_string ())
      | "ns" -> ns := Some (parse_int ())
      | _ -> (
          (* tolerate unknown string/number fields *)
          match peek () with
          | Some '"' -> ignore (parse_string ())
          | _ -> ignore (parse_int ())));
      match peek () with
      | Some ',' ->
          incr pos;
          fields ()
      | _ -> expect '}'
    in
    fields ();
    match (!table, !label, !ns) with
    | Some table, Some label, Some ns -> { table; label; ns }
    | _ -> fail "row missing table/label/ns"
  in
  expect '[';
  let rows = ref [] in
  (match peek () with
  | Some ']' -> incr pos
  | _ ->
      let rec elements () =
        rows := parse_object () :: !rows;
        match peek () with
        | Some ',' ->
            incr pos;
            elements ()
        | _ -> expect ']'
      in
      elements ());
  List.rev !rows

let key r = r.table ^ "/" ^ r.label

type verdict =
  | Regression of row * int  (** fresh row, baseline ns *)
  | Improvement of row * int  (** fresh row faster than baseline beyond tolerance *)
  | Missing of row  (** baseline row absent from the fresh run *)

let check ~tolerance ~baseline ~fresh =
  let fresh_tbl = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace fresh_tbl (key r) r) fresh;
  let verdicts = ref [] in
  List.iter
    (fun base ->
      match Hashtbl.find_opt fresh_tbl (key base) with
      | None -> verdicts := Missing base :: !verdicts
      | Some f ->
          let hi = float_of_int base.ns *. (1. +. tolerance) in
          let lo = float_of_int base.ns *. (1. -. tolerance) in
          if float_of_int f.ns > hi then verdicts := Regression (f, base.ns) :: !verdicts
          else if float_of_int f.ns < lo then
            verdicts := Improvement (f, base.ns) :: !verdicts)
    baseline;
  List.rev !verdicts
