(** Clustered DFS benchmark: the {!Sp_cluster} sharded cluster under a
    closed-loop client load (paper_1993 model).  Each row runs a fixed
    op budget at one node count, twice — lease-cached and the leaseless
    control — and reports aggregate throughput, warm (zero-message)
    hits, and the directly-measured messages-per-reopen of both arms. *)

type row = {
  d_nodes : int;
  d_clients : int;
  d_ops : int;  (** client ops completed, both arms alike *)
  d_elapsed_ns : int;  (** leased arm makespan *)
  d_throughput : float;  (** leased ops per simulated second *)
  d_warm_hits : int;  (** opens served with zero messages *)
  d_ctl_elapsed_ns : int;  (** leaseless control makespan *)
  d_open_msgs : float;  (** messages per warm reopen (leased — 0) *)
  d_ctl_open_msgs : float;  (** messages per reopen, leaseless *)
}

val run_row : nodes:int -> seed:int -> row

(** The dfs table (default 1 / 2 / 4 / 8 nodes). *)
val run : ?nodes:int list -> ?seed:int -> unit -> row list

val print : Format.formatter -> row list -> unit
