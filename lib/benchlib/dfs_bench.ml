(* Clustered DFS benchmark: the sharded, lease-cached cluster under a
   closed-loop client load (paper_1993 model).

   Two questions per row:

   - Sharding: does aggregate throughput grow with node count?  Every
     client owns one top-level component, components hash across the N
     shards, so server-side work spreads over the nodes while the total
     op budget stays fixed — elapsed time should fall as N grows.

   - Leases: what does the lease cache buy?  Each row runs an identical
     leaseless control ([lease_ns = 0]) and reports both arms' elapsed
     time plus the directly-measured messages-per-reopen: a lease-held
     reopen is zero-message; the control pays RPCs for every open. *)

module F = Sp_core.File
module CL = Sp_cluster.Cluster
module N = Sp_naming.Sname

type row = {
  d_nodes : int;
  d_clients : int;
  d_ops : int;  (* client ops completed, both arms alike *)
  d_elapsed_ns : int;  (* leased arm makespan *)
  d_throughput : float;  (* leased ops per simulated second *)
  d_warm_hits : int;  (* opens served with zero messages *)
  d_ctl_elapsed_ns : int;  (* leaseless control makespan *)
  d_open_msgs : float;  (* messages per warm reopen (leased) *)
  d_ctl_open_msgs : float;  (* messages per reopen, leaseless *)
}

let clients = 8
let ops_per_client = 48
let arrival_gap_ns = 2_000
let instances = ref 0

(* One arm: C closed-loop clients, each on its own top-level component
   (so placement spreads by hash), mostly warm reopens and reads with a
   write/sync share.  Returns (elapsed, opens, warm hits). *)
let arm ?lease_ns ~nodes ~seed () =
  incr instances;
  let tag = Printf.sprintf "dfsb%d" !instances in
  let net = Sp_dfs.Net.create ~seed () in
  let t = CL.make ~name:tag ?lease_ns ~net ~nodes () in
  Fun.protect ~finally:(fun () -> CL.shutdown t) @@ fun () ->
  let warm = ref 0 in
  let data = Bytes.make 4096 'd' and patch = Bytes.make 1024 'w' in
  let client k () =
    Sp_sched.sleep (k * arrival_gap_ns);
    let c = CL.connect t ~node:(Printf.sprintf "%s-c%d" tag k) in
    let dir = Printf.sprintf "c%d" k in
    CL.mkdir c (N.of_string dir);
    let path = N.of_string (dir ^ "/f") in
    let f = CL.create c path in
    ignore (F.write f ~pos:0 data);
    CL.sync_path c path;
    for i = 1 to ops_per_client do
      let g = CL.open_file c path in
      if i mod 4 = 0 then begin
        ignore (F.write g ~pos:0 patch);
        if i mod 8 = 0 then CL.sync_path c path
      end
      else ignore (F.read g ~pos:0 ~len:1024)
    done;
    warm := !warm + (CL.client_stats c).CL.cs_warm_hits
  in
  let t0 = Sp_sim.Simclock.now () in
  ignore (Sp_sched.run ~seed (List.init clients client));
  let elapsed = max 1 (Sp_sim.Simclock.now () - t0) in
  (elapsed, !warm)

(* Messages per reopen, measured directly: one client, one warmed file,
   32 back-to-back opens.  Leased this is 0; leaseless it is the
   per-open RPC bill. *)
let open_msgs ?lease_ns ~nodes ~seed () =
  incr instances;
  let tag = Printf.sprintf "dfsb%d" !instances in
  let net = Sp_dfs.Net.create ~seed () in
  let t = CL.make ~name:tag ?lease_ns ~net ~nodes () in
  Fun.protect ~finally:(fun () -> CL.shutdown t) @@ fun () ->
  let c = CL.connect t ~node:(tag ^ "-m") in
  CL.mkdir c (N.of_string "m");
  let path = N.of_string "m/f" in
  let f = CL.create c path in
  ignore (F.write f ~pos:0 (Bytes.make 512 'm'));
  CL.sync_path c path;
  ignore (CL.open_file c path);
  let m0 = (Sp_dfs.Net.stats net).Sp_dfs.Net.messages in
  for _ = 1 to 32 do
    ignore (CL.open_file c path)
  done;
  float_of_int ((Sp_dfs.Net.stats net).Sp_dfs.Net.messages - m0) /. 32.

let run_row ~nodes ~seed =
  Sp_sim.Cost_model.with_model Sp_sim.Cost_model.paper_1993 @@ fun () ->
  let elapsed, warm = arm ~nodes ~seed () in
  let ctl_elapsed, _ = arm ~lease_ns:0 ~nodes ~seed () in
  let total = clients * ops_per_client in
  {
    d_nodes = nodes;
    d_clients = clients;
    d_ops = total;
    d_elapsed_ns = elapsed;
    d_throughput = float_of_int total /. (float_of_int elapsed /. 1e9);
    d_warm_hits = warm;
    d_ctl_elapsed_ns = ctl_elapsed;
    d_open_msgs = open_msgs ~nodes ~seed ();
    d_ctl_open_msgs = open_msgs ~lease_ns:0 ~nodes ~seed ();
  }

let run ?(nodes = [ 1; 2; 4; 8 ]) ?(seed = 7) () =
  List.map (fun n -> run_row ~nodes:n ~seed) nodes

let print ppf rows =
  Format.fprintf ppf
    "DFS scaling: sharded cluster, lease cache vs leaseless control \
     (paper_1993)@.";
  Format.fprintf ppf
    "  (%d closed-loop clients, one top-level component each, fixed op \
     budget)@."
    clients;
  Format.fprintf ppf "  %6s %7s %12s %12s %10s %11s %11s@." "nodes" "ops"
    "elapsed" "ops/sec" "warm" "msgs/open" "ctl msgs";
  List.iter
    (fun r ->
      let ms ns = Printf.sprintf "%.1fms" (float_of_int ns /. 1e6) in
      Format.fprintf ppf "  %6d %7d %12s %12.0f %10d %11.1f %11.1f@." r.d_nodes
        r.d_ops (ms r.d_elapsed_ns) r.d_throughput r.d_warm_hits r.d_open_msgs
        r.d_ctl_open_msgs)
    rows;
  (match rows with
  | r :: _ ->
      Format.fprintf ppf
        "  (leaseless control at %d node%s: elapsed %s vs %s leased)@."
        r.d_nodes
        (if r.d_nodes = 1 then "" else "s")
        (Printf.sprintf "%.1fms" (float_of_int r.d_ctl_elapsed_ns /. 1e6))
        (Printf.sprintf "%.1fms" (float_of_int r.d_elapsed_ns /. 1e6))
  | [] -> ())
