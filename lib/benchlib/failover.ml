(* Failover ablation: supervised restart of a crashed pager layer.

   A client VMM holds a warm cache over a coherency layer; the layer's
   serving domain is fail-stopped and the supervisor restarts it.  The
   table reports how the restart latency (kill to first successful read
   through the supervised handle, including the supervisor's backoff)
   and the reconciliation bill (clean pages dropped for refetch, dirty
   unsynced pages lost) scale with the size of the client cache. *)

module F = Sp_core.File
module S = Sp_core.Stackable
module DL = Sp_sfs.Disk_layer

let ps = Sp_vm.Vm_types.page_size

type row = {
  f_cached : int;  (* clean pages resident at the kill *)
  f_dirty : int;  (* dirty (unsynced) pages at the kill *)
  f_restart_ns : int;  (* kill -> first successful read *)
  f_rewarm_ns : int;  (* kill -> every reconciled page refetched *)
  f_clean : int;  (* pages reconciled clean (refetchable) *)
  f_lost : int;  (* dirty pages reported lost *)
}

type t = row list

let row ~pages =
  Sp_sim.Cost_model.with_model Sp_sim.Cost_model.paper_1993 @@ fun () ->
  let tag = Printf.sprintf "fo%d" pages in
  let disk = Sp_blockdev.Disk.create ~label:tag ~blocks:4096 () in
  DL.mkfs ~journal:true disk;
  let vmm = Sp_vm.Vmm.create ~node:"local" (tag ^ ".vmm") in
  let levels =
    [
      Sp_supervise.level ~name:(tag ^ ".disk") (fun ~lower:_ ->
          DL.mount ~name:(tag ^ ".disk") disk);
      Sp_supervise.level ~name:(tag ^ ".coh") (fun ~lower ->
          let fs = Sp_coherency.Coherency_layer.make ~vmm ~name:(tag ^ ".coh") () in
          S.stack_on fs (Option.get lower);
          fs);
    ]
  in
  let sup = Sp_supervise.supervise ~name:tag levels in
  Fun.protect ~finally:(fun () -> Sp_supervise.unsupervise sup) @@ fun () ->
  let fs = Sp_supervise.handle sup in
  let hot = Sp_naming.Sname.of_string "hot" in
  let f = S.create fs hot in
  for p = 0 to pages - 1 do
    ignore (F.write f ~pos:(p * ps) (Bytes.make ps 'c'))
  done;
  S.sync fs;
  (* Touch every page so the cache is warm and clean, then dirty a
     quarter of it without syncing. *)
  for p = 0 to pages - 1 do
    ignore (F.read f ~pos:(p * ps) ~len:1)
  done;
  let dirty = max 1 (pages / 4) in
  for p = 0 to dirty - 1 do
    ignore (F.write f ~pos:(p * ps) (Bytes.make ps 'd'))
  done;
  let c0, l0 = Sp_vm.Vmm.reconciled vmm in
  Sp_supervise.kill sup (tag ^ ".coh");
  let t0 = Sp_sim.Simclock.now () in
  let g = Sp_supervise.call (fun () -> S.open_file fs hot) in
  ignore (Sp_supervise.call (fun () -> F.read g ~pos:0 ~len:ps));
  let dt = Sp_sim.Simclock.now () - t0 in
  for p = 1 to pages - 1 do
    ignore (F.read g ~pos:(p * ps) ~len:1)
  done;
  let rewarm = Sp_sim.Simclock.now () - t0 in
  let c1, l1 = Sp_vm.Vmm.reconciled vmm in
  {
    f_cached = pages;
    f_dirty = dirty;
    f_restart_ns = dt;
    f_rewarm_ns = rewarm;
    f_clean = c1 - c0;
    f_lost = l1 - l0;
  }

let run () = List.map (fun p -> row ~pages:p) [ 4; 16; 64 ]

(* Availability under live load: the concurrent layer-crash sweep at
   increasing client counts.  Each row samples a few kill points per
   layer (stride = clients, so two boundaries per layer) and reports the
   client-visible bill: ops that needed an availability retry, ops shed
   or failed, and the worst kill -> served-again gap.  The deadline
   scales with the client count like the CLI default — queueing alone
   makes tail latency grow with load. *)

type avail_row = {
  a_clients : int;
  a_points : int;  (* kill points sampled *)
  a_served : int;  (* of which fully served *)
  a_lost : int;
  a_corrupt : int;
  a_op_served : int;  (* client ops completed across all points *)
  a_retried : int;  (* of which only after an availability retry *)
  a_shed : int;
  a_failed : int;
  a_deadline_misses : int;
  a_recover_ns : int;  (* worst kill -> first-served-again gap *)
}

let avail_row ~clients =
  let r =
    Sp_failover.Layer_crash_sweep.sweep ~stride:clients ~clients
      ~op_deadline_ns:(max 1_000_000_000 (clients * 100_000_000))
      ~ops:16 ~seed:7 ()
  in
  let open Sp_failover.Layer_crash_sweep in
  {
    a_clients = clients;
    a_points = r.fr_points;
    a_served = r.fr_served;
    a_lost = r.fr_lost;
    a_corrupt = r.fr_corrupt;
    a_op_served = r.fr_op_served;
    a_retried = r.fr_op_retried;
    a_shed = r.fr_op_shed;
    a_failed = r.fr_op_failed;
    a_deadline_misses = r.fr_deadline_misses;
    a_recover_ns = r.fr_max_recover_ns;
  }

let avail () = List.map (fun c -> avail_row ~clients:c) [ 10; 64; 1000 ]

let print_avail ppf rows =
  Format.fprintf ppf
    "@[<v>Availability under load: layer kills with live concurrent clients@,";
  Format.fprintf ppf
    "  (sampled kill points per layer; every client op under an Sp_avail@,";
  Format.fprintf ppf
    "   deadline, retry and circuit breaker; deadline = max(1s, 100ms x \
     clients))@,";
  Format.fprintf ppf "  %8s %7s %7s %10s %8s %6s %7s %9s %s@," "clients"
    "points" "served" "ops" "retried" "shed" "failed" "misses" "worst recover";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %8d %7d %7d %10d %8d %6d %7d %9d %s@," r.a_clients
        r.a_points r.a_served r.a_op_served r.a_retried r.a_shed r.a_failed
        r.a_deadline_misses
        (Format.asprintf "%a" Sp_sim.Simclock.pp_duration r.a_recover_ns))
    rows;
  Format.fprintf ppf "@]"

let print ppf t =
  Format.fprintf ppf
    "@[<v>Failover ablation: supervised pager-layer restart (paper_1993 model)@,";
  Format.fprintf ppf
    "  (fail-stop the coherency layer under a warm client cache; the supervisor@,";
  Format.fprintf ppf
    "   restarts it and the client VMM reconciles stale pages on reconnect)@,";
  Format.fprintf ppf "  %-13s %-8s %-16s %-16s %s@," "cached pages" "dirty"
    "restart latency" "rewarm latency" "reconciled";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-13d %-8d %-16s %-16s %d clean / %d lost@,"
        r.f_cached r.f_dirty
        (Format.asprintf "%a" Sp_sim.Simclock.pp_duration r.f_restart_ns)
        (Format.asprintf "%a" Sp_sim.Simclock.pp_duration r.f_rewarm_ns)
        r.f_clean r.f_lost)
    t;
  Format.fprintf ppf "@]"
