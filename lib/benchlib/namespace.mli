(** Namespace-at-scale benchmark (ISSUE 7): what the hashed directory
    index and the coherent name cache buy.

    Three tables, all deterministic under [paper_1993]:

    - {b cold open vs directory size}, flat layout (mounted with
      [~dir_index:false]) against the hashed index.  Opens are sampled
      after [drop_caches], so a flat lookup re-reads the whole
      directory (linear in size) while an indexed lookup reads the
      root plus one bucket chain (flat curve).
    - {b name cache} under the macro open/read/stat mix on the
      two-domain stack: hit ratio plus warm-hit and cold-miss open
      latency.  A warm hit resolves without any door crossing.
    - {b readdir throughput}: cursor-streaming a large indexed
      directory cold, per-entry cost included. *)

type open_row = {
  no_entries : int;  (** files in the directory *)
  no_flat_ns : int option;  (** cold open, flat layout; [None] above the flat build budget *)
  no_indexed_ns : int;  (** cold open, hashed index *)
}

type cache_row = {
  nc_opens : int;  (** opens issued through the cache *)
  nc_hits : int;
  nc_misses : int;
  nc_hit_pct : int;  (** hits * 100 / opens *)
  nc_cold_ns : int;  (** mean open latency on a cache miss (full walk) *)
  nc_warm_ns : int;  (** mean open latency on a cache hit *)
}

type readdir_row = {
  nr_entries : int;
  nr_ns : int;  (** cold cursor stream of the whole directory *)
  nr_per_entry_ns : int;
}

type t = {
  t_opens : open_row list;
  t_cache : cache_row;
  t_readdir : readdir_row;
}

val run : unit -> t
val print : Format.formatter -> t -> unit
