(** Machine-readable benchmark rows and the perf-regression guard.

    [bench/main.exe -- --json FILE] serialises every simulated table to
    [FILE] as a JSON array of [{table, label, ns}] objects; the committed
    snapshot (BENCH_7.json) is the baseline CI compares fresh runs
    against with [--check-perf]. *)

type row = { table : string; label : string; ns : int }

val to_string : row list -> string

exception Bad_json of string

(** Parse rows emitted by {!to_string} (a minimal parser for that flat
    shape, not general JSON).  Raises {!Bad_json} on malformed input. *)
val parse : string -> row list

type verdict =
  | Regression of row * int
      (** fresh row slower than baseline beyond tolerance; [int] is the
          baseline ns *)
  | Improvement of row * int
      (** fresh row faster than baseline beyond tolerance — refresh the
          committed snapshot to lock the gain in *)
  | Missing of row  (** baseline row absent from the fresh run *)

(** Compare a fresh run against the committed baseline.  [tolerance] is a
    fraction (0.10 = ±10%).  Rows only present in the fresh run are new
    benchmarks and pass silently. *)
val check : tolerance:float -> baseline:row list -> fresh:row list -> verdict list
