module F = Sp_core.File
module S = Sp_core.Stackable
module W = Workload

let ps = Sp_vm.Vm_types.page_size

type result = { label : string; baseline_ns : int; variant_ns : int; note : string }

let with_paper_model f = Sp_sim.Cost_model.with_model Sp_sim.Cost_model.paper_1993 f

let name_cache () =
  with_paper_model (fun () ->
      let inst = W.make_instance W.Stacked_two_domains in
      let name = Sp_naming.Sname.of_string "bench" in
      let plain = W.avg_ns (fun () -> ignore (S.open_file inst.W.i_fs name)) in
      let cache = Sp_naming.Name_cache.create ~capacity:64 () in
      ignore (S.open_file_cached cache inst.W.i_fs name);
      let cached =
        W.avg_ns (fun () -> ignore (S.open_file_cached cache inst.W.i_fs name))
      in
      {
        label = "open, two domains: name cache off/on";
        baseline_ns = plain;
        variant_ns = cached;
        note = "paper 6.4: name caching eliminates the stacked open overhead";
      })

let make_remote tag =
  let net = Sp_dfs.Net.create () in
  let vmm_a = Sp_vm.Vmm.create ~node:(tag ^ "-srv") ("vmm-" ^ tag) in
  let disk = Sp_blockdev.Disk.create ~blocks:2048 () in
  Sp_sfs.Disk_layer.mkfs disk;
  let sfs =
    Sp_coherency.Spring_sfs.make_split ~node:(tag ^ "-srv") ~vmm:vmm_a
      ~name:("sfs-" ^ tag) ~same_domain:false disk
  in
  let dfs =
    Sp_dfs.Dfs.make_server ~node:(tag ^ "-srv") ~net ~vmm:vmm_a ~name:("dfs-" ^ tag) ()
  in
  S.stack_on dfs sfs;
  ignore (S.create dfs (Sp_naming.Sname.of_string "bench"));
  let import = Sp_dfs.Dfs.import ~net ~client_node:(tag ^ "-cli") dfs in
  let remote = S.open_file import (Sp_naming.Sname.of_string "bench") in
  ignore (F.write remote ~pos:0 (Bytes.make ps 'r'));
  let vmm_b = Sp_vm.Vmm.create ~node:(tag ^ "-cli") ("vmm-cli-" ^ tag) in
  let cfs = Sp_cfs.Cfs.make ~node:(tag ^ "-cli") ~vmm:vmm_b ~name:("cfs-" ^ tag) () in
  (remote, cfs, vmm_b)

let cfs_stat () =
  with_paper_model (fun () ->
      let remote, cfs, _ = make_remote "abl-stat" in
      let bare = W.avg_ns ~iters:20 (fun () -> ignore (F.stat remote)) in
      let local = Sp_cfs.Cfs.interpose cfs remote in
      ignore (F.stat local);
      let interposed = W.avg_ns ~iters:20 (fun () -> ignore (F.stat local)) in
      {
        label = "remote stat: without/with CFS";
        baseline_ns = bare;
        variant_ns = interposed;
        note = "CFS caches attributes locally (6.2)";
      })

let cfs_read () =
  with_paper_model (fun () ->
      let remote, cfs, _ = make_remote "abl-read" in
      let bare =
        W.avg_ns ~iters:20 (fun () -> ignore (F.read remote ~pos:0 ~len:ps))
      in
      let local = Sp_cfs.Cfs.interpose cfs remote in
      ignore (F.read local ~pos:0 ~len:ps);
      let interposed =
        W.avg_ns ~iters:20 (fun () -> ignore (F.read local ~pos:0 ~len:ps))
      in
      {
        label = "remote 4KB read: without/with CFS";
        baseline_ns = bare;
        variant_ns = interposed;
        note = "CFS maps the file and serves reads from the local VMM";
      })

let dfs_map_vs_rpc () =
  with_paper_model (fun () ->
      let remote, _, vmm_b = make_remote "abl-map" in
      let rpc = W.avg_ns ~iters:20 (fun () -> ignore (F.read remote ~pos:0 ~len:ps)) in
      let m = Sp_vm.Vmm.map vmm_b remote.F.f_mem in
      ignore (Sp_vm.Vmm.read m ~pos:0 ~len:ps);
      let mapped = W.avg_ns ~iters:20 (fun () -> ignore (Sp_vm.Vmm.read m ~pos:0 ~len:ps)) in
      {
        label = "remote 4KB read: rpc vs local mapping";
        baseline_ns = rpc;
        variant_ns = mapped;
        note = "binding forwards to the remote pager once; later reads hit the VMM";
      })

let readahead () =
  with_paper_model (fun () ->
      (* Where read-ahead pays in this architecture: bulk transfer over a
         channel with per-request cost — a remote client's mapped
         sequential read through DFS (each page-in is an RPC). *)
      let remote_sequential_ns ~adaptive tag =
        let remote, _, vmm_b = make_remote tag in
        let total = 32 * ps in
        ignore (F.write remote ~pos:0 (Bytes.make total 's'));
        F.sync remote;
        Sp_vm.Vmm.set_adaptive vmm_b adaptive;
        let m = Sp_vm.Vmm.map vmm_b remote.F.f_mem in
        let t0 = Sp_sim.Simclock.now () in
        for i = 0 to (total / ps) - 1 do
          ignore (Sp_vm.Vmm.read m ~pos:(i * ps) ~len:ps)
        done;
        Sp_sim.Simclock.now () - t0
      in
      let off = remote_sequential_ns ~adaptive:false "abl-ra-off" in
      let on = remote_sequential_ns ~adaptive:true "abl-ra-on" in
      {
        label = "remote sequential 128KB read: adaptive readahead off/on";
        baseline_ns = off;
        variant_ns = on;
        note = "paper 8: the per-entry window doubles as the run continues";
      })

(* Towers of increasing depth over one SFS: depth 1 = SFS alone, then
   +cryptfs, +compfs, +coherency. *)
let depth_sweep () =
  with_paper_model (fun () ->
      let measure depth tag =
        let inst = W.make_instance ~tag W.Stacked_two_domains in
        let vmm = inst.W.i_vmm in
        let node = "local" in
        let add fs = function
          | "cryptfs" ->
              let l =
                Sp_cryptfs.Cryptfs.make ~node ~vmm ~name:(tag ^ "-crypt")
                  ~key:"k" ()
              in
              S.stack_on l fs;
              l
          | "compfs" ->
              let l = Sp_compfs.Compfs.make ~node ~vmm ~name:(tag ^ "-comp") () in
              S.stack_on l fs;
              l
          | "coherency" ->
              let l =
                Sp_coherency.Coherency_layer.make ~node ~vmm ~name:(tag ^ "-coh") ()
              in
              S.stack_on l fs;
              l
          | t -> invalid_arg t
        in
        let wanted = List.filteri (fun i _ -> i < depth - 1)
            [ "cryptfs"; "compfs"; "coherency" ]
        in
        let top = List.fold_left add inst.W.i_fs wanted in
        let f = S.create top (Sp_naming.Sname.of_string "d") in
        ignore (F.write f ~pos:0 (Bytes.make ps 'd'));
        ignore (S.open_file top (Sp_naming.Sname.of_string "d"));
        ignore (F.read f ~pos:0 ~len:ps);
        let open_ns =
          W.avg_ns ~iters:20 (fun () ->
              ignore (S.open_file top (Sp_naming.Sname.of_string "d")))
        in
        let read_ns =
          W.avg_ns ~iters:20 (fun () -> ignore (F.read f ~pos:0 ~len:ps))
        in
        (depth, open_ns, read_ns)
      in
      List.map
        (fun d -> measure d (Printf.sprintf "abl-depth%d" d))
        [ 1; 2; 3; 4 ])

let print_depth_sweep ppf rows =
  Format.fprintf ppf
    "Stack-depth sweep (layers above the disk layer; warm caches)@.";
  Format.fprintf ppf "  %-7s %12s %12s@." "depth" "open (us)" "read4k (us)";
  List.iter
    (fun (d, o, r) ->
      Format.fprintf ppf "  %-7d %12.0f %12.0f@." d
        (float_of_int o /. 1e3) (float_of_int r /. 1e3))
    rows

let run_all () =
  [ name_cache (); cfs_stat (); cfs_read (); dfs_map_vs_rpc (); readahead () ]

let print ppf results =
  Format.fprintf ppf "Ablations (simulated 1993 model)@.";
  let us ns = Printf.sprintf "%.1fus" (float_of_int ns /. 1e3) in
  List.iter
    (fun r ->
      let ratio = float_of_int r.baseline_ns /. float_of_int (max 1 r.variant_ns) in
      let ratio_str = if ratio > 999. then ">999x" else Printf.sprintf "%.1fx" ratio in
      Format.fprintf ppf "  %-42s %10s -> %10s (%6s)  [%s]@." r.label
        (us r.baseline_ns) (us r.variant_ns) ratio_str r.note)
    results
