(* Integrity ablation: what end-to-end checksums cost and what they buy.

   Three panels, all under the paper_1993 cost model:

   - the checksum tax: the same write/sync/cold-read workload on a
     journaled volume with the checksum region disabled vs enabled
     (extra device writes are the checksum blocks riding each journal
     commit; extra time is hashing plus those writes);

   - scrubber throughput: a filled volume with a few deliberately rotted
     blocks, scanned detect-only, then again with a mirror twin supplying
     replacements, then once more to show the volume comes back clean;

   - mirror self-heal latency: a cold read of a mirrored file whose
     primary copy has a rotted block, against the same cold read with
     both twins clean (the difference is the detect + re-read + rewrite
     bill). *)

module D = Sp_blockdev.Disk
module DL = Sp_sfs.Disk_layer
module F = Sp_core.File
module S = Sp_core.Stackable

let ps = Sp_vm.Vm_types.page_size

type overhead_row = {
  o_checksums : bool;
  o_ns : int;  (* simulated time for the whole workload *)
  o_writes : int;  (* device writes it issued *)
}

type scrub_row = {
  s_label : string;
  s_scanned : int;
  s_bad : int;
  s_repaired : int;
  s_ns : int;
}

type heal_row = {
  h_pages : int;  (* file size *)
  h_clean_ns : int;  (* cold read, both twins clean *)
  h_heal_ns : int;  (* cold read that detects and heals one rotted copy *)
  h_repairs : int;
}

type t = {
  t_overhead : overhead_row list;
  t_scrub : scrub_row list;
  t_heal : heal_row list;
}

(* -------------------------------------------------------------- *)

let overhead ~checksums =
  Sp_sim.Cost_model.with_model Sp_sim.Cost_model.paper_1993 @@ fun () ->
  let tag = if checksums then "sc-ov-on" else "sc-ov-off" in
  let disk = D.create ~label:tag ~blocks:2048 () in
  DL.mkfs ~journal:true ~checksums disk;
  let fs = DL.mount ~name:(tag ^ ".fs") disk in
  D.reset_stats disk;
  let t0 = Sp_sim.Simclock.now () in
  let f = S.create fs (Sp_naming.Sname.of_string "big") in
  for p = 0 to 63 do
    ignore (F.write f ~pos:(p * ps) (Bytes.make ps 'o'))
  done;
  S.sync fs;
  S.drop_caches fs;
  for p = 0 to 63 do
    ignore (F.read f ~pos:(p * ps) ~len:ps)
  done;
  let dt = Sp_sim.Simclock.now () - t0 in
  { o_checksums = checksums; o_ns = dt; o_writes = (D.stats disk).D.writes }

(* -------------------------------------------------------------- *)

(* Fill a volume with one large file so the data area is in use. *)
let filled tag =
  let disk = D.create ~label:tag ~blocks:2048 () in
  DL.mkfs ~journal:true disk;
  let fs = DL.mount ~name:(tag ^ ".fs") disk in
  let f = S.create fs (Sp_naming.Sname.of_string "fill") in
  for p = 0 to 255 do
    ignore (F.write f ~pos:(p * ps) (Bytes.make ps (Char.chr (0x40 + (p land 0x3f)))))
  done;
  S.sync fs;
  disk

(* Flip a byte in [n] in-use checksum-covered blocks, scanning from the
   top of the device (the data area) down. *)
let rot_blocks disk n =
  let layout = Sp_sfs.Layout.decode_superblock (D.read disk 0) in
  let c = Option.get (Sp_sfs.Csum.attach disk layout) in
  let rotted = ref 0 in
  let b = ref (layout.Sp_sfs.Layout.total_blocks - 1) in
  while !rotted < n && !b > 0 do
    if Sp_sfs.Csum.covers c !b then begin
      let data = D.read disk !b in
      if Bytes.exists (fun ch -> ch <> '\000') data then begin
        Bytes.set data 0 (Char.chr (Char.code (Bytes.get data 0) lxor 0x01));
        D.write disk !b data;
        incr rotted
      end
    end;
    decr b
  done

let scrub_rows () =
  Sp_sim.Cost_model.with_model Sp_sim.Cost_model.paper_1993 @@ fun () ->
  let da = filled "sc-scrubA" in
  let db = filled "sc-scrubB" in
  rot_blocks da 3;
  let row label r repaired =
    {
      s_label = label;
      s_scanned = r.Sp_integrity.Scrubber.sr_scanned;
      s_bad = r.Sp_integrity.Scrubber.sr_bad;
      s_repaired = repaired;
      s_ns = r.Sp_integrity.Scrubber.sr_ns;
    }
  in
  let detect = Sp_integrity.Scrubber.run da in
  let repair =
    Sp_integrity.Scrubber.run
      ~repair_with:(Sp_integrity.Scrubber.from_device db)
      da
  in
  let clean = Sp_integrity.Scrubber.run da in
  [
    row "detect only" detect 0;
    row "repair from twin" repair repair.Sp_integrity.Scrubber.sr_repaired;
    row "re-scan after repair" clean 0;
  ]

(* -------------------------------------------------------------- *)

let heal ~pages =
  Sp_sim.Cost_model.with_model Sp_sim.Cost_model.paper_1993 @@ fun () ->
  let tag = Printf.sprintf "sc-heal%d" pages in
  let mk lbl =
    let d = D.create ~label:lbl ~blocks:2048 () in
    DL.mkfs ~journal:true d;
    (d, DL.mount ~name:lbl d)
  in
  let da, fa = mk (tag ^ "A") in
  let _db, fb = mk (tag ^ "B") in
  let vmm = Sp_vm.Vmm.create ~node:"local" (tag ^ ".vmm") in
  let mirror = Sp_mirrorfs.Mirrorfs.make ~vmm ~name:(tag ^ ".m") () in
  S.stack_on mirror fa;
  S.stack_on mirror fb;
  let f = S.create mirror (Sp_naming.Sname.of_string "h") in
  for p = 0 to pages - 1 do
    ignore (F.write f ~pos:(p * ps) (Bytes.make ps 'h'))
  done;
  S.sync mirror;
  let cold_read () =
    Sp_vm.Vmm.drop_caches vmm;
    S.drop_caches mirror;
    let t0 = Sp_sim.Simclock.now () in
    ignore (F.read_all f);
    Sp_sim.Simclock.now () - t0
  in
  let clean_ns = cold_read () in
  (* Rot one data block of the primary copy directly on the device. *)
  let layout = Sp_sfs.Layout.decode_superblock (D.read da 0) in
  let c = Option.get (Sp_sfs.Csum.attach da layout) in
  let b = ref (layout.Sp_sfs.Layout.total_blocks - 1) in
  while
    not
      (Sp_sfs.Csum.covers c !b
      && Bytes.length (D.read da !b) > 0
      && Bytes.get (D.read da !b) 0 = 'h')
  do
    decr b
  done;
  let data = D.read da !b in
  Bytes.set data 0 'X';
  D.write da !b data;
  let r0 = Sp_mirrorfs.Mirrorfs.repairs mirror in
  let heal_ns = cold_read () in
  {
    h_pages = pages;
    h_clean_ns = clean_ns;
    h_heal_ns = heal_ns;
    h_repairs = Sp_mirrorfs.Mirrorfs.repairs mirror - r0;
  }

(* -------------------------------------------------------------- *)

let run () =
  {
    t_overhead = [ overhead ~checksums:false; overhead ~checksums:true ];
    t_scrub = scrub_rows ();
    t_heal = List.map (fun p -> heal ~pages:p) [ 4; 16; 64 ];
  }

let print ppf t =
  Format.fprintf ppf
    "@[<v>Integrity ablation: block checksums, scrubbing, self-healing (paper_1993 model)@,";
  Format.fprintf ppf "  checksum tax (64-page write + sync + cold read-back):@,";
  Format.fprintf ppf "  %-12s %-16s %s@," "checksums" "workload time" "device writes";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-12s %-16s %d@,"
        (if r.o_checksums then "on" else "off")
        (Format.asprintf "%a" Sp_sim.Simclock.pp_duration r.o_ns)
        r.o_writes)
    t.t_overhead;
  Format.fprintf ppf "  scrub of a filled 2048-block volume, 3 rotted blocks:@,";
  Format.fprintf ppf "  %-22s %-9s %-5s %-9s %s@," "pass" "scanned" "bad" "repaired"
    "scan time";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-22s %-9d %-5d %-9d %s@," r.s_label r.s_scanned r.s_bad
        r.s_repaired
        (Format.asprintf "%a" Sp_sim.Simclock.pp_duration r.s_ns))
    t.t_scrub;
  Format.fprintf ppf "  mirror self-heal: cold read with one rotted primary block:@,";
  Format.fprintf ppf "  %-8s %-16s %-18s %s@," "pages" "clean read" "read + self-heal"
    "repairs";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-8d %-16s %-18s %d@," r.h_pages
        (Format.asprintf "%a" Sp_sim.Simclock.pp_duration r.h_clean_ns)
        (Format.asprintf "%a" Sp_sim.Simclock.pp_duration r.h_heal_ns)
        r.h_repairs)
    t.t_heal;
  Format.fprintf ppf "@]"
