module F = Sp_core.File
module W = Workload

let ps = Sp_vm.Vm_types.page_size

type row = { label : string; off_ns : int; on_ns : int; note : string }

let with_paper_model f = Sp_sim.Cost_model.with_model Sp_sim.Cost_model.paper_1993 f

let with_bulk on f =
  let saved = Sp_bulk.enabled () in
  Sp_bulk.set_enabled on;
  Fun.protect ~finally:(fun () -> Sp_bulk.set_enabled saved) f

(* Warm 4KB read/write on the two-domain stack: the copy tax the bulk
   path removes.  Off = classic marshalling (full door cost + one copy
   per crossing); on = by-reference handoff over an established bulk
   channel. *)
let warm_rw enabled tag =
  with_paper_model (fun () ->
      with_bulk enabled (fun () ->
          let inst = W.make_instance ~tag W.Stacked_two_domains in
          let data = Bytes.make ps 'b' in
          let read =
            W.avg_ns (fun () -> ignore (F.read inst.W.i_file ~pos:0 ~len:ps))
          in
          let write =
            W.avg_ns (fun () -> ignore (F.write inst.W.i_file ~pos:0 data))
          in
          (read, write)))

(* Cold sequential 128KB mapped read through DFS: bulk transfer plus the
   adaptive read-ahead window batching page-in RPCs. *)
let remote_sequential enabled tag =
  with_paper_model (fun () ->
      with_bulk enabled (fun () ->
          let remote, _, vmm_b = Ablations.make_remote tag in
          let total = 32 * ps in
          ignore (F.write remote ~pos:0 (Bytes.make total 's'));
          F.sync remote;
          Sp_vm.Vmm.set_adaptive vmm_b enabled;
          let m = Sp_vm.Vmm.map vmm_b remote.F.f_mem in
          let t0 = Sp_sim.Simclock.now () in
          for i = 0 to (total / ps) - 1 do
            ignore (Sp_vm.Vmm.read m ~pos:(i * ps) ~len:ps)
          done;
          Sp_sim.Simclock.now () - t0))

(* Sync of a 32-page dirty file: per-page pushes vs one vectored extent
   (one seek + one contiguous transfer at the disk layer). *)
let clustered_sync clustered tag =
  with_paper_model (fun () ->
      let inst = W.make_instance ~tag W.Stacked_two_domains in
      Sp_vm.Vmm.set_clustered inst.W.i_vmm clustered;
      (* Allocate and sync once so the measured sync is steady-state
         writeback, not first-touch block allocation. *)
      ignore (F.write inst.W.i_file ~pos:0 (Bytes.make (32 * ps) 'c'));
      F.sync inst.W.i_file;
      ignore (F.write inst.W.i_file ~pos:0 (Bytes.make (32 * ps) 'd'));
      let t0 = Sp_sim.Simclock.now () in
      F.sync inst.W.i_file;
      Sp_sim.Simclock.now () - t0)

let run () =
  let read_off, write_off = warm_rw false "bulk-off" in
  let read_on, write_on = warm_rw true "bulk-on" in
  let seq_off = remote_sequential false "bulk-seq-off" in
  let seq_on = remote_sequential true "bulk-seq-on" in
  let sync_off = clustered_sync false "bulk-sync-off" in
  let sync_on = clustered_sync true "bulk-sync-on" in
  [
    {
      label = "warm 4KB read, two domains";
      off_ns = read_off;
      on_ns = read_on;
      note = "bulk channel hands the page across by reference";
    };
    {
      label = "warm 4KB write, two domains";
      off_ns = write_off;
      on_ns = write_on;
      note = "one copy into the shared bulk buffer, none at the source";
    };
    {
      label = "remote sequential 128KB mapped read";
      off_ns = seq_off;
      on_ns = seq_on;
      note = "adaptive read-ahead batches page-in RPCs over the bulk path";
    };
    {
      label = "sync 32 dirty pages";
      off_ns = sync_off;
      on_ns = sync_on;
      note = "clustered writeback: one vectored extent, one seek";
    };
  ]

let print ppf rows =
  Format.fprintf ppf "Bulk data path (off -> on; simulated 1993 model)@.";
  let us ns = Printf.sprintf "%.1fus" (float_of_int ns /. 1e3) in
  List.iter
    (fun r ->
      let ratio = float_of_int r.off_ns /. float_of_int (max 1 r.on_ns) in
      Format.fprintf ppf "  %-38s %10s -> %10s (%5.1fx)  [%s]@." r.label
        (us r.off_ns) (us r.on_ns) ratio r.note)
    rows
