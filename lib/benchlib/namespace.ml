(* Namespace-at-scale benchmark: open latency against directory size for
   the flat layout vs the hashed index, name-cache behaviour under the
   macro mix, and cursor-readdir throughput.  Everything is a
   deterministic simulation under [paper_1993]; cold numbers follow a
   [drop_caches], so the flat baseline pays one disk read per directory
   block on every lookup while the index pays the root plus one bucket
   chain. *)

module S = Sp_core.Stackable
module Sname = Sp_naming.Sname
module W = Workload

type open_row = {
  no_entries : int;
  no_flat_ns : int option;
  no_indexed_ns : int;
}

type cache_row = {
  nc_opens : int;
  nc_hits : int;
  nc_misses : int;
  nc_hit_pct : int;
  nc_cold_ns : int;
  nc_warm_ns : int;
}

type readdir_row = { nr_entries : int; nr_ns : int; nr_per_entry_ns : int }

type t = {
  t_opens : open_row list;
  t_cache : cache_row;
  t_readdir : readdir_row;
}

let sizes = [ 1_024; 4_096; 32_768; 1_048_576 ]

(* Flat creation re-reads the whole directory per create (quadratic), so
   the flat baseline stops here; the trend is established well before. *)
let flat_budget = 4_096

let instances = ref 0

let fname i = Printf.sprintf "d/f%05d" i

(* A bare disk layer: no coherency layer, one domain, so the row
   isolates directory mechanics rather than stack crossings. *)
let setup_dir ~dir_index ~entries =
  incr instances;
  let name = Printf.sprintf "ns%d" !instances in
  let disk =
    Sp_blockdev.Disk.create ~label:("disk-" ^ name)
      ~blocks:((entries / 4) + 4096)
      ()
  in
  Sp_sfs.Disk_layer.mkfs ~checksums:false ~inodes:(entries + 64) disk;
  let fs = Sp_sfs.Disk_layer.mount ~dir_index ~name disk in
  S.mkdir fs (Sname.of_string "d");
  for i = 0 to entries - 1 do
    ignore (S.create fs (Sname.of_string (fname i)));
    (* Evict periodically or the million-entry build drowns in live
       [File.t]s and cached inodes (the ls scenario does the same). *)
    if (i + 1) land 0xffff = 0 then S.drop_caches fs
  done;
  fs

(* Mean cold open over a spread of positions in the directory —
   first, last, and middles — so flat rows average the linear scan
   rather than sampling one lucky offset. *)
let cold_open_ns fs ~entries =
  let samples = 8 in
  let total = ref 0 in
  for k = 0 to samples - 1 do
    let i = k * (entries - 1) / (samples - 1) in
    let path = Sname.of_string (fname i) in
    total :=
      !total
      + W.avg_ns_cold ~iters:2
          ~cool:(fun () -> S.drop_caches fs)
          (fun () -> ignore (S.open_file fs path))
  done;
  !total / samples

let open_rows () =
  List.map
    (fun entries ->
      let indexed =
        let fs = setup_dir ~dir_index:true ~entries in
        cold_open_ns fs ~entries
      in
      let flat =
        if entries > flat_budget then None
        else
          Some
            (let fs = setup_dir ~dir_index:false ~entries in
             cold_open_ns fs ~entries)
      in
      { no_entries = entries; no_flat_ns = flat; no_indexed_ns = indexed })
    sizes

(* Name cache under the macro open mix: the two-domain stack (every
   uncached resolve crosses two doors), [rounds] passes over the same
   working set.  Round one misses and fills; later rounds hit. *)
let cache_row () =
  let files = 64 and rounds = 6 in
  let inst = W.make_instance ~tag:"nscache" Stacked_two_domains in
  let fs = inst.W.i_fs in
  let names =
    Array.init files (fun i -> Sname.of_string (Printf.sprintf "f%03d" i))
  in
  Array.iter (fun n -> ignore (S.create fs n)) names;
  S.sync fs;
  let cache = Sp_naming.Name_cache.create ~capacity:(2 * files) () in
  let round () =
    let t0 = Sp_sim.Simclock.now () in
    Array.iter (fun n -> ignore (S.open_file_cached cache fs n)) names;
    Sp_sim.Simclock.now () - t0
  in
  let cold = round () in
  let warm = ref 0 in
  for _ = 2 to rounds do
    warm := !warm + round ()
  done;
  let st = Sp_naming.Name_cache.stats cache in
  let opens = rounds * files in
  {
    nc_opens = opens;
    nc_hits = st.Sp_naming.Name_cache.hits;
    nc_misses = st.Sp_naming.Name_cache.misses;
    nc_hit_pct = 100 * st.Sp_naming.Name_cache.hits / opens;
    nc_cold_ns = cold / files;
    nc_warm_ns = !warm / ((rounds - 1) * files);
  }

let readdir_row () =
  let entries = 32_768 in
  let fs = setup_dir ~dir_index:true ~entries in
  S.drop_caches fs;
  let t0 = Sp_sim.Simclock.now () in
  let seen = S.fold_dir fs (Sname.of_string "d") (fun acc _ -> acc + 1) 0 in
  let ns = Sp_sim.Simclock.now () - t0 in
  assert (seen = entries);
  { nr_entries = entries; nr_ns = ns; nr_per_entry_ns = ns / entries }

let run () =
  Sp_sim.Cost_model.with_model Sp_sim.Cost_model.paper_1993 @@ fun () ->
  { t_opens = open_rows (); t_cache = cache_row (); t_readdir = readdir_row () }

let print ppf t =
  Format.fprintf ppf
    "Namespace: cold open latency vs directory size (paper_1993, bare disk \
     layer)@.";
  Format.fprintf ppf "  %10s %12s %12s@." "entries" "flat" "indexed";
  List.iter
    (fun r ->
      let us ns = Printf.sprintf "%.1fus" (float_of_int ns /. 1e3) in
      Format.fprintf ppf "  %10d %12s %12s@." r.no_entries
        (match r.no_flat_ns with Some ns -> us ns | None -> "-")
        (us r.no_indexed_ns))
    t.t_opens;
  let c = t.t_cache in
  Format.fprintf ppf
    "  name cache (two domains, %d opens): %d%% hits; miss %.1fus, hit %.1fus@."
    c.nc_opens c.nc_hit_pct
    (float_of_int c.nc_cold_ns /. 1e3)
    (float_of_int c.nc_warm_ns /. 1e3);
  let r = t.t_readdir in
  Format.fprintf ppf
    "  readdir: %d entries streamed cold in %.1fms (%dns/entry)@." r.nr_entries
    (float_of_int r.nr_ns /. 1e6)
    r.nr_per_entry_ns
