(** Ablation benchmarks for the design points DESIGN.md calls out. *)

type result = { label : string; baseline_ns : int; variant_ns : int; note : string }

(** §6.4: split-domain open with and without the name cache. *)
val name_cache : unit -> result

(** A DFS-imported remote file plus a client-side CFS and VMM (shared by
    the remote-path ablations and {!Bulk_bench}). *)
val make_remote : string -> Sp_core.File.t * Sp_cfs.Cfs.t * Sp_vm.Vmm.t

(** §6.2 CFS: remote stat and 4KB read with and without CFS interposed. *)
val cfs_stat : unit -> result

val cfs_read : unit -> result

(** Remote 4KB read through DFS file interface vs through a mapped remote
    file (the VMM path CFS enables). *)
val dfs_map_vs_rpc : unit -> result

(** §8 extension: cold sequential read of a 128 KB file with the VMM's
    adaptive read-ahead off vs on (no manual window). *)
val readahead : unit -> result

(** Stacking-depth sweep: warm open and cached 4KB read cost for towers of
    1..4 layers (the "without sacrificing performance" claim).  Returns
    [(depth, open_ns, read_ns)] rows. *)
val depth_sweep : unit -> (int * int * int) list

val print_depth_sweep : Format.formatter -> (int * int * int) list -> unit

val run_all : unit -> result list

val print : Format.formatter -> result list -> unit
