(** Multi-client scale benchmark: N concurrent clients ([Sp_sched] tasks)
    over one shared two-domain SFS stack under the [paper_1993] model,
    reporting throughput and tail latency (p50/p99/p999 of the per-op
    virtual latency) plus total queue-wait time.  Each row spends the
    same fixed op budget ([budget / clients] ops per client, at least
    one), with arrivals staggered by a fixed inter-client gap, so rows
    compare equal work at different concurrency.  One row is one
    deterministic discrete-event run. *)

type row = {
  sc_clients : int;
  sc_ops : int;  (** total operations completed across all clients *)
  sc_elapsed_ns : int;  (** virtual time from first arrival to last completion *)
  sc_throughput : float;  (** operations per simulated second *)
  sc_p50_ns : int;
  sc_p99_ns : int;
  sc_p999_ns : int;
  sc_queue_ns : int;  (** total time tasks spent waiting in queues *)
  sc_switches : int;  (** scheduler dispatches *)
  sc_syncs : int;  (** client-issued syncs (sync-heavy mode; else 0) *)
  sc_commits : int;  (** journal transactions those syncs produced *)
  sc_absorbed : int;  (** syncs absorbed into another caller's commit *)
  sc_sync_p99_ns : int;  (** p99 latency of the sync calls themselves *)
}

(** One row at the given concurrency.  [dir_heavy] swaps the op mix for
    a namespace one — opens by compound name, cursor readdir batches,
    and create/remove churn against a shared indexed directory.  [deep]
    swaps the stack for a deep one: compression over a mirror of two
    two-domain bases, so each op crosses several doors and writes fan
    out to both replicas.  [sync_heavy] journals the base volume and
    swaps the mix for all-writes with a sync every 4th op per client —
    the row then also reports syncs, journal commits, absorbed syncs and
    sync-call p99, which is what the journal group-commit table plots
    ([sync_heavy] excludes [dir_heavy]/[deep]). *)
val run_row :
  ?budget:int ->
  ?dir_heavy:bool ->
  ?deep:bool ->
  ?sync_heavy:bool ->
  clients:int ->
  seed:int ->
  unit ->
  row

(** The scale table (default 10 / 1k / 100k clients, 10k-op budget). *)
val run : ?clients:int list -> ?budget:int -> ?seed:int -> unit -> row list

(** [label] names the stack in the table header (the deep stack of
    [run_row ~deep:true] is not the default two-domain one). *)
val print : ?label:string -> Format.formatter -> row list -> unit
