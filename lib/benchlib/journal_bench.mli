(** Journal group-commit benchmark: {!Scale}'s sync-heavy mix (journaled
    base, a sync every 4th op per client) at growing concurrency,
    reporting syncs per commit, absorbed syncs and sync-call p99 — the
    batching the group-commit window buys under concurrent durability
    load.  One row is one deterministic discrete-event run. *)

type row = Scale.row

val run_row : clients:int -> seed:int -> unit -> row

(** The journal table (default 1 / 64 / 1000 clients). *)
val run : ?clients:int list -> ?seed:int -> unit -> row list

val print : Format.formatter -> row list -> unit
