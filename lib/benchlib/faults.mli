(** Faults ablation: what the write-ahead journal costs and buys.

    Two sub-tables printed beside Table 2/3: the write-path overhead of
    journaling (same workload on an unjournaled vs journaled disk layer,
    simulated time and device writes) as the transaction size varies, and
    the crash-recovery time of {!Sp_sfs.Disk_layer.recover} as a function
    of the interrupted transaction's size (the volume is crashed with an
    {!Sp_fault} fail-stop at the first home write of a sealed commit).
    All timings run under the [paper_1993] cost model. *)

type overhead_row = {
  o_txn_blocks : int;  (** data blocks written per transaction *)
  o_txns : int;
  o_raw_ns : int;  (** journal off: simulated time *)
  o_raw_writes : int;  (** journal off: device writes *)
  o_jl_ns : int;  (** journal on *)
  o_jl_writes : int;
}

type recovery_row = {
  r_txn_blocks : int;  (** blocks in the sealed, interrupted commit *)
  r_replayed : int;  (** blocks replay copied home *)
  r_recover_ns : int;  (** simulated time of [Disk_layer.recover] *)
}

type t = { overhead : overhead_row list; recovery : recovery_row list }

val run : unit -> t
val print : Format.formatter -> t -> unit
