(** Benchmarks for the bulk data path: zero-copy transfers ([Sp_bulk]),
    adaptive read-ahead and clustered writeback, each measured with the
    optimisation off and on under the [paper_1993] model. *)

type row = {
  label : string;
  off_ns : int;  (** optimisation disabled *)
  on_ns : int;  (** optimisation enabled (the default configuration) *)
  note : string;
}

val run : unit -> row list

val print : Format.formatter -> row list -> unit
