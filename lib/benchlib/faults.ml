module F = Sp_core.File
module S = Sp_core.Stackable
module DL = Sp_sfs.Disk_layer

let bs = Sp_blockdev.Disk.block_size
let with_paper_model f = Sp_sim.Cost_model.with_model Sp_sim.Cost_model.paper_1993 f

type overhead_row = {
  o_txn_blocks : int;
  o_txns : int;
  o_raw_ns : int;
  o_raw_writes : int;
  o_jl_ns : int;
  o_jl_writes : int;
}

type recovery_row = { r_txn_blocks : int; r_replayed : int; r_recover_ns : int }
type t = { overhead : overhead_row list; recovery : recovery_row list }

let mount_fresh ~tag ~journal =
  let disk = Sp_blockdev.Disk.create ~label:tag ~blocks:2048 () in
  DL.mkfs ~journal disk;
  (disk, DL.mount ~name:tag disk)

let run_txns fs ~txns ~blocks_per_txn =
  let f = S.create fs (Sp_naming.Sname.of_string "wal-bench") in
  for t = 0 to txns - 1 do
    for b = 0 to blocks_per_txn - 1 do
      ignore (F.write f ~pos:(((t * blocks_per_txn) + b) * bs) (Bytes.make bs 'j'))
    done;
    S.sync fs
  done

let overhead_row ~txns ~blocks_per_txn =
  let measure journal tag =
    with_paper_model (fun () ->
        let disk, fs = mount_fresh ~tag ~journal in
        let w0 = (Sp_blockdev.Disk.stats disk).Sp_blockdev.Disk.writes in
        let t0 = Sp_sim.Simclock.now () in
        run_txns fs ~txns ~blocks_per_txn;
        ( Sp_sim.Simclock.now () - t0,
          (Sp_blockdev.Disk.stats disk).Sp_blockdev.Disk.writes - w0 ))
  in
  let raw_ns, raw_writes =
    measure false (Printf.sprintf "fb-raw-%d" blocks_per_txn)
  in
  let jl_ns, jl_writes = measure true (Printf.sprintf "fb-jl-%d" blocks_per_txn) in
  {
    o_txn_blocks = blocks_per_txn;
    o_txns = txns;
    o_raw_ns = raw_ns;
    o_raw_writes = raw_writes;
    o_jl_ns = jl_ns;
    o_jl_writes = jl_writes;
  }

(* Crash the volume at the first home write of a sealed commit, then time
   recovery.  The commit's device-write count is learned from a dry run
   on an identical volume: a commit of m blocks issues m journal writes,
   a seal, m home writes, and a clean header (2m + 2 total). *)
let recovery_row ~txn_blocks =
  with_paper_model (fun () ->
      let prepare tag =
        let disk, fs = mount_fresh ~tag ~journal:true in
        let f = S.create fs (Sp_naming.Sname.of_string "wal-bench") in
        S.sync fs;
        for b = 0 to txn_blocks - 1 do
          ignore (F.write f ~pos:(b * bs) (Bytes.make bs 'r'))
        done;
        (disk, fs)
      in
      let dry_disk, dry_fs = prepare (Printf.sprintf "fb-dry-%d" txn_blocks) in
      let w0 = (Sp_blockdev.Disk.stats dry_disk).Sp_blockdev.Disk.writes in
      S.sync dry_fs;
      let sync_writes =
        (Sp_blockdev.Disk.stats dry_disk).Sp_blockdev.Disk.writes - w0
      in
      let m = (sync_writes - 2) / 2 in
      let tag = Printf.sprintf "fb-rec-%d" txn_blocks in
      let disk, fs = prepare tag in
      let plan =
        Sp_fault.plan
          [ Sp_fault.rule ~point:"disk.write" ~label:tag ~after:(m + 1) ~count:1
              Sp_fault.Fail_stop ]
      in
      (try Sp_fault.with_plan plan (fun () -> S.sync fs)
       with Sp_fault.Crash _ -> ());
      let t0 = Sp_sim.Simclock.now () in
      let replayed = DL.recover disk in
      { r_txn_blocks = m; r_replayed = replayed; r_recover_ns = Sp_sim.Simclock.now () - t0 })

let run () =
  {
    overhead =
      List.map (fun b -> overhead_row ~txns:5 ~blocks_per_txn:b) [ 4; 16; 64 ];
    recovery = List.map (fun b -> recovery_row ~txn_blocks:b) [ 8; 32; 96 ];
  }

let print ppf t =
  let ratio a b = if a = 0 then 0. else float b /. float a in
  Format.fprintf ppf "@[<v>Faults ablation: write-ahead journal (crash recovery)@,";
  Format.fprintf ppf
    "  write overhead (5 transactions, one sync each; paper_1993 model):@,";
  Format.fprintf ppf "  %-11s %-22s %-22s %s@," "blocks/txn" "journal=off"
    "journal=on" "overhead";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-11d %-22s %-22s %.2fx time, %.2fx writes@,"
        r.o_txn_blocks
        (Format.asprintf "%a, %d wr" Sp_sim.Simclock.pp_duration r.o_raw_ns
           r.o_raw_writes)
        (Format.asprintf "%a, %d wr" Sp_sim.Simclock.pp_duration r.o_jl_ns
           r.o_jl_writes)
        (ratio r.o_raw_ns r.o_jl_ns)
        (ratio r.o_raw_writes r.o_jl_writes))
    t.overhead;
  Format.fprintf ppf
    "  (a ratio below 1x means the journal's in-memory coalescing of repeated@,\
    \   metadata-block writes outweighs its 2m+2 writes per m-block commit)@,";
  Format.fprintf ppf
    "  recovery (fail-stop at the first home write of a sealed commit):@,";
  Format.fprintf ppf "  %-11s %-10s %s@," "txn blocks" "replayed" "recovery time";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-11d %-10d %a@," r.r_txn_blocks r.r_replayed
        Sp_sim.Simclock.pp_duration r.r_recover_ns)
    t.recovery;
  Format.fprintf ppf "@]"
