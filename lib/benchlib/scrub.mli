(** Integrity ablation: the cost of end-to-end block checksums and what
    they buy — the checksum tax on a write/read workload, scrubber
    throughput over a rotted volume (detect-only vs repairing from a
    mirror twin), and mirror self-heal latency on a cold read. *)

type overhead_row = { o_checksums : bool; o_ns : int; o_writes : int }

type scrub_row = {
  s_label : string;
  s_scanned : int;
  s_bad : int;
  s_repaired : int;
  s_ns : int;
}

type heal_row = {
  h_pages : int;
  h_clean_ns : int;
  h_heal_ns : int;
  h_repairs : int;
}

type t = {
  t_overhead : overhead_row list;
  t_scrub : scrub_row list;
  t_heal : heal_row list;
}

val run : unit -> t
val print : Format.formatter -> t -> unit
