(** Simulated block device.

    Substitute for the paper's 424 MB 4400 RPM SCSI disk: an in-memory
    array of 4 KB blocks behind a latency model (seek distance + rotational
    delay + media transfer), charged to the virtual clock.  Sequential
    access to adjacent blocks skips the seek, which is enough to give the
    disk layer's allocation policy observable consequences. *)

(** Block size in bytes (4096, equal to the VM page size). *)
val block_size : int

type t

type stats = { reads : int; writes : int; seeks : int }

(** [create ~blocks ()] makes a zero-filled device of [blocks] blocks.
    [label] defaults to ["disk0"]. *)
val create : ?label:string -> blocks:int -> unit -> t

val label : t -> string
val block_count : t -> int

(** [read t n] returns a copy of block [n].  Raises [Invalid_argument] on
    out-of-range indices.  Consults the armed {!Sp_fault} plan at point
    ["disk.read"] (label = the disk's label): injected faults surface as
    [Sp_core.Fserr.Io_error] or [Sp_fault.Crash]; a [Bitrot] fault flips
    one bit of the stored block (persistently) and returns success. *)
val read : t -> int -> bytes

(** [write t n data] stores [data] (at most one block; shorter data is
    zero-padded) into block [n].  Consults {!Sp_fault} at ["disk.write"]:
    besides [Io_error]/[Crash], a torn-write fault persists only a prefix
    of [data] and leaves the tail of the previous block contents in
    place; [Bitrot] stores the data with one bit flipped;
    [Misdirected_write] stores it at some other block, leaving [n]
    untouched; [Lost_write] acks (and charges) without storing anything.
    The last three report success — only checksums can tell. *)
val write : t -> int -> bytes -> unit

(** [write_vec ?check t [(n, data); ...]] writes the blocks as one
    elevator request: under a scheduler run the device is acquired once
    for the whole extent, so adjacent blocks pay only the per-block
    transfer and no concurrent request can move the head mid-extent.
    [check] (default no-op) runs before every block — callers pass their
    incarnation fence so a fiber whose mount died mid-extent stops
    instead of finishing the vector.  {!Sp_fault} is consulted per block
    at ["disk.write"], exactly as for N separate {!write}s, so
    crash-sweep injection points are preserved. *)
val write_vec : ?check:(unit -> unit) -> t -> (int * bytes) list -> unit

val stats : t -> stats

val reset_stats : t -> unit
