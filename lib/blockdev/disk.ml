let block_size = 4096

type stats = { reads : int; writes : int; seeks : int }

type t = {
  label : string;
  blocks : bytes array;
  mutable head : int;  (* current head position, block index *)
  mutable reads : int;
  mutable writes : int;
  mutable seeks : int;
}

let create ?(label = "disk0") ~blocks () =
  if blocks <= 0 then invalid_arg "Disk.create: blocks must be positive";
  {
    label;
    blocks = Array.init blocks (fun _ -> Bytes.make block_size '\000');
    head = 0;
    reads = 0;
    writes = 0;
    seeks = 0;
  }

let label t = t.label
let block_count t = Array.length t.blocks

let check t n =
  if n < 0 || n >= Array.length t.blocks then
    invalid_arg (Printf.sprintf "Disk %s: block %d out of range" t.label n)

(* Charge the latency of accessing block [n]: a seek (plus rotational delay)
   unless the head is already adjacent, then the media transfer. *)
let charge t n =
  let model = Sp_sim.Cost_model.current () in
  if n <> t.head && n <> t.head + 1 then begin
    t.seeks <- t.seeks + 1;
    Sp_sim.Simclock.advance (model.disk_seek_ns + model.disk_rotate_ns)
  end;
  Sp_sim.Simclock.advance model.disk_per_block_ns;
  t.head <- n

(* Flip one bit of the stored block: the rot is persistent — every later
   read of [n] sees the same flipped bit.  The device still acks. *)
let rot_block t n fraction =
  let bit = min ((block_size * 8) - 1) (int_of_float (fraction *. float_of_int (block_size * 8))) in
  let block = t.blocks.(n) in
  let byte = bit / 8 in
  Bytes.set block byte (Char.chr (Char.code (Bytes.get block byte) lxor (1 lsl (bit mod 8))))

let read t n =
  check t n;
  (match Sp_fault.consult ~point:"disk.read" ~label:t.label with
  | Sp_fault.Pass -> ()
  | Sp_fault.Fail_io msg ->
      (* The access was attempted: the head moved and time passed, but no
         data came back. *)
      charge t n;
      raise (Sp_core.Fserr.Io_error msg)
  | Sp_fault.Delayed ns -> Sp_sim.Simclock.advance ns
  | Sp_fault.Bit_rot fraction -> rot_block t n fraction
  | Sp_fault.Torn _ | Sp_fault.Torn_crash _ | Sp_fault.Dropped _
  | Sp_fault.Domain_died _ | Sp_fault.Misdirected _ | Sp_fault.Lost_write_ack ->
      (* not meaningful for a read; ignore *)
      ());
  charge t n;
  t.reads <- t.reads + 1;
  Sp_sim.Metrics.incr_disk_reads ();
  Bytes.copy t.blocks.(n)

let write t n data =
  check t n;
  if Bytes.length data > block_size then
    invalid_arg (Printf.sprintf "Disk %s: write larger than a block" t.label);
  (* Persist only a prefix of [data]; the tail of the block's previous
     contents survives.  This is what makes unjournaled metadata updates
     detectably inconsistent after a crash. *)
  let torn_write fraction =
    charge t n;
    t.writes <- t.writes + 1;
    Sp_sim.Metrics.incr_disk_writes ();
    let len = Bytes.length data in
    let keep = max 0 (min len (int_of_float (fraction *. float_of_int len))) in
    Bytes.blit data 0 t.blocks.(n) 0 keep
  in
  let store m =
    charge t m;
    t.writes <- t.writes + 1;
    Sp_sim.Metrics.incr_disk_writes ();
    let block = t.blocks.(m) in
    Bytes.fill block 0 block_size '\000';
    Bytes.blit data 0 block 0 (Bytes.length data)
  in
  match Sp_fault.consult ~point:"disk.write" ~label:t.label with
  | Sp_fault.Fail_io msg ->
      charge t n;
      raise (Sp_core.Fserr.Io_error msg)
  | Sp_fault.Torn fraction -> torn_write fraction
  | Sp_fault.Torn_crash fraction ->
      torn_write fraction;
      raise (Sp_fault.Crash (Printf.sprintf "crash after torn write to %s[%d]" t.label n))
  | Sp_fault.Bit_rot fraction ->
      (* the data rots on its way to the platter *)
      store n;
      rot_block t n fraction
  | Sp_fault.Misdirected fraction ->
      (* the block lands at a wrong LBA; the intended block is untouched *)
      let count = Array.length t.blocks in
      let m = min (count - 1) (int_of_float (fraction *. float_of_int count)) in
      let m = if m = n then (m + 1) mod count else m in
      store m
  | Sp_fault.Lost_write_ack ->
      (* acked and charged, but nothing reaches the media *)
      charge t n;
      t.writes <- t.writes + 1;
      Sp_sim.Metrics.incr_disk_writes ()
  | (Sp_fault.Pass | Sp_fault.Delayed _ | Sp_fault.Dropped _
    | Sp_fault.Domain_died _) as outcome ->
      (match outcome with
      | Sp_fault.Delayed ns -> Sp_sim.Simclock.advance ns
      | _ -> ());
      store n

let stats t = { reads = t.reads; writes = t.writes; seeks = t.seeks }

let reset_stats t =
  t.reads <- 0;
  t.writes <- 0;
  t.seeks <- 0
