let block_size = 4096

type stats = { reads : int; writes : int; seeks : int }

type t = {
  label : string;
  blocks : bytes option array;
      (* lazily materialised: [None] reads as zeros.  A million-file
         volume touches a sliver of its address space; a dense array of
         zero blocks would cost gigabytes of host memory up front. *)
  mutable head : int;  (* current head position, block index *)
  mutable reads : int;
  mutable writes : int;
  mutable seeks : int;
  (* Elevator queue (only used under an [Sp_sched] run): the device
     serves one request at a time; concurrent requesters park in
     [q_pending] and the releaser picks the next by SCAN order. *)
  mutable q_busy : bool;
  mutable q_pending : (int * int * (unit -> unit)) list;  (* block, seq, waker *)
  mutable q_seq : int;
  mutable q_epoch : int;
}

let create ?(label = "disk0") ~blocks () =
  if blocks <= 0 then invalid_arg "Disk.create: blocks must be positive";
  {
    label;
    blocks = Array.make blocks None;
    head = 0;
    reads = 0;
    writes = 0;
    seeks = 0;
    q_busy = false;
    q_pending = [];
    q_seq = 0;
    q_epoch = 0;
  }

let label t = t.label
let block_count t = Array.length t.blocks

let check t n =
  if n < 0 || n >= Array.length t.blocks then
    invalid_arg (Printf.sprintf "Disk %s: block %d out of range" t.label n)

let materialize t n =
  match t.blocks.(n) with
  | Some b -> b
  | None ->
      let b = Bytes.make block_size '\000' in
      t.blocks.(n) <- Some b;
      b

let all_zero data =
  let rec go i = i >= Bytes.length data || (Bytes.get data i = '\000' && go (i + 1)) in
  go 0

(* Charge the latency of accessing block [n]: a seek (plus rotational delay)
   unless the head is already adjacent, then the media transfer. *)
let charge_raw t n =
  let model = Sp_sim.Cost_model.current () in
  if n <> t.head && n <> t.head + 1 then begin
    t.seeks <- t.seeks + 1;
    Sp_sim.Simclock.advance (model.disk_seek_ns + model.disk_rotate_ns)
  end;
  Sp_sim.Simclock.advance model.disk_per_block_ns;
  t.head <- n

(* Take the device token, queueing behind the current request if the
   device is busy.  A woken waiter receives the token directly from the
   releaser, so [q_busy] stays set across the handoff. *)
let acquire t n =
  if t.q_epoch <> Sp_sched.epoch () then begin
    (* an aborted previous run never released; drop its state *)
    t.q_epoch <- Sp_sched.epoch ();
    t.q_busy <- false;
    t.q_pending <- []
  end;
  if not t.q_busy then t.q_busy <- true
  else begin
    t.q_seq <- t.q_seq + 1;
    let seq = t.q_seq in
    let t0 = Sp_sim.Simclock.now () in
    Sp_sched.suspend ~on:("disk:" ^ t.label) (fun wake ->
        t.q_pending <- (n, seq, wake) :: t.q_pending);
    Sp_sched.note_queue (Sp_sim.Simclock.now () - t0)
  end

(* SCAN (elevator): prefer the smallest pending block at or past the
   head, wrapping to the smallest overall; FIFO (seq) breaks ties. *)
let release t =
  match t.q_pending with
  | [] -> t.q_busy <- false
  | pending ->
      let ahead (b, _, _) = b >= t.head in
      let pick a b =
        let (ba, sa, _) = a and (bb, sb, _) = b in
        if (ba, sa) <= (bb, sb) then a else b
      in
      let best =
        match List.filter ahead pending with
        | x :: rest -> List.fold_left pick x rest
        | [] -> (
            match pending with
            | x :: rest -> List.fold_left pick x rest
            | [] -> assert false)
      in
      let (_, best_seq, wake) = best in
      t.q_pending <-
        List.filter (fun (_, s, _) -> s <> best_seq) t.q_pending;
      wake ()

(* Under a scheduler run the whole access (seek + rotate + transfer)
   holds the device; the requester charges its own service time so busy
   attribution stays with the task doing the I/O. *)
let charge t n =
  if Sp_sched.in_task () then begin
    acquire t n;
    Fun.protect ~finally:(fun () -> release t) (fun () -> charge_raw t n)
  end
  else charge_raw t n

(* Flip one bit of the stored block: the rot is persistent — every later
   read of [n] sees the same flipped bit.  The device still acks. *)
let rot_block t n fraction =
  let bit = min ((block_size * 8) - 1) (int_of_float (fraction *. float_of_int (block_size * 8))) in
  let block = materialize t n in
  let byte = bit / 8 in
  Bytes.set block byte (Char.chr (Char.code (Bytes.get block byte) lxor (1 lsl (bit mod 8))))

let read t n =
  check t n;
  (match Sp_fault.consult ~point:"disk.read" ~label:t.label with
  | Sp_fault.Pass -> ()
  | Sp_fault.Fail_io msg ->
      (* The access was attempted: the head moved and time passed, but no
         data came back. *)
      charge t n;
      raise (Sp_core.Fserr.Io_error msg)
  | Sp_fault.Delayed ns -> Sp_sim.Simclock.advance ns
  | Sp_fault.Bit_rot fraction -> rot_block t n fraction
  | Sp_fault.Torn _ | Sp_fault.Torn_crash _ | Sp_fault.Dropped _
  | Sp_fault.Domain_died _ | Sp_fault.Misdirected _ | Sp_fault.Lost_write_ack ->
      (* not meaningful for a read; ignore *)
      ());
  charge t n;
  t.reads <- t.reads + 1;
  Sp_sim.Metrics.incr_disk_reads ();
  match t.blocks.(n) with
  | Some b -> Bytes.copy b
  | None -> Bytes.make block_size '\000'

(* One block write with a pluggable latency charge: [write] passes the
   elevator-acquiring [charge]; [write_vec] holds the elevator across the
   whole extent and passes bare [charge_raw].  The fault plan is consulted
   per block either way, so a crash-at-every-write sweep sees the same
   injection points whether the blocks went out singly or vectored. *)
let write_with ~charge t n data =
  check t n;
  if Bytes.length data > block_size then
    invalid_arg (Printf.sprintf "Disk %s: write larger than a block" t.label);
  (* Persist only a prefix of [data]; the tail of the block's previous
     contents survives.  This is what makes unjournaled metadata updates
     detectably inconsistent after a crash. *)
  let torn_write fraction =
    charge t n;
    t.writes <- t.writes + 1;
    Sp_sim.Metrics.incr_disk_writes ();
    let len = Bytes.length data in
    let keep = max 0 (min len (int_of_float (fraction *. float_of_int len))) in
    Bytes.blit data 0 (materialize t n) 0 keep
  in
  let store m =
    charge t m;
    t.writes <- t.writes + 1;
    Sp_sim.Metrics.incr_disk_writes ();
    (* Writing zeros to a never-written block (mkfs clearing bitmaps and
       inode tables) leaves it unmaterialised. *)
    match t.blocks.(m) with
    | None when all_zero data -> ()
    | _ ->
        let block = materialize t m in
        Bytes.fill block 0 block_size '\000';
        Bytes.blit data 0 block 0 (Bytes.length data)
  in
  match Sp_fault.consult ~point:"disk.write" ~label:t.label with
  | Sp_fault.Fail_io msg ->
      charge t n;
      raise (Sp_core.Fserr.Io_error msg)
  | Sp_fault.Torn fraction -> torn_write fraction
  | Sp_fault.Torn_crash fraction ->
      torn_write fraction;
      raise (Sp_fault.Crash (Printf.sprintf "crash after torn write to %s[%d]" t.label n))
  | Sp_fault.Bit_rot fraction ->
      (* the data rots on its way to the platter *)
      store n;
      rot_block t n fraction
  | Sp_fault.Misdirected fraction ->
      (* the block lands at a wrong LBA; the intended block is untouched *)
      let count = Array.length t.blocks in
      let m = min (count - 1) (int_of_float (fraction *. float_of_int count)) in
      let m = if m = n then (m + 1) mod count else m in
      store m
  | Sp_fault.Lost_write_ack ->
      (* acked and charged, but nothing reaches the media *)
      charge t n;
      t.writes <- t.writes + 1;
      Sp_sim.Metrics.incr_disk_writes ()
  | (Sp_fault.Pass | Sp_fault.Delayed _ | Sp_fault.Dropped _
    | Sp_fault.Domain_died _) as outcome ->
      (match outcome with
      | Sp_fault.Delayed ns -> Sp_sim.Simclock.advance ns
      | _ -> ());
      store n

let write t n data = write_with ~charge t n data

(* Vectored write: the whole extent goes out as one elevator request —
   the device is acquired once, each block then pays only [charge_raw]
   (adjacent blocks skip the seek), and concurrent requesters cannot
   interleave and drag the head away mid-extent.  [check] (the caller's
   incarnation fence) runs before every block, and the fault plan is
   consulted per block, exactly as for N separate [write]s. *)
let write_vec ?(check = fun () -> ()) t writes =
  match writes with
  | [] -> ()
  | (n0, _) :: _ ->
      let go () =
        List.iter
          (fun (n, data) ->
            check ();
            write_with ~charge:(fun t n -> charge_raw t n) t n data)
          writes
      in
      if Sp_sched.in_task () then begin
        acquire t n0;
        Fun.protect ~finally:(fun () -> release t) go
      end
      else go ()

let stats t = { reads = t.reads; writes = t.writes; seeks = t.seeks }

let reset_stats t =
  t.reads <- 0;
  t.writes <- 0;
  t.seeks <- 0
