(* Sp_trace: span nesting, per-layer self-time accounting, the
   zero-overhead disabled path, and the Chrome trace-event export. *)

module F = Sp_core.File
module S = Sp_core.Stackable
module N = Sp_node.Node
module T = Sp_trace
module M = Sp_sim.Metrics

(* A small stacked world; [tag] keeps instance names unique per run
   (layer state registries are keyed by instance name). *)
let build_stack tag =
  let world = N.World.create () in
  let alpha = N.World.add_node world ("trace_" ^ tag) in
  ignore (N.add_disk alpha ~name:"disk0" ~blocks:2048);
  Sp_sfs.Disk_layer.mkfs (N.disk alpha "disk0");
  let sfs = N.mount_sfs alpha ~disk_name:"disk0" ~name:("trace_sfs_" ^ tag) in
  N.build_stack alpha ~base:sfs
    [ ("coherency", "trace_coh_" ^ tag); ("compfs", "trace_comp_" ^ tag) ]

let workload tag () =
  let top = build_stack tag in
  let f = S.create top (Util.name "f") in
  ignore (F.write f ~pos:0 (Bytes.make 4096 'x'));
  ignore (F.read f ~pos:0 ~len:4096);
  S.sync top

(* --- span nesting --- *)

let test_nesting () =
  Util.in_world (fun () ->
      let d1 = Sp_obj.Sdomain.create "t_nest_outer" in
      let d2 = Sp_obj.Sdomain.create "t_nest_mid" in
      let d3 = Sp_obj.Sdomain.create "t_nest_inner" in
      let (), trace =
        T.with_tracing (fun () ->
            Sp_obj.Door.call ~op:"outer" d1 (fun () ->
                Sp_obj.Door.call ~op:"mid" d2 (fun () ->
                    Sp_obj.Door.call ~op:"inner" d3 (fun () -> ()))))
      in
      (* Completion order: innermost closes first, root last. *)
      let ops = List.map (fun sp -> sp.T.sp_op) trace.T.tr_spans in
      Alcotest.(check (list string))
        "completion order" [ "inner"; "mid"; "outer"; "workload" ] ops;
      let by_op op = List.find (fun sp -> sp.T.sp_op = op) trace.T.tr_spans in
      Alcotest.(check int) "root depth" 0 (by_op "workload").T.sp_depth;
      Alcotest.(check int) "outer depth" 1 (by_op "outer").T.sp_depth;
      Alcotest.(check int) "mid depth" 2 (by_op "mid").T.sp_depth;
      Alcotest.(check int) "inner depth" 3 (by_op "inner").T.sp_depth;
      Alcotest.(check int) "inner's parent is mid" (by_op "mid").T.sp_id
        (by_op "inner").T.sp_parent;
      Alcotest.(check int) "mid's parent is outer" (by_op "outer").T.sp_id
        (by_op "mid").T.sp_parent;
      Alcotest.(check int) "outer's parent is root" trace.T.tr_root
        (by_op "outer").T.sp_parent;
      Alcotest.(check string) "dst is the serving domain" "t_nest_mid"
        (by_op "mid").T.sp_dst;
      Alcotest.(check string) "src is the calling domain" "t_nest_outer"
        (by_op "mid").T.sp_src)

let test_stack_depth () =
  Util.in_world (fun () ->
      let (), trace = T.with_tracing (workload "depth") in
      let max_depth =
        List.fold_left (fun acc sp -> max acc sp.T.sp_depth) 0 trace.T.tr_spans
      in
      (* file.write on compfs -> coherency -> sfs -> disk layer crossings
         (plus VMM traffic) must nest at least as deep as the stack. *)
      Alcotest.(check bool) "spans nest at least 4 deep" true (max_depth >= 4);
      let file_ops =
        List.filter
          (fun sp -> sp.T.sp_op = "file.read" || sp.T.sp_op = "file.write")
          trace.T.tr_spans
      in
      Alcotest.(check bool) "file ops recorded" true (List.length file_ops >= 2))

(* --- self-time accounting --- *)

let test_self_time_partitions_total () =
  Util.in_world ~model:Sp_sim.Cost_model.paper_1993 (fun () ->
      let (), trace = T.with_tracing (workload "selftime") in
      Alcotest.(check int) "nothing dropped" 0 trace.T.tr_dropped;
      Alcotest.(check bool) "simulated time elapsed" true (trace.T.tr_total_ns > 0);
      let span_sum =
        List.fold_left (fun acc sp -> acc + sp.T.sp_self_ns) 0 trace.T.tr_spans
      in
      Alcotest.(check int) "span self-times sum to total elapsed"
        trace.T.tr_total_ns span_sum;
      let agg_sum =
        List.fold_left (fun acc s -> acc + s.T.agg_self_ns) 0 (T.aggregate trace)
      in
      Alcotest.(check int) "per-layer self column sums to total elapsed"
        trace.T.tr_total_ns agg_sum;
      (* Self crossings partition the global counter the same way. *)
      let crossings =
        List.fold_left
          (fun acc sp -> acc + sp.T.sp_self_metrics.M.cross_domain_calls)
          0 trace.T.tr_spans
      in
      let root =
        List.find (fun sp -> sp.T.sp_id = trace.T.tr_root) trace.T.tr_spans
      in
      Alcotest.(check int) "self crossings sum to the root's inclusive delta"
        root.T.sp_metrics.M.cross_domain_calls crossings)

(* Under the scheduler the partition target changes from wall time to
   busy time: two interleaved tasks' spans each get exactly the service
   time they charged, queue waits land in [sp_queue_ns], and the span
   self-times sum to [tr_busy_ns] (which exceeds wall time whenever the
   tasks overlap at all). *)
let test_two_task_interleave_partitions_busy () =
  Util.in_world ~model:Sp_sim.Cost_model.paper_1993 (fun () ->
      let d = Sp_obj.Sdomain.create "t_il_srv" in
      let task () =
        for _ = 1 to 3 do
          Sp_obj.Door.call ~op:"il.work" d (fun () ->
              Sp_sim.Simclock.advance 1_000)
        done
      in
      let (), trace =
        T.with_tracing (fun () -> ignore (Sp_sched.run ~seed:3 [ task; task ]))
      in
      Alcotest.(check int) "nothing dropped" 0 trace.T.tr_dropped;
      Alcotest.(check bool) "two tasks overlapped: busy exceeds wall" true
        (trace.T.tr_busy_ns > trace.T.tr_total_ns);
      let span_sum =
        List.fold_left (fun acc sp -> acc + sp.T.sp_self_ns) 0 trace.T.tr_spans
      in
      Alcotest.(check int) "span self-times sum to total busy"
        trace.T.tr_busy_ns span_sum;
      (* Every work span belongs to a real task and none to the main
         context; each charged exactly its own service time plus the
         door crossing. *)
      let works = List.filter (fun sp -> sp.T.sp_op = "il.work") trace.T.tr_spans in
      Alcotest.(check int) "all six work spans recorded" 6 (List.length works);
      List.iter
        (fun sp ->
          Alcotest.(check bool) "work span is task-owned" true (sp.T.sp_task >= 0);
          Alcotest.(check bool) "span charged at least its advance" true
            (sp.T.sp_self_ns >= 1_000))
        works;
      let tasks =
        List.sort_uniq compare
          (List.filter_map
             (fun sp -> if sp.T.sp_op = "il.work" then Some sp.T.sp_task else None)
             works)
      in
      Alcotest.(check int) "work spans span both tasks" 2 (List.length tasks))

(* --- disabled path --- *)

let test_disabled_is_identical () =
  let run traced tag =
    Sp_sim.Simclock.reset ();
    Sp_sim.Metrics.reset ();
    Sp_sim.Cost_model.with_model Sp_sim.Cost_model.paper_1993 (fun () ->
        let before = M.snapshot () in
        let t0 = Sp_sim.Simclock.now () in
        if traced then ignore (T.with_tracing (workload tag))
        else workload tag ();
        ( M.diff ~before ~after:(M.snapshot ()),
          Sp_sim.Simclock.now () - t0 ))
  in
  let plain_m, plain_ns = run false "plain" in
  let traced_m, traced_ns = run true "traced" in
  Alcotest.(check string) "metrics snapshot diff identical"
    (Format.asprintf "%a" M.pp plain_m)
    (Format.asprintf "%a" M.pp traced_m);
  Alcotest.(check int) "simulated time identical" plain_ns traced_ns;
  Alcotest.(check bool) "tracing off outside with_tracing" false (T.enabled ())

let test_exception_tears_down () =
  Util.in_world (fun () ->
      (try
         ignore
           (T.with_tracing (fun () ->
                Sp_obj.Door.call (Sp_obj.Sdomain.create "t_exn") (fun () ->
                    failwith "boom")))
       with Failure _ -> ());
      Alcotest.(check bool) "disabled after exception" false (T.enabled ());
      (* and a fresh trace still works *)
      let (), trace = T.with_tracing (fun () -> ()) in
      Alcotest.(check int) "fresh trace has just the root" 1
        (List.length trace.T.tr_spans))

let test_ring_overflow_drops_oldest () =
  Util.in_world (fun () ->
      let d = Sp_obj.Sdomain.create "t_ring" in
      let (), trace =
        T.with_tracing ~capacity:4 (fun () ->
            for i = 1 to 10 do
              Sp_obj.Door.call ~op:(Printf.sprintf "op%d" i) d (fun () -> ())
            done)
      in
      (* 10 spans + root = 11 recorded; 4 kept. *)
      Alcotest.(check int) "dropped" 7 trace.T.tr_dropped;
      Alcotest.(check (list string))
        "newest spans survive, in order"
        [ "op8"; "op9"; "op10"; "workload" ]
        (List.map (fun sp -> sp.T.sp_op) trace.T.tr_spans))

(* --- Chrome trace-event export --- *)

(* Minimal recursive-descent JSON well-formedness check (no JSON library in
   the dependency set). *)
let validate_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = Alcotest.failf "invalid JSON at byte %d: %s" !pos msg in
  let peek () = if !pos >= n then fail "unexpected end of input" else s.[!pos] in
  let adv () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      adv ()
    done
  in
  let expect c =
    if peek () <> c then fail (Printf.sprintf "expected %c, got %c" c (peek ()));
    adv ()
  in
  let literal w =
    let l = String.length w in
    if !pos + l <= n && String.sub s !pos l = w then pos := !pos + l else fail w
  in
  let number () =
    let num c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    if not (num (peek ())) then fail "number";
    while !pos < n && num s.[!pos] do
      adv ()
    done
  in
  let string_lit () =
    expect '"';
    let fin = ref false in
    while not !fin do
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' ->
            adv ();
            fin := true
        | '\\' ->
            adv ();
            if !pos < n then adv ()
        | c when Char.code c < 0x20 -> fail "raw control char in string"
        | _ -> adv ()
    done
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' -> obj ()
    | '[' -> arr ()
    | '"' -> string_lit ()
    | 't' -> literal "true"
    | 'f' -> literal "false"
    | 'n' -> literal "null"
    | '-' | '0' .. '9' -> number ()
    | c -> fail (Printf.sprintf "unexpected %c" c)
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = '}' then adv ()
    else
      let rec members () =
        skip_ws ();
        string_lit ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | ',' ->
            adv ();
            members ()
        | '}' -> adv ()
        | _ -> fail "expected , or } in object"
      in
      members ()
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = ']' then adv ()
    else
      let rec items () =
        value ();
        skip_ws ();
        match peek () with
        | ',' ->
            adv ();
            items ()
        | ']' -> adv ()
        | _ -> fail "expected , or ] in array"
      in
      items ()
  in
  value ();
  skip_ws ();
  if !pos <> n then fail "trailing garbage"

let count_substring hay needle =
  let nl = String.length needle in
  let rec go from acc =
    if from + nl > String.length hay then acc
    else if String.sub hay from nl = needle then go (from + 1) (acc + 1)
    else go (from + 1) acc
  in
  go 0 0

let test_chrome_json () =
  Util.in_world ~model:Sp_sim.Cost_model.paper_1993 (fun () ->
      let (), trace = T.with_tracing (workload "chrome") in
      let json = T.chrome_json trace in
      validate_json json;
      Alcotest.(check int) "one complete event per span"
        (List.length trace.T.tr_spans)
        (count_substring json "\"ph\":\"X\"");
      Alcotest.(check bool) "has traceEvents key" true
        (count_substring json "\"traceEvents\"" = 1))

let test_chrome_json_escaping () =
  Util.in_world (fun () ->
      let d = Sp_obj.Sdomain.create "t_esc" in
      let (), trace =
        T.with_tracing (fun () ->
            Sp_obj.Door.call ~op:"odd \"op\"\\name\n" d (fun () -> ()))
      in
      validate_json (T.chrome_json trace))

let suite =
  [
    Alcotest.test_case "span nesting and parents" `Quick test_nesting;
    Alcotest.test_case "nesting matches stack depth" `Quick test_stack_depth;
    Alcotest.test_case "self-time partitions total" `Quick
      test_self_time_partitions_total;
    Alcotest.test_case "two-task interleave partitions busy" `Quick
      test_two_task_interleave_partitions_busy;
    Alcotest.test_case "disabled tracing changes nothing" `Quick
      test_disabled_is_identical;
    Alcotest.test_case "exception tears tracing down" `Quick
      test_exception_tears_down;
    Alcotest.test_case "ring overflow drops oldest" `Quick
      test_ring_overflow_drops_oldest;
    Alcotest.test_case "chrome json well-formed" `Quick test_chrome_json;
    Alcotest.test_case "chrome json escaping" `Quick test_chrome_json_escaping;
  ]
