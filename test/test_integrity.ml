module F = Sp_core.File
module S = Sp_core.Stackable
module D = Sp_blockdev.Disk
module DL = Sp_sfs.Disk_layer
module I = Sp_integrity.Integrityfs
module M = Sp_mirrorfs.Mirrorfs
module Scrub = Sp_integrity.Scrubber
module CS = Sp_integrity.Corruption_sweep

let ps = Sp_vm.Vm_types.page_size

(* ---------------- Integrityfs: the stackable checksum layer -------- *)

let make_integrity_stack tag =
  let vmm = Sp_vm.Vmm.create ~node:"local" (tag ^ "-vmm") in
  let lower =
    Sp_coherency.Spring_sfs.make_split ~vmm ~name:(tag ^ "-low") ~same_domain:false
      (Util.fresh_disk ~label:(tag ^ "-disk") ())
  in
  let ifs = I.make ~vmm ~name:(tag ^ "-int") () in
  S.stack_on ifs lower;
  (vmm, lower, ifs)

let test_integrityfs_passthrough () =
  Util.in_world (fun () ->
      let vmm, _lower, ifs = make_integrity_stack "ipass" in
      let f = S.create ifs (Util.name "a") in
      let data = Util.pattern_bytes (3 * ps) in
      ignore (F.write f ~pos:0 data);
      F.sync f;
      Sp_vm.Vmm.drop_caches vmm;
      Util.check_bytes "round-trip through the checksum layer" data (F.read_all f);
      Alcotest.(check bool) "re-read pages verified against recorded sums" true
        (I.verified ifs > 0);
      Alcotest.(check int) "no failures" 0 (I.failures ifs))

let test_integrityfs_detects_lower_mutation () =
  Util.in_world (fun () ->
      let vmm, lower, ifs = make_integrity_stack "irot" in
      let f = S.create ifs (Util.name "a") in
      ignore (F.write f ~pos:0 (Bytes.make (2 * ps) 'i'));
      F.sync f;
      (* Something below the layer silently changes bytes: write straight
         to the lower file, bypassing integrityfs. *)
      let low = S.open_file lower (Util.name "a") in
      ignore (F.write low ~pos:7 (Util.bytes_of_string "TAMPER"));
      F.sync low;
      Sp_vm.Vmm.drop_caches vmm;
      let fails0 = Sp_sim.Metrics.(snapshot ()).checksum_failures in
      (match F.read f ~pos:0 ~len:ps with
      | _ -> Alcotest.fail "tampered page served without a checksum error"
      | exception Sp_core.Fserr.Checksum_error _ -> ());
      Alcotest.(check int) "failure counted" 1 (I.failures ifs);
      Alcotest.(check bool) "metric bumped" true
        (Sp_sim.Metrics.(snapshot ()).checksum_failures > fails0);
      (* Even a full-page overwrite faults the tampered page in first and
         trips again — the layer never silently forgives.  Truncating
         discards the recorded sums with the data; a rewrite then reads
         clean. *)
      (match F.write f ~pos:0 (Bytes.make ps 'j') with
      | _ -> Alcotest.fail "overwrite of a tampered page must fault it in and trip"
      | exception Sp_core.Fserr.Checksum_error _ -> ());
      F.truncate f 0;
      ignore (F.write f ~pos:0 (Bytes.make ps 'j'));
      F.sync f;
      Sp_vm.Vmm.drop_caches vmm;
      Util.check_str "rewritten page reads clean" "jjjj" (F.read f ~pos:0 ~len:4))

(* ---------------- Scrubber over the on-disk checksum region -------- *)

(* Two identically-filled journaled volumes. *)
let filled_twin tag =
  let disk = D.create ~label:tag ~blocks:2048 () in
  DL.mkfs ~journal:true disk;
  let fs = DL.mount ~name:(tag ^ "-fs") disk in
  let f = S.create fs (Util.name "fill") in
  for p = 0 to 63 do
    ignore (F.write f ~pos:(p * ps) (Bytes.make ps (Char.chr (0x41 + (p land 0xf)))))
  done;
  S.sync fs;
  (disk, fs)

(* Flip one bit in [n] in-use, checksum-covered blocks (scanning from the
   top of the device, i.e. the data area). *)
let rot_blocks disk n =
  let layout = Sp_sfs.Layout.decode_superblock (D.read disk 0) in
  let c = Option.get (Sp_sfs.Csum.attach disk layout) in
  let rotted = ref [] in
  let b = ref (layout.Sp_sfs.Layout.total_blocks - 1) in
  while List.length !rotted < n && !b > 0 do
    if Sp_sfs.Csum.covers c !b then begin
      let data = D.read disk !b in
      if Bytes.exists (fun ch -> ch <> '\000') data then begin
        Bytes.set data 0 (Char.chr (Char.code (Bytes.get data 0) lxor 0x01));
        D.write disk !b data;
        rotted := !b :: !rotted
      end
    end;
    decr b
  done;
  !rotted

let test_scrubber_detects_and_repairs () =
  Util.in_world (fun () ->
      let da, fsa = filled_twin "scrubA" in
      let db, _ = filled_twin "scrubB" in
      let rotted = rot_blocks da 2 in
      Alcotest.(check int) "two blocks rotted" 2 (List.length rotted);
      let detect = Scrub.run da in
      Alcotest.(check int) "detect-only finds both" 2 detect.Scrub.sr_bad;
      Alcotest.(check int) "detect-only repairs nothing" 0 detect.Scrub.sr_repaired;
      Alcotest.(check bool) "scans the data area" true (detect.Scrub.sr_scanned > 64);
      let repair = Scrub.run ~repair_with:(Scrub.from_device db) da in
      Alcotest.(check int) "repairs both from the twin" 2 repair.Scrub.sr_repaired;
      let clean = Scrub.run da in
      Alcotest.(check int) "volume clean after repair" 0 clean.Scrub.sr_bad;
      (* And the repaired bytes are the right ones. *)
      S.drop_caches fsa;
      let got = F.read_all (S.open_file fsa (Util.name "fill")) in
      Alcotest.(check char) "first page content restored" 'A' (Bytes.get got 0))

let test_scrubber_without_checksum_region () =
  Util.in_world (fun () ->
      let disk = D.create ~label:"scrub-nocs" ~blocks:256 () in
      DL.mkfs ~checksums:false disk;
      let r = Scrub.run disk in
      Alcotest.(check int) "nothing to scan without a checksum region" 0
        r.Scrub.sr_scanned)

(* ---------------- Mirror self-healing ------------------------------ *)

let make_mirror tag =
  let mk lbl =
    let d = D.create ~label:lbl ~blocks:1024 () in
    DL.mkfs ~journal:true d;
    (d, DL.mount ~name:lbl d)
  in
  let da, fa = mk (tag ^ "A") in
  let db, fb = mk (tag ^ "B") in
  let vmm = Sp_vm.Vmm.create ~node:"local" (tag ^ "-vmm") in
  let mirror = M.make ~vmm ~name:(tag ^ "-m") () in
  S.stack_on mirror fa;
  S.stack_on mirror fb;
  (vmm, da, db, mirror)

(* Rot the data block holding [marker]-filled content on [disk]. *)
let rot_content_block disk marker =
  let layout = Sp_sfs.Layout.decode_superblock (D.read disk 0) in
  let c = Option.get (Sp_sfs.Csum.attach disk layout) in
  let found = ref (-1) in
  for b = layout.Sp_sfs.Layout.total_blocks - 1 downto 1 do
    if !found < 0 && Sp_sfs.Csum.covers c b && Bytes.get (D.read disk b) 0 = marker
    then found := b
  done;
  Alcotest.(check bool) "found a data block to rot" true (!found >= 0);
  let data = D.read disk !found in
  Bytes.set data 0 'X';
  D.write disk !found data

let test_mirror_self_heals_both_twins () =
  Util.in_world (fun () ->
      let vmm, da, db, mirror = make_mirror "heal2" in
      let f = S.create mirror (Util.name "h") in
      ignore (F.write f ~pos:0 (Bytes.make (2 * ps) 'h'));
      F.sync f;
      let cold_read () =
        Sp_vm.Vmm.drop_caches vmm;
        S.drop_caches mirror;
        F.read_all f
      in
      (* Rot twin A: the read must be served from B (correct bytes), the
         bad copy rewritten in place, and nothing degraded. *)
      rot_content_block da 'h';
      let got = cold_read () in
      Alcotest.(check char) "served clean bytes from the good twin" 'h'
        (Bytes.get got 0);
      Alcotest.(check int) "one repair" 1 (M.repairs mirror);
      Alcotest.(check int) "no failover" 0 (M.failovers mirror);
      Alcotest.(check bool) "not degraded" true (M.degraded mirror = None);
      Alcotest.(check bool) "twins identical again" true (M.verify mirror (Util.name "h"));
      (* Rot twin B: ordinary reads are served by the primary and never
         notice; the background scrub finds and heals it. *)
      rot_content_block db 'h';
      Alcotest.(check char) "reads still clean (primary serves)" 'h'
        (Bytes.get (cold_read ()) 0);
      let repaired = M.scrub mirror in
      Alcotest.(check int) "scrub healed the secondary" 1 repaired;
      Alcotest.(check int) "repair counter cumulative" 2 (M.repairs mirror);
      Alcotest.(check bool) "twins identical after scrub" true
        (M.verify mirror (Util.name "h"));
      Alcotest.(check int) "scrub of a clean mirror repairs nothing" 0
        (M.scrub mirror))

(* ---------------- Corruption sweep --------------------------------- *)

let test_sweep_checksums_catch_everything () =
  List.iter
    (fun kind ->
      let r = CS.sweep ~stride:4 ~kind ~ops:10 ~seed:7 () in
      Alcotest.(check int)
        (Printf.sprintf "no silent corruption (%s)" (CS.kind_name kind))
        0 r.CS.cr_silent;
      Alcotest.(check bool)
        (Printf.sprintf "sweep visited points (%s)" (CS.kind_name kind))
        true (r.CS.cr_points > 0))
    [ CS.Bitrot; CS.Misdirected; CS.Lost ]

let test_sweep_mirror_repairs () =
  let r = CS.sweep ~stride:2 ~mirror:true ~kind:CS.Misdirected ~ops:14 ~seed:7 () in
  Alcotest.(check int) "no silent corruption through the mirror" 0 r.CS.cr_silent;
  Alcotest.(check bool) "mirror healed at least one point" true (r.CS.cr_repaired > 0)

let test_sweep_control_without_checksums () =
  (* The control that proves the harness can see silent corruption at
     all: with the checksum region off, bit rot in file data is served
     back without complaint. *)
  let r = CS.sweep ~stride:1 ~checksums:false ~kind:CS.Bitrot ~ops:20 ~seed:7 () in
  Alcotest.(check bool) "bit rot served silently without checksums" true
    (r.CS.cr_silent > 0);
  Alcotest.(check bool) "and the report names the first silent point" true
    (r.CS.cr_first_silent <> None)

let test_sweep_deterministic () =
  let run () = CS.summary (CS.sweep ~stride:4 ~kind:CS.Misdirected ~ops:10 ~seed:3 ()) in
  Alcotest.(check string) "same seed, same report" (run ()) (run ())

let test_concurrent_sweep_nothing_silent () =
  Util.in_world (fun () ->
      List.iter
        (fun kind ->
          let r = CS.sweep ~stride:9 ~clients:8 ~kind ~ops:6 ~seed:7 () in
          Alcotest.(check int) "eight clients" 8 r.CS.cr_clients;
          Alcotest.(check bool)
            (CS.kind_name kind ^ ": swept some points")
            true (r.CS.cr_points >= 4);
          Alcotest.(check int) (CS.kind_name kind ^ ": nothing silent") 0
            r.CS.cr_silent)
        [ CS.Bitrot; CS.Misdirected; CS.Lost ])

(* ---------------- qcheck: single-bit flips never get through ------- *)

let flip_case =
  let gen = QCheck2.Gen.(pair small_nat (int_bound ((ps * 8) - 1))) in
  let uniq = ref 0 in
  Util.qcheck_case ~count:30 "single-bit flip in a checksummed block is detected"
    gen (fun (seed, bit) ->
      incr uniq;
      Util.in_world (fun () ->
          let tag = Printf.sprintf "qflip%d" !uniq in
          let disk = D.create ~label:tag ~blocks:256 () in
          DL.mkfs disk;
          let fs = DL.mount ~name:(tag ^ "-fs") disk in
          let f = S.create fs (Util.name "q") in
          let data = Util.pattern_bytes ~seed:(seed + 1) ps in
          ignore (F.write f ~pos:0 data);
          S.sync fs;
          (* Round trip holds before anything is flipped. *)
          S.drop_caches fs;
          let clean = Bytes.equal (F.read_all f) data in
          (* Flip one bit of the stored data block behind the layer's
             back, then read again: the flip must surface as a checksum
             error, never as different bytes. *)
          let layout = Sp_sfs.Layout.decode_superblock (D.read disk 0) in
          let c = Option.get (Sp_sfs.Csum.attach disk layout) in
          let blk = ref (-1) in
          for b = layout.Sp_sfs.Layout.total_blocks - 1 downto 1 do
            if !blk < 0 && Sp_sfs.Csum.covers c b then begin
              let stored = D.read disk b in
              if Bytes.equal stored data then blk := b
            end
          done;
          if !blk < 0 then QCheck2.Test.fail_report "data block not found";
          let stored = D.read disk !blk in
          let byte = bit / 8 and k = bit mod 8 in
          Bytes.set stored byte
            (Char.chr (Char.code (Bytes.get stored byte) lxor (1 lsl k)));
          D.write disk !blk stored;
          S.drop_caches fs;
          let detected =
            match F.read_all f with
            | _ -> false
            | exception Sp_core.Fserr.Checksum_error _ -> true
          in
          clean && detected))

let suite =
  [
    Alcotest.test_case "integrityfs: pass-through + verified counter" `Quick
      test_integrityfs_passthrough;
    Alcotest.test_case "integrityfs: detects lower-layer mutation" `Quick
      test_integrityfs_detects_lower_mutation;
    Alcotest.test_case "scrubber: detects rot and repairs from a twin" `Quick
      test_scrubber_detects_and_repairs;
    Alcotest.test_case "scrubber: no checksum region, nothing scanned" `Quick
      test_scrubber_without_checksum_region;
    Alcotest.test_case "mirror: self-heals rot on either twin" `Quick
      test_mirror_self_heals_both_twins;
    Alcotest.test_case "sweep: checksums leave nothing silent" `Slow
      test_sweep_checksums_catch_everything;
    Alcotest.test_case "sweep: mirror mode repairs" `Slow test_sweep_mirror_repairs;
    Alcotest.test_case "sweep: checksums-off control is silent" `Slow
      test_sweep_control_without_checksums;
    Alcotest.test_case "sweep: deterministic" `Quick test_sweep_deterministic;
    Alcotest.test_case "sweep: concurrent clients, nothing silent" `Slow
      test_concurrent_sweep_nothing_silent;
    flip_case;
  ]
