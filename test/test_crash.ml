(* Crash consistency: the write-ahead journal, the crash sweep, and
   qcheck properties over random workloads and crash points. *)

module F = Sp_core.File
module S = Sp_core.Stackable
module D = Sp_blockdev.Disk
module DL = Sp_sfs.Disk_layer
module CS = Sp_sfs.Crash_sweep

(* --- journal basics --- *)

let test_journaled_mount_roundtrip () =
  Util.in_world (fun () ->
      let disk = D.create ~label:"jrt" ~blocks:512 () in
      DL.mkfs ~journal:true disk;
      let fs = DL.mount ~name:"jrt0" disk in
      Alcotest.(check bool) "journaled" true (DL.journaled fs);
      let f = S.create fs (Util.name "a") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "journaled data"));
      Alcotest.(check bool) "writes buffer before sync" true (DL.journal_pending fs >= 0);
      S.sync fs;
      Alcotest.(check int) "nothing pending after sync" 0 (DL.journal_pending fs);
      (match DL.journal_stats fs with
      | Some st -> Alcotest.(check bool) "committed" true (st.Sp_sfs.Journal.js_commits >= 1)
      | None -> Alcotest.fail "journal stats missing");
      Alcotest.(check int) "fsck clean" 0 (List.length (Sp_sfs.Fsck.check disk));
      let fs2 = DL.mount ~name:"jrt1" disk in
      Util.check_str "data after remount" "journaled data"
        (F.read_all (S.open_file fs2 (Util.name "a"))))

let test_unjournaled_volume_unchanged () =
  Util.in_world (fun () ->
      (* Default mkfs stays journal-free and the superblock says so. *)
      let disk = Util.fresh_disk ~blocks:256 ~label:"nojl" () in
      let fs = DL.mount ~name:"nojl0" disk in
      Alcotest.(check bool) "not journaled" false (DL.journaled fs);
      Alcotest.(check bool) "no stats" true (DL.journal_stats fs = None);
      Alcotest.(check int) "recover is a no-op" 0 (DL.recover disk))

let test_crash_mid_commit_recovers () =
  Util.in_world (fun () ->
      let disk = D.create ~label:"jmc" ~blocks:512 () in
      DL.mkfs ~journal:true disk;
      let fs = DL.mount ~name:"jmc0" disk in
      let f = S.create fs (Util.name "a") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "SURVIVES"));
      S.sync fs;
      ignore (F.write f ~pos:0 (Util.bytes_of_string "never-synced"));
      (* Crash on the second device write of the next commit. *)
      let plan =
        Sp_fault.plan
          [ Sp_fault.rule ~point:"disk.write" ~label:"jmc" ~after:1 ~count:1
              Sp_fault.Fail_stop ]
      in
      (try Sp_fault.with_plan plan (fun () -> S.sync fs)
       with Sp_fault.Crash _ -> ());
      let replayed = DL.recover disk in
      Alcotest.(check bool) "recover ran" true (replayed >= 0);
      Alcotest.(check int) "fsck clean after crash" 0
        (List.length (Sp_sfs.Fsck.check disk));
      let fs2 = DL.mount ~name:"jmc1" disk in
      let got = Bytes.to_string (F.read_all (S.open_file fs2 (Util.name "a"))) in
      Alcotest.(check bool) "a consistent cut survived" true
        (got = "SURVIVES" || got = "never-synced"))

(* --- the sweep --- *)

let test_journaled_sweep_survives () =
  Util.in_world (fun () ->
      let r = CS.sweep ~stride:3 ~journal:true ~ops:14 ~seed:11 () in
      Alcotest.(check bool) "swept something" true (r.CS.rp_points > 5);
      Alcotest.(check int) "no synced write lost" 0 r.CS.rp_lost;
      Alcotest.(check int) "no corruption" 0 r.CS.rp_corrupt;
      Alcotest.(check int) "all survived" r.CS.rp_points r.CS.rp_survived)

let test_torn_journaled_sweep_survives () =
  Util.in_world (fun () ->
      let r = CS.sweep ~stride:5 ~torn:true ~journal:true ~ops:14 ~seed:11 () in
      Alcotest.(check int) "torn commits recovered everywhere" r.CS.rp_points
        r.CS.rp_survived)

let test_unjournaled_sweep_finds_damage () =
  Util.in_world (fun () ->
      let r = CS.sweep ~stride:1 ~journal:false ~ops:20 ~seed:11 () in
      Alcotest.(check bool) "sweep demonstrates inconsistency without a journal" true
        (r.CS.rp_lost + r.CS.rp_corrupt + r.CS.rp_detected >= 1);
      Alcotest.(check bool) "and reports where" true (r.CS.rp_first_bad <> None))

let test_torn_unjournaled_checksums_detect () =
  (* A torn write on an unjournaled volume can shear a block in a way the
     structural fsck cannot see.  With checksums on, every such point must
     come back Detected (or honestly Lost/Corrupt) — never a clean
     Survived serving sheared bytes as good data. *)
  Util.in_world (fun () ->
      let r = CS.sweep ~stride:2 ~torn:true ~journal:false ~ops:20 ~seed:11 () in
      Alcotest.(check bool) "checksums positively detect torn writes" true
        (r.CS.rp_detected >= 1))

let test_sweep_deterministic () =
  Util.in_world (fun () ->
      let run () = CS.sweep ~stride:2 ~journal:false ~ops:16 ~seed:23 () in
      let a = run () and b = run () in
      Alcotest.(check bool) "identical seed, identical report" true (a = b))

let qcheck_random_crash_point_survives =
  let gen = QCheck2.Gen.(pair (int_range 1 10_000) (int_range 0 10_000)) in
  Util.qcheck_case ~count:15 "journal survives a random crash in a random workload" gen
    (fun (seed, point) ->
      Util.in_world (fun () ->
          let ops = 8 + (seed mod 5) in
          let writes = CS.workload_writes ~journal:true ~ops ~seed () in
          let crash_at = 1 + (point mod max 1 writes) in
          CS.run_point ~journal:true ~ops ~seed ~crash_at () = CS.Survived))

(* --- concurrent clients --- *)

let test_concurrent_sweep_survives () =
  Util.in_world (fun () ->
      let r = CS.sweep ~stride:11 ~clients:8 ~journal:true ~ops:4 ~seed:7 () in
      Alcotest.(check int) "eight clients" 8 r.CS.rp_clients;
      Alcotest.(check bool) "swept some points" true (r.CS.rp_points >= 5);
      Alcotest.(check int) "nothing lost" 0 r.CS.rp_lost;
      Alcotest.(check int) "nothing corrupt" 0 r.CS.rp_corrupt;
      Alcotest.(check int) "nothing merely detected" 0 r.CS.rp_detected;
      Alcotest.(check int) "all survived" r.CS.rp_points r.CS.rp_survived)

let qcheck_concurrent_crash_point_survives =
  let gen = QCheck2.Gen.(pair (int_range 1 10_000) (int_range 0 10_000)) in
  Util.qcheck_case ~count:8
    "journal survives a random crash under concurrent clients" gen
    (fun (seed, point) ->
      Util.in_world (fun () ->
          let clients = 2 + (seed mod 5) in
          let writes =
            CS.workload_writes ~clients ~journal:true ~ops:4 ~seed ()
          in
          let crash_at = 1 + (point mod max 1 writes) in
          CS.run_point ~clients ~journal:true ~ops:4 ~seed ~crash_at ()
          = CS.Survived))

(* --- journal replay idempotency --- *)

let image disk =
  List.init (D.block_count disk) (fun i -> Bytes.to_string (D.read disk i))

let test_recover_idempotent () =
  (* Replaying the journal of a crashed image must be idempotent: a
     second [recover] on the already-recovered image changes nothing. *)
  Util.in_world (fun () ->
      let disk = D.create ~label:"idem.dev" ~blocks:512 () in
      DL.mkfs ~journal:true disk;
      let fs = DL.mount ~name:"idem.fs" disk in
      let f = S.create fs (Util.name "a") in
      for i = 0 to 7 do
        ignore (F.write f ~pos:(i * 4096) (Bytes.make 4096 (Char.chr (97 + i))))
      done;
      (* Crash at the first home write of the sealed commit: the journal
         holds a full committed transaction awaiting replay. *)
      let plan =
        Sp_fault.plan
          [
            Sp_fault.rule ~point:"disk.write" ~label:"idem.dev" ~after:10
              ~count:1 Sp_fault.Fail_stop;
          ]
      in
      (try Sp_fault.with_plan plan (fun () -> S.sync fs)
       with Sp_fault.Crash _ -> ());
      let replayed1 = DL.recover disk in
      let after_first = image disk in
      let replayed2 = DL.recover disk in
      let after_second = image disk in
      Alcotest.(check bool) "first recover replays" true (replayed1 >= 0);
      Alcotest.(check int) "second recover finds a clean journal" 0 replayed2;
      Alcotest.(check bool) "images byte-identical" true
        (List.for_all2 String.equal after_first after_second);
      Alcotest.(check int) "fsck clean after double recovery" 0
        (List.length (Sp_sfs.Fsck.check disk)))

(* --- bitmap round-trip properties --- *)

let qcheck_bitmap_matches_model =
  let gen = QCheck2.Gen.(list_size (int_range 1 120) (pair bool (int_range 0 199))) in
  Util.qcheck_case ~count:50 "bitmap set/clear/find_free matches a bool-array model" gen
    (fun ops ->
      Util.in_world (fun () ->
          let disk = D.create ~blocks:8 () in
          let bits = 200 in
          let bm = Sp_sfs.Bitmap.load (Sp_sfs.Journal.raw disk) ~start:1 ~blocks:2 ~bits in
          let model = Array.make bits false in
          List.iter
            (fun (set, i) ->
              if set then Sp_sfs.Bitmap.set bm i else Sp_sfs.Bitmap.clear bm i;
              model.(i) <- set)
            ops;
          let model_used = Array.fold_left (fun n b -> if b then n + 1 else n) 0 model in
          let model_free =
            let rec go i = if i >= bits then None else if model.(i) then go (i + 1) else Some i in
            go 0
          in
          Sp_sfs.Bitmap.used bm = model_used
          && Sp_sfs.Bitmap.find_free bm = model_free
          && Array.for_all (fun x -> x)
               (Array.init bits (fun i -> Sp_sfs.Bitmap.is_set bm i = model.(i)))
          &&
          (* Survives a flush + reload from the device. *)
          (Sp_sfs.Bitmap.flush bm;
           let bm2 = Sp_sfs.Bitmap.load (Sp_sfs.Journal.raw disk) ~start:1 ~blocks:2 ~bits in
           Array.for_all (fun x -> x)
             (Array.init bits (fun i -> Sp_sfs.Bitmap.is_set bm2 i = model.(i))))))

let suite =
  [
    Alcotest.test_case "journaled mount roundtrip" `Quick test_journaled_mount_roundtrip;
    Alcotest.test_case "unjournaled volume unchanged" `Quick
      test_unjournaled_volume_unchanged;
    Alcotest.test_case "crash mid-commit recovers" `Quick test_crash_mid_commit_recovers;
    Alcotest.test_case "journaled sweep survives" `Slow test_journaled_sweep_survives;
    Alcotest.test_case "torn journaled sweep survives" `Slow
      test_torn_journaled_sweep_survives;
    Alcotest.test_case "unjournaled sweep finds damage" `Slow
      test_unjournaled_sweep_finds_damage;
    Alcotest.test_case "torn unjournaled sweep: checksums detect" `Slow
      test_torn_unjournaled_checksums_detect;
    Alcotest.test_case "sweep deterministic" `Slow test_sweep_deterministic;
    Alcotest.test_case "concurrent sweep survives" `Slow
      test_concurrent_sweep_survives;
    Alcotest.test_case "journal replay idempotent" `Quick test_recover_idempotent;
    qcheck_random_crash_point_survives;
    qcheck_concurrent_crash_point_survives;
    qcheck_bitmap_matches_model;
  ]
