(* Coverage sweep of smaller public APIs: channel registry maintenance,
   attribute helpers, interposition forwarding, Spring_sfs accessors and
   the UNIX emulation's positional calls. *)

module F = Sp_core.File
module S = Sp_core.Stackable
module V = Sp_vm.Vm_types

let test_pager_lib_registry () =
  Util.in_world (fun () ->
      let reg = Sp_vm.Pager_lib.create () in
      let ram = Sp_vm.Ram_pager.create ~label:"r" () in
      ignore ram;
      let dummy_pager ~id:_ =
        {
          V.p_domain = Sp_obj.Sdomain.create "p";
          p_label = "dummy";
          p_page_in = (fun ~offset:_ ~size ~access:_ -> Bytes.create size);
          p_page_out = (fun ~offset:_ _ -> ());
          p_write_out = (fun ~offset:_ _ -> ());
          p_sync = (fun ~offset:_ _ -> ());
          p_sync_v = (fun _ -> ());
          p_done_with = (fun () -> ());
          p_exten = [];
        }
      in
      let destroyed = ref 0 in
      let manager name =
        {
          V.cm_id = name;
          cm_domain = Sp_obj.Sdomain.create name;
          cm_connect =
            (fun ~key:_ _ ->
              {
                V.c_domain = Sp_obj.Sdomain.create (name ^ "-cache");
                c_label = name;
                c_flush_back = (fun ~offset:_ ~size:_ -> []);
                c_deny_writes = (fun ~offset:_ ~size:_ -> []);
                c_write_back = (fun ~offset:_ ~size:_ -> []);
                c_delete_range = (fun ~offset:_ ~size:_ -> ());
                c_zero_fill = (fun ~offset:_ ~size:_ -> ());
                c_populate = (fun ~offset:_ ~access:_ _ -> ());
                c_destroy = (fun () -> incr destroyed);
                c_exten = [];
              });
        }
      in
      let r1 = Sp_vm.Pager_lib.bind reg ~key:"k1" ~make_pager:dummy_pager (manager "m1") in
      let r1' = Sp_vm.Pager_lib.bind reg ~key:"k1" ~make_pager:dummy_pager (manager "m1") in
      Alcotest.(check int) "bind is idempotent per (manager,key)"
        r1.V.cr_channel_id r1'.V.cr_channel_id;
      let _r2 = Sp_vm.Pager_lib.bind reg ~key:"k1" ~make_pager:dummy_pager (manager "m2") in
      let _r3 = Sp_vm.Pager_lib.bind reg ~key:"k2" ~make_pager:dummy_pager (manager "m1") in
      Alcotest.(check int) "three channels" 3 (Sp_vm.Pager_lib.channel_count reg);
      Alcotest.(check int) "two for k1" 2
        (List.length (Sp_vm.Pager_lib.channels_for_key reg ~key:"k1"));
      Alcotest.(check bool) "find by id" true
        (Sp_vm.Pager_lib.find reg ~id:r1.V.cr_channel_id <> None);
      Sp_vm.Pager_lib.remove reg r1.V.cr_channel_id;
      Alcotest.(check bool) "removed" true
        (Sp_vm.Pager_lib.find reg ~id:r1.V.cr_channel_id = None);
      Sp_vm.Pager_lib.destroy_key reg ~key:"k1";
      Alcotest.(check int) "k1 gone" 0
        (List.length (Sp_vm.Pager_lib.channels_for_key reg ~key:"k1"));
      Alcotest.(check int) "destroy_cache invoked" 1 !destroyed;
      Alcotest.(check int) "k2 remains" 1 (Sp_vm.Pager_lib.channel_count reg))

let test_attr_helpers () =
  Util.in_world (fun () ->
      Sp_sim.Simclock.advance 1000;
      let a = Sp_vm.Attr.fresh Sp_vm.Attr.Regular in
      Alcotest.(check int) "fresh stamps now" 1000 a.Sp_vm.Attr.atime;
      Sp_sim.Simclock.advance 500;
      let a2 = Sp_vm.Attr.touch_mtime a in
      Alcotest.(check int) "mtime updated" 1500 a2.Sp_vm.Attr.mtime;
      Alcotest.(check int) "ctime follows mtime" 1500 a2.Sp_vm.Attr.ctime;
      Alcotest.(check int) "atime untouched" 1000 a2.Sp_vm.Attr.atime;
      let a3 = Sp_vm.Attr.with_len a2 77 in
      Alcotest.(check int) "with_len" 77 a3.Sp_vm.Attr.len;
      Alcotest.(check bool) "equal reflexive" true (Sp_vm.Attr.equal a3 a3);
      Alcotest.(check bool) "equal detects change" false (Sp_vm.Attr.equal a2 a3);
      Alcotest.(check bool) "pp smoke" true
        (String.length (Format.asprintf "%a" Sp_vm.Attr.pp a3) > 0))

let test_interpose_forwarding_ops () =
  Util.in_world (fun () ->
      let vmm = Sp_vm.Vmm.create ~node:"local" "vmm0" in
      let sfs =
        Sp_coherency.Spring_sfs.make_split ~vmm ~name:"misc-sfs" ~same_domain:false
          (Util.fresh_disk ())
      in
      let f = S.create sfs (Util.name "fwd") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "0123456789"));
      let seen = ref [] in
      let w =
        Sp_core.Interpose.interpose_file ~domain:(Sp_obj.Sdomain.create "w")
          (Sp_core.Interpose.logging_hooks ~log:(fun op -> seen := op :: !seen))
          f
      in
      (* Every forwarded operation works and is observed. *)
      F.truncate w 4;
      let attr = F.stat w in
      F.set_attr w (Sp_vm.Attr.touch_mtime attr);
      F.sync w;
      Alcotest.(check (list string)) "all ops observed"
        [ "truncate"; "stat"; "set_attr"; "sync" ]
        (List.rev !seen);
      Alcotest.(check int) "truncate forwarded" 4 (F.stat f).Sp_vm.Attr.len)

let test_spring_sfs_accessors () =
  Util.in_world (fun () ->
      let vmm = Sp_vm.Vmm.create ~node:"local" "vmm0" in
      let sfs =
        Sp_coherency.Spring_sfs.make_split ~vmm ~name:"acc" ~same_domain:false
          (Util.fresh_disk ())
      in
      let base = Sp_coherency.Spring_sfs.disk_layer sfs in
      Alcotest.(check string) "disk layer type" "sfs_disk" base.S.sfs_type;
      Alcotest.(check string) "base accessor agrees" base.S.sfs_name
        (S.base sfs).S.sfs_name;
      ignore (S.create sfs (Util.name "x"));
      Alcotest.(check bool) "free space reported" true
        (Sp_sfs.Disk_layer.free_blocks base > 0);
      Alcotest.(check bool) "inode cache counted" true
        (Sp_sfs.Disk_layer.cached_inodes base > 0);
      Alcotest.(check bool) "coherency attrs counted" true
        (Sp_coherency.Coherency_layer.cached_attrs sfs >= 0))

let test_unix_positional_and_ftruncate () =
  Util.in_world (fun () ->
      let vmm = Sp_vm.Vmm.create ~node:"local" "vmm0" in
      let sfs =
        Sp_coherency.Spring_sfs.make_split ~vmm ~name:"posix" ~same_domain:false
          (Util.fresh_disk ())
      in
      let p = Sp_unix.Unix_emul.create_process ~root:sfs () in
      let module U = Sp_unix.Unix_emul in
      let get = function Ok v -> v | Error _ -> Alcotest.fail "errno" in
      let fd = get (U.creat p "/pp") in
      Alcotest.(check int) "pwrite" 6
        (get (U.pwrite p fd ~pos:10 (Bytes.of_string "abcdef")));
      Util.check_str "pread" "cde" (get (U.pread p fd ~pos:12 ~len:3));
      (* Positional calls do not move the seek pointer. *)
      Util.check_str "seek pointer unmoved" "\000\000" (get (U.read p fd 2));
      ignore (get (U.ftruncate p fd 12));
      Alcotest.(check int) "ftruncate" 12 (get (U.fstat p fd)).Sp_vm.Attr.len;
      Alcotest.(check (list int)) "open fds" [ fd ] (U.open_fds p);
      ignore (get (U.close p fd));
      Alcotest.(check (list int)) "closed" [] (U.open_fds p))

let test_door_nested_attribution () =
  Util.in_world (fun () ->
      let a = Sp_obj.Sdomain.create "a" in
      let b = Sp_obj.Sdomain.create "b" in
      let before = Sp_sim.Metrics.snapshot () in
      (* user -> a -> b -> a: three crossings, then a->a local. *)
      Sp_obj.Door.call a (fun () ->
          Sp_obj.Door.call b (fun () ->
              Sp_obj.Door.call a (fun () -> Sp_obj.Door.call a (fun () -> ()))));
      let d = Sp_sim.Metrics.diff ~before ~after:(Sp_sim.Metrics.snapshot ()) in
      Alcotest.(check int) "crossings" 3 d.Sp_sim.Metrics.cross_domain_calls;
      Alcotest.(check int) "locals" 1 d.Sp_sim.Metrics.local_calls)

let test_versionfs_unknown_version () =
  Util.in_world (fun () ->
      let vmm = Sp_vm.Vmm.create ~node:"local" "vmm0" in
      let sfs =
        Sp_coherency.Spring_sfs.make_split ~vmm ~name:"vf" ~same_domain:false
          (Util.fresh_disk ())
      in
      let ver = Sp_versionfs.Versionfs.make ~name:"vf0" () in
      S.stack_on ver sfs;
      ignore (S.create ver (Util.name "f"));
      Alcotest.(check (list int)) "no versions yet" []
        (Sp_versionfs.Versionfs.versions ver (Util.name "f"));
      Alcotest.(check bool) "unknown version raises" true
        (try
           ignore (Sp_versionfs.Versionfs.open_version ver (Util.name "f") 3);
           false
         with Sp_core.Fserr.No_such_file _ -> true))

let suite =
  [
    Alcotest.test_case "pager_lib registry" `Quick test_pager_lib_registry;
    Alcotest.test_case "attr helpers" `Quick test_attr_helpers;
    Alcotest.test_case "interpose forwards all ops" `Quick
      test_interpose_forwarding_ops;
    Alcotest.test_case "spring_sfs accessors" `Quick test_spring_sfs_accessors;
    Alcotest.test_case "unix positional io" `Quick test_unix_positional_and_ftruncate;
    Alcotest.test_case "door nested attribution" `Quick test_door_nested_attribution;
    Alcotest.test_case "versionfs unknown version" `Quick
      test_versionfs_unknown_version;
  ]
