let () =
  Alcotest.run "springfs"
    [
      ("sim", Test_sim.suite);
      ("sched", Test_sched.suite);
      ("trace", Test_trace.suite);
      ("obj", Test_obj.suite);
      ("naming", Test_naming.suite);
      ("vm", Test_vm.suite);
      ("blockdev", Test_blockdev.suite);
      ("sfs", Test_sfs.suite);
      ("coherency", Test_coherency.suite);
      ("core", Test_core.suite);
      ("compfs", Test_compfs.suite);
      ("cryptfs", Test_cryptfs.suite);
      ("mirrorfs", Test_mirrorfs.suite);
      ("attrfs", Test_attrfs.suite);
      ("unionfs", Test_unionfs.suite);
      ("versionfs", Test_versionfs.suite);
      ("unix_emul", Test_unix_emul.suite);
      ("misc", Test_misc.suite);
      ("dfs", Test_dfs.suite);
      ("cfs", Test_cfs.suite);
      ("baseline", Test_baseline.suite);
      ("node", Test_node.suite);
      ("integration", Test_integration.suite);
      ("faults", Test_faults.suite);
      ("inject", Test_inject.suite);
      ("crash", Test_crash.suite);
      ("fsck", Test_fsck.suite);
      ("integrity", Test_integrity.suite);
      ("supervise", Test_supervise.suite);
      ("avail", Test_avail.suite);
      ("bulk", Test_bulk.suite);
      ("table_shapes", Test_table_shapes.suite);
      ("dir", Test_dir.suite);
      ("cluster", Test_cluster.suite);
    ]
