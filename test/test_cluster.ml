(* Sp_cluster: hash placement, lease-backed client caching (the
   zero-message warm open), invalidation pushes, the lease-expiry
   partition valve, Wrong_shard convergence after a rebalance, shard
   kill/restart durability, and invalidation-storm shedding through the
   per-destination breakers. *)

module F = Sp_core.File
module Fserr = Sp_core.Fserr
module N = Sp_naming.Sname
module Net = Sp_dfs.Net
module CL = Sp_cluster.Cluster
module Clock = Sp_sim.Simclock

let uid = ref 0

let tag p =
  incr uid;
  Printf.sprintf "tcl-%s%d" p !uid

(* Every cluster is shut down before the test returns: a leaked
   coherence subscription would receive other tests' note_changes. *)
let with_cluster ?lease_ns ?(nodes = 2) p f =
  Util.in_world (fun () ->
      let t = CL.make ~name:(tag p) ?lease_ns ~net:(Net.create ()) ~nodes () in
      Fun.protect ~finally:(fun () -> CL.shutdown t) (fun () -> f t))

let test_placement_deterministic_and_spread () =
  with_cluster ~nodes:4 "place" (fun t ->
      let names = List.init 32 (fun i -> N.of_string (Printf.sprintf "c%d/f" i)) in
      let owners = List.map (CL.owner t) names in
      List.iter2
        (fun p o ->
          Alcotest.(check int)
            "owner is stable" o (CL.owner t p);
          Alcotest.(check bool) "owner in range" true (o >= 0 && o < 4))
        names owners;
      let distinct = List.sort_uniq compare owners in
      Alcotest.(check bool)
        "components spread over several shards" true
        (List.length distinct >= 2))

(* The acceptance-criterion assertion: a lease-held warm open crosses
   the network zero times and costs zero simulated time. *)
let test_warm_open_zero_messages () =
  with_cluster "warm" (fun t ->
      let c = CL.connect t ~node:"warm-cl" in
      CL.mkdir c (N.of_string "w");
      let f = CL.create c (N.of_string "w/f") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "hello"));
      let msgs0 = Sp_sim.Metrics.net_messages () in
      let now0 = Clock.now () in
      let f' = CL.open_file c (N.of_string "w/f") in
      Alcotest.(check int)
        "zero network messages" 0
        (Sp_sim.Metrics.net_messages () - msgs0);
      Alcotest.(check int) "zero simulated time" 0 (Clock.now () - now0);
      Alcotest.(check int)
        "one warm hit" 1
        (CL.client_stats c).CL.cs_warm_hits;
      Util.check_str "warm handle serves content" "hello" (F.read f' ~pos:0 ~len:5))

let test_leaseless_control_pays_rpc () =
  with_cluster ~lease_ns:0 "nolease" (fun t ->
      let c = CL.connect t ~node:"nolease-cl" in
      CL.mkdir c (N.of_string "w");
      ignore (CL.create c (N.of_string "w/f"));
      let msgs0 = Sp_sim.Metrics.net_messages () in
      ignore (CL.open_file c (N.of_string "w/f"));
      ignore (CL.open_file c (N.of_string "w/f"));
      Alcotest.(check bool)
        "every leaseless open crosses the network" true
        (Sp_sim.Metrics.net_messages () - msgs0 >= 2);
      Alcotest.(check int)
        "no warm hits without leases" 0
        (CL.client_stats c).CL.cs_warm_hits)

let test_invalidation_push_delivery () =
  with_cluster "inval" (fun t ->
      let a = CL.connect t ~node:"inval-a" in
      let b = CL.connect t ~node:"inval-b" in
      CL.mkdir a (N.of_string "h");
      let f = CL.create a (N.of_string "h/f") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "v1"));
      ignore (CL.open_file b (N.of_string "h/f"));
      CL.remove a (N.of_string "h/f");
      Alcotest.(check int)
        "push removed b's entry" 1
        (CL.client_stats b).CL.cs_invalidations;
      Alcotest.(check int) "one push delivered" 1 (CL.stats t).CL.s_inval_sent;
      (match CL.open_file b (N.of_string "h/f") with
      | _ -> Alcotest.fail "b served a binding its push invalidated"
      | exception Fserr.No_such_file _ -> ());
      Alcotest.(check int)
        "no stale serve" 0
        (CL.client_stats b).CL.cs_stale_serves)

(* The partition-safety valve: a partitioned client keeps serving warm
   while its lease lasts, then refuses its cache — loudly, via the cold
   path's failure — and recovers once the partition heals. *)
let test_lease_expiry_fences_partitioned_client () =
  with_cluster "fence" (fun t ->
      let a = CL.connect t ~node:"fence-a" in
      let b = CL.connect t ~node:"fence-b" in
      CL.mkdir a (N.of_string "p");
      let f = CL.create a (N.of_string "p/f") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "safe"));
      ignore (CL.open_file b (N.of_string "p/f"));
      let s = CL.owner t (N.of_string "p/f") in
      Sp_fault.arm
        (Sp_fault.plan (Sp_fault.partition ~a:"fence-b" ~b:(CL.shard_node t s)));
      Fun.protect ~finally:Sp_fault.disarm (fun () ->
          (* lease still held: the cache IS the availability win *)
          let msgs0 = Sp_sim.Metrics.net_messages () in
          ignore (CL.open_file b (N.of_string "p/f"));
          Alcotest.(check int)
            "warm service continues under partition" 0
            (Sp_sim.Metrics.net_messages () - msgs0);
          (* lease over: the valve must refuse the cache and fail loudly *)
          let dl = CL.lease_deadline b s in
          Clock.advance (dl - Clock.now () + 1);
          (match CL.open_file b (N.of_string "p/f") with
          | _ -> Alcotest.fail "stale cache served past the lease deadline"
          | exception Fserr.Io_error _ -> ()));
      Alcotest.(check bool)
        "valve fired" true
        ((CL.client_stats b).CL.cs_stale_blocked >= 1);
      Alcotest.(check int)
        "zero stale serves" 0
        (CL.client_stats b).CL.cs_stale_serves;
      (* healed: cold reload *)
      Util.check_str "post-heal reload" "safe"
        (F.read (CL.open_file b (N.of_string "p/f")) ~pos:0 ~len:4))

let test_rebalance_wrong_shard_refetch () =
  with_cluster ~nodes:3 "rebal" (fun t ->
      let a = CL.connect t ~node:"rebal-a" in
      let b = CL.connect t ~node:"rebal-b" in
      CL.mkdir a (N.of_string "r");
      let f = CL.create a (N.of_string "r/f") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "moved intact"));
      CL.sync_all a;
      ignore (CL.open_file b (N.of_string "r/f"));
      let src = CL.owner t (N.of_string "r") in
      let dst = (src + 1) mod 3 in
      CL.rebalance t "r" ~to_:dst;
      Alcotest.(check int) "placement flipped" dst (CL.owner t (N.of_string "r"));
      (* run b's lease out so its pre-move cache entry cannot mask the
         stale map (the entry is only as live as the lease anyway) *)
      Clock.advance (CL.lease_deadline b src - Clock.now () + 1);
      let got = F.read_all (CL.open_file b (N.of_string "r/f")) in
      Util.check_str "stale-mapped client converged on the new owner"
        "moved intact" got;
      Alcotest.(check bool)
        "convergence went through Wrong_shard" true
        ((CL.client_stats b).CL.cs_wrong_shard >= 1))

let test_shard_kill_durability () =
  with_cluster "kill" (fun t ->
      let c = CL.connect t ~node:"kill-cl" in
      CL.mkdir c (N.of_string "k");
      let f = CL.create c (N.of_string "k/f") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "synced survives"));
      CL.sync_path c (N.of_string "k/f");
      let s = CL.owner t (N.of_string "k/f") in
      CL.kill_shard ~store:true t s;
      (* the store level is dead: the supervised retry remounts the
         journaled twins (journal replay) and the op completes *)
      let got =
        Sp_supervise.call (fun () ->
            F.read_all (CL.open_file c (N.of_string "k/f")))
      in
      Util.check_str "synced bytes survive the store kill" "synced survives"
        got;
      Alcotest.(check bool) "restart happened" true (CL.restarts t >= 1);
      Alcotest.(check int)
        "no stale serve across incarnations" 0
        (CL.client_stats c).CL.cs_stale_serves)

(* Invalidation storm against a partitioned holder: the first push pays
   one timeout and trips that destination's breaker, the second sheds on
   the open breaker — while the healthy holder receives every push. *)
let test_storm_sheds_through_breaker () =
  with_cluster "storm" (fun t ->
      let m = CL.connect t ~node:"storm-m" in
      let v = CL.connect t ~node:"storm-v" in
      let o = CL.connect t ~node:"storm-o" in
      CL.mkdir m (N.of_string "hot");
      ignore (CL.create m (N.of_string "hot/x"));
      ignore (CL.create m (N.of_string "hot/y"));
      List.iter
        (fun c ->
          ignore (CL.open_file c (N.of_string "hot/x"));
          ignore (CL.open_file c (N.of_string "hot/y")))
        [ v; o ];
      let s = CL.owner t (N.of_string "hot") in
      Sp_fault.arm
        (Sp_fault.plan (Sp_fault.partition ~a:"storm-v" ~b:(CL.shard_node t s)));
      Fun.protect ~finally:Sp_fault.disarm (fun () ->
          CL.remove m (N.of_string "hot/x");
          CL.remove m (N.of_string "hot/y"));
      let st = CL.stats t in
      Alcotest.(check int) "healthy holder got both pushes" 2
        (CL.client_stats o).CL.cs_invalidations;
      Alcotest.(check int) "partitioned holder got none" 0
        (CL.client_stats v).CL.cs_invalidations;
      Alcotest.(check int) "both pushes to the victim shed" 2 st.CL.s_inval_shed;
      Alcotest.(check int) "pushes to the healthy holder delivered" 2
        st.CL.s_inval_sent)

(* A small concurrent smoke of the sweep itself, kill and partition. *)
let test_shard_sweep_smoke () =
  Util.in_world ~model:Sp_sim.Cost_model.paper_1993 (fun () ->
      let open Sp_cluster.Shard_crash_sweep in
      let r =
        sweep ~stride:24 ~op_deadline_ns:10_000_000_000 ~nodes:2 ~clients:2
          ~ops:16 ~seed:5 ()
      in
      Alcotest.(check bool) "kill points ran" true (r.dr_points >= 1);
      Alcotest.(check int) "all kill points served" r.dr_points r.dr_served;
      Alcotest.(check int) "zero stale serves" 0 r.dr_stale_serves;
      Alcotest.(check bool) "restarts observed" true (r.dr_restarts > 0);
      Alcotest.(check bool) "warm hits observed" true (r.dr_warm_hits > 0))

let test_shard_sweep_partition_smoke () =
  Util.in_world ~model:Sp_sim.Cost_model.paper_1993 (fun () ->
      let open Sp_cluster.Shard_crash_sweep in
      let r =
        sweep ~stride:24 ~partition:true ~op_deadline_ns:10_000_000_000
          ~nodes:2 ~clients:2 ~ops:16 ~seed:5 ()
      in
      Alcotest.(check bool) "partition points ran" true (r.dr_points >= 1);
      Alcotest.(check int) "all partition points served" r.dr_points r.dr_served;
      Alcotest.(check int) "zero stale serves" 0 r.dr_stale_serves;
      Alcotest.(check bool)
        "pushes were shed, lost or lease-lapsed" true
        (r.dr_inval_shed + r.dr_inval_lapsed > 0))

let suite =
  [
    Alcotest.test_case "placement: deterministic, spread" `Quick
      test_placement_deterministic_and_spread;
    Alcotest.test_case "warm open: zero messages, zero time" `Quick
      test_warm_open_zero_messages;
    Alcotest.test_case "leaseless control pays the RPC" `Quick
      test_leaseless_control_pays_rpc;
    Alcotest.test_case "invalidation push delivery" `Quick
      test_invalidation_push_delivery;
    Alcotest.test_case "lease expiry fences a partitioned client" `Quick
      test_lease_expiry_fences_partitioned_client;
    Alcotest.test_case "rebalance: Wrong_shard convergence" `Quick
      test_rebalance_wrong_shard_refetch;
    Alcotest.test_case "shard kill: durability through restart" `Quick
      test_shard_kill_durability;
    Alcotest.test_case "storm: breaker sheds per destination" `Quick
      test_storm_sheds_through_breaker;
    Alcotest.test_case "sweep smoke: kill (2x2)" `Quick test_shard_sweep_smoke;
    Alcotest.test_case "sweep smoke: partition (2x2)" `Quick
      test_shard_sweep_partition_smoke;
  ]
