module F = Sp_core.File
module S = Sp_core.Stackable
module M = Sp_mirrorfs.Mirrorfs

let make_stack () =
  let vmm = Sp_vm.Vmm.create ~node:"local" "vmm0" in
  let sfs_a =
    Sp_coherency.Spring_sfs.make_split ~vmm ~name:"sfsA" ~same_domain:false
      (Util.fresh_disk ())
  in
  let sfs_b =
    Sp_coherency.Spring_sfs.make_split ~vmm ~name:"sfsB" ~same_domain:false
      (Util.fresh_disk ())
  in
  let mirror = M.make ~vmm ~name:"mirror" () in
  S.stack_on mirror sfs_a;
  S.stack_on mirror sfs_b;
  (vmm, sfs_a, sfs_b, mirror)

let test_fig3_two_underlays () =
  Util.in_world (fun () ->
      let _vmm, sfs_a, sfs_b, mirror = make_stack () in
      Alcotest.(check (list string)) "stacked on two file systems"
        [ sfs_a.S.sfs_name; sfs_b.S.sfs_name ]
        (List.map (fun l -> l.S.sfs_name) (mirror.S.sfs_unders ()));
      let vmm2 = Sp_vm.Vmm.create ~node:"x" "x" in
      let third =
        Sp_coherency.Spring_sfs.make_split ~vmm:vmm2 ~name:"sfsC" ~same_domain:false
          (Util.fresh_disk ())
      in
      try
        S.stack_on mirror third;
        Alcotest.fail "third underlay must be rejected"
      with S.Stack_error _ -> ())

let test_writes_reach_both () =
  Util.in_world (fun () ->
      let _vmm, sfs_a, sfs_b, mirror = make_stack () in
      let f = S.create mirror (Util.name "r") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "replicated"));
      F.sync f;
      Util.check_str "primary" "replicated"
        (F.read (S.open_file sfs_a (Util.name "r")) ~pos:0 ~len:10);
      Util.check_str "secondary" "replicated"
        (F.read (S.open_file sfs_b (Util.name "r")) ~pos:0 ~len:10);
      Alcotest.(check bool) "verify" true (M.verify mirror (Util.name "r")))

let test_failover_on_primary_loss () =
  Util.in_world (fun () ->
      let _vmm, _a, _b, mirror = make_stack () in
      let f = S.create mirror (Util.name "ha") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "available"));
      F.sync f;
      M.set_degraded mirror (Some M.Primary);
      Util.check_str "reads served by secondary" "available"
        (F.read (S.open_file mirror (Util.name "ha")) ~pos:0 ~len:9);
      Alcotest.(check int) "stat via secondary" 9 (F.stat f).Sp_vm.Attr.len)

let test_degraded_write_and_repair () =
  Util.in_world (fun () ->
      let _vmm, sfs_a, sfs_b, mirror = make_stack () in
      let f = S.create mirror (Util.name "heal") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "v1"));
      F.sync f;
      (* Secondary goes down; writes continue on the primary only. *)
      M.set_degraded mirror (Some M.Secondary);
      ignore (F.write f ~pos:0 (Util.bytes_of_string "v2"));
      F.sync f;
      Util.check_str "primary has v2" "v2"
        (F.read (S.open_file sfs_a (Util.name "heal")) ~pos:0 ~len:2);
      Util.check_str "secondary still has v1" "v1"
        (F.read (S.open_file sfs_b (Util.name "heal")) ~pos:0 ~len:2);
      Alcotest.(check bool) "replicas diverged" false (M.verify mirror (Util.name "heal"));
      (* Secondary returns; repair copies primary over it. *)
      M.repair mirror (Util.name "heal");
      M.set_degraded mirror None;
      Alcotest.(check bool) "repaired" true (M.verify mirror (Util.name "heal"));
      Util.check_str "secondary healed" "v2"
        (F.read (S.open_file sfs_b (Util.name "heal")) ~pos:0 ~len:2))

let test_dirs_and_remove () =
  Util.in_world (fun () ->
      let _vmm, sfs_a, sfs_b, mirror = make_stack () in
      S.mkdir mirror (Util.name "d");
      let f = S.create mirror (Util.name "d/x") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "deep"));
      F.sync f;
      Util.check_str "nested via mirror ctx" "deep"
        (F.read (S.open_file mirror (Util.name "d/x")) ~pos:0 ~len:4);
      S.remove mirror (Util.name "d/x");
      Alcotest.(check (list string)) "primary dir empty" []
        (S.listdir sfs_a (Util.name "d"));
      Alcotest.(check (list string)) "secondary dir empty" []
        (S.listdir sfs_b (Util.name "d")))

let test_truncate_both () =
  Util.in_world (fun () ->
      let _vmm, sfs_a, sfs_b, mirror = make_stack () in
      let f = S.create mirror (Util.name "t") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "0123456789"));
      F.sync f;
      F.truncate f 3;
      F.sync f;
      Alcotest.(check int) "primary len" 3
        (F.stat (S.open_file sfs_a (Util.name "t"))).Sp_vm.Attr.len;
      Alcotest.(check int) "secondary len" 3
        (F.stat (S.open_file sfs_b (Util.name "t"))).Sp_vm.Attr.len)

let test_mapped_access () =
  Util.in_world (fun () ->
      let vmm, _a, sfs_b, mirror = make_stack () in
      let f = S.create mirror (Util.name "m") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "mirror mapping"));
      F.sync f;
      let m = Sp_vm.Vmm.map vmm f.F.f_mem in
      Util.check_str "mapping reads" "mirror mapping" (Sp_vm.Vmm.read m ~pos:0 ~len:14);
      Sp_vm.Vmm.write m ~pos:0 (Util.bytes_of_string "MIRROR");
      Sp_vm.Vmm.msync m;
      Util.check_str "mapped write replicated" "MIRROR"
        (F.read (S.open_file sfs_b (Util.name "m")) ~pos:0 ~len:6))

let test_fail_repair_fail_other_twin () =
  (* Regression: [repair] must reset the degraded mark, or a later
     failure of the *other* replica cannot fail over (the Io_error used
     to escape because the mirror still thought it was degraded). *)
  Util.in_world (fun () ->
      let vmm = Sp_vm.Vmm.create ~node:"local" "vmm-frf" in
      let mk n label =
        Sp_coherency.Spring_sfs.make_split ~vmm ~name:n ~same_domain:false
          (Util.fresh_disk ~label ())
      in
      let mirror = M.make ~vmm ~name:"mirror-frf" () in
      S.stack_on mirror (mk "frfA" "twinA");
      S.stack_on mirror (mk "frfB" "twinB");
      let f = S.create mirror (Util.name "t") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "v1"));
      F.sync f;
      (* Twin A's device fails mid-sync: the mirror degrades and the
         write completes on twin B alone. *)
      let fail label =
        Sp_fault.plan [ Sp_fault.rule ~point:"disk.write" ~label Sp_fault.Io_error ]
      in
      Sp_fault.with_plan (fail "twinA") (fun () ->
          ignore (F.write f ~pos:0 (Util.bytes_of_string "v2"));
          F.sync f);
      Alcotest.(check bool) "degraded after twin A fails" true
        (M.degraded mirror <> None);
      (* Twin A returns; repair heals it AND clears the degraded mark. *)
      M.repair mirror (Util.name "t");
      Alcotest.(check bool) "repair resets the degraded mark" true
        (M.degraded mirror = None);
      Alcotest.(check bool) "replicas identical after repair" true
        (M.verify mirror (Util.name "t"));
      (* Now the OTHER twin fails: the mirror must fail over again
         instead of letting the Io_error escape. *)
      Sp_fault.with_plan (fail "twinB") (fun () ->
          ignore (F.write f ~pos:0 (Util.bytes_of_string "v3"));
          F.sync f);
      Alcotest.(check bool) "failed over to the repaired twin" true
        (M.degraded mirror <> None);
      Util.check_str "served after the second failover" "v3"
        (F.read (S.open_file mirror (Util.name "t")) ~pos:0 ~len:2))

let suite =
  [
    Alcotest.test_case "fig3: stacks on two underlays" `Quick test_fig3_two_underlays;
    Alcotest.test_case "fail, repair, fail the other twin (regression)" `Quick
      test_fail_repair_fail_other_twin;
    Alcotest.test_case "writes reach both replicas" `Quick test_writes_reach_both;
    Alcotest.test_case "failover on primary loss" `Quick test_failover_on_primary_loss;
    Alcotest.test_case "degraded write + repair" `Quick test_degraded_write_and_repair;
    Alcotest.test_case "dirs and remove" `Quick test_dirs_and_remove;
    Alcotest.test_case "truncate both" `Quick test_truncate_both;
    Alcotest.test_case "mapped access" `Quick test_mapped_access;
  ]
