(* Sp_supervise: layer-domain fail-stop, supervised restart, coherence
   recovery, and the layer-crash sweep. *)

module F = Sp_core.File
module S = Sp_core.Stackable
module DL = Sp_sfs.Disk_layer
module Sup = Sp_supervise
module LCS = Sp_failover.Layer_crash_sweep

(* A supervised two-level stack: disk layer + coherency layer, journal
   on.  [tag] keeps the global registries distinct per test case. *)
let build ?budget ?backoff_ns tag =
  let disk = Sp_blockdev.Disk.create ~label:(tag ^ ".dev") ~blocks:1024 () in
  DL.mkfs ~journal:true disk;
  let vmm = Sp_vm.Vmm.create ~node:"local" (tag ^ ".vmm") in
  let levels =
    [
      Sup.level ~name:(tag ^ ".disk") (fun ~lower:_ ->
          DL.mount ~name:(tag ^ ".disk") disk);
      Sup.level ~name:(tag ^ ".coh") (fun ~lower ->
          let fs = Sp_coherency.Coherency_layer.make ~vmm ~name:(tag ^ ".coh") () in
          S.stack_on fs (Option.get lower);
          fs);
    ]
  in
  let sup = Sup.supervise ?budget ?backoff_ns ~name:tag levels in
  (disk, vmm, sup)

let test_dead_domain_raises () =
  Util.in_world (fun () ->
      let disk = Util.fresh_disk ~blocks:256 ~label:"dd.dev" () in
      let fs = DL.mount ~name:"dd.fs" disk in
      ignore (S.create fs (Util.name "a"));
      Sp_obj.Sdomain.kill fs.S.sfs_domain;
      Alcotest.(check bool) "door call into a dead domain raises" true
        (try
           ignore (S.open_file fs (Util.name "a"));
           false
         with Sp_core.Fserr.Dead_domain who -> who = "dd.fs"))

let test_supervised_restart () =
  Util.in_world (fun () ->
      let _disk, _vmm, sup = build "sr" in
      Fun.protect ~finally:(fun () -> Sup.unsupervise sup) @@ fun () ->
      let fs = Sup.handle sup in
      let f = S.create fs (Util.name "a") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "survives")) ;
      S.sync fs;
      Sup.kill sup "sr.coh";
      (* The next operation through the handle trips Dead_domain and the
         supervisor restarts the layer transparently. *)
      Util.check_str "synced data served after restart" "survives"
        (F.read_all (S.open_file fs (Util.name "a")));
      Alcotest.(check int) "one level rebuilt" 1 (Sup.restarts sup);
      Alcotest.(check int) "the coherency level" 1 (Sup.level_restarts sup "sr.coh");
      (* The restarted stack serves writes too. *)
      let g = S.open_file fs (Util.name "a") in
      ignore (F.write g ~pos:0 (Util.bytes_of_string "rewritten"));
      S.sync fs;
      Util.check_str "writes after restart" "rewritten"
        (F.read_all (S.open_file fs (Util.name "a"))))

let test_rest_for_one () =
  (* Killing a lower level also rebuilds everything stacked above it. *)
  Util.in_world (fun () ->
      let _disk, _vmm, sup = build "rf1" in
      Fun.protect ~finally:(fun () -> Sup.unsupervise sup) @@ fun () ->
      let fs = Sup.handle sup in
      ignore (S.create fs (Util.name "x"));
      S.sync fs;
      Sup.kill sup "rf1.disk";
      ignore (S.open_file fs (Util.name "x"));
      Alcotest.(check int) "disk + coherency rebuilt" 2 (Sup.restarts sup);
      Alcotest.(check int) "disk level" 1 (Sup.level_restarts sup "rf1.disk");
      Alcotest.(check int) "coherency level" 1 (Sup.level_restarts sup "rf1.coh"))

let test_epoch_fencing_and_reconcile () =
  Util.in_world (fun () ->
      let _disk, vmm, sup = build "ef" in
      Fun.protect ~finally:(fun () -> Sup.unsupervise sup) @@ fun () ->
      let fs = Sup.handle sup in
      let f = S.create fs (Util.name "hot") in
      let ps = Sp_vm.Vm_types.page_size in
      for p = 0 to 3 do
        ignore (F.write f ~pos:(p * ps) (Bytes.make ps (Char.chr (65 + p))))
      done;
      S.sync fs;
      let epoch0 =
        Sp_coherency.Coherency_layer.recovery_epoch (Sup.current sup "ef.coh")
      in
      let clean0, _ = Sp_vm.Vmm.reconciled vmm in
      Sup.kill sup "ef.coh";
      (* Reading through the handle restarts the layer; the restarted
         pager is a new incarnation, so the client VMM must reconcile:
         clean pages are dropped and refetched — never served stale. *)
      let got = F.read_all (S.open_file fs (Util.name "hot")) in
      Alcotest.(check int) "full length served" (4 * ps) (Bytes.length got);
      for p = 0 to 3 do
        Alcotest.(check char)
          (Printf.sprintf "page %d refetched, not stale" p)
          (Char.chr (65 + p))
          (Bytes.get got (p * ps))
      done;
      let epoch1 =
        Sp_coherency.Coherency_layer.recovery_epoch (Sup.current sup "ef.coh")
      in
      Alcotest.(check int) "recovery epoch bumped" (epoch0 + 1) epoch1;
      let clean1, _ = Sp_vm.Vmm.reconciled vmm in
      Alcotest.(check bool) "clean pages reconciled" true (clean1 > clean0))

let test_pre_crash_callback_dropped () =
  (* The surviving lower layer still holds a pager channel whose cache
     object is served by the dead incarnation: callback helpers must
     fence it (drop, not call). *)
  Util.in_world (fun () ->
      let t = Sp_vm.Pager_lib.create () in
      let dead = Sp_obj.Sdomain.create ~node:"local" "pcc.cache" in
      let noext = [] in
      let cache =
        {
          Sp_vm.Vm_types.c_domain = dead;
          c_label = "pcc";
          c_flush_back = (fun ~offset:_ ~size:_ -> []);
          c_deny_writes = (fun ~offset:_ ~size:_ -> []);
          c_write_back = (fun ~offset:_ ~size:_ -> []);
          c_delete_range = (fun ~offset:_ ~size:_ -> ());
          c_zero_fill = (fun ~offset:_ ~size:_ -> ());
          c_populate = (fun ~offset:_ ~access:_ _ -> ());
          c_destroy = (fun () -> ());
          c_exten = noext;
        }
      in
      let manager =
        {
          Sp_vm.Vm_types.cm_id = "pcc.mgr";
          cm_domain = Sp_obj.Sdomain.create ~node:"local" "pcc.mgr";
          cm_connect = (fun ~key:_ _ -> cache);
        }
      in
      let pager ~id:_ =
        {
          Sp_vm.Vm_types.p_domain = Sp_obj.Sdomain.create ~node:"local" "pcc.pager";
          p_label = "pcc";
          p_page_in = (fun ~offset:_ ~size ~access:_ -> Bytes.create size);
          p_page_out = (fun ~offset:_ _ -> ());
          p_write_out = (fun ~offset:_ _ -> ());
          p_sync = (fun ~offset:_ _ -> ());
          p_sync_v = (fun _ -> ());
          p_done_with = (fun () -> ());
          p_exten = noext;
        }
      in
      let r = Sp_vm.Pager_lib.bind t ~key:"k" ~make_pager:pager manager in
      Alcotest.(check int) "channel live while domain lives" 1
        (List.length (Sp_vm.Pager_lib.live_channels_for_key t ~key:"k"));
      Sp_obj.Sdomain.kill dead;
      Alcotest.(check int) "pre-crash callback channel fenced" 0
        (List.length (Sp_vm.Pager_lib.live_channels_for_key t ~key:"k"));
      Alcotest.(check bool) "fenced channel removed from the registry" true
        (Sp_vm.Pager_lib.find t ~id:r.Sp_vm.Vm_types.cr_channel_id = None);
      (* A rebind from a restarted manager incarnation reconnects instead
         of dedup-returning the dead channel. *)
      let r2 = Sp_vm.Pager_lib.bind t ~key:"k" ~make_pager:pager manager in
      Alcotest.(check bool) "fresh channel id" true
        (r2.Sp_vm.Vm_types.cr_channel_id <> r.Sp_vm.Vm_types.cr_channel_id))

let test_budget_give_up () =
  Util.in_world (fun () ->
      let _disk, _vmm, sup = build ~budget:0 "bg" in
      Fun.protect ~finally:(fun () -> Sup.unsupervise sup) @@ fun () ->
      let fs = Sup.handle sup in
      ignore (S.create fs (Util.name "a"));
      Sup.kill sup "bg.coh";
      Alcotest.(check bool) "budget 0 gives up" true
        (try
           ignore (S.open_file fs (Util.name "a"));
           false
         with Sup.Give_up _ -> true))

let test_backoff_deterministic () =
  (* The backoff is exponential in the level's restart count and charged
     to the simulated clock only — two identical runs advance the clock
     identically. *)
  let run () =
    Util.in_world (fun () ->
        let _disk, _vmm, sup = build ~backoff_ns:1_000_000 "bk" in
        Fun.protect ~finally:(fun () -> Sup.unsupervise sup) @@ fun () ->
        let fs = Sup.handle sup in
        ignore (S.create fs (Util.name "a"));
        S.sync fs;
        let restart () =
          Sup.kill sup "bk.coh";
          let t0 = Sp_sim.Simclock.now () in
          ignore (S.open_file fs (Util.name "a"));
          Sp_sim.Simclock.now () - t0
        in
        let d1 = restart () in
        let d2 = restart () in
        (d1, d2))
  in
  let d1, d2 = run () in
  let d1', d2' = run () in
  Alcotest.(check (pair int int)) "bit-identical across runs" (d1, d2) (d1', d2');
  (* The delta is the extra backoff step give or take a handful of 1 ns
     door crossings (the two recoveries make slightly different call
     sequences under the [fast] model). *)
  Alcotest.(check bool)
    (Printf.sprintf "second restart waits one extra backoff step (delta %d)"
       (d2 - d1))
    true
    (abs ((d2 - d1) - 1_000_000) < 64)

let test_disarmed_overhead_flat () =
  (* Acceptance: the liveness check must not add simulated cost to the
     door call — a cross-domain call costs exactly the model's
     cross-domain charge, nothing more. *)
  Util.in_world (fun () ->
      let d = Sp_obj.Sdomain.create ~node:"local" "ovh" in
      let model = Sp_sim.Cost_model.current () in
      let t0 = Sp_sim.Simclock.now () in
      Sp_obj.Door.call d (fun () -> ());
      Alcotest.(check int) "exactly the model's cross-domain cost"
        model.Sp_sim.Cost_model.cross_domain_call_ns
        (Sp_sim.Simclock.now () - t0))

let test_mrsw_epoch () =
  Util.in_world (fun () ->
      let t = Sp_coherency.Mrsw.create () in
      Alcotest.(check int) "fresh state at epoch 0" 0 (Sp_coherency.Mrsw.epoch t);
      Sp_coherency.Mrsw.bump_epoch t;
      Alcotest.(check int) "explicit bump" 1 (Sp_coherency.Mrsw.epoch t);
      Sp_coherency.Mrsw.clear t;
      Alcotest.(check int) "clear fences the old incarnation" 2
        (Sp_coherency.Mrsw.epoch t))

let test_dfs_server_reconnect () =
  (* A DFS server domain crash: the client import holds the server by
     name, so once the supervisor restarts the server the same import
     keeps working (memoized remote files of the dead incarnation are
     invalidated). *)
  Util.in_world (fun () ->
      let net = Sp_dfs.Net.create () in
      let disk = Util.fresh_disk ~blocks:512 ~label:"dfss.dev" () in
      let base = DL.mount ~name:"dfss.base" disk in
      let vmm = Sp_vm.Vmm.create ~node:"srv" "dfss.vmm" in
      let levels =
        [
          Sup.level ~name:"dfss.srv" (fun ~lower ->
              let fs =
                Sp_dfs.Dfs.make_server ~node:"srv" ~net ~vmm ~name:"dfss.srv" ()
              in
              S.stack_on fs (Option.get lower);
              fs);
        ]
      in
      let sup = Sup.supervise ~base ~name:"dfss" levels in
      Fun.protect ~finally:(fun () -> Sup.unsupervise sup) @@ fun () ->
      let server = Sup.top sup in
      let import = Sp_dfs.Dfs.import ~net ~client_node:"cli" server in
      let f = S.create import (Util.name "doc") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "remote data"));
      S.sync import;
      Sup.kill sup "dfss.srv";
      Util.check_str "client reconnects to the restarted server" "remote data"
        (Sup.call (fun () -> F.read_all (S.open_file import (Util.name "doc"))));
      Alcotest.(check int) "server restarted once" 1 (Sup.restarts sup))

let test_sweep_point () =
  Util.in_world (fun () ->
      let outcome, (restarts, _, _) =
        LCS.run_point ~supervised:true ~layer:"lcs.crypt" ~ops:6 ~seed:3
          ~kill_at:3
      in
      Alcotest.(check bool) "supervised point served" true (outcome = LCS.Served);
      Alcotest.(check bool) "supervisor restarted" true (restarts > 0);
      let outcome, _ =
        LCS.run_point ~supervised:false ~layer:"lcs.crypt" ~ops:6 ~seed:3
          ~kill_at:3
      in
      Alcotest.(check bool) "unsupervised point unavailable" true
        (match outcome with LCS.Unavailable _ -> true | _ -> false))

let suite =
  [
    Alcotest.test_case "dead domain raises" `Quick test_dead_domain_raises;
    Alcotest.test_case "supervised restart" `Quick test_supervised_restart;
    Alcotest.test_case "rest-for-one rebuild" `Quick test_rest_for_one;
    Alcotest.test_case "epoch fencing + reconcile" `Quick
      test_epoch_fencing_and_reconcile;
    Alcotest.test_case "pre-crash callback dropped" `Quick
      test_pre_crash_callback_dropped;
    Alcotest.test_case "restart budget gives up" `Quick test_budget_give_up;
    Alcotest.test_case "deterministic backoff" `Quick test_backoff_deterministic;
    Alcotest.test_case "disarmed overhead flat" `Quick test_disarmed_overhead_flat;
    Alcotest.test_case "mrsw recovery epoch" `Quick test_mrsw_epoch;
    Alcotest.test_case "dfs server reconnect" `Quick test_dfs_server_reconnect;
    Alcotest.test_case "layer crash sweep point" `Quick test_sweep_point;
  ]
