module F = Sp_core.File
module S = Sp_core.Stackable
module N = Sp_naming.Sname

let make_sfs () =
  let vmm = Sp_vm.Vmm.create ~node:"local" "vmm0" in
  let disk = Util.fresh_disk () in
  (vmm, Sp_coherency.Spring_sfs.make_split ~vmm ~name:"sfs" ~same_domain:false disk)

(* --- File helpers --- *)

let test_read_all () =
  Util.in_world (fun () ->
      let _vmm, sfs = make_sfs () in
      let f = S.create sfs (Util.name "r") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "whole file"));
      Util.check_str "read_all" "whole file" (F.read_all f))

let test_of_obj () =
  Util.in_world (fun () ->
      let _vmm, sfs = make_sfs () in
      let f = S.create sfs (Util.name "x") in
      Alcotest.(check bool) "file narrows" true (F.of_obj (F.File f) <> None);
      Alcotest.(check bool) "context does not" true
        (F.of_obj (Sp_naming.Context.Context sfs.S.sfs_ctx) = None))

(* --- Stack builder --- *)

let test_stack_builder () =
  Util.in_world (fun () ->
      let vmm, sfs = make_sfs () in
      let creators =
        Sp_naming.Context.make ~domain:(Sp_obj.Sdomain.create "creators")
          ~label:"fs_creators" ()
      in
      S.register_creator creators (Sp_coherency.Coherency_layer.creator ~vmm ());
      S.register_creator creators (Sp_compfs.Compfs.creator ~vmm ());
      let top =
        Sp_core.Stack_builder.stack ~creators ~base:sfs
          [ ("compfs", "comp0"); ("coherency", "coh1") ]
      in
      Alcotest.(check (list string)) "tower composed"
        [ "coherency"; "compfs"; "coherency"; "sfs_disk" ]
        (List.map (fun l -> l.S.sfs_type) (Sp_core.Stack_builder.layers top));
      (* It actually works end to end. *)
      let f = S.create top (Util.name "built") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "stacked"));
      Util.check_str "io" "stacked" (F.read f ~pos:0 ~len:7))

let test_expose_and_resolve_fs () =
  Util.in_world (fun () ->
      let _vmm, sfs = make_sfs () in
      let root =
        Sp_naming.Context.make ~domain:(Sp_obj.Sdomain.create "ns") ~label:"/" ()
      in
      Sp_core.Stack_builder.expose ~root ~at:(N.of_string "mnt") sfs;
      let got = Sp_core.Stack_builder.resolve_fs root (N.of_string "mnt") in
      Alcotest.(check string) "same fs" sfs.S.sfs_name got.S.sfs_name;
      Alcotest.check_raises "not an fs"
        (S.Stack_error "nope: not a stackable file system") (fun () ->
          Sp_naming.Context.bind root (N.of_string "nope") (Test_naming.Leaf 1);
          ignore (Sp_core.Stack_builder.resolve_fs root (N.of_string "nope"))))

(* --- Object interposition (§5) --- *)

let test_interpose_logging () =
  Util.in_world (fun () ->
      let _vmm, sfs = make_sfs () in
      let f = S.create sfs (Util.name "watched") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "data"));
      let log = ref [] in
      let hooks = Sp_core.Interpose.logging_hooks ~log:(fun op -> log := op :: !log) in
      let watched =
        Sp_core.Interpose.interpose_file ~domain:(Sp_obj.Sdomain.create "wd") hooks f
      in
      ignore (F.read watched ~pos:0 ~len:4);
      ignore (F.stat watched);
      ignore (F.write watched ~pos:0 (Util.bytes_of_string "x"));
      Alcotest.(check (list string)) "ops observed in order" [ "read"; "stat"; "write" ]
        (List.rev !log);
      (* Forwarding is transparent. *)
      Util.check_str "write reached original" "xata" (F.read f ~pos:0 ~len:4))

let test_interpose_read_only () =
  Util.in_world (fun () ->
      let _vmm, sfs = make_sfs () in
      let f = S.create sfs (Util.name "ro") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "locked"));
      let ro =
        Sp_core.Interpose.interpose_file ~domain:(Sp_obj.Sdomain.create "ro")
          (Sp_core.Interpose.read_only_hooks ())
          f
      in
      Util.check_str "reads pass" "locked" (F.read ro ~pos:0 ~len:6);
      (try
         ignore (F.write ro ~pos:0 (Util.bytes_of_string "nope"));
         Alcotest.fail "write should be refused"
       with Sp_core.Fserr.Read_only _ -> ());
      try
        F.truncate ro 0;
        Alcotest.fail "truncate should be refused"
      with Sp_core.Fserr.Read_only _ -> ())

let test_interpose_override_read () =
  Util.in_world (fun () ->
      let _vmm, sfs = make_sfs () in
      let f = S.create sfs (Util.name "up") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "lower case"));
      let upper_hooks =
        {
          Sp_core.Interpose.no_hooks with
          on_read =
            Some
              (fun orig ~pos ~len ->
                Bytes.map
                  (fun c -> Char.uppercase_ascii c)
                  (F.read orig ~pos ~len));
        }
      in
      let shouting =
        Sp_core.Interpose.interpose_file ~domain:(Sp_obj.Sdomain.create "up")
          upper_hooks f
      in
      Util.check_str "semantics changed per-file" "LOWER CASE"
        (F.read shouting ~pos:0 ~len:10);
      Util.check_str "original untouched" "lower case" (F.read f ~pos:0 ~len:10))

let test_interpose_names () =
  (* Name-resolution-time interposition: replace a context binding and
     intercept selected file resolutions. *)
  Util.in_world (fun () ->
      let _vmm, sfs = make_sfs () in
      S.mkdir sfs (Util.name "dir");
      let secret = S.create sfs (Util.name "dir/secret") in
      ignore (F.write secret ~pos:0 (Util.bytes_of_string "hidden"));
      let plain = S.create sfs (Util.name "dir/plain") in
      ignore (F.write plain ~pos:0 (Util.bytes_of_string "open"));
      let root =
        Sp_naming.Context.make ~domain:(Sp_obj.Sdomain.create "ns") ~label:"/" ()
      in
      let dir_ctx =
        Sp_naming.Context.resolve_context sfs.S.sfs_ctx (N.of_string "dir")
      in
      Sp_naming.Context.bind root (N.of_string "mnt")
        (Sp_naming.Context.Context
           (Sp_naming.Context.make ~domain:(Sp_obj.Sdomain.create "mnt") ~label:"mnt" ()));
      Sp_naming.Context.bind root (N.of_string "mnt/dir")
        (Sp_naming.Context.Context dir_ctx);
      let domain = Sp_obj.Sdomain.create "interposer" in
      let count = ref 0 in
      let wrap f =
        Sp_core.Interpose.interpose_file ~domain
          (Sp_core.Interpose.logging_hooks ~log:(fun _ -> incr count))
          f
      in
      let _orig =
        Sp_core.Interpose.interpose_names ~domain ~root ~at:(N.of_string "mnt/dir")
          ~select:(fun n -> n = "secret")
          ~wrap ()
      in
      (* Resolutions now go through the interposer. *)
      let via_name path =
        match Sp_naming.Context.resolve root (N.of_string path) with
        | F.File f -> f
        | _ -> Alcotest.fail "expected file"
      in
      let s = via_name "mnt/dir/secret" in
      let p = via_name "mnt/dir/plain" in
      ignore (F.read s ~pos:0 ~len:6);
      ignore (F.read p ~pos:0 ~len:4);
      Alcotest.(check int) "only selected file intercepted" 1 !count;
      Util.check_str "data still flows" "hidden" (F.read s ~pos:0 ~len:6))

let test_interpose_names_requires_bind_permission () =
  Util.in_world (fun () ->
      let _vmm, sfs = make_sfs () in
      let acl = Sp_naming.Acl.make [ ("*", [ Sp_naming.Acl.Resolve ]) ] in
      let root =
        Sp_naming.Context.make ~domain:(Sp_obj.Sdomain.create "ns") ~label:"/" ~acl ()
      in
      (* Binding (and hence interposing) is denied to everyone. *)
      ignore sfs;
      try
        let _ =
          Sp_core.Interpose.interpose_names ~principal:"mallory"
            ~domain:(Sp_obj.Sdomain.create "evil") ~root ~at:(N.of_string "x")
            ~select:(fun _ -> true)
            ~wrap:Fun.id ()
        in
        Alcotest.fail "unauthenticated interposition must fail"
      with Sp_naming.Context.Denied _ | Sp_naming.Context.Unbound _ -> ())

(* --- Mapped context --- *)

let test_mapped_context_on_miss () =
  (* Layers "may even export files that do not actually exist" (§4.1). *)
  Util.in_world (fun () ->
      let _vmm, sfs = make_sfs () in
      let domain = Sp_obj.Sdomain.create "synth" in
      let synthesized = ref 0 in
      let ctx =
        Sp_core.Mapped_context.make ~domain ~label:"synth"
          ~lower:sfs.S.sfs_ctx ~wrap_file:Fun.id
          ~on_miss:(fun component ->
            if component = "virtual" then begin
              incr synthesized;
              Some (Test_naming.Leaf 42)
            end
            else None)
          ()
      in
      (match Sp_naming.Context.resolve ctx (N.of_string "virtual") with
      | Test_naming.Leaf 42 -> ()
      | _ -> Alcotest.fail "synthesised object expected");
      Alcotest.(check int) "on_miss consulted" 1 !synthesized;
      (try
         ignore (Sp_naming.Context.resolve ctx (N.of_string "absent"));
         Alcotest.fail "other misses must propagate"
       with Sp_naming.Context.Unbound _ -> ()))

let test_rename () =
  Util.in_world (fun () ->
      let vmm, sfs = make_sfs () in
      (* Rename through a two-layer stack. *)
      let comp = Sp_compfs.Compfs.make ~vmm ~name:"ren-comp" () in
      S.stack_on comp sfs;
      let f = S.create comp (Util.name "old") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "movable"));
      F.sync f;
      S.rename comp ~src:(Util.name "old") ~dst:(Util.name "new");
      Alcotest.check_raises "old gone" (Sp_core.Fserr.No_such_file "old") (fun () ->
          ignore (S.open_file comp (Util.name "old")));
      Util.check_str "content under new name" "movable"
        (F.read (S.open_file comp (Util.name "new")) ~pos:0 ~len:7);
      (* Destination conflicts rejected. *)
      ignore (S.create comp (Util.name "third"));
      try
        S.rename comp ~src:(Util.name "third") ~dst:(Util.name "new");
        Alcotest.fail "rename over existing should fail"
      with Sp_core.Fserr.Already_exists _ -> ())

(* Two tasks rename the same source concurrently.  Door crossings
   suspend under [Sp_sched] (paper_1993 charges them), so without the
   per-directory rename lock both tasks pass the lookup before either
   removes — last-wins leaves the file bound under two names.  With the
   lock exactly one wins and the loser fails loudly. *)
let test_concurrent_rename_race () =
  Util.in_world ~model:Sp_sim.Cost_model.paper_1993 (fun () ->
      let _vmm, sfs = make_sfs () in
      let f = S.create sfs (Util.name "race-src") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "single copy"));
      F.sync f;
      let wins = ref 0 and losses = ref 0 in
      let mover dst () =
        match S.rename sfs ~src:(Util.name "race-src") ~dst:(Util.name dst) with
        | () -> incr wins
        | exception Sp_core.Fserr.No_such_file _ -> incr losses
      in
      ignore (Sp_sched.run ~seed:5 [ mover "race-a"; mover "race-b" ]);
      Alcotest.(check int) "exactly one rename won" 1 !wins;
      Alcotest.(check int) "the loser failed loudly" 1 !losses;
      let bound p =
        match S.open_file sfs (Util.name p) with
        | _ -> 1
        | exception Sp_core.Fserr.No_such_file _ -> 0
      in
      Alcotest.(check int) "source unbound" 0 (bound "race-src");
      Alcotest.(check int) "bound under exactly one destination" 1
        (bound "race-a" + bound "race-b");
      let survivor = if bound "race-a" = 1 then "race-a" else "race-b" in
      Util.check_str "content preserved under the winner" "single copy"
        (F.read (S.open_file sfs (Util.name survivor)) ~pos:0 ~len:11))

let test_cached_fs_view () =
  Util.in_world ~model:Sp_sim.Cost_model.paper_1993 (fun () ->
      let _vmm, sfs = make_sfs () in
      ignore (S.create sfs (Util.name "hot"));
      let view = Sp_core.Cached_fs.attach sfs in
      (* First open misses; later opens hit without domain crossings. *)
      ignore (S.open_file view (Util.name "hot"));
      let before = Sp_sim.Metrics.snapshot () in
      for _ = 1 to 10 do
        ignore (S.open_file view (Util.name "hot"))
      done;
      let d = Sp_sim.Metrics.diff ~before ~after:(Sp_sim.Metrics.snapshot ()) in
      Alcotest.(check int) "cached opens cross no domains" 0
        d.Sp_sim.Metrics.cross_domain_calls;
      let stats = Sp_core.Cached_fs.stats view in
      Alcotest.(check int) "hits counted" 10 stats.Sp_naming.Name_cache.hits;
      (* Mutations through the view invalidate the cached entry. *)
      S.remove view (Util.name "hot");
      Alcotest.check_raises "removal visible immediately"
        (Sp_core.Fserr.No_such_file "hot") (fun () ->
          ignore (S.open_file view (Util.name "hot")));
      (* Re-creating through the view is also coherent. *)
      ignore (S.create view (Util.name "hot"));
      ignore (S.open_file view (Util.name "hot")))

let suite =
  [
    Alcotest.test_case "file read_all" `Quick test_read_all;
    Alcotest.test_case "file of_obj" `Quick test_of_obj;
    Alcotest.test_case "stack builder composes towers" `Quick test_stack_builder;
    Alcotest.test_case "expose and resolve fs" `Quick test_expose_and_resolve_fs;
    Alcotest.test_case "interpose: logging watchdog" `Quick test_interpose_logging;
    Alcotest.test_case "interpose: read-only watchdog" `Quick test_interpose_read_only;
    Alcotest.test_case "interpose: semantic override" `Quick
      test_interpose_override_read;
    Alcotest.test_case "interpose at name resolution" `Quick test_interpose_names;
    Alcotest.test_case "interposition needs authentication" `Quick
      test_interpose_names_requires_bind_permission;
    Alcotest.test_case "mapped context on_miss" `Quick test_mapped_context_on_miss;
    Alcotest.test_case "rename through stack" `Quick test_rename;
    Alcotest.test_case "rename: concurrent same-source race" `Quick
      test_concurrent_rename_race;
    Alcotest.test_case "6.4: cached-fs view" `Quick test_cached_fs_view;
  ]
