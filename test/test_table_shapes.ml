(* Structural assertions behind Table 2 and Table 3: the benchmark harness
   prints the numbers; these tests pin the *shape* so regressions are
   caught by `dune runtest`. *)

module F = Sp_core.File
module S = Sp_core.Stackable

let ps = Sp_vm.Vm_types.page_size

type config = { fs : S.t; label : string }

let make_config kind =
  let vmm = Sp_vm.Vmm.create ~node:"local" ("vmm-" ^ kind) in
  let disk = Util.fresh_disk ~blocks:2048 () in
  let fs =
    match kind with
    | "mono" -> Sp_coherency.Spring_sfs.make_mono ~vmm ~name:("sfs-" ^ kind) disk
    | "same" ->
        Sp_coherency.Spring_sfs.make_split ~vmm ~name:("sfs-" ^ kind)
          ~same_domain:true disk
    | _ ->
        Sp_coherency.Spring_sfs.make_split ~vmm ~name:("sfs-" ^ kind)
          ~same_domain:false disk
  in
  { fs; label = kind }

(* Simulated time for one warm operation. *)
let time_one f =
  let t0 = Sp_sim.Simclock.now () in
  f ();
  Sp_sim.Simclock.now () - t0

let setup_file cfg =
  let f = S.create cfg.fs (Util.name "bench") in
  ignore (F.write f ~pos:0 (Util.pattern_bytes ps));
  (* Warm every path. *)
  ignore (S.open_file cfg.fs (Util.name "bench"));
  ignore (F.read f ~pos:0 ~len:ps);
  ignore (F.stat f);
  f

let test_open_overheads () =
  Util.in_world ~model:Sp_sim.Cost_model.paper_1993 (fun () ->
      let open_time cfg =
        let _ = setup_file cfg in
        time_one (fun () -> ignore (S.open_file cfg.fs (Util.name "bench")))
      in
      let mono = open_time (make_config "mono") in
      let same = open_time (make_config "same") in
      let split = open_time (make_config "split") in
      let ratio a b = float_of_int a /. float_of_int b in
      (* Paper: +39% for one domain, +101% for two domains. *)
      Alcotest.(check bool)
        (Printf.sprintf "same-domain open overhead moderate (%.2fx)" (ratio same mono))
        true
        (ratio same mono > 1.15 && ratio same mono < 1.8);
      Alcotest.(check bool)
        (Printf.sprintf "two-domain open overhead large (%.2fx)" (ratio split mono))
        true
        (ratio split mono > 1.6 && ratio split mono < 2.6);
      Alcotest.(check bool) "two domains slower than one" true (split > same))

let test_cached_ops_no_stacking_overhead () =
  (* "when the coherency layer caches the results of read, write, and stat
     calls, there is no overhead from stacking" *)
  Util.in_world ~model:Sp_sim.Cost_model.paper_1993 (fun () ->
      let measure cfg =
        let f = setup_file cfg in
        let read = time_one (fun () -> ignore (F.read f ~pos:0 ~len:ps)) in
        let write =
          time_one (fun () -> ignore (F.write f ~pos:0 (Util.pattern_bytes ps)))
        in
        let stat = time_one (fun () -> ignore (F.stat f)) in
        (read, write, stat)
      in
      let r1, w1, s1 = measure (make_config "mono") in
      let r2, w2, s2 = measure (make_config "same") in
      let r3, w3, s3 = measure (make_config "split") in
      let close a b =
        let fa = float_of_int a and fb = float_of_int b in
        Float.abs (fa -. fb) /. Float.max fa fb < 0.05
      in
      Alcotest.(check bool) "cached read identical across configs" true
        (close r1 r2 && close r2 r3);
      Alcotest.(check bool) "cached write identical across configs" true
        (close w1 w2 && close w2 w3);
      Alcotest.(check bool) "cached stat identical across configs" true
        (close s1 s2 && close s2 s3);
      (* And in the right ballpark: ~0.1-0.3 ms for 4KB cached IO. *)
      Alcotest.(check bool) "cached 4KB read ~0.1-0.4ms" true
        (r1 > 50_000 && r1 < 400_000))

let test_uncached_ops_disk_bound () =
  (* "without caching by the coherency layer ... the disk overhead is much
     higher than the cross domain call overhead" *)
  Util.in_world ~model:Sp_sim.Cost_model.paper_1993 (fun () ->
      let measure cfg =
        let f = setup_file cfg in
        S.sync cfg.fs;
        S.drop_caches cfg.fs;
        time_one (fun () -> ignore (F.read f ~pos:0 ~len:ps))
      in
      let mono = measure (make_config "mono") in
      let split = measure (make_config "split") in
      Alcotest.(check bool) "uncached read is disk-bound (>5ms)" true
        (mono > 5_000_000);
      let ratio = float_of_int split /. float_of_int mono in
      Alcotest.(check bool)
        (Printf.sprintf "stacking overhead insignificant when disk-bound (%.3fx)"
           ratio)
        true
        (ratio < 1.1))

let test_spring_vs_sunos_ratios () =
  (* Table 3: Spring is 2-7x slower than SunOS on warm operations. *)
  Util.in_world ~model:Sp_sim.Cost_model.paper_1993 (fun () ->
      (* SunOS side. *)
      let disk = Sp_blockdev.Disk.create ~blocks:2048 () in
      let ufs = Sp_baseline.Unixfs.mkfs_and_mount disk in
      let fd = Sp_baseline.Unixfs.creat ufs "bench" in
      ignore (Sp_baseline.Unixfs.write ufs fd ~pos:0 (Util.pattern_bytes ps));
      ignore (Sp_baseline.Unixfs.openf ufs "bench");
      ignore (Sp_baseline.Unixfs.read ufs fd ~pos:0 ~len:ps);
      ignore (Sp_baseline.Unixfs.fstat ufs fd);
      let u_open = time_one (fun () -> ignore (Sp_baseline.Unixfs.openf ufs "bench")) in
      let u_read =
        time_one (fun () -> ignore (Sp_baseline.Unixfs.read ufs fd ~pos:0 ~len:ps))
      in
      let u_stat = time_one (fun () -> ignore (Sp_baseline.Unixfs.fstat ufs fd)) in
      (* Spring side (production config: split domains). *)
      let cfg = make_config "split" in
      let f = setup_file cfg in
      let s_open = time_one (fun () -> ignore (S.open_file cfg.fs (Util.name "bench"))) in
      let s_read = time_one (fun () -> ignore (F.read f ~pos:0 ~len:ps)) in
      let s_stat = time_one (fun () -> ignore (F.stat f)) in
      let in_band what lo spring unix =
        let r = float_of_int spring /. float_of_int unix in
        Alcotest.(check bool)
          (Printf.sprintf "%s: spring/sunos ratio %.1fx in [%.1f, 8]" what r lo)
          true
          (r >= lo && r <= 8.0)
      in
      in_band "open" 1.5 s_open u_open;
      (* The bulk path hands cached data across the door by reference, so a
         warm read costs barely more than the monolithic baseline (the
         paper's 0.16 vs 0.11 ms is a 1.45x; ours lands nearer 1.1x). *)
      in_band "read" 1.0 s_read u_read;
      in_band "stat" 1.5 s_stat u_stat;
      (* Absolute SunOS magnitudes match Table 3's order. *)
      Alcotest.(check bool) "sunos open ~127us" true
        (u_open > 60_000 && u_open < 250_000);
      Alcotest.(check bool) "sunos fstat ~28us" true
        (u_stat > 10_000 && u_stat < 60_000))

let test_name_cache_removes_open_overhead () =
  (* §6.4: "name caching can be used to eliminate the [domain-crossing
     open] overhead". *)
  Util.in_world ~model:Sp_sim.Cost_model.paper_1993 (fun () ->
      let cfg = make_config "split" in
      let _ = setup_file cfg in
      let plain = time_one (fun () -> ignore (S.open_file cfg.fs (Util.name "bench"))) in
      let cache = Sp_naming.Name_cache.create ~capacity:64 () in
      ignore (S.open_file_cached cache cfg.fs (Util.name "bench"));
      let cached =
        time_one (fun () -> ignore (S.open_file_cached cache cfg.fs (Util.name "bench")))
      in
      Alcotest.(check bool)
        (Printf.sprintf "cached open (%.0fus) << plain open (%.0fus)"
           (float_of_int cached /. 1e3)
           (float_of_int plain /. 1e3))
        true
        (cached * 4 < plain))

let test_macro_claim () =
  (* §6.4: the open overhead "will not be significant for real
     applications". *)
  Util.in_world ~model:Sp_sim.Cost_model.paper_1993 (fun () ->
      let results = Sp_benchlib.Macro.run () in
      match results with
      | [ mono; _one; two ] ->
          let overhead =
            float_of_int two.Sp_benchlib.Macro.total_ns
            /. float_of_int mono.Sp_benchlib.Macro.total_ns
          in
          Alcotest.(check bool)
            (Printf.sprintf "macro overhead small (%.2fx < 1.25x)" overhead)
            true (overhead < 1.25)
      | _ -> Alcotest.fail "expected three configurations")

let suite =
  [
    Alcotest.test_case "table2: open overheads" `Quick test_open_overheads;
    Alcotest.test_case "table2: cached ops overhead-free" `Quick
      test_cached_ops_no_stacking_overhead;
    Alcotest.test_case "table2: uncached disk-bound" `Quick
      test_uncached_ops_disk_bound;
    Alcotest.test_case "table3: spring vs sunos ratios" `Quick
      test_spring_vs_sunos_ratios;
    Alcotest.test_case "6.4: name cache kills open overhead" `Quick
      test_name_cache_removes_open_overhead;
    Alcotest.test_case "6.4: macro workload overhead small" `Slow test_macro_claim;
  ]
