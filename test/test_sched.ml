(* Sp_sched: deterministic discrete-event scheduling — task interleaving,
   busy-vs-idle accounting, queueing resources (Station, Rwlock), abort
   cleanup, and the determinism property the sweeps and the scale bench
   rely on (same seed => identical schedule, metrics and final clock). *)

module F = Sp_core.File
module S = Sp_core.Stackable
module C = Sp_sim.Simclock
module M = Sp_sim.Metrics
module Sched = Sp_sched

(* --- interleaving and time accounting --- *)

let test_tasks_overlap_service_time () =
  Util.in_world (fun () ->
      let t0 = C.now () in
      let stats =
        Sched.run [ (fun () -> C.advance 1_000); (fun () -> C.advance 1_000) ]
      in
      (* Independent service times overlap: the clock moves 1000, not 2000. *)
      Alcotest.(check int) "wall time is the max, not the sum" 1_000 (C.now () - t0);
      Alcotest.(check int) "both tasks ran" 2 stats.Sched.st_tasks;
      Alcotest.(check bool) "switched between tasks" true (stats.Sched.st_switches >= 2))

let test_sleep_is_idle_wait_is_busy () =
  Util.in_world (fun () ->
      let b0 = Sp_sim.Sched_hook.total_busy () in
      let t0 = C.now () in
      ignore (Sched.run [ (fun () -> Sched.sleep 700) ]);
      Alcotest.(check int) "sleep advances the clock" 700 (C.now () - t0);
      Alcotest.(check int) "sleep charges no busy time" 0
        (Sp_sim.Sched_hook.total_busy () - b0);
      ignore (Sched.run [ (fun () -> C.advance 300) ]);
      Alcotest.(check int) "advance charges busy time" 300
        (Sp_sim.Sched_hook.total_busy () - b0))

let test_spawn_and_join () =
  Util.in_world (fun () ->
      let log = ref [] in
      let push x = log := x :: !log in
      ignore
        (Sched.run
           [
             (fun () ->
               let child =
                 Sched.spawn ~name:"child" (fun () ->
                     C.advance 500;
                     push "child")
               in
               Sched.join child;
               push "parent");
           ]);
      Alcotest.(check (list string))
        "join waits for the child" [ "parent"; "child" ] !log)

let test_deadlock_detected () =
  Util.in_world (fun () ->
      let iv : unit Sched.Ivar.t = Sched.Ivar.create () in
      let blocked () = Sched.Ivar.read iv in
      match Sched.run [ blocked; blocked ] with
      | _ -> Alcotest.fail "expected Deadlock"
      | exception Sched.Deadlock msg ->
          Alcotest.(check bool) "names the waiters" true
            (String.length msg > 0))

let test_abort_unwinds_blocked_tasks () =
  Util.in_world (fun () ->
      let iv : unit Sched.Ivar.t = Sched.Ivar.create () in
      let cleaned = ref false in
      let victim () =
        Fun.protect
          ~finally:(fun () -> cleaned := true)
          (fun () -> Sched.Ivar.read iv)
      in
      let killer () =
        C.advance 100;
        failwith "boom"
      in
      (match Sched.run [ victim; killer ] with
      | _ -> Alcotest.fail "expected the task exception to propagate"
      | exception Failure msg -> Alcotest.(check string) "first exception wins" "boom" msg);
      Alcotest.(check bool) "blocked task's finalizer ran" true !cleaned)

(* --- Station --- *)

let test_station_queues_excess () =
  Util.in_world (fun () ->
      let st = Sched.Station.create ~servers:1 "t_station" in
      let q0 = M.queue_ns () in
      let t0 = C.now () in
      ignore
        (Sched.run
           [ (fun () -> Sched.Station.serve st 1_000);
             (fun () -> Sched.Station.serve st 1_000) ]);
      (* One server: the second client queues behind the first. *)
      Alcotest.(check int) "service serializes" 2_000 (C.now () - t0);
      let served, queued = Sched.Station.stats st in
      Alcotest.(check int) "both served" 2 served;
      Alcotest.(check int) "one had to queue" 1 queued;
      Alcotest.(check int) "queue wait recorded" 1_000 (M.queue_ns () - q0))

let test_station_recovers_after_abort () =
  Util.in_world (fun () ->
      let st = Sched.Station.create ~servers:1 "t_station_abort" in
      (* Abort the run while a task holds the station's only slot. *)
      (match
         Sched.run
           [
             (fun () -> Sched.Station.serve st 1_000);
             (fun () ->
               C.advance 10;
               failwith "crash");
           ]
       with
      | _ -> Alcotest.fail "expected abort"
      | exception Failure _ -> ());
      (* The epoch guard drops the stale hold: the next run must not hang. *)
      let t0 = C.now () in
      ignore (Sched.run [ (fun () -> Sched.Station.serve st 500) ]);
      Alcotest.(check int) "fresh run serves immediately" 500 (C.now () - t0))

(* --- Rwlock --- *)

let test_rwlock_readers_share () =
  Util.in_world (fun () ->
      let l = Sched.Rwlock.create "t_rw_share" in
      let t0 = C.now () in
      let reader () = Sched.Rwlock.with_read l (fun () -> C.advance 1_000) in
      ignore (Sched.run [ reader; reader ]);
      Alcotest.(check int) "two readers overlap" 1_000 (C.now () - t0))

let test_rwlock_writers_exclude () =
  Util.in_world (fun () ->
      let l = Sched.Rwlock.create "t_rw_excl" in
      let t0 = C.now () in
      let writer () = Sched.Rwlock.with_write l (fun () -> C.advance 1_000) in
      ignore (Sched.run [ writer; writer ]);
      Alcotest.(check int) "writers serialize" 2_000 (C.now () - t0);
      Alcotest.(check bool) "contention counted" true (Sched.Rwlock.contended l >= 1))

(* Strict-FIFO admission: a writer queued behind an active reader blocks
   readers that arrive later, so a steady reader stream cannot starve
   it.  Arrival order is forced with idle sleeps. *)
let test_rwlock_no_writer_starvation () =
  Util.in_world (fun () ->
      let l = Sched.Rwlock.create "t_rw_fair" in
      let log = ref [] in
      let enter who = log := who :: !log in
      let r1 () =
        Sched.Rwlock.with_read l (fun () ->
            enter "r1";
            C.advance 1_000)
      in
      let w () =
        Sched.sleep 100;
        Sched.Rwlock.with_write l (fun () ->
            enter "w";
            C.advance 1_000)
      in
      let r2 () =
        Sched.sleep 200;
        Sched.Rwlock.with_read l (fun () ->
            enter "r2";
            C.advance 1_000)
      in
      ignore (Sched.run [ r1; w; r2 ]);
      Alcotest.(check (list string))
        "writer admitted before the later reader" [ "r2"; "w"; "r1" ] !log)

let test_rwlock_reentrant () =
  Util.in_world (fun () ->
      let l = Sched.Rwlock.create "t_rw_re" in
      let hit = ref 0 in
      ignore
        (Sched.run
           [
             (fun () ->
               Sched.Rwlock.with_write l (fun () ->
                   Sched.Rwlock.with_write l (fun () ->
                       Sched.Rwlock.with_read l (fun () -> incr hit))));
           ]);
      Alcotest.(check int) "nested reacquisition runs the body" 1 !hit)

let test_mutex_serializes () =
  Util.in_world (fun () ->
      let m = Sched.Mutex.create "t_mutex" in
      let t0 = C.now () in
      let task () = Sched.Mutex.with_lock m (fun () -> C.advance 500) in
      ignore (Sched.run [ task; task; task ]);
      Alcotest.(check int) "three holders serialize" 1_500 (C.now () - t0))

(* --- determinism --- *)

(* Order-sensitive hash of every stored block (raw device reads: no
   cache, no checksum machinery in the way). *)
let disk_digest disk =
  let h = ref 0 in
  for i = 0 to Sp_blockdev.Disk.block_count disk - 1 do
    h :=
      ((!h * 1_000_003) + Hashtbl.hash (Sp_blockdev.Disk.read disk i))
      land max_int
  done;
  !h

(* A miniature multi-client fs workload; [tag] keeps instance names
   unique per invocation (layer registries are keyed by name). *)
let mini_workload ~tag ~clients ~ops ~seed =
  let disk = Sp_blockdev.Disk.create ~label:("tsched-" ^ tag) ~blocks:512 () in
  Sp_sfs.Disk_layer.mkfs ~journal:true disk;
  let fs = Sp_sfs.Disk_layer.mount ~name:("tsched-" ^ tag) disk in
  let before = M.snapshot () in
  let t0 = C.now () in
  let client k () =
    let f = S.create fs (Util.name (Printf.sprintf "c%d" k)) in
    for i = 1 to ops do
      ignore (F.write f ~pos:(i * 64) (Util.pattern_bytes ~seed:(k + i) 64));
      if i mod 2 = 0 then F.sync f
    done
  in
  let stats = Sched.run ~seed (List.init clients client) in
  S.sync fs;
  let d = M.diff ~before ~after:(M.snapshot ()) in
  ( stats.Sched.st_digest,
    C.now () - t0,
    Format.asprintf "%a" M.pp d,
    disk_digest disk )

let uniq = ref 0

let qcheck_same_seed_same_run =
  let gen = QCheck2.Gen.(triple (int_range 2 6) (int_range 1 4) (int_range 0 9999)) in
  Util.qcheck_case ~count:25 "same seed => identical schedule, metrics, disk" gen
    (fun (clients, ops, seed) ->
      incr uniq;
      (* Each run in its own fresh world: identical absolute clock, so
         even on-disk timestamps must come out bit-identical. *)
      let run tag =
        Util.in_world (fun () -> mini_workload ~tag ~clients ~ops ~seed)
      in
      run (Printf.sprintf "a%d" !uniq) = run (Printf.sprintf "b%d" !uniq))

(* --- concurrent rpc_retry backoff --- *)

(* Two clients whose RPCs are dropped back off concurrently: idle sleeps
   overlap, so the two retry storms take barely longer than one.  (Before
   the scheduler the backoff was a serial clock charge: two clients cost
   twice one.) *)
let test_concurrent_retries_overlap () =
  Util.in_world ~model:Sp_sim.Cost_model.paper_1993 (fun () ->
      let model = Sp_sim.Cost_model.current () in
      let one_client src =
        let net = Sp_dfs.Net.create () in
        fun () ->
          Sp_dfs.Net.rpc_retry ~retries:3 net ~src ~dst:"srv" ~bytes:64
            (fun () -> ())
      in
      let drops src =
        Sp_fault.rule ~point:"net.rpc" ~label:(src ^ "->srv") ~count:2
          Sp_fault.Drop
      in
      (* Serial baseline: one client alone, outside any run. *)
      let t0 = C.now () in
      Sp_fault.with_plan (Sp_fault.plan ~seed:1 [ drops "a" ]) (one_client "a");
      let serial = C.now () - t0 in
      Alcotest.(check bool) "baseline includes backoff" true
        (serial >= 3 * model.Sp_sim.Cost_model.net_rtt_ns);
      (* Concurrent: both clients dropped twice each, retrying together. *)
      let t1 = C.now () in
      Sp_fault.with_plan
        (Sp_fault.plan ~seed:1 [ drops "a"; drops "b" ])
        (fun () ->
          ignore (Sched.run [ one_client "a"; one_client "b" ]));
      let concurrent = C.now () - t1 in
      Alcotest.(check bool)
        (Printf.sprintf "two retry storms overlap (%d < 3/2 * %d)" concurrent
           serial)
        true
        (concurrent < serial * 3 / 2))

let suite =
  [
    Alcotest.test_case "tasks overlap service time" `Quick
      test_tasks_overlap_service_time;
    Alcotest.test_case "sleep is idle, advance is busy" `Quick
      test_sleep_is_idle_wait_is_busy;
    Alcotest.test_case "spawn and join" `Quick test_spawn_and_join;
    Alcotest.test_case "deadlock detected" `Quick test_deadlock_detected;
    Alcotest.test_case "abort unwinds blocked tasks" `Quick
      test_abort_unwinds_blocked_tasks;
    Alcotest.test_case "station queues excess" `Quick test_station_queues_excess;
    Alcotest.test_case "station recovers after abort" `Quick
      test_station_recovers_after_abort;
    Alcotest.test_case "rwlock readers share" `Quick test_rwlock_readers_share;
    Alcotest.test_case "rwlock writers exclude" `Quick
      test_rwlock_writers_exclude;
    Alcotest.test_case "rwlock no writer starvation" `Quick
      test_rwlock_no_writer_starvation;
    Alcotest.test_case "rwlock reentrant" `Quick test_rwlock_reentrant;
    Alcotest.test_case "mutex serializes" `Quick test_mutex_serializes;
    qcheck_same_seed_same_run;
    Alcotest.test_case "concurrent rpc retries overlap" `Quick
      test_concurrent_retries_overlap;
  ]
