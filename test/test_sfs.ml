module DL = Sp_sfs.Disk_layer
module F = Sp_core.File
module S = Sp_core.Stackable
module V = Sp_vm.Vm_types

let ps = V.page_size

let mount ?(blocks = 2048) ?name () =
  let disk = Util.fresh_disk ~blocks () in
  let name = Option.value name ~default:"sfs0" in
  (disk, DL.mount ~name disk)

(* --- Layout --- *)

let test_layout_roundtrip () =
  let layout = Sp_sfs.Layout.compute ~total_blocks:2048 () in
  let decoded = Sp_sfs.Layout.decode_superblock (Sp_sfs.Layout.encode_superblock layout) in
  Alcotest.(check int) "total" layout.Sp_sfs.Layout.total_blocks
    decoded.Sp_sfs.Layout.total_blocks;
  Alcotest.(check int) "inodes" layout.Sp_sfs.Layout.inode_count
    decoded.Sp_sfs.Layout.inode_count;
  Alcotest.(check int) "data start" layout.Sp_sfs.Layout.data_start
    decoded.Sp_sfs.Layout.data_start;
  Alcotest.(check bool) "regions ordered" true
    (decoded.Sp_sfs.Layout.inode_bitmap_start < decoded.Sp_sfs.Layout.block_bitmap_start
    && decoded.Sp_sfs.Layout.block_bitmap_start < decoded.Sp_sfs.Layout.inode_table_start
    && decoded.Sp_sfs.Layout.inode_table_start < decoded.Sp_sfs.Layout.data_start)

let test_layout_rejects_tiny () =
  Alcotest.check_raises "tiny device"
    (Invalid_argument "Layout.compute: device too small") (fun () ->
      ignore (Sp_sfs.Layout.compute ~total_blocks:4 ()))

let test_bad_superblock () =
  Util.in_world (fun () ->
      let disk = Sp_blockdev.Disk.create ~blocks:64 () in
      try
        ignore (DL.mount ~name:"bad" disk);
        Alcotest.fail "mounted an unformatted device"
      with Sp_core.Fserr.Io_error _ -> ())

(* --- Bitmap --- *)

let test_bitmap_alloc_free () =
  Util.in_world (fun () ->
      let disk = Sp_blockdev.Disk.create ~blocks:8 () in
      let bm = Sp_sfs.Bitmap.load (Sp_sfs.Journal.raw disk) ~start:1 ~blocks:1 ~bits:100 in
      Alcotest.(check (option int)) "first free" (Some 0) (Sp_sfs.Bitmap.find_free bm);
      Sp_sfs.Bitmap.set bm 0;
      Sp_sfs.Bitmap.set bm 1;
      Alcotest.(check (option int)) "next free" (Some 2) (Sp_sfs.Bitmap.find_free bm);
      Alcotest.(check int) "used" 2 (Sp_sfs.Bitmap.used bm);
      Sp_sfs.Bitmap.clear bm 0;
      Alcotest.(check (option int)) "freed slot reusable" (Some 0)
        (Sp_sfs.Bitmap.find_free bm);
      (* Persistence through flush/reload. *)
      Sp_sfs.Bitmap.flush bm;
      let bm2 = Sp_sfs.Bitmap.load (Sp_sfs.Journal.raw disk) ~start:1 ~blocks:1 ~bits:100 in
      Alcotest.(check bool) "bit 1 persisted" true (Sp_sfs.Bitmap.is_set bm2 1);
      Alcotest.(check bool) "bit 0 cleared" false (Sp_sfs.Bitmap.is_set bm2 0);
      Alcotest.(check int) "used persisted" 1 (Sp_sfs.Bitmap.used bm2))

let test_bitmap_full () =
  Util.in_world (fun () ->
      let disk = Sp_blockdev.Disk.create ~blocks:8 () in
      let bm = Sp_sfs.Bitmap.load (Sp_sfs.Journal.raw disk) ~start:1 ~blocks:1 ~bits:8 in
      for i = 0 to 7 do Sp_sfs.Bitmap.set bm i done;
      Alcotest.(check (option int)) "full" None (Sp_sfs.Bitmap.find_free bm))

(* --- Inode/Dirent codecs --- *)

let test_inode_codec () =
  let inode =
    {
      Sp_sfs.Inode.kind = Sp_sfs.Inode.File;
      nlink = 3;
      len = 123456;
      atime = 111;
      mtime = 222;
      ctime = 333;
      direct = Array.init Sp_sfs.Layout.n_direct (fun i -> i * 7);
      indirect = 99;
      double_indirect = 100;
    }
  in
  let back = Sp_sfs.Inode.decode (Sp_sfs.Inode.encode inode) in
  Alcotest.(check int) "len" inode.Sp_sfs.Inode.len back.Sp_sfs.Inode.len;
  Alcotest.(check int) "nlink" 3 back.Sp_sfs.Inode.nlink;
  Alcotest.(check int) "indirect" 99 back.Sp_sfs.Inode.indirect;
  Alcotest.(check int) "double" 100 back.Sp_sfs.Inode.double_indirect;
  Alcotest.(check bool) "direct" true
    (back.Sp_sfs.Inode.direct = inode.Sp_sfs.Inode.direct);
  Alcotest.(check bool) "kind" true (back.Sp_sfs.Inode.kind = Sp_sfs.Inode.File)

let test_dirent_codec () =
  let e = { Sp_sfs.Dirent.ino = 42; is_dir = true; name = "hello.txt" } in
  let b = Sp_sfs.Dirent.encode e in
  (match Sp_sfs.Dirent.decode b 0 with
  | Some d ->
      Alcotest.(check int) "ino" 42 d.Sp_sfs.Dirent.ino;
      Alcotest.(check bool) "is_dir" true d.Sp_sfs.Dirent.is_dir;
      Alcotest.(check string) "name" "hello.txt" d.Sp_sfs.Dirent.name
  | None -> Alcotest.fail "decode failed");
  Alcotest.(check (option bool)) "free slot decodes to None" None
    (Option.map (fun _ -> true) (Sp_sfs.Dirent.decode Sp_sfs.Dirent.free_slot 0))

let test_dirent_name_validation () =
  let bad name =
    try
      Sp_sfs.Dirent.check_name name;
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "empty" true (bad "");
  Alcotest.(check bool) "slash" true (bad "a/b");
  Alcotest.(check bool) "nul" true (bad "a\000b");
  Alcotest.(check bool) "too long" true (bad (String.make 100 'x'));
  Sp_sfs.Dirent.check_name "fine-name.txt"

(* --- Disk layer: files --- *)

let test_create_write_read () =
  Util.in_world (fun () ->
      let _disk, fs = mount () in
      let f = S.create fs (Util.name "hello.txt") in
      let n = F.write f ~pos:0 (Util.bytes_of_string "hello spring") in
      Alcotest.(check int) "bytes written" 12 n;
      Util.check_str "read back" "hello spring" (F.read f ~pos:0 ~len:100);
      Util.check_str "offset read" "spring" (F.read f ~pos:6 ~len:6);
      let attr = F.stat f in
      Alcotest.(check int) "length" 12 attr.Sp_vm.Attr.len;
      Alcotest.(check bool) "regular" true
        (attr.Sp_vm.Attr.kind = Sp_vm.Attr.Regular))

let test_open_via_context () =
  Util.in_world (fun () ->
      let _disk, fs = mount () in
      ignore (S.create fs (Util.name "a.txt"));
      let f = S.open_file fs (Util.name "a.txt") in
      Alcotest.(check string) "identity" "sfs0/ino1" f.F.f_id;
      (* Same object on reopen. *)
      let f2 = S.open_file fs (Util.name "a.txt") in
      Alcotest.(check bool) "memoised" true (f == f2))

let test_open_missing () =
  Util.in_world (fun () ->
      let _disk, fs = mount () in
      Alcotest.check_raises "missing" (Sp_core.Fserr.No_such_file "nope") (fun () ->
          ignore (S.open_file fs (Util.name "nope"))))

let test_create_duplicate () =
  Util.in_world (fun () ->
      let _disk, fs = mount () in
      ignore (S.create fs (Util.name "dup"));
      Alcotest.check_raises "duplicate" (Sp_core.Fserr.Already_exists "dup")
        (fun () -> ignore (S.create fs (Util.name "dup"))))

let test_directories () =
  Util.in_world (fun () ->
      let _disk, fs = mount () in
      S.mkdir fs (Util.name "sub");
      S.mkdir fs (Util.name "sub/deep");
      ignore (S.create fs (Util.name "sub/deep/f.txt"));
      let f = S.open_file fs (Util.name "sub/deep/f.txt") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "nested"));
      Util.check_str "nested file io" "nested" (F.read f ~pos:0 ~len:6);
      Alcotest.(check (list string)) "listing" [ "deep" ]
        (S.listdir fs (Util.name "sub"));
      Alcotest.check_raises "opening a dir as file"
        (Sp_core.Fserr.Is_directory "sub") (fun () ->
          ignore (S.open_file fs (Util.name "sub"))))

let test_remove () =
  Util.in_world (fun () ->
      let _disk, fs = mount () in
      let free0 = DL.free_inodes fs in
      ignore (S.create fs (Util.name "gone"));
      S.remove fs (Util.name "gone");
      Alcotest.(check int) "inode freed" free0 (DL.free_inodes fs);
      Alcotest.check_raises "open removed" (Sp_core.Fserr.No_such_file "gone")
        (fun () -> ignore (S.open_file fs (Util.name "gone"))))

let test_remove_nonempty_dir () =
  Util.in_world (fun () ->
      let _disk, fs = mount () in
      S.mkdir fs (Util.name "d");
      ignore (S.create fs (Util.name "d/f"));
      (try
         S.remove fs (Util.name "d");
         Alcotest.fail "removed non-empty directory"
       with Sp_core.Fserr.Directory_not_empty _ -> ());
      S.remove fs (Util.name "d/f");
      S.remove fs (Util.name "d");
      Alcotest.(check (list string)) "root empty" [] (S.listdir fs (Util.name "/")))

let test_hard_links () =
  Util.in_world (fun () ->
      let _disk, fs = mount () in
      let f = S.create fs (Util.name "orig") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "content"));
      Sp_naming.Context.bind fs.S.sfs_ctx (Util.name "alias") (F.File f);
      let via_alias = S.open_file fs (Util.name "alias") in
      Util.check_str "alias reads same data" "content"
        (F.read via_alias ~pos:0 ~len:7);
      Alcotest.(check int) "nlink" 2 (F.stat f).Sp_vm.Attr.nlink;
      (* Removing one name keeps the file. *)
      S.remove fs (Util.name "orig");
      Util.check_str "alias survives" "content"
        (F.read (S.open_file fs (Util.name "alias")) ~pos:0 ~len:7);
      (* Removing the last name frees the inode. *)
      let free_before = DL.free_inodes fs in
      S.remove fs (Util.name "alias");
      Alcotest.(check int) "inode freed at last unlink" (free_before + 1)
        (DL.free_inodes fs))

let test_truncate () =
  Util.in_world (fun () ->
      let _disk, fs = mount () in
      let f = S.create fs (Util.name "t") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "0123456789"));
      F.truncate f 4;
      Alcotest.(check int) "len" 4 (F.stat f).Sp_vm.Attr.len;
      Util.check_str "short read" "0123" (F.read f ~pos:0 ~len:100);
      (* Re-extend: tail must read zeros, not stale data. *)
      F.truncate f 10;
      Util.check_str "zeros after regrow" "0123\000\000\000\000\000\000"
        (F.read f ~pos:0 ~len:10))

let test_holes () =
  Util.in_world (fun () ->
      let _disk, fs = mount () in
      let f = S.create fs (Util.name "sparse") in
      let far = 5 * ps in
      ignore (F.write f ~pos:far (Util.bytes_of_string "end"));
      Alcotest.(check int) "len covers hole" (far + 3) (F.stat f).Sp_vm.Attr.len;
      Util.check_str "hole reads zeros" "\000\000\000\000" (F.read f ~pos:100 ~len:4);
      Util.check_str "data after hole" "end" (F.read f ~pos:far ~len:3))

let test_large_file_indirect () =
  Util.in_world (fun () ->
      (* > 12 direct blocks: exercises single indirection; and beyond
         12+1024 would need double indirection (device too small here), so
         we stay at ~30 blocks for single and poke one double-indirect
         block on a bigger device below. *)
      let _disk, fs = mount ~blocks:4096 () in
      let f = S.create fs (Util.name "big") in
      let chunk = Util.pattern_bytes ps in
      for i = 0 to 29 do
        ignore (F.write f ~pos:(i * ps) chunk)
      done;
      Alcotest.(check int) "length" (30 * ps) (F.stat f).Sp_vm.Attr.len;
      Util.check_bytes "block 0" chunk (F.read f ~pos:0 ~len:ps);
      Util.check_bytes "block 20 (indirect)" chunk (F.read f ~pos:(20 * ps) ~len:ps);
      (* Truncate to 1 block frees the rest. *)
      let free_small = DL.free_blocks fs in
      F.truncate f ps;
      Alcotest.(check bool) "blocks freed" true (DL.free_blocks fs > free_small))

let test_double_indirect () =
  Util.in_world (fun () ->
      let _disk, fs = mount ~blocks:8192 () in
      let f = S.create fs (Util.name "huge") in
      (* File block 12 + 1024 + 3 lives in the double-indirect region. *)
      let target = (12 + 1024 + 3) * ps in
      ignore (F.write f ~pos:target (Util.bytes_of_string "deep"));
      Util.check_str "double indirect io" "deep" (F.read f ~pos:target ~len:4);
      Util.check_str "hole before" "\000" (F.read f ~pos:(13 * ps) ~len:1);
      F.truncate f 0;
      Alcotest.(check int) "empty after truncate" 0 (F.stat f).Sp_vm.Attr.len)

let test_no_space () =
  Util.in_world (fun () ->
      let _disk, fs = mount ~blocks:32 () in
      let f = S.create fs (Util.name "filler") in
      let chunk = Util.pattern_bytes ps in
      try
        for i = 0 to 63 do
          ignore (F.write f ~pos:(i * ps) chunk)
        done;
        Alcotest.fail "expected No_space"
      with Sp_core.Fserr.No_space _ -> ())

let test_persistence_across_remount () =
  Util.in_world (fun () ->
      let disk = Util.fresh_disk () in
      let fs = DL.mount ~name:"sfs0" disk in
      S.mkdir fs (Util.name "d");
      let f = S.create fs (Util.name "d/file") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "persistent data"));
      S.sync fs;
      (* Remount the same device under a fresh instance. *)
      let fs2 = DL.mount ~name:"sfs0b" disk in
      let f2 = S.open_file fs2 (Util.name "d/file") in
      Util.check_str "data survived remount" "persistent data"
        (F.read f2 ~pos:0 ~len:15);
      Alcotest.(check int) "length survived" 15 (F.stat f2).Sp_vm.Attr.len)

let test_stat_uses_inode_cache () =
  Util.in_world (fun () ->
      let disk, fs = mount () in
      ignore (S.create fs (Util.name "cached"));
      let f = S.open_file fs (Util.name "cached") in
      ignore (F.stat f);
      Sp_blockdev.Disk.reset_stats disk;
      for _ = 1 to 10 do
        ignore (F.stat f)
      done;
      Alcotest.(check int) "stat needs no disk I/O"
        0 (Sp_blockdev.Disk.stats disk).Sp_blockdev.Disk.reads)

let test_reads_hit_disk () =
  (* "reads and writes to the disk layer do require disk I/Os" *)
  Util.in_world (fun () ->
      let disk, fs = mount () in
      let f = S.create fs (Util.name "raw") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "data"));
      Sp_blockdev.Disk.reset_stats disk;
      ignore (F.read f ~pos:0 ~len:4);
      Alcotest.(check bool) "read reaches device" true
        ((Sp_blockdev.Disk.stats disk).Sp_blockdev.Disk.reads > 0))

let test_pager_contract () =
  Util.in_world (fun () ->
      let _disk, fs = mount () in
      let f = S.create fs (Util.name "paged") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "page data"));
      let vmm = Sp_vm.Vmm.create ~node:"local" "client" in
      let m = Sp_vm.Vmm.map vmm f.F.f_mem in
      Util.check_str "page_in serves file data" "page data"
        (Sp_vm.Vmm.read m ~pos:0 ~len:9);
      Sp_vm.Vmm.write m ~pos:0 (Util.bytes_of_string "MAPPED));");
      Sp_vm.Vmm.msync m;
      Util.check_str "page_out reached the file" "MAPPED"
        (F.read f ~pos:0 ~len:6);
      Alcotest.(check int) "one channel" 1 (DL.channel_count fs))

let test_fs_pager_narrow () =
  Util.in_world (fun () ->
      let _disk, fs = mount () in
      let f = S.create fs (Util.name "attrs") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "xyz"));
      let vmm = Sp_vm.Vmm.create ~node:"local" "client" in
      ignore (Sp_vm.Vmm.map vmm f.F.f_mem);
      (* Find the channel pager at the disk layer and narrow it. *)
      let fsx = S.open_file fs (Util.name "attrs") in
      ignore fsx;
      let rights = V.bind f.F.f_mem (Sp_vm.Vmm.manager vmm) V.Read_only in
      Alcotest.(check string) "cache key is the file identity" "sfs0/ino1"
        rights.V.cr_key;
      (* The disk layer's pager must narrow to fs_pager. *)
      let probe_manager =
        {
          V.cm_id = "probe";
          cm_domain = Sp_obj.Sdomain.create "probe";
          cm_connect =
            (fun ~key:_ pager ->
              (match V.narrow_fs_pager pager with
              | Some ops ->
                  let attr = V.fs_get_attr pager ops in
                  Alcotest.(check int) "attr via fs_pager" 3 attr.Sp_vm.Attr.len
              | None -> Alcotest.fail "disk layer pager should narrow to fs_pager");
              {
                V.c_domain = Sp_obj.Sdomain.create "probe-cache";
                c_label = "probe";
                c_flush_back = (fun ~offset:_ ~size:_ -> []);
                c_deny_writes = (fun ~offset:_ ~size:_ -> []);
                c_write_back = (fun ~offset:_ ~size:_ -> []);
                c_delete_range = (fun ~offset:_ ~size:_ -> ());
                c_zero_fill = (fun ~offset:_ ~size:_ -> ());
                c_populate = (fun ~offset:_ ~access:_ _ -> ());
                c_destroy = (fun () -> ());
                c_exten = [];
              });
        }
      in
      ignore (V.bind f.F.f_mem probe_manager V.Read_only))

let test_set_length_via_memory_object () =
  Util.in_world (fun () ->
      let _disk, fs = mount () in
      let f = S.create fs (Util.name "m") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "0123456789"));
      V.set_length f.F.f_mem 3;
      Alcotest.(check int) "length set through memory object" 3
        (V.get_length f.F.f_mem);
      Alcotest.(check int) "stat agrees" 3 (F.stat f).Sp_vm.Attr.len)

let test_creator () =
  Util.in_world (fun () ->
      let disks = Hashtbl.create 4 in
      let get_disk name =
        match Hashtbl.find_opt disks name with
        | Some d -> d
        | None ->
            let d = Sp_blockdev.Disk.create ~label:name ~blocks:256 () in
            Hashtbl.replace disks name d;
            d
      in
      let creators =
        Sp_naming.Context.make ~domain:(Sp_obj.Sdomain.create "creators")
          ~label:"fs_creators" ()
      in
      S.register_creator creators (DL.creator ~get_disk ());
      let fs = S.instantiate creators "sfs_disk" ~name:"vol1" in
      Alcotest.(check string) "instance name" "vol1" fs.S.sfs_name;
      ignore (S.create fs (Util.name "f"));
      Alcotest.(check (list string)) "works" [ "f" ] (S.listdir fs (Util.name "/"));
      Alcotest.check_raises "unknown creator"
        (S.Stack_error "nope: no such creator") (fun () ->
          ignore (S.instantiate creators "nope" ~name:"x")))

let prop_random_io_matches_model =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 1 15) (pair (int_range 0 (6 * ps)) (int_range 1 300)))
  in
  Util.qcheck_case ~count:30 "sfs random writes match byte-array model" gen
    (fun writes ->
      Util.in_world (fun () ->
          let _disk, fs = mount ~blocks:4096 () in
          let f = S.create fs (Util.name "model") in
          let size = (6 * ps) + 300 in
          let model = Bytes.make size '\000' in
          let file_len = ref 0 in
          List.iteri
            (fun i (pos, len) ->
              let data = Util.pattern_bytes ~seed:(i + 13) len in
              ignore (F.write f ~pos data);
              Bytes.blit data 0 model pos len;
              file_len := max !file_len (pos + len))
            writes;
          let actual = F.read f ~pos:0 ~len:size in
          Bytes.equal actual (Bytes.sub model 0 !file_len)))

let suite =
  [
    Alcotest.test_case "layout roundtrip" `Quick test_layout_roundtrip;
    Alcotest.test_case "layout rejects tiny device" `Quick test_layout_rejects_tiny;
    Alcotest.test_case "bad superblock" `Quick test_bad_superblock;
    Alcotest.test_case "bitmap alloc/free/persist" `Quick test_bitmap_alloc_free;
    Alcotest.test_case "bitmap full" `Quick test_bitmap_full;
    Alcotest.test_case "inode codec" `Quick test_inode_codec;
    Alcotest.test_case "dirent codec" `Quick test_dirent_codec;
    Alcotest.test_case "dirent name validation" `Quick test_dirent_name_validation;
    Alcotest.test_case "create/write/read" `Quick test_create_write_read;
    Alcotest.test_case "open via context" `Quick test_open_via_context;
    Alcotest.test_case "open missing" `Quick test_open_missing;
    Alcotest.test_case "create duplicate" `Quick test_create_duplicate;
    Alcotest.test_case "directories" `Quick test_directories;
    Alcotest.test_case "remove" `Quick test_remove;
    Alcotest.test_case "remove non-empty dir" `Quick test_remove_nonempty_dir;
    Alcotest.test_case "hard links" `Quick test_hard_links;
    Alcotest.test_case "truncate" `Quick test_truncate;
    Alcotest.test_case "holes" `Quick test_holes;
    Alcotest.test_case "large file (indirect)" `Quick test_large_file_indirect;
    Alcotest.test_case "double indirect" `Quick test_double_indirect;
    Alcotest.test_case "no space" `Quick test_no_space;
    Alcotest.test_case "persistence across remount" `Quick
      test_persistence_across_remount;
    Alcotest.test_case "stat uses inode cache" `Quick test_stat_uses_inode_cache;
    Alcotest.test_case "reads hit the disk" `Quick test_reads_hit_disk;
    Alcotest.test_case "pager contract" `Quick test_pager_contract;
    Alcotest.test_case "fs_pager narrow" `Quick test_fs_pager_narrow;
    Alcotest.test_case "set_length via memory object" `Quick
      test_set_length_via_memory_object;
    Alcotest.test_case "creator" `Quick test_creator;
    prop_random_io_matches_model;
  ]
