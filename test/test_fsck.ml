module F = Sp_core.File
module S = Sp_core.Stackable
module K = Sp_sfs.Fsck

let problems_str ps =
  String.concat "; " (List.map (Format.asprintf "%a" K.pp_problem) ps)

let check_clean what disk =
  let ps = K.check disk in
  Alcotest.(check string) what "" (problems_str ps)

let fresh_mounted ?(blocks = 2048) () =
  let disk = Util.fresh_disk ~blocks () in
  (disk, Sp_sfs.Disk_layer.mount ~name:"fsck-t" disk)

let test_empty_volume_clean () =
  Util.in_world (fun () ->
      let disk = Util.fresh_disk () in
      check_clean "freshly formatted volume" disk)

let test_clean_after_workload () =
  Util.in_world (fun () ->
      let disk, fs = fresh_mounted () in
      S.mkdir fs (Util.name "a");
      S.mkdir fs (Util.name "a/b");
      let f1 = S.create fs (Util.name "a/file1") in
      ignore (F.write f1 ~pos:0 (Util.pattern_bytes 20_000));
      let f2 = S.create fs (Util.name "a/b/file2") in
      ignore (F.write f2 ~pos:0 (Util.pattern_bytes 100));
      (* A hard link and a removal, then a truncate. *)
      Sp_naming.Context.bind fs.S.sfs_ctx (Util.name "link1") (F.File f1);
      ignore (S.create fs (Util.name "doomed"));
      S.remove fs (Util.name "doomed");
      F.truncate f1 5_000;
      S.sync fs;
      check_clean "after workload + sync" disk)

let test_clean_after_random_workload () =
  Util.in_world (fun () ->
      let disk, fs = fresh_mounted ~blocks:4096 () in
      let rng = ref 7 in
      let next bound =
        rng := ((!rng * 1103515245) + 12345) land 0x3fffffff;
        !rng mod bound
      in
      let live = ref [] in
      for i = 0 to 60 do
        match next 4 with
        | 0 ->
            let name = Printf.sprintf "r%d" i in
            let f = S.create fs (Util.name name) in
            ignore (F.write f ~pos:(next 3 * 4096) (Util.pattern_bytes (1 + next 9000)));
            live := name :: !live
        | 1 when !live <> [] ->
            let name = List.nth !live (next (List.length !live)) in
            S.remove fs (Util.name name);
            live := List.filter (fun n -> n <> name) !live
        | 2 when !live <> [] ->
            let name = List.nth !live (next (List.length !live)) in
            let f = S.open_file fs (Util.name name) in
            F.truncate f (next 5000)
        | _ when !live <> [] ->
            let name = List.nth !live (next (List.length !live)) in
            let f = S.open_file fs (Util.name name) in
            ignore (F.write f ~pos:(next 8000) (Util.pattern_bytes (1 + next 4000)))
        | _ -> ()
      done;
      S.sync fs;
      check_clean "after random workload" disk)

let test_clean_through_stack () =
  Util.in_world (fun () ->
      let vmm = Sp_vm.Vmm.create ~node:"local" "vmm0" in
      let disk = Util.fresh_disk ~blocks:4096 () in
      let sfs =
        Sp_coherency.Spring_sfs.make_split ~vmm ~name:"fsck-stack" ~same_domain:false
          disk
      in
      let comp = Sp_compfs.Compfs.make ~vmm ~name:"fsck-comp" () in
      S.stack_on comp sfs;
      let f = S.create comp (Util.name "doc") in
      ignore (F.write f ~pos:0 (Util.pattern_bytes 30_000));
      F.truncate f 9_999;
      S.sync comp;
      S.sync sfs;
      check_clean "below a compression stack" disk)

let corrupt_and_expect what disk mutate expect =
  mutate ();
  let ps = K.check disk in
  Alcotest.(check bool)
    (Printf.sprintf "%s detected (got: %s)" what (problems_str ps))
    true (List.exists expect ps)

let test_detects_bitmap_leak () =
  Util.in_world (fun () ->
      let disk, fs = fresh_mounted () in
      ignore (S.create fs (Util.name "x"));
      S.sync fs;
      (* Mark a random free data block as allocated. *)
      let layout = Sp_sfs.Layout.compute ~checksums:true ~total_blocks:2048 () in
      let bb =
        Sp_sfs.Bitmap.load (Sp_sfs.Journal.raw disk) ~start:layout.Sp_sfs.Layout.block_bitmap_start
          ~blocks:layout.Sp_sfs.Layout.block_bitmap_blocks ~bits:2048
      in
      corrupt_and_expect "leaked block" disk
        (fun () ->
          Sp_sfs.Bitmap.set bb 1500;
          Sp_sfs.Bitmap.flush bb)
        (function K.Block_leak 1500 -> true | _ -> false))

let test_detects_dangling_entry () =
  Util.in_world (fun () ->
      let disk, fs = fresh_mounted () in
      ignore (S.create fs (Util.name "x"));
      S.sync fs;
      (* Free inode 1 in the bitmap while the root entry still names it. *)
      let layout = Sp_sfs.Layout.compute ~checksums:true ~total_blocks:2048 () in
      let ib =
        Sp_sfs.Bitmap.load (Sp_sfs.Journal.raw disk) ~start:layout.Sp_sfs.Layout.inode_bitmap_start
          ~blocks:layout.Sp_sfs.Layout.inode_bitmap_blocks
          ~bits:layout.Sp_sfs.Layout.inode_count
      in
      corrupt_and_expect "dangling directory entry" disk
        (fun () ->
          Sp_sfs.Bitmap.clear ib 1;
          Sp_sfs.Bitmap.flush ib)
        (function K.Free_inode_referenced (1, "x") -> true | _ -> false))

let test_detects_bad_nlink () =
  Util.in_world (fun () ->
      let disk, fs = fresh_mounted () in
      ignore (S.create fs (Util.name "x"));
      S.sync fs;
      (* Stamp a wrong link count straight into the inode table. *)
      let layout = Sp_sfs.Layout.compute ~checksums:true ~total_blocks:2048 () in
      corrupt_and_expect "bad link count" disk
        (fun () ->
          let tb = layout.Sp_sfs.Layout.inode_table_start in
          let block = Sp_blockdev.Disk.read disk tb in
          (* inode 1 lives at offset inode_size in the first table block *)
          Bytes.set_uint16_le block (Sp_sfs.Layout.inode_size + 2) 9;
          Sp_blockdev.Disk.write disk tb block)
        (function K.Bad_nlink (1, 1, 9) -> true | _ -> false))

let test_detects_unreachable_inode () =
  Util.in_world (fun () ->
      let disk, fs = fresh_mounted () in
      ignore (S.create fs (Util.name "orphan-to-be"));
      S.sync fs;
      (* Clobber the root directory entry without freeing the inode. *)
      let layout = Sp_sfs.Layout.compute ~checksums:true ~total_blocks:2048 () in
      corrupt_and_expect "unreachable inode" disk
        (fun () ->
          (* The root dir's first data block is the first data block. *)
          let b = layout.Sp_sfs.Layout.data_start in
          Sp_blockdev.Disk.write disk b (Bytes.make 4096 '\000'))
        (function K.Unreachable_inode 1 -> true | _ -> false))

(* --- CLI exit-code contract ---

   README documents: [springfs fsck] exits 1 when the image is damaged
   and 0 when it is clean (including clean-after-recovery).  Pin both
   sides against the real binary.  Tests run from [_build/default/test/],
   so the driver lives one directory up. *)

let springfs = Filename.concat ".." (Filename.concat "bin" "springfs.exe")

let run_cli args =
  Sys.command (Filename.quote_command springfs args ~stdout:Filename.null)

let test_cli_exit_codes () =
  if not (Sys.file_exists springfs) then
    Alcotest.skip ()
  else begin
    (* Crash write 26 lands mid-flush of the second (journaled)
       transaction: without replay the image mixes old and new
       metadata and fsck must exit 1. *)
    Alcotest.(check int) "damaged image exits 1" 1
      (run_cli [ "fsck"; "--journal"; "--crash-at-write"; "26"; "--no-recover" ]);
    (* Same crash point, but recovery replays the journal first. *)
    Alcotest.(check int) "recovered image exits 0" 0
      (run_cli [ "fsck"; "--journal"; "--crash-at-write"; "26" ]);
    Alcotest.(check int) "undamaged run exits 0" 0 (run_cli [ "fsck" ])
  end

let suite =
  [
    Alcotest.test_case "empty volume clean" `Quick test_empty_volume_clean;
    Alcotest.test_case "clean after workload" `Quick test_clean_after_workload;
    Alcotest.test_case "clean after random workload" `Quick
      test_clean_after_random_workload;
    Alcotest.test_case "clean below a stack" `Quick test_clean_through_stack;
    Alcotest.test_case "detects block leak" `Quick test_detects_bitmap_leak;
    Alcotest.test_case "detects dangling entry" `Quick test_detects_dangling_entry;
    Alcotest.test_case "detects bad nlink" `Quick test_detects_bad_nlink;
    Alcotest.test_case "detects unreachable inode" `Quick
      test_detects_unreachable_inode;
    Alcotest.test_case "cli exit codes" `Quick test_cli_exit_codes;
  ]
