(* Journal group commit: the clean-volume sync fast path, leader/follower
   absorption under concurrent syncs, the group_commit:false control, and
   the qcheck equivalence of both modes on a single client. *)

module F = Sp_core.File
module S = Sp_core.Stackable
module D = Sp_blockdev.Disk
module DL = Sp_sfs.Disk_layer
module CS = Sp_sfs.Crash_sweep
module Rng = Sp_fault.Rng

(* A fast model whose only nonzero cost is the commit-delay window, so
   the leader suspends and concurrent syncs get a window to pile into
   while everything else stays zero-cost and count-deterministic. *)
let delay_model =
  { Sp_sim.Cost_model.fast with Sp_sim.Cost_model.commit_delay_ns = 20_000 }

let jstats fs =
  match DL.journal_stats fs with
  | Some st -> st
  | None -> Alcotest.fail "journal stats missing"

(* --- clean-volume sync fast path --- *)

let test_clean_sync_zero_io () =
  Util.in_world (fun () ->
      let disk = D.create ~label:"gcfp" ~blocks:512 () in
      DL.mkfs ~journal:true disk;
      let fs = DL.mount ~name:"gcfp0" disk in
      let f = S.create fs (Util.name "a") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "dirty"));
      S.sync fs;
      let commits = (jstats fs).Sp_sfs.Journal.js_commits in
      let st = D.stats disk in
      (* Nothing is dirty: sync must return without touching the device
         or writing another transaction. *)
      S.sync fs;
      S.sync fs;
      Alcotest.(check int) "no reads on clean sync" st.D.reads (D.stats disk).D.reads;
      Alcotest.(check int) "no writes on clean sync" st.D.writes (D.stats disk).D.writes;
      Alcotest.(check int) "no new commits" commits
        (jstats fs).Sp_sfs.Journal.js_commits)

(* --- concurrent absorption --- *)

let clients = 4

let concurrent_syncs ~group_commit ~label () =
  let disk = D.create ~label ~blocks:512 () in
  DL.mkfs ~journal:true disk;
  let fs = DL.mount ~group_commit ~name:(label ^ "0") disk in
  let files =
    List.init clients (fun k -> S.create fs (Util.name (Printf.sprintf "f%d" k)))
  in
  S.sync fs;
  let task k f () =
    ignore (F.write f ~pos:0 (Util.pattern_bytes ~seed:(k + 1) 256));
    S.sync fs
  in
  ignore (Sp_sched.run ~seed:3 (List.mapi task files));
  (disk, fs)

let test_group_commit_absorbs () =
  Util.in_world ~model:delay_model (fun () ->
      let disk, fs = concurrent_syncs ~group_commit:true ~label:"gcab" () in
      let st = jstats fs in
      Alcotest.(check bool) "a leader ran" true
        (st.Sp_sfs.Journal.js_group_commits >= 1);
      (* The first sync becomes leader and sleeps through the window; the
         other three arrive before the seal and park. *)
      Alcotest.(check int) "followers absorbed" (clients - 1)
        st.Sp_sfs.Journal.js_absorbed_syncs;
      Alcotest.(check int) "nothing left pending" 0 (DL.journal_pending fs);
      (* Every follower's write is covered by the sealed commit. *)
      let fs2 = DL.mount ~name:"gcab1" disk in
      List.iteri
        (fun k f ->
          ignore f;
          Util.check_bytes
            (Printf.sprintf "f%d durable" k)
            (Util.pattern_bytes ~seed:(k + 1) 256)
            (F.read_all
               (S.open_file fs2 (Util.name (Printf.sprintf "f%d" k)))))
        (List.init clients Fun.id))

let test_no_group_commit_control () =
  Util.in_world ~model:delay_model (fun () ->
      let _disk, fs = concurrent_syncs ~group_commit:false ~label:"gcct" () in
      let st = jstats fs in
      Alcotest.(check int) "no leaders" 0 st.Sp_sfs.Journal.js_group_commits;
      Alcotest.(check int) "no absorbed syncs" 0
        st.Sp_sfs.Journal.js_absorbed_syncs;
      (* The first task's sync flushes everything dirty so far; later
         syncs may legally find the volume clean (the fast path is
         independent of group commit).  What the control must show is
         that no window ever formed — counted above — and that at least
         the population sync and one task sync committed. *)
      Alcotest.(check bool) "dirty syncs still commit" true
        (st.Sp_sfs.Journal.js_commits >= 2))

(* --- single-client equivalence (qcheck) --- *)

let image disk =
  List.init (D.block_count disk) (fun i -> Bytes.to_string (D.read disk i))

(* The same seeded script, group commit on vs off, one client: with
   nobody to batch with, the leader path must reduce to exactly the
   direct path — identical device writes, byte-identical volumes. *)
let run_script ~group_commit seed nops =
  Util.in_world (fun () ->
      let label = Printf.sprintf "gceq%c%d" (if group_commit then 'y' else 'n') seed in
      let disk = D.create ~label ~blocks:512 () in
      DL.mkfs ~journal:true disk;
      let fs = DL.mount ~group_commit ~name:(label ^ "0") disk in
      let exists = Hashtbl.create 4 in
      let task () =
        let rng = Rng.create seed in
        for _ = 1 to nops do
          let n = Printf.sprintf "f%d" (Rng.int rng 3) in
          match Rng.int rng 6 with
          | 0 -> S.sync fs
          | 1 ->
              if Hashtbl.mem exists n then begin
                S.remove fs (Util.name n);
                Hashtbl.remove exists n
              end
          | _ ->
              let f =
                if Hashtbl.mem exists n then S.open_file fs (Util.name n)
                else begin
                  Hashtbl.replace exists n ();
                  S.create fs (Util.name n)
                end
              in
              ignore
                (F.write f ~pos:(Rng.int rng 4096)
                   (Util.pattern_bytes ~seed:(Rng.int rng 1000) (1 + Rng.int rng 512)))
        done;
        S.sync fs
      in
      ignore (Sp_sched.run ~seed [ task ]);
      image disk)

let qcheck_single_client_equivalence =
  let gen = QCheck2.Gen.(pair (int_range 1 10_000) (int_range 4 24)) in
  Util.qcheck_case ~count:12
    "group commit on vs off is byte-identical for one client" gen
    (fun (seed, nops) ->
      run_script ~group_commit:true seed nops
      = run_script ~group_commit:false seed nops)

(* --- crash points inside leader/follower windows --- *)

let test_sync_heavy_concurrent_sweep () =
  Util.in_world ~model:delay_model (fun () ->
      let r =
        CS.sweep ~stride:7 ~clients:3 ~sync_heavy:true ~journal:true ~ops:4
          ~seed:11 ()
      in
      Alcotest.(check bool) "sync-heavy" true r.CS.rp_sync_heavy;
      Alcotest.(check bool) "swept some points" true (r.CS.rp_points >= 5);
      Alcotest.(check int) "nothing lost" 0 r.CS.rp_lost;
      Alcotest.(check int) "nothing corrupt" 0 r.CS.rp_corrupt;
      Alcotest.(check int) "nothing merely detected" 0 r.CS.rp_detected;
      Alcotest.(check int) "all survived" r.CS.rp_points r.CS.rp_survived)

let suite =
  [
    Alcotest.test_case "clean-volume sync charges no device I/O" `Quick
      test_clean_sync_zero_io;
    Alcotest.test_case "concurrent syncs absorb into one leader commit" `Quick
      test_group_commit_absorbs;
    Alcotest.test_case "group_commit:false keeps one commit per sync" `Quick
      test_no_group_commit_control;
    qcheck_single_client_equivalence;
    Alcotest.test_case "sync-heavy concurrent crash sweep survives" `Slow
      test_sync_heavy_concurrent_sweep;
  ]
