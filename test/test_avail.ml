(* Sp_avail: deadlines, jittered backoff, circuit breaker, and their
   interaction with the scheduler's queueing stations. *)

module F = Sp_core.File
module S = Sp_core.Stackable
module DL = Sp_sfs.Disk_layer
module Sup = Sp_supervise
module A = Sp_avail
module Rng = Sp_fault.Rng

(* Same supervised two-level stack as test_supervise. *)
let build ?budget ?backoff_ns tag =
  let disk = Sp_blockdev.Disk.create ~label:(tag ^ ".dev") ~blocks:1024 () in
  DL.mkfs ~journal:true disk;
  let vmm = Sp_vm.Vmm.create ~node:"local" (tag ^ ".vmm") in
  let levels =
    [
      Sup.level ~name:(tag ^ ".disk") (fun ~lower:_ ->
          DL.mount ~name:(tag ^ ".disk") disk);
      Sup.level ~name:(tag ^ ".coh") (fun ~lower ->
          let fs = Sp_coherency.Coherency_layer.make ~vmm ~name:(tag ^ ".coh") () in
          S.stack_on fs (Option.get lower);
          fs);
    ]
  in
  let sup = Sup.supervise ?budget ?backoff_ns ~name:tag levels in
  (disk, vmm, sup)

(* --- backoff --- *)

let policy_gen =
  QCheck2.Gen.(
    let* base = 1 -- 1_000_000 in
    let* cap = 1 -- 10_000_000 in
    let* attempts = 2 -- 12 in
    let* jitter = float_bound_inclusive 1.0 in
    let* seed = 0 -- 1000 in
    return (base, cap, attempts, jitter, seed))

let qcheck_backoff_deterministic =
  Util.qcheck_case ~count:200 "same seed, same jittered delays" policy_gen
    (fun (base, cap, attempts, jitter, seed) ->
      let p =
        A.Backoff.make ~base_ns:base ~max_delay_ns:cap ~max_attempts:attempts
          ~jitter ()
      in
      let draws () =
        let rng = Rng.create seed in
        List.init attempts (fun i -> A.Backoff.delay_ns p ~rng ~attempt:(i + 1))
      in
      let a = draws () and b = draws () in
      (* Determinism in the rng state... *)
      a = b
      (* ...and every delay within the unjittered envelope. *)
      && List.for_all2
           (fun d i ->
             let raw =
               min cap (base * (1 lsl min 20 i))
               (* delay_ns caps the shift too; mirror the bound *)
             in
             d >= 0
             && d <= raw
             && float_of_int d >= ((1.0 -. jitter) *. float_of_int raw) -. 1.0)
           a
           (List.init attempts (fun i -> i)))

let test_backoff_unjittered_exact () =
  Util.in_world (fun () ->
      let p =
        A.Backoff.make ~base_ns:1000 ~max_delay_ns:6000 ~max_attempts:5
          ~jitter:0.0 ()
      in
      let rng = Rng.create 42 in
      Alcotest.(check (list int))
        "doubling then capped" [ 1000; 2000; 4000; 6000; 6000 ]
        (List.init 5 (fun i -> A.Backoff.delay_ns p ~rng ~attempt:(i + 1))))

let test_backoff_pause_is_idle () =
  Util.in_world (fun () ->
      let p =
        A.Backoff.make ~base_ns:1_000 ~max_delay_ns:1_000 ~max_attempts:2
          ~jitter:0.0 ()
      in
      let rng = Rng.create 7 in
      let t0 = Sp_sim.Simclock.now () in
      A.Backoff.pause p ~rng ~attempt:1;
      Alcotest.(check int) "paused exactly the delay" 1_000
        (Sp_sim.Simclock.now () - t0);
      (* A pause that would cross the ambient deadline raises without
         sleeping. *)
      let t1 = Sp_sim.Simclock.now () in
      Alcotest.(check bool) "pause past deadline raises eagerly" true
        (try
           Sp_sched.with_deadline ~ns:10 (fun () ->
               A.Backoff.pause p ~rng ~attempt:2);
           false
         with Sp_sched.Deadline_exceeded _ -> Sp_sim.Simclock.now () = t1))

(* --- station slot release on a mid-queue deadline (regression) --- *)

let test_station_deadline_releases_slot () =
  Util.in_world (fun () ->
      let st = Sp_sched.Station.create ~servers:1 "avail.station" in
      let b_timed_out = ref false and c_done_at = ref (-1) in
      ignore
        (Sp_sched.run ~seed:1
           [
             (fun () -> Sp_sched.Station.serve st 10_000_000);
             (fun () ->
               Sp_sched.sleep 100;
               try
                 Sp_sched.with_deadline ~ns:1_000_000 (fun () ->
                     Sp_sched.Station.serve st 5_000_000)
               with Sp_sched.Deadline_exceeded _ -> b_timed_out := true);
             (fun () ->
               Sp_sched.sleep 200;
               Sp_sched.Station.serve st 2_000_000;
               c_done_at := Sp_sim.Simclock.now ());
           ]);
      Alcotest.(check bool) "queued waiter timed out" true !b_timed_out;
      (* The slot passed straight from the long server to the waiter
         behind the cancelled one: no stranded slot, no extra wait. *)
      Alcotest.(check int) "next waiter served immediately after" 12_000_000
        !c_done_at)

(* --- deadline on the door path --- *)

let test_deadline_times_out_op () =
  Util.in_world ~model:Sp_sim.Cost_model.paper_1993 (fun () ->
      let disk = Sp_blockdev.Disk.create ~label:"to.dev" ~blocks:512 () in
      DL.mkfs disk;
      let fs = DL.mount ~name:"to.fs" disk in
      let failed0 = Sp_sim.Metrics.avail_failed () in
      Alcotest.(check bool) "deadline surfaces as Fserr.Timed_out" true
        (try
           A.call ~name:"to" ~deadline_ns:1_000 (fun () ->
               ignore (S.create fs (Util.name "a"));
               S.sync fs);
           false
         with Sp_core.Fserr.Timed_out _ -> true);
      Alcotest.(check int) "counted as a loud failure" 1
        (Sp_sim.Metrics.avail_failed () - failed0))

(* --- retry through a restart window --- *)

let test_retried_through_restart () =
  Util.in_world (fun () ->
      let _disk, _vmm, sup = build ~backoff_ns:1_000_000 "ar" in
      Fun.protect ~finally:(fun () -> Sup.unsupervise sup) @@ fun () ->
      let fs = Sup.handle sup in
      let f = S.create fs (Util.name "a") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "live"));
      S.sync fs;
      A.Breaker.reset "ar";
      let retried0 = Sp_sim.Metrics.avail_retried () in
      let got1 = ref Bytes.empty and got2 = ref Bytes.empty in
      let read () = F.read_all (S.open_file fs (Util.name "a")) in
      ignore
        (Sp_sched.run ~seed:3
           [
             (fun () ->
               Sup.kill sup "ar.coh";
               got1 := A.call ~name:"ar" read);
             (fun () ->
               (* Land inside the other task's restart window: the
                  Dead_domain escapes and only backoff-retry saves us. *)
               Sp_sched.sleep 100;
               got2 := A.call ~name:"ar" read);
           ]);
      Util.check_str "first caller served" "live" !got1;
      Util.check_str "concurrent caller served" "live" !got2;
      Alcotest.(check bool) "at least one op needed an availability retry"
        true
        (Sp_sim.Metrics.avail_retried () - retried0 >= 1))

(* --- breaker: exhaustion trips, shed, degraded --- *)

let test_breaker_shed_and_degraded () =
  Util.in_world (fun () ->
      let disk = Sp_blockdev.Disk.create ~label:"bk.dev" ~blocks:512 () in
      DL.mkfs disk;
      let fs = DL.mount ~name:"bk.fs" disk in
      ignore (S.create fs (Util.name "a"));
      S.sync fs;
      Sp_obj.Sdomain.kill fs.S.sfs_domain;
      A.Breaker.reset "bk";
      let quick = A.Backoff.make ~base_ns:100 ~max_attempts:3 () in
      let failed0 = Sp_sim.Metrics.avail_failed () in
      let shed0 = Sp_sim.Metrics.avail_shed () in
      let degraded0 = Sp_sim.Metrics.avail_degraded () in
      (* Unsupervised dead domain: retries exhaust, the call fails
         loudly and trips the breaker for a cooldown. *)
      Alcotest.(check bool) "retry exhaustion raises Unavailable" true
        (try
           ignore
             (A.call ~name:"bk" ~policy:quick (fun () ->
                  S.open_file fs (Util.name "a")));
           false
         with A.Unavailable _ -> true);
      Alcotest.(check int) "counted failed" 1
        (Sp_sim.Metrics.avail_failed () - failed0);
      Alcotest.(check bool) "breaker now open" true
        (A.Breaker.blocking "bk" <> None);
      (* While open: shed without touching the corpse... *)
      Alcotest.(check bool) "open breaker sheds" true
        (try
           ignore
             (A.call ~name:"bk" ~policy:quick (fun () ->
                  S.open_file fs (Util.name "a")));
           false
         with A.Unavailable _ -> true);
      Alcotest.(check int) "counted shed" 1
        (Sp_sim.Metrics.avail_shed () - shed0);
      (* ...or serve the caller-supplied degraded fallback. *)
      let served =
        A.call ~name:"bk" ~policy:quick
          ~degraded:(fun () -> "frozen view")
          (fun () ->
            ignore (S.open_file fs (Util.name "a"));
            "live")
      in
      Alcotest.(check string) "degraded fallback served" "frozen view" served;
      Alcotest.(check int) "counted degraded" 1
        (Sp_sim.Metrics.avail_degraded () - degraded0))

(* The half-open protocol under contention: once the cooldown elapses,
   exactly one of N concurrent tasks is admitted as the probe (the
   admission in [Breaker.blocking] is atomic — no suspension point);
   everyone else sheds until the probe's outcome, and a successful
   probe closes the breaker. *)
let test_breaker_half_open_single_probe () =
  Util.in_world (fun () ->
      let name = "tav-half" in
      A.Breaker.reset name;
      A.Breaker.trip ~cooldown_ns:1_000 ~reason:"forced" name;
      Alcotest.(check bool) "open during cooldown" true
        (A.Breaker.blocking name <> None);
      let admitted = ref 0 and shed = ref 0 in
      let caller () =
        Sp_sched.sleep 2_000;
        (* past the cooldown: all eight wake at the same instant *)
        match A.Breaker.blocking name with
        | None ->
            Alcotest.(check bool) "admitted caller is the probe" true
              (A.Breaker.probing name);
            incr admitted;
            (* hold the probe across a suspension so every other task
               observes the half-open window before the outcome lands *)
            Sp_sched.sleep 5_000;
            A.Breaker.note_ok name
        | Some _ -> incr shed
      in
      ignore (Sp_sched.run ~seed:11 (List.init 8 (fun _ -> caller)));
      Alcotest.(check int) "exactly one probe admitted" 1 !admitted;
      Alcotest.(check int) "every other caller shed" 7 !shed;
      Alcotest.(check bool) "probe success closed the breaker" true
        (A.Breaker.blocking name = None))

(* --- concurrent layer-crash sweep smoke --- *)

let test_concurrent_sweep_smoke () =
  Util.in_world ~model:Sp_sim.Cost_model.paper_1993 (fun () ->
      let r =
        Sp_failover.Layer_crash_sweep.sweep ~stride:16 ~clients:2 ~ops:4
          ~seed:3 ()
      in
      let open Sp_failover.Layer_crash_sweep in
      Alcotest.(check int) "one point per layer" 4 r.fr_points;
      Alcotest.(check int) "all served" r.fr_points r.fr_served;
      Alcotest.(check int) "no synced byte lost" 0 r.fr_lost;
      Alcotest.(check int) "volume stayed clean" 0 r.fr_corrupt;
      Alcotest.(check int) "no deadline overruns" 0 r.fr_deadline_misses;
      Alcotest.(check bool) "restarts observed" true (r.fr_restarts > 0))

let suite =
  [
    qcheck_backoff_deterministic;
    Alcotest.test_case "backoff: unjittered series exact" `Quick
      test_backoff_unjittered_exact;
    Alcotest.test_case "backoff: pause is idle, deadline-eager" `Quick
      test_backoff_pause_is_idle;
    Alcotest.test_case "station: mid-queue deadline releases the slot" `Quick
      test_station_deadline_releases_slot;
    Alcotest.test_case "deadline: op overrun surfaces Timed_out" `Quick
      test_deadline_times_out_op;
    Alcotest.test_case "retry: concurrent caller rides out a restart" `Quick
      test_retried_through_restart;
    Alcotest.test_case "breaker: exhaustion trips, shed, degraded" `Quick
      test_breaker_shed_and_degraded;
    Alcotest.test_case "breaker: half-open admits exactly one probe" `Quick
      test_breaker_half_open_single_probe;
    Alcotest.test_case "sweep: concurrent smoke (2 clients)" `Quick
      test_concurrent_sweep_smoke;
  ]
