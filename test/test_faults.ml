(* Failure injection: resource exhaustion, corrupt on-disk state, and
   administrative (ACL) denial, across the stack. *)

module F = Sp_core.File
module S = Sp_core.Stackable
module V = Sp_vm.Vm_types

let ps = V.page_size

let make_sfs ?(blocks = 64) () =
  let vmm = Sp_vm.Vmm.create ~node:"local" "vmm0" in
  let disk = Util.fresh_disk ~blocks () in
  (vmm, disk, Sp_coherency.Spring_sfs.make_split ~vmm ~name:"sfs" ~same_domain:false disk)

let test_disk_full_through_coherency () =
  Util.in_world (fun () ->
      let _vmm, _disk, sfs = make_sfs ~blocks:48 () in
      let f = S.create sfs (Util.name "filler") in
      let chunk = Util.pattern_bytes ps in
      (* Writes buffer in the cache; the exhaustion surfaces when data is
         pushed to the disk layer. *)
      Alcotest.(check bool) "no-space surfaces" true
        (try
           for i = 0 to 200 do
             ignore (F.write f ~pos:(i * ps) chunk);
             F.sync f
           done;
           false
         with Sp_core.Fserr.No_space _ -> true))

let test_disk_full_through_compfs () =
  Util.in_world (fun () ->
      let vmm, _disk, sfs = make_sfs ~blocks:48 () in
      let comp = Sp_compfs.Compfs.make ~vmm ~name:"compfs-full" () in
      S.stack_on comp sfs;
      let f = S.create comp (Util.name "filler") in
      (* Incompressible data defeats compression, so the container grows
         until the base device fills. *)
      Alcotest.(check bool) "no-space propagates through compfs" true
        (try
           for i = 0 to 200 do
             ignore (F.write f ~pos:(i * ps) (Util.pattern_bytes ~seed:i ps));
             F.sync f
           done;
           false
         with Sp_core.Fserr.No_space _ -> true))

let test_inode_exhaustion () =
  Util.in_world (fun () ->
      let _vmm, _disk, sfs = make_sfs ~blocks:64 () in
      Alcotest.(check bool) "inode table exhausts cleanly" true
        (try
           for i = 0 to 200 do
             ignore (S.create sfs (Util.name (Printf.sprintf "f%d" i)))
           done;
           false
         with Sp_core.Fserr.No_space _ -> true);
      (* The file system remains usable: removing frees an inode. *)
      S.remove sfs (Util.name "f0");
      ignore (S.create sfs (Util.name "recovered")))

let test_corrupt_compfs_container () =
  Util.in_world (fun () ->
      let vmm, _disk, sfs = make_sfs ~blocks:256 () in
      (* A file that was never a COMPFS container. *)
      let raw = S.create sfs (Util.name "not-a-container") in
      ignore (F.write raw ~pos:0 (Util.pattern_bytes 64));
      let comp = Sp_compfs.Compfs.make ~vmm ~name:"compfs-corrupt" () in
      S.stack_on comp sfs;
      Alcotest.(check bool) "bad magic rejected, not crashed" true
        (try
           ignore (F.read (S.open_file comp (Util.name "not-a-container")) ~pos:0 ~len:4);
           false
         with Sp_core.Fserr.Io_error _ -> true))

let test_corrupt_chunk_log () =
  Util.in_world (fun () ->
      let vmm, _disk, sfs = make_sfs ~blocks:256 () in
      let comp = Sp_compfs.Compfs.make ~vmm ~name:"compfs-chunk" () in
      S.stack_on comp sfs;
      let f = S.create comp (Util.name "victim") in
      ignore (F.write f ~pos:0 (Util.pattern_bytes ps));
      S.sync comp;
      (* Smash the chunk log (keep the header) — the torn-tail state a
         layer crash can leave behind. *)
      let container = S.open_file sfs (Util.name "victim") in
      ignore (F.write container ~pos:ps (Bytes.make 64 '\255'));
      F.sync container;
      (* A fresh instance rolls the log forward like a journal: it
         truncates at the first invalid chunk instead of crashing or
         serving fabricated bytes.  Here the tear is at the very first
         chunk, so the file reads back as holes. *)
      let vmm2 = Sp_vm.Vmm.create ~node:"local" "vmm2" in
      let comp2 = Sp_compfs.Compfs.make ~vmm:vmm2 ~name:"compfs-chunk2" () in
      S.stack_on comp2 sfs;
      let f2 = S.open_file comp2 (Util.name "victim") in
      Alcotest.(check bytes)
        "torn log truncated to its valid prefix (reads as holes)"
        (Bytes.make 4 '\000')
        (F.read f2 ~pos:0 ~len:4);
      (* And the recovered container serves writes again. *)
      ignore (F.write f2 ~pos:0 (Bytes.of_string "back"));
      F.sync f2;
      Alcotest.(check bytes) "recovered container round-trips"
        (Bytes.of_string "back")
        (F.read f2 ~pos:0 ~len:4))

let test_acl_restricted_export () =
  (* "It is an administrative decision whether (and to whom) to expose the
     files exported by the various file systems" (§4.1). *)
  Util.in_world (fun () ->
      let _vmm, _disk, sfs = make_sfs ~blocks:64 () in
      ignore (S.create sfs (Util.name "payroll"));
      let ns_domain = Sp_obj.Sdomain.create "ns" in
      let acl =
        Sp_naming.Acl.make
          [ ("admin", [ Sp_naming.Acl.Resolve; Bind; Unbind ]) ]
      in
      let guarded = Sp_naming.Context.make ~domain:ns_domain ~label:"secure" ~acl () in
      Sp_naming.Context.bind ~principal:"admin" guarded (Util.name "vol")
        (S.Fs sfs);
      (* Admin resolves through; others are denied at the context. *)
      (match Sp_naming.Context.resolve ~principal:"admin" guarded (Util.name "vol") with
      | S.Fs _ -> ()
      | _ -> Alcotest.fail "admin should resolve");
      Alcotest.(check bool) "stranger denied" true
        (try
           ignore (Sp_naming.Context.resolve ~principal:"guest" guarded (Util.name "vol"));
           false
         with Sp_naming.Context.Denied _ -> true))

let test_write_to_missing_after_remove () =
  (* A stale file object whose backing was removed: the disk layer frees
     the inode; further use of the stale wrapper must not corrupt a file
     that reuses the inode. *)
  Util.in_world (fun () ->
      let _vmm, _disk, sfs = make_sfs ~blocks:64 () in
      let doomed = S.create sfs (Util.name "doomed") in
      ignore (F.write doomed ~pos:0 (Util.bytes_of_string "old"));
      S.remove sfs (Util.name "doomed");
      let fresh = S.create sfs (Util.name "fresh") in
      ignore (F.write fresh ~pos:0 (Util.bytes_of_string "new content"));
      Util.check_str "fresh file intact" "new content" (F.read fresh ~pos:0 ~len:11))

let test_mirror_double_degradation () =
  Util.in_world (fun () ->
      let vmm = Sp_vm.Vmm.create ~node:"local" "vmm0" in
      let mk n =
        Sp_coherency.Spring_sfs.make_split ~vmm ~name:n ~same_domain:false
          (Util.fresh_disk ())
      in
      let mirror = Sp_mirrorfs.Mirrorfs.make ~vmm ~name:"m2" () in
      S.stack_on mirror (mk "ma");
      S.stack_on mirror (mk "mb");
      let f = S.create mirror (Util.name "x") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "v1"));
      F.sync f;
      (* Flip degradation back and forth; data must survive every flip. *)
      Sp_mirrorfs.Mirrorfs.set_degraded mirror (Some Sp_mirrorfs.Mirrorfs.Primary);
      Util.check_str "served by secondary" "v1" (F.read f ~pos:0 ~len:2);
      Sp_mirrorfs.Mirrorfs.set_degraded mirror (Some Sp_mirrorfs.Mirrorfs.Secondary);
      Util.check_str "served by primary" "v1" (F.read f ~pos:0 ~len:2);
      Sp_mirrorfs.Mirrorfs.set_degraded mirror None;
      Util.check_str "served by both" "v1" (F.read f ~pos:0 ~len:2))

let test_unformatted_device_errors () =
  Util.in_world (fun () ->
      let disk = Sp_blockdev.Disk.create ~blocks:64 () in
      Alcotest.(check bool) "disk layer refuses" true
        (try
           ignore (Sp_sfs.Disk_layer.mount ~name:"um" disk);
           false
         with Sp_core.Fserr.Io_error _ -> true);
      Alcotest.(check bool) "baseline refuses" true
        (try
           ignore (Sp_baseline.Unixfs.mount disk);
           false
         with Sp_core.Fserr.Io_error _ -> true))

let test_inode_reuse_through_stack () =
  (* Regression (found by the stress schedule): removing a file must
     destroy its pager-cache channels all the way up, or a new file that
     reuses the inode aliases stale caches. *)
  Util.in_world (fun () ->
      let vmm = Sp_vm.Vmm.create ~node:"local" "vmm0" in
      let disk = Util.fresh_disk ~blocks:4096 () in
      let sfs =
        Sp_coherency.Spring_sfs.make_split ~vmm ~name:"reuse-sfs" ~same_domain:false
          disk
      in
      let top =
        let crypt = Sp_cryptfs.Cryptfs.make ~vmm ~name:"reuse-crypt" ~key:"k" () in
        S.stack_on crypt sfs;
        let comp = Sp_compfs.Compfs.make ~vmm ~name:"reuse-comp" () in
        S.stack_on comp crypt;
        comp
      in
      let a = S.create top (Util.name "a") in
      ignore (F.write a ~pos:0 (Util.pattern_bytes ~seed:1 5000));
      S.remove top (Util.name "a");
      (* "b" reuses a's inode in the base volume. *)
      let b = S.create top (Util.name "b") in
      ignore (F.write b ~pos:0 (Util.bytes_of_string "fresh file"));
      Util.check_str "no aliasing of the recycled identity" "fresh file"
        (F.read (S.open_file top (Util.name "b")) ~pos:0 ~len:10);
      Alcotest.(check int) "fresh length" 10 (F.stat b).Sp_vm.Attr.len)

let suite =
  [
    Alcotest.test_case "disk full through coherency" `Quick
      test_disk_full_through_coherency;
    Alcotest.test_case "disk full through compfs" `Quick test_disk_full_through_compfs;
    Alcotest.test_case "inode exhaustion + recovery" `Quick test_inode_exhaustion;
    Alcotest.test_case "corrupt compfs container" `Quick test_corrupt_compfs_container;
    Alcotest.test_case "corrupt chunk log" `Quick test_corrupt_chunk_log;
    Alcotest.test_case "acl-restricted export" `Quick test_acl_restricted_export;
    Alcotest.test_case "inode reuse after remove" `Quick
      test_write_to_missing_after_remove;
    Alcotest.test_case "mirror degradation flips" `Quick test_mirror_double_degradation;
    Alcotest.test_case "unformatted device" `Quick test_unformatted_device_errors;
    Alcotest.test_case "inode reuse through stack (regression)" `Quick
      test_inode_reuse_through_stack;
  ]
