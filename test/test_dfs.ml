module F = Sp_core.File
module S = Sp_core.Stackable
module V = Sp_vm.Vm_types

let ps = V.page_size

(* Server on node "alpha" exporting an SFS; client view on node "beta". *)
let make_world () =
  let net = Sp_dfs.Net.create () in
  let vmm_a = Sp_vm.Vmm.create ~node:"alpha" "vmm_a" in
  let sfs =
    Sp_coherency.Spring_sfs.make_split ~node:"alpha" ~vmm:vmm_a ~name:"sfs"
      ~same_domain:false (Util.fresh_disk ())
  in
  let dfs = Sp_dfs.Dfs.make_server ~node:"alpha" ~net ~vmm:vmm_a ~name:"dfs" () in
  S.stack_on dfs sfs;
  let import = Sp_dfs.Dfs.import ~net ~client_node:"beta" dfs in
  (net, vmm_a, sfs, dfs, import)

let test_remote_read_write () =
  Util.in_world (fun () ->
      let _net, _vmm_a, _sfs, dfs, import = make_world () in
      ignore (S.create dfs (Util.name "shared.txt"));
      let rf = S.open_file import (Util.name "shared.txt") in
      let n = F.write rf ~pos:0 (Util.bytes_of_string "over the wire") in
      Alcotest.(check int) "remote write" 13 n;
      Util.check_str "remote read" "over the wire" (F.read rf ~pos:0 ~len:50))

let test_remote_ops_use_network () =
  Util.in_world (fun () ->
      let net, _vmm_a, _sfs, dfs, import = make_world () in
      ignore (S.create dfs (Util.name "f"));
      Sp_dfs.Net.reset_stats net;
      let rf = S.open_file import (Util.name "f") in
      ignore (F.write rf ~pos:0 (Util.bytes_of_string "x"));
      ignore (F.read rf ~pos:0 ~len:1);
      ignore (F.stat rf);
      let s = Sp_dfs.Net.stats net in
      Alcotest.(check bool) "every remote op crossed the network" true
        (s.Sp_dfs.Net.messages >= 4))

let test_local_remote_coherence () =
  (* A local client of the underlying SFS and a remote DFS client stay
     coherent with no explicit sync — the §4.2.2 headline property. *)
  Util.in_world (fun () ->
      let _net, _vmm_a, sfs, dfs, import = make_world () in
      ignore (S.create dfs (Util.name "c"));
      let local = S.open_file sfs (Util.name "c") in
      let remote = S.open_file import (Util.name "c") in
      ignore (F.write local ~pos:0 (Util.bytes_of_string "from alpha"));
      Util.check_str "remote sees local write" "from alpha"
        (F.read remote ~pos:0 ~len:10);
      ignore (F.write remote ~pos:5 (Util.bytes_of_string "beta!"));
      Util.check_str "local sees remote write" "from beta!"
        (F.read local ~pos:0 ~len:10))

let test_remote_mapping_coherence () =
  (* The remote client maps the file; local writes revoke its cached
     pages over the network. *)
  Util.in_world (fun () ->
      let _net, _vmm_a, sfs, dfs, import = make_world () in
      ignore (S.create dfs (Util.name "m"));
      let local = S.open_file sfs (Util.name "m") in
      ignore (F.write local ~pos:0 (Util.bytes_of_string "version one"));
      let remote = S.open_file import (Util.name "m") in
      let vmm_b = Sp_vm.Vmm.create ~node:"beta" "vmm_b" in
      let mb = Sp_vm.Vmm.map vmm_b remote.F.f_mem in
      Util.check_str "remote mapping faults data over net" "version one"
        (Sp_vm.Vmm.read mb ~pos:0 ~len:11);
      (* Local update; remote mapping must observe it. *)
      ignore (F.write local ~pos:8 (Util.bytes_of_string "two"));
      Util.check_str "remote mapping coherent" "version two"
        (Sp_vm.Vmm.read mb ~pos:0 ~len:11);
      (* Remote mapped write flows back. *)
      Sp_vm.Vmm.write mb ~pos:0 (Util.bytes_of_string "VERSION");
      Util.check_str "local sees remote mapped write" "VERSION two"
        (F.read local ~pos:0 ~len:11);
      Alcotest.(check bool) "dfs coherency invariant" true
        (Sp_coherency.Coherency_layer.invariant_holds (Sp_dfs.Dfs.coherency_of dfs)))

let test_fig7_local_binds_forwarded () =
  (* Local clients of the DFS file use the same cache object as clients of
     the underlying file: local paging does not involve DFS. *)
  Util.in_world (fun () ->
      let net, vmm_a, _sfs, dfs, _import = make_world () in
      ignore (S.create dfs (Util.name "local"));
      let via_dfs = S.open_file dfs (Util.name "local") in
      ignore (F.write via_dfs ~pos:0 (Util.pattern_bytes ps));
      Sp_dfs.Net.reset_stats net;
      let m = Sp_vm.Vmm.map vmm_a via_dfs.F.f_mem in
      ignore (Sp_vm.Vmm.read m ~pos:0 ~len:ps);
      Alcotest.(check int) "no DFS channels for purely local use" 0
        (Sp_coherency.Coherency_layer.channel_count (Sp_dfs.Dfs.coherency_of dfs));
      Alcotest.(check int) "no network traffic for local paging" 0
        (Sp_dfs.Net.stats net).Sp_dfs.Net.messages)

let test_remote_namespace_ops () =
  Util.in_world (fun () ->
      let _net, _vmm_a, _sfs, _dfs, import = make_world () in
      S.mkdir import (Util.name "rdir");
      let f = S.create import (Util.name "rdir/leaf") in
      ignore (F.write f ~pos:0 (Util.bytes_of_string "made remotely"));
      Alcotest.(check (list string)) "remote listing" [ "leaf" ]
        (S.listdir import (Util.name "rdir"));
      S.remove import (Util.name "rdir/leaf");
      Alcotest.(check (list string)) "remote remove" []
        (S.listdir import (Util.name "rdir")))

let test_two_remote_clients () =
  (* Two clients on different nodes share one file through the server;
     DFS's coherency layer arbitrates. *)
  Util.in_world (fun () ->
      let net, _vmm_a, _sfs, dfs, _import = make_world () in
      ignore (S.create dfs (Util.name "duo"));
      let import_b = Sp_dfs.Dfs.import ~net ~client_node:"beta" dfs in
      let import_c = Sp_dfs.Dfs.import ~net ~client_node:"gamma" dfs in
      let fb = S.open_file import_b (Util.name "duo") in
      let fc = S.open_file import_c (Util.name "duo") in
      let vmm_b = Sp_vm.Vmm.create ~node:"beta" "vmm_b2" in
      let vmm_c = Sp_vm.Vmm.create ~node:"gamma" "vmm_c" in
      let mb = Sp_vm.Vmm.map vmm_b fb.F.f_mem in
      let mc = Sp_vm.Vmm.map vmm_c fc.F.f_mem in
      Sp_vm.Vmm.write mb ~pos:0 (Util.bytes_of_string "beta speaks");
      Util.check_str "gamma sees beta" "beta speaks" (Sp_vm.Vmm.read mc ~pos:0 ~len:11);
      Sp_vm.Vmm.write mc ~pos:0 (Util.bytes_of_string "gamma");
      Util.check_str "beta sees gamma" "gammaspeaks"
        (Sp_vm.Vmm.read mb ~pos:0 ~len:11);
      Alcotest.(check bool) "invariant" true
        (Sp_coherency.Coherency_layer.invariant_holds (Sp_dfs.Dfs.coherency_of dfs)))

let test_remote_attr_via_fs_pager () =
  Util.in_world (fun () ->
      let _net, _vmm_a, _sfs, dfs, import = make_world () in
      ignore (S.create dfs (Util.name "a"));
      let rf = S.open_file import (Util.name "a") in
      ignore (F.write rf ~pos:0 (Util.bytes_of_string "attrs"));
      Alcotest.(check int) "remote stat length" 5 (F.stat rf).Sp_vm.Attr.len)

let test_sync_persists_via_remote () =
  Util.in_world (fun () ->
      let _net, _vmm_a, sfs, _dfs, import = make_world () in
      let rf = S.create import (Util.name "persist") in
      ignore (F.write rf ~pos:0 (Util.bytes_of_string "remote data"));
      S.sync import;
      (* The data is now in the server's underlying file system. *)
      Util.check_str "server holds data" "remote data"
        (F.read (S.open_file sfs (Util.name "persist")) ~pos:0 ~len:11))

(* Random interleaving of a local client and two remote mapped clients
   against a byte-array model; every read must observe the latest write
   regardless of who made it, and the DFS coherency invariant must hold
   throughout. *)
let prop_three_clients_linearize =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 1 30) (triple (int_range 0 2) (int_range 0 1) bool))
  in
  Util.qcheck_case ~count:15 "three-client dfs schedule stays coherent" gen
    (fun ops ->
      Util.in_world (fun () ->
          let net, _vmm_a, sfs, dfs, _ = make_world () in
          ignore (S.create dfs (Util.name "lin"));
          let local = S.open_file sfs (Util.name "lin") in
          ignore (F.write local ~pos:0 (Bytes.make (2 * ps) 'i'));
          let client node =
            let import = Sp_dfs.Dfs.import ~net ~client_node:node dfs in
            let rf = S.open_file import (Util.name "lin") in
            let vmm = Sp_vm.Vmm.create ~node (node ^ "-vmm") in
            Sp_vm.Vmm.map vmm rf.F.f_mem
          in
          let mb = client "pb" and mc = client "pc" in
          let model = Bytes.make (2 * ps) 'i' in
          let ok = ref true in
          List.iteri
            (fun i (who, block, is_write) ->
              let pos = (block * ps) + (i * 13 mod 256) in
              if is_write then begin
                let data = Util.pattern_bytes ~seed:(i + 71) 16 in
                (match who with
                | 0 -> ignore (F.write local ~pos data)
                | 1 -> Sp_vm.Vmm.write mb ~pos data
                | _ -> Sp_vm.Vmm.write mc ~pos data);
                Bytes.blit data 0 model pos 16
              end
              else begin
                let got =
                  match who with
                  | 0 -> F.read local ~pos ~len:16
                  | 1 -> Sp_vm.Vmm.read mb ~pos ~len:16
                  | _ -> Sp_vm.Vmm.read mc ~pos ~len:16
                in
                if not (Bytes.equal got (Bytes.sub model pos 16)) then ok := false
              end;
              if
                not
                  (Sp_coherency.Coherency_layer.invariant_holds
                     (Sp_dfs.Dfs.coherency_of dfs))
              then ok := false)
            ops;
          !ok))

(* rpc_retry's backoff is deterministic per fault seed and its total
   simulated delay is bounded by the cap documented in net.mli:
   rtt * (retries + 1) attempt windows + rtt * (2^retries - 1) backoff
   + the per-byte wire time of the successful attempt. *)
let prop_rpc_retry_deterministic_and_bounded =
  let gen = QCheck2.Gen.int_range 0 100_000 in
  Util.qcheck_case ~count:50 "rpc_retry deterministic per seed, delay capped" gen
    (fun seed ->
      Util.in_world ~model:Sp_sim.Cost_model.paper_1993 (fun () ->
          let model = Sp_sim.Cost_model.current () in
          let bytes = 64 in
          let retries = 3 in
          let run () =
            let net = Sp_dfs.Net.create () in
            let plan =
              Sp_fault.plan ~seed
                [
                  Sp_fault.rule ~point:"net.rpc" ~label:"qa->qb" ~count:retries
                    ~prob:0.6 Sp_fault.Drop;
                ]
            in
            let t0 = Sp_sim.Simclock.now () in
            let r =
              Sp_fault.with_plan plan (fun () ->
                  Sp_dfs.Net.rpc_retry ~retries net ~src:"qa" ~dst:"qb" ~bytes
                    (fun () -> 42))
            in
            (r, Sp_sim.Simclock.now () - t0, (Sp_dfs.Net.stats net).Sp_dfs.Net.retries)
          in
          let r1, d1, n1 = run () in
          let r2, d2, n2 = run () in
          let rtt = model.Sp_sim.Cost_model.net_rtt_ns in
          let cap =
            (rtt * (retries + 1))
            + (rtt * ((1 lsl retries) - 1))
            + (bytes * model.Sp_sim.Cost_model.net_per_byte_ns)
          in
          r1 = 42 && r2 = 42 && d1 = d2 && n1 = n2 && d1 <= cap))

(* The lost-ack case: the server-side body runs, the reply evaporates
   (Io_error at net.rpc = reply loss), and the retry must be answered
   from the server's dedup window instead of re-executing.  The
   [~idem:false] control shows the naive double-apply the tokens
   prevent. *)
let test_lost_ack_idempotent_retry () =
  Util.in_world (fun () ->
      let net = Sp_dfs.Net.create () in
      let lost_ack () =
        Sp_fault.plan
          [ Sp_fault.rule ~point:"net.rpc" ~label:"qa->qb" ~count:1 Sp_fault.Io_error ]
      in
      let runs = ref 0 in
      let r =
        Sp_fault.with_plan (lost_ack ()) (fun () ->
            Sp_dfs.Net.rpc_retry net ~src:"qa" ~dst:"qb" ~bytes:64 (fun () ->
                incr runs;
                !runs))
      in
      Alcotest.(check int) "body executed exactly once" 1 !runs;
      Alcotest.(check int) "retry answered with the recorded result" 1 r;
      Alcotest.(check int) "dedup hit counted" 1
        (Sp_dfs.Net.stats net).Sp_dfs.Net.dedup_hits;
      (* control: without tokens the same fault double-applies *)
      let runs' = ref 0 in
      ignore
        (Sp_fault.with_plan (lost_ack ()) (fun () ->
             Sp_dfs.Net.rpc_retry ~idem:false net ~src:"qa" ~dst:"qb" ~bytes:64
               (fun () ->
                 incr runs';
                 !runs')));
      Alcotest.(check int) "naive retry re-executed the body" 2 !runs';
      Alcotest.(check int) "no dedup without tokens" 1
        (Sp_dfs.Net.stats net).Sp_dfs.Net.dedup_hits)

let suite =
  [
    Alcotest.test_case "remote read/write" `Quick test_remote_read_write;
    Alcotest.test_case "rpc_retry: lost ack deduped, not re-executed" `Quick
      test_lost_ack_idempotent_retry;
    prop_rpc_retry_deterministic_and_bounded;
    Alcotest.test_case "remote ops use the network" `Quick test_remote_ops_use_network;
    Alcotest.test_case "local/remote coherence" `Quick test_local_remote_coherence;
    Alcotest.test_case "remote mapping coherence" `Quick test_remote_mapping_coherence;
    Alcotest.test_case "fig7: local binds forwarded" `Quick
      test_fig7_local_binds_forwarded;
    Alcotest.test_case "remote namespace ops" `Quick test_remote_namespace_ops;
    Alcotest.test_case "two remote clients" `Quick test_two_remote_clients;
    Alcotest.test_case "remote attrs" `Quick test_remote_attr_via_fs_pager;
    Alcotest.test_case "sync persists via remote" `Quick test_sync_persists_via_remote;
    prop_three_clients_linearize;
  ]
