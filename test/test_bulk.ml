(* The bulk data path (Sp_bulk): accounting invariants, amortised channel
   setup, adaptive read-ahead gating, and a qcheck equivalence property
   showing the three optimisations never change what any layer stores. *)

module F = Sp_core.File
module S = Sp_core.Stackable
module M = Sp_sim.Metrics

let ps = Sp_vm.Vm_types.page_size
let paper = Sp_sim.Cost_model.paper_1993

let counter = ref 0

let fresh_tag prefix =
  incr counter;
  Printf.sprintf "%s%d" prefix !counter

(* A two-domain (or mono) SFS with one warm 4KB file, ready for cached
   reads/writes. *)
let make_stack ?(mono = false) () =
  let tag = fresh_tag "bulk" in
  let vmm = Sp_vm.Vmm.create ~node:tag ("vmm-" ^ tag) in
  let disk = Util.fresh_disk ~label:("disk-" ^ tag) () in
  let sfs =
    if mono then Sp_coherency.Spring_sfs.make_mono ~node:tag ~vmm ~name:tag disk
    else
      Sp_coherency.Spring_sfs.make_split ~node:tag ~vmm ~name:tag
        ~same_domain:false disk
  in
  let f = S.create sfs (Util.name "bench") in
  ignore (F.write f ~pos:0 (Util.pattern_bytes ps));
  ignore (F.read f ~pos:0 ~len:ps);
  (vmm, sfs, f)

let test_same_domain_zero_marshalling_copies () =
  Util.in_world ~model:paper (fun () ->
      let _, _, f = make_stack ~mono:true () in
      let before = M.snapshot () in
      (* A caller living in the file's own domain (a layer calling a
         same-domain lower layer): the payload is handed over by
         reference, never marshalled. *)
      Sp_obj.Door.call f.F.f_domain (fun () -> ignore (F.read f ~pos:0 ~len:ps));
      let d = M.diff ~before ~after:(M.snapshot ()) in
      Alcotest.(check int) "no marshalling copy at a same-domain boundary" 0
        d.M.bulk_copies;
      Alcotest.(check bool) "payload handed over by reference" true
        (d.M.bulk_handoffs >= 1))

let test_cross_domain_exactly_one_copy () =
  Util.in_world ~model:paper (fun () ->
      let _, _, f = make_stack () in
      let before = M.snapshot () in
      let t0 = Sp_sim.Simclock.now () in
      ignore (F.read f ~pos:0 ~len:ps);
      let elapsed = Sp_sim.Simclock.now () - t0 in
      let d = M.diff ~before ~after:(M.snapshot ()) in
      Alcotest.(check int) "exactly one copy into the bulk buffer" 1
        d.M.bulk_copies;
      Alcotest.(check int) "the source copy is suppressed (handoff)" 1
        d.M.bulk_handoffs;
      (* One amortised bulk call plus one 4KB copy: the cached row of
         Table 2 (paper: ~0.16 ms). *)
      Alcotest.(check int) "warm cached 4KB read cost"
        (paper.Sp_sim.Cost_model.bulk_call_ns
        + (ps * paper.Sp_sim.Cost_model.copy_per_byte_ns))
        elapsed)

let test_bulk_setup_amortised_per_channel () =
  Util.in_world ~model:paper (fun () ->
      let _, _, f = make_stack () in
      let before = M.snapshot () in
      let t0 = Sp_sim.Simclock.now () in
      ignore (F.read f ~pos:0 ~len:ps);
      let first = Sp_sim.Simclock.now () - t0 in
      let t1 = Sp_sim.Simclock.now () in
      ignore (F.read f ~pos:0 ~len:ps);
      let second = Sp_sim.Simclock.now () - t1 in
      let d = M.diff ~before ~after:(M.snapshot ()) in
      (* The channel was established during stack warm-up: later calls
         never pay setup again, so repeated warm reads cost the same. *)
      Alcotest.(check int) "no new bulk channels on warm calls" 0 d.M.bulk_setups;
      Alcotest.(check int) "second call costs the same as the first" first second)

let test_bulk_disabled_restores_legacy_costs () =
  Util.in_world ~model:paper (fun () ->
      let _, _, f = make_stack () in
      let with_flag on =
        let saved = Sp_bulk.enabled () in
        Sp_bulk.set_enabled on;
        Fun.protect
          ~finally:(fun () -> Sp_bulk.set_enabled saved)
          (fun () ->
            let t0 = Sp_sim.Simclock.now () in
            ignore (F.read f ~pos:0 ~len:ps);
            Sp_sim.Simclock.now () - t0)
      in
      let legacy = with_flag false in
      let bulk = with_flag true in
      (* Off = full door crossing + marshalling copy at the boundary + the
         source copy; on = amortised bulk call + one copy total. *)
      Alcotest.(check int) "legacy cost: door + two copies"
        (paper.Sp_sim.Cost_model.cross_domain_call_ns
        + (2 * ps * paper.Sp_sim.Cost_model.copy_per_byte_ns))
        legacy;
      Alcotest.(check bool) "bulk path is cheaper" true (bulk < legacy))

let test_fast_model_readahead_windowless () =
  (* Under the fast model the adaptive window must stay at zero so the
     ~300 existing tests keep their deterministic page-in counts. *)
  Util.in_world (fun () ->
      let ram = Sp_vm.Ram_pager.create ~label:(fresh_tag "ram") () in
      Sp_vm.Ram_pager.poke ram ~pos:0 (Util.pattern_bytes (8 * ps));
      let vmm = Sp_vm.Vmm.create ~node:"local" (fresh_tag "vmmfast") in
      Alcotest.(check bool) "adaptive is on by default" true
        (Sp_vm.Vmm.adaptive vmm);
      let m = Sp_vm.Vmm.map vmm (Sp_vm.Ram_pager.memory_object ram) in
      let before = M.snapshot () in
      for i = 0 to 7 do
        ignore (Sp_vm.Vmm.read m ~pos:(i * ps) ~len:ps)
      done;
      let d = M.diff ~before ~after:(M.snapshot ()) in
      Alcotest.(check int) "one page-in per page, no prefetch" 8 d.M.page_ins;
      Alcotest.(check int) "no read-ahead hits" 0 d.M.readahead_hits;
      Alcotest.(check int) "no read-ahead waste" 0 d.M.readahead_wasted)

let test_adaptive_readahead_batches_and_collapses () =
  Util.in_world ~model:paper (fun () ->
      let ram = Sp_vm.Ram_pager.create ~label:(fresh_tag "ram") () in
      Sp_vm.Ram_pager.poke ram ~pos:0 (Util.pattern_bytes (32 * ps));
      let vmm = Sp_vm.Vmm.create ~node:"local" (fresh_tag "vmmada") in
      let m = Sp_vm.Vmm.map vmm (Sp_vm.Ram_pager.memory_object ram) in
      let before = M.snapshot () in
      for i = 0 to 31 do
        ignore (Sp_vm.Vmm.read m ~pos:(i * ps) ~len:ps)
      done;
      let d = M.diff ~before ~after:(M.snapshot ()) in
      (* Window doubling 2,4,8,16 batches a 32-page run into a handful of
         page-ins; every page is either a fault or a prefetch hit. *)
      Alcotest.(check bool)
        (Printf.sprintf "page-ins collapse (%d <= 6)" d.M.page_ins)
        true (d.M.page_ins <= 6);
      Alcotest.(check int) "hits + faults cover the file" 32
        (d.M.readahead_hits + d.M.page_ins);
      Alcotest.(check int) "nothing prefetched was wasted" 0 d.M.readahead_wasted;
      (* A non-sequential fault collapses the window: the jump back is a
         plain single-page fetch. *)
      let before = M.snapshot () in
      ignore (Sp_vm.Vmm.read m ~pos:0 ~len:ps);
      Sp_vm.Vmm.drop_caches vmm;
      ignore (Sp_vm.Vmm.read m ~pos:(20 * ps) ~len:ps);
      let d = M.diff ~before ~after:(M.snapshot ()) in
      Alcotest.(check int) "random fault fetches one page" 1 d.M.page_ins)

(* ------------------------------------------------------------------ *)
(* Equivalence: optimisations on vs off                                *)
(* ------------------------------------------------------------------ *)

type op = Write of int * int * int | Read of int * int | Truncate of int | Sync

let max_pos = 24 * ps

let interp_op (kind, pos, len, seed) =
  let pos = pos mod max_pos and len = 1 + (len mod (4 * ps)) in
  match kind mod 10 with
  | 0 | 1 | 2 | 3 -> Write (pos, len, seed)
  | 4 | 5 | 6 -> Read (pos, len)
  | 7 -> Truncate (pos mod (max_pos / 2))
  | _ -> Sync

let apply_op f = function
  | Write (pos, len, seed) ->
      ignore (F.write f ~pos (Util.pattern_bytes ~seed:(1 + abs seed) len));
      Bytes.empty
  | Read (pos, len) -> F.read f ~pos ~len
  | Truncate len ->
      F.truncate f len;
      Bytes.empty
  | Sync ->
      F.sync f;
      Bytes.empty

let all_off f =
  let saved = Sp_bulk.enabled () in
  Sp_bulk.set_enabled false;
  Fun.protect ~finally:(fun () -> Sp_bulk.set_enabled saved) f

let equivalence_prop raw_ops =
  let ops = List.map interp_op raw_ops in
  Util.in_world ~model:paper (fun () ->
      (* Stack A: bulk + adaptive read-ahead + clustered writeback (the
         defaults).  Stack B: all three off — the PR-4 data path. *)
      let vmm_a, fs_a, fa = make_stack () in
      let vmm_b, fs_b, fb = make_stack () in
      ignore vmm_a;
      Sp_vm.Vmm.set_adaptive vmm_b false;
      Sp_vm.Vmm.set_clustered vmm_b false;
      let ok = ref true in
      List.iter
        (fun op ->
          let ra = apply_op fa op in
          let rb = all_off (fun () -> apply_op fb op) in
          if not (Bytes.equal ra rb) then ok := false)
        ops;
      (* Post-sync lower-layer state: push everything down, drop every
         cache, and reread from disk on both stacks. *)
      F.sync fa;
      all_off (fun () -> F.sync fb);
      S.drop_caches fs_a;
      Sp_vm.Vmm.drop_caches vmm_a;
      all_off (fun () ->
          S.drop_caches fs_b;
          Sp_vm.Vmm.drop_caches vmm_b);
      let la = (F.stat fa).Sp_vm.Attr.len and lb = (F.stat fb).Sp_vm.Attr.len in
      if la <> lb then ok := false
      else begin
        let ca = F.read fa ~pos:0 ~len:la in
        let cb = all_off (fun () -> F.read fb ~pos:0 ~len:lb) in
        if not (Bytes.equal ca cb) then ok := false
      end;
      !ok)

let test_equivalence =
  Util.qcheck_case ~count:30 "optimisations never change stored bytes"
    QCheck2.Gen.(
      list_size (int_range 5 30)
        (tup4 (int_range 0 1000) (int_range 0 max_pos) (int_range 0 (4 * ps))
           (int_range 0 10000)))
    equivalence_prop

let suite =
  [
    Alcotest.test_case "same-domain: zero marshalling copies" `Quick
      test_same_domain_zero_marshalling_copies;
    Alcotest.test_case "cross-domain: exactly one copy" `Quick
      test_cross_domain_exactly_one_copy;
    Alcotest.test_case "bulk setup amortised per channel" `Quick
      test_bulk_setup_amortised_per_channel;
    Alcotest.test_case "bulk off restores legacy costs" `Quick
      test_bulk_disabled_restores_legacy_costs;
    Alcotest.test_case "fast model: read-ahead windowless" `Quick
      test_fast_model_readahead_windowless;
    Alcotest.test_case "adaptive read-ahead batches and collapses" `Quick
      test_adaptive_readahead_batches_and_collapses;
    test_equivalence;
  ]
